/**
 * @file
 * Quickstart: simulate one RPCValet server under a HERD-like
 * key-value workload and print its latency profile.
 *
 *   $ ./quickstart [arrival_mrps] [workload_spec]
 *
 * Walks through the three steps every user of the library takes:
 * configure the system (Table 1 defaults), pick a workload by spec
 * string, run an experiment. The whole run is declarative — mode,
 * policy, arrival, and workload are all config values.
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace rpcvalet;

    // 1. System: a 16-core chip with integrated NIs, RPCValet (1x16)
    //    dispatch. Every Table 1 parameter is overridable.
    node::SystemParams system;
    system.mode = ni::DispatchMode::SingleQueue;
    system.outstandingPerCore = 2;

    // 2. Workload: a registry spec string. The default "herd" is the
    //    §5 HERD-like KV store (95/5 read/write, real hash table
    //    underneath); try "masstree:scan_ratio=0.02",
    //    "synthetic:dist=gev", or a composite such as
    //    "mix:herd=0.9,masstree-scan=0.1". Requests are built,
    //    served, and verified byte-for-byte through the simulated
    //    protocol.
    const app::WorkloadSpec workload =
        argc > 2 ? app::WorkloadSpec(argv[2]) : app::WorkloadSpec();

    // 3. Experiment: offered load in requests/second.
    const double mrps = argc > 1 ? std::atof(argv[1]) : 15.0;
    core::ExperimentConfig cfg;
    cfg.system = system;
    cfg.workload = workload;
    cfg.arrivalRps = mrps * 1e6;
    cfg.warmupRpcs = 5000;
    cfg.measuredRpcs = 50000;

    std::printf("rpcvalet quickstart: %s @ %.1f Mrps on %s dispatch\n",
                workload.toString().c_str(), mrps,
                ni::dispatchModeName(system.mode).c_str());
    const core::RunStats stats = core::runExperiment(cfg);

    std::printf("\n  completions        %llu (verified end-to-end, "
                "%llu failures)\n",
                static_cast<unsigned long long>(stats.completions),
                static_cast<unsigned long long>(stats.verifyFailures));
    std::printf("  achieved           %.2f Mrps (offered %.2f)\n",
                stats.point.achievedRps / 1e6,
                stats.point.offeredRps / 1e6);
    std::printf("  mean service S-bar %.0f ns\n", stats.meanServiceNs);
    std::printf("  latency mean       %.2f us\n",
                stats.point.meanNs / 1e3);
    std::printf("  latency p50        %.2f us\n", stats.point.p50Ns / 1e3);
    std::printf("  latency p99        %.2f us\n", stats.point.p99Ns / 1e3);
    std::printf("  SLO (10 x S-bar)   %.2f us  ->  %s\n",
                10.0 * stats.meanServiceNs / 1e3,
                stats.point.p99Ns <= 10.0 * stats.meanServiceNs
                    ? "MET"
                    : "VIOLATED");

    // Per-class breakdown: one row per request class the workload
    // declares (for composites, every component class separately).
    std::printf("\n  per-class tails:\n");
    for (const core::ClassStats &cs : stats.perClass) {
        std::printf("    %-16s %s  %8.3f Mrps  p99 %8.2f us",
                    cs.name.c_str(),
                    cs.latencyCritical ? "critical" : "besteff.",
                    cs.achievedRps / 1e6, cs.p99Ns / 1e3);
        if (cs.sloNs > 0.0) {
            std::printf("  SLO %.1f us attained %.1f%%",
                        cs.sloNs / 1e3, 100.0 * cs.sloAttainment);
        }
        std::printf("\n");
    }
    std::printf("\nTry: ./quickstart 28   (close to saturation)\n"
                "     ./quickstart 3 mix:masstree-get=0.998,"
                "masstree-scan=0.002\n");
    return 0;
}
