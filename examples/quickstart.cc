/**
 * @file
 * Quickstart: simulate one RPCValet server under a HERD-like
 * key-value workload and print its latency profile.
 *
 *   $ ./quickstart [arrival_mrps]
 *
 * Walks through the three steps every user of the library takes:
 * configure the system (Table 1 defaults), pick a workload, run an
 * experiment.
 */

#include <cstdio>
#include <cstdlib>

#include "app/herd_app.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace rpcvalet;

    // 1. System: a 16-core chip with integrated NIs, RPCValet (1x16)
    //    dispatch. Every Table 1 parameter is overridable.
    node::SystemParams system;
    system.mode = ni::DispatchMode::SingleQueue;
    system.outstandingPerCore = 2;

    // 2. Workload: HERD-like KV store, 95/5 read/write, real hash
    //    table underneath. Requests are built, served, and verified
    //    byte-for-byte through the simulated protocol.
    app::HerdApp app;

    // 3. Experiment: offered load in requests/second.
    const double mrps = argc > 1 ? std::atof(argv[1]) : 15.0;
    core::ExperimentConfig cfg;
    cfg.system = system;
    cfg.arrivalRps = mrps * 1e6;
    cfg.warmupRpcs = 5000;
    cfg.measuredRpcs = 50000;

    std::printf("rpcvalet quickstart: HERD @ %.1f Mrps on %s dispatch\n",
                mrps, ni::dispatchModeName(system.mode).c_str());
    const core::RunStats stats = core::runExperiment(cfg, app);

    std::printf("\n  completions        %llu (verified end-to-end, "
                "%llu failures)\n",
                static_cast<unsigned long long>(stats.completions),
                static_cast<unsigned long long>(stats.verifyFailures));
    std::printf("  achieved           %.2f Mrps (offered %.2f)\n",
                stats.point.achievedRps / 1e6,
                stats.point.offeredRps / 1e6);
    std::printf("  mean service S-bar %.0f ns\n", stats.meanServiceNs);
    std::printf("  latency mean       %.2f us\n",
                stats.point.meanNs / 1e3);
    std::printf("  latency p50        %.2f us\n", stats.point.p50Ns / 1e3);
    std::printf("  latency p99        %.2f us\n", stats.point.p99Ns / 1e3);
    std::printf("  SLO (10 x S-bar)   %.2f us  ->  %s\n",
                10.0 * stats.meanServiceNs / 1e3,
                stats.point.p99Ns <= 10.0 * stats.meanServiceNs
                    ? "MET"
                    : "VIOLATED");
    std::printf("\nTry: ./quickstart 28   (close to saturation)\n");
    return 0;
}
