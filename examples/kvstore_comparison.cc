/**
 * @file
 * Example: compare all four dispatch designs on the same KV-store
 * tier — the experiment a systems designer would run to decide
 * whether NI-driven balancing is worth the hardware.
 *
 *   $ ./kvstore_comparison
 *
 * Prints one tail-vs-throughput curve per design and the resulting
 * throughput under a 10x S-bar SLO.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "stats/slo.hh"

int
main()
{
    using namespace rpcvalet;

    const app::WorkloadSpec workload("herd");
    node::SystemParams sys;
    const double capacity = core::estimateCapacityRps(sys, workload);
    std::printf("KV store on a 16-core chip; estimated capacity "
                "%.1f Mrps\n",
                capacity / 1e6);

    std::vector<stats::Series> all;
    double sbar_ns = 0.0;
    for (const auto mode : ni::allDispatchModes()) {
        core::SweepConfig sweep;
        sweep.base.system.mode = mode;
        sweep.base.workload = workload; // spec-driven: no app factory
        sweep.base.warmupRpcs = 3000;
        sweep.base.measuredRpcs = 30000;
        for (double u : core::loadGrid(0.2, 1.0, 7))
            sweep.arrivalRates.push_back(u * capacity);
        sweep.label = ni::dispatchModeName(mode);
        sweep.threads = 2;
        const auto result = core::runSweep(sweep);
        all.push_back(result.series);
        if (sbar_ns == 0.0)
            sbar_ns = result.runs.front().meanServiceNs;
        std::printf("  swept %-8s (%zu points)\n", sweep.label.c_str(),
                    result.runs.size());
    }

    std::printf("\n%s\n",
                stats::formatSeriesTable("Tail latency vs throughput",
                                         all, true)
                    .c_str());
    std::printf("%s\n",
                stats::formatSloTable("Throughput under SLO",
                                      all, 10.0 * sbar_ns,
                                      /*baseline=*/2)
                    .c_str());
    std::printf("Reading the table: 1x16 is RPCValet; 16x1 is an "
                "RSS-style dataplane; sw-1x16 is a lock-based shared "
                "queue.\n");
    return 0;
}
