/**
 * @file
 * Example: latency-critical gets sharing a server with long ordered
 * scans (the paper's Masstree scenario, and the motivating case for
 * occupancy-aware dispatch).
 *
 *   $ ./ordered_store_scans [scan_percent]
 *
 * Shows how get tail latency degrades with scan share under static
 * 16x1 spreading versus RPCValet's 1x16, which steers gets away from
 * scan-occupied cores.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "app/masstree_app.hh"
#include "core/experiment.hh"

int
main(int argc, char **argv)
{
    using namespace rpcvalet;

    const double scan_pct = argc > 1 ? std::atof(argv[1]) : 1.0;

    app::MasstreeApp::Params params;
    params.getFraction = 1.0 - scan_pct / 100.0;
    auto factory = [params] {
        return std::make_unique<app::MasstreeApp>(params);
    };

    std::printf("Ordered store: %.1f%% scans (60-120 us) interleaved "
                "with gets (~1.25 us)\n\n",
                scan_pct);
    std::printf("%10s %12s %18s %18s\n", "load", "offered", "16x1 get p99",
                "1x16 get p99");
    std::printf("%10s %12s %18s %18s\n", "", "(Mrps)", "(us)", "(us)");

    app::MasstreeApp probe(params);
    node::SystemParams sys;
    const double capacity = core::estimateCapacityRps(sys, probe);

    for (double u : {0.2, 0.4, 0.6, 0.8}) {
        double p99[2] = {0.0, 0.0};
        int i = 0;
        for (const auto mode : {ni::DispatchMode::StaticHash,
                                ni::DispatchMode::SingleQueue}) {
            core::ExperimentConfig cfg;
            cfg.system.mode = mode;
            cfg.arrivalRps = u * capacity;
            cfg.warmupRpcs = 1000;
            cfg.measuredRpcs = 20000;
            auto app = factory();
            p99[i++] = core::runExperiment(cfg, *app).point.p99Ns;
        }
        std::printf("%10.1f %12.2f %18.2f %18.2f\n", u,
                    u * capacity / 1e6, p99[0] / 1e3, p99[1] / 1e3);
    }

    std::printf("\nWith static spreading, a get that lands behind a "
                "scan waits for it; RPCValet's dispatcher only "
                "double-books a scan-running core when every core is "
                "busy.\n");
    return 0;
}
