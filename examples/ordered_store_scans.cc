/**
 * @file
 * Example: latency-critical gets sharing a server with long ordered
 * scans (the paper's Masstree scenario, and the motivating case for
 * occupancy-aware dispatch).
 *
 *   $ ./ordered_store_scans [scan_percent]
 *
 * The blend is expressed through the composite workload spec —
 * "mix:masstree-get=W,masstree-scan=W'" — so the scan share is a
 * string parameter, and the per-class stats in RunStats report the
 * get and scan tails separately. Shows how the get tail degrades with
 * scan share under static 16x1 spreading versus RPCValet's 1x16,
 * which steers gets away from scan-occupied cores.
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace rpcvalet;

    const double scan_pct = argc > 1 ? std::atof(argv[1]) : 1.0;
    const double scan_frac = scan_pct / 100.0;
    if (!(scan_frac > 0.0 && scan_frac < 1.0))
        sim::fatal("scan_percent must be in (0, 100)");

    // The whole workload is one spec string: weights select the blend.
    const app::WorkloadSpec workload(
        sim::strfmt("mix:masstree-get=%g,masstree-scan=%g",
                    1.0 - scan_frac, scan_frac));

    std::printf("Ordered store: %.1f%% scans (60-120 us) interleaved "
                "with gets (~1.25 us)\nworkload spec: %s\n\n",
                scan_pct, workload.toString().c_str());
    std::printf("%10s %12s %18s %18s %18s\n", "load", "offered",
                "16x1 get p99", "1x16 get p99", "1x16 scan p99");
    std::printf("%10s %12s %18s %18s %18s\n", "", "(Mrps)", "(us)",
                "(us)", "(us)");

    node::SystemParams sys;
    const double capacity = core::estimateCapacityRps(sys, workload);

    for (double u : {0.2, 0.4, 0.6, 0.8}) {
        double get_p99[2] = {0.0, 0.0};
        double scan_p99 = 0.0;
        int i = 0;
        for (const auto mode : {ni::DispatchMode::StaticHash,
                                ni::DispatchMode::SingleQueue}) {
            core::ExperimentConfig cfg;
            cfg.system.mode = mode;
            cfg.workload = workload;
            cfg.arrivalRps = u * capacity;
            cfg.warmupRpcs = 1000;
            cfg.measuredRpcs = 20000;
            const core::RunStats r = core::runExperiment(cfg);
            // perClass is ordered like the mix's components (sorted
            // by name): [masstree-get, masstree-scan].
            get_p99[i++] = r.perClass[0].p99Ns;
            if (mode == ni::DispatchMode::SingleQueue)
                scan_p99 = r.perClass[1].p99Ns;
        }
        std::printf("%10.1f %12.2f %18.2f %18.2f %18.2f\n", u,
                    u * capacity / 1e6, get_p99[0] / 1e3,
                    get_p99[1] / 1e3, scan_p99 / 1e3);
    }

    std::printf("\nWith static spreading, a get that lands behind a "
                "scan waits for it; RPCValet's dispatcher only "
                "double-books a scan-running core when every core is "
                "busy. The scan class has its own (huge) tail — "
                "recorded per class rather than discarded.\n");
    return 0;
}
