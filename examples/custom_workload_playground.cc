/**
 * @file
 * Example: extending the workload layer from *outside* src/app.
 *
 * Defines a new workload ("bimodal:long_ratio=,long_us=" — echo RPCs
 * that are short most of the time but occasionally run for tens of
 * microseconds, nanoPU-style short/long interference with two request
 * classes), registers it with the app::WorkloadRegistry at static-init
 * time, and then drives the node over a ladder of workloads — built-in
 * and the new one alike — purely by spec string through the public
 * experiment API. Because registered workloads compose, the new one
 * also rides the "mix" spec next to HERD without any extra code. No
 * file under src/ was touched to add the workload.
 *
 *   $ ./example_custom_workload_playground
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "app/wire_format.hh"
#include "core/experiment.hh"
#include "sim/distributions.hh"
#include "sim/logging.hh"

namespace {

using namespace rpcvalet;

/**
 * Echo workload with two request classes: "short" (GEV, ~600 ns mean,
 * latency-critical) and "long" (fixed tens-of-us, best-effort). The
 * class split is chosen client-side, carried in the request's class
 * byte, and echoed back through HandleResult — which is all the
 * per-class accounting machinery needs.
 */
class BimodalApp : public app::RpcApplication
{
  public:
    BimodalApp(double long_ratio, double long_us)
        : longRatio_(long_ratio),
          shortDist_(sim::makeSynthetic(sim::SyntheticKind::Gev)),
          longNs_(long_us * 1e3)
    {}

    std::vector<std::uint8_t>
    makeRequest(sim::Rng &client_rng) override
    {
        app::RpcRequest req;
        req.op = app::RpcOp::Echo;
        req.key = nextMarker_++;
        req.classId = client_rng.uniform() < longRatio_ ? 1 : 0;
        return app::encodeRequest(req);
    }

    app::HandleResult
    handle(const std::vector<std::uint8_t> &request,
           sim::Rng &server_rng) override
    {
        const auto req = app::decodeRequest(request);
        app::HandleResult result;
        app::RpcReply reply;
        if (!req) {
            reply.status = app::RpcStatus::Error;
            result.processingNs = shortDist_->sample(server_rng);
        } else if (req->classId == 1) {
            result.classId = 1;
            result.latencyCritical = false;
            result.processingNs = longNs_;
        } else {
            result.processingNs = shortDist_->sample(server_rng);
        }
        if (req) {
            reply.value.resize(8);
            for (int i = 0; i < 8; ++i) {
                reply.value[static_cast<size_t>(i)] =
                    static_cast<std::uint8_t>((req->key >> (8 * i)) &
                                              0xff);
            }
        }
        result.reply = app::encodeReply(reply);
        return result;
    }

    bool
    verifyReply(const std::vector<std::uint8_t> &request,
                const std::vector<std::uint8_t> &reply) const override
    {
        const auto req = app::decodeRequest(request);
        const auto rep = app::decodeReply(reply);
        if (!req || !rep || rep->status != app::RpcStatus::Ok)
            return false;
        std::uint64_t marker = 0;
        for (int i = 0; i < 8; ++i) {
            marker |= static_cast<std::uint64_t>(
                          rep->value[static_cast<size_t>(i)])
                      << (8 * i);
        }
        return marker == req->key;
    }

    double
    meanProcessingNs() const override
    {
        return (1.0 - longRatio_) * shortDist_->mean() +
               longRatio_ * longNs_;
    }

    double
    latencyCriticalMeanNs() const override
    {
        return shortDist_->mean();
    }

    std::vector<app::RequestClass>
    requestClasses() const override
    {
        return {app::RequestClass{"short", true,
                                  10.0 * shortDist_->mean()},
                app::RequestClass{"long", false, 0.0}};
    }

    std::string
    name() const override
    {
        return sim::strfmt("bimodal:long_ratio=%g", longRatio_);
    }

  private:
    double longRatio_;
    sim::DistributionPtr shortDist_;
    double longNs_;
    std::uint64_t nextMarker_ = 1;
};

// Static-init registration: this is all it takes to make
// "bimodal:long_ratio=0.01,long_us=50" usable from ExperimentConfig,
// the benches' --workload= flag, and the "mix" composite.
const app::WorkloadRegistrar bimodalRegistrar(
    "bimodal", [](const app::WorkloadSpec &spec) {
        spec.expectKeys({"long_ratio", "long_us"});
        const double ratio = spec.doubleParam("long_ratio", 0.01);
        const double long_us = spec.doubleParam("long_us", 50.0);
        if (!(ratio >= 0.0 && ratio <= 1.0))
            sim::fatal("bimodal: long_ratio must be in [0, 1]");
        return std::make_unique<BimodalApp>(ratio, long_us);
    });

void
runOne(const std::string &spec_text)
{
    const app::WorkloadSpec workload(spec_text);
    node::SystemParams sys;
    core::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.arrivalRps = 0.6 * core::estimateCapacityRps(sys, workload);
    cfg.warmupRpcs = 1000;
    cfg.measuredRpcs = 15000;
    const core::RunStats r = core::runExperiment(cfg);
    std::printf("  %-40s p99(critical) = %8.2f us\n", spec_text.c_str(),
                r.point.p99Ns / 1e3);
    for (const core::ClassStats &cs : r.perClass) {
        std::printf("      class %-18s %s  p99 %9.2f us  "
                    "p99.9 %9.2f us\n",
                    cs.name.c_str(),
                    cs.latencyCritical ? "critical" : "besteff.",
                    cs.p99Ns / 1e3, cs.p999Ns / 1e3);
    }
}

} // namespace

int
main()
{
    using namespace rpcvalet;

    std::printf("Workload playground (60%% load, greedy 1x16)\n\n");

    std::printf("--- registered workloads (note 'bimodal': registered "
                "by this example) ---\n");
    for (const std::string &name :
         app::WorkloadRegistry::instance().names())
        std::printf("  %s\n", name.c_str());

    std::printf("\n--- built-ins and the external workload, by spec "
                "string ---\n");
    for (const char *spec :
         {"herd", "synthetic:dist=gev", "masstree:scan_ratio=0.005",
          "bimodal:long_ratio=0.01,long_us=50",
          "bimodal:long_ratio=0.05,long_us=25"}) {
        runOne(spec);
    }

    std::printf("\n--- composites: the external workload rides 'mix' "
                "like any built-in ---\n");
    for (const char *spec :
         {"mix:herd=0.9,bimodal=0.1",
          "mix:herd=0.5,synthetic=0.25,bimodal=0.25"}) {
        runOne(spec);
    }

    std::printf("\nWorkloads are spec strings resolved by the "
                "app::WorkloadRegistry\n(see src/app/workload.hh); "
                "every bench accepts --workload=SPEC.\n");
    return 0;
}
