/**
 * @file
 * Example: extending the dispatch layer from *outside* src/ni.
 *
 * Defines a new stateful dispatch policy ("sticky:p=0.9" — prefer the
 * last core used with probability p, spill to the least-loaded core
 * otherwise), registers it with the ni::PolicyRegistry at static-init
 * time, and then drives every registered policy — built-ins and the
 * new one alike — purely by spec string through the public experiment
 * API. No file under src/ was touched to add the policy.
 *
 *   $ ./example_custom_policy_playground
 */

#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "sim/logging.hh"

namespace {

using namespace rpcvalet;

/**
 * Sticky dispatch: reuse the previous core while it has credits (cache
 * affinity), with probability 1-p falling back to least-loaded to keep
 * the tail in check. Exercises the full event API: select() consults
 * private state, onDispatch() updates it.
 */
class StickyPolicy : public ni::DispatchPolicy
{
  public:
    explicit StickyPolicy(double p) : p_(p) {}

    void
    onDispatch(proto::CoreId core, const ni::DispatchContext &ctx) override
    {
        (void)ctx;
        last_ = core;
    }

    std::optional<proto::CoreId>
    select(const ni::DispatchContext &ctx) override
    {
        if (last_.has_value() && ctx.outstanding[*last_] < ctx.threshold &&
            ctx.rng.uniform() < p_)
            return last_;
        std::optional<proto::CoreId> best;
        std::uint32_t best_load = ctx.threshold;
        for (const proto::CoreId core : ctx.candidates) {
            if (ctx.outstanding[core] < best_load) {
                best = core;
                best_load = ctx.outstanding[core];
            }
        }
        return best;
    }

    std::string
    name() const override
    {
        return sim::strfmt("sticky:p=%g", p_);
    }

  private:
    double p_;
    std::optional<proto::CoreId> last_;
};

// Static-init registration: this is all it takes to make
// "sticky:p=0.9" usable from SystemParams, benches, and tests.
const ni::PolicyRegistrar stickyRegistrar(
    "sticky", [](const ni::PolicySpec &spec) {
        spec.expectKeys({"p"});
        return std::make_unique<StickyPolicy>(
            spec.doubleParam("p", 0.9));
    });

double
p99AtLoad(const node::SystemParams &sys, double utilization)
{
    // Declarative run: the GEV echo workload is a registry spec.
    const app::WorkloadSpec workload("synthetic:dist=gev");
    const double capacity = core::estimateCapacityRps(sys, workload);
    core::ExperimentConfig cfg;
    cfg.system = sys;
    cfg.workload = workload;
    cfg.arrivalRps = utilization * capacity;
    cfg.warmupRpcs = 2000;
    cfg.measuredRpcs = 25000;
    return core::runExperiment(cfg).point.p99Ns;
}

} // namespace

int
main()
{
    using namespace rpcvalet;

    std::printf("Dispatch design-space playground (GEV service, 80%% "
                "load)\n\n");

    std::printf("--- every registered policy (note 'sticky': registered "
                "by this example) ---\n");
    for (const std::string &name :
         ni::PolicyRegistry::instance().names()) {
        node::SystemParams sys;
        sys.policy = name;
        std::printf("  %-14s p99 = %7.2f us\n", name.c_str(),
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\n--- parameterized specs of the same policies ---\n");
    for (const char *spec :
         {"pow2:d=4", "jbsq:d=1", "stale-jsq:staleness=0ns",
          "stale-jsq:staleness=500ns", "sticky:p=0.5", "sticky:p=0.99"}) {
        node::SystemParams sys;
        sys.policy = spec;
        std::printf("  %-26s p99 = %7.2f us\n", spec,
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\n--- outstanding threshold (greedy) ---\n");
    for (const std::uint32_t threshold : {1u, 2u, 3u, 8u}) {
        node::SystemParams sys;
        sys.outstandingPerCore = threshold;
        std::printf("  threshold %-4u p99 = %7.2f us\n", threshold,
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\n--- chip geometry (scaling the paper's design) ---\n");
    struct Geometry
    {
        std::uint32_t cores;
        int rows;
        int cols;
        std::uint32_t backends;
    };
    for (const auto &g : {Geometry{16, 4, 4, 4}, Geometry{32, 4, 8, 4},
                          Geometry{64, 8, 8, 8}}) {
        node::SystemParams sys;
        sys.numCores = g.cores;
        sys.meshRows = g.rows;
        sys.meshCols = g.cols;
        sys.numBackends = g.backends;
        std::printf("  %2u cores (%dx%d mesh, %u backends) "
                    "p99 = %7.2f us\n",
                    g.cores, g.rows, g.cols, g.backends,
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\nAll knobs live in node::SystemParams; policies are "
                "spec strings\nresolved by the ni::PolicyRegistry (see "
                "src/ni/policy_registry.hh).\n");
    return 0;
}
