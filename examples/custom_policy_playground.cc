/**
 * @file
 * Example: exploring the dispatch design space beyond the paper —
 * policies (greedy / round-robin / power-of-two-choices), outstanding
 * thresholds, and chip geometries — using the same public API.
 *
 *   $ ./custom_policy_playground
 */

#include <cstdio>
#include <memory>

#include "app/synthetic_app.hh"
#include "core/experiment.hh"

namespace {

using namespace rpcvalet;

double
p99AtLoad(const node::SystemParams &sys, double utilization)
{
    app::SyntheticApp probe(sim::SyntheticKind::Gev);
    const double capacity = core::estimateCapacityRps(sys, probe);
    core::ExperimentConfig cfg;
    cfg.system = sys;
    cfg.arrivalRps = utilization * capacity;
    cfg.warmupRpcs = 2000;
    cfg.measuredRpcs = 25000;
    app::SyntheticApp app(sim::SyntheticKind::Gev);
    return core::runExperiment(cfg, app).point.p99Ns;
}

} // namespace

int
main()
{
    using namespace rpcvalet;

    std::printf("Dispatch design-space playground (GEV service, 80%% "
                "load)\n\n");

    std::printf("--- selection policy ---\n");
    for (const auto policy : {ni::PolicyKind::GreedyLeastLoaded,
                              ni::PolicyKind::RoundRobin,
                              ni::PolicyKind::PowerOfTwoChoices}) {
        node::SystemParams sys;
        sys.policy = policy;
        std::printf("  %-14s p99 = %7.2f us\n",
                    ni::policyKindName(policy).c_str(),
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\n--- outstanding threshold ---\n");
    for (const std::uint32_t threshold : {1u, 2u, 3u, 8u}) {
        node::SystemParams sys;
        sys.outstandingPerCore = threshold;
        std::printf("  threshold %-4u p99 = %7.2f us\n", threshold,
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\n--- chip geometry (scaling the paper's design) ---\n");
    struct Geometry
    {
        std::uint32_t cores;
        int rows;
        int cols;
        std::uint32_t backends;
    };
    for (const auto &g : {Geometry{16, 4, 4, 4}, Geometry{32, 4, 8, 4},
                          Geometry{64, 8, 8, 8}}) {
        node::SystemParams sys;
        sys.numCores = g.cores;
        sys.meshRows = g.rows;
        sys.meshCols = g.cols;
        sys.numBackends = g.backends;
        std::printf("  %2u cores (%dx%d mesh, %u backends) "
                    "p99 = %7.2f us\n",
                    g.cores, g.rows, g.cols, g.backends,
                    p99AtLoad(sys, 0.8) / 1e3);
    }

    std::printf("\nAll knobs live in node::SystemParams; see "
                "src/node/params.hh.\n");
    return 0;
}
