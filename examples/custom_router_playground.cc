/**
 * @file
 * Example: extending the cluster routing layer from *outside*
 * src/cluster.
 *
 * Defines a new request-class-aware router ("scan-shield" — scans and
 * other non-critical classes are pinned to the last server node,
 * latency-critical requests round-robin over the rest), registers it
 * with the cluster::RouterRegistry at static-init time, and drives it
 * purely by spec string through the public experiment API. No file
 * under src/ was touched to add the router — the same plug-in seam the
 * dispatch-policy, arrival-process, and workload registries expose.
 *
 *   $ ./example_custom_router_playground
 */

#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "sim/logging.hh"

namespace {

using namespace rpcvalet;

/**
 * Scan shield: route by request class. Non-critical classes (Masstree
 * scans carry classId 1) land on the shield node — the cluster's last
 * server — so their millisecond-scale service times never queue behind
 * point queries; class 0 round-robins over the remaining nodes. Falls
 * back to any up node when the preferred target is down.
 */
class ScanShieldRouter : public cluster::Router
{
  public:
    std::uint32_t
    route(const cluster::RouteContext &ctx) override
    {
        const std::uint32_t n = ctx.view.numServers();
        const std::uint32_t shield = n - 1;
        std::uint32_t target;
        if (ctx.classId != 0 || n == 1) {
            target = shield;
        } else {
            target = static_cast<std::uint32_t>(cursor_++ % (n - 1));
        }
        // Failover: walk forward to the next up server if needed.
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t s = (target + i) % n;
            if (ctx.view.isUp(s))
                return s;
        }
        return target;
    }

    std::string
    name() const override
    {
        return "scan-shield";
    }

  private:
    std::uint64_t cursor_ = 0;
};

// Static-init registration: this is all it takes to make
// "scan-shield" usable from ExperimentConfig, benches, and --router.
const cluster::RouterRegistrar scanShieldRegistrar(
    "scan-shield", [](const cluster::RouterSpec &spec) {
        spec.expectKeys({});
        return std::make_unique<ScanShieldRouter>();
    });

core::RunStats
runMasstreeCluster(const std::string &router)
{
    core::ExperimentConfig cfg;
    cfg.workload = app::WorkloadSpec("masstree:scan_ratio=0.01");
    cfg.cluster.numServerNodes = 4;
    cfg.cluster.router = cluster::RouterSpec::parse(router);
    // Masstree point queries are ~10x HERD's service time; keep the
    // load well under the 4-node capacity.
    cfg.arrivalRps =
        0.6 * 4 * core::estimateCapacityRps(cfg.system, cfg.workload);
    cfg.warmupRpcs = 2000;
    cfg.measuredRpcs = 20000;
    return core::runExperiment(cfg);
}

void
printRun(const core::RunStats &r)
{
    std::printf("\n--- router = %s ---\n", r.router.c_str());
    std::printf("  per-node served:");
    for (const core::NodeStats &ns : r.perNode)
        std::printf("  node%u=%llu", ns.nodeId,
                    static_cast<unsigned long long>(ns.served));
    std::printf("\n  %-6s %12s %10s %10s\n", "class", "tput(Mrps)",
                "p50(us)", "p99(us)");
    for (const core::ClassStats &cs : r.perClass)
        std::printf("  %-6s %12.3f %10.2f %10.2f\n", cs.name.c_str(),
                    cs.achievedRps / 1e6, cs.p50Ns / 1e3,
                    cs.p99Ns / 1e3);
    std::printf("  critical p99 = %.2f us\n", r.point.p99Ns / 1e3);
}

} // namespace

int
main()
{
    using namespace rpcvalet;

    std::printf("Cluster routing playground (Masstree, 1%% scans, "
                "4 nodes, 60%% load)\n");

    std::printf("\n--- registered cluster routers (note 'scan-shield': "
                "registered by this example) ---\n ");
    for (const std::string &name :
         cluster::RouterRegistry::instance().names())
        std::printf(" %s", name.c_str());
    std::printf("\n");

    // Baseline: shard routing spreads scans over every node, so each
    // node's point queries occasionally queue behind a scan.
    const core::RunStats shard = runMasstreeCluster("shard");
    printRun(shard);

    // Scan shield: the same load with scans isolated on node 3 — the
    // get-serving nodes never see a scan, tightening the critical
    // tail; the scans' own p99 absorbs the shield node's queueing.
    const core::RunStats shield = runMasstreeCluster("scan-shield");
    printRun(shield);

    std::printf("\nscan-shield vs shard critical p99: %.2fx\n",
                shard.point.p99Ns / shield.point.p99Ns);
    std::printf("\nRouters are spec strings resolved by the "
                "cluster::RouterRegistry\n(see src/cluster/router.hh); "
                "class-aware routing uses RouteContext::classId.\n");
    return 0;
}
