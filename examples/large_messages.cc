/**
 * @file
 * Example: message size and the rendezvous cliff.
 *
 *   $ ./large_messages
 *
 * Sweeps the request payload size from one cache block to several KB.
 * Up to maxMsgBytes (2 KB) requests are unrolled into 64 B packets
 * and written straight into the receive buffer; beyond that the
 * sender ships a one-block descriptor and the destination NI pulls
 * the payload with a one-sided read (§4.2's rendezvous), which costs
 * an extra fabric round trip — visible as a latency step.
 */

#include <cstdio>

#include "app/wire_format.hh"
#include "core/experiment.hh"
#include "proto/packet.hh"
#include "sim/logging.hh"

int
main()
{
    using namespace rpcvalet;

    std::printf("Request size vs median latency (RPCValet 1x16, light "
                "load)\n\n");
    std::printf("%12s %10s %12s %12s %14s\n", "request(B)", "blocks",
                "p50(us)", "p99(us)", "path");

    for (const std::uint32_t padding :
         {24u, 500u, 1000u, 1900u, 2500u, 4000u, 8000u, 16000u}) {
        core::ExperimentConfig cfg;
        // The request size is a workload-spec parameter, so the whole
        // sweep is declarative.
        cfg.workload = app::WorkloadSpec(
            sim::strfmt("synthetic:dist=fixed,padding=%u", padding));
        cfg.arrivalRps = 1e6; // light load: pure path latency
        cfg.warmupRpcs = 500;
        cfg.measuredRpcs = 8000;
        const auto r = core::runExperiment(cfg);

        const std::uint32_t request_bytes =
            static_cast<std::uint32_t>(padding +
                                       app::requestHeaderBytes);
        std::printf("%12u %10u %12.2f %12.2f %14s\n", request_bytes,
                    proto::blocksForBytes(request_bytes),
                    r.point.p50Ns / 1e3, r.point.p99Ns / 1e3,
                    r.rendezvousRequests > 0 ? "rendezvous" : "inline");
    }

    std::printf("\nThe step past 2 KB is the rendezvous round trip; "
                "raise domain.maxMsgBytes to move the cliff.\n");
    return 0;
}
