/**
 * @file
 * Example: extending the arrival layer from *outside* src/net.
 *
 * Defines a new arrival process ("pareto:alpha=1.5" — bounded-mean
 * Pareto interarrival gaps, i.e. heavy-tailed silences between request
 * flurries), registers it with the net::ArrivalRegistry at static-init
 * time, and then drives the node under a ladder of arrival processes —
 * built-ins and the new one alike — purely by spec string through the
 * public experiment API. No file under src/ was touched to add the
 * process.
 *
 *   $ ./example_custom_arrival_playground
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.hh"
#include "sim/logging.hh"

namespace {

using namespace rpcvalet;

/**
 * Pareto-distributed interarrival gaps with tail index alpha > 1 and
 * the scale chosen so the mean gap matches the configured rate:
 * xm = mean * (alpha - 1) / alpha, X = xm * U^(-1/alpha). Smaller
 * alpha means a heavier tail — rare but enormous gaps separating
 * dense request trains.
 */
class ParetoArrival : public net::ArrivalProcess
{
  public:
    ParetoArrival(double rate_per_sec, double alpha)
        : alpha_(alpha),
          xmNs_((1e9 / rate_per_sec) * (alpha - 1.0) / alpha)
    {}

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        (void)now;
        return xmNs_ * std::pow(rng.uniformPositive(), -1.0 / alpha_);
    }

    std::string
    name() const override
    {
        return sim::strfmt("pareto:alpha=%g", alpha_);
    }

  private:
    double alpha_;
    double xmNs_;
};

// Static-init registration: this is all it takes to make
// "pareto:alpha=1.5" usable from ExperimentConfig, the benches'
// --arrival= flag, and ablation_burstiness's arrival axis.
const net::ArrivalRegistrar paretoRegistrar(
    "pareto", [](const net::ArrivalSpec &spec, double rate) {
        spec.expectKeys({"alpha"});
        const double alpha = spec.doubleParam("alpha", 1.5);
        if (!(alpha > 1.0)) {
            sim::fatal("arrival '" + spec.toString() +
                       "': pareto needs alpha > 1 (finite mean)");
        }
        return std::make_unique<ParetoArrival>(rate, alpha);
    });

double
p99AtLoad(const net::ArrivalSpec &arrival, double utilization)
{
    // Declarative run: arrival and workload are both registry specs.
    node::SystemParams sys;
    const app::WorkloadSpec workload("synthetic:dist=gev");
    const double capacity = core::estimateCapacityRps(sys, workload);
    core::ExperimentConfig cfg;
    cfg.system = sys;
    cfg.arrival = arrival;
    cfg.workload = workload;
    cfg.arrivalRps = utilization * capacity;
    cfg.warmupRpcs = 2000;
    cfg.measuredRpcs = 25000;
    return core::runExperiment(cfg).point.p99Ns;
}

} // namespace

int
main()
{
    using namespace rpcvalet;

    std::printf("Arrival-process playground (GEV service, greedy 1x16, "
                "70%% load)\n\n");

    std::printf("--- registered arrival processes (note 'pareto': "
                "registered by this example) ---\n");
    for (const std::string &name :
         net::ArrivalRegistry::instance().names())
        std::printf("  %s\n", name.c_str());

    std::printf("\n--- p99 under increasing burstiness, same average "
                "load ---\n");
    for (const char *spec :
         {"deterministic", "poisson", "lognormal:cv=2", "lognormal:cv=4",
          "mmpp2:burst=0.1,ratio=8", "pareto:alpha=2.5",
          "pareto:alpha=1.5"}) {
        std::printf("  %-28s p99 = %8.2f us\n", spec,
                    p99AtLoad(net::ArrivalSpec(spec), 0.7) / 1e3);
    }

    std::printf("\n--- time-varying load: ramps through the same mean "
                "---\n");
    for (const char *spec :
         {"ramp:from=1,to=1", "ramp:from=0.5,to=1.5,over=1ms",
          "ramp:from=0.2,to=1.8,over=1ms"}) {
        std::printf("  %-28s p99 = %8.2f us\n", spec,
                    p99AtLoad(net::ArrivalSpec(spec), 0.7) / 1e3);
    }

    std::printf("\nArrival processes are spec strings resolved by the "
                "net::ArrivalRegistry\n(see src/net/arrival.hh); every "
                "bench accepts --arrival=SPEC.\n");
    return 0;
}
