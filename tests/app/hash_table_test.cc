/**
 * @file
 * Unit and property tests for the separate-chaining hash table.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "app/hash_table.hh"
#include "sim/rng.hh"

namespace {

using rpcvalet::app::HashTable;

std::vector<std::uint8_t>
val(std::uint8_t b)
{
    return std::vector<std::uint8_t>{b, b, b};
}

TEST(HashTable, PutGetRoundTrip)
{
    HashTable t;
    EXPECT_TRUE(t.put(42, val(1)));
    const auto got = t.get(42);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, val(1));
}

TEST(HashTable, MissingKeyReturnsNullopt)
{
    HashTable t;
    t.put(1, val(1));
    EXPECT_FALSE(t.get(2).has_value());
    EXPECT_FALSE(t.contains(2));
}

TEST(HashTable, OverwriteKeepsSingleEntry)
{
    HashTable t;
    EXPECT_TRUE(t.put(5, val(1)));
    EXPECT_FALSE(t.put(5, val(2))); // overwrite returns false
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(*t.get(5), val(2));
}

TEST(HashTable, EraseRemovesKey)
{
    HashTable t;
    t.put(9, val(1));
    EXPECT_TRUE(t.erase(9));
    EXPECT_FALSE(t.contains(9));
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.erase(9));
}

TEST(HashTable, GrowsUnderLoad)
{
    HashTable t(8);
    const std::size_t initial = t.buckets();
    for (std::uint64_t k = 0; k < 1000; ++k)
        t.put(k, val(static_cast<std::uint8_t>(k)));
    EXPECT_GT(t.buckets(), initial);
    EXPECT_LT(t.loadFactor(), 0.76);
    // All keys survive the rehashes.
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_TRUE(t.contains(k)) << "key " << k;
        EXPECT_EQ(*t.get(k), val(static_cast<std::uint8_t>(k)));
    }
}

TEST(HashTable, ChainsStayShortWithGoodHash)
{
    HashTable t;
    for (std::uint64_t k = 0; k < 20000; ++k)
        t.put(k * 64, val(1)); // adversarial stride
    EXPECT_LT(t.maxChainLength(), 12u);
}

TEST(HashTable, AdversarialCollidingKeysStillCorrect)
{
    HashTable t(8);
    // Keys differing only in high bits stress the mixer.
    for (std::uint64_t k = 0; k < 256; ++k)
        t.put(k << 48, val(static_cast<std::uint8_t>(k)));
    for (std::uint64_t k = 0; k < 256; ++k)
        EXPECT_EQ(*t.get(k << 48), val(static_cast<std::uint8_t>(k)));
}

TEST(HashTable, MatchesReferenceMapUnderRandomOps)
{
    // Property test: random put/get/erase mirror a std::map oracle.
    HashTable t;
    std::map<std::uint64_t, std::vector<std::uint8_t>> oracle;
    rpcvalet::sim::Rng rng(99);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t key = rng.uniformInt(0, 499);
        const int op = static_cast<int>(rng.uniformInt(0, 2));
        if (op == 0) {
            auto v = val(static_cast<std::uint8_t>(i));
            t.put(key, v);
            oracle[key] = v;
        } else if (op == 1) {
            const auto got = t.get(key);
            const auto ref = oracle.find(key);
            if (ref == oracle.end()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, ref->second);
            }
        } else {
            EXPECT_EQ(t.erase(key), oracle.erase(key) > 0);
        }
        ASSERT_EQ(t.size(), oracle.size());
    }
}

TEST(HashTable, EmptyValueSupported)
{
    HashTable t;
    t.put(1, {});
    const auto got = t.get(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->empty());
}

} // namespace
