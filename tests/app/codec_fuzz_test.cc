/**
 * @file
 * Property/fuzz tests for the wire-format codec: random structured
 * inputs round-trip exactly; random unstructured bytes either parse
 * or are rejected, but never misbehave.
 */

#include <gtest/gtest.h>

#include <vector>

#include "app/wire_format.hh"
#include "sim/rng.hh"

namespace {

using namespace rpcvalet;
using namespace rpcvalet::app;

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CodecFuzz, RandomRequestsRoundTrip)
{
    sim::Rng rng(GetParam());
    for (int i = 0; i < 2000; ++i) {
        RpcRequest req;
        req.op = static_cast<RpcOp>(rng.uniformInt(0, 4));
        req.key = rng.next();
        req.count = static_cast<std::uint32_t>(rng.uniformInt(0, 1000));
        req.value.resize(rng.uniformInt(0, 300));
        for (auto &b : req.value)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

        const auto bytes = encodeRequest(req);
        const auto back = decodeRequest(bytes);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->op, req.op);
        EXPECT_EQ(back->key, req.key);
        EXPECT_EQ(back->count, req.count);
        EXPECT_EQ(back->value, req.value);
    }
}

TEST_P(CodecFuzz, RandomRepliesRoundTrip)
{
    sim::Rng rng(GetParam() ^ 0xABCD);
    for (int i = 0; i < 2000; ++i) {
        RpcReply reply;
        reply.status = static_cast<RpcStatus>(rng.uniformInt(0, 2));
        reply.value.resize(rng.uniformInt(0, 600));
        for (auto &b : reply.value)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

        const auto back = decodeReply(encodeReply(reply));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->status, reply.status);
        EXPECT_EQ(back->value, reply.value);
    }
}

TEST_P(CodecFuzz, ArbitraryBytesNeverCrashDecoder)
{
    sim::Rng rng(GetParam() ^ 0x5EED);
    for (int i = 0; i < 5000; ++i) {
        std::vector<std::uint8_t> junk(rng.uniformInt(0, 64));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        // Must either parse consistently or reject; asserted by not
        // crashing and by re-encoding parsed values losslessly.
        if (const auto req = decodeRequest(junk); req.has_value()) {
            const auto re = encodeRequest(*req);
            const auto again = decodeRequest(re);
            ASSERT_TRUE(again.has_value());
            EXPECT_EQ(again->key, req->key);
        }
        if (const auto rep = decodeReply(junk); rep.has_value()) {
            const auto re = encodeReply(*rep);
            EXPECT_TRUE(decodeReply(re).has_value());
        }
    }
}

TEST_P(CodecFuzz, TruncationAtEveryPointRejectsOrParses)
{
    sim::Rng rng(GetParam() ^ 0x77);
    RpcRequest req;
    req.op = RpcOp::Put;
    req.key = rng.next();
    req.value.assign(50, 0xAB);
    const auto full = encodeRequest(req);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        std::vector<std::uint8_t> prefix(full.begin(),
                                         full.begin() +
                                             static_cast<long>(cut));
        // A strict prefix must never decode to the original request
        // (the vlen field guards the value bytes).
        const auto back = decodeRequest(prefix);
        if (back.has_value()) {
            EXPECT_NE(back->value, req.value);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1u, 42u, 0xDEADBEEFu));

} // namespace
