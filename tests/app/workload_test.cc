/**
 * @file
 * Unit tests for the spec-driven workload layer: WorkloadSpec parsing,
 * the WorkloadRegistry (errors, external registration), the built-in
 * factories' parameter wiring, and the composite "mix" workload's
 * class-table construction and request tagging.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "app/masstree_app.hh"
#include "app/wire_format.hh"
#include "app/workload.hh"
#include "sim/rng.hh"

namespace {

using namespace rpcvalet;
using app::WorkloadRegistry;
using app::WorkloadSpec;

TEST(WorkloadSpec, DefaultIsHerd)
{
    const WorkloadSpec spec;
    EXPECT_EQ(spec.name, "herd");
    EXPECT_TRUE(spec.params.empty());
    EXPECT_EQ(spec.what, "workload");
}

TEST(WorkloadSpec, ParseRoundTrips)
{
    const WorkloadSpec spec("masstree:scan_ratio=0.02,keys=1000");
    EXPECT_EQ(spec.name, "masstree");
    EXPECT_EQ(WorkloadSpec(spec.toString()), spec);
}

TEST(WorkloadRegistry, BuiltinsAreRegistered)
{
    auto &reg = WorkloadRegistry::instance();
    for (const char *name : {"herd", "masstree", "masstree-get",
                             "masstree-scan", "synthetic", "mix"})
        EXPECT_TRUE(reg.contains(name)) << name;
}

TEST(WorkloadRegistry, ExternalRegistrationIsUsableAndMixable)
{
    // Registered here, outside src/app — and immediately selectable by
    // spec string, including as a mix component.
    static const app::WorkloadRegistrar reg(
        "wl-test-external", [](const WorkloadSpec &spec) {
            spec.expectKeys({});
            return WorkloadRegistry::instance().make(
                WorkloadSpec("herd"));
        });
    EXPECT_TRUE(
        WorkloadRegistry::instance().contains("wl-test-external"));
    const auto app = WorkloadRegistry::instance().make(
        WorkloadSpec("wl-test-external"));
    EXPECT_EQ(app->name(), "herd");
    const auto mixed = WorkloadRegistry::instance().make(
        WorkloadSpec("mix:herd=0.5,wl-test-external=0.5"));
    ASSERT_EQ(mixed->requestClasses().size(), 2u);
    EXPECT_EQ(mixed->requestClasses()[1].name, "wl-test-external");
}

TEST(WorkloadRegistryDeath, UnknownNameIsFatalListingAlternatives)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("nonesuch")),
                ::testing::ExitedWithCode(1),
                "unknown workload 'nonesuch'.*herd.*mix");
}

TEST(WorkloadRegistryDeath, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(WorkloadRegistry::instance().add(
                    "herd",
                    [](const WorkloadSpec &) {
                        return WorkloadRegistry::instance().make(
                            WorkloadSpec("herd"));
                    }),
                ::testing::ExitedWithCode(1),
                "already registered");
}

TEST(WorkloadRegistryDeath, UnknownParameterKeyIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("herd:scan_ratio=0.5")),
                ::testing::ExitedWithCode(1),
                "unknown parameter 'scan_ratio'");
}

TEST(WorkloadBuiltins, HerdParameterWiring)
{
    const auto app = WorkloadRegistry::instance().make(
        WorkloadSpec("herd:keys=128,read_ratio=0.5"));
    EXPECT_EQ(app->name(), "herd");
    ASSERT_EQ(app->requestClasses().size(), 1u);
    EXPECT_TRUE(app->requestClasses()[0].latencyCritical);
    EXPECT_GT(app->requestClasses()[0].sloNs, 0.0);
}

TEST(WorkloadBuiltinsDeath, HerdReadRatioOutOfRangeIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("herd:read_ratio=1.5")),
                ::testing::ExitedWithCode(1),
                "read_ratio must be in");
}

TEST(WorkloadBuiltins, SyntheticDistWiring)
{
    const auto gev = WorkloadRegistry::instance().make(
        WorkloadSpec("synthetic:dist=gev"));
    EXPECT_EQ(gev->name(), "synthetic-gev");
    const auto fixed = WorkloadRegistry::instance().make(
        WorkloadSpec("synthetic:dist=fixed"));
    EXPECT_EQ(fixed->name(), "synthetic-fixed");
    // Default dist is gev.
    EXPECT_EQ(WorkloadRegistry::instance()
                  .make(WorkloadSpec("synthetic"))
                  ->name(),
              "synthetic-gev");
    // padding= grows the request.
    sim::Rng rng(7);
    const auto padded = WorkloadRegistry::instance().make(
        WorkloadSpec("synthetic:padding=500"));
    EXPECT_EQ(padded->makeRequest(rng).size(),
              app::requestHeaderBytes + 500);
}

TEST(WorkloadBuiltinsDeath, SyntheticUnknownDistIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("synthetic:dist=zipf")),
                ::testing::ExitedWithCode(1),
                "unknown dist 'zipf'.*gev");
}

TEST(WorkloadBuiltins, MasstreeClassTablesFollowScanRatio)
{
    const auto mixed = WorkloadRegistry::instance().make(
        WorkloadSpec("masstree:scan_ratio=0.3"));
    ASSERT_EQ(mixed->requestClasses().size(), 2u);
    EXPECT_EQ(mixed->requestClasses()[0].name, "get");
    EXPECT_TRUE(mixed->requestClasses()[0].latencyCritical);
    EXPECT_NEAR(mixed->requestClasses()[0].sloNs, 12500.0, 500.0);
    EXPECT_EQ(mixed->requestClasses()[1].name, "scan");
    EXPECT_FALSE(mixed->requestClasses()[1].latencyCritical);

    const auto gets = WorkloadRegistry::instance().make(
        WorkloadSpec("masstree-get"));
    ASSERT_EQ(gets->requestClasses().size(), 1u);
    EXPECT_EQ(gets->requestClasses()[0].name, "get");

    const auto scans = WorkloadRegistry::instance().make(
        WorkloadSpec("masstree-scan"));
    ASSERT_EQ(scans->requestClasses().size(), 1u);
    EXPECT_EQ(scans->requestClasses()[0].name, "scan");
    EXPECT_FALSE(scans->requestClasses()[0].latencyCritical);
}

TEST(WorkloadBuiltins, MasstreeStampsScanClassOnTheWire)
{
    app::MasstreeApp::Params p;
    p.getFraction = 0.0; // scans only, single class -> id 0
    app::MasstreeApp scan_only(p);
    sim::Rng rng(3);
    const auto request = scan_only.makeRequest(rng);
    EXPECT_EQ(request[app::requestClassOffset], 0);
    const auto decoded = app::decodeRequest(request);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, app::RpcOp::Scan);

    p.getFraction = 0.5; // mixed -> scans are class 1
    app::MasstreeApp half(p);
    bool saw_scan = false;
    for (int i = 0; i < 64; ++i) {
        const auto req = app::decodeRequest(half.makeRequest(rng));
        ASSERT_TRUE(req.has_value());
        if (req->op == app::RpcOp::Scan) {
            EXPECT_EQ(req->classId, 1);
            saw_scan = true;
        } else {
            EXPECT_EQ(req->classId, 0);
        }
    }
    EXPECT_TRUE(saw_scan);
}

TEST(MixWorkload, ClassTableConcatenatesComponents)
{
    const auto mix = WorkloadRegistry::instance().make(
        WorkloadSpec("mix:masstree-get=0.998,masstree-scan=0.002"));
    const auto classes = mix->requestClasses();
    ASSERT_EQ(classes.size(), 2u);
    // Components in sorted-name order; single-class components report
    // under their workload name.
    EXPECT_EQ(classes[0].name, "masstree-get");
    EXPECT_TRUE(classes[0].latencyCritical);
    EXPECT_EQ(classes[1].name, "masstree-scan");
    EXPECT_FALSE(classes[1].latencyCritical);
    // Multi-class components get "workload.class" tags.
    const auto nested = WorkloadRegistry::instance().make(
        WorkloadSpec("mix:herd=0.5,masstree=0.5"));
    const auto nested_classes = nested->requestClasses();
    ASSERT_EQ(nested_classes.size(), 3u);
    EXPECT_EQ(nested_classes[0].name, "herd");
    EXPECT_EQ(nested_classes[1].name, "masstree.get");
    EXPECT_EQ(nested_classes[2].name, "masstree.scan");
}

TEST(MixWorkload, RequestsCarryGlobalClassIds)
{
    const auto mix = WorkloadRegistry::instance().make(
        WorkloadSpec("mix:herd=0.5,masstree=0.5"));
    sim::Rng client(11);
    sim::Rng server(12);
    bool saw[3] = {false, false, false};
    // Scans are 0.5 * 0.01 of draws; 4000 draws make a miss
    // astronomically unlikely (and the seed is fixed anyway).
    for (int i = 0; i < 4000; ++i) {
        const auto request = mix->makeRequest(client);
        const std::uint8_t cls = request[app::requestClassOffset];
        ASSERT_LT(cls, 3);
        saw[cls] = true;
        // The server echoes the same global id through HandleResult.
        const auto result = mix->handle(request, server);
        EXPECT_EQ(result.classId, cls);
        EXPECT_TRUE(mix->verifyReply(request, result.reply));
    }
    EXPECT_TRUE(saw[0]); // herd
    EXPECT_TRUE(saw[1]); // masstree get
    EXPECT_TRUE(saw[2]); // masstree scan
}

/**
 * Two-class echo workload whose handle() branches on the wire class
 * byte (like the bimodal playground): used to prove mix components
 * observe component-LOCAL class ids, not the mix's global remapping.
 */
class ClassEchoApp : public app::RpcApplication
{
  public:
    std::vector<std::uint8_t>
    makeRequest(sim::Rng &client_rng) override
    {
        app::RpcRequest req;
        req.op = app::RpcOp::Echo;
        req.classId = client_rng.uniform() < 0.5 ? 0 : 1;
        return app::encodeRequest(req);
    }

    app::HandleResult
    handle(const std::vector<std::uint8_t> &request,
           sim::Rng &) override
    {
        const auto req = app::decodeRequest(request);
        app::HandleResult result;
        result.processingNs = 100.0;
        // The component must never see a foreign (global) id.
        EXPECT_TRUE(req.has_value());
        EXPECT_LT(req->classId, 2);
        result.classId = req->classId;
        result.reply = app::encodeReply(app::RpcReply{});
        return result;
    }

    bool
    verifyReply(const std::vector<std::uint8_t> &request,
                const std::vector<std::uint8_t> &) const override
    {
        const auto req = app::decodeRequest(request);
        return req.has_value() && req->classId < 2;
    }

    double meanProcessingNs() const override { return 100.0; }

    std::vector<app::RequestClass>
    requestClasses() const override
    {
        return {app::RequestClass{"a", true, 0.0},
                app::RequestClass{"b", true, 0.0}};
    }

    std::string name() const override { return "wl-test-classecho"; }
};

TEST(MixWorkload, ComponentsSeeLocalClassIdsInHandleAndVerify)
{
    static const app::WorkloadRegistrar reg(
        "wl-test-classecho", [](const WorkloadSpec &spec) {
            spec.expectKeys({});
            return std::make_unique<ClassEchoApp>();
        });
    // "herd" sorts first, so the echo component's classBase is 1: its
    // local classes {0, 1} occupy global ids {1, 2}.
    const auto mix = WorkloadRegistry::instance().make(
        WorkloadSpec("mix:herd=0.5,wl-test-classecho=0.5"));
    sim::Rng client(21);
    sim::Rng server(22);
    bool saw_echo = false;
    for (int i = 0; i < 64; ++i) {
        const auto request = mix->makeRequest(client);
        const std::uint8_t global = request[app::requestClassOffset];
        const auto result = mix->handle(request, server);
        // handle() remaps the component's local echo back to the
        // global id — and ClassEchoApp itself asserts it only ever
        // saw local ids on the wire.
        EXPECT_EQ(result.classId, global);
        EXPECT_TRUE(mix->verifyReply(request, result.reply));
        saw_echo = saw_echo || global > 0;
    }
    EXPECT_TRUE(saw_echo);
}

TEST(MixWorkload, SingleComponentConsumesNoExtraRandomness)
{
    // "mix:herd=1" must replay "herd" bit-for-bit: same client RNG
    // stream, same request bytes.
    const auto plain =
        WorkloadRegistry::instance().make(WorkloadSpec("herd"));
    const auto mix =
        WorkloadRegistry::instance().make(WorkloadSpec("mix:herd=1"));
    sim::Rng a(99);
    sim::Rng b(99);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(plain->makeRequest(a), mix->makeRequest(b));
    EXPECT_DOUBLE_EQ(plain->meanProcessingNs(), mix->meanProcessingNs());
}

TEST(MixWorkload, MeanProcessingIsWeighted)
{
    const auto herd =
        WorkloadRegistry::instance().make(WorkloadSpec("herd"));
    const auto scan =
        WorkloadRegistry::instance().make(WorkloadSpec("masstree-scan"));
    const auto mix = WorkloadRegistry::instance().make(
        WorkloadSpec("mix:herd=0.75,masstree-scan=0.25"));
    EXPECT_NEAR(mix->meanProcessingNs(),
                0.75 * herd->meanProcessingNs() +
                    0.25 * scan->meanProcessingNs(),
                1e-6);
}

TEST(MixWorkloadDeath, EmptyMixIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("mix")),
                ::testing::ExitedWithCode(1),
                "at least one CLASS=WEIGHT");
}

TEST(MixWorkloadDeath, UnknownComponentIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("mix:nonesuch=1")),
                ::testing::ExitedWithCode(1),
                "'nonesuch' is not a registered workload");
}

TEST(MixWorkloadDeath, NonPositiveWeightIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("mix:herd=0")),
                ::testing::ExitedWithCode(1),
                "weight of 'herd' must be a positive number");
}

TEST(MixWorkloadDeath, NestedMixIsFatal)
{
    EXPECT_EXIT((void)WorkloadRegistry::instance().make(
                    WorkloadSpec("mix:herd=0.5,mix=0.5")),
                ::testing::ExitedWithCode(1), "cannot nest");
}

} // namespace
