/**
 * @file
 * Unit tests for the three workload applications and their Fig. 6
 * processing-time profiles.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "app/herd_app.hh"
#include "app/masstree_app.hh"
#include "app/service_profiles.hh"
#include "app/synthetic_app.hh"
#include "app/wire_format.hh"

namespace {

using namespace rpcvalet;
using namespace rpcvalet::app;

// --------------------------------------------------------- profiles

TEST(Profiles, HerdMeanMatchesFig6b)
{
    // Fig. 6b: HERD processing times have a mean of 330 ns.
    auto d = makeHerdProfile();
    EXPECT_NEAR(d->mean(), 330.0, 12.0);
    sim::Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        const double x = d->sample(rng);
        EXPECT_GE(x, 80.0);
        EXPECT_LE(x, 1000.0);
    }
}

TEST(Profiles, MasstreeGetMeanMatchesFig6c)
{
    // Fig. 6c: gets average 1.25 us.
    auto d = makeMasstreeGetProfile();
    EXPECT_NEAR(d->mean(), 1250.0, 50.0);
}

TEST(Profiles, MasstreeScanRangeMatchesPaper)
{
    // §5: scans run 60-120 us.
    auto d = makeMasstreeScanProfile();
    EXPECT_DOUBLE_EQ(d->mean(), 90000.0);
    sim::Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const double x = d->sample(rng);
        EXPECT_GE(x, 60000.0);
        EXPECT_LT(x, 120000.0);
    }
}

// --------------------------------------------------------- synthetic

TEST(SyntheticApp, RequestReplyRoundTripVerifies)
{
    SyntheticApp app(sim::SyntheticKind::Fixed);
    sim::Rng client(1), server(2);
    const auto req = app.makeRequest(client);
    const auto result = app.handle(req, server);
    EXPECT_TRUE(result.latencyCritical);
    EXPECT_EQ(result.reply.size(), SyntheticApp::replyBytes);
    EXPECT_TRUE(app.verifyReply(req, result.reply));
}

TEST(SyntheticApp, MismatchedReplyFailsVerification)
{
    SyntheticApp app(sim::SyntheticKind::Fixed);
    sim::Rng client(1), server(2);
    const auto req_a = app.makeRequest(client);
    const auto req_b = app.makeRequest(client);
    const auto result_a = app.handle(req_a, server);
    EXPECT_FALSE(app.verifyReply(req_b, result_a.reply));
}

TEST(SyntheticApp, ProcessingTimeFollowsDistribution)
{
    SyntheticApp app(sim::SyntheticKind::Fixed);
    sim::Rng client(1), server(2);
    const auto req = app.makeRequest(client);
    for (int i = 0; i < 100; ++i) {
        const auto result = app.handle(req, server);
        EXPECT_DOUBLE_EQ(result.processingNs, 600.0); // 300 + 300 fixed
    }
    EXPECT_NEAR(app.meanProcessingNs(), 600.0, 5.0);
}

TEST(SyntheticApp, MalformedRequestYieldsErrorReply)
{
    SyntheticApp app(sim::SyntheticKind::Fixed);
    sim::Rng server(2);
    const auto result = app.handle({1, 2, 3}, server);
    const auto reply = decodeReply(result.reply);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, RpcStatus::Error);
}

// --------------------------------------------------------------- HERD

TEST(HerdApp, PreloadsAllKeys)
{
    HerdApp::Params p;
    p.numKeys = 1000;
    HerdApp app(p);
    EXPECT_EQ(app.table().size(), 1000u);
}

TEST(HerdApp, GetReturnsCanonicalValue)
{
    HerdApp app;
    sim::Rng server(3);
    RpcRequest req;
    req.op = RpcOp::Get;
    req.key = 123;
    const auto result = app.handle(encodeRequest(req), server);
    const auto reply = decodeReply(result.reply);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, RpcStatus::Ok);
    EXPECT_EQ(reply->value, app.valueForKey(123));
}

TEST(HerdApp, PutThenGetRoundTrips)
{
    HerdApp app;
    sim::Rng server(3);
    RpcRequest put;
    put.op = RpcOp::Put;
    put.key = 77;
    put.value = app.valueForKey(77);
    app.handle(encodeRequest(put), server);

    RpcRequest get;
    get.op = RpcOp::Get;
    get.key = 77;
    const auto result = app.handle(encodeRequest(get), server);
    EXPECT_TRUE(app.verifyReply(encodeRequest(get), result.reply));
}

TEST(HerdApp, RequestMixMatchesReadFraction)
{
    HerdApp::Params p;
    p.readFraction = 0.95;
    HerdApp app(p);
    sim::Rng client(5);
    int gets = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto req = decodeRequest(app.makeRequest(client));
        ASSERT_TRUE(req.has_value());
        gets += (req->op == RpcOp::Get);
    }
    EXPECT_NEAR(gets / static_cast<double>(n), 0.95, 0.01);
}

TEST(HerdApp, EveryGeneratedRequestVerifies)
{
    HerdApp app;
    sim::Rng client(6), server(7);
    for (int i = 0; i < 5000; ++i) {
        const auto req = app.makeRequest(client);
        const auto result = app.handle(req, server);
        EXPECT_TRUE(app.verifyReply(req, result.reply)) << "i=" << i;
        EXPECT_TRUE(result.latencyCritical);
    }
}

TEST(HerdApp, ProcessingTimesInProfileRange)
{
    HerdApp app;
    sim::Rng client(8), server(9);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const auto result = app.handle(app.makeRequest(client), server);
        EXPECT_GE(result.processingNs, 80.0);
        EXPECT_LE(result.processingNs, 1000.0);
        sum += result.processingNs;
    }
    EXPECT_NEAR(sum / n, 330.0, 15.0);
}

TEST(HerdApp, DeleteLifecycle)
{
    HerdApp app;
    sim::Rng server(3);
    RpcRequest del;
    del.op = RpcOp::Del;
    del.key = 5;
    auto result = app.handle(encodeRequest(del), server);
    EXPECT_EQ(decodeReply(result.reply)->status, RpcStatus::Ok);
    result = app.handle(encodeRequest(del), server);
    EXPECT_EQ(decodeReply(result.reply)->status, RpcStatus::NotFound);
}

// ----------------------------------------------------------- Masstree

TEST(MasstreeApp, GetReturnsCanonicalValue)
{
    MasstreeApp app;
    sim::Rng server(3);
    RpcRequest req;
    req.op = RpcOp::Get;
    req.key = 16 * 50; // key 50 at stride 16
    const auto result = app.handle(encodeRequest(req), server);
    EXPECT_TRUE(app.verifyReply(encodeRequest(req), result.reply));
    EXPECT_TRUE(result.latencyCritical);
}

TEST(MasstreeApp, ScanReturnsOrderedEntriesAndIsNotCritical)
{
    MasstreeApp::Params p;
    p.numKeys = 1000;
    MasstreeApp app(p);
    sim::Rng server(3);
    RpcRequest req;
    req.op = RpcOp::Scan;
    req.key = 16 * 10;
    req.count = 100;
    const auto result = app.handle(encodeRequest(req), server);
    EXPECT_FALSE(result.latencyCritical);
    EXPECT_GE(result.processingNs, 60000.0);
    EXPECT_LE(result.processingNs, 120000.0);
    EXPECT_TRUE(app.verifyReply(encodeRequest(req), result.reply));
    // Reply packs (8-byte key + value) entries, capped by the reply
    // budget.
    const auto reply = decodeReply(result.reply);
    ASSERT_TRUE(reply.has_value());
    const std::size_t entry_bytes = 8 + 8;
    EXPECT_EQ(reply->value.size() % entry_bytes, 0u);
    EXPECT_GT(reply->value.size() / entry_bytes, 50u);
}

TEST(MasstreeApp, ScanReplyRespectsSizeCap)
{
    MasstreeApp::Params p;
    p.maxReplyValueBytes = 160; // 10 entries max
    MasstreeApp app(p);
    sim::Rng server(3);
    RpcRequest req;
    req.op = RpcOp::Scan;
    req.key = 0;
    req.count = 100;
    const auto result = app.handle(encodeRequest(req), server);
    const auto reply = decodeReply(result.reply);
    ASSERT_TRUE(reply.has_value());
    EXPECT_LE(reply->value.size(), 160u);
}

TEST(MasstreeApp, RequestMixMatchesGetFraction)
{
    MasstreeApp app;
    sim::Rng client(5);
    int scans = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const auto req = decodeRequest(app.makeRequest(client));
        ASSERT_TRUE(req.has_value());
        scans += (req->op == RpcOp::Scan);
    }
    EXPECT_NEAR(scans / static_cast<double>(n), 0.01, 0.003);
}

TEST(MasstreeApp, MeanProcessingBlendsGetsAndScans)
{
    MasstreeApp app;
    // 0.99 * ~1.25us + 0.01 * 90us ~= 2.14 us.
    EXPECT_NEAR(app.meanProcessingNs(), 2140.0, 150.0);
    EXPECT_NEAR(app.latencyCriticalMeanNs(), 1250.0, 50.0);
}

TEST(MasstreeApp, EveryGeneratedRequestVerifies)
{
    MasstreeApp app;
    sim::Rng client(6), server(7);
    for (int i = 0; i < 3000; ++i) {
        const auto req = app.makeRequest(client);
        const auto result = app.handle(req, server);
        EXPECT_TRUE(app.verifyReply(req, result.reply)) << "i=" << i;
    }
}

} // namespace
