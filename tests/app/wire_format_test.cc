/**
 * @file
 * Unit tests for the RPC wire format codec.
 */

#include <gtest/gtest.h>

#include "app/wire_format.hh"

namespace {

using namespace rpcvalet::app;

TEST(WireFormat, RequestRoundTrip)
{
    RpcRequest req;
    req.op = RpcOp::Put;
    req.key = 0xDEADBEEFCAFEF00DULL;
    req.count = 42;
    req.value = {1, 2, 3, 4, 5};
    const auto bytes = encodeRequest(req);
    EXPECT_EQ(bytes.size(), requestHeaderBytes + 5);
    const auto back = decodeRequest(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, RpcOp::Put);
    EXPECT_EQ(back->key, req.key);
    EXPECT_EQ(back->count, 42u);
    EXPECT_EQ(back->value, req.value);
}

TEST(WireFormat, RequestRoundTripEmptyValue)
{
    RpcRequest req;
    req.op = RpcOp::Get;
    req.key = 7;
    const auto back = decodeRequest(encodeRequest(req));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, RpcOp::Get);
    EXPECT_EQ(back->key, 7u);
    EXPECT_TRUE(back->value.empty());
}

TEST(WireFormat, ReplyRoundTrip)
{
    RpcReply reply;
    reply.status = RpcStatus::NotFound;
    reply.value = {9, 8, 7};
    const auto back = decodeReply(encodeReply(reply));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->status, RpcStatus::NotFound);
    EXPECT_EQ(back->value, reply.value);
}

TEST(WireFormat, TruncatedRequestRejected)
{
    RpcRequest req;
    req.op = RpcOp::Get;
    auto bytes = encodeRequest(req);
    bytes.resize(requestHeaderBytes - 1);
    EXPECT_FALSE(decodeRequest(bytes).has_value());
}

TEST(WireFormat, ValueLengthBeyondBufferRejected)
{
    RpcRequest req;
    req.op = RpcOp::Put;
    req.value = {1, 2, 3};
    auto bytes = encodeRequest(req);
    bytes.resize(bytes.size() - 1); // chop one value byte
    EXPECT_FALSE(decodeRequest(bytes).has_value());
}

TEST(WireFormat, UnknownOpRejected)
{
    RpcRequest req;
    req.op = RpcOp::Get;
    auto bytes = encodeRequest(req);
    bytes[0] = 99;
    EXPECT_FALSE(decodeRequest(bytes).has_value());
}

TEST(WireFormat, UnknownStatusRejected)
{
    RpcReply reply;
    auto bytes = encodeReply(reply);
    bytes[0] = 50;
    EXPECT_FALSE(decodeReply(bytes).has_value());
}

TEST(WireFormat, EmptyBufferRejected)
{
    EXPECT_FALSE(decodeRequest({}).has_value());
    EXPECT_FALSE(decodeReply({}).has_value());
}

TEST(WireFormat, KeyEncodingIsLittleEndian)
{
    RpcRequest req;
    req.op = RpcOp::Get;
    req.key = 0x0102030405060708ULL;
    const auto bytes = encodeRequest(req);
    EXPECT_EQ(bytes[2], 0x08);
    EXPECT_EQ(bytes[9], 0x01);
}

TEST(WireFormat, ClassIdRoundTripsAtItsFixedOffset)
{
    RpcRequest req;
    req.op = RpcOp::Scan;
    req.classId = 7;
    req.key = 99;
    const auto bytes = encodeRequest(req);
    EXPECT_EQ(bytes[requestClassOffset], 7);
    const auto back = decodeRequest(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->classId, 7);
    // The class byte is patchable in place (composite workloads remap
    // component-local ids into their global class table).
    auto patched = bytes;
    patched[requestClassOffset] = 3;
    EXPECT_EQ(decodeRequest(patched)->classId, 3);
}

} // namespace
