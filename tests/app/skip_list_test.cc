/**
 * @file
 * Unit and property tests for the ordered skip list.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "app/skip_list.hh"
#include "sim/rng.hh"

namespace {

using rpcvalet::app::SkipList;

std::vector<std::uint8_t>
val(std::uint8_t b)
{
    return std::vector<std::uint8_t>{b, b};
}

TEST(SkipList, InsertFindRoundTrip)
{
    SkipList s;
    EXPECT_TRUE(s.insert(10, val(1)));
    const auto got = s.find(10);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, val(1));
    EXPECT_EQ(s.size(), 1u);
}

TEST(SkipList, MissingKeyNotFound)
{
    SkipList s;
    s.insert(10, val(1));
    EXPECT_FALSE(s.find(11).has_value());
    EXPECT_FALSE(s.find(9).has_value());
}

TEST(SkipList, OverwriteKeepsSingleEntry)
{
    SkipList s;
    EXPECT_TRUE(s.insert(5, val(1)));
    EXPECT_FALSE(s.insert(5, val(2)));
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(*s.find(5), val(2));
}

TEST(SkipList, EraseRemovesKey)
{
    SkipList s;
    s.insert(3, val(1));
    s.insert(4, val(2));
    EXPECT_TRUE(s.erase(3));
    EXPECT_FALSE(s.find(3).has_value());
    EXPECT_TRUE(s.find(4).has_value());
    EXPECT_FALSE(s.erase(3));
    EXPECT_EQ(s.size(), 1u);
}

TEST(SkipList, ScanReturnsConsecutiveOrderedKeys)
{
    SkipList s;
    for (std::uint64_t k = 0; k < 100; ++k)
        s.insert(k * 10, val(static_cast<std::uint8_t>(k)));
    const auto out = s.scan(250, 5);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0].first, 250u);
    EXPECT_EQ(out[4].first, 290u);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_GT(out[i].first, out[i - 1].first);
}

TEST(SkipList, ScanStartsAtNextKeyWhenStartAbsent)
{
    SkipList s;
    s.insert(10, val(1));
    s.insert(20, val(2));
    s.insert(30, val(3));
    const auto out = s.scan(15, 10);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].first, 20u);
    EXPECT_EQ(out[1].first, 30u);
}

TEST(SkipList, ScanPastEndTruncates)
{
    SkipList s;
    s.insert(1, val(1));
    EXPECT_TRUE(s.scan(2, 5).empty());
    EXPECT_EQ(s.scan(0, 5).size(), 1u);
}

TEST(SkipList, MinKeyTracksSmallest)
{
    SkipList s;
    EXPECT_FALSE(s.minKey().has_value());
    s.insert(50, val(1));
    s.insert(20, val(2));
    EXPECT_EQ(*s.minKey(), 20u);
    s.erase(20);
    EXPECT_EQ(*s.minKey(), 50u);
}

TEST(SkipList, InsertDescendingThenScanAscends)
{
    SkipList s;
    for (std::uint64_t k = 100; k > 0; --k)
        s.insert(k, val(1));
    const auto out = s.scan(0, 200);
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(out[i].first, i + 1);
}

TEST(SkipList, MatchesReferenceMapUnderRandomOps)
{
    SkipList s;
    std::map<std::uint64_t, std::vector<std::uint8_t>> oracle;
    rpcvalet::sim::Rng rng(7);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t key = rng.uniformInt(0, 299);
        const int op = static_cast<int>(rng.uniformInt(0, 3));
        if (op == 0) {
            auto v = val(static_cast<std::uint8_t>(i));
            s.insert(key, v);
            oracle[key] = v;
        } else if (op == 1) {
            const auto got = s.find(key);
            const auto ref = oracle.find(key);
            if (ref == oracle.end()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, ref->second);
            }
        } else if (op == 2) {
            EXPECT_EQ(s.erase(key), oracle.erase(key) > 0);
        } else {
            // Compare a short scan against the oracle's range.
            const auto got = s.scan(key, 5);
            auto it = oracle.lower_bound(key);
            std::size_t idx = 0;
            while (it != oracle.end() && idx < got.size()) {
                EXPECT_EQ(got[idx].first, it->first);
                EXPECT_EQ(got[idx].second, it->second);
                ++it;
                ++idx;
            }
            EXPECT_TRUE(idx == 5 || it == oracle.end());
        }
        ASSERT_EQ(s.size(), oracle.size());
    }
}

TEST(SkipList, LevelStaysLogarithmic)
{
    SkipList s;
    for (std::uint64_t k = 0; k < 100000; ++k)
        s.insert(k, {});
    EXPECT_LE(s.level(), 20);
    EXPECT_GE(s.level(), 10);
}

} // namespace
