/**
 * @file
 * Unit tests for send/receive buffers: slot lifecycle, flow control,
 * reassembly counters, and protocol-violation detection.
 */

#include <gtest/gtest.h>

#include "mem/buffers.hh"
#include "proto/packet.hh"

namespace {

using namespace rpcvalet;
using mem::RecvBuffer;
using mem::SendBuffer;
using proto::MessagingDomain;
using proto::OpType;

MessagingDomain
smallDomain()
{
    MessagingDomain d;
    d.numNodes = 4;
    d.slotsPerNode = 2;
    d.maxMsgBytes = 256;
    return d;
}

std::vector<std::uint8_t>
bytes(std::size_t n, std::uint8_t seed = 1)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(seed + i);
    return out;
}

// ----------------------------------------------------------- SendBuffer

TEST(SendBuffer, AcquireReturnsDistinctSlots)
{
    SendBuffer sb(smallDomain());
    const auto a = sb.acquire(1, bytes(10));
    const auto b = sb.acquire(1, bytes(10));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(*a, *b);
    EXPECT_EQ(sb.inFlight(1), 2u);
}

TEST(SendBuffer, ExhaustionReturnsNullopt)
{
    SendBuffer sb(smallDomain());
    EXPECT_TRUE(sb.acquire(2, bytes(1)).has_value());
    EXPECT_TRUE(sb.acquire(2, bytes(1)).has_value());
    EXPECT_FALSE(sb.acquire(2, bytes(1)).has_value());
    EXPECT_EQ(sb.acquireFailures(), 1u);
    // Other destinations unaffected.
    EXPECT_TRUE(sb.acquire(3, bytes(1)).has_value());
}

TEST(SendBuffer, ReleaseMakesSlotReusable)
{
    SendBuffer sb(smallDomain());
    const auto a = sb.acquire(1, bytes(5));
    const auto b = sb.acquire(1, bytes(5));
    ASSERT_TRUE(a && b);
    sb.release(1, *a);
    EXPECT_EQ(sb.inFlight(1), 1u);
    const auto c = sb.acquire(1, bytes(5));
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, *a);
}

TEST(SendBuffer, PayloadRoundTrips)
{
    SendBuffer sb(smallDomain());
    const auto payload = bytes(100, 42);
    const auto slot = sb.acquire(3, payload);
    ASSERT_TRUE(slot.has_value());
    EXPECT_EQ(sb.payload(3, *slot), payload);
}

TEST(SendBuffer, AcquireSpecificSucceedsOnFreeSlot)
{
    SendBuffer sb(smallDomain());
    EXPECT_TRUE(sb.acquireSpecific(1, 1, bytes(8)));
    EXPECT_EQ(sb.payload(1, 1), bytes(8));
    EXPECT_FALSE(sb.acquireSpecific(1, 1, bytes(8)));
    EXPECT_EQ(sb.acquireFailures(), 1u);
    sb.release(1, 1);
    EXPECT_TRUE(sb.acquireSpecific(1, 1, bytes(9)));
}

TEST(SendBufferDeath, DoubleReleasePanics)
{
    SendBuffer sb(smallDomain());
    const auto slot = sb.acquire(1, bytes(1));
    ASSERT_TRUE(slot.has_value());
    sb.release(1, *slot);
    EXPECT_DEATH(sb.release(1, *slot), "free send slot");
}

TEST(SendBufferDeath, OversizedPayloadPanics)
{
    SendBuffer sb(smallDomain());
    EXPECT_DEATH((void)sb.acquire(1, bytes(257)), "maxMsgBytes");
}

// ----------------------------------------------------------- RecvBuffer

proto::Packet
sendPacket(proto::NodeId src, std::uint32_t slot, std::uint32_t block,
           std::uint32_t total, std::uint32_t msg_bytes)
{
    proto::Packet pkt;
    pkt.hdr.op = OpType::Send;
    pkt.hdr.src = src;
    pkt.hdr.dst = 0;
    pkt.hdr.slot = slot;
    pkt.hdr.blockIndex = block;
    pkt.hdr.totalBlocks = total;
    pkt.hdr.msgBytes = msg_bytes;
    const std::uint32_t lo = block * proto::cacheBlockBytes;
    const std::uint32_t hi =
        std::min(lo + proto::cacheBlockBytes, msg_bytes);
    for (std::uint32_t i = lo; i < hi; ++i)
        pkt.payload.push_back(static_cast<std::uint8_t>(i & 0xff));
    return pkt;
}

TEST(RecvBuffer, SinglePacketMessageCompletesImmediately)
{
    RecvBuffer rb(smallDomain());
    EXPECT_TRUE(rb.packetArrived(sendPacket(1, 0, 0, 1, 48), 100));
    const auto &slot = rb.slot(rb.domain().slotIndex(1, 0));
    EXPECT_TRUE(slot.busy);
    EXPECT_EQ(slot.msgBytes, 48u);
    EXPECT_EQ(slot.firstPacketTick, 100u);
}

TEST(RecvBuffer, MultiPacketCompletesOnLastBlock)
{
    RecvBuffer rb(smallDomain());
    EXPECT_FALSE(rb.packetArrived(sendPacket(2, 1, 0, 3, 160), 10));
    EXPECT_FALSE(rb.packetArrived(sendPacket(2, 1, 1, 3, 160), 20));
    EXPECT_TRUE(rb.packetArrived(sendPacket(2, 1, 2, 3, 160), 30));
    const auto &slot = rb.slot(rb.domain().slotIndex(2, 1));
    EXPECT_EQ(slot.firstPacketTick, 10u); // latency t0 = first packet
    EXPECT_EQ(slot.arrivedBlocks, 3u);
}

TEST(RecvBuffer, OutOfOrderArrivalStillCompletes)
{
    RecvBuffer rb(smallDomain());
    EXPECT_FALSE(rb.packetArrived(sendPacket(1, 0, 2, 3, 160), 10));
    EXPECT_FALSE(rb.packetArrived(sendPacket(1, 0, 0, 3, 160), 11));
    EXPECT_TRUE(rb.packetArrived(sendPacket(1, 0, 1, 3, 160), 12));
    // Payload bytes land at their block offsets regardless of order.
    const auto &slot = rb.slot(rb.domain().slotIndex(1, 0));
    for (std::uint32_t i = 0; i < 160; ++i)
        EXPECT_EQ(slot.payload[i], static_cast<std::uint8_t>(i & 0xff));
}

TEST(RecvBuffer, PayloadBytesFaithful)
{
    RecvBuffer rb(smallDomain());
    rb.packetArrived(sendPacket(3, 1, 0, 2, 100), 5);
    rb.packetArrived(sendPacket(3, 1, 1, 2, 100), 6);
    const auto &slot = rb.slot(rb.domain().slotIndex(3, 1));
    ASSERT_EQ(slot.payload.size(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(slot.payload[i], static_cast<std::uint8_t>(i & 0xff));
}

TEST(RecvBuffer, ReleaseAllowsSlotReuse)
{
    RecvBuffer rb(smallDomain());
    const auto idx = rb.domain().slotIndex(1, 0);
    rb.packetArrived(sendPacket(1, 0, 0, 1, 10), 1);
    EXPECT_EQ(rb.busyCount(), 1u);
    rb.release(idx);
    EXPECT_EQ(rb.busyCount(), 0u);
    rb.packetArrived(sendPacket(1, 0, 0, 1, 20), 2);
    EXPECT_EQ(rb.slot(idx).msgBytes, 20u);
    EXPECT_EQ(rb.slot(idx).firstPacketTick, 2u);
}

TEST(RecvBuffer, BusyHighWatermarkTracksPeak)
{
    RecvBuffer rb(smallDomain());
    rb.packetArrived(sendPacket(1, 0, 0, 1, 10), 1);
    rb.packetArrived(sendPacket(1, 1, 0, 1, 10), 2);
    rb.packetArrived(sendPacket(2, 0, 0, 1, 10), 3);
    rb.release(rb.domain().slotIndex(1, 0));
    EXPECT_EQ(rb.busyCount(), 2u);
    EXPECT_EQ(rb.busyHighWatermark(), 3u);
}

TEST(RecvBufferDeath, SlotReuseBeforeReplenishPanics)
{
    // A new message landing in a busy slot is a protocol violation:
    // the sender must wait for the replenish.
    RecvBuffer rb(smallDomain());
    rb.packetArrived(sendPacket(1, 0, 0, 1, 10), 1);
    EXPECT_DEATH((void)rb.packetArrived(sendPacket(1, 0, 0, 2, 80), 2),
                 "slot reused");
}

TEST(RecvBufferDeath, ReleaseFreeSlotPanics)
{
    RecvBuffer rb(smallDomain());
    EXPECT_DEATH(rb.release(0), "free recv slot");
}

TEST(RecvBufferDeath, NonSendPacketPanics)
{
    RecvBuffer rb(smallDomain());
    proto::Packet pkt = sendPacket(1, 0, 0, 1, 10);
    pkt.hdr.op = OpType::Replenish;
    EXPECT_DEATH((void)rb.packetArrived(pkt, 1), "send packets");
}

} // namespace
