/**
 * @file
 * Tests of the connection-management subsystem (src/conn/): registry
 * and spec validation (malformed specs die loudly at parse time), the
 * ScaleRPC grouped scheduler's mechanics against invariants I1-I5,
 * the grouped-with-one-group == all equivalence, the default-config
 * bit-identity guarantee (no connection config => the legacy path,
 * event for event), and determinism of a grouped run across
 * parallel-domain worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hh"
#include "conn/conn.hh"
#include "core/experiment.hh"
#include "sim/domain.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

// ----- registry -----

TEST(ConnRegistry, BuiltinsAreRegistered)
{
    auto &reg = conn::ConnRegistry::instance();
    EXPECT_TRUE(reg.contains("all"));
    EXPECT_TRUE(reg.contains("grouped"));
}

TEST(ConnRegistryDeath, UnknownNameListsEveryRegisteredScheduler)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("groupde:size=40")),
                ::testing::ExitedWithCode(1), "groupde.*all.*grouped");
}

// ----- spec validation dies at parse time -----

TEST(ConnSpecDeath, GroupedSizeZeroIsFatal)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("grouped:size=0")),
                ::testing::ExitedWithCode(1), "size must be >= 1");
}

TEST(ConnSpecDeath, GroupedSliceZeroIsFatal)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("grouped:slice=0")),
                ::testing::ExitedWithCode(1), "slice must be > 0");
}

TEST(ConnSpecDeath, GroupedWindowZeroIsFatal)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("grouped:window=0")),
                ::testing::ExitedWithCode(1), "window must be >= 1");
}

TEST(ConnSpecDeath, GroupedWarmupMustBeBoolean)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("grouped:warmup=2")),
                ::testing::ExitedWithCode(1), "warmup must be 0 or 1");
}

TEST(ConnSpecDeath, GroupedRegroupModeIsChecked)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("grouped:regroup=banana")),
                ::testing::ExitedWithCode(1),
                "regroup must be 'none' or 'priority'");
}

TEST(ConnSpecDeath, AllRejectsStrayParameters)
{
    EXPECT_EXIT((void)conn::ConnRegistry::instance().make(
                    conn::ConnSpec("all:size=40")),
                ::testing::ExitedWithCode(1), "size");
}

TEST(ConnConfigDeath, MissingClientsKeyIsFatal)
{
    EXPECT_EXIT((void)conn::parseConnConfig("grouped:size=40"),
                ::testing::ExitedWithCode(1), "clients");
}

TEST(ConnConfigDeath, ZeroClientsIsFatal)
{
    EXPECT_EXIT((void)conn::parseConnConfig("all:clients=0"),
                ::testing::ExitedWithCode(1), "clients=0");
}

// ----- effective QP capacity derivation -----

TEST(ConnConfig, QpCapacityDerivesFromGroupSizeThenDefault)
{
    EXPECT_EQ(conn::effectiveQpCapacity(conn::parseConnConfig(
                  "all:clients=100,qp_capacity=17")),
              17u);
    // I2: the physical pool is sized for one group.
    EXPECT_EQ(conn::effectiveQpCapacity(conn::parseConnConfig(
                  "grouped:clients=100,size=25")),
              25u);
    EXPECT_EQ(conn::effectiveQpCapacity(
                  conn::parseConnConfig("all:clients=100")),
              64u);
}

// ----- grouped mechanics, driven directly -----

/** Test harness: a queue per client behind the scheduler's AdmitFn. */
struct AdmitHarness
{
    sim::EventDomain sim;
    conn::ConnSchedulerPtr sched;
    std::map<std::uint32_t, std::uint32_t> queued;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> admits;

    explicit AdmitHarness(const std::string &spec,
                          std::uint32_t clients)
        : sched(conn::ConnRegistry::instance().make(
              conn::ConnSpec(spec)))
    {
        sched->bind(clients, sim,
                    [this](std::uint32_t client, std::uint32_t limit) {
                        admits.emplace_back(client, limit);
                        std::uint32_t &q = queued[client];
                        const std::uint32_t n =
                            limit == 0 ? q : std::min(limit, q);
                        q -= n;
                        for (std::uint32_t i = 0; i < n; ++i)
                            sched->onLaunched(client);
                        return n;
                    });
        sched->start();
    }
};

TEST(GroupedScheduler, OnlyActiveGroupMayIssue)
{
    AdmitHarness h("grouped:size=2,slice=1us", 6);
    // I1: group 0 (clients 0, 1) is active, everyone else defers.
    EXPECT_TRUE(h.sched->mayIssue(0));
    EXPECT_TRUE(h.sched->mayIssue(1));
    for (std::uint32_t c = 2; c < 6; ++c)
        EXPECT_FALSE(h.sched->mayIssue(c)) << c;
    EXPECT_EQ(h.sched->numGroups(), 3u);
    EXPECT_EQ(h.sched->groupOf(0), 0u);
    EXPECT_EQ(h.sched->groupOf(5), 2u);
}

TEST(GroupedScheduler, SliceExpiryRotatesTheActiveGroup)
{
    AdmitHarness h("grouped:size=2,slice=1us,warmup=0", 4);
    h.sim.runUntil(sim::nanoseconds(1500.0));
    // No outstanding requests: the switch happens at the expiry.
    EXPECT_FALSE(h.sched->mayIssue(0));
    EXPECT_TRUE(h.sched->mayIssue(2));
    EXPECT_TRUE(h.sched->mayIssue(3));
    EXPECT_EQ(h.sched->stats().groupSwitches, 1u);
}

TEST(GroupedScheduler, SwitchWaitsForTheActiveGroupToDrain)
{
    AdmitHarness h("grouped:size=2,slice=1us,warmup=0", 4);
    h.sched->onLaunched(0);
    h.sim.runUntil(sim::nanoseconds(2500.0));
    // I3: client 0 still has an outstanding request, so the slice has
    // expired but the switch is pending; nobody may issue meanwhile.
    EXPECT_EQ(h.sched->stats().groupSwitches, 0u);
    EXPECT_FALSE(h.sched->mayIssue(0));
    EXPECT_FALSE(h.sched->mayIssue(2));
    h.sched->onRetired(0);
    // I5: the retire completes the switch; group 1 takes over.
    EXPECT_EQ(h.sched->stats().groupSwitches, 1u);
    EXPECT_TRUE(h.sched->mayIssue(2));
}

TEST(GroupedScheduler, WarmupPreAdmitsAndPromotesOnFirstResponse)
{
    AdmitHarness h("grouped:size=2,slice=1us,warmup=1", 4);
    h.queued[2] = 3; // client 2 has deferred requests waiting
    h.sim.runUntil(sim::nanoseconds(1500.0));
    // The drain warmed client 2 with exactly one pre-admitted request
    // and client 3 had nothing queued (a warmup miss).
    EXPECT_EQ(h.sched->stats().warmupHits, 1u);
    EXPECT_EQ(h.sched->stats().warmupMisses, 1u);
    EXPECT_EQ(h.queued[2], 2u);
    // I4: a warmed-up client may not issue until its first response.
    EXPECT_FALSE(h.sched->mayIssue(2));
    EXPECT_TRUE(h.sched->mayIssue(3));
    h.sched->onRetired(2);
    h.sched->onCompleted(2, 64);
    EXPECT_TRUE(h.sched->mayIssue(2));
}

TEST(GroupedScheduler, BacklogDrainsUnderTheClientWindow)
{
    AdmitHarness h("grouped:size=2,slice=1us,warmup=0,window=2", 4);
    h.queued[2] = 10;
    h.sim.runUntil(sim::nanoseconds(1500.0));
    // Activation released at most `window` of the backlog, not all of
    // it; each completion releases one more.
    EXPECT_EQ(h.queued[2], 8u);
    h.sched->onRetired(2);
    h.sched->onCompleted(2, 64);
    EXPECT_EQ(h.queued[2], 7u);
}

TEST(GroupedScheduler, PriorityRegroupReordersByMeasuredPi)
{
    // One full rotation of 2 groups; client 3 does far more work per
    // byte than anyone else, so after the epoch it must lead the
    // partition (group 0).
    AdmitHarness h("grouped:size=2,slice=1us,warmup=0,regroup=priority",
                   4);
    for (int i = 0; i < 8; ++i)
        h.sched->onCompleted(3, 64);
    h.sched->onCompleted(0, 64);
    h.sim.runUntil(sim::nanoseconds(2500.0)); // two switches = epoch
    EXPECT_EQ(h.sched->stats().regroups, 1u);
    EXPECT_EQ(h.sched->groupOf(3), 0u);
}

// ----- equivalence and identity locks -----

core::ExperimentConfig
smallConfig()
{
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 8e6;
    cfg.warmupRpcs = 200;
    cfg.measuredRpcs = 3000;
    cfg.system.seed = 42;
    return cfg;
}

void
expectSamePoint(const core::RunStats &a, const core::RunStats &b)
{
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.point.samples, b.point.samples);
    EXPECT_EQ(a.point.p50Ns, b.point.p50Ns);
    EXPECT_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_EQ(a.point.meanNs, b.point.meanNs);
    EXPECT_EQ(a.point.achievedRps, b.point.achievedRps);
}

TEST(ConnExperiment, GroupedWithOneGroupMatchesAllBitForBit)
{
    // 48 clients in a single size-64 group: no slice timer is ever
    // armed, so the event schedule must match `all` exactly (both
    // resolve to the same qp capacity).
    core::ExperimentConfig all = smallConfig();
    all.connections =
        conn::parseConnConfig("all:clients=48,qp_capacity=64");
    core::ExperimentConfig grouped = smallConfig();
    grouped.connections = conn::parseConnConfig(
        "grouped:clients=48,size=64,qp_capacity=64");

    const core::RunStats a = core::runExperiment(all);
    const core::RunStats b = core::runExperiment(grouped);
    expectSamePoint(a, b);
    EXPECT_EQ(b.conn.groupSwitches, 0u);
    EXPECT_EQ(b.conn.groups, 1u);
    EXPECT_EQ(a.conn.deferredTotal, 0u);
    EXPECT_EQ(b.conn.deferredTotal, 0u);
}

TEST(ConnExperiment, DefaultConfigKeepsTheSubsystemOff)
{
    const core::RunStats st = core::runExperiment(smallConfig());
    EXPECT_EQ(st.conn.clients, 0u);
    EXPECT_TRUE(st.conn.scheduler.empty());
    EXPECT_EQ(st.conn.qpHits + st.conn.qpMisses, 0u);
}

TEST(ConnExperiment, GroupedRunIsDeterministicAcrossReruns)
{
    core::ExperimentConfig cfg = smallConfig();
    cfg.connections = conn::parseConnConfig(
        "grouped:clients=256,size=40,slice=20us");
    const core::RunStats a = core::runExperiment(cfg);
    const core::RunStats b = core::runExperiment(cfg);
    expectSamePoint(a, b);
    EXPECT_EQ(a.conn.groupSwitches, b.conn.groupSwitches);
    EXPECT_EQ(a.conn.deferredTotal, b.conn.deferredTotal);
    EXPECT_EQ(a.conn.qpMisses, b.conn.qpMisses);
}

TEST(ConnExperiment, GroupedClusterRunIsDeterministicAcrossWorkers)
{
    // The scheduler lives in the client domain (domain 0), so a
    // grouped cluster run must be bit-identical no matter how many
    // PDES workers execute the domains.
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 20e6;
    cfg.warmupRpcs = 200;
    cfg.measuredRpcs = 2000;
    cfg.system.seed = 7;
    cfg.cluster.numServerNodes = 2;
    cfg.cluster.router = cluster::RouterSpec::parse("shard");
    cfg.connections = conn::parseConnConfig(
        "grouped:clients=512,size=40,slice=20us");

    std::vector<core::RunStats> runs;
    for (const unsigned workers : {1u, 2u, 4u}) {
        core::ExperimentConfig c = cfg;
        c.parallelDomains = workers;
        runs.push_back(core::runExperiment(c));
    }
    expectSamePoint(runs[0], runs[1]);
    expectSamePoint(runs[0], runs[2]);
    EXPECT_EQ(runs[0].conn.groupSwitches, runs[1].conn.groupSwitches);
    EXPECT_EQ(runs[0].conn.groupSwitches, runs[2].conn.groupSwitches);
    EXPECT_EQ(runs[0].conn.qpMisses, runs[1].conn.qpMisses);
    EXPECT_EQ(runs[0].conn.qpMisses, runs[2].conn.qpMisses);
    EXPECT_GT(runs[0].conn.groupSwitches, 0u);
}

TEST(ConnExperiment, QpCacheThrashIsVisibleInTheStats)
{
    // 512 clients against a 64-entry cache: almost every request is a
    // miss under `all`. Grouping the same population turns the misses
    // into hits.
    core::ExperimentConfig all = smallConfig();
    all.connections =
        conn::parseConnConfig("all:clients=512,qp_capacity=64");
    const core::RunStats a = core::runExperiment(all);
    ASSERT_GT(a.conn.qpHits + a.conn.qpMisses, 0u);
    EXPECT_GT(a.conn.qpMisses, a.conn.qpHits);

    core::ExperimentConfig grouped = smallConfig();
    grouped.connections = conn::parseConnConfig(
        "grouped:clients=512,size=40,slice=20us,qp_capacity=64");
    const core::RunStats g = core::runExperiment(grouped);
    ASSERT_GT(g.conn.qpHits + g.conn.qpMisses, 0u);
    EXPECT_GT(g.conn.qpHits, g.conn.qpMisses);
    EXPECT_GT(g.conn.deferredTotal, 0u);
    EXPECT_GT(g.conn.groupSwitches, 0u);
}

} // namespace
