/**
 * @file
 * Validation of the theoretical Q x U queuing simulator against
 * closed-form queuing theory and the paper's §2.2 expectations.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "queueing/model.hh"
#include "sim/distributions.hh"

namespace {

using namespace rpcvalet;
using queueing::ModelConfig;
using queueing::ModelResult;
using queueing::runModel;

/** M/M/1 mean sojourn time: 1 / (mu - lambda). */
TEST(QueueingModel, MM1MeanSojournMatchesTheory)
{
    sim::ExponentialDist service(1000.0); // 1 us mean -> mu = 1 Mrps
    ModelConfig cfg;
    cfg.numQueues = 1;
    cfg.unitsPerQueue = 1;
    cfg.arrivalRps = 0.5e6; // rho = 0.5
    cfg.service = &service;
    cfg.seed = 42;
    cfg.warmupCompletions = 50000;
    cfg.measuredCompletions = 400000;
    const ModelResult r = runModel(cfg);
    // Theory: E[T] = 1/(mu - lambda) = 1/(1e6 - 0.5e6) s = 2000 ns.
    EXPECT_NEAR(r.point.meanNs, 2000.0, 2000.0 * 0.03);
}

TEST(QueueingModel, MM1P99MatchesTheory)
{
    // Sojourn time in M/M/1 is exponential with rate (mu - lambda):
    // p99 = -ln(0.01) / (mu - lambda).
    sim::ExponentialDist service(1000.0);
    ModelConfig cfg;
    cfg.numQueues = 1;
    cfg.unitsPerQueue = 1;
    cfg.arrivalRps = 0.7e6;
    cfg.service = &service;
    cfg.seed = 43;
    cfg.warmupCompletions = 50000;
    cfg.measuredCompletions = 400000;
    const ModelResult r = runModel(cfg);
    const double expected = -std::log(0.01) / (1e6 - 0.7e6) * 1e9;
    EXPECT_NEAR(r.point.p99Ns, expected, expected * 0.06);
}

TEST(QueueingModel, MD1MeanWaitMatchesPollaczekKhinchine)
{
    // M/D/1: E[W] = rho * S / (2 * (1 - rho)).
    sim::FixedDist service(1000.0);
    ModelConfig cfg;
    cfg.numQueues = 1;
    cfg.unitsPerQueue = 1;
    cfg.arrivalRps = 0.6e6;
    cfg.service = &service;
    cfg.seed = 44;
    cfg.warmupCompletions = 50000;
    cfg.measuredCompletions = 400000;
    const ModelResult r = runModel(cfg);
    const double rho = 0.6;
    const double expected_wait = rho * 1000.0 / (2.0 * (1.0 - rho));
    EXPECT_NEAR(r.point.meanNs - 1000.0, expected_wait,
                expected_wait * 0.05);
}

TEST(QueueingModel, LowLoadSojournApproachesServiceTime)
{
    sim::FixedDist service(500.0);
    ModelConfig cfg;
    cfg.numQueues = 1;
    cfg.unitsPerQueue = 16;
    cfg.arrivalRps = 1e5; // essentially idle
    cfg.service = &service;
    cfg.seed = 45;
    cfg.warmupCompletions = 1000;
    cfg.measuredCompletions = 50000;
    const ModelResult r = runModel(cfg);
    EXPECT_NEAR(r.point.meanNs, 500.0, 5.0);
    EXPECT_NEAR(r.point.p99Ns, 500.0, 5.0);
}

TEST(QueueingModel, AchievedMatchesOfferedBelowSaturation)
{
    sim::ExponentialDist service(600.0);
    ModelConfig cfg;
    cfg.numQueues = 1;
    cfg.unitsPerQueue = 16;
    cfg.arrivalRps = 10e6; // rho = 0.375
    cfg.service = &service;
    cfg.seed = 46;
    cfg.warmupCompletions = 20000;
    cfg.measuredCompletions = 300000;
    const ModelResult r = runModel(cfg);
    EXPECT_NEAR(r.point.achievedRps, 10e6, 10e6 * 0.03);
}

TEST(QueueingModel, ThroughputCapsAtCapacityAboveSaturation)
{
    sim::FixedDist service(1000.0); // capacity = 16 Mrps for 16 units
    ModelConfig cfg;
    cfg.numQueues = 1;
    cfg.unitsPerQueue = 16;
    cfg.arrivalRps = 32e6; // 2x overload
    cfg.service = &service;
    cfg.seed = 47;
    cfg.warmupCompletions = 20000;
    cfg.measuredCompletions = 200000;
    const ModelResult r = runModel(cfg);
    EXPECT_NEAR(r.point.achievedRps, 16e6, 16e6 * 0.05);
    EXPECT_LT(r.point.achievedRps, 17e6);
}

// ----- §2.2 qualitative results, parameterized over distribution -----

struct OrderingCase
{
    const char *name;
    sim::SyntheticKind kind;
};

class ModelOrdering : public ::testing::TestWithParam<OrderingCase>
{
};

TEST_P(ModelOrdering, SingleQueueBeatsPartitionedAtTail)
{
    // 1x16 must have a lower p99 than 16x1 at moderate-high load for
    // every service-time family (Fig. 2).
    auto dist = sim::makeSynthetic(GetParam().kind);
    const double capacity = 16.0 / (dist->mean() * 1e-9);

    auto p99_of = [&](unsigned q, unsigned u) {
        ModelConfig cfg;
        cfg.numQueues = q;
        cfg.unitsPerQueue = u;
        cfg.arrivalRps = 0.7 * capacity;
        cfg.service = dist.get();
        cfg.seed = 48;
        cfg.warmupCompletions = 20000;
        cfg.measuredCompletions = 150000;
        return runModel(cfg).point.p99Ns;
    };

    const double single = p99_of(1, 16);
    const double partitioned = p99_of(16, 1);
    EXPECT_LT(single, partitioned)
        << "1x16 should beat 16x1 for " << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, ModelOrdering,
    ::testing::Values(
        OrderingCase{"fixed", sim::SyntheticKind::Fixed},
        OrderingCase{"uniform", sim::SyntheticKind::Uniform},
        OrderingCase{"exponential", sim::SyntheticKind::Exponential},
        OrderingCase{"gev", sim::SyntheticKind::Gev}),
    [](const auto &tpinfo) { return std::string(tpinfo.param.name); });

TEST(QueueingModel, IntermediateConfigsLieBetweenExtremes)
{
    // Fig. 2a: performance is proportional to U. Check p99(1x16) <=
    // p99(4x4) <= p99(16x1) at high load with exponential service.
    sim::ExponentialDist service(600.0);
    const double capacity = 16.0 / (600e-9);
    auto p99_of = [&](unsigned q, unsigned u, std::uint64_t seed) {
        ModelConfig cfg;
        cfg.numQueues = q;
        cfg.unitsPerQueue = u;
        cfg.arrivalRps = 0.8 * capacity;
        cfg.service = &service;
        cfg.seed = seed;
        cfg.warmupCompletions = 20000;
        cfg.measuredCompletions = 200000;
        return runModel(cfg).point.p99Ns;
    };
    const double p_1x16 = p99_of(1, 16, 100);
    const double p_4x4 = p99_of(4, 4, 101);
    const double p_16x1 = p99_of(16, 1, 102);
    EXPECT_LT(p_1x16, p_4x4);
    EXPECT_LT(p_4x4, p_16x1);
}

TEST(QueueingModel, HigherVarianceRaisesTailFor16x1)
{
    // Fig. 2c: TL_fixed < TL_uni < TL_exp at a fixed load (16x1).
    auto p99_of = [&](sim::SyntheticKind kind) {
        auto dist = sim::makeSynthetic(kind);
        const double capacity = 16.0 / (dist->mean() * 1e-9);
        ModelConfig cfg;
        cfg.numQueues = 16;
        cfg.unitsPerQueue = 1;
        cfg.arrivalRps = 0.6 * capacity;
        cfg.service = dist.get();
        cfg.seed = 103;
        cfg.warmupCompletions = 20000;
        cfg.measuredCompletions = 200000;
        return runModel(cfg).point.p99Ns;
    };
    const double fixed = p99_of(sim::SyntheticKind::Fixed);
    const double uni = p99_of(sim::SyntheticKind::Uniform);
    const double exp = p99_of(sim::SyntheticKind::Exponential);
    EXPECT_LT(fixed, uni);
    EXPECT_LT(uni, exp);
}

TEST(QueueingModel, DeterministicForSameSeed)
{
    sim::ExponentialDist service(600.0);
    ModelConfig cfg;
    cfg.numQueues = 4;
    cfg.unitsPerQueue = 4;
    cfg.arrivalRps = 10e6;
    cfg.service = &service;
    cfg.seed = 7;
    cfg.warmupCompletions = 1000;
    cfg.measuredCompletions = 30000;
    const ModelResult a = runModel(cfg);
    const ModelResult b = runModel(cfg);
    EXPECT_DOUBLE_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_DOUBLE_EQ(a.point.meanNs, b.point.meanNs);
    EXPECT_DOUBLE_EQ(a.simulatedNs, b.simulatedNs);
}

TEST(QueueingModel, LoadSweepProducesMonotoneThroughput)
{
    sim::ExponentialDist service(600.0);
    queueing::SweepConfig sweep;
    sweep.numQueues = 1;
    sweep.unitsPerQueue = 16;
    sweep.loads = {0.2, 0.4, 0.6, 0.8};
    sweep.service = &service;
    sweep.seed = 9;
    sweep.warmupCompletions = 5000;
    sweep.measuredCompletions = 60000;
    sweep.label = "1x16";
    const auto series = queueing::runLoadSweep(sweep);
    ASSERT_EQ(series.points.size(), 4u);
    for (size_t i = 1; i < series.points.size(); ++i) {
        EXPECT_GT(series.points[i].achievedRps,
                  series.points[i - 1].achievedRps);
        EXPECT_GE(series.points[i].p99Ns, series.points[i - 1].p99Ns * 0.9);
    }
}

} // namespace
