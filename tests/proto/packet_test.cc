/**
 * @file
 * Unit tests for packetization and reassembly: the soNUMA unrolling of
 * messages into 64 B cache-block packets (§4.2).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "proto/packet.hh"

namespace {

using namespace rpcvalet::proto;

std::vector<std::uint8_t>
patternBytes(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i * 7 + 3);
    return out;
}

TEST(Packetize, BlocksForBytesBoundaries)
{
    EXPECT_EQ(blocksForBytes(0), 1u);
    EXPECT_EQ(blocksForBytes(1), 1u);
    EXPECT_EQ(blocksForBytes(64), 1u);
    EXPECT_EQ(blocksForBytes(65), 2u);
    EXPECT_EQ(blocksForBytes(128), 2u);
    EXPECT_EQ(blocksForBytes(512), 8u);
    EXPECT_EQ(blocksForBytes(513), 9u);
}

TEST(Packetize, SingleBlockMessage)
{
    const auto payload = patternBytes(40);
    const auto packets = packetize(OpType::Send, 3, 0, 7, payload);
    ASSERT_EQ(packets.size(), 1u);
    EXPECT_EQ(packets[0].hdr.op, OpType::Send);
    EXPECT_EQ(packets[0].hdr.src, 3u);
    EXPECT_EQ(packets[0].hdr.dst, 0u);
    EXPECT_EQ(packets[0].hdr.slot, 7u);
    EXPECT_EQ(packets[0].hdr.blockIndex, 0u);
    EXPECT_EQ(packets[0].hdr.totalBlocks, 1u);
    EXPECT_EQ(packets[0].hdr.msgBytes, 40u);
    EXPECT_EQ(packets[0].payload, payload);
}

TEST(Packetize, MultiBlockCarriesFullHeaderInEveryPacket)
{
    // §4.4: every packet carries the total message size so any NI
    // backend can detect completion statelessly.
    const auto payload = patternBytes(512);
    const auto packets = packetize(OpType::Send, 5, 0, 2, payload);
    ASSERT_EQ(packets.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(packets[i].hdr.blockIndex, i);
        EXPECT_EQ(packets[i].hdr.totalBlocks, 8u);
        EXPECT_EQ(packets[i].hdr.msgBytes, 512u);
        EXPECT_EQ(packets[i].payload.size(), 64u);
    }
}

TEST(Packetize, LastPacketHoldsRemainder)
{
    const auto payload = patternBytes(130); // 64 + 64 + 2
    const auto packets = packetize(OpType::Send, 1, 0, 0, payload);
    ASSERT_EQ(packets.size(), 3u);
    EXPECT_EQ(packets[0].payload.size(), 64u);
    EXPECT_EQ(packets[1].payload.size(), 64u);
    EXPECT_EQ(packets[2].payload.size(), 2u);
}

TEST(Packetize, EmptyPayloadStillOnePacket)
{
    // Replenish messages carry no payload but still need a packet.
    const auto packets = packetize(OpType::Replenish, 0, 9, 4, {});
    ASSERT_EQ(packets.size(), 1u);
    EXPECT_EQ(packets[0].hdr.msgBytes, 0u);
    EXPECT_TRUE(packets[0].payload.empty());
}

TEST(Reassemble, RoundTripsInOrder)
{
    const auto payload = patternBytes(300);
    const auto packets = packetize(OpType::Send, 2, 0, 1, payload);
    EXPECT_EQ(reassemble(packets), payload);
}

TEST(Reassemble, RoundTripsOutOfOrder)
{
    const auto payload = patternBytes(450);
    auto packets = packetize(OpType::Send, 2, 0, 1, payload);
    std::reverse(packets.begin(), packets.end());
    EXPECT_EQ(reassemble(packets), payload);
}

class PacketizeSizes : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PacketizeSizes, RoundTripAnySize)
{
    const auto payload = patternBytes(GetParam());
    const auto packets = packetize(OpType::Send, 7, 0, 3, payload);
    EXPECT_EQ(packets.size(), blocksForBytes(GetParam()));
    EXPECT_EQ(reassemble(packets), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketizeSizes,
                         ::testing::Values(1u, 17u, 63u, 64u, 65u, 127u,
                                           128u, 500u, 512u, 1024u,
                                           2048u));

TEST(OpName, AllOpsNamed)
{
    EXPECT_EQ(opName(OpType::Send), "send");
    EXPECT_EQ(opName(OpType::Replenish), "replenish");
    EXPECT_EQ(opName(OpType::RemoteRead), "remote_read");
    EXPECT_EQ(opName(OpType::RemoteWrite), "remote_write");
}

} // namespace
