/**
 * @file
 * Unit tests for queue-pair entry types and the Fifo wrapper.
 */

#include <gtest/gtest.h>

#include <string>

#include "proto/qp.hh"

namespace {

using rpcvalet::proto::CompletionQueueEntry;
using rpcvalet::proto::Fifo;
using rpcvalet::proto::WorkQueueEntry;

TEST(Fifo, StartsEmpty)
{
    Fifo<int> f;
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.size(), 0u);
    EXPECT_EQ(f.highWatermark(), 0u);
}

TEST(Fifo, PushPopIsFifoOrdered)
{
    Fifo<int> f;
    for (int i = 0; i < 10; ++i)
        f.push(i);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(f.pop(), i);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, FrontPeeksWithoutRemoving)
{
    Fifo<int> f;
    f.push(7);
    f.push(8);
    EXPECT_EQ(f.front(), 7);
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.pop(), 7);
    EXPECT_EQ(f.front(), 8);
}

TEST(Fifo, HighWatermarkTracksPeakOccupancy)
{
    Fifo<int> f;
    f.push(1);
    f.push(2);
    f.push(3);
    f.pop();
    f.pop();
    f.push(4);
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.highWatermark(), 3u);
}

TEST(Fifo, ResetHighWatermarkRestartsFromCurrentOccupancy)
{
    Fifo<int> f;
    for (int i = 0; i < 5; ++i)
        f.push(i);
    for (int i = 0; i < 4; ++i)
        f.pop();
    EXPECT_EQ(f.highWatermark(), 5u);
    // The recording-window opener drops the warmup transient: tracking
    // restarts at the surviving occupancy, not at zero.
    f.resetHighWatermark();
    EXPECT_EQ(f.highWatermark(), 1u);
    f.push(5);
    f.push(6);
    EXPECT_EQ(f.highWatermark(), 3u);
    f.pop();
    f.pop();
    f.pop();
    f.resetHighWatermark();
    EXPECT_EQ(f.highWatermark(), 0u);
}

TEST(Fifo, MoveOnlyPayloadsSupported)
{
    Fifo<std::unique_ptr<int>> f;
    f.push(std::make_unique<int>(42));
    auto out = f.pop();
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(QpEntries, DefaultsAreSane)
{
    const WorkQueueEntry wqe;
    EXPECT_EQ(wqe.op, rpcvalet::proto::OpType::Send);
    EXPECT_TRUE(wqe.payload.empty());

    const CompletionQueueEntry cqe;
    EXPECT_EQ(cqe.slotIndex, 0u);
    EXPECT_EQ(cqe.firstPacketTick, 0u);
    EXPECT_EQ(cqe.completionTick, 0u);
    EXPECT_EQ(cqe.deliveredTick, 0u);
}

TEST(QpEntries, CqeTimestampsOrderAlongPipeline)
{
    CompletionQueueEntry cqe;
    cqe.firstPacketTick = 100;
    cqe.completionTick = 130;
    cqe.deliveredTick = 150;
    EXPECT_LE(cqe.firstPacketTick, cqe.completionTick);
    EXPECT_LE(cqe.completionTick, cqe.deliveredTick);
}

} // namespace
