/**
 * @file
 * Unit tests for messaging-domain geometry (§4.2 buffer provisioning).
 */

#include <gtest/gtest.h>

#include "proto/messaging.hh"

namespace {

using rpcvalet::proto::MessagingDomain;

TEST(MessagingDomain, SlotIndexIsBijective)
{
    MessagingDomain d;
    d.numNodes = 5;
    d.slotsPerNode = 3;
    for (std::uint32_t n = 0; n < d.numNodes; ++n) {
        for (std::uint32_t s = 0; s < d.slotsPerNode; ++s) {
            const auto idx = d.slotIndex(n, s);
            EXPECT_EQ(d.slotSource(idx), n);
            EXPECT_EQ(d.slotOffset(idx), s);
        }
    }
}

TEST(MessagingDomain, SlotIndicesAreDense)
{
    MessagingDomain d;
    d.numNodes = 4;
    d.slotsPerNode = 8;
    std::vector<bool> seen(d.totalSlots(), false);
    for (std::uint32_t n = 0; n < d.numNodes; ++n)
        for (std::uint32_t s = 0; s < d.slotsPerNode; ++s)
            seen[d.slotIndex(n, s)] = true;
    for (bool b : seen)
        EXPECT_TRUE(b);
}

TEST(MessagingDomain, FootprintFormulaMatchesPaper)
{
    // §4.2: 32*N*S + (max_msg_size + 64)*N*S.
    MessagingDomain d;
    d.numNodes = 200;
    d.slotsPerNode = 32;
    d.maxMsgBytes = 2048;
    EXPECT_EQ(d.sendBufferBytes(), 32ULL * 200 * 32);
    EXPECT_EQ(d.recvBufferBytes(), (2048ULL + 64) * 200 * 32);
    EXPECT_EQ(d.footprintBytes(),
              d.sendBufferBytes() + d.recvBufferBytes());
    // "should not exceed a few tens of MBs"
    EXPECT_LT(d.footprintBytes(), 32ULL << 20);
}

TEST(MessagingDomain, ValidateAcceptsDefaults)
{
    MessagingDomain d;
    d.validate();
    SUCCEED();
}

TEST(MessagingDomainDeath, RejectsSingleNode)
{
    MessagingDomain d;
    d.numNodes = 1;
    EXPECT_EXIT(d.validate(), ::testing::ExitedWithCode(1), "two nodes");
}

TEST(MessagingDomainDeath, RejectsZeroSlots)
{
    MessagingDomain d;
    d.slotsPerNode = 0;
    EXPECT_EXIT(d.validate(), ::testing::ExitedWithCode(1), "slot");
}

TEST(MessagingDomainDeath, OutOfRangeSlotIndexPanics)
{
    MessagingDomain d;
    d.numNodes = 4;
    d.slotsPerNode = 2;
    EXPECT_DEATH((void)d.slotIndex(4, 0), "out of domain");
    EXPECT_DEATH((void)d.slotIndex(0, 2), "slot out of range");
    EXPECT_DEATH((void)d.slotSource(8), "out of range");
}

} // namespace
