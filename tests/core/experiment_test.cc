/**
 * @file
 * End-to-end integration tests of the full system through the public
 * Experiment API: functional correctness (every reply verified),
 * conservation laws, determinism, and the paper's qualitative
 * load-balancing results.
 */

#include <gtest/gtest.h>

#include <memory>

#include "app/synthetic_app.hh"
#include "app/workload.hh"
#include "core/experiment.hh"

namespace {

using namespace rpcvalet;
using core::ExperimentConfig;
using core::RunStats;
using core::runExperiment;

ExperimentConfig
smallConfig(ni::DispatchMode mode, double arrival_rps)
{
    ExperimentConfig cfg;
    cfg.system.mode = mode;
    cfg.system.seed = 12345;
    cfg.arrivalRps = arrival_rps;
    cfg.warmupRpcs = 2000;
    cfg.measuredRpcs = 20000;
    return cfg;
}

TEST(Experiment, HerdModerateLoadCompletesAndVerifies)
{
    const RunStats r =
        runExperiment(smallConfig(ni::DispatchMode::SingleQueue, 10e6));
    EXPECT_EQ(r.completions, 22000u);
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_EQ(r.point.samples, 20000u);
    // At ~35% load the achieved throughput tracks the offered rate.
    EXPECT_NEAR(r.point.achievedRps, 10e6, 10e6 * 0.05);
    EXPECT_GT(r.point.p99Ns, 0.0);
}

TEST(Experiment, MeasuredServiceTimeMatchesCalibration)
{
    // §6.1: HERD's measured mean service time is ~550 ns (330 ns mean
    // processing + ~220 ns loop overhead).
    const RunStats r =
        runExperiment(smallConfig(ni::DispatchMode::SingleQueue, 5e6));
    EXPECT_GT(r.meanServiceNs, 500.0);
    EXPECT_LT(r.meanServiceNs, 610.0);
}

TEST(Experiment, LowLoadLatencyIsUnqueuedLatency)
{
    // At very low load an RPC's latency is just the protocol path +
    // service time: well under 1.5x S-bar, and p99 close to mean.
    const RunStats r =
        runExperiment(smallConfig(ni::DispatchMode::SingleQueue, 1e6));
    EXPECT_LT(r.point.meanNs, 1.5 * r.meanServiceNs);
    EXPECT_LT(r.point.p99Ns, 3.0 * r.meanServiceNs);
}

class ExperimentAllModes
    : public ::testing::TestWithParam<ni::DispatchMode>
{
};

TEST_P(ExperimentAllModes, RepliesVerifyAndThroughputTracksOffered)
{
    const RunStats r = runExperiment(smallConfig(GetParam(), 8e6));
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_EQ(r.completions, 22000u);
    EXPECT_NEAR(r.point.achievedRps, 8e6, 8e6 * 0.06);
}

TEST_P(ExperimentAllModes, DeterministicForSameSeed)
{
    auto run_once = [&] {
        return runExperiment(smallConfig(GetParam(), 12e6));
    };
    const RunStats a = run_once();
    const RunStats b = run_once();
    EXPECT_DOUBLE_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_DOUBLE_EQ(a.point.meanNs, b.point.meanNs);
    EXPECT_DOUBLE_EQ(a.simulatedUs, b.simulatedUs);
    EXPECT_EQ(a.perCoreServed, b.perCoreServed);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ExperimentAllModes,
    ::testing::Values(ni::DispatchMode::SingleQueue,
                      ni::DispatchMode::PerBackendGroup,
                      ni::DispatchMode::StaticHash,
                      ni::DispatchMode::SoftwarePull),
    [](const auto &tpinfo) {
        // gtest test names must be alphanumeric/underscore.
        std::string name = ni::dispatchModeName(tpinfo.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Experiment, DefaultSpecsBitIdenticalToExplicitStrings)
{
    // Neither the PolicySpec nor the ArrivalSpec plumbing may perturb
    // a single decision: the default-constructed specs and their
    // explicit string forms reproduce identical RunStats for one seed.
    auto run_with = [](const ni::PolicySpec &policy,
                       const net::ArrivalSpec &arrival) {
        ExperimentConfig cfg =
            smallConfig(ni::DispatchMode::SingleQueue, 14e6);
        cfg.system.policy = policy;
        cfg.arrival = arrival;
        return runExperiment(cfg);
    };
    const RunStats via_default =
        run_with(ni::PolicySpec{}, net::ArrivalSpec{});
    const RunStats via_string = run_with("greedy", "poisson");

    auto expect_identical = [](const RunStats &a, const RunStats &b) {
        EXPECT_DOUBLE_EQ(a.point.meanNs, b.point.meanNs);
        EXPECT_DOUBLE_EQ(a.point.p50Ns, b.point.p50Ns);
        EXPECT_DOUBLE_EQ(a.point.p90Ns, b.point.p90Ns);
        EXPECT_DOUBLE_EQ(a.point.p99Ns, b.point.p99Ns);
        EXPECT_DOUBLE_EQ(a.point.achievedRps, b.point.achievedRps);
        EXPECT_DOUBLE_EQ(a.meanServiceNs, b.meanServiceNs);
        EXPECT_DOUBLE_EQ(a.simulatedUs, b.simulatedUs);
        EXPECT_EQ(a.completions, b.completions);
        EXPECT_EQ(a.replySlotStalls, b.replySlotStalls);
        EXPECT_EQ(a.perCoreServed, b.perCoreServed);
        EXPECT_DOUBLE_EQ(a.breakdown.dispatch.p99Ns,
                         b.breakdown.dispatch.p99Ns);
        EXPECT_DOUBLE_EQ(a.breakdown.queueWait.meanNs,
                         b.breakdown.queueWait.meanNs);
    };
    expect_identical(via_default, via_string);
}

TEST(ExperimentDeath, UnknownArrivalProcessIsFatal)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 10e6);
    cfg.arrival.name = "nonesuch";
    EXPECT_EXIT(runExperiment(cfg), ::testing::ExitedWithCode(1),
                "unknown arrival process 'nonesuch'.*poisson");
}

TEST(Experiment, BurstyArrivalsInflateTheTailAtEqualLoad)
{
    // The motivation for the arrival subsystem: at the same average
    // rate, MMPP bursts must produce a worse p99 than Poisson.
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 14e6);
    const RunStats poisson = runExperiment(cfg);
    cfg.arrival = "mmpp2:burst=0.1,ratio=8,dwell=20us";
    const RunStats bursty = runExperiment(cfg);
    EXPECT_EQ(bursty.verifyFailures, 0u);
    EXPECT_GT(bursty.point.p99Ns, 1.5 * poisson.point.p99Ns);
}

TEST(Experiment, SingleQueueBalancesLoadAcrossCores)
{
    const RunStats r =
        runExperiment(smallConfig(ni::DispatchMode::SingleQueue, 20e6));
    // With 22k RPCs over 16 cores, RPCValet's single queue keeps
    // per-core counts within a tight band of the mean.
    const double mean = 22000.0 / 16.0;
    for (const auto served : r.perCoreServed) {
        EXPECT_GT(static_cast<double>(served), mean * 0.8);
        EXPECT_LT(static_cast<double>(served), mean * 1.2);
    }
}

TEST(Experiment, TailOrderingAcrossHardwareModes)
{
    // Fig. 7: p99(1x16) <= p99(4x4) <= p99(16x1) under high load with
    // a variable service-time workload.
    auto p99_of = [&](ni::DispatchMode mode) {
        ExperimentConfig cfg = smallConfig(mode, 14e6);
        cfg.workload = "synthetic:dist=gev";
        cfg.measuredRpcs = 40000;
        return runExperiment(cfg).point.p99Ns;
    };
    const double single = p99_of(ni::DispatchMode::SingleQueue);
    const double grouped = p99_of(ni::DispatchMode::PerBackendGroup);
    const double partitioned = p99_of(ni::DispatchMode::StaticHash);
    EXPECT_LT(single, grouped);
    EXPECT_LT(grouped, partitioned);
}

TEST(Experiment, SoftwareQueueSaturatesBeforeHardware)
{
    // §6.2: the MCS-locked software queue serializes dequeues; at an
    // offered load beyond its lock capacity it cannot keep up, while
    // hardware 1x16 can.
    auto achieved = [&](ni::DispatchMode mode) {
        ExperimentConfig cfg = smallConfig(mode, 10e6);
        cfg.workload = "synthetic:dist=exponential";
        cfg.measuredRpcs = 30000;
        return runExperiment(cfg).point.achievedRps;
    };
    const double hw = achieved(ni::DispatchMode::SingleQueue);
    const double sw = achieved(ni::DispatchMode::SoftwarePull);
    EXPECT_NEAR(hw, 10e6, 10e6 * 0.05); // hardware keeps up
    EXPECT_LT(sw, 9e6);                 // software lock saturates
}

TEST(Experiment, OverloadCapsAtCoreCapacity)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 80e6);
    cfg.measuredRpcs = 40000;
    const RunStats r = runExperiment(cfg);
    // Capacity = 16 cores / S-bar. Achieved must cap there (+/-7%).
    const double capacity = 16.0 / (r.meanServiceNs * 1e-9);
    EXPECT_LT(r.point.achievedRps, capacity * 1.07);
    EXPECT_GT(r.point.achievedRps, capacity * 0.85);
    // Flow control must have engaged rather than unbounded queueing.
    EXPECT_GT(r.flowControlDeferrals, 0u);
}

TEST(Experiment, MasstreeScansAreServedButNotLatencyCritical)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 2e6);
    cfg.workload = "masstree";
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 10000;
    const RunStats r = runExperiment(cfg);
    EXPECT_EQ(r.verifyFailures, 0u);
    // ~1% scans: critical completions < all completions.
    EXPECT_LT(r.criticalCompletions, r.completions);
    EXPECT_GT(r.criticalCompletions,
              static_cast<std::uint64_t>(0.97 * 10500));
}

TEST(Experiment, MasstreeSingleQueueShieldsGetsFromScans)
{
    // §6.1/Fig. 7b: occupancy feedback steers gets away from cores
    // busy with 60-120 us scans; static hashing queues gets behind
    // them, inflating the get p99 by an order of magnitude.
    auto p99_of = [&](ni::DispatchMode mode) {
        ExperimentConfig cfg = smallConfig(mode, 2e6);
        cfg.workload = "masstree";
        cfg.warmupRpcs = 500;
        cfg.measuredRpcs = 15000;
        return runExperiment(cfg).point.p99Ns;
    };
    const double single = p99_of(ni::DispatchMode::SingleQueue);
    const double partitioned = p99_of(ni::DispatchMode::StaticHash);
    EXPECT_LT(single * 4.0, partitioned);
}

TEST(Experiment, SweepRunsAllPointsAndOrdersSeries)
{
    core::SweepConfig sweep;
    sweep.base = smallConfig(ni::DispatchMode::SingleQueue, 0.0);
    sweep.base.warmupRpcs = 500;
    sweep.base.measuredRpcs = 5000;
    sweep.arrivalRates = {2e6, 6e6, 12e6};
    sweep.label = "1x16";
    const core::SweepResult result = core::runSweep(sweep);
    ASSERT_EQ(result.series.points.size(), 3u);
    ASSERT_EQ(result.runs.size(), 3u);
    EXPECT_DOUBLE_EQ(result.series.points[0].offeredRps, 2e6);
    EXPECT_DOUBLE_EQ(result.series.points[2].offeredRps, 12e6);
    EXPECT_GT(result.series.points[2].p99Ns,
              result.series.points[0].p99Ns * 0.8);
}

TEST(Experiment, SweepThreadCountDoesNotChangeResults)
{
    core::SweepConfig sweep;
    sweep.base = smallConfig(ni::DispatchMode::SingleQueue, 0.0);
    sweep.base.warmupRpcs = 500;
    sweep.base.measuredRpcs = 4000;
    sweep.arrivalRates = {3e6, 9e6, 15e6, 20e6};
    sweep.label = "1x16";

    sweep.threads = 1;
    const auto sequential = core::runSweep(sweep);
    sweep.threads = 2;
    const auto threaded = core::runSweep(sweep);
    ASSERT_EQ(sequential.series.points.size(),
              threaded.series.points.size());
    for (size_t i = 0; i < sequential.series.points.size(); ++i) {
        EXPECT_DOUBLE_EQ(sequential.series.points[i].p99Ns,
                         threaded.series.points[i].p99Ns);
    }
}

TEST(Experiment, CapacityEstimateIsReasonable)
{
    node::SystemParams sys;
    const double cap =
        core::estimateCapacityRps(sys, app::WorkloadSpec("herd"));
    // ~16 cores / 550 ns => ~29 Mrps (the paper's HERD peak).
    EXPECT_GT(cap, 25e6);
    EXPECT_LT(cap, 33e6);
}

TEST(Experiment, LoadGridSpansRange)
{
    const auto grid = core::loadGrid(0.1, 0.9, 5);
    ASSERT_EQ(grid.size(), 5u);
    EXPECT_DOUBLE_EQ(grid.front(), 0.1);
    EXPECT_DOUBLE_EQ(grid.back(), 0.9);
    EXPECT_DOUBLE_EQ(grid[2], 0.5);
}

// ---------------------------------------------------------------------
// Spec-driven workload path (runExperiment(cfg) + per-class stats)
// ---------------------------------------------------------------------

/** Event-for-event equality of two runs (golden bit-identity lock). */
void
expectBitIdentical(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_DOUBLE_EQ(a.point.p50Ns, b.point.p50Ns);
    EXPECT_DOUBLE_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_DOUBLE_EQ(a.point.meanNs, b.point.meanNs);
    EXPECT_DOUBLE_EQ(a.point.achievedRps, b.point.achievedRps);
    EXPECT_DOUBLE_EQ(a.meanServiceNs, b.meanServiceNs);
    EXPECT_DOUBLE_EQ(a.simulatedUs, b.simulatedUs);
    EXPECT_EQ(a.perCoreServed, b.perCoreServed);
    EXPECT_EQ(a.replySlotStalls, b.replySlotStalls);
}

TEST(SpecWorkload, DefaultSpecBitIdenticalToExplicitHerd)
{
    // The default-constructed spec IS "herd": spelling it out must not
    // perturb a single event at a fixed seed.
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 14e6);
    cfg.measuredRpcs = 10000;
    const RunStats implicit = runExperiment(cfg);
    cfg.workload = "herd";
    const RunStats spelled = runExperiment(cfg);
    expectBitIdentical(implicit, spelled);
    EXPECT_EQ(spelled.workload, "herd");
}

TEST(SpecWorkload, MixOfOneBitIdenticalToPlainWorkload)
{
    // The single-component mix consumes no component-pick randomness
    // and remaps class ids by zero, so "mix:herd=1" IS "herd".
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 14e6);
    cfg.measuredRpcs = 10000;
    cfg.workload = "herd";
    const RunStats plain = runExperiment(cfg);
    cfg.workload = "mix:herd=1";
    const RunStats mix = runExperiment(cfg);
    expectBitIdentical(plain, mix);
}

TEST(SpecWorkload, MixDeterministicForSameSeed)
{
    auto run_once = [] {
        ExperimentConfig cfg =
            smallConfig(ni::DispatchMode::SingleQueue, 2e6);
        cfg.warmupRpcs = 500;
        cfg.measuredRpcs = 6000;
        cfg.workload = "mix:masstree-get=0.998,masstree-scan=0.002";
        return runExperiment(cfg);
    };
    const RunStats a = run_once();
    const RunStats b = run_once();
    expectBitIdentical(a, b);
    ASSERT_EQ(a.perClass.size(), b.perClass.size());
    for (std::size_t i = 0; i < a.perClass.size(); ++i) {
        EXPECT_EQ(a.perClass[i].completions, b.perClass[i].completions);
        EXPECT_DOUBLE_EQ(a.perClass[i].p99Ns, b.perClass[i].p99Ns);
    }
}

TEST(SpecWorkload, MixClassWeightsHonored)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 8e6);
    cfg.warmupRpcs = 1000;
    cfg.measuredRpcs = 20000;
    cfg.workload = "mix:herd=0.7,synthetic=0.3";
    const RunStats r = runExperiment(cfg);
    ASSERT_EQ(r.perClass.size(), 2u);
    EXPECT_EQ(r.perClass[0].name, "herd");
    EXPECT_EQ(r.perClass[1].name, "synthetic");
    const double total = static_cast<double>(
        r.perClass[0].completions + r.perClass[1].completions);
    // Binomial(20000, 0.7): 3 sigma ~ 1%; allow 3%.
    EXPECT_NEAR(static_cast<double>(r.perClass[0].completions) / total,
                0.7, 0.03);
    EXPECT_NEAR(static_cast<double>(r.perClass[1].completions) / total,
                0.3, 0.03);
}

TEST(SpecWorkload, PerClassTailsSeparateGetsFromScans)
{
    // The per-class point of the redesign: scan latency was discarded
    // before; now the scan class carries its own (much larger) tail
    // while gets keep a us-scale one.
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 3e6);
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 12000;
    cfg.workload = "mix:masstree-get=0.998,masstree-scan=0.002";
    const RunStats r = runExperiment(cfg);
    ASSERT_EQ(r.perClass.size(), 2u);
    const core::ClassStats &gets = r.perClass[0];
    const core::ClassStats &scans = r.perClass[1];
    EXPECT_EQ(gets.name, "masstree-get");
    EXPECT_TRUE(gets.latencyCritical);
    EXPECT_EQ(scans.name, "masstree-scan");
    EXPECT_FALSE(scans.latencyCritical);
    EXPECT_GT(scans.completions, 0u);
    // Scans run 60-120 us against ~1.25 us gets: an order of
    // magnitude between the class p99s.
    EXPECT_GT(scans.p99Ns, 10.0 * gets.p99Ns);
    EXPECT_GT(scans.p99Ns, 60000.0);
    // Gets declare the paper's 12.5 us SLO; scans declare none.
    EXPECT_NEAR(gets.sloNs, 12500.0, 500.0);
    EXPECT_DOUBLE_EQ(scans.sloNs, 0.0);
    EXPECT_GT(gets.sloAttainment, 0.95);
    // Measured (post-warmup) class samples partition the measured
    // window exactly.
    EXPECT_EQ(gets.completions + scans.completions, cfg.measuredRpcs);
    // The headline point covers only the critical class.
    EXPECT_EQ(gets.completions, r.point.samples);
}

TEST(SpecWorkload, PerClassStatsPresentForSingleClassWorkloads)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 10e6);
    cfg.measuredRpcs = 10000;
    const RunStats r = runExperiment(cfg);
    ASSERT_EQ(r.perClass.size(), 1u);
    EXPECT_EQ(r.perClass[0].name, "herd");
    EXPECT_EQ(r.perClass[0].completions, cfg.measuredRpcs);
    EXPECT_DOUBLE_EQ(r.perClass[0].p99Ns, r.point.p99Ns);
    EXPECT_NEAR(r.perClass[0].achievedRps, r.point.achievedRps,
                r.point.achievedRps * 1e-9);
}

TEST(SpecWorkloadDeath, UnknownWorkloadIsFatal)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 10e6);
    cfg.workload.name = "nonesuch";
    EXPECT_EXIT((void)runExperiment(cfg), ::testing::ExitedWithCode(1),
                "unknown workload 'nonesuch'.*herd");
}

// ---------------------------------------------------------------------
// failOnVerifyError
// ---------------------------------------------------------------------

/** Echo app whose replies never verify: a corrupted-reply stand-in. */
class CorruptingApp : public app::SyntheticApp
{
  public:
    CorruptingApp() : app::SyntheticApp(sim::SyntheticKind::Fixed) {}

    bool
    verifyReply(const std::vector<std::uint8_t> &,
                const std::vector<std::uint8_t> &) const override
    {
        return false;
    }

    std::string name() const override { return "corrupting"; }
};

// Custom workloads reach runExperiment through the registry — the
// same extension seam examples/custom_workload_playground.cc uses.
const app::WorkloadRegistrar corruptingReg(
    "corrupting", [](const app::WorkloadSpec &) {
        return std::make_unique<CorruptingApp>();
    });

TEST(VerifyErrorDeath, FailOnVerifyErrorIsFatalByDefault)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 5e6);
    cfg.warmupRpcs = 100;
    cfg.measuredRpcs = 500;
    cfg.workload = "corrupting";
    EXPECT_EXIT((void)runExperiment(cfg),
                ::testing::ExitedWithCode(1),
                "failed application-level verification");
}

TEST(VerifyError, OptOutReportsFailuresInStats)
{
    ExperimentConfig cfg =
        smallConfig(ni::DispatchMode::SingleQueue, 5e6);
    cfg.warmupRpcs = 100;
    cfg.measuredRpcs = 500;
    cfg.workload = "corrupting";
    cfg.failOnVerifyError = false;
    const RunStats r = runExperiment(cfg);
    EXPECT_GT(r.verifyFailures, 0u);
}

} // namespace
