/**
 * @file
 * SystemParams defaults must embody Table 1, and validation must
 * reject inconsistent configurations. (Table 1 is the paper's only
 * table; this test is its "reproduction".)
 */

#include <gtest/gtest.h>

#include "node/params.hh"

namespace {

using rpcvalet::node::CoreCosts;
using rpcvalet::node::SystemParams;
using rpcvalet::sim::nanoseconds;

TEST(Table1, DefaultsMatchPaperParameters)
{
    const SystemParams p;
    // "ARM Cortex-A57-like; 64-bit, 2GHz" on a 16-core tiled chip.
    EXPECT_DOUBLE_EQ(p.clockGhz, 2.0);
    EXPECT_EQ(p.numCores, 16u);
    EXPECT_EQ(p.meshRows * p.meshCols, 16);
    // "2D mesh, 16B links, 3 cycles/hop".
    EXPECT_DOUBLE_EQ(p.hopCycles, 3.0);
    EXPECT_EQ(p.linkBytes, 16u);
    // Memory: 50 ns.
    EXPECT_EQ(p.memory.dramLatency, nanoseconds(50.0));
    // 64-byte blocks are the protocol MTU.
    EXPECT_EQ(rpcvalet::proto::cacheBlockBytes, 64u);
    // §5: 200-node cluster; §4.3: threshold 2.
    EXPECT_EQ(p.domain.numNodes, 200u);
    EXPECT_EQ(p.outstandingPerCore, 2u);
}

TEST(Table1, ClockArithmetic)
{
    const SystemParams p;
    // 3 cycles/hop at 2 GHz = 1.5 ns.
    EXPECT_EQ(p.clock().cycles(p.hopCycles), nanoseconds(1.5));
}

TEST(CoreCosts, OverheadCalibratedToPaperServiceTime)
{
    // §6.1: HERD processing mean 330 ns yields S-bar ~550 ns, i.e.
    // ~220 ns of per-RPC loop overhead.
    const CoreCosts cc;
    EXPECT_EQ(cc.totalOverhead(), nanoseconds(220.0));
}

TEST(MessagingFootprint, MatchesPaperFormula)
{
    // §4.2: 32*N*S + (max_msg_size + 64)*N*S bytes; "a few tens of
    // MBs" for current deployments.
    const SystemParams p;
    const auto &d = p.domain;
    const std::uint64_t expected =
        32ULL * d.numNodes * d.slotsPerNode +
        (static_cast<std::uint64_t>(d.maxMsgBytes) + 64) * d.numNodes *
            d.slotsPerNode;
    EXPECT_EQ(d.footprintBytes(), expected);
    EXPECT_LT(d.footprintBytes(), 64ULL << 20);
}

using ConfigDeath = ::testing::Test;

TEST(ConfigDeath, RejectsZeroCores)
{
    SystemParams p;
    p.numCores = 0;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "core");
}

TEST(ConfigDeath, RejectsMeshMismatch)
{
    SystemParams p;
    p.numCores = 12; // mesh stays 4x4 = 16
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "mesh");
}

TEST(ConfigDeath, RejectsBadDispatcherBackend)
{
    SystemParams p;
    p.dispatcherBackend = 9;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "dispatcherBackend");
}

TEST(ConfigDeath, RejectsZeroThreshold)
{
    SystemParams p;
    p.outstandingPerCore = 0;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "outstanding");
}

TEST(ConfigDeath, RejectsUnalignedMaxMsgBytes)
{
    SystemParams p;
    p.domain.maxMsgBytes = 100; // not a multiple of 64
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "maxMsg");
}

TEST(ConfigDeath, RejectsNodeIdOutsideDomain)
{
    SystemParams p;
    p.nodeId = 500;
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1), "nodeId");
}

TEST(ConfigDeath, RejectsUnregisteredPolicyListingAlternatives)
{
    SystemParams p;
    p.policy.name = "nonesuch";
    EXPECT_EXIT(p.validate(), ::testing::ExitedWithCode(1),
                "unknown dispatch policy 'nonesuch'.*greedy");
}

TEST(Config, DefaultPolicyIsGreedySpec)
{
    const SystemParams p;
    EXPECT_EQ(p.policy, rpcvalet::ni::PolicySpec("greedy"));
}

TEST(Config, DefaultConfigValidates)
{
    SystemParams p;
    p.validate(); // must not exit
    SUCCEED();
}

} // namespace
