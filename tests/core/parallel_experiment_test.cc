/**
 * @file
 * Determinism contract of the parallel-domain (conservative PDES)
 * experiment path: an N-domain cluster run must produce bit-identical
 * RunStats — executed events, completions, latency doubles, per-class
 * tails, per-node counters — no matter how many window workers execute
 * the domains, across seeds and routers. Plus the guard rails: the
 * lookahead invariant on the parallel fabric and the chained-workload
 * rejection.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/experiment.hh"
#include "net/fabric.hh"
#include "sim/domain.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

core::ExperimentConfig
clusterConfig(std::uint64_t seed, const std::string &router)
{
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 40e6; // ~0.35 of 4-node herd capacity
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 3000;
    cfg.system.seed = seed;
    cfg.cluster.numServerNodes = 4;
    cfg.cluster.router = cluster::RouterSpec::parse(router);
    return cfg;
}

/**
 * Full bit-identity over everything a worker-count change could
 * plausibly perturb. EXPECT_EQ on doubles is deliberate: the merge
 * order of per-domain recorders is fixed by domain id, so even the
 * floating-point reductions must match to the last bit.
 */
void
expectBitIdentical(const core::RunStats &a, const core::RunStats &b)
{
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.criticalCompletions, b.criticalCompletions);
    EXPECT_EQ(a.point.samples, b.point.samples);
    EXPECT_EQ(a.point.p50Ns, b.point.p50Ns);
    EXPECT_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_EQ(a.point.p90Ns, b.point.p90Ns);
    EXPECT_EQ(a.point.meanNs, b.point.meanNs);
    EXPECT_EQ(a.point.achievedRps, b.point.achievedRps);
    EXPECT_EQ(a.meanServiceNs, b.meanServiceNs);
    EXPECT_EQ(a.simulatedUs, b.simulatedUs);
    EXPECT_EQ(a.verifyFailures, b.verifyFailures);
    EXPECT_EQ(a.replySlotStalls, b.replySlotStalls);
    EXPECT_EQ(a.perCoreServed, b.perCoreServed);
    ASSERT_EQ(a.perClass.size(), b.perClass.size());
    for (std::size_t i = 0; i < a.perClass.size(); ++i) {
        EXPECT_EQ(a.perClass[i].name, b.perClass[i].name);
        EXPECT_EQ(a.perClass[i].completions, b.perClass[i].completions);
        EXPECT_EQ(a.perClass[i].p50Ns, b.perClass[i].p50Ns);
        EXPECT_EQ(a.perClass[i].p99Ns, b.perClass[i].p99Ns);
        EXPECT_EQ(a.perClass[i].p999Ns, b.perClass[i].p999Ns);
    }
    ASSERT_EQ(a.perNode.size(), b.perNode.size());
    for (std::size_t i = 0; i < a.perNode.size(); ++i) {
        EXPECT_EQ(a.perNode[i].served, b.perNode[i].served);
        EXPECT_EQ(a.perNode[i].failed, b.perNode[i].failed);
    }
}

core::RunStats
runWith(core::ExperimentConfig cfg, unsigned workers)
{
    cfg.parallelDomains = workers;
    return core::runExperiment(cfg);
}

TEST(ParallelExperiment, WorkerCountNeverChangesResults)
{
    // The heart of the PDES contract: domain decomposition fixes the
    // event schedule; the worker pool only changes who executes it.
    // 1, 2 and 4 workers over the same 5-domain run (client + 4
    // nodes) must agree bit for bit, for every seed.
    for (const std::uint64_t seed : {42ull, 7ull, 1234567ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const core::ExperimentConfig cfg = clusterConfig(seed, "shard");
        const core::RunStats w1 = runWith(cfg, 1);
        const core::RunStats w2 = runWith(cfg, 2);
        const core::RunStats w4 = runWith(cfg, 4);
        expectBitIdentical(w1, w2);
        expectBitIdentical(w1, w4);
        // The parallel stop is barrier-quantized: the run halts at
        // the first window boundary at or past the target, so a
        // couple of extra completions can slip in.
        EXPECT_GE(w1.completions, 3500u);
        EXPECT_EQ(w1.verifyFailures, 0u);
    }
}

TEST(ParallelExperiment, HoldsAcrossRouters)
{
    // Router choice changes which domain each RPC crosses into, not
    // the determinism of the crossing.
    for (const std::string router :
         {std::string("rr"), std::string("bounded-load:c=1.25")}) {
        SCOPED_TRACE(router);
        const core::ExperimentConfig cfg = clusterConfig(99, router);
        expectBitIdentical(runWith(cfg, 1), runWith(cfg, 4));
    }
}

TEST(ParallelExperiment, ParallelRunsAreRerunnable)
{
    // Same config, same worker count, fresh run: nothing leaks
    // between runs (per-domain wheels and mailboxes are rebuilt from
    // scratch each call).
    const core::ExperimentConfig cfg = clusterConfig(42, "shard");
    expectBitIdentical(runWith(cfg, 4), runWith(cfg, 4));
}

TEST(ParallelExperiment, SingleNodeClusterRunsParallelToo)
{
    // parallelDomains > 0 forces the domain-decomposed path even for
    // one server node (client domain + node domain): the degenerate
    // 2-domain case must obey the same contract.
    core::ExperimentConfig cfg = clusterConfig(42, "direct");
    cfg.cluster.numServerNodes = 1;
    cfg.arrivalRps = 10e6;
    const core::RunStats w1 = runWith(cfg, 1);
    const core::RunStats w2 = runWith(cfg, 2);
    expectBitIdentical(w1, w2);
    ASSERT_EQ(w1.perNode.size(), 1u);
    EXPECT_EQ(w1.perNode[0].served, w1.completions);
}

// ----- guard rails -----

void
buildParallelFabric(sim::Tick latency, sim::Tick lookahead)
{
    sim::EventDomain client(0, "client");
    sim::EventDomain server(1, "server");
    std::vector<sim::EventDomain *> domains{&client, &server};
    net::Fabric fabric(domains, latency, lookahead);
}

TEST(ParallelExperimentDeath, FabricRejectsLookaheadAboveLatency)
{
    // A lookahead wider than the link latency would let a message
    // sent late in a window be due inside the same window — an event
    // in the past for a domain that already ran ahead. The parallel
    // fabric must refuse to be built rather than silently reorder.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(buildParallelFabric(/*latency=*/100, /*lookahead=*/101),
                ::testing::ExitedWithCode(1), "violates conservative");
    EXPECT_EXIT(buildParallelFabric(/*latency=*/100, /*lookahead=*/0),
                ::testing::ExitedWithCode(1), "violates conservative");
}

TEST(ParallelExperimentDeath, ChainedWorkloadsRejected)
{
    // Nested-RPC chains route replies through the issuer on the
    // client wheel mid-window; until that protocol is windowed they
    // must refuse parallel mode instead of deadlocking a barrier.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            core::ExperimentConfig cfg = clusterConfig(42, "rr");
            cfg.workload = app::WorkloadSpec(
                "chain:tiers=2,fanout=2,root_ns=600,leaf_ns=300");
            cfg.parallelDomains = 2;
            (void)core::runExperiment(cfg);
        },
        ::testing::ExitedWithCode(1), "nested RPC chains");
}

} // namespace
