/**
 * @file
 * Cross-validation: the full-system simulator against the pure
 * queuing model (§6.3's methodology at test scale), plus conservation
 * and leak checks after complete drains.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "app/synthetic_app.hh"
#include "core/experiment.hh"
#include "net/traffic_gen.hh"
#include "node/rpc_node.hh"
#include "queueing/model.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;

TEST(Consistency, SystemTracksQueueingModelAtMidLoad)
{
    // §6.3: with service = fixed overhead + distributed part, the
    // implementation's p99 should track the 1x16 model closely below
    // saturation.
    core::ExperimentConfig cfg;
    cfg.workload = "synthetic:dist=exponential";
    cfg.system.seed = 31;
    cfg.arrivalRps = 12e6; // ~62% load
    cfg.warmupRpcs = 5000;
    cfg.measuredRpcs = 80000;
    const auto sim_run = core::runExperiment(cfg);

    const double sbar = sim_run.meanServiceNs;
    auto processing = sim::makeSynthetic(sim::SyntheticKind::Exponential);
    sim::ShiftedDist model_service(sbar - processing->mean(),
                                   processing->clone());
    queueing::ModelConfig mc;
    mc.numQueues = 1;
    mc.unitsPerQueue = 16;
    mc.arrivalRps = cfg.arrivalRps;
    mc.service = &model_service;
    mc.seed = 32;
    mc.warmupCompletions = 5000;
    mc.measuredCompletions = 80000;
    const auto model = queueing::runModel(mc);

    // Within 15% at p99 (the paper's worst-case bound), and the
    // system is never *better* than the model by more than the NI
    // path constants.
    EXPECT_LT(sim_run.point.p99Ns, model.point.p99Ns * 1.15 + 100.0);
    EXPECT_GT(sim_run.point.p99Ns, model.point.p99Ns * 0.85 - 100.0);
}

struct DrainCase
{
    ni::DispatchMode mode;
    std::uint32_t padding;
};

class DrainProperty : public ::testing::TestWithParam<DrainCase>
{
};

TEST_P(DrainProperty, NoLeaksAfterFullDrain)
{
    // Run under load, halt arrivals, drain: every request must be
    // answered and every resource returned.
    sim::EventDomain sim;
    net::Fabric fabric(sim, sim::nanoseconds(100.0));
    app::SyntheticApp app(sim::SyntheticKind::Gev);
    app.setRequestPaddingBytes(GetParam().padding);

    node::SystemParams params;
    params.mode = GetParam().mode;
    params.seed = 33;
    node::RpcNode node(sim, params, app, fabric, 0);

    net::TrafficGenerator::Params tp;
    tp.arrivalRps = 12e6;
    tp.seed = 33;
    net::TrafficGenerator tg(sim, tp, params.domain, app, fabric);
    fabric.connectDefault(
        [&tg](proto::Packet pkt) { tg.receivePacket(std::move(pkt)); });

    node.start();
    tg.start();
    sim.runUntil(sim::microseconds(400.0));
    tg.halt();
    sim.run();

    EXPECT_GT(node.served(), 1000u);
    EXPECT_EQ(tg.repliesReceived(), tg.requestsSent());
    EXPECT_EQ(tg.verificationFailures(), 0u);
    EXPECT_EQ(tg.inFlight(), 0u);
    EXPECT_EQ(node.recvSlotsBusy(), 0u) << "receive-slot leak";
    if (const auto *disp = node.dispatcher(0)) {
        for (proto::CoreId c = 0; c < params.numCores; ++c)
            EXPECT_EQ(disp->outstanding(c), 0u) << "credit leak";
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSizes, DrainProperty,
    ::testing::Values(
        DrainCase{ni::DispatchMode::SingleQueue, 24},
        DrainCase{ni::DispatchMode::SingleQueue, 1200},
        DrainCase{ni::DispatchMode::SingleQueue, 5000}, // rendezvous
        DrainCase{ni::DispatchMode::PerBackendGroup, 24},
        DrainCase{ni::DispatchMode::StaticHash, 24},
        DrainCase{ni::DispatchMode::SoftwarePull, 24}),
    [](const auto &tpinfo) {
        std::string name =
            ni::dispatchModeName(tpinfo.param.mode) + "_" +
            std::to_string(tpinfo.param.padding);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Consistency, PreemptionDrainsCleanlyToo)
{
    core::ExperimentConfig cfg;
    cfg.workload = "synthetic:dist=gev";
    cfg.system.seed = 34;
    cfg.system.preemptionQuantum = sim::microseconds(1.0);
    cfg.arrivalRps = 8e6;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 15000;
    const auto r = core::runExperiment(cfg);
    EXPECT_EQ(r.verifyFailures, 0u);
    // GEV occasionally exceeds 1 us: some yields must have happened.
    EXPECT_GT(r.preemptionYields, 0u);
}

} // namespace
