/**
 * @file
 * Build-sanity smoke test: construct an Experiment end-to-end with a
 * tiny configuration and a handful of events. This is deliberately the
 * cheapest full-system test in the suite — if the simulator core
 * regresses to the point of not completing a run, ctest fails loudly
 * here before the heavier integration suites time out.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace rpcvalet;

TEST(BuildSanity, TinyExperimentRunsToCompletion)
{
    core::ExperimentConfig cfg;
    cfg.system.mode = ni::DispatchMode::SingleQueue;
    cfg.system.seed = 7;
    cfg.arrivalRps = 1e6;
    cfg.warmupRpcs = 10;
    cfg.measuredRpcs = 100;

    cfg.workload = "synthetic:dist=fixed";
    const core::RunStats r = core::runExperiment(cfg);

    EXPECT_EQ(r.completions, cfg.warmupRpcs + cfg.measuredRpcs);
    EXPECT_EQ(r.point.samples, cfg.measuredRpcs);
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_GT(r.point.meanNs, 0.0);
    EXPECT_GT(r.simulatedUs, 0.0);
}

TEST(BuildSanity, TinyExperimentIsDeterministic)
{
    core::ExperimentConfig cfg;
    cfg.system.seed = 99;
    cfg.arrivalRps = 2e6;
    cfg.warmupRpcs = 10;
    cfg.measuredRpcs = 50;

    cfg.workload = "synthetic:dist=fixed";
    const core::RunStats ra = core::runExperiment(cfg);
    const core::RunStats rb = core::runExperiment(cfg);

    EXPECT_DOUBLE_EQ(ra.point.meanNs, rb.point.meanNs);
    EXPECT_DOUBLE_EQ(ra.point.p99Ns, rb.point.p99Ns);
    EXPECT_EQ(ra.completions, rb.completions);
}

} // namespace
