/**
 * @file
 * End-to-end tests of nested RPC chains: a chained handler declares
 * nested RPCs through app::HandleResult.nested, the serving node
 * releases the core at fan-out and defers the reply until every child
 * completes, and the root's measured latency composes across tiers.
 * Covers 2- and 3-tier fan-out composition, determinism under a fixed
 * seed, and chains riding the cluster failover path.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "app/workload.hh"
#include "core/experiment.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

core::ExperimentConfig
chainConfig(const std::string &workload, double rps)
{
    core::ExperimentConfig cfg;
    cfg.workload = app::WorkloadSpec(workload);
    cfg.arrivalRps = rps;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 6000;
    return cfg;
}

TEST(ChainExperiment, TwoTierLatencyComposesAcrossTiers)
{
    // tiers=2, fanout=2: every root fans out into two tier-1 RPCs and
    // its reply waits for both, so the root's end-to-end latency must
    // exceed its own processing plus a full child round trip.
    const core::RunStats r = core::runExperiment(
        chainConfig("chain:tiers=2,fanout=2,root_ns=600,leaf_ns=300",
                    2e6));

    ASSERT_EQ(r.perClass.size(), 2u);
    EXPECT_EQ(r.perClass[0].name, "tier0");
    EXPECT_TRUE(r.perClass[0].latencyCritical);
    EXPECT_EQ(r.perClass[1].name, "tier1");
    EXPECT_FALSE(r.perClass[1].latencyCritical);
    EXPECT_GT(r.perClass[0].completions, 0u);
    EXPECT_GT(r.perClass[1].completions, 0u);

    // Composition: root p50 >= root processing + child p50 (the child
    // round trip includes its network hops, so strictly more).
    EXPECT_GT(r.perClass[0].p50Ns, 600.0 + r.perClass[1].p50Ns);
    // Headline tail metrics cover only the client-visible roots (the
    // headline warmup discards whole critical samples, the per-class
    // window discards by total completions, so samples <= roots).
    EXPECT_GT(r.point.samples, 0u);
    EXPECT_LE(r.point.samples, r.perClass[0].completions);

    // Every root completion closed one 2-member chain group.
    EXPECT_GT(r.chainsCompleted, 0u);
    EXPECT_GE(r.nestedRpcsSent, 2 * r.chainsCompleted);
    EXPECT_EQ(r.verifyFailures, 0u);
    // Roots are a third of the 1 + 2 tree.
    EXPECT_GT(r.completions, r.criticalCompletions);
}

TEST(ChainExperiment, ThreeTierFanoutServesWholeTree)
{
    // tiers=3, fanout=2 serves 1 + 2 + 4 = 7 RPCs per client arrival,
    // and latency composes monotonically down the chain.
    const app::RpcApplicationPtr app =
        app::WorkloadRegistry::instance().make(app::WorkloadSpec(
            "chain:tiers=3,fanout=2,root_ns=500,leaf_ns=250"));
    EXPECT_DOUBLE_EQ(app->requestsPerArrival(), 7.0);

    const core::RunStats r = core::runExperiment(
        chainConfig("chain:tiers=3,fanout=2,root_ns=500,leaf_ns=250",
                    1e6));
    ASSERT_EQ(r.perClass.size(), 3u);
    EXPECT_GT(r.perClass[0].p50Ns, r.perClass[1].p50Ns);
    EXPECT_GT(r.perClass[1].p50Ns, r.perClass[2].p50Ns);
    // A tier-1 parent is itself a chained handler: its latency also
    // composes over its tier-2 children.
    EXPECT_GT(r.perClass[1].p50Ns, 250.0 + r.perClass[2].p50Ns);
    EXPECT_GT(r.chainsCompleted, 0u);
    EXPECT_EQ(r.verifyFailures, 0u);
}

TEST(ChainExperiment, DeterministicUnderFixedSeed)
{
    const core::ExperimentConfig cfg = chainConfig(
        "chain:tiers=3,fanout=3,root_ns=400,leaf_ns=200", 1e6);
    const core::RunStats a = core::runExperiment(cfg);
    const core::RunStats b = core::runExperiment(cfg);
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_EQ(a.point.achievedRps, b.point.achievedRps);
    EXPECT_EQ(a.nestedRpcsSent, b.nestedRpcsSent);
    EXPECT_EQ(a.chainsCompleted, b.chainsCompleted);
    ASSERT_EQ(a.perClass.size(), b.perClass.size());
    for (std::size_t i = 0; i < a.perClass.size(); ++i)
        EXPECT_EQ(a.perClass[i].p99Ns, b.perClass[i].p99Ns);
}

TEST(ChainExperiment, ChainsSurviveClusterFailover)
{
    // A node dies mid-run under a chained workload: nested RPCs to the
    // victim time out and reroute (keeping their chain group), roots
    // whose parent was on the victim time out and re-issue, and the
    // run still reaches its completion target with verified replies.
    core::ExperimentConfig cfg = chainConfig(
        "chain:tiers=2,fanout=2,root_ns=600,leaf_ns=300", 6e6);
    cfg.cluster.numServerNodes = 4;
    cfg.cluster.router = cluster::RouterSpec::parse("rr");
    cfg.cluster.requestTimeout = sim::microseconds(30.0);
    cfg.cluster.failThreshold = 3;
    cfg.cluster.failNode = 2;
    cfg.cluster.failAt = sim::microseconds(40.0);

    const core::RunStats r = core::runExperiment(cfg);
    ASSERT_EQ(r.perNode.size(), 4u);
    EXPECT_TRUE(r.perNode[2].failed);
    EXPECT_GE(r.nodesDown, 1u);
    EXPECT_GT(r.requestTimeouts, 0u);
    EXPECT_GT(r.failoverReroutes, 0u);
    EXPECT_EQ(r.completions, 6500u);
    EXPECT_GT(r.chainsCompleted, 0u);
    EXPECT_EQ(r.verifyFailures, 0u);
}

TEST(ChainExperiment, SingleHopChainAddsNoNesting)
{
    // tiers=1 is an ordinary workload: no nested RPCs, no chains.
    const core::RunStats r = core::runExperiment(
        chainConfig("chain:tiers=1,fanout=4,root_ns=500", 5e6));
    EXPECT_EQ(r.nestedRpcsSent, 0u);
    EXPECT_EQ(r.chainsCompleted, 0u);
    ASSERT_EQ(r.perClass.size(), 1u);
    EXPECT_EQ(r.completions, r.criticalCompletions);
}

TEST(ChainDeath, OutOfRangeChainParamsDieAtConstruction)
{
    EXPECT_EXIT((void)app::WorkloadRegistry::instance().make(
                    app::WorkloadSpec("chain:tiers=0")),
                ::testing::ExitedWithCode(1),
                "tiers must be in \\[1, 8\\]");
    // tiers=6, fanout=4 would serve 1365 RPCs per arrival — past the
    // 1024-per-tree sanity cap.
    EXPECT_EXIT((void)app::WorkloadRegistry::instance().make(
                    app::WorkloadSpec("chain:tiers=6,fanout=4")),
                ::testing::ExitedWithCode(1), "RPCs per ");
}

} // namespace
