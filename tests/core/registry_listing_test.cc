/**
 * @file
 * Tests of the --list-specs registry listing: every self-registering
 * axis appears in canonical order with its built-in names, so a new
 * registry (or a renamed builtin) cannot land without showing up in
 * the user-facing discovery surface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/registry_listing.hh"

namespace {

using namespace rpcvalet;

bool
axisContains(const core::RegistryAxis &axis, const std::string &name)
{
    return std::find(axis.names.begin(), axis.names.end(), name) !=
           axis.names.end();
}

TEST(RegistryListing, AllSixAxesInCanonicalOrder)
{
    const std::vector<core::RegistryAxis> axes = core::listRegistries();
    ASSERT_EQ(axes.size(), 6u);
    EXPECT_EQ(axes[0].axis, "policy");
    EXPECT_EQ(axes[1].axis, "arrival");
    EXPECT_EQ(axes[2].axis, "workload");
    EXPECT_EQ(axes[3].axis, "router");
    EXPECT_EQ(axes[4].axis, "fault");
    EXPECT_EQ(axes[5].axis, "conn");
    for (const core::RegistryAxis &axis : axes) {
        EXPECT_FALSE(axis.names.empty()) << axis.axis;
        EXPECT_TRUE(
            std::is_sorted(axis.names.begin(), axis.names.end()))
            << axis.axis;
    }
}

TEST(RegistryListing, KnownBuiltinsAreListed)
{
    const std::vector<core::RegistryAxis> axes = core::listRegistries();
    ASSERT_EQ(axes.size(), 6u);
    EXPECT_TRUE(axisContains(axes[0], "greedy"));
    EXPECT_TRUE(axisContains(axes[0], "jbsq"));
    EXPECT_TRUE(axisContains(axes[1], "poisson"));
    EXPECT_TRUE(axisContains(axes[2], "herd"));
    EXPECT_TRUE(axisContains(axes[3], "direct"));
    EXPECT_TRUE(axisContains(axes[3], "shard"));
    EXPECT_TRUE(axisContains(axes[4], "crash"));
    EXPECT_TRUE(axisContains(axes[4], "packet-loss"));
    EXPECT_TRUE(axisContains(axes[5], "all"));
    EXPECT_TRUE(axisContains(axes[5], "grouped"));
}

TEST(RegistryListing, FormattedTextHasOneLinePerAxis)
{
    const std::string text = core::formatRegistryListing();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 6);
    EXPECT_NE(text.find("policy: "), std::string::npos);
    EXPECT_NE(text.find("conn: "), std::string::npos);
    // The conn line carries both builtins.
    const std::string connLine =
        text.substr(text.find("conn: "));
    EXPECT_NE(connLine.find("all"), std::string::npos);
    EXPECT_NE(connLine.find("grouped"), std::string::npos);
}

} // namespace
