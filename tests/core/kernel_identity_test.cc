/**
 * @file
 * Kernel bit-identity lock: fixed-seed experiments must produce
 * event-for-event identical stats across DES-kernel rewrites.
 *
 * The golden numbers below were recorded with the original
 * std::priority_queue + std::function kernel (pre timer-wheel), at
 * seed 42 (the SystemParams default). The intrusive-event/timer-wheel
 * kernel must preserve the (time, seq) determinism contract exactly:
 * same event order, same executed-event count, bit-identical latency
 * percentiles and throughput. Any divergence here means the kernel
 * changed simulation *behaviour*, not just speed.
 *
 * Comparisons are exact (EXPECT_EQ on doubles): these are replays of a
 * deterministic computation, not statistical estimates.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace rpcvalet;

core::RunStats
runConfig(const std::string &policy, const std::string &arrival)
{
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 10e6;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 5000;
    if (!policy.empty())
        cfg.system.policy = ni::PolicySpec::parse(policy);
    if (!arrival.empty())
        cfg.arrival = net::ArrivalSpec::parse(arrival);
    return core::runExperiment(cfg); // cfg.workload defaults to "herd"
}

TEST(KernelIdentity, DefaultConfigMatchesPriorityQueueKernel)
{
    const core::RunStats r = runConfig("", "");
    EXPECT_EQ(r.point.p50Ns, 518.72900000000004);
    EXPECT_EQ(r.point.p99Ns, 1089.02);
    EXPECT_EQ(r.point.achievedRps, 9953790.5426921882);
    EXPECT_EQ(r.executedEvents, 110046u);
    EXPECT_EQ(r.completions, 5500u);
}

TEST(KernelIdentity, JbsqMmpp2ConfigMatchesPriorityQueueKernel)
{
    const core::RunStats r =
        runConfig("jbsq:d=2", "mmpp2:burst=0.1,ratio=10");
    EXPECT_EQ(r.point.p50Ns, 829.81100000000004);
    EXPECT_EQ(r.point.p99Ns, 16898.478999999999);
    EXPECT_EQ(r.point.achievedRps, 8710217.9456972238);
    EXPECT_EQ(r.executedEvents, 111155u);
    EXPECT_EQ(r.completions, 5500u);
}

TEST(KernelIdentity, RepeatedRunsAreBitIdentical)
{
    // The same config run twice in one process must not share hidden
    // kernel state (event pools are per-Simulator).
    const core::RunStats a = runConfig("jbsq:d=2", "");
    const core::RunStats b = runConfig("jbsq:d=2", "");
    EXPECT_EQ(a.point.p50Ns, b.point.p50Ns);
    EXPECT_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_EQ(a.point.achievedRps, b.point.achievedRps);
    EXPECT_EQ(a.executedEvents, b.executedEvents);
}

} // namespace
