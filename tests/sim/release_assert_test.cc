/**
 * @file
 * Regression guard for sim/logging.hh's RV_ASSERT contract: the macro
 * is an *always-on* invariant check, independent of NDEBUG. This
 * translation unit is compiled with NDEBUG forced on by CMake (see the
 * sim_release_assert_test target), so these tests fail if RV_ASSERT is
 * ever rewritten in terms of <cassert> or gated behind a debug flag —
 * either change would silently disable every invariant in Release
 * builds.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace {

#ifndef NDEBUG
#error "release_assert_test must be compiled with NDEBUG (see CMakeLists)"
#endif

TEST(ReleaseAssertDeathTest, FailedAssertPanicsUnderNdebug)
{
    EXPECT_DEATH(RV_ASSERT(1 + 1 == 3, "arithmetic broke"),
                 "assertion '1 \\+ 1 == 3' failed: arithmetic broke");
}

TEST(ReleaseAssertDeathTest, PanicMessageCarriesFileAndLine)
{
    EXPECT_DEATH(RV_ASSERT(false, "location check"),
                 "release_assert_test\\.cc:[0-9]+: assertion");
}

TEST(ReleaseAssert, PassingAssertIsANoop)
{
    int evaluations = 0;
    auto check = [&evaluations]() {
        ++evaluations;
        return true;
    };
    RV_ASSERT(check(), "must not fire");
    // The condition is evaluated exactly once, side effects intact.
    EXPECT_EQ(evaluations, 1);
}

TEST(ReleaseAssert, StrfmtFormatsLikePrintf)
{
    EXPECT_EQ(rpcvalet::sim::strfmt("%s=%d", "x", 42), "x=42");
}

} // namespace
