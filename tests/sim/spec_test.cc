/**
 * @file
 * Tests for the generic sim::Spec machinery shared by the policy and
 * arrival layers: parsing, round-tripping, typed accessors, and the
 * `what` diagnostic label. The derived-type specifics live in
 * tests/ni/policy_registry_test.cc and tests/net/arrival_test.cc.
 */

#include <gtest/gtest.h>

#include "sim/spec.hh"
#include "sim/types.hh"

namespace {

using rpcvalet::sim::Spec;

TEST(SimSpec, ParsesBareNameAndParams)
{
    const Spec bare = Spec::parse("widget", "widget");
    EXPECT_EQ(bare.name, "widget");
    EXPECT_TRUE(bare.params.empty());
    EXPECT_EQ(bare.toString(), "widget");

    const Spec spec = Spec::parse("w:b=2,a=1", "widget");
    EXPECT_EQ(spec.name, "w");
    EXPECT_EQ(spec.uintParam("a", 0), 1u);
    EXPECT_EQ(spec.uintParam("b", 0), 2u);
    // Keys print sorted, independent of input order.
    EXPECT_EQ(spec.toString(), "w:a=1,b=2");
    EXPECT_EQ(Spec::parse(spec.toString(), "widget"), spec);
}

TEST(SimSpec, IdentityIgnoresDiagnosticLabel)
{
    const Spec as_widget = Spec::parse("x:k=1", "widget");
    const Spec as_gadget = Spec::parse("x:k=1", "gadget");
    EXPECT_EQ(as_widget, as_gadget);
    EXPECT_NE(as_widget, Spec::parse("x:k=2", "widget"));
}

TEST(SimSpec, TypedAccessorsAndFallbacks)
{
    const Spec spec = Spec::parse("x:f=0.25,n=7,t=1.5us", "widget");
    EXPECT_DOUBLE_EQ(spec.doubleParam("f", 0.0), 0.25);
    EXPECT_EQ(spec.uintParam("n", 0), 7u);
    EXPECT_EQ(spec.tickParam("t", 0), rpcvalet::sim::microseconds(1.5));
    EXPECT_DOUBLE_EQ(spec.doubleParam("missing", 3.5), 3.5);
    EXPECT_EQ(spec.uintParam("missing", 9), 9u);
    EXPECT_EQ(spec.tickParam("missing", 123), 123u);
    EXPECT_TRUE(spec.has("f"));
    EXPECT_FALSE(spec.has("missing"));
}

TEST(SimSpecDeath, ErrorsCarryTheSubsystemLabel)
{
    // Diagnostics must say which subsystem's spec is malformed.
    EXPECT_EXIT(Spec::parse(":k=1", "widget"),
                ::testing::ExitedWithCode(1),
                "widget spec ':k=1' has an empty name");
    EXPECT_EXIT(Spec::parse("x:k", "gadget"),
                ::testing::ExitedWithCode(1), "gadget spec.*key=value");
    EXPECT_EXIT(Spec::parse("x:k=1", "widget").expectKeys({"other"}),
                ::testing::ExitedWithCode(1),
                "widget 'x:k=1': unknown parameter 'k'");
    EXPECT_EXIT(Spec::parse("x:k=abc", "widget").uintParam("k", 0),
                ::testing::ExitedWithCode(1),
                "widget 'x:k=abc'.*not a number");
}

} // namespace
