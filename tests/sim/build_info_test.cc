/**
 * @file
 * Sanity tests for the build-provenance stamp (sim/build_info.hh)
 * that benches and the scenario runner burn into their result files.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "sim/build_info.hh"

namespace {

using namespace rpcvalet;

TEST(BuildInfo, StampFieldsAreNonEmpty)
{
    const sim::BuildInfo &bi = sim::buildInfo();
    EXPECT_NE(bi.buildType, nullptr);
    EXPECT_NE(bi.gitSha, nullptr);
    EXPECT_GT(std::string(bi.buildType).size(), 0u);
    EXPECT_GT(std::string(bi.gitSha).size(), 0u);
}

TEST(BuildInfo, TimestampIsIso8601Utc)
{
    const std::string ts = sim::iso8601UtcNow();
    // "2026-02-14T09:31:07Z"
    ASSERT_EQ(ts.size(), 20u);
    for (const std::size_t digit : {0, 1, 2, 3, 5, 6, 8, 9, 11, 12,
                                    14, 15, 17, 18}) {
        EXPECT_TRUE(
            std::isdigit(static_cast<unsigned char>(ts[digit])))
            << ts;
    }
    EXPECT_EQ(ts[4], '-');
    EXPECT_EQ(ts[7], '-');
    EXPECT_EQ(ts[10], 'T');
    EXPECT_EQ(ts[13], ':');
    EXPECT_EQ(ts[16], ':');
    EXPECT_EQ(ts[19], 'Z');
}

} // namespace
