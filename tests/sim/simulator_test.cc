/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, determinism,
 * stop/run-until semantics, and the Poisson arrival process.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace {

using rpcvalet::sim::PoissonProcess;
using rpcvalet::sim::Simulator;
using rpcvalet::sim::Tick;
using rpcvalet::sim::nanoseconds;
using rpcvalet::sim::ticksPerNs;

TEST(Types, NanosecondConversionRoundTrips)
{
    EXPECT_EQ(nanoseconds(1.0), ticksPerNs);
    EXPECT_EQ(nanoseconds(1.5), 1500u);
    EXPECT_DOUBLE_EQ(rpcvalet::sim::toNs(nanoseconds(123.0)), 123.0);
    EXPECT_DOUBLE_EQ(rpcvalet::sim::toUs(rpcvalet::sim::microseconds(7.0)),
                     7.0);
}

TEST(Types, ClockCyclesMatchFrequency)
{
    const rpcvalet::sim::Clock two_ghz(2.0);
    EXPECT_EQ(two_ghz.cycles(1), 500u);   // 0.5 ns
    EXPECT_EQ(two_ghz.cycles(3), 1500u);  // 1.5 ns mesh hop
    EXPECT_EQ(two_ghz.cycles(6), 3000u);  // LLC latency
    EXPECT_DOUBLE_EQ(two_ghz.frequencyGhz(), 2.0);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(nanoseconds(30), [&] { order.push_back(3); });
    sim.schedule(nanoseconds(10), [&] { order.push_back(1); });
    sim.schedule(nanoseconds(20), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), nanoseconds(30));
}

TEST(Simulator, SameTickEventsFireInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        sim.schedule(nanoseconds(5), [&order, i] { order.push_back(i); });
    sim.run();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 100)
            sim.schedule(nanoseconds(1), chain);
    };
    sim.schedule(0, chain);
    sim.run();
    EXPECT_EQ(fired, 100);
    EXPECT_EQ(sim.now(), nanoseconds(99));
    EXPECT_EQ(sim.executedEvents(), 100u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime)
{
    Simulator sim;
    Tick seen = 12345;
    sim.schedule(nanoseconds(10), [&] {
        sim.schedule(0, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, nanoseconds(10));
}

TEST(Simulator, StopHaltsProcessing)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(nanoseconds(1), [&] { ++fired; });
    sim.schedule(nanoseconds(2), [&] {
        ++fired;
        sim.stop();
    });
    sim.schedule(nanoseconds(3), [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    // A fresh run() resumes the remaining event.
    sim.run();
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents)
{
    Simulator sim;
    sim.runUntil(nanoseconds(500));
    EXPECT_EQ(sim.now(), nanoseconds(500));
}

TEST(Simulator, RunUntilProcessesOnlyDueEvents)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(nanoseconds(10), [&] { order.push_back(1); });
    sim.schedule(nanoseconds(30), [&] { order.push_back(2); });
    sim.runUntil(nanoseconds(20));
    EXPECT_EQ(order, std::vector<int>{1});
    EXPECT_EQ(sim.now(), nanoseconds(20));
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, PendingEventsTracksQueueDepth)
{
    Simulator sim;
    EXPECT_EQ(sim.pendingEvents(), 0u);
    sim.schedule(nanoseconds(1), [] {});
    sim.schedule(nanoseconds(2), [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.run();
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Poisson, GeneratesConfiguredMeanRate)
{
    Simulator sim;
    // 10 Mrps for 10 ms -> expect ~100k arrivals.
    PoissonProcess proc(sim, 10e6, /*seed=*/42, [] {});
    proc.start();
    sim.runUntil(rpcvalet::sim::microseconds(10000.0));
    const double expected = 100000.0;
    EXPECT_NEAR(static_cast<double>(proc.arrivals()), expected,
                expected * 0.02);
}

TEST(Poisson, HaltStopsArrivals)
{
    Simulator sim;
    PoissonProcess *handle = nullptr;
    std::uint64_t seen = 0;
    PoissonProcess proc(sim, 1e6, 7, [&] {
        ++seen;
        if (seen == 100)
            handle->halt();
    });
    handle = &proc;
    proc.start();
    sim.run();
    EXPECT_EQ(seen, 100u);
}

TEST(Poisson, InterArrivalTimesAreExponential)
{
    // Coefficient of variation of exponential gaps is 1.
    Simulator sim;
    std::vector<Tick> stamps;
    PoissonProcess proc(sim, 5e6, 99, [&] { stamps.push_back(sim.now()); });
    proc.start();
    sim.runUntil(rpcvalet::sim::microseconds(20000.0));
    ASSERT_GT(stamps.size(), 10000u);
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = 1; i < stamps.size(); ++i) {
        const double gap = static_cast<double>(stamps[i] - stamps[i - 1]);
        sum += gap;
        sum_sq += gap * gap;
    }
    const double n = static_cast<double>(stamps.size() - 1);
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    const double cov = std::sqrt(var) / mean;
    EXPECT_NEAR(cov, 1.0, 0.05);
    EXPECT_NEAR(mean, 200.0 * ticksPerNs, 10.0 * ticksPerNs);
}

TEST(Poisson, DeterministicForSameSeed)
{
    auto run_once = [](std::uint64_t seed) {
        Simulator sim;
        std::vector<Tick> stamps;
        PoissonProcess proc(sim, 2e6, seed,
                            [&] { stamps.push_back(sim.now()); });
        proc.start();
        sim.runUntil(rpcvalet::sim::microseconds(1000.0));
        return stamps;
    };
    EXPECT_EQ(run_once(5), run_once(5));
    EXPECT_NE(run_once(5), run_once(6));
}

} // namespace
