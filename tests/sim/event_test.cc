/**
 * @file
 * Unit tests for the intrusive event API and the bucketed timer
 * wheel: member events, recurring self-rescheduling, deschedule /
 * reschedule in every wheel region (open window, near-future bucket,
 * far-future overflow), auto-deschedule on destruction, pool
 * recycling under churn (ASan-clean), and the kernel contracts the
 * rewrite must preserve (same-tick FIFO from a firing event, runUntil
 * peeking without corrupting wheel state).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/callback.hh"
#include "sim/event.hh"
#include "sim/simulator.hh"
#include "sim/types.hh"

namespace {

using rpcvalet::sim::Event;
using rpcvalet::sim::EventPool;
using rpcvalet::sim::InplaceCallback;
using rpcvalet::sim::MemberEvent;
using rpcvalet::sim::Simulator;
using rpcvalet::sim::Tick;
using rpcvalet::sim::microseconds;
using rpcvalet::sim::nanoseconds;

/** Records its firing times; optionally reschedules itself. */
class Recorder
{
  public:
    explicit Recorder(Simulator &sim) : sim_(sim), event_(*this, "rec")
    {}

    void arm(Tick delay) { sim_.schedule(event_, delay); }

    void
    armRecurring(Tick period, int count)
    {
        period_ = period;
        remaining_ = count;
        sim_.schedule(event_, period_);
    }

    bool scheduled() const { return event_.scheduled(); }
    Tick when() const { return event_.when(); }
    Event &event() { return event_; }
    const std::vector<Tick> &fires() const { return fires_; }

  private:
    void
    fire()
    {
        fires_.push_back(sim_.now());
        if (remaining_ > 0 && --remaining_ > 0)
            sim_.schedule(event_, period_);
    }

    Simulator &sim_;
    Tick period_ = 0;
    int remaining_ = 0;
    std::vector<Tick> fires_;
    MemberEvent<Recorder, &Recorder::fire> event_;
};

TEST(Event, MemberEventFiresAndTracksState)
{
    Simulator sim;
    Recorder r(sim);
    EXPECT_FALSE(r.scheduled());
    r.arm(nanoseconds(5));
    EXPECT_TRUE(r.scheduled());
    EXPECT_EQ(r.when(), nanoseconds(5));
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_FALSE(r.scheduled());
    EXPECT_EQ(r.fires(), std::vector<Tick>{nanoseconds(5)});
    EXPECT_EQ(sim.executedEvents(), 1u);
}

TEST(Event, RecurringEventRunsWithoutAllocatingNewEvents)
{
    Simulator sim;
    Recorder r(sim);
    r.armRecurring(nanoseconds(7), 100);
    sim.run();
    ASSERT_EQ(r.fires().size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.fires()[static_cast<size_t>(i)],
                  nanoseconds(7) * static_cast<Tick>(i + 1));
    EXPECT_EQ(sim.executedEvents(), 100u);
}

TEST(Event, DeschedulePendingEventInEveryRegion)
{
    Simulator sim;
    Recorder near(sim);    // lands in a near-future bucket
    Recorder same(sim);    // lands in the open window
    Recorder far(sim);     // lands in overflow (beyond the horizon)
    Recorder survivor(sim);

    same.arm(100);                   // < 1 ns: open window
    near.arm(nanoseconds(50));       // in-horizon bucket
    far.arm(microseconds(100.0));    // far beyond the ~2 us horizon
    survivor.arm(nanoseconds(60));
    EXPECT_EQ(sim.pendingEvents(), 4u);

    sim.deschedule(same.event());
    sim.deschedule(near.event());
    sim.deschedule(far.event());
    EXPECT_EQ(sim.pendingEvents(), 1u);
    EXPECT_FALSE(near.scheduled());

    sim.run();
    EXPECT_TRUE(same.fires().empty());
    EXPECT_TRUE(near.fires().empty());
    EXPECT_TRUE(far.fires().empty());
    ASSERT_EQ(survivor.fires().size(), 1u);
    EXPECT_EQ(sim.now(), nanoseconds(60));
}

TEST(Event, DescheduleMiddleOfSharedBucket)
{
    // Several events in one ~1 ns bucket: removing from the middle of
    // the singly-linked chain must keep the remaining FIFO intact.
    Simulator sim;
    Recorder a(sim), b(sim), c(sim);
    a.arm(nanoseconds(10));
    b.arm(nanoseconds(10));
    c.arm(nanoseconds(10));
    sim.deschedule(b.event());
    sim.run();
    EXPECT_EQ(a.fires().size(), 1u);
    EXPECT_TRUE(b.fires().empty());
    EXPECT_EQ(c.fires().size(), 1u);
}

TEST(Event, RescheduleMovesPendingEvent)
{
    Simulator sim;
    Recorder r(sim);
    r.arm(nanoseconds(10));
    sim.reschedule(r.event(), nanoseconds(30));
    sim.run();
    EXPECT_EQ(r.fires(), std::vector<Tick>{nanoseconds(30)});
    // reschedule also works on an idle event.
    sim.reschedule(r.event(), nanoseconds(5));
    sim.run();
    ASSERT_EQ(r.fires().size(), 2u);
    EXPECT_EQ(r.fires()[1], nanoseconds(35));
}

TEST(Event, DestructorAutoDeschedules)
{
    Simulator sim;
    Recorder keeper(sim);
    keeper.arm(nanoseconds(20));
    {
        Recorder doomed(sim);
        doomed.arm(nanoseconds(10));
        EXPECT_EQ(sim.pendingEvents(), 2u);
    }
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_EQ(sim.now(), nanoseconds(20));
    EXPECT_EQ(sim.executedEvents(), 1u);
}

TEST(EventDeathTest, DoubleScheduleIsFatal)
{
    Simulator sim;
    Recorder r(sim);
    r.arm(nanoseconds(5));
    EXPECT_DEATH(sim.schedule(r.event(), nanoseconds(9)),
                 "already scheduled");
}

TEST(EventDeathTest, DescheduleIdleEventIsFatal)
{
    Simulator sim;
    Recorder r(sim);
    EXPECT_DEATH(sim.deschedule(r.event()), "unscheduled");
}

TEST(EventDeathTest, SchedulingInThePastIsFatal)
{
    Simulator sim;
    sim.runUntil(nanoseconds(100));
    Recorder r(sim);
    EXPECT_DEATH(sim.scheduleAt(r.event(), nanoseconds(50)),
                 "in the past");
}

TEST(TimerWheel, OverflowEventsFireInOrder)
{
    // Far-future events (overflow list) interleaved with near ones,
    // scheduled out of order, must still fire in (time, seq) order.
    Simulator sim;
    std::vector<int> order;
    sim.schedule(microseconds(50.0), [&] { order.push_back(3); });
    sim.schedule(microseconds(5000.0), [&] { order.push_back(5); });
    sim.schedule(nanoseconds(10), [&] { order.push_back(1); });
    sim.schedule(microseconds(50.0), [&] { order.push_back(4); });
    sim.schedule(nanoseconds(2100), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_EQ(sim.now(), microseconds(5000.0));
}

TEST(TimerWheel, FiringEventSchedulingAcrossTheHorizonChains)
{
    // A recurring event whose period exceeds the wheel horizon forces
    // an overflow -> migrate -> fire cycle per occurrence.
    Simulator sim;
    Recorder r(sim);
    r.armRecurring(microseconds(10.0), 50);
    sim.run();
    ASSERT_EQ(r.fires().size(), 50u);
    EXPECT_EQ(r.fires().back(), microseconds(500.0));
}

TEST(TimerWheel, RunUntilPeekDoesNotCorruptWheelState)
{
    // Regression guard: runUntil must inspect the next event without
    // advancing the wheel cursor. If peeking advanced it, the later
    // near-future schedule would land "behind" the cursor and fire
    // out of order (or never).
    Simulator sim;
    std::vector<int> order;
    sim.schedule(microseconds(9.0), [&] { order.push_back(2); });
    sim.runUntil(microseconds(1.0)); // peeks at the 9 us event
    EXPECT_TRUE(order.empty());
    sim.schedule(microseconds(1.0), [&] { order.push_back(1); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, SameTickEventAndCallbackInterleaveFifo)
{
    // Intrusive events and one-shot callbacks share one determinism
    // contract: same tick => scheduling order.
    Simulator sim;
    std::vector<int> order;
    Recorder r(sim);
    sim.schedule(nanoseconds(5), [&] { order.push_back(0); });
    r.arm(nanoseconds(5));
    sim.schedule(nanoseconds(5), [&] { order.push_back(2); });
    sim.run();
    ASSERT_EQ(r.fires().size(), 1u);
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventPool, RecyclesReleasedEvents)
{
    struct Noop : Event
    {
        void process() override {}
    };
    EventPool<Noop> pool;
    Noop *a = pool.acquire();
    Noop *b = pool.acquire();
    EXPECT_NE(a, b);
    EXPECT_EQ(pool.size(), 2u);
    pool.release(a);
    EXPECT_EQ(pool.acquire(), a); // LIFO reuse, no growth
    EXPECT_EQ(pool.size(), 2u);
}

TEST(EventPool, OneShotChurnRecyclesUnderLoad)
{
    // Millions of one-shot schedule/fire cycles across repeated runs
    // on one simulator: the pool must recycle instead of growing, and
    // ASan must see no leak or use-after-free. Mixed capture sizes
    // exercise both the inline and the heap-fallback callback paths.
    Simulator sim;
    std::uint64_t fired = 0;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 500; ++i) {
            sim.schedule(nanoseconds(i % 97), [&fired] { ++fired; });
            if (i % 25 == 0) {
                // Oversized capture: heap fallback path.
                std::vector<std::uint64_t> big(16, fired);
                sim.schedule(nanoseconds(i), [&fired, big] {
                    fired += big.size() > 0 ? 1 : 0;
                });
            }
        }
        sim.run();
    }
    EXPECT_EQ(fired, 50u * (500u + 20u));
    // Steady-state churn must not grow the queue.
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(InplaceCallback, InlineAndHeapCapturesBehave)
{
    int hits = 0;
    InplaceCallback small([&hits] { ++hits; });
    EXPECT_TRUE(small != nullptr);
    small();
    EXPECT_EQ(hits, 1);

    // > 3 pointers of captures: heap fallback, still correct.
    std::uint64_t a = 1, b = 2, c = 3, d = 4;
    InplaceCallback big([&hits, a, b, c, d] {
        hits += static_cast<int>(a + b + c + d);
    });
    InplaceCallback moved = std::move(big);
    EXPECT_TRUE(big == nullptr);
    moved();
    EXPECT_EQ(hits, 11);

    moved.reset();
    EXPECT_FALSE(static_cast<bool>(moved));

    InplaceCallback empty;
    EXPECT_TRUE(empty == nullptr);
}

TEST(Simulator, RunUntilWithEmptyQueueAdvancesAndStaysUsable)
{
    Simulator sim;
    EXPECT_EQ(sim.runUntil(microseconds(3.0)), microseconds(3.0));
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(sim.executedEvents(), 0u);
    // The kernel must accept new work after the clock jump.
    int fired = 0;
    sim.schedule(nanoseconds(1), [&] { ++fired; });
    sim.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), microseconds(3.0) + nanoseconds(1));
}

TEST(Simulator, StopFromInsideCallbackPreservesRemainingEvents)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(nanoseconds(1), [&] {
        order.push_back(1);
        sim.stop();
        // Scheduling after stop() must still be honored on resume.
        sim.schedule(nanoseconds(1), [&] { order.push_back(2); });
    });
    sim.schedule(nanoseconds(5), [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, std::vector<int>{1});
    EXPECT_TRUE(sim.stopRequested());
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAtNowFromFiringEventIsFifoAfterPending)
{
    // An event firing at tick T that schedules new work at T must see
    // that work run after everything already pending at T.
    Simulator sim;
    std::vector<int> order;
    sim.schedule(nanoseconds(5), [&] {
        order.push_back(1);
        sim.schedule(0, [&] { order.push_back(3); });
        sim.schedule(0, [&] { order.push_back(4); });
    });
    sim.schedule(nanoseconds(5), [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(sim.now(), nanoseconds(5));
}

} // namespace
