/**
 * @file
 * Unit tests for the error-reporting helpers in sim/logging.hh:
 * panic() aborts, fatal() exits with status 1, warn()/inform() return,
 * and RV_ASSERT fires with a useful message. The NDEBUG-independence
 * of RV_ASSERT is covered separately by release_assert_test.cc, whose
 * translation unit is force-compiled with NDEBUG.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

namespace {

using namespace rpcvalet;

TEST(LoggingDeathTest, PanicAbortsWithMessage)
{
    EXPECT_DEATH(sim::panic("broken invariant"),
                 "panic: broken invariant");
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(sim::fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(LoggingDeathTest, FailedRvAssertNamesConditionAndMessage)
{
    EXPECT_DEATH(RV_ASSERT(2 < 1, "ordering broke"),
                 "assertion '2 < 1' failed: ordering broke");
}

TEST(Logging, WarnAndInformReturnNormally)
{
    sim::warn("just a warning");
    sim::inform("just information");
}

TEST(Logging, StrfmtHandlesMixedArguments)
{
    EXPECT_EQ(sim::strfmt("core %u served %lu rpcs (%.1f%%)", 3u, 42ul,
                          99.5),
              "core 3 served 42 rpcs (99.5%)");
}

TEST(Logging, StrfmtEmptyAndPlainStrings)
{
    EXPECT_EQ(sim::strfmt("%s", ""), "");
    EXPECT_EQ(sim::strfmt("no placeholders"), "no placeholders");
}

TEST(Logging, ErrorContextFramesNestAndUnwind)
{
    EXPECT_EQ(sim::ErrorContext::current(), "");
    {
        sim::ErrorContext outer("file.scn:3 (policy = jbqs)");
        EXPECT_EQ(sim::ErrorContext::current(),
                  "file.scn:3 (policy = jbqs)");
        {
            sim::ErrorContext inner("registry lookup");
            EXPECT_EQ(sim::ErrorContext::current(),
                      "file.scn:3 (policy = jbqs): registry lookup");
        }
        EXPECT_EQ(sim::ErrorContext::current(),
                  "file.scn:3 (policy = jbqs)");
    }
    EXPECT_EQ(sim::ErrorContext::current(), "");
}

TEST(LoggingDeathTest, FatalCarriesActiveErrorContext)
{
    EXPECT_EXIT(
        {
            sim::ErrorContext ctx("cfg.scn:7 (arrival = posion)");
            sim::fatal("unknown arrival process");
        },
        ::testing::ExitedWithCode(1),
        "fatal: cfg\\.scn:7 \\(arrival = posion\\): unknown arrival "
        "process");
}

} // namespace
