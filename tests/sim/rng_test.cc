/**
 * @file
 * Unit tests for the xoshiro256** generator and its samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/rng.hh"

namespace {

using rpcvalet::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, DifferentStreamsDiverge)
{
    Rng a(123, 0), b(123, 1);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIntCoversFullRangeInclusive)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42u);
}

TEST(Rng, UniformIntIsUnbiased)
{
    // Chi-squared-ish check over 16 buckets.
    Rng rng(17);
    const int n = 160000;
    std::vector<int> counts(16, 0);
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(0, 15)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 16, n / 16 / 10);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(23);
    const double mean = 300.0;
    double sum = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.01);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(31);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, GammaMomentsMatch)
{
    Rng rng(37);
    const double k = 3.0;
    const double theta = 0.5;
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.gamma(k, theta);
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, k * theta, 0.02);
    EXPECT_NEAR(var, k * theta * theta, 0.03);
}

TEST(Rng, GammaShapeBelowOneMatches)
{
    Rng rng(41);
    const double k = 0.5;
    const double theta = 2.0;
    double sum = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        sum += rng.gamma(k, theta);
    EXPECT_NEAR(sum / n, k * theta, 0.03);
}

} // namespace
