/**
 * @file
 * Unit and property tests for the service-time distribution library,
 * including the paper's §5 synthetic profiles.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "sim/distributions.hh"

namespace {

using namespace rpcvalet::sim;

/** Sample mean helper with a fixed seed. */
double
sampleMean(const Distribution &d, int n = 300000, std::uint64_t seed = 1)
{
    Rng rng(seed);
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += d.sample(rng);
    return sum / n;
}

TEST(FixedDist, AlwaysReturnsValue)
{
    FixedDist d(300.0);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(d.sample(rng), 300.0);
    EXPECT_DOUBLE_EQ(d.mean(), 300.0);
}

TEST(UniformDist, BoundsAndMean)
{
    UniformDist d(100.0, 500.0);
    Rng rng(2);
    for (int i = 0; i < 10000; ++i) {
        const double x = d.sample(rng);
        EXPECT_GE(x, 100.0);
        EXPECT_LT(x, 500.0);
    }
    EXPECT_DOUBLE_EQ(d.mean(), 300.0);
    EXPECT_NEAR(sampleMean(d), 300.0, 2.0);
}

TEST(ExponentialDist, MeanMatches)
{
    ExponentialDist d(250.0);
    EXPECT_DOUBLE_EQ(d.mean(), 250.0);
    EXPECT_NEAR(sampleMean(d), 250.0, 2.5);
}

TEST(GevDist, PaperParametersHaveMean600Cycles)
{
    // §5: GEV(363, 100, 0.65) has mean ~600 cycles (300 ns at 2 GHz).
    GevDist d(363.0, 100.0, 0.65);
    EXPECT_NEAR(d.mean(), 600.0, 3.0);
}

TEST(GevDist, SampleMeanTracksAnalyticalMean)
{
    GevDist d(363.0, 100.0, 0.65);
    // Heavy tail (shape 0.65 => infinite variance): use many samples
    // and a loose tolerance.
    EXPECT_NEAR(sampleMean(d, 2000000), d.mean(), d.mean() * 0.05);
}

TEST(GevDist, GumbelLimitMean)
{
    GevDist d(100.0, 50.0, 0.0);
    constexpr double euler_gamma = 0.5772156649015329;
    EXPECT_NEAR(d.mean(), 100.0 + 50.0 * euler_gamma, 1e-9);
    EXPECT_NEAR(sampleMean(d), d.mean(), 1.0);
}

TEST(GevDist, QuantilesMatchInverseCdf)
{
    // For GEV, P(X <= x_q) = q at x_q = loc + scale*((-ln q)^-shape - 1)
    // / shape. Check the empirical CDF at q = 0.5 and q = 0.99.
    GevDist d(363.0, 100.0, 0.65);
    Rng rng(5);
    const int n = 400000;
    auto quantile = [&](double q) {
        return 363.0 + 100.0 * (std::pow(-std::log(q), -0.65) - 1.0) / 0.65;
    };
    int below_median = 0;
    int below_p99 = 0;
    const double x50 = quantile(0.5);
    const double x99 = quantile(0.99);
    for (int i = 0; i < n; ++i) {
        const double x = d.sample(rng);
        below_median += (x <= x50);
        below_p99 += (x <= x99);
    }
    EXPECT_NEAR(below_median / static_cast<double>(n), 0.5, 0.005);
    EXPECT_NEAR(below_p99 / static_cast<double>(n), 0.99, 0.002);
}

TEST(LogNormalDist, FromMeanSigmaHitsRequestedMean)
{
    const auto d = LogNormalDist::fromMeanSigma(330.0, 0.45);
    EXPECT_NEAR(d.mean(), 330.0, 1e-9);
    EXPECT_NEAR(sampleMean(d), 330.0, 3.0);
}

TEST(GammaDist, MeanMatches)
{
    GammaDist d(3.0, 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 300.0);
    EXPECT_NEAR(sampleMean(d), 300.0, 3.0);
}

TEST(ShiftedDist, AddsOffset)
{
    ShiftedDist d(300.0, std::make_unique<FixedDist>(42.0));
    Rng rng(1);
    EXPECT_DOUBLE_EQ(d.sample(rng), 342.0);
    EXPECT_DOUBLE_EQ(d.mean(), 342.0);
}

TEST(ClampedDist, RespectsBounds)
{
    ClampedDist d(100.0, 200.0, std::make_unique<ExponentialDist>(150.0));
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        const double x = d.sample(rng);
        EXPECT_GE(x, 100.0);
        EXPECT_LE(x, 200.0);
    }
    EXPECT_GE(d.mean(), 100.0);
    EXPECT_LE(d.mean(), 200.0);
}

TEST(ClampedDist, EstimatedMeanTracksSampleMean)
{
    ClampedDist d(0.0, 1000.0,
                  std::make_unique<ExponentialDist>(300.0));
    EXPECT_NEAR(sampleMean(d), d.mean(), d.mean() * 0.02);
}

TEST(MixtureDist, WeightsRespected)
{
    std::vector<MixtureDist::Component> comps;
    comps.push_back({0.99, std::make_unique<FixedDist>(1.0)});
    comps.push_back({0.01, std::make_unique<FixedDist>(100.0)});
    MixtureDist d(std::move(comps));
    EXPECT_NEAR(d.mean(), 0.99 * 1.0 + 0.01 * 100.0, 1e-9);

    Rng rng(9);
    int big = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        big += (d.sample(rng) > 50.0);
    EXPECT_NEAR(big / static_cast<double>(n), 0.01, 0.002);
}

TEST(EmpiricalDist, ResamplesGivenValues)
{
    EmpiricalDist d({10.0, 20.0, 30.0});
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const double x = d.sample(rng);
        EXPECT_TRUE(x == 10.0 || x == 20.0 || x == 30.0);
    }
}

TEST(Distribution, CloneProducesIndependentEqualDistribution)
{
    auto d = makeSynthetic(SyntheticKind::Gev);
    auto c = d->clone();
    EXPECT_EQ(d->name(), c->name());
    EXPECT_NEAR(sampleMean(*d, 100000, 3), sampleMean(*c, 100000, 3),
                1e-12);
}

// ----- §5 synthetic profile properties (parameterized) -----

class SyntheticProfile
    : public ::testing::TestWithParam<SyntheticKind>
{
};

TEST_P(SyntheticProfile, MeanIsSixHundredNs)
{
    auto d = makeSynthetic(GetParam());
    // 300 ns base + 300 ns mean extra (§5). GEV's configured mean is
    // ~600 cycles / 2 = ~300 ns, so allow a small tolerance.
    EXPECT_NEAR(d->mean(), 600.0, 5.0);
}

TEST_P(SyntheticProfile, SamplesNeverBelowBaseLatency)
{
    auto d = makeSynthetic(GetParam());
    Rng rng(33);
    for (int i = 0; i < 50000; ++i)
        EXPECT_GE(d->sample(rng), 300.0);
}

TEST_P(SyntheticProfile, SampleMeanTracksConfiguredMean)
{
    auto d = makeSynthetic(GetParam());
    const int n = GetParam() == SyntheticKind::Gev ? 2000000 : 300000;
    EXPECT_NEAR(sampleMean(*d, n), d->mean(), d->mean() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SyntheticProfile,
                         ::testing::ValuesIn(allSyntheticKinds()),
                         [](const auto &tpinfo) {
                             return syntheticKindName(tpinfo.param);
                         });

TEST(Synthetic, VarianceOrderingMatchesPaper)
{
    // §2.2: variance(fixed) < variance(uniform) < variance(exp) <
    // variance(GEV tail). Compare p99s as a tail-weight proxy.
    auto p99_of = [](SyntheticKind kind) {
        auto d = makeSynthetic(kind);
        Rng rng(77);
        std::vector<double> xs(200000);
        for (auto &x : xs)
            x = d->sample(rng);
        std::sort(xs.begin(), xs.end());
        return xs[static_cast<size_t>(xs.size() * 0.99)];
    };
    const double fixed = p99_of(SyntheticKind::Fixed);
    const double uni = p99_of(SyntheticKind::Uniform);
    const double exp = p99_of(SyntheticKind::Exponential);
    const double gev = p99_of(SyntheticKind::Gev);
    EXPECT_LT(fixed, uni);
    EXPECT_LT(uni, exp);
    EXPECT_LT(exp, gev);
}

} // namespace
