/**
 * @file
 * Unit tests for the NI dispatcher (§4.3): threshold enforcement, FIFO
 * shared-CQ draining, replenish crediting, and decision serialization.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ni/dispatcher.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;
using ni::Dispatcher;
using Simulator = sim::EventDomain;
using sim::nanoseconds;

proto::CompletionQueueEntry
entry(std::uint32_t slot)
{
    proto::CompletionQueueEntry e;
    e.slotIndex = slot;
    return e;
}

struct Delivery
{
    proto::CoreId core;
    std::uint32_t slot;
};

struct Fixture
{
    Simulator sim;
    std::vector<Delivery> deliveries;

    std::unique_ptr<Dispatcher>
    make(std::uint32_t threshold, std::uint32_t cores = 4)
    {
        Dispatcher::Params p;
        p.outstandingThreshold = threshold;
        p.decisionOccupancy = nanoseconds(4);
        std::vector<proto::CoreId> cand;
        for (proto::CoreId c = 0; c < cores; ++c)
            cand.push_back(c);
        return std::make_unique<Dispatcher>(
            sim, p, ni::makePolicy("greedy"),
            cores, cand,
            [this](proto::CoreId core, proto::CompletionQueueEntry e) {
                deliveries.push_back({core, e.slotIndex});
            });
    }
};

TEST(Dispatcher, DeliversToIdleCores)
{
    Fixture f;
    auto d = f.make(2);
    d->enqueue(entry(0));
    d->enqueue(entry(1));
    f.sim.run();
    ASSERT_EQ(f.deliveries.size(), 2u);
    EXPECT_NE(f.deliveries[0].core, f.deliveries[1].core);
    EXPECT_EQ(d->dispatched(), 2u);
}

TEST(Dispatcher, NeverExceedsThreshold)
{
    Fixture f;
    auto d = f.make(2);
    for (std::uint32_t i = 0; i < 20; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    // 4 cores x threshold 2 = 8 in flight; the rest wait in the CQ.
    EXPECT_EQ(f.deliveries.size(), 8u);
    EXPECT_EQ(d->sharedCqDepth(), 12u);
    for (proto::CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(d->outstanding(c), 2u);
}

TEST(Dispatcher, SharedCqDrainsFifo)
{
    Fixture f;
    auto d = f.make(1);
    for (std::uint32_t i = 0; i < 8; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    ASSERT_EQ(f.deliveries.size(), 4u);
    // First four entries dispatched in order 0..3.
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(f.deliveries[i].slot, i);
    // Replenishes release the rest, still in FIFO order.
    for (proto::CoreId c = 0; c < 4; ++c)
        d->onReplenish(c);
    f.sim.run();
    ASSERT_EQ(f.deliveries.size(), 8u);
    for (std::uint32_t i = 4; i < 8; ++i)
        EXPECT_EQ(f.deliveries[i].slot, i);
}

TEST(Dispatcher, ReplenishFreesCredit)
{
    Fixture f;
    auto d = f.make(1, 1); // one core, threshold 1: strict serial
    d->enqueue(entry(0));
    d->enqueue(entry(1));
    f.sim.run();
    EXPECT_EQ(f.deliveries.size(), 1u);
    EXPECT_EQ(d->outstanding(0), 1u);
    d->onReplenish(0);
    f.sim.run();
    EXPECT_EQ(f.deliveries.size(), 2u);
    EXPECT_EQ(d->outstanding(0), 1u);
}

TEST(Dispatcher, DecisionsSerializeOnPipeline)
{
    // Two back-to-back decisions are 4 ns apart (decisionOccupancy).
    Fixture f;
    auto d = f.make(2);
    std::vector<sim::Tick> times;
    Dispatcher::Params p;
    p.outstandingThreshold = 2;
    p.decisionOccupancy = nanoseconds(4);
    Dispatcher timed(
        f.sim, p, ni::makePolicy("greedy"), 4,
        {0, 1, 2, 3},
        [&](proto::CoreId, proto::CompletionQueueEntry) {
            times.push_back(f.sim.now());
        });
    timed.enqueue(entry(0));
    timed.enqueue(entry(1));
    timed.enqueue(entry(2));
    f.sim.run();
    ASSERT_EQ(times.size(), 3u);
    EXPECT_EQ(times[1] - times[0], nanoseconds(4));
    EXPECT_EQ(times[2] - times[1], nanoseconds(4));
}

TEST(Dispatcher, SharedCqPeakTracked)
{
    Fixture f;
    auto d = f.make(1);
    for (std::uint32_t i = 0; i < 10; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    EXPECT_GE(d->sharedCqPeak(), 6u);
}

TEST(DispatcherDeath, ReplenishWithoutOutstandingPanics)
{
    Fixture f;
    auto d = f.make(2);
    EXPECT_DEATH(d->onReplenish(0), "without outstanding");
}

TEST(DispatcherDeath, CandidateOutOfRangePanics)
{
    Simulator sim;
    Dispatcher::Params p;
    EXPECT_DEATH(Dispatcher(sim, p,
                            ni::makePolicy("greedy"),
                            4, {9},
                            [](proto::CoreId,
                               proto::CompletionQueueEntry) {}),
                 "candidate core");
}

} // namespace
