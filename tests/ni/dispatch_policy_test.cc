/**
 * @file
 * Unit tests for the core-selection policies (§4.3).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ni/dispatch_policy.hh"

namespace {

using namespace rpcvalet;
using ni::DispatchPolicy;
using ni::PolicyKind;
using ni::makePolicy;

std::vector<proto::CoreId>
allCores(std::uint32_t n)
{
    std::vector<proto::CoreId> out;
    for (proto::CoreId c = 0; c < n; ++c)
        out.push_back(c);
    return out;
}

TEST(Greedy, PrefersIdleCore)
{
    auto policy = makePolicy(PolicyKind::GreedyLeastLoaded);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding = {1, 1, 0, 1};
    const auto pick = policy->select(outstanding, 2, allCores(4), rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 2u);
}

TEST(Greedy, DoubleBooksOnlyWhenNoIdleCore)
{
    auto policy = makePolicy(PolicyKind::GreedyLeastLoaded);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding = {1, 1, 1, 1};
    const auto pick = policy->select(outstanding, 2, allCores(4), rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(outstanding[*pick], 1u);
}

TEST(Greedy, ReturnsNulloptWhenAllSaturated)
{
    auto policy = makePolicy(PolicyKind::GreedyLeastLoaded);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding = {2, 2, 2, 2};
    EXPECT_FALSE(policy->select(outstanding, 2, allCores(4), rng));
}

TEST(Greedy, RespectsCandidateSubset)
{
    // A 4x4-style dispatcher only sees its group.
    auto policy = makePolicy(PolicyKind::GreedyLeastLoaded);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding(16, 0);
    const std::vector<proto::CoreId> group = {4, 5, 6, 7};
    for (int i = 0; i < 20; ++i) {
        const auto pick = policy->select(outstanding, 2, group, rng);
        ASSERT_TRUE(pick.has_value());
        EXPECT_GE(*pick, 4u);
        EXPECT_LE(*pick, 7u);
        ++outstanding[*pick];
        if (i % 3 == 0) {
            for (auto c : group)
                outstanding[c] = 0;
        }
    }
}

TEST(Greedy, TieBreakRotates)
{
    // All idle: consecutive picks should not all hit the same core.
    auto policy = makePolicy(PolicyKind::GreedyLeastLoaded);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding(4, 0);
    std::set<proto::CoreId> seen;
    for (int i = 0; i < 4; ++i) {
        const auto pick = policy->select(outstanding, 2, allCores(4), rng);
        ASSERT_TRUE(pick.has_value());
        seen.insert(*pick);
        // Keep all cores idle so only the cursor differentiates.
    }
    EXPECT_GE(seen.size(), 2u);
}

TEST(RoundRobin, CyclesThroughAvailableCores)
{
    auto policy = makePolicy(PolicyKind::RoundRobin);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding(4, 0);
    std::vector<proto::CoreId> picks;
    for (int i = 0; i < 8; ++i) {
        const auto pick = policy->select(outstanding, 4, allCores(4), rng);
        ASSERT_TRUE(pick.has_value());
        picks.push_back(*pick);
    }
    EXPECT_EQ(picks, (std::vector<proto::CoreId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobin, SkipsSaturatedCores)
{
    auto policy = makePolicy(PolicyKind::RoundRobin);
    sim::Rng rng(1);
    std::vector<std::uint32_t> outstanding = {2, 0, 2, 0};
    for (int i = 0; i < 6; ++i) {
        const auto pick = policy->select(outstanding, 2, allCores(4), rng);
        ASSERT_TRUE(pick.has_value());
        EXPECT_TRUE(*pick == 1 || *pick == 3);
    }
}

TEST(PowerOfTwo, PicksLessLoadedOfTwo)
{
    auto policy = makePolicy(PolicyKind::PowerOfTwoChoices);
    sim::Rng rng(7);
    // One heavily loaded core: po2c should avoid it most of the time.
    std::vector<std::uint32_t> outstanding = {1, 0, 0, 0};
    int hit_loaded = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const auto pick = policy->select(outstanding, 2, allCores(4), rng);
        ASSERT_TRUE(pick.has_value());
        hit_loaded += (*pick == 0);
    }
    // Core 0 is picked only when both samples land on it: p = 1/16.
    EXPECT_LT(hit_loaded, n / 8);
}

TEST(PowerOfTwo, FallsBackToScanWhenSamplesSaturated)
{
    auto policy = makePolicy(PolicyKind::PowerOfTwoChoices);
    sim::Rng rng(7);
    std::vector<std::uint32_t> outstanding = {2, 2, 2, 0};
    for (int i = 0; i < 50; ++i) {
        const auto pick = policy->select(outstanding, 2, allCores(4), rng);
        ASSERT_TRUE(pick.has_value());
        EXPECT_EQ(*pick, 3u);
    }
}

TEST(PolicyNames, AllNamed)
{
    EXPECT_EQ(makePolicy(PolicyKind::GreedyLeastLoaded)->name(), "greedy");
    EXPECT_EQ(makePolicy(PolicyKind::RoundRobin)->name(), "round-robin");
    EXPECT_EQ(makePolicy(PolicyKind::PowerOfTwoChoices)->name(), "po2c");
    EXPECT_EQ(ni::policyKindName(PolicyKind::GreedyLeastLoaded), "greedy");
}

TEST(ModeNames, MatchPaperNotation)
{
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::SingleQueue), "1x16");
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::PerBackendGroup),
              "4x4");
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::StaticHash), "16x1");
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::SoftwarePull),
              "sw-1x16");
}

} // namespace
