/**
 * @file
 * Unit tests for the built-in core-selection policies (§4.3) through
 * the event-driven policy API: policies are made from spec strings and
 * driven with a hand-built DispatchContext.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ni/dispatch_policy.hh"

namespace {

using namespace rpcvalet;
using ni::DispatchContext;
using ni::makePolicy;

std::vector<proto::CoreId>
allCores(std::uint32_t n)
{
    std::vector<proto::CoreId> out;
    for (proto::CoreId c = 0; c < n; ++c)
        out.push_back(c);
    return out;
}

/** Owns the state a DispatchContext views, for driving bare policies. */
struct ContextFixture
{
    std::vector<std::uint32_t> outstanding;
    std::vector<proto::CoreId> candidates;
    std::uint32_t threshold = 2;
    sim::Tick now = 0;
    sim::Rng rng{1};

    explicit ContextFixture(std::uint32_t cores, std::uint32_t thresh = 2)
        : outstanding(cores, 0), candidates(allCores(cores)),
          threshold(thresh)
    {}

    DispatchContext
    ctx()
    {
        return DispatchContext{outstanding, candidates, threshold, now,
                               rng};
    }

    /** select() and mirror the dispatcher's bookkeeping + events. */
    std::optional<proto::CoreId>
    step(ni::DispatchPolicy &policy)
    {
        const auto pick = policy.select(ctx());
        if (pick) {
            ++outstanding[*pick];
            policy.onDispatch(*pick, ctx());
        }
        return pick;
    }
};

TEST(Greedy, PrefersIdleCore)
{
    auto policy = makePolicy("greedy");
    ContextFixture f(4);
    f.outstanding = {1, 1, 0, 1};
    const auto pick = policy->select(f.ctx());
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(*pick, 2u);
}

TEST(Greedy, DoubleBooksOnlyWhenNoIdleCore)
{
    auto policy = makePolicy("greedy");
    ContextFixture f(4);
    f.outstanding = {1, 1, 1, 1};
    const auto pick = policy->select(f.ctx());
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(f.outstanding[*pick], 1u);
}

TEST(Greedy, ReturnsNulloptWhenAllSaturated)
{
    auto policy = makePolicy("greedy");
    ContextFixture f(4);
    f.outstanding = {2, 2, 2, 2};
    EXPECT_FALSE(policy->select(f.ctx()));
}

TEST(Greedy, RespectsCandidateSubset)
{
    // A 4x4-style dispatcher only sees its group.
    auto policy = makePolicy("greedy");
    ContextFixture f(16);
    f.candidates = {4, 5, 6, 7};
    for (int i = 0; i < 20; ++i) {
        const auto pick = f.step(*policy);
        ASSERT_TRUE(pick.has_value());
        EXPECT_GE(*pick, 4u);
        EXPECT_LE(*pick, 7u);
        if (i % 3 == 0) {
            for (auto c : f.candidates)
                f.outstanding[c] = 0;
        }
    }
}

TEST(Greedy, TieBreakRotates)
{
    // All idle: consecutive picks should not all hit the same core.
    auto policy = makePolicy("greedy");
    ContextFixture f(4);
    std::set<proto::CoreId> seen;
    for (int i = 0; i < 4; ++i) {
        const auto pick = policy->select(f.ctx());
        ASSERT_TRUE(pick.has_value());
        seen.insert(*pick);
        // Keep all cores idle so only the cursor differentiates.
    }
    EXPECT_GE(seen.size(), 2u);
}

TEST(RoundRobin, CyclesThroughAvailableCores)
{
    auto policy = makePolicy("rr");
    ContextFixture f(4, /*thresh=*/4);
    std::vector<proto::CoreId> picks;
    for (int i = 0; i < 8; ++i) {
        const auto pick = policy->select(f.ctx());
        ASSERT_TRUE(pick.has_value());
        picks.push_back(*pick);
    }
    EXPECT_EQ(picks, (std::vector<proto::CoreId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobin, SkipsSaturatedCores)
{
    auto policy = makePolicy("rr");
    ContextFixture f(4);
    f.outstanding = {2, 0, 2, 0};
    for (int i = 0; i < 6; ++i) {
        const auto pick = policy->select(f.ctx());
        ASSERT_TRUE(pick.has_value());
        EXPECT_TRUE(*pick == 1 || *pick == 3);
    }
}

TEST(PowerOfTwo, PicksLessLoadedOfTwo)
{
    auto policy = makePolicy("pow2");
    ContextFixture f(4);
    f.rng = sim::Rng(7);
    // One heavily loaded core: pow2 should avoid it most of the time.
    f.outstanding = {1, 0, 0, 0};
    int hit_loaded = 0;
    const int n = 1000;
    for (int i = 0; i < n; ++i) {
        const auto pick = policy->select(f.ctx());
        ASSERT_TRUE(pick.has_value());
        hit_loaded += (*pick == 0);
    }
    // Core 0 is picked only when both samples land on it: p = 1/16.
    EXPECT_LT(hit_loaded, n / 8);
}

TEST(PowerOfTwo, FallsBackToScanWhenSamplesSaturated)
{
    auto policy = makePolicy("pow2");
    ContextFixture f(4);
    f.rng = sim::Rng(7);
    f.outstanding = {2, 2, 2, 0};
    for (int i = 0; i < 50; ++i) {
        const auto pick = policy->select(f.ctx());
        ASSERT_TRUE(pick.has_value());
        EXPECT_EQ(*pick, 3u);
    }
}

TEST(PowerOfD, HigherDConcentratesOnLeastLoaded)
{
    // With d = 8 samples over 4 cores, the single idle core is found
    // almost always.
    auto policy = makePolicy("pow2:d=8");
    ContextFixture f(4, /*thresh=*/4);
    f.rng = sim::Rng(11);
    f.outstanding = {3, 3, 3, 0};
    int hit_idle = 0;
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        const auto pick = policy->select(f.ctx());
        ASSERT_TRUE(pick.has_value());
        hit_idle += (*pick == 3);
    }
    // Expected hit rate 1 - (3/4)^8 ~ 90%; d=2 would manage only ~44%.
    EXPECT_GT(hit_idle, n * 8 / 10);
}

TEST(PolicyNames, ReflectSpecs)
{
    EXPECT_EQ(makePolicy("greedy")->name(), "greedy");
    EXPECT_EQ(makePolicy("rr")->name(), "rr");
    EXPECT_EQ(makePolicy("pow2")->name(), "pow2:d=2");
    EXPECT_EQ(makePolicy("pow2:d=3")->name(), "pow2:d=3");
    EXPECT_EQ(makePolicy("jbsq:d=4")->name(), "jbsq:d=4");
    EXPECT_EQ(makePolicy("stale-jsq:staleness=50ns")->name(),
              "stale-jsq:staleness=50ns");
    EXPECT_EQ(makePolicy("delay-aware")->name(),
              "delay-aware:alpha=0.1,init=550ns");
    // Parameterized instances stay distinguishable in bench output.
    EXPECT_EQ(makePolicy("delay-aware:alpha=0.5,init=1us")->name(),
              "delay-aware:alpha=0.5,init=1000ns");
}

TEST(ModeNames, MatchPaperNotation)
{
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::SingleQueue), "1x16");
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::PerBackendGroup),
              "4x4");
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::StaticHash), "16x1");
    EXPECT_EQ(ni::dispatchModeName(ni::DispatchMode::SoftwarePull),
              "sw-1x16");
}

} // namespace
