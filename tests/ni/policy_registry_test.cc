/**
 * @file
 * Tests for the PolicyRegistry and the PolicySpec parser: name lookup
 * and error reporting, duplicate-registration detection, external
 * registration, spec round-tripping, and typed parameter access.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "ni/dispatch_policy.hh"

namespace {

using namespace rpcvalet;
using ni::PolicyRegistry;
using ni::PolicySpec;

TEST(Registry, BuiltinsAreRegistered)
{
    const auto names = PolicyRegistry::instance().names();
    for (const char *expected :
         {"greedy", "rr", "pow2", "jbsq", "stale-jsq", "delay-aware"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                    names.end())
            << expected << " missing from registry";
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryDeath, UnknownNameIsFatalAndListsRegisteredNames)
{
    // The error must both flag the bad name and tell the user what is
    // available.
    EXPECT_EXIT(ni::makePolicy("nonesuch"),
                ::testing::ExitedWithCode(1),
                "unknown dispatch policy 'nonesuch'.*greedy.*jbsq.*rr");
}

TEST(RegistryDeath, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(PolicyRegistry::instance().add(
                    "greedy",
                    [](const PolicySpec &) {
                        return ni::makePolicy("rr");
                    }),
                ::testing::ExitedWithCode(1),
                "'greedy' is already registered");
}

TEST(RegistryDeath, EmptyNameIsFatal)
{
    EXPECT_EXIT(PolicyRegistry::instance().add(
                    "",
                    [](const PolicySpec &) {
                        return ni::makePolicy("rr");
                    }),
                ::testing::ExitedWithCode(1), "empty name");
}

TEST(Registry, ExternalRegistrationIsVisibleEverywhere)
{
    // Mirrors examples/custom_policy_playground.cc: a policy defined in
    // this test TU becomes reachable by name through the public API.
    class EchoFirstCandidate : public ni::DispatchPolicy
    {
      public:
        std::optional<proto::CoreId>
        select(const ni::DispatchContext &ctx) override
        {
            for (const proto::CoreId core : ctx.candidates) {
                if (ctx.outstanding[core] < ctx.threshold)
                    return core;
            }
            return std::nullopt;
        }
        std::string name() const override { return "test-first-fit"; }
    };

    static const ni::PolicyRegistrar registrar(
        "test-first-fit", [](const PolicySpec &spec) {
            spec.expectKeys({});
            return std::make_unique<EchoFirstCandidate>();
        });

    EXPECT_TRUE(PolicyRegistry::instance().contains("test-first-fit"));
    EXPECT_EQ(ni::makePolicy("test-first-fit")->name(), "test-first-fit");
}

TEST(Spec, ParsesBareName)
{
    const PolicySpec spec = PolicySpec::parse("greedy");
    EXPECT_EQ(spec.name, "greedy");
    EXPECT_TRUE(spec.params.empty());
    EXPECT_EQ(spec.toString(), "greedy");
}

TEST(Spec, ParamsRoundTripThroughToString)
{
    const PolicySpec spec = PolicySpec::parse("pow2:d=3");
    EXPECT_EQ(spec.name, "pow2");
    EXPECT_EQ(spec.uintParam("d", 0), 3u);
    EXPECT_EQ(spec.toString(), "pow2:d=3");
    EXPECT_EQ(PolicySpec::parse(spec.toString()), spec);
}

TEST(Spec, MultipleParamsSortedAndRoundTrip)
{
    const PolicySpec spec = PolicySpec::parse("delay-aware:init=1us,alpha=0.25");
    EXPECT_DOUBLE_EQ(spec.doubleParam("alpha", 0.0), 0.25);
    EXPECT_EQ(spec.tickParam("init", 0), sim::microseconds(1.0));
    // Keys print sorted, independent of input order.
    EXPECT_EQ(spec.toString(), "delay-aware:alpha=0.25,init=1us");
    EXPECT_EQ(PolicySpec::parse(spec.toString()), spec);
}

TEST(Spec, TickParamUnits)
{
    EXPECT_EQ(PolicySpec::parse("x:t=50ns").tickParam("t", 0),
              sim::nanoseconds(50.0));
    EXPECT_EQ(PolicySpec::parse("x:t=1.5us").tickParam("t", 0),
              sim::microseconds(1.5));
    EXPECT_EQ(PolicySpec::parse("x:t=2ms").tickParam("t", 0),
              sim::microseconds(2000.0));
    // A bare number means nanoseconds.
    EXPECT_EQ(PolicySpec::parse("x:t=75").tickParam("t", 0),
              sim::nanoseconds(75.0));
    // Absent key falls back.
    EXPECT_EQ(PolicySpec::parse("x").tickParam("t", 123), 123u);
}

TEST(Spec, ImplicitConversionsFromStrings)
{
    const PolicySpec from_literal = "jbsq:d=2";
    EXPECT_EQ(from_literal.name, "jbsq");
    const std::string text = "stale-jsq:staleness=50ns";
    const PolicySpec from_string = text;
    EXPECT_EQ(from_string.tickParam("staleness", 0),
              sim::nanoseconds(50.0));
}

TEST(SpecDeath, MalformedSpecsAreFatal)
{
    EXPECT_EXIT(PolicySpec::parse(""), ::testing::ExitedWithCode(1),
                "empty name");
    EXPECT_EXIT(PolicySpec::parse(":d=2"), ::testing::ExitedWithCode(1),
                "empty name");
    EXPECT_EXIT(PolicySpec::parse("pow2:d"), ::testing::ExitedWithCode(1),
                "key=value");
    EXPECT_EXIT(PolicySpec::parse("pow2:=2"), ::testing::ExitedWithCode(1),
                "key=value");
    EXPECT_EXIT(PolicySpec::parse("pow2:d=2,d=3"),
                ::testing::ExitedWithCode(1), "duplicate key");
    // std::getline never yields the empty segment after a trailing
    // separator; parse must still reject these.
    EXPECT_EXIT(PolicySpec::parse("greedy:"), ::testing::ExitedWithCode(1),
                "key=value");
    EXPECT_EXIT(PolicySpec::parse("pow2:d=3,"),
                ::testing::ExitedWithCode(1), "key=value");
}

TEST(SpecDeath, UnknownParameterKeyIsFatalAtConstruction)
{
    // expectKeys: a typo'd key dies loudly instead of defaulting.
    EXPECT_EXIT(ni::makePolicy("pow2:dd=3"), ::testing::ExitedWithCode(1),
                "unknown parameter 'dd'");
    EXPECT_EXIT(ni::makePolicy("greedy:d=3"), ::testing::ExitedWithCode(1),
                "unknown parameter 'd'");
}

TEST(SpecDeath, NonNumericParamsAreFatal)
{
    EXPECT_EXIT(ni::makePolicy("pow2:d=abc"),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(ni::makePolicy("stale-jsq:staleness=50lightyears"),
                ::testing::ExitedWithCode(1), "unknown unit");
}

TEST(SpecDeath, OutOfRangeNumbersAreFatalNotUndefined)
{
    // Unrepresentable doubles must hit fatal() before any
    // double-to-integer cast (which would be UB).
    EXPECT_EXIT(ni::makePolicy("pow2:d=1e300"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(ni::makePolicy("pow2:d=inf"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(ni::makePolicy("pow2:d=nan"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(ni::makePolicy("pow2:d=2.5"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(ni::makePolicy("pow2:d=-1"),
                ::testing::ExitedWithCode(1), "non-negative integer");
    EXPECT_EXIT(ni::makePolicy("stale-jsq:staleness=1e300ns"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(ni::makePolicy("stale-jsq:staleness=inf"),
                ::testing::ExitedWithCode(1), "out of range");
    // Values that fit a uint64 but not the policies' uint32 'd' must
    // die loudly rather than wrap (4294967298 would wrap to d=2).
    EXPECT_EXIT(ni::makePolicy("pow2:d=4294967298"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(ni::makePolicy("jbsq:d=4294967298"),
                ::testing::ExitedWithCode(1), "out of range");
    // NaN compares false against everything, so the alpha range check
    // must reject it explicitly (it would silently poison the EWMA).
    EXPECT_EXIT(ni::makePolicy("delay-aware:alpha=nan"),
                ::testing::ExitedWithCode(1), "alpha in \\(0, 1\\]");
    EXPECT_EXIT(ni::makePolicy("delay-aware:alpha=0"),
                ::testing::ExitedWithCode(1), "alpha in \\(0, 1\\]");
    EXPECT_EXIT(ni::makePolicy("delay-aware:alpha=1.5"),
                ::testing::ExitedWithCode(1), "alpha in \\(0, 1\\]");
}

} // namespace
