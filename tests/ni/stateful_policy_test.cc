/**
 * @file
 * Tests for the stateful policies built on the event-driven API:
 * JBSQ's bounded per-core queues with deferred assignment, stale-JSQ's
 * sampled load snapshots, and the delay-aware least-work estimator.
 * Policies are driven through a real Dispatcher so the onArrival /
 * onDispatch / onComplete event plumbing is what's under test.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ni/dispatcher.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;
using ni::Dispatcher;
using Simulator = sim::EventDomain;
using sim::nanoseconds;

proto::CompletionQueueEntry
entry(std::uint32_t slot)
{
    proto::CompletionQueueEntry e;
    e.slotIndex = slot;
    return e;
}

struct Fixture
{
    Simulator sim;
    std::vector<proto::CoreId> deliveredTo;

    std::unique_ptr<Dispatcher>
    make(const ni::PolicySpec &spec, std::uint32_t threshold,
         std::uint32_t cores = 4)
    {
        Dispatcher::Params p;
        p.outstandingThreshold = threshold;
        p.decisionOccupancy = nanoseconds(4);
        std::vector<proto::CoreId> cand;
        for (proto::CoreId c = 0; c < cores; ++c)
            cand.push_back(c);
        return std::make_unique<Dispatcher>(
            sim, p, ni::makePolicy(spec), cores, cand,
            [this](proto::CoreId core, proto::CompletionQueueEntry) {
                deliveredTo.push_back(core);
            });
    }
};

TEST(Jbsq, NeverExceedsBoundPerCoreEvenWithLooserThreshold)
{
    // Dispatcher credits would allow 4 per core; jbsq:d=2 must cap its
    // own commitments at 2 and defer the rest in the shared CQ.
    Fixture f;
    auto d = f.make("jbsq:d=2", /*threshold=*/4);
    for (std::uint32_t i = 0; i < 20; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    EXPECT_EQ(f.deliveredTo.size(), 8u); // 4 cores x d=2
    EXPECT_EQ(d->sharedCqDepth(), 12u);  // deferred, not dropped
    for (proto::CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(d->outstanding(c), 2u);
}

TEST(Jbsq, DrainsDeferredQueueOnCompletion)
{
    Fixture f;
    auto d = f.make("jbsq:d=1", /*threshold=*/4);
    for (std::uint32_t i = 0; i < 10; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    ASSERT_EQ(f.deliveredTo.size(), 4u); // one per core at d=1
    EXPECT_EQ(d->sharedCqDepth(), 6u);

    // Each completion must pull exactly one deferred RPC out of the
    // shared CQ, onto the core that freed its slot.
    d->onReplenish(2);
    f.sim.run();
    ASSERT_EQ(f.deliveredTo.size(), 5u);
    EXPECT_EQ(f.deliveredTo.back(), 2u);
    EXPECT_EQ(d->sharedCqDepth(), 5u);

    d->onReplenish(0);
    f.sim.run();
    ASSERT_EQ(f.deliveredTo.size(), 6u);
    EXPECT_EQ(f.deliveredTo.back(), 0u);
    EXPECT_EQ(d->sharedCqDepth(), 4u);
}

TEST(Jbsq, BoundIsCappedByDispatcherThreshold)
{
    // jbsq:d=8 under threshold 2 must honor the tighter credit limit.
    Fixture f;
    auto d = f.make("jbsq:d=8", /*threshold=*/2);
    for (std::uint32_t i = 0; i < 20; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    EXPECT_EQ(f.deliveredTo.size(), 8u);
    for (proto::CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(d->outstanding(c), 2u);
}

/** Drive two dispatchers through an identical event sequence. */
std::vector<proto::CoreId>
deliverySequence(const ni::PolicySpec &spec)
{
    Fixture f;
    auto d = f.make(spec, /*threshold=*/3, /*cores=*/8);
    std::uint32_t slot = 0;
    for (int round = 0; round < 40; ++round) {
        for (int burst = 0; burst <= round % 3; ++burst)
            d->enqueue(entry(slot++));
        f.sim.run();
        // Complete on a deterministic, skewed pattern.
        const proto::CoreId core = f.deliveredTo[round % 7 %
                                                 f.deliveredTo.size()];
        if (d->outstanding(core) > 0)
            d->onReplenish(core);
        f.sim.run();
    }
    return f.deliveredTo;
}

TEST(StaleJsq, ZeroStalenessMatchesGreedyExactly)
{
    // With staleness=0 the snapshot always equals the live counts, so
    // stale-JSQ must reproduce greedy's decisions event for event.
    EXPECT_EQ(deliverySequence("stale-jsq:staleness=0ns"),
              deliverySequence("greedy"));
}

TEST(StaleJsq, StaleSnapshotIgnoresRecentLoad)
{
    // Two cores, threshold 3, everything at t=0 so a huge staleness
    // window means the policy only ever sees the initial all-idle
    // snapshot. After the sequence below the live loads are (2, 0);
    // greedy would pick core 1, but stale-JSQ still believes both are
    // idle and its cursor points at core 0 — admission (live credit
    // check) permits it, so it picks core 0.
    auto drive = [](const ni::PolicySpec &spec) {
        Fixture f;
        auto d = f.make(spec, /*threshold=*/3, /*cores=*/2);
        for (std::uint32_t i = 0; i < 4; ++i)
            d->enqueue(entry(i)); // -> 0, 1, 0, 1 (loads 2, 2)
        f.sim.run();
        d->onReplenish(1);
        d->onReplenish(1); // live loads now (2, 0)
        d->enqueue(entry(4));
        f.sim.run();
        return f.deliveredTo.back();
    };
    EXPECT_EQ(drive("greedy"), 1u);
    EXPECT_EQ(drive("stale-jsq:staleness=1ms"), 0u);
}

TEST(DelayAware, PrefersIdleCoresLikeGreedyAtZeroLoad)
{
    Fixture f;
    auto d = f.make("delay-aware", /*threshold=*/2);
    for (std::uint32_t i = 0; i < 4; ++i)
        d->enqueue(entry(i));
    f.sim.run();
    // All four cores idle: the four RPCs spread one per core.
    std::vector<std::uint32_t> per_core(4, 0);
    for (const proto::CoreId c : f.deliveredTo)
        ++per_core[c];
    EXPECT_EQ(per_core, (std::vector<std::uint32_t>{1, 1, 1, 1}));
}

TEST(DelayAware, EqualCountsBreakTowardOldestDispatch)
{
    // Cores 0 and 1 both hold one RPC, but core 0's was dispatched
    // much earlier — its remaining-work estimate has decayed, so the
    // next RPC goes to core 0 even though the counts tie.
    Fixture f;
    auto d = f.make("delay-aware:init=500ns", /*threshold=*/2,
                    /*cores=*/2);
    d->enqueue(entry(0)); // t=0 -> core 0
    f.sim.run();
    f.sim.scheduleAt(nanoseconds(400), [&] { d->enqueue(entry(1)); });
    f.sim.run(); // t=400ns -> core 1 (core 0 loaded)
    ASSERT_EQ(f.deliveredTo.size(), 2u);
    EXPECT_EQ(f.deliveredTo[0], 0u);
    EXPECT_EQ(f.deliveredTo[1], 1u);

    // t=450ns: counts are (1, 1); core 0's RPC is 450 ns old (est.
    // ~50 ns left), core 1's is 50 ns old (est. ~450 ns left).
    f.sim.scheduleAt(nanoseconds(450), [&] { d->enqueue(entry(2)); });
    f.sim.run();
    ASSERT_EQ(f.deliveredTo.size(), 3u);
    EXPECT_EQ(f.deliveredTo[2], 0u);
}

TEST(DelayAware, CompletionsUpdateTheWorkEstimate)
{
    // After observing fast completions the estimator should treat a
    // just-dispatched RPC as nearly done. Functional smoke: a long
    // mixed sequence keeps dispatching without violating credits.
    Fixture f;
    auto d = f.make("delay-aware:alpha=0.5", /*threshold=*/2);
    std::uint32_t slot = 0;
    for (int round = 0; round < 30; ++round) {
        d->enqueue(entry(slot++));
        f.sim.run();
        if (!f.deliveredTo.empty()) {
            const proto::CoreId core = f.deliveredTo.back();
            if (d->outstanding(core) > 0)
                d->onReplenish(core);
        }
        f.sim.run();
    }
    EXPECT_EQ(f.deliveredTo.size(), 30u);
    for (proto::CoreId c = 0; c < 4; ++c)
        EXPECT_LE(d->outstanding(c), 2u);
}

} // namespace
