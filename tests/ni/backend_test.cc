/**
 * @file
 * Unit tests for the NI backend pipelines: ingress reassembly &
 * completion signaling, per-packet occupancy, egress streaming, and
 * replenish handling (§4.2, §4.4).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/buffers.hh"
#include "ni/backend.hh"
#include "proto/packet.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;
using ni::NiBackend;
using Simulator = sim::EventDomain;
using sim::Tick;
using sim::nanoseconds;

struct Fixture
{
    proto::MessagingDomain domain;
    Simulator sim;
    mem::MemoryModel memory;
    mem::RecvBuffer recv;
    std::vector<proto::CompletionQueueEntry> completions;
    std::vector<std::pair<proto::NodeId, std::uint32_t>> replenishes;
    std::vector<proto::Packet> injected;
    std::vector<Tick> injectTimes;
    std::unique_ptr<NiBackend> backend;

    Fixture() : domain(makeDomain()), recv(domain)
    {
        NiBackend::Params p;
        p.id = 0;
        p.packetOccupancy = nanoseconds(3.0);
        p.txSetupLatency = nanoseconds(4.5);
        backend = std::make_unique<NiBackend>(
            sim, p, memory, recv,
            [this](std::uint32_t, proto::CompletionQueueEntry cqe) {
                completions.push_back(cqe);
            },
            [this](proto::NodeId n, std::uint32_t s) {
                replenishes.emplace_back(n, s);
            },
            [this](proto::Packet pkt) {
                injected.push_back(pkt);
                injectTimes.push_back(sim.now());
            });
    }

    static proto::MessagingDomain
    makeDomain()
    {
        proto::MessagingDomain d;
        d.numNodes = 4;
        d.slotsPerNode = 2;
        d.maxMsgBytes = 512;
        return d;
    }
};

std::vector<std::uint8_t>
bytes(std::size_t n)
{
    std::vector<std::uint8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(i);
    return out;
}

TEST(Backend, SinglePacketSendCompletes)
{
    Fixture f;
    const auto packets =
        proto::packetize(proto::OpType::Send, 1, 0, 0, bytes(40));
    f.backend->receivePacket(packets[0]);
    f.sim.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.completions[0].srcNode, 1u);
    EXPECT_EQ(f.completions[0].msgBytes, 40u);
    EXPECT_EQ(f.completions[0].slotIndex, f.domain.slotIndex(1, 0));
    EXPECT_EQ(f.backend->packetsReceived(), 1u);
    EXPECT_EQ(f.backend->completionsSignaled(), 1u);
}

TEST(Backend, MultiPacketSendCompletesOnceAllArrive)
{
    Fixture f;
    const auto packets =
        proto::packetize(proto::OpType::Send, 2, 0, 1, bytes(300));
    ASSERT_EQ(packets.size(), 5u);
    for (const auto &pkt : packets)
        f.backend->receivePacket(pkt);
    f.sim.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.completions[0].msgBytes, 300u);
    // Payload landed in the receive buffer.
    const auto &slot = f.recv.slot(f.domain.slotIndex(2, 1));
    EXPECT_EQ(slot.payload, bytes(300));
}

TEST(Backend, CompletionTimeIncludesPipelineAndCounter)
{
    // N packets serialize at 3 ns each; the completion fires one
    // counter update (LLC) after the last clears the pipeline.
    Fixture f;
    Tick completion_at = 0;
    const auto packets =
        proto::packetize(proto::OpType::Send, 1, 0, 0, bytes(128));
    for (const auto &pkt : packets)
        f.backend->receivePacket(pkt);
    f.sim.schedule(0, [] {}); // anchor t=0
    f.sim.run();
    ASSERT_EQ(f.completions.size(), 1u);
    completion_at = f.completions[0].firstPacketTick; // == 0
    EXPECT_EQ(completion_at, 0u);
    // Executed time: 2 packets x 3 ns + counter (llcLatency 4.5 ns).
    EXPECT_EQ(f.sim.now(),
              nanoseconds(3.0) * 2 + f.memory.llcLatency);
}

TEST(Backend, FirstPacketTickIsArrivalNotCompletion)
{
    Fixture f;
    const auto packets =
        proto::packetize(proto::OpType::Send, 1, 0, 0, bytes(256));
    // Deliver packets spaced 10 ns apart.
    for (std::size_t i = 0; i < packets.size(); ++i) {
        f.sim.schedule(nanoseconds(10.0 * static_cast<double>(i)),
                       [&f, pkt = packets[i]] {
                           f.backend->receivePacket(pkt);
                       });
    }
    f.sim.run();
    ASSERT_EQ(f.completions.size(), 1u);
    EXPECT_EQ(f.completions[0].firstPacketTick, 0u);
}

TEST(Backend, ReplenishInvokesHandler)
{
    Fixture f;
    proto::Packet pkt;
    pkt.hdr.op = proto::OpType::Replenish;
    pkt.hdr.src = 3;
    pkt.hdr.dst = 0;
    pkt.hdr.slot = 1;
    f.backend->receivePacket(pkt);
    f.sim.run();
    ASSERT_EQ(f.replenishes.size(), 1u);
    EXPECT_EQ(f.replenishes[0].first, 3u);
    EXPECT_EQ(f.replenishes[0].second, 1u);
    EXPECT_TRUE(f.completions.empty());
}

TEST(Backend, TransmitStreamsAllBlocks)
{
    Fixture f;
    f.backend->transmitMessage(proto::OpType::Send, 0, 3, 1, bytes(512));
    f.sim.run();
    ASSERT_EQ(f.injected.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(f.injected[i].hdr.blockIndex, i);
        EXPECT_EQ(f.injected[i].hdr.src, 0u);
        EXPECT_EQ(f.injected[i].hdr.dst, 3u);
        EXPECT_EQ(f.injected[i].hdr.slot, 1u);
    }
    EXPECT_EQ(proto::reassemble(f.injected), bytes(512));
    EXPECT_EQ(f.backend->packetsSent(), 8u);
}

TEST(Backend, EgressPacketsPacedByOccupancy)
{
    Fixture f;
    f.backend->transmitMessage(proto::OpType::Send, 0, 1, 0, bytes(192));
    f.sim.run();
    ASSERT_EQ(f.injectTimes.size(), 3u);
    // First packet after txSetup + occupancy; then occupancy apart.
    EXPECT_EQ(f.injectTimes[0], nanoseconds(4.5) + nanoseconds(3.0));
    EXPECT_EQ(f.injectTimes[1] - f.injectTimes[0], nanoseconds(3.0));
    EXPECT_EQ(f.injectTimes[2] - f.injectTimes[1], nanoseconds(3.0));
}

TEST(Backend, BackToBackTransmitsQueueInOrder)
{
    // A replenish posted right after a reply send leaves after the
    // reply's last packet — the ordering the slot-mirroring protocol
    // relies on.
    Fixture f;
    f.backend->transmitMessage(proto::OpType::Send, 0, 1, 0, bytes(512));
    f.backend->transmitMessage(proto::OpType::Replenish, 0, 1, 0, {});
    f.sim.run();
    ASSERT_EQ(f.injected.size(), 9u);
    EXPECT_EQ(f.injected.back().hdr.op, proto::OpType::Replenish);
}

TEST(Backend, IngressBusyTicksAccumulate)
{
    Fixture f;
    const auto packets =
        proto::packetize(proto::OpType::Send, 1, 0, 0, bytes(256));
    for (const auto &pkt : packets)
        f.backend->receivePacket(pkt);
    f.sim.run();
    EXPECT_EQ(f.backend->ingressBusyTicks(),
              nanoseconds(3.0) * packets.size());
}

} // namespace
