/**
 * @file
 * Unit tests for the 2D mesh model (Table 1 geometry and timing).
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

namespace {

using rpcvalet::noc::Coord;
using rpcvalet::noc::Mesh;
using rpcvalet::sim::Clock;
using rpcvalet::sim::nanoseconds;

Mesh
paperMesh()
{
    return Mesh(4, 4, 3.0, 16, Clock(2.0));
}

TEST(Mesh, CoreCoordsAreRowMajor)
{
    const Mesh m = paperMesh();
    EXPECT_EQ(m.coreCoord(0), (Coord{0, 0}));
    EXPECT_EQ(m.coreCoord(3), (Coord{0, 3}));
    EXPECT_EQ(m.coreCoord(4), (Coord{1, 0}));
    EXPECT_EQ(m.coreCoord(15), (Coord{3, 3}));
}

TEST(Mesh, BackendsSitOnEastEdgeOnePerRow)
{
    const Mesh m = paperMesh();
    for (std::uint32_t b = 0; b < 4; ++b) {
        const Coord c = m.backendCoord(b);
        EXPECT_EQ(c.col, 4);
        EXPECT_EQ(c.row, static_cast<int>(b));
    }
    // Extra backends wrap.
    EXPECT_EQ(m.backendCoord(5).row, 1);
}

TEST(Mesh, HopsAreManhattanDistance)
{
    const Mesh m = paperMesh();
    EXPECT_EQ(m.hops({0, 0}, {0, 0}), 0);
    EXPECT_EQ(m.hops({0, 0}, {3, 3}), 6);
    EXPECT_EQ(m.hops({1, 2}, {2, 0}), 3);
    EXPECT_EQ(m.hops({2, 0}, {1, 2}), 3); // symmetric
}

TEST(Mesh, HopLatencyMatchesTable1)
{
    // 3 cycles/hop at 2 GHz = 1.5 ns per hop; a 16 B message is a
    // single flit (16 B links), so pure hop latency.
    const Mesh m = paperMesh();
    EXPECT_EQ(m.transferLatency({0, 0}, {0, 1}, 16), nanoseconds(1.5));
    EXPECT_EQ(m.transferLatency({0, 0}, {2, 2}, 16), nanoseconds(6.0));
}

TEST(Mesh, SerializationAddsBodyFlits)
{
    // 64 B = 4 flits on 16 B links: 3 body flits behind the head.
    const Mesh m = paperMesh();
    const auto one_hop_16 = m.transferLatency({0, 0}, {0, 1}, 16);
    const auto one_hop_64 = m.transferLatency({0, 0}, {0, 1}, 64);
    EXPECT_EQ(one_hop_64 - one_hop_16, Clock(2.0).cycles(3));
}

TEST(Mesh, ZeroHopTransferOnlySerializes)
{
    const Mesh m = paperMesh();
    EXPECT_EQ(m.transferLatency({1, 1}, {1, 1}, 16), 0u);
}

TEST(Mesh, BackendToCoreCoversRowAndColumn)
{
    const Mesh m = paperMesh();
    // Backend 0 at (0,4); core 0 at (0,0): 4 hops.
    EXPECT_EQ(m.backendToCore(0, 0, 16), nanoseconds(4 * 1.5));
    // Core 15 at (3,3): |0-3| + |4-3| = 4 hops.
    EXPECT_EQ(m.backendToCore(0, 15, 16), nanoseconds(4 * 1.5));
}

TEST(Mesh, BackendToBackendIndirectionIsAFewNs)
{
    // §4.3: "the indirection from any NI backend to the NI dispatcher
    // costs a couple of on-chip interconnect hops, adding just a few
    // ns".
    const Mesh m = paperMesh();
    for (std::uint32_t b = 1; b < 4; ++b) {
        const auto lat = m.backendToBackend(b, 0, 16);
        EXPECT_GT(lat, 0u);
        EXPECT_LE(lat, nanoseconds(5.0));
    }
    EXPECT_EQ(m.backendToBackend(0, 0, 16), 0u);
}

TEST(Mesh, TransferLatencySymmetric)
{
    const Mesh m = paperMesh();
    for (std::uint32_t a = 0; a < 16; ++a) {
        for (std::uint32_t b = 0; b < 16; ++b) {
            EXPECT_EQ(m.transferLatency(m.coreCoord(a), m.coreCoord(b),
                                        64),
                      m.transferLatency(m.coreCoord(b), m.coreCoord(a),
                                        64));
        }
    }
}

} // namespace
