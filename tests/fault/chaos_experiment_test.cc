/**
 * @file
 * Determinism contract of chaos runs: a cluster experiment with three
 * concurrent fault models (crash + packet-loss + packet-delay), an
 * active retry/hedge policy, and failover enabled must be bit-identical
 * run-to-run and across parallel worker counts — including every
 * fault counter and the activation log. Plus the guard rail that
 * packet loss without a request timeout refuses to run at all.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/experiment.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

core::ExperimentConfig
chaosConfig(std::uint64_t seed)
{
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 40e6; // ~0.35 of 4-node herd capacity
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 3000;
    cfg.system.seed = seed;
    cfg.cluster.numServerNodes = 4;
    cfg.cluster.router = cluster::RouterSpec::parse("bounded-load:c=1.25");
    cfg.cluster.requestTimeout = sim::microseconds(30.0);
    cfg.cluster.failThreshold = 3;
    cfg.cluster.recoveryAfter = sim::microseconds(200.0);
    // Three concurrent fault models: a timed crash (fires ~1/3 into
    // the run), run-wide loss, and run-wide delay jitter.
    cfg.faults = {"crash:node=3,at=30us,recover_after=100us",
                  "packet-loss:p=0.005",
                  "packet-delay:add=200ns,jitter=100ns"};
    cfg.retry.maxAttempts = 6;
    cfg.retry.baseBackoff = sim::microseconds(5.0);
    cfg.retry.multiplier = 2.0;
    cfg.retry.jitter = 0.2;
    cfg.retry.hedgeAfter = sim::microseconds(20.0);
    return cfg;
}

/**
 * Bit-identity over everything chaos machinery could plausibly
 * perturb: the fault block (every counter and the activation log) on
 * top of the usual kernel fingerprint, tails, and per-node counters.
 * EXPECT_EQ on doubles is deliberate — the merge order of recorders
 * is fixed, so even floating-point reductions must match exactly.
 */
void
expectBitIdentical(const core::RunStats &a, const core::RunStats &b)
{
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.point.samples, b.point.samples);
    EXPECT_EQ(a.point.p50Ns, b.point.p50Ns);
    EXPECT_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_EQ(a.point.meanNs, b.point.meanNs);
    EXPECT_EQ(a.point.achievedRps, b.point.achievedRps);
    EXPECT_EQ(a.simulatedUs, b.simulatedUs);
    EXPECT_EQ(a.verifyFailures, b.verifyFailures);
    EXPECT_EQ(a.perCoreServed, b.perCoreServed);
    EXPECT_EQ(a.requestTimeouts, b.requestTimeouts);
    EXPECT_EQ(a.failoverReroutes, b.failoverReroutes);
    EXPECT_EQ(a.staleReplies, b.staleReplies);
    EXPECT_EQ(a.nodesDown, b.nodesDown);
    ASSERT_EQ(a.perNode.size(), b.perNode.size());
    for (std::size_t i = 0; i < a.perNode.size(); ++i) {
        EXPECT_EQ(a.perNode[i].served, b.perNode[i].served);
        EXPECT_EQ(a.perNode[i].failed, b.perNode[i].failed);
    }
    // The fault block, counter by counter.
    EXPECT_EQ(a.fault.retries, b.fault.retries);
    EXPECT_EQ(a.fault.retryDrops, b.fault.retryDrops);
    EXPECT_EQ(a.fault.hedgesSent, b.fault.hedgesSent);
    EXPECT_EQ(a.fault.hedgesWon, b.fault.hedgesWon);
    EXPECT_EQ(a.fault.duplicateReplies, b.fault.duplicateReplies);
    EXPECT_EQ(a.fault.packetsDropped, b.fault.packetsDropped);
    EXPECT_EQ(a.fault.packetsDelayed, b.fault.packetsDelayed);
    EXPECT_EQ(a.fault.packetsCorrupted, b.fault.packetsCorrupted);
    EXPECT_EQ(a.fault.corruptionsDetected, b.fault.corruptionsDetected);
    EXPECT_EQ(a.fault.replySlotEvictions, b.fault.replySlotEvictions);
    EXPECT_EQ(a.fault.degradedP99Ns, b.fault.degradedP99Ns);
    EXPECT_EQ(a.fault.degradedSamples, b.fault.degradedSamples);
    EXPECT_EQ(a.fault.healthyP99Ns, b.fault.healthyP99Ns);
    EXPECT_EQ(a.fault.healthySamples, b.fault.healthySamples);
    ASSERT_EQ(a.fault.activations.size(), b.fault.activations.size());
    for (std::size_t i = 0; i < a.fault.activations.size(); ++i)
        EXPECT_EQ(a.fault.activations[i], b.fault.activations[i]);
}

core::RunStats
runWith(core::ExperimentConfig cfg, unsigned workers)
{
    cfg.parallelDomains = workers;
    return core::runExperiment(cfg);
}

TEST(ChaosExperiment, SequentialRerunsAreBitIdentical)
{
    // Same scenario, same seed, fresh run: all fault state (packet
    // Rng lanes, held credits, reply-slot leases) rebuilds from
    // scratch, so nothing may leak between runs.
    const core::ExperimentConfig cfg = chaosConfig(7);
    const core::RunStats a = core::runExperiment(cfg);
    const core::RunStats b = core::runExperiment(cfg);
    expectBitIdentical(a, b);
    // The chaos must actually have happened, or the lock is vacuous.
    EXPECT_GT(a.fault.packetsDropped, 0u);
    EXPECT_GT(a.fault.packetsDelayed, 0u);
    EXPECT_GT(a.requestTimeouts, 0u);
    ASSERT_EQ(a.fault.activations.size(), 3u);
    EXPECT_EQ(a.fault.activations[0].kind, "packet-loss");
    EXPECT_EQ(a.fault.activations[1].kind, "packet-delay");
    EXPECT_EQ(a.fault.activations[2].kind, "crash");
    EXPECT_EQ(a.verifyFailures, 0u);
}

TEST(ChaosExperiment, WorkerCountNeverChangesResults)
{
    // The PDES contract survives fault injection: per-domain fault
    // Rng lanes and barrier-armed timed faults fix the event
    // schedule; the worker pool only changes who executes it.
    for (const std::uint64_t seed : {7ull, 42ull}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const core::ExperimentConfig cfg = chaosConfig(seed);
        const core::RunStats w1 = runWith(cfg, 1);
        const core::RunStats w2 = runWith(cfg, 2);
        const core::RunStats w4 = runWith(cfg, 4);
        expectBitIdentical(w1, w2);
        expectBitIdentical(w1, w4);
        EXPECT_GT(w1.fault.packetsDropped, 0u);
        EXPECT_EQ(w1.verifyFailures, 0u);
    }
}

TEST(ChaosExperiment, ActivationLogIdenticalAcrossExecutionModes)
{
    // Sequential and parallel runs quantize the measurement window
    // differently (per-completion vs per-barrier), so their full
    // stats legitimately differ — but the resolved activation
    // timeline is static configuration and must be identical.
    const core::ExperimentConfig cfg = chaosConfig(7);
    const core::RunStats seq = core::runExperiment(cfg);
    const core::RunStats par = runWith(cfg, 2);
    ASSERT_EQ(seq.fault.activations.size(),
              par.fault.activations.size());
    for (std::size_t i = 0; i < seq.fault.activations.size(); ++i) {
        EXPECT_EQ(seq.fault.activations[i], par.fault.activations[i]);
        EXPECT_EQ(seq.fault.activations[i].describe(),
                  par.fault.activations[i].describe());
    }
}

TEST(ChaosExperimentDeath, PacketLossWithoutTimeoutRefusesToRun)
{
    // A dropped request or reply is only ever recovered by the
    // client's timeout-driven retry; without a timeout the run would
    // hang short of its completion target.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            core::ExperimentConfig cfg = chaosConfig(7);
            cfg.faults = {"packet-loss:p=0.01"};
            cfg.cluster.requestTimeout = 0;
            cfg.retry = fault::RetryPolicy{};
            (void)core::runExperiment(cfg);
        },
        ::testing::ExitedWithCode(1),
        "packet-loss faults need a request timeout");
}

} // namespace
