/**
 * @file
 * Tests of the fault registry and spec resolution: every malformed
 * spec dies loudly at parse/resolve time (never mid-run), the
 * resolved timeline is deterministic and sorted, and RetryPolicy
 * validation rejects inconsistent settings.
 */

#include <gtest/gtest.h>

#include <string>

#include "fault/fault.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

fault::Resolution
resolve(const std::vector<fault::FaultSpec> &specs,
        std::uint32_t nodes = 4, std::uint32_t cores = 16,
        bool parallel = false)
{
    return fault::resolveFaults(specs,
                                fault::ResolveContext{nodes, cores,
                                                      parallel});
}

// ----- registry -----

TEST(FaultRegistry, BuiltinsAreRegistered)
{
    auto &reg = fault::FaultRegistry::instance();
    for (const char *name :
         {"crash", "packet-loss", "packet-delay", "packet-corrupt",
          "ni-stall", "slow-core"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
}

TEST(FaultRegistryDeath, UnknownNameListsEveryRegisteredFault)
{
    EXPECT_EXIT((void)fault::FaultRegistry::instance().make(
                    fault::FaultSpec("pakcet-loss:p=0.1")),
                ::testing::ExitedWithCode(1),
                "unknown fault 'pakcet-loss'.*crash.*packet-loss");
}

// ----- malformed parameters die at make() time -----

TEST(FaultSpecDeath, LossProbabilityAboveOneIsFatal)
{
    EXPECT_EXIT((void)fault::FaultRegistry::instance().make(
                    fault::FaultSpec("packet-loss:p=1.5")),
                ::testing::ExitedWithCode(1), "p.*\\[0, 1\\]");
}

TEST(FaultSpecDeath, CorruptNeedsAProbability)
{
    EXPECT_EXIT((void)fault::FaultRegistry::instance().make(
                    fault::FaultSpec("packet-corrupt")),
                ::testing::ExitedWithCode(1), "requires a p=");
}

TEST(FaultSpecDeath, DelayWithNoEffectIsFatal)
{
    EXPECT_EXIT((void)fault::FaultRegistry::instance().make(
                    fault::FaultSpec("packet-delay:add=0,jitter=0")),
                ::testing::ExitedWithCode(1), "add.*jitter");
}

TEST(FaultSpecDeath, SlowCoreFactorBelowOneIsFatal)
{
    EXPECT_EXIT((void)fault::FaultRegistry::instance().make(
                    fault::FaultSpec(
                        "slow-core:node=0,core=0,factor=0.5,at=1us,"
                        "for=1us")),
                ::testing::ExitedWithCode(1), "factor");
}

TEST(FaultSpecDeath, NiStallNeedsAPositiveDuration)
{
    EXPECT_EXIT((void)fault::FaultRegistry::instance().make(
                    fault::FaultSpec("ni-stall:node=0,at=1us,for=0")),
                ::testing::ExitedWithCode(1), "for");
}

// ----- shape checks die at resolve() time -----

TEST(FaultResolveDeath, CrashOfOutOfRangeNodeIsFatal)
{
    EXPECT_EXIT((void)resolve({"crash:node=4,at=10us"}, /*nodes=*/4),
                ::testing::ExitedWithCode(1),
                "node 4 is out of range for 4 server nodes");
}

TEST(FaultResolveDeath, SlowCoreOfOutOfRangeCoreIsFatal)
{
    EXPECT_EXIT((void)resolve({"slow-core:node=0,core=16,factor=2,"
                               "at=1us,for=1us"},
                              /*nodes=*/4, /*cores=*/16),
                ::testing::ExitedWithCode(1), "core 16");
}

TEST(FaultResolveDeath, TimedFaultAtZeroRejectedInParallelMode)
{
    // t=0 would have to fire before the first window opens.
    EXPECT_EXIT((void)resolve({"crash:node=0,at=0"}, 4, 16,
                              /*parallel=*/true),
                ::testing::ExitedWithCode(1), "t=0.*parallel");
    // The same spec is fine sequentially.
    const fault::Resolution r = resolve({"crash:node=0,at=0"});
    EXPECT_EQ(r.timeline.size(), 1u);
}

// ----- resolution products -----

TEST(FaultResolve, TimelineSortedByActivationTime)
{
    const fault::Resolution r = resolve({
        "crash:node=3,at=100us,recover_after=300us",
        "packet-loss:p=0.005",
        "ni-stall:node=1,at=50us,for=10us",
    });
    ASSERT_EQ(r.timeline.size(), 3u);
    // Run-wide packet faults sort first (at = 0), then by time.
    EXPECT_EQ(r.timeline[0].kind, "packet-loss");
    EXPECT_FALSE(r.timeline[0].timed);
    EXPECT_EQ(r.timeline[1].kind, "ni-stall");
    EXPECT_EQ(r.timeline[1].node, 1);
    EXPECT_EQ(r.timeline[2].kind, "crash");
    EXPECT_EQ(r.timeline[2].node, 3);
    EXPECT_EQ(r.timeline[2].at, sim::microseconds(100.0));
    EXPECT_EQ(r.timeline[2].until, sim::microseconds(400.0));

    ASSERT_EQ(r.packet.size(), 1u);
    EXPECT_EQ(r.packet[0].kind,
              fault::PacketFaultConfig::Kind::Loss);
    EXPECT_TRUE(r.dropsPackets());
    EXPECT_FALSE(r.corruptsReplies());
}

TEST(FaultResolve, DescribeNamesTargetAndWindow)
{
    const fault::Resolution r = resolve(
        {"crash:node=2,at=10us,recover_after=5us", "packet-loss:p=0.1"});
    const std::string crash = r.timeline.back().describe();
    EXPECT_NE(crash.find("node 2"), std::string::npos) << crash;
    EXPECT_NE(crash.find("[10.000 us, 15.000 us)"), std::string::npos)
        << crash;
    const std::string loss = r.timeline.front().describe();
    EXPECT_NE(loss.find("fabric"), std::string::npos) << loss;
    EXPECT_NE(loss.find("whole run"), std::string::npos) << loss;
}

TEST(FaultResolve, DegradedWindowsMergeOverlaps)
{
    const fault::Resolution r = resolve({
        "ni-stall:node=0,at=10us,for=20us",
        "ni-stall:node=1,at=20us,for=20us",
        "crash:node=2,at=100us,recover_after=10us",
    });
    const auto windows = r.degradedWindows();
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0].first, sim::microseconds(10.0));
    EXPECT_EQ(windows[0].second, sim::microseconds(40.0));
    EXPECT_EQ(windows[1].first, sim::microseconds(100.0));
    EXPECT_EQ(windows[1].second, sim::microseconds(110.0));
}

// ----- retry policy -----

TEST(RetryPolicy, DefaultsAreInactiveLegacyBehavior)
{
    const fault::RetryPolicy p;
    EXPECT_FALSE(p.active());
    p.validate(/*requestTimeout=*/0); // inactive needs no timeout
}

TEST(RetryPolicyDeath, ActivePolicyNeedsARequestTimeout)
{
    fault::RetryPolicy p;
    p.maxAttempts = 3;
    EXPECT_TRUE(p.active());
    EXPECT_EXIT(p.validate(/*requestTimeout=*/0),
                ::testing::ExitedWithCode(1), "timeout");
}

TEST(RetryPolicyDeath, HedgeAtOrPastTheTimeoutIsFatal)
{
    fault::RetryPolicy p;
    p.hedgeAfter = sim::microseconds(30.0);
    EXPECT_EXIT(p.validate(sim::microseconds(30.0)),
                ::testing::ExitedWithCode(1), "hedge");
}

TEST(RetryPolicyDeath, MultiplierBelowOneIsFatal)
{
    fault::RetryPolicy p;
    p.maxAttempts = 2;
    p.multiplier = 0.5;
    EXPECT_EXIT(p.validate(sim::microseconds(10.0)),
                ::testing::ExitedWithCode(1), "multiplier");
}

} // namespace
