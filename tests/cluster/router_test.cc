/**
 * @file
 * Unit tests for the cluster routing layer: RouterRegistry plumbing,
 * built-in router decisions against a fake cluster view, keyspace
 * sharding, and health/failover bookkeeping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/router.hh"
#include "cluster/topology.hh"
#include "sim/rng.hh"

namespace {

using namespace rpcvalet;
using cluster::ClusterView;
using cluster::HealthTracker;
using cluster::RouteContext;
using cluster::Router;
using cluster::RouterPtr;
using cluster::RouterRegistrar;
using cluster::RouterRegistry;
using cluster::RouterSpec;
using cluster::ShardMap;

/** Scriptable cluster state for exercising routing decisions. */
class FakeView : public ClusterView
{
  public:
    explicit FakeView(std::uint32_t n) : up_(n, true), load_(n, 0) {}

    std::uint32_t
    numServers() const override
    {
        return static_cast<std::uint32_t>(up_.size());
    }

    bool isUp(std::uint32_t s) const override { return up_[s]; }

    std::uint64_t outstanding(std::uint32_t s) const override
    {
        return load_[s];
    }

    std::vector<bool> up_;
    std::vector<std::uint64_t> load_;
};

RouteContext
ctxFor(std::uint64_t key, const FakeView &view, const ShardMap &shards,
       sim::Rng &rng, std::uint8_t cls = 0)
{
    return RouteContext{key, cls, /*client=*/42, view, shards, rng};
}

// ----- registry plumbing -----

TEST(RouterRegistry, BuiltinsAreRegistered)
{
    auto &reg = RouterRegistry::instance();
    for (const char *name :
         {"direct", "random", "rr", "shard", "bounded-load"})
        EXPECT_TRUE(reg.contains(name)) << name;
    const auto names = reg.names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RouterRegistry, SpecStringRoundTrips)
{
    const std::string text = "bounded-load:c=1.5,vnodes=32";
    const RouterSpec spec = RouterSpec::parse(text);
    EXPECT_EQ(spec.name, "bounded-load");
    EXPECT_EQ(spec.toString(), text);
    // The instance reports its resolved parameters canonically.
    const RouterPtr router = RouterRegistry::instance().make(spec);
    EXPECT_EQ(router->name(), "bounded-load:c=1.5,vnodes=32");
}

TEST(RouterRegistry, DefaultSpecIsDirect)
{
    const RouterSpec spec;
    EXPECT_EQ(spec.name, "direct");
    EXPECT_EQ(RouterRegistry::instance().make(spec)->name(), "direct");
}

TEST(RouterRegistryDeath, UnknownRouterListsRegisteredNames)
{
    EXPECT_EXIT((void)RouterRegistry::instance().make(
                    RouterSpec::parse("nope")),
                ::testing::ExitedWithCode(1),
                "unknown cluster router 'nope'.*bounded-load.*direct.*"
                "random.*rr.*shard");
}

TEST(RouterRegistryDeath, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(RouterRegistry::instance().add(
                    "direct",
                    [](const RouterSpec &) -> RouterPtr {
                        return nullptr;
                    }),
                ::testing::ExitedWithCode(1),
                "cluster router 'direct' is already registered");
}

TEST(RouterRegistryDeath, BadBoundedLoadParametersAreFatal)
{
    EXPECT_EXIT((void)RouterRegistry::instance().make(
                    RouterSpec::parse("bounded-load:c=1.0")),
                ::testing::ExitedWithCode(1), "c must be > 1");
    EXPECT_EXIT((void)RouterRegistry::instance().make(
                    RouterSpec::parse("bounded-load:vnodes=0")),
                ::testing::ExitedWithCode(1),
                "vnodes must be in \\[1, 4096\\]");
}

/** External registration: the same seam examples/ plugs into. */
class EverythingToOneRouter : public Router
{
  public:
    std::uint32_t
    route(const RouteContext &ctx) override
    {
        return ctx.view.numServers() - 1;
    }

    std::string name() const override { return "test-last"; }
};

const RouterRegistrar testReg("test-last", [](const RouterSpec &spec) {
    spec.expectKeys({});
    return std::make_unique<EverythingToOneRouter>();
});

TEST(RouterRegistry, ExternalRegistrationWorks)
{
    auto &reg = RouterRegistry::instance();
    ASSERT_TRUE(reg.contains("test-last"));
    FakeView view(4);
    ShardMap shards(4, 4);
    sim::Rng rng(1);
    const RouterPtr router = reg.make(RouterSpec::parse("test-last"));
    EXPECT_EQ(router->route(ctxFor(7, view, shards, rng)), 3u);
}

// ----- built-in routing decisions -----

TEST(Routers, DirectAlwaysPicksServerZero)
{
    FakeView view(4);
    ShardMap shards(4, 4);
    sim::Rng rng(1);
    const RouterPtr r = RouterRegistry::instance().make("direct");
    for (std::uint64_t k = 0; k < 32; ++k)
        EXPECT_EQ(r->route(ctxFor(k, view, shards, rng)), 0u);
}

TEST(Routers, RoundRobinCyclesAndSkipsDownServers)
{
    FakeView view(4);
    ShardMap shards(4, 4);
    sim::Rng rng(1);
    const RouterPtr r = RouterRegistry::instance().make("rr");
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 0u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 1u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 2u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 3u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 0u);
    view.up_[1] = false;
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 2u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 3u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 0u);
    EXPECT_EQ(r->route(ctxFor(0, view, shards, rng)), 2u);
}

TEST(Routers, RandomOnlyPicksUpServers)
{
    FakeView view(4);
    view.up_[0] = false;
    view.up_[2] = false;
    ShardMap shards(4, 4);
    sim::Rng rng(7);
    const RouterPtr r = RouterRegistry::instance().make("random");
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t s = r->route(ctxFor(0, view, shards, rng));
        ASSERT_LT(s, 4u);
        EXPECT_TRUE(view.up_[s]);
        seen.insert(s);
    }
    EXPECT_EQ(seen, (std::set<std::uint32_t>{1, 3}));
}

TEST(Routers, ShardRoutesToOwnerAndFailsOver)
{
    FakeView view(4);
    ShardMap shards(8, 4);
    sim::Rng rng(1);
    const RouterPtr r = RouterRegistry::instance().make("shard");
    for (std::uint64_t k = 0; k < 64; ++k) {
        EXPECT_EQ(r->route(ctxFor(k, view, shards, rng)),
                  shards.serverForKey(k));
    }
    // Key owned by a down server fails over to the next up index.
    std::uint64_t key = 0;
    while (shards.serverForKey(key) != 2)
        ++key;
    view.up_[2] = false;
    EXPECT_EQ(r->route(ctxFor(key, view, shards, rng)), 3u);
    view.up_[3] = false;
    EXPECT_EQ(r->route(ctxFor(key, view, shards, rng)), 0u);
}

TEST(Routers, BoundedLoadAvoidsOverloadedServer)
{
    FakeView view(4);
    view.load_ = {100, 0, 0, 0};
    ShardMap shards(4, 4);
    sim::Rng rng(1);
    const RouterPtr r =
        RouterRegistry::instance().make("bounded-load:c=1.25");
    // Average load ~25; capacity ~32: server 0 is far over, the ring
    // walk must land elsewhere for every key.
    for (std::uint64_t k = 0; k < 256; ++k)
        EXPECT_NE(r->route(ctxFor(k, view, shards, rng)), 0u);
}

TEST(Routers, BoundedLoadSpreadsBalancedLoadByKey)
{
    FakeView view(4);
    ShardMap shards(4, 4);
    sim::Rng rng(1);
    const RouterPtr r =
        RouterRegistry::instance().make("bounded-load:c=2.0");
    std::set<std::uint32_t> seen;
    for (std::uint64_t k = 0; k < 256; ++k) {
        const std::uint32_t s = r->route(ctxFor(k, view, shards, rng));
        // Same key, same decision (consistent hashing is stateless
        // when loads do not change).
        EXPECT_EQ(s, r->route(ctxFor(k, view, shards, rng)));
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 4u);
}

// ----- shard map -----

TEST(ShardMap, PartitionsKeysCompletelyAndConsistently)
{
    const ShardMap shards(16, 4);
    for (std::uint64_t k = 0; k < 4096; ++k) {
        const std::uint32_t shard = shards.shardOf(k);
        ASSERT_LT(shard, 16u);
        const std::uint32_t owner = shards.ownerOf(shard);
        ASSERT_LT(owner, 4u);
        EXPECT_EQ(shards.serverForKey(k), owner);
        EXPECT_EQ(shards.shardOf(k), shard); // stable
    }
}

TEST(ShardMap, HashedShardsStayRoughlyBalanced)
{
    const ShardMap shards(4, 4);
    std::vector<std::uint64_t> counts(4, 0);
    // Sequential keys — the adversarial case a modulo-only map fails.
    for (std::uint64_t k = 0; k < 40000; ++k)
        ++counts[shards.serverForKey(k)];
    for (const std::uint64_t c : counts) {
        EXPECT_GT(c, 8000u);
        EXPECT_LT(c, 12000u);
    }
}

TEST(ShardMapDeath, ZeroShardsIsFatal)
{
    EXPECT_EXIT(ShardMap(0, 4), ::testing::ExitedWithCode(1),
                "need at least one shard");
}

// ----- health tracker -----

TEST(HealthTracker, ConsecutiveFailuresMarkDown)
{
    HealthTracker health(2, /*fail_threshold=*/3, /*recovery_after=*/0);
    EXPECT_TRUE(health.isUp(0, 0));
    EXPECT_FALSE(health.reportFailure(0, 10));
    EXPECT_FALSE(health.reportFailure(0, 20));
    EXPECT_TRUE(health.isUp(0, 20)); // two of three: still up
    EXPECT_TRUE(health.reportFailure(0, 30)); // third: transition
    EXPECT_FALSE(health.isUp(0, 30));
    EXPECT_TRUE(health.isUp(1, 30)); // neighbor untouched
    EXPECT_EQ(health.nodesDown(30), 1u);
    EXPECT_EQ(health.downTransitions(), 1u);
}

TEST(HealthTracker, SuccessResetsTheFailureStreak)
{
    HealthTracker health(1, 3, 0);
    health.reportFailure(0, 10);
    health.reportFailure(0, 20);
    health.reportSuccess(0);
    health.reportFailure(0, 30);
    health.reportFailure(0, 40);
    EXPECT_TRUE(health.isUp(0, 40)); // streak restarted after success
    EXPECT_TRUE(health.reportFailure(0, 50));
    EXPECT_FALSE(health.isUp(0, 50));
}

TEST(HealthTracker, RecoveryOpensACanaryProbeNotFullHealth)
{
    HealthTracker health(1, 1, /*recovery_after=*/100);
    EXPECT_TRUE(health.reportFailure(0, 10));
    EXPECT_FALSE(health.isUp(0, 50));
    EXPECT_FALSE(health.isUp(0, 109));
    // Recovery elapsed: routable again, but only for one canary
    // request — the node is not yet considered healthy.
    EXPECT_TRUE(health.isUp(0, 110));
    health.noteRouted(0); // the canary departs
    EXPECT_FALSE(health.isUp(0, 111)); // nothing piles on behind it
    // The canary times out: still down, recovery clock restarted, and
    // no second down transition — the node never actually came back.
    EXPECT_FALSE(health.reportFailure(0, 120));
    EXPECT_FALSE(health.isUp(0, 219));
    EXPECT_TRUE(health.isUp(0, 220)); // next probe window opens
    EXPECT_EQ(health.downTransitions(), 1u);
}

TEST(HealthTracker, CanarySuccessRestoresFullHealth)
{
    HealthTracker health(1, /*fail_threshold=*/2, /*recovery_after=*/100);
    health.reportFailure(0, 10);
    EXPECT_TRUE(health.reportFailure(0, 20));
    EXPECT_TRUE(health.isUp(0, 120)); // probe window open
    health.noteRouted(0);
    EXPECT_FALSE(health.isUp(0, 120)); // canary in flight: hold traffic
    health.reportSuccess(0);
    EXPECT_TRUE(health.isUp(0, 121)); // genuinely serving again
    // Fully healthy: going down again takes a fresh failure streak.
    EXPECT_FALSE(health.reportFailure(0, 130));
    EXPECT_TRUE(health.isUp(0, 130));
    EXPECT_TRUE(health.reportFailure(0, 140));
    EXPECT_EQ(health.downTransitions(), 2u);
}

TEST(HealthTracker, MarkDownDuringProbeCancelsTheCanary)
{
    HealthTracker health(1, 1, /*recovery_after=*/100);
    health.reportFailure(0, 10);
    EXPECT_TRUE(health.isUp(0, 110)); // probing
    health.noteRouted(0);
    // A straggler timeout re-marks the node while the canary is out:
    // the probe is cancelled and the recovery clock restarts.
    health.markDown(0, 115);
    EXPECT_FALSE(health.isUp(0, 214));
    EXPECT_TRUE(health.isUp(0, 215));
    EXPECT_EQ(health.downTransitions(), 1u);
}

TEST(HealthTracker, MarkDownIsImmediate)
{
    HealthTracker health(3, 5, 0);
    health.markDown(1, 42);
    EXPECT_FALSE(health.isUp(1, 42));
    EXPECT_EQ(health.nodesDown(42), 1u);
}

} // namespace
