/**
 * @file
 * End-to-end tests of the topology-driven cluster experiment: the
 * single-node bit-identity lock, multi-node sharded runs, timeout-based
 * failover, and the config validation surrounding them.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

// ----- single-node bit-identity lock -----

TEST(ClusterExperiment, SingleNodeDirectIsBitIdenticalToLegacyPath)
{
    // The cluster refactor must not move a single event of the
    // numServerNodes=1 + "direct" configuration: these are the same
    // goldens tests/core/kernel_identity_test.cc locks for the
    // pre-cluster experiment core (default config, spec-driven).
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 10e6;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 5000;
    cfg.cluster.numServerNodes = 1;
    cfg.cluster.router = cluster::RouterSpec::parse("direct");

    const core::RunStats r = core::runExperiment(cfg);
    EXPECT_EQ(r.point.p50Ns, 518.72900000000004);
    EXPECT_EQ(r.point.p99Ns, 1089.02);
    EXPECT_EQ(r.point.achievedRps, 9953790.5426921882);
    EXPECT_EQ(r.executedEvents, 110046u);
    EXPECT_EQ(r.completions, 5500u);
    EXPECT_EQ(r.router, "direct");
    ASSERT_EQ(r.perNode.size(), 1u);
    EXPECT_EQ(r.perNode[0].served, 5500u);
    EXPECT_FALSE(r.perNode[0].failed);
    EXPECT_EQ(r.requestTimeouts, 0u);
    EXPECT_EQ(r.failoverReroutes, 0u);
    EXPECT_EQ(r.nodesDown, 0u);
}

// ----- multi-node cluster runs -----

core::ExperimentConfig
clusterConfig(std::uint32_t nodes, const std::string &router)
{
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 40e6; // ~0.35 of 4-node herd capacity
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 4000;
    cfg.cluster.numServerNodes = nodes;
    cfg.cluster.router = cluster::RouterSpec::parse(router);
    return cfg;
}

TEST(ClusterExperiment, ShardedFourNodeRunServesOnEveryNode)
{
    const core::RunStats r =
        core::runExperiment(clusterConfig(4, "shard"));
    EXPECT_EQ(r.router, "shard");
    ASSERT_EQ(r.perNode.size(), 4u);
    std::uint64_t served_total = 0;
    for (const core::NodeStats &ns : r.perNode) {
        EXPECT_GT(ns.served, 0u) << "node " << ns.nodeId;
        EXPECT_FALSE(ns.failed);
        served_total += ns.served;
    }
    EXPECT_EQ(served_total, r.completions);
    EXPECT_EQ(r.completions, 4500u);
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_EQ(r.point.samples, 4000u);
    EXPECT_GT(r.point.achievedRps, 0.0);
    // Concatenated per-core view covers all four 16-core nodes.
    EXPECT_EQ(r.perCoreServed.size(), 64u);
}

TEST(ClusterExperiment, RoundRobinBalancesServedCounts)
{
    const core::RunStats r = core::runExperiment(clusterConfig(4, "rr"));
    ASSERT_EQ(r.perNode.size(), 4u);
    std::uint64_t lo = ~std::uint64_t{0};
    std::uint64_t hi = 0;
    for (const core::NodeStats &ns : r.perNode) {
        lo = std::min(lo, ns.served);
        hi = std::max(hi, ns.served);
    }
    // Round-robin is the perfect-spread baseline: the spread stays
    // within a few percent (in-flight rounding only).
    EXPECT_LT(hi - lo, 100u);
    EXPECT_EQ(r.verifyFailures, 0u);
}

TEST(ClusterExperiment, ClusterRunsAreReproducible)
{
    const core::ExperimentConfig cfg =
        clusterConfig(3, "bounded-load:c=1.25");
    const core::RunStats a = core::runExperiment(cfg);
    const core::RunStats b = core::runExperiment(cfg);
    EXPECT_EQ(a.executedEvents, b.executedEvents);
    EXPECT_EQ(a.point.p99Ns, b.point.p99Ns);
    EXPECT_EQ(a.point.achievedRps, b.point.achievedRps);
    ASSERT_EQ(a.perNode.size(), b.perNode.size());
    for (std::size_t i = 0; i < a.perNode.size(); ++i)
        EXPECT_EQ(a.perNode[i].served, b.perNode[i].served);
}

// ----- failover -----

TEST(ClusterExperiment, NodeFailureIsDetectedAndTrafficReroutes)
{
    core::ExperimentConfig cfg = clusterConfig(4, "bounded-load:c=1.25");
    cfg.measuredRpcs = 6000;
    cfg.cluster.requestTimeout = sim::microseconds(30.0);
    cfg.cluster.failThreshold = 3;
    cfg.cluster.failNode = 3;
    cfg.cluster.failAt = sim::microseconds(20.0);

    const core::RunStats r = core::runExperiment(cfg);
    // The victim died mid-run: its requests timed out, the health
    // tracker took it out of rotation, and every timed-out request
    // was rerouted to a surviving node — with zero verify failures
    // (failOnVerifyError is on, so a corrupted reply would have been
    // fatal before we got here).
    ASSERT_EQ(r.perNode.size(), 4u);
    EXPECT_TRUE(r.perNode[3].failed);
    EXPECT_GE(r.nodesDown, 1u);
    EXPECT_GT(r.requestTimeouts, 0u);
    EXPECT_GT(r.failoverReroutes, 0u);
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_EQ(r.completions, 6500u); // target reached despite the loss
    // The survivors absorbed the rerouted load.
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_GT(r.perNode[i].served, r.perNode[3].served);
}

// ----- validation -----

TEST(ClusterExperimentDeath, UnknownRouterDiesBeforeTheRun)
{
    EXPECT_EXIT(
        {
            core::ExperimentConfig cfg;
            cfg.cluster.router.name = "typo";
            (void)core::runExperiment(cfg);
        },
        ::testing::ExitedWithCode(1), "unknown cluster router 'typo'");
}

TEST(ClusterConfigDeath, ValidateRejectsInconsistentSettings)
{
    EXPECT_EXIT(
        {
            cluster::ClusterConfig c;
            c.numServerNodes = 0;
            c.validate();
        },
        ::testing::ExitedWithCode(1), "numServerNodes must be >= 1");
    EXPECT_EXIT(
        {
            cluster::ClusterConfig c;
            c.numServerNodes = 2;
            c.failNode = 2;
            c.requestTimeout = 1;
            c.validate();
        },
        ::testing::ExitedWithCode(1), "failNode 2 is out of range");
    EXPECT_EXIT(
        {
            cluster::ClusterConfig c;
            c.numServerNodes = 2;
            c.failNode = 1;
            c.validate();
        },
        ::testing::ExitedWithCode(1), "requires requestTimeout > 0");
}

TEST(SweepConfigDeath, ValidatesThreadsAndRates)
{
    EXPECT_EXIT(
        {
            core::SweepConfig cfg;
            cfg.arrivalRates = {1e6};
            cfg.threads = 0;
            (void)core::runSweep(cfg);
        },
        ::testing::ExitedWithCode(1),
        "threads must be in \\[1, 1024\\] \\(got 0\\)");
    EXPECT_EXIT(
        {
            core::SweepConfig cfg;
            cfg.arrivalRates = {1e6};
            cfg.threads = 2000;
            (void)core::runSweep(cfg);
        },
        ::testing::ExitedWithCode(1),
        "threads must be in \\[1, 1024\\] \\(got 2000\\)");
    EXPECT_EXIT(
        {
            core::SweepConfig cfg;
            (void)core::runSweep(cfg);
        },
        ::testing::ExitedWithCode(1), "arrivalRates is empty");
    EXPECT_EXIT(
        {
            core::SweepConfig cfg;
            cfg.arrivalRates.push_back(2e6);
            cfg.arrivalRates.push_back(1e6);
            (void)core::runSweep(cfg);
        },
        ::testing::ExitedWithCode(1),
        "must be strictly ascending.*rate\\[1\\] = 1e\\+06 does not "
        "exceed rate\\[0\\] = 2e\\+06");
}

} // namespace
