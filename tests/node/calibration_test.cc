/**
 * @file
 * Timing-calibration tests: the end-to-end latency budget of a single
 * unqueued RPC and the measured S-bar values the paper's SLOs are
 * defined against (§5, §6.1).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

namespace {

using namespace rpcvalet;

core::RunStats
lowLoadRun(const app::WorkloadSpec &workload, double rps = 0.2e6)
{
    core::ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.arrivalRps = rps; // ~1% load: effectively unqueued
    cfg.warmupRpcs = 200;
    cfg.measuredRpcs = 3000;
    cfg.system.seed = 7;
    return core::runExperiment(cfg);
}

TEST(Calibration, SingleRpcLatencyBudget)
{
    // Fixed 600 ns processing. The remaining path: NI ingress (3 ns
    // packet + 4.5 ns counter), completion forwarding to the
    // dispatcher (<=4.5 ns), dispatch decision (4 ns), CQE delivery
    // (<=12 ns mesh + QP), and the §5 loop steps through replenish
    // post (200 ns minus loop overhead). Total ~820-840 ns; assert a
    // tight but robust band.
    const auto r = lowLoadRun("synthetic:dist=fixed");
    EXPECT_GT(r.point.p50Ns, 780.0);
    EXPECT_LT(r.point.p50Ns, 900.0);
    // Unqueued: p99 is within a whisker of p50 for fixed service.
    EXPECT_LT(r.point.p99Ns - r.point.p50Ns, 40.0);
}

TEST(Calibration, HerdServiceTimeMatchesPaper)
{
    // §6.1: "a resulting S-bar of ~550 ns" for HERD.
    const auto r = lowLoadRun("herd", 1e6);
    EXPECT_NEAR(r.meanServiceNs, 550.0, 40.0);
}

TEST(Calibration, HerdPeakThroughputNearPaper)
{
    // §6.1: 1x16 delivers ~29 Mrps at saturation (16 cores / 550 ns).
    core::ExperimentConfig cfg;
    cfg.arrivalRps = 80e6; // overload; throughput caps at capacity
    cfg.warmupRpcs = 5000;
    cfg.measuredRpcs = 60000;
    cfg.system.seed = 7;
    const auto r = core::runExperiment(cfg);
    EXPECT_GT(r.point.achievedRps, 25e6);
    EXPECT_LT(r.point.achievedRps, 32e6);
}

TEST(Calibration, SyntheticServiceTimeIsProcessingPlusOverhead)
{
    const auto r = lowLoadRun("synthetic:dist=fixed");
    // 600 ns processing + 220 ns loop overhead.
    EXPECT_NEAR(r.meanServiceNs, 820.0, 30.0);
}

TEST(Calibration, MasstreeGetServiceNearPaperSlo)
{
    // The paper sets Masstree's SLO at 12.5 us = 10x the ~1.25 us get
    // service time; our S-bar over gets is processing + overhead.
    core::ExperimentConfig cfg;
    cfg.workload = "masstree";
    cfg.arrivalRps = 0.2e6;
    cfg.warmupRpcs = 100;
    cfg.measuredRpcs = 2000;
    cfg.system.seed = 7;
    const auto r = core::runExperiment(cfg);
    // Mean over all RPCs includes 1% scans; the critical-only mean
    // latency at low load reflects gets: ~1.25 us + overhead + path.
    EXPECT_GT(r.point.meanNs, 1300.0);
    EXPECT_LT(r.point.meanNs, 2100.0);
}

TEST(Calibration, LatencyMeasuredFirstPacketToReplenish)
{
    // The measured latency must exceed the service time by the
    // NI + dispatch path (tens of ns), not by an RTT: confirms we
    // clock from first-packet arrival, not from client send.
    const auto r = lowLoadRun("synthetic:dist=fixed");
    EXPECT_GT(r.point.p50Ns, r.meanServiceNs * 0.9);
    EXPECT_LT(r.point.p50Ns, r.meanServiceNs + 150.0);
}

} // namespace
