/**
 * @file
 * Tests for the extensions beyond the paper's core design: the §4.2
 * rendezvous path for large messages, the Shinjuku-style preemption
 * option (§7), and the latency-breakdown instrumentation.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "sim/logging.hh"

namespace {

using namespace rpcvalet;

// ----------------------------------------------------------- rendezvous

core::RunStats
runWithRequestBytes(std::uint32_t padding, double rps = 2e6)
{
    core::ExperimentConfig cfg;
    cfg.workload = sim::strfmt("synthetic:dist=fixed,padding=%u",
                               padding);
    cfg.arrivalRps = rps;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 5000;
    cfg.system.seed = 21;
    return core::runExperiment(cfg);
}

TEST(Rendezvous, SmallRequestsStayInline)
{
    const auto r = runWithRequestBytes(24);
    EXPECT_EQ(r.rendezvousRequests, 0u);
    EXPECT_EQ(r.verifyFailures, 0u);
}

TEST(Rendezvous, MultiBlockRequestsBelowCapStayInline)
{
    // 1.5 KB < maxMsgBytes (2 KB): unrolled send, no rendezvous.
    const auto r = runWithRequestBytes(1500);
    EXPECT_EQ(r.rendezvousRequests, 0u);
    EXPECT_EQ(r.verifyFailures, 0u);
}

TEST(Rendezvous, OversizedRequestsTakePullPathAndVerify)
{
    // 6 KB > maxMsgBytes: descriptor + one-sided pull. Every reply
    // still verifies, proving the payload bytes arrived intact.
    const auto r = runWithRequestBytes(6000);
    // Every request took the pull path (a few may still be in flight
    // when the run stops, so sent >= completed).
    EXPECT_GE(r.rendezvousRequests, r.completions);
    EXPECT_LE(r.rendezvousRequests, r.completions + 64);
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_EQ(r.completions, 5500u);
}

TEST(Rendezvous, PullPathAddsRoundTripLatency)
{
    // The rendezvous RPC pays an extra fabric round trip (read +
    // responses) before dispatch: ~2x the 100 ns one-way fabric
    // latency plus the pull serialization.
    const auto inline_run = runWithRequestBytes(1000, 0.5e6);
    const auto pull_run = runWithRequestBytes(6000, 0.5e6);
    EXPECT_GT(pull_run.point.p50Ns, inline_run.point.p50Ns + 150.0);
    EXPECT_LT(pull_run.point.p50Ns, inline_run.point.p50Ns + 1000.0);
}

TEST(Rendezvous, WorksInEveryDispatchMode)
{
    for (const auto mode :
         {ni::DispatchMode::SingleQueue, ni::DispatchMode::PerBackendGroup,
          ni::DispatchMode::StaticHash, ni::DispatchMode::SoftwarePull}) {
        core::ExperimentConfig cfg;
        cfg.workload = "synthetic:dist=fixed,padding=4000";
        cfg.system.mode = mode;
        cfg.system.seed = 22;
        cfg.arrivalRps = 2e6;
        cfg.warmupRpcs = 200;
        cfg.measuredRpcs = 3000;
        const auto r = core::runExperiment(cfg);
        EXPECT_EQ(r.verifyFailures, 0u)
            << ni::dispatchModeName(mode);
        EXPECT_GT(r.rendezvousRequests, 0u);
    }
}

// ----------------------------------------------------------- preemption

core::RunStats
runMasstree(sim::Tick quantum, double rps, std::uint64_t rpcs = 12000)
{
    core::ExperimentConfig cfg;
    cfg.workload = "masstree";
    cfg.system.preemptionQuantum = quantum;
    cfg.system.seed = 23;
    cfg.arrivalRps = rps;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = rpcs;
    return core::runExperiment(cfg);
}

TEST(Preemption, DisabledByDefault)
{
    const auto r = runMasstree(0, 2e6, 6000);
    EXPECT_EQ(r.preemptionYields, 0u);
}

TEST(Preemption, LongRpcsYieldWhenEnabled)
{
    // 1% scans of 60-120 us at a 15 us quantum: every scan yields
    // several times; gets (~1.25 us) never do.
    const auto r = runMasstree(sim::microseconds(15.0), 2e6, 6000);
    EXPECT_GT(r.preemptionYields, 0u);
    const auto scans = r.completions - r.criticalCompletions;
    // 60-120 us / 15 us quantum = 4-8 yields per scan.
    EXPECT_GE(r.preemptionYields, scans * 3);
    EXPECT_LE(r.preemptionYields, scans * 9);
    EXPECT_EQ(r.verifyFailures, 0u);
}

TEST(Preemption, ImprovesGetTailUnderScanInterference)
{
    // The §7 hypothesis: combining RPCValet with preemptive
    // scheduling handles mixed-runtime RPCs. At high load the
    // no-preemption p99 of gets suffers from double-booking behind
    // scans; a 15 us quantum caps that wait.
    const double rps = 3.5e6;
    const auto base = runMasstree(0, rps);
    const auto preempt = runMasstree(sim::microseconds(15.0), rps);
    EXPECT_LT(preempt.point.p99Ns, base.point.p99Ns);
    EXPECT_EQ(preempt.verifyFailures, 0u);
}

TEST(Preemption, ThroughputNotCollapsedByOverheads)
{
    const auto base = runMasstree(0, 3e6, 8000);
    const auto preempt = runMasstree(sim::microseconds(20.0), 3e6, 8000);
    EXPECT_GT(preempt.point.achievedRps,
              base.point.achievedRps * 0.95);
}

TEST(Preemption, NoEffectOnShortRpcWorkloads)
{
    core::ExperimentConfig cfg;
    cfg.workload = "synthetic:dist=gev";
    cfg.system.preemptionQuantum = sim::microseconds(15.0);
    cfg.system.seed = 24;
    cfg.arrivalRps = 10e6;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 10000;
    const auto r = core::runExperiment(cfg);
    // GEV tail rarely exceeds 15 us; yields are essentially absent.
    EXPECT_LT(r.preemptionYields, 10u);
}

// ------------------------------------------------------------ breakdown

TEST(Breakdown, ComponentsSumNearTotalMean)
{
    core::ExperimentConfig cfg;
    cfg.workload = "synthetic:dist=fixed";
    cfg.system.seed = 25;
    cfg.arrivalRps = 10e6;
    cfg.warmupRpcs = 0; // breakdown has no warmup; align the recorders
    cfg.measuredRpcs = 20000;
    const auto r = core::runExperiment(cfg);
    const double sum = r.breakdown.reassembly.meanNs +
                       r.breakdown.dispatch.meanNs +
                       r.breakdown.queueWait.meanNs +
                       r.breakdown.service.meanNs;
    EXPECT_NEAR(sum, r.point.meanNs, r.point.meanNs * 0.02);
}

TEST(Breakdown, QueueingLivesInDispatchForSingleQueue)
{
    // With a strict single-queue window (threshold 1), RPCValet holds
    // every queued RPC in the shared CQ: queueing surfaces in the
    // dispatch component and cores see none. (Threshold 2 moves up to
    // one RPC per core into the private CQ by design — the prefetch
    // that hides the dispatch bubble.)
    core::ExperimentConfig cfg;
    cfg.workload = "synthetic:dist=exponential";
    cfg.system.seed = 26;
    cfg.system.outstandingPerCore = 1;
    cfg.arrivalRps = 17e6; // ~87% load
    cfg.warmupRpcs = 1000;
    cfg.measuredRpcs = 20000;
    const auto r = core::runExperiment(cfg);
    EXPECT_GT(r.breakdown.dispatch.meanNs, 50.0);
    EXPECT_LT(r.breakdown.queueWait.meanNs, 5.0);
}

TEST(Breakdown, QueueingLivesAtCoresForStaticHash)
{
    // 16x1 pushes immediately: dispatch is constant-latency and all
    // queueing shows up in the private CQs.
    core::ExperimentConfig cfg;
    cfg.workload = "synthetic:dist=exponential";
    cfg.system.mode = ni::DispatchMode::StaticHash;
    cfg.system.seed = 26;
    cfg.arrivalRps = 15e6;
    cfg.warmupRpcs = 1000;
    cfg.measuredRpcs = 20000;
    const auto r = core::runExperiment(cfg);
    EXPECT_LT(r.breakdown.dispatch.meanNs, 50.0);
    EXPECT_GT(r.breakdown.queueWait.meanNs,
              r.breakdown.dispatch.meanNs);
}

TEST(Breakdown, ReassemblyScalesWithRequestSize)
{
    const auto small = runWithRequestBytes(24, 1e6);
    const auto large = runWithRequestBytes(1900, 1e6);
    // 31 blocks vs 1 block through a 3 ns/packet pipeline.
    EXPECT_GT(large.breakdown.reassembly.meanNs,
              small.breakdown.reassembly.meanNs + 50.0);
}

} // namespace
