/**
 * @file
 * Node-level behavioural tests: mode wiring, outstanding-threshold
 * effects, balance properties, and flow-control integrity.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "app/herd_app.hh"
#include "core/experiment.hh"
#include "net/traffic_gen.hh"
#include "node/rpc_node.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;

/** Directly wire a node + traffic generator for introspection. */
struct NodeHarness
{
    sim::EventDomain sim;
    net::Fabric fabric;
    app::HerdApp app;
    node::SystemParams params;
    std::unique_ptr<node::RpcNode> node;
    std::unique_ptr<net::TrafficGenerator> tg;

    explicit NodeHarness(ni::DispatchMode mode, double rps = 5e6)
        : fabric(sim, sim::nanoseconds(100.0))
    {
        params.mode = mode;
        params.seed = 11;
        node = std::make_unique<node::RpcNode>(sim, params, app, fabric,
                                               /*warmup=*/0);
        net::TrafficGenerator::Params tp;
        tp.arrivalRps = rps;
        tp.seed = 11;
        tg = std::make_unique<net::TrafficGenerator>(
            sim, tp, params.domain, app, fabric);
        fabric.connectDefault([this](proto::Packet pkt) {
            tg->receivePacket(std::move(pkt));
        });
    }

    void
    runFor(double us)
    {
        node->start();
        tg->start();
        sim.runUntil(sim::microseconds(us));
        tg->halt();
        sim.run(); // drain
    }
};

TEST(RpcNode, SingleQueueModeHasOneDispatcher)
{
    NodeHarness h(ni::DispatchMode::SingleQueue);
    EXPECT_NE(h.node->dispatcher(0), nullptr);
    EXPECT_EQ(h.node->dispatcher(1), nullptr);
    EXPECT_EQ(h.node->softwareQueue(), nullptr);
}

TEST(RpcNode, GroupedModeHasOneDispatcherPerBackend)
{
    NodeHarness h(ni::DispatchMode::PerBackendGroup);
    for (std::uint32_t d = 0; d < 4; ++d)
        EXPECT_NE(h.node->dispatcher(d), nullptr);
    EXPECT_EQ(h.node->dispatcher(4), nullptr);
}

TEST(RpcNode, StaticHashModeHasNoDispatcher)
{
    NodeHarness h(ni::DispatchMode::StaticHash);
    EXPECT_EQ(h.node->dispatcher(0), nullptr);
    EXPECT_EQ(h.node->softwareQueue(), nullptr);
}

TEST(RpcNode, SoftwareModeUsesSharedQueue)
{
    NodeHarness h(ni::DispatchMode::SoftwarePull);
    ASSERT_NE(h.node->softwareQueue(), nullptr);
    h.runFor(200.0);
    EXPECT_GT(h.node->softwareQueue()->pulls(), 100u);
    EXPECT_EQ(h.node->served(), h.tg->repliesReceived());
}

TEST(RpcNode, AllRequestsDrainAndSlotsRecycle)
{
    NodeHarness h(ni::DispatchMode::SingleQueue, 10e6);
    h.runFor(500.0);
    EXPECT_EQ(h.tg->repliesReceived(), h.tg->requestsSent());
    EXPECT_EQ(h.tg->inFlight(), 0u);
    EXPECT_EQ(h.tg->verificationFailures(), 0u);
    EXPECT_GT(h.node->served(), 3000u);
    // After drain, dispatcher credits are all returned.
    const auto *disp = h.node->dispatcher(0);
    ASSERT_NE(disp, nullptr);
    for (proto::CoreId c = 0; c < 16; ++c)
        EXPECT_EQ(disp->outstanding(c), 0u);
}

TEST(RpcNode, BackendsShareIngressWork)
{
    NodeHarness h(ni::DispatchMode::SingleQueue, 10e6);
    h.runFor(500.0);
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < 4; ++b)
        total += h.node->backend(b).packetsReceived();
    EXPECT_GT(total, 0u);
    for (std::uint32_t b = 0; b < 4; ++b) {
        const double share =
            static_cast<double>(h.node->backend(b).packetsReceived()) /
            static_cast<double>(total);
        EXPECT_GT(share, 0.15);
        EXPECT_LT(share, 0.35);
    }
}

TEST(RpcNode, NoReplySlotStallsInSteadyState)
{
    NodeHarness h(ni::DispatchMode::SingleQueue, 15e6);
    h.runFor(500.0);
    EXPECT_EQ(h.node->replySlotStalls(), 0u);
}

TEST(RpcNode, RecvSlotPeakBoundedByDomain)
{
    NodeHarness h(ni::DispatchMode::SingleQueue, 20e6);
    h.runFor(300.0);
    EXPECT_GT(h.node->recvSlotPeak(), 0u);
    EXPECT_LE(h.node->recvSlotPeak(), h.params.domain.totalSlots());
}

TEST(RpcNode, StaticHashImbalanceExceedsSingleQueue)
{
    // The variance of per-core served counts is the load-imbalance
    // signature: 16x1's static spreading must be more uneven than
    // RPCValet's single queue.
    auto spread = [](ni::DispatchMode mode) {
        core::ExperimentConfig cfg;
        cfg.system.mode = mode;
        cfg.system.seed = 3;
        cfg.arrivalRps = 20e6;
        cfg.warmupRpcs = 1000;
        cfg.measuredRpcs = 30000;
        cfg.workload = "synthetic:dist=gev";
        const auto r = core::runExperiment(cfg);
        const auto &served = r.perCoreServed;
        const double mean =
            std::accumulate(served.begin(), served.end(), 0.0) /
            static_cast<double>(served.size());
        double var = 0.0;
        for (auto s : served) {
            const double d = static_cast<double>(s) - mean;
            var += d * d;
        }
        return var / static_cast<double>(served.size());
    };
    EXPECT_GT(spread(ni::DispatchMode::StaticHash),
              2.0 * spread(ni::DispatchMode::SingleQueue));
}

TEST(RpcNode, ThresholdOneStillReachesHighThroughput)
{
    // §6.1: reducing outstanding-per-core to 1 only marginally
    // degrades HERD throughput (the dispatch bubble is tens of ns on
    // a ~550 ns service time).
    auto capacity = [](std::uint32_t threshold) {
        core::ExperimentConfig cfg;
        cfg.system.outstandingPerCore = threshold;
        cfg.system.seed = 5;
        cfg.arrivalRps = 60e6; // overload: measure capacity
        cfg.warmupRpcs = 3000;
        cfg.measuredRpcs = 40000;
        return core::runExperiment(cfg).point.achievedRps;
    };
    const double thr1 = capacity(1);
    const double thr2 = capacity(2);
    EXPECT_GT(thr2, thr1);               // bubble costs something
    EXPECT_GT(thr1, thr2 * 0.90);        // ...but only marginally
}

TEST(RpcNode, GroupedModeConfinesDispatchToGroups)
{
    // In 4x4 mode each dispatcher owns 4 cores; all 16 cores still
    // get work (no group starves under uniform traffic).
    core::ExperimentConfig cfg;
    cfg.system.mode = ni::DispatchMode::PerBackendGroup;
    cfg.system.seed = 9;
    cfg.arrivalRps = 15e6;
    cfg.warmupRpcs = 1000;
    cfg.measuredRpcs = 20000;
    const auto r = core::runExperiment(cfg);
    for (auto served : r.perCoreServed)
        EXPECT_GT(served, 500u);
}

TEST(RpcNode, AllPoliciesServeCorrectlyUnderLoad)
{
    // Every registered dispatch policy — including the stateful ones —
    // must preserve functional correctness and keep up with offered
    // load; only tail latency may differ.
    for (const char *policy :
         {"greedy", "rr", "pow2:d=3", "jbsq:d=2",
          "stale-jsq:staleness=50ns", "delay-aware"}) {
        core::ExperimentConfig cfg;
        cfg.system.policy = policy;
        cfg.system.seed = 15;
        cfg.arrivalRps = 20e6;
        cfg.warmupRpcs = 1000;
        cfg.measuredRpcs = 20000;
        const auto r = core::runExperiment(cfg);
        EXPECT_EQ(r.verifyFailures, 0u) << policy;
        EXPECT_NEAR(r.point.achievedRps, 20e6, 20e6 * 0.06) << policy;
    }
}

TEST(RpcNode, GreedyPolicyHasBestTailAmongPaperPolicies)
{
    auto p99_of = [](const ni::PolicySpec &policy) {
        core::ExperimentConfig cfg;
        cfg.system.policy = policy;
        cfg.system.seed = 16;
        cfg.arrivalRps = 17e6;
        cfg.warmupRpcs = 1000;
        cfg.measuredRpcs = 25000;
        cfg.workload = "synthetic:dist=gev";
        return core::runExperiment(cfg).point.p99Ns;
    };
    const double greedy = p99_of("greedy");
    EXPECT_LE(greedy, p99_of("rr") * 1.05);
    EXPECT_LE(greedy, p99_of("pow2") * 1.05);
}

TEST(RpcNode, CustomCoreCountWorks)
{
    // The library supports non-paper geometries (e.g. 64-core 8x8).
    core::ExperimentConfig cfg;
    cfg.system.numCores = 64;
    cfg.system.meshRows = 8;
    cfg.system.meshCols = 8;
    cfg.system.numBackends = 8;
    cfg.system.seed = 13;
    cfg.arrivalRps = 40e6;
    cfg.warmupRpcs = 1000;
    cfg.measuredRpcs = 20000;
    const auto r = core::runExperiment(cfg);
    EXPECT_EQ(r.verifyFailures, 0u);
    EXPECT_NEAR(r.point.achievedRps, 40e6, 40e6 * 0.06);
    EXPECT_EQ(r.perCoreServed.size(), 64u);
}

} // namespace
