/**
 * @file
 * Unit tests for the MCS-locked software shared queue (§6.2 baseline):
 * FIFO ordering, serialization at handoff+cs cost, and idle-lock
 * fast path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/domain.hh"
#include "sync/mcs_queue.hh"

namespace {

using namespace rpcvalet;
using Simulator = sim::EventDomain;
using sim::Tick;
using sim::nanoseconds;
using sync::McsParams;
using sync::SoftwareSharedQueue;

proto::CompletionQueueEntry
entry(std::uint32_t slot)
{
    proto::CompletionQueueEntry e;
    e.slotIndex = slot;
    return e;
}

TEST(McsQueue, UncontendedPullCostsAcquirePlusCs)
{
    Simulator sim;
    McsParams p;
    SoftwareSharedQueue q(sim, p);
    Tick got_at = 0;
    q.requestPull([&](const proto::CompletionQueueEntry &) {
        got_at = sim.now();
    });
    sim.schedule(nanoseconds(100), [&] { q.push(entry(1)); });
    sim.run();
    EXPECT_EQ(got_at,
              nanoseconds(100) + p.uncontendedAcquire + p.criticalSection);
    EXPECT_EQ(q.pulls(), 1u);
    EXPECT_EQ(q.contendedPulls(), 0u);
}

TEST(McsQueue, EntriesDeliveredFifo)
{
    Simulator sim;
    SoftwareSharedQueue q(sim, McsParams{});
    std::vector<std::uint32_t> order;
    for (std::uint32_t i = 0; i < 8; ++i)
        q.push(entry(i));
    for (int c = 0; c < 8; ++c) {
        q.requestPull([&](const proto::CompletionQueueEntry &e) {
            order.push_back(e.slotIndex);
        });
    }
    sim.run();
    ASSERT_EQ(order.size(), 8u);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(McsQueue, WaitersServedInRequestOrder)
{
    Simulator sim;
    SoftwareSharedQueue q(sim, McsParams{});
    std::vector<int> who;
    for (int c = 0; c < 4; ++c) {
        q.requestPull([&who, c](const proto::CompletionQueueEntry &) {
            who.push_back(c);
        });
    }
    for (std::uint32_t i = 0; i < 4; ++i)
        q.push(entry(i));
    sim.run();
    EXPECT_EQ(who, (std::vector<int>{0, 1, 2, 3}));
}

TEST(McsQueue, BackToBackPullsSerializeAtHandoffPlusCs)
{
    // The MCS property §6.2 leans on: under contention the dequeue
    // rate is bounded by 1 / (handoff + criticalSection).
    Simulator sim;
    McsParams p;
    p.uncontendedAcquire = nanoseconds(40);
    p.handoff = nanoseconds(50);
    p.criticalSection = nanoseconds(80);
    SoftwareSharedQueue q(sim, p);

    std::vector<Tick> times;
    const int n = 10;
    for (int i = 0; i < n; ++i)
        q.push(entry(static_cast<std::uint32_t>(i)));
    for (int i = 0; i < n; ++i) {
        q.requestPull([&](const proto::CompletionQueueEntry &) {
            times.push_back(sim.now());
        });
    }
    sim.run();
    ASSERT_EQ(times.size(), static_cast<size_t>(n));
    // First pull: uncontended. Every later pull: handoff + cs apart.
    EXPECT_EQ(times[0], p.uncontendedAcquire + p.criticalSection);
    for (int i = 1; i < n; ++i) {
        EXPECT_EQ(times[static_cast<size_t>(i)] -
                      times[static_cast<size_t>(i - 1)],
                  p.handoff + p.criticalSection)
            << "pull " << i;
    }
    EXPECT_EQ(q.contendedPulls(), static_cast<std::uint64_t>(n - 1));
}

TEST(McsQueue, LockIdleBetweenBurstsResetsFastPath)
{
    Simulator sim;
    McsParams p;
    SoftwareSharedQueue q(sim, p);
    std::vector<Tick> times;
    auto puller = [&] {
        q.requestPull([&](const proto::CompletionQueueEntry &) {
            times.push_back(sim.now());
        });
    };
    puller();
    q.push(entry(0));
    // Second burst long after the first completed: uncontended again.
    sim.schedule(nanoseconds(10000), [&] {
        puller();
        q.push(entry(1));
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[1] - nanoseconds(10000),
              p.uncontendedAcquire + p.criticalSection);
    EXPECT_EQ(q.contendedPulls(), 0u);
}

TEST(McsQueue, BacklogAndWaitersTracked)
{
    Simulator sim;
    SoftwareSharedQueue q(sim, McsParams{});
    q.push(entry(0));
    q.push(entry(1));
    EXPECT_EQ(q.backlog(), 2u);
    EXPECT_EQ(q.waitingCores(), 0u);
    q.requestPull([](const proto::CompletionQueueEntry &) {});
    // Matching consumes one entry and the waiter immediately.
    EXPECT_EQ(q.backlog(), 1u);
    EXPECT_EQ(q.waitingCores(), 0u);
}

TEST(McsQueue, LockBusyTimeAccounted)
{
    Simulator sim;
    McsParams p;
    SoftwareSharedQueue q(sim, p);
    q.push(entry(0));
    q.requestPull([](const proto::CompletionQueueEntry &) {});
    sim.run();
    EXPECT_EQ(q.lockBusyTicks(),
              p.uncontendedAcquire + p.criticalSection);
}

} // namespace
