/**
 * @file
 * Tests of the scenario subsystem: the INI-subset parser (including
 * its file:line fatal diagnostics), canonical matrix expansion, the
 * single-point bit-identity lock against a hand-built
 * ExperimentConfig, SLO evaluation, and the JSON + Prometheus output
 * writers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.hh"
#include "scenario/scenario.hh"
#include "sim/types.hh"

namespace {

using namespace rpcvalet;

// ----- parsing -----

TEST(ScenarioParse, FullFilePopulatesEveryField)
{
    const scenario::Scenario scn = scenario::parseScenarioText(
        "# comment\n"
        "; other comment style\n"
        "[experiment]\n"
        "name     = demo\n"
        "workload = masstree:scan_ratio=0.01\n"
        "arrival  = mmpp2:burst=0.1,ratio=10\n"
        "policy   = jbsq:d=2\n"
        "mode     = 4x4\n"
        "warmup   = 100\n"
        "measured = 1000\n"
        "seed     = 7\n"
        "turnaround = 150ns\n"
        "parallel_domains = 2\n"
        "[cluster]\n"
        "nodes    = 4\n"
        "router   = shard\n"
        "shards   = 128\n"
        "timeout  = 50us\n"
        "fail_threshold = 5\n"
        "[sweep]\n"
        "load     = 0.2 | 0.5\n"
        "policy   = greedy | pow2:d=2\n"
        "threads  = 2\n"
        "[slo]\n"
        "get      = 15us\n"
        "scan     = 1ms\n"
        "[output]\n"
        "dir      = out/demo\n"
        "json     = true\n"
        "prometheus = false\n",
        "demo.scn");

    EXPECT_EQ(scn.name, "demo");
    EXPECT_EQ(scn.base.workload.toString(),
              "masstree:scan_ratio=0.01");
    EXPECT_EQ(scn.base.arrival.toString(), "mmpp2:burst=0.1,ratio=10");
    EXPECT_EQ(scn.base.system.policy.toString(), "jbsq:d=2");
    EXPECT_EQ(scn.base.warmupRpcs, 100u);
    EXPECT_EQ(scn.base.measuredRpcs, 1000u);
    EXPECT_EQ(scn.base.system.seed, 7u);
    EXPECT_EQ(scn.base.clientTurnaround, sim::nanoseconds(150.0));
    EXPECT_EQ(scn.base.parallelDomains, 2u);
    EXPECT_EQ(scn.base.cluster.numServerNodes, 4u);
    EXPECT_EQ(scn.base.cluster.router.toString(), "shard");
    EXPECT_EQ(scn.base.cluster.shards, 128u);
    EXPECT_EQ(scn.base.cluster.requestTimeout,
              sim::microseconds(50.0));
    EXPECT_EQ(scn.base.cluster.failThreshold, 5u);
    ASSERT_EQ(scn.loadFractions.size(), 2u);
    EXPECT_DOUBLE_EQ(scn.loadFractions[0], 0.2);
    EXPECT_DOUBLE_EQ(scn.loadFractions[1], 0.5);
    ASSERT_EQ(scn.policies.size(), 2u);
    EXPECT_EQ(scn.policies[0], "greedy");
    EXPECT_EQ(scn.policies[1], "pow2:d=2");
    EXPECT_EQ(scn.threads, 2u);
    ASSERT_EQ(scn.slos.size(), 2u);
    EXPECT_EQ(scn.slos[0].className, "get");
    EXPECT_DOUBLE_EQ(scn.slos[0].boundNs, 15000.0);
    EXPECT_EQ(scn.slos[1].className, "scan");
    EXPECT_DOUBLE_EQ(scn.slos[1].boundNs, 1e6);
    EXPECT_EQ(scn.outputDir, "out/demo");
    EXPECT_TRUE(scn.writeJson);
    EXPECT_FALSE(scn.writePrometheus);
}

TEST(ScenarioParse, ChaosSectionPopulatesFaultsAndRetry)
{
    const scenario::Scenario scn = scenario::parseScenarioText(
        "[cluster]\n"
        "nodes   = 4\n"
        "timeout = 30us\n"
        "sweep_interval = 5us\n"
        "[chaos]\n"
        "fault = crash:node=3,at=100us,recover_after=300us\n"
        "fault = packet-loss:p=0.005\n"
        "retry_max_attempts = 6\n"
        "retry_backoff      = 5us\n"
        "retry_multiplier   = 2\n"
        "retry_jitter       = 0.2\n"
        "hedge_after        = 20us\n"
        "[sweep]\n"
        "load = 0.5\n",
        "chaos.scn");
    ASSERT_EQ(scn.base.faults.size(), 2u);
    // toString() canonicalizes: params print in sorted key order.
    EXPECT_EQ(scn.base.faults[0].toString(),
              "crash:at=100us,node=3,recover_after=300us");
    EXPECT_EQ(scn.base.faults[1].name, "packet-loss");
    EXPECT_EQ(scn.base.retry.maxAttempts, 6u);
    EXPECT_EQ(scn.base.retry.baseBackoff, sim::microseconds(5.0));
    EXPECT_DOUBLE_EQ(scn.base.retry.multiplier, 2.0);
    EXPECT_DOUBLE_EQ(scn.base.retry.jitter, 0.2);
    EXPECT_EQ(scn.base.retry.hedgeAfter, sim::microseconds(20.0));
    EXPECT_TRUE(scn.base.retry.active());
    EXPECT_EQ(scn.base.cluster.sweepInterval, sim::microseconds(5.0));
}

TEST(ScenarioParse, FileStemIsTheDefaultName)
{
    const std::string path =
        ::testing::TempDir() + "/stem_check.scn";
    std::ofstream(path) << "[sweep]\nrps = 1e6\n";
    const scenario::Scenario scn = scenario::parseScenarioFile(path);
    EXPECT_EQ(scn.name, "stem_check");
    EXPECT_EQ(scn.source, path);
    std::remove(path.c_str());
}

// ----- fatal diagnostics (satellite: uniform file:line context) -----

TEST(ScenarioParseDeath, UnknownKeyNamesFileAndLine)
{
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[experiment]\ntypo_key = 1\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(typo_key = 1\\).*unknown "
                "\\[experiment\\] key 'typo_key'");
}

TEST(ScenarioParseDeath, RegistryErrorGainsFileLineAndToken)
{
    // The policy registry only knows the bad spec; the parser's
    // ErrorContext frame prefixes where it came from.
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[experiment]\npolicy = jbqs:d=2\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(policy = jbqs:d=2\\)");
}

TEST(ScenarioParseDeath, MalformedLinesDieWithLineNumbers)
{
    EXPECT_EXIT((void)scenario::parseScenarioText("[experiment\n",
                                                  "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:1: malformed section header");
    EXPECT_EXIT((void)scenario::parseScenarioText("[nowhere]\n",
                                                  "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:1: unknown section '\\[nowhere\\]'");
    EXPECT_EXIT((void)scenario::parseScenarioText("stray = 1\n",
                                                  "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:1: 'stray' appears before any");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[sweep]\nload 0.5\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2: expected 'key = value'");
}

TEST(ScenarioParseDeath, ValueValidationFires)
{
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[cluster]\ntimeout = 50lightyears\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(timeout = 50lightyears\\).*unknown "
                "unit");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[sweep]\nload = 0.5 || 0.8\n", "bad.scn"),
                ::testing::ExitedWithCode(1), "empty list entry");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[sweep]\nnodes = 99\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "node count '99' must be in \\[1, 64\\]");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[experiment]\nparallel_domains = 4096\n",
                    "bad.scn"),
                ::testing::ExitedWithCode(1),
                "'parallel_domains' must be at most 1024");
}

TEST(ScenarioParseDeath, BadFaultSpecsDieWithFileAndLine)
{
    // Unknown fault names and out-of-range parameters are caught at
    // parse time by instantiating through the registry, with the
    // file:line (key = value) frame prefixed.
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[chaos]\nfault = pakcet-loss:p=0.1\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(fault = pakcet-loss:p=0.1\\).*unknown "
                "fault 'pakcet-loss'");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[chaos]\nfault = packet-loss:p=1.5\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2.*p must be in \\[0, 1\\]");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[chaos]\nretry_multiplier = 0.5\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2.*'retry_multiplier' must be >= 1");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[chaos]\nretry_jitter = 2\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2.*'retry_jitter' must be in \\[0, 1\\]");
}

TEST(ScenarioParseDeath, ActiveRetryWithoutClusterTimeoutIsFatal)
{
    // Cross-section validation at finish(): retries trigger off the
    // [cluster] timeout sweep, so an active policy without one cannot
    // run.
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[chaos]\nretry_max_attempts = 3\n"
                    "[sweep]\nload = 0.5\n",
                    "bad.scn"),
                ::testing::ExitedWithCode(1),
                "\\[chaos\\] retry policy.*requires a cluster request "
                "timeout");
}

TEST(ScenarioParseDeath, ZeroSweepIntervalIsFatal)
{
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[cluster]\nsweep_interval = 0\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "'sweep_interval' must be > 0");
}

TEST(ScenarioParseDeath, LoadAxisIsMandatoryAndExclusive)
{
    EXPECT_EXIT((void)scenario::parseScenarioText("[experiment]\n"
                                                  "seed = 1\n",
                                                  "bad.scn"),
                ::testing::ExitedWithCode(1), "no load axis");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[sweep]\nload = 0.5\nrps = 1e6\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "declares both 'load' and 'rps'");
}

// ----- [connections] section -----

TEST(ScenarioParse, ConnectionsSectionPopulatesConnConfig)
{
    const scenario::Scenario scn = scenario::parseScenarioText(
        "[connections]\n"
        "nodes       = 400\n"
        "clients     = 2048\n"
        "scheduler   = grouped:size=40,slice=100us\n"
        "qp_capacity = 64\n"
        "qp_cold     = 800ns\n"
        "[sweep]\n"
        "load = 0.5\n",
        "conn.scn");

    EXPECT_EQ(scn.base.system.domain.numNodes, 400u);
    ASSERT_TRUE(scn.base.connections.active());
    EXPECT_EQ(scn.base.connections.numClients, 2048u);
    EXPECT_EQ(scn.base.connections.scheduler.toString(),
              "grouped:size=40,slice=100us");
    EXPECT_EQ(scn.base.connections.qpCapacity, 64u);
    EXPECT_DOUBLE_EQ(scn.base.connections.qpColdNs, 800.0);
}

TEST(ScenarioParseDeath, BadConnectionsKeysDieWithFileAndLine)
{
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[connections]\nclient = 2048\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(client = 2048\\).*unknown "
                "\\[connections\\] key 'client'");
    // Scheduler specs resolve through the conn registry at parse time,
    // with the file:line (key = value) frame prefixed.
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[connections]\nscheduler = groupde\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(scheduler = groupde\\).*unknown conn "
                "scheduler 'groupde'");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[connections]\nscheduler = grouped:size=0\n",
                    "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:2 \\(scheduler = grouped:size=0\\).*size "
                "must be >= 1");
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[connections]\nnodes = 1\n", "bad.scn"),
                ::testing::ExitedWithCode(1),
                "'nodes' must be in \\[2, 100000\\]");
}

TEST(ScenarioExpand, SchedulerAxisOverridesConnScheduler)
{
    const scenario::Scenario scn = scenario::parseScenarioText(
        "[connections]\n"
        "clients   = 1024\n"
        "qp_capacity = 64\n"
        "[sweep]\n"
        "scheduler = all | grouped:size=40,slice=100us\n"
        "load      = 0.5\n",
        "conn.scn");
    ASSERT_EQ(scn.schedulers.size(), 2u);
    const std::vector<scenario::ScenarioPoint> points =
        scenario::expandMatrix(scn);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].scheduler, "all");
    EXPECT_EQ(points[0].config.connections.schedulerSpec().toString(),
              "all");
    EXPECT_EQ(points[1].scheduler, "grouped:size=40,slice=100us");
    EXPECT_EQ(points[1].config.connections.scheduler.toString(),
              "grouped:size=40,slice=100us");
    // Both points keep the shared population.
    EXPECT_EQ(points[0].config.connections.numClients, 1024u);
    EXPECT_EQ(points[1].config.connections.numClients, 1024u);
}

TEST(ScenarioParseDeath, SchedulerAxisWithoutPopulationIsFatal)
{
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[sweep]\nscheduler = all | grouped\n"
                    "load = 0.5\n",
                    "bad.scn"),
                ::testing::ExitedWithCode(1),
                "'scheduler' axis needs an active \\[connections\\] "
                "section");
    // Axis values resolve through the conn registry at parse time.
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[connections]\nclients = 64\n"
                    "[sweep]\nscheduler = grouped:slice=0\n"
                    "load = 0.5\n",
                    "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn:4 \\(scheduler = grouped:slice=0\\).*slice "
                "must be > 0");
}

TEST(ScenarioParseDeath, ConnectionsSectionWithoutClientsIsFatal)
{
    // A scheduler/qp tweak with no population would silently run the
    // legacy path; finish() catches it.
    EXPECT_EXIT((void)scenario::parseScenarioText(
                    "[connections]\nqp_capacity = 64\n"
                    "[sweep]\nload = 0.5\n",
                    "bad.scn"),
                ::testing::ExitedWithCode(1),
                "bad\\.scn: \\[connections\\] section without a "
                "'clients = N' key");
}

// ----- matrix expansion -----

TEST(ScenarioExpand, CanonicalOrderLoadInnermost)
{
    const scenario::Scenario scn = scenario::parseScenarioText(
        "[sweep]\n"
        "policy = greedy | rr\n"
        "rps    = 1e6 | 2e6\n",
        "order.scn");
    const std::vector<scenario::ScenarioPoint> pts =
        scenario::expandMatrix(scn);
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_EQ(pts[0].policy, "greedy");
    EXPECT_DOUBLE_EQ(pts[0].config.arrivalRps, 1e6);
    EXPECT_EQ(pts[1].policy, "greedy");
    EXPECT_DOUBLE_EQ(pts[1].config.arrivalRps, 2e6);
    EXPECT_EQ(pts[2].policy, "rr");
    EXPECT_DOUBLE_EQ(pts[2].config.arrivalRps, 1e6);
    EXPECT_EQ(pts[3].policy, "rr");
    for (std::size_t i = 0; i < pts.size(); ++i)
        EXPECT_EQ(pts[i].index, i);
}

TEST(ScenarioExpand, FractionalLoadScalesWithCapacityAndNodes)
{
    const scenario::Scenario scn = scenario::parseScenarioText(
        "[sweep]\n"
        "nodes = 1 | 2\n"
        "load  = 0.5\n",
        "frac.scn");
    const std::vector<scenario::ScenarioPoint> pts =
        scenario::expandMatrix(scn);
    ASSERT_EQ(pts.size(), 2u);
    const double capacity = core::estimateCapacityRps(
        scn.base.system, scn.base.workload);
    EXPECT_DOUBLE_EQ(pts[0].config.arrivalRps, 0.5 * capacity);
    EXPECT_DOUBLE_EQ(pts[1].config.arrivalRps, 0.5 * capacity * 2.0);
    EXPECT_DOUBLE_EQ(pts[1].loadFraction, 0.5);
    EXPECT_EQ(pts[1].config.cluster.numServerNodes, 2u);
}

// ----- the single-point bit-identity lock -----

TEST(ScenarioRun, SinglePointScenarioIsBitIdenticalToHandBuiltConfig)
{
    // A scenario with no sweep axes beyond one absolute rate must
    // reproduce the hand-built ExperimentConfig run bit for bit —
    // executed event count included. These are the same goldens
    // tests/cluster/cluster_experiment_test.cc locks.
    const scenario::Scenario scn = scenario::parseScenarioText(
        "[experiment]\n"
        "warmup   = 500\n"
        "measured = 5000\n"
        "[sweep]\n"
        "rps      = 10e6\n",
        "lock.scn");
    const std::vector<scenario::ScenarioPoint> pts =
        scenario::expandMatrix(scn);
    ASSERT_EQ(pts.size(), 1u);

    core::ExperimentConfig cfg;
    cfg.arrivalRps = 10e6;
    cfg.warmupRpcs = 500;
    cfg.measuredRpcs = 5000;
    const core::RunStats direct = core::runExperiment(cfg);
    const core::RunStats via = core::runExperiment(pts[0].config);

    EXPECT_EQ(via.executedEvents, direct.executedEvents);
    EXPECT_EQ(via.point.p50Ns, direct.point.p50Ns);
    EXPECT_EQ(via.point.p99Ns, direct.point.p99Ns);
    EXPECT_EQ(via.point.achievedRps, direct.point.achievedRps);
    EXPECT_EQ(via.completions, direct.completions);
    // And both match the cluster test's golden numbers.
    EXPECT_EQ(via.executedEvents, 110046u);
    EXPECT_EQ(via.point.p50Ns, 518.72900000000004);
    EXPECT_EQ(via.point.p99Ns, 1089.02);
}

// ----- execution, SLOs, and outputs -----

scenario::Scenario
tinyScenario(const std::string &slo_line)
{
    return scenario::parseScenarioText("[experiment]\n"
                                       "name     = tiny\n"
                                       "warmup   = 100\n"
                                       "measured = 2000\n"
                                       "[sweep]\n"
                                       "rps      = 5e6\n"
                                       "[slo]\n" +
                                           slo_line,
                                       "tiny.scn");
}

TEST(ScenarioRun, MetSloReportsTrue)
{
    const scenario::ScenarioResult result =
        scenario::runScenario(tinyScenario("herd = 1ms\n"));
    ASSERT_EQ(result.points.size(), 1u);
    ASSERT_EQ(result.points[0].slos.size(), 1u);
    const scenario::SloOutcome &so = result.points[0].slos[0];
    EXPECT_TRUE(so.classFound);
    EXPECT_TRUE(so.met);
    EXPECT_GT(so.p99Ns, 0.0);
    EXPECT_TRUE(result.slosMet);
}

TEST(ScenarioRun, ImpossibleSloReportsMiss)
{
    const scenario::ScenarioResult result =
        scenario::runScenario(tinyScenario("herd = 1ns\n"));
    EXPECT_TRUE(result.points[0].slos[0].classFound);
    EXPECT_FALSE(result.points[0].slos[0].met);
    EXPECT_FALSE(result.slosMet);
}

TEST(ScenarioRun, UnknownSloClassReportsNotFound)
{
    const scenario::ScenarioResult result =
        scenario::runScenario(tinyScenario("nosuch = 1ms\n"));
    EXPECT_FALSE(result.points[0].slos[0].classFound);
    EXPECT_FALSE(result.points[0].slos[0].met);
    EXPECT_FALSE(result.slosMet);
}

TEST(ScenarioRun, ThreadedExecutionMatchesSequential)
{
    scenario::Scenario scn = scenario::parseScenarioText(
        "[experiment]\n"
        "warmup   = 100\n"
        "measured = 1500\n"
        "[sweep]\n"
        "rps      = 4e6 | 6e6 | 8e6\n",
        "threads.scn");
    const scenario::ScenarioResult seq = scenario::runScenario(scn);
    scn.threads = 3;
    const scenario::ScenarioResult par = scenario::runScenario(scn);
    ASSERT_EQ(seq.points.size(), par.points.size());
    for (std::size_t i = 0; i < seq.points.size(); ++i) {
        EXPECT_EQ(seq.points[i].stats.executedEvents,
                  par.points[i].stats.executedEvents);
        EXPECT_EQ(seq.points[i].stats.point.p99Ns,
                  par.points[i].stats.point.p99Ns);
    }
}

TEST(ScenarioRun, OutputsLandInTheScenarioDirectory)
{
    scenario::Scenario scn = tinyScenario("herd = 1ms\n");
    scn.outputDir = ::testing::TempDir() + "/scenario_out_test";
    const scenario::ScenarioResult result =
        scenario::runScenario(scn);
    const std::vector<std::string> written =
        scenario::writeScenarioOutputs(result);
    // point_000.json + summary.json + metrics.prom.
    ASSERT_EQ(written.size(), 3u);

    std::ifstream summary(scn.outputDir + "/summary.json");
    ASSERT_TRUE(summary.good());
    std::stringstream buf;
    buf << summary.rdbuf();
    // The provenance stamp and the point's verdict are in there.
    EXPECT_NE(buf.str().find("\"git_sha\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"build_type\""), std::string::npos);
    EXPECT_NE(buf.str().find("\"slos_met\": true"),
              std::string::npos);

    std::ifstream prom(scn.outputDir + "/metrics.prom");
    ASSERT_TRUE(prom.good());
    std::stringstream pbuf;
    pbuf << prom.rdbuf();
    EXPECT_NE(pbuf.str().find("# TYPE rpcvalet_latency_ns summary"),
              std::string::npos);
    EXPECT_NE(pbuf.str().find("rpcvalet_slo_met{"),
              std::string::npos);
    for (const std::string &w : written)
        std::remove(w.c_str());
}

} // namespace
