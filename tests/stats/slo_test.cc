/**
 * @file
 * Unit tests for throughput-under-SLO analysis and series formatting.
 */

#include <gtest/gtest.h>

#include "stats/series.hh"
#include "stats/slo.hh"

namespace {

using rpcvalet::stats::LoadPoint;
using rpcvalet::stats::Series;
using rpcvalet::stats::SloResult;
using rpcvalet::stats::throughputUnderSlo;

Series
makeSeries(std::initializer_list<std::pair<double, double>> pts)
{
    Series s;
    s.label = "test";
    for (const auto &[rps, p99] : pts) {
        LoadPoint p;
        p.offeredRps = rps;
        p.achievedRps = rps;
        p.p99Ns = p99;
        s.points.push_back(p);
    }
    return s;
}

TEST(Slo, EmptySeriesNeverMeets)
{
    Series s;
    const SloResult r = throughputUnderSlo(s, 1000.0);
    EXPECT_FALSE(r.met);
    EXPECT_DOUBLE_EQ(r.throughputRps, 0.0);
}

TEST(Slo, AllPointsUnderSloIsUnbounded)
{
    const auto s = makeSeries({{1e6, 100.0}, {2e6, 200.0}, {3e6, 400.0}});
    const SloResult r = throughputUnderSlo(s, 1000.0);
    EXPECT_TRUE(r.met);
    EXPECT_TRUE(r.unbounded);
    EXPECT_DOUBLE_EQ(r.throughputRps, 3e6);
}

TEST(Slo, NoPointUnderSlo)
{
    const auto s = makeSeries({{1e6, 5000.0}, {2e6, 9000.0}});
    const SloResult r = throughputUnderSlo(s, 1000.0);
    EXPECT_FALSE(r.met);
}

TEST(Slo, InterpolatesCrossing)
{
    // p99 crosses 1000 ns between 2 Mrps (500 ns) and 3 Mrps (1500 ns):
    // fraction = (1000-500)/(1500-500) = 0.5 -> 2.5 Mrps.
    const auto s =
        makeSeries({{1e6, 200.0}, {2e6, 500.0}, {3e6, 1500.0}});
    const SloResult r = throughputUnderSlo(s, 1000.0);
    EXPECT_TRUE(r.met);
    EXPECT_FALSE(r.unbounded);
    EXPECT_NEAR(r.throughputRps, 2.5e6, 1.0);
    EXPECT_DOUBLE_EQ(r.p99Ns, 1000.0);
}

TEST(Slo, ExactlyAtSloCounts)
{
    const auto s = makeSeries({{1e6, 1000.0}, {2e6, 2000.0}});
    const SloResult r = throughputUnderSlo(s, 1000.0);
    EXPECT_TRUE(r.met);
    EXPECT_GE(r.throughputRps, 1e6);
}

TEST(Slo, NoisyTailUsesLastCompliantPoint)
{
    // A dip back under the SLO after a violation: the scan takes the
    // last compliant point (3 Mrps here).
    const auto s = makeSeries(
        {{1e6, 500.0}, {2e6, 1200.0}, {3e6, 900.0}, {4e6, 5000.0}});
    const SloResult r = throughputUnderSlo(s, 1000.0);
    EXPECT_TRUE(r.met);
    EXPECT_GE(r.throughputRps, 3e6);
}

TEST(Slo, TableFormatsRatios)
{
    std::vector<Series> all;
    all.push_back(makeSeries({{1e6, 100.0}, {2e6, 2000.0}}));
    all[0].label = "16x1";
    all.push_back(makeSeries({{1e6, 100.0}, {3e6, 800.0}, {4e6, 3000.0}}));
    all[1].label = "1x16";
    const std::string table =
        rpcvalet::stats::formatSloTable("Test", all, 1000.0, 0);
    EXPECT_NE(table.find("16x1"), std::string::npos);
    EXPECT_NE(table.find("1x16"), std::string::npos);
    EXPECT_NE(table.find("1.00x"), std::string::npos);
}

TEST(Series, CsvHasHeaderAndRows)
{
    std::vector<Series> all;
    all.push_back(makeSeries({{1e6, 100.0}}));
    const std::string csv = rpcvalet::stats::formatSeriesCsv(all);
    EXPECT_NE(csv.find("series,offered_rps"), std::string::npos);
    EXPECT_NE(csv.find("test,"), std::string::npos);
}

TEST(Series, TableContainsTitleAndLabels)
{
    std::vector<Series> all;
    all.push_back(makeSeries({{1e6, 100.0}}));
    all[0].label = "model-a";
    const std::string t =
        rpcvalet::stats::formatSeriesTable("Figure X", all, true);
    EXPECT_NE(t.find("Figure X"), std::string::npos);
    EXPECT_NE(t.find("model-a"), std::string::npos);
}

} // namespace
