/**
 * @file
 * Unit tests for exact percentile computation and warmup handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "stats/latency_recorder.hh"

namespace {

using rpcvalet::sim::nanoseconds;
using rpcvalet::stats::LatencyRecorder;

TEST(LatencyRecorder, EmptyRecorderReportsZeros)
{
    LatencyRecorder rec;
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_DOUBLE_EQ(rec.meanNs(), 0.0);
    EXPECT_DOUBLE_EQ(rec.p99Ns(), 0.0);
    EXPECT_DOUBLE_EQ(rec.maxNs(), 0.0);
}

TEST(LatencyRecorder, MeanOfKnownSamples)
{
    LatencyRecorder rec;
    rec.record(nanoseconds(100));
    rec.record(nanoseconds(200));
    rec.record(nanoseconds(300));
    EXPECT_DOUBLE_EQ(rec.meanNs(), 200.0);
    EXPECT_EQ(rec.count(), 3u);
}

TEST(LatencyRecorder, WarmupSamplesDiscarded)
{
    LatencyRecorder rec(/*warmup_samples=*/2);
    rec.record(nanoseconds(1000000)); // discarded
    rec.record(nanoseconds(1000000)); // discarded
    rec.record(nanoseconds(100));
    rec.record(nanoseconds(200));
    EXPECT_EQ(rec.count(), 2u);
    EXPECT_EQ(rec.observed(), 4u);
    EXPECT_DOUBLE_EQ(rec.meanNs(), 150.0);
}

TEST(LatencyRecorder, PercentileEdgeCases)
{
    LatencyRecorder rec;
    for (int i = 1; i <= 100; ++i)
        rec.record(nanoseconds(i));
    EXPECT_DOUBLE_EQ(rec.percentileNs(0.0), 1.0);
    EXPECT_DOUBLE_EQ(rec.percentileNs(100.0), 100.0);
    EXPECT_DOUBLE_EQ(rec.percentileNs(50.0), 50.0);
    EXPECT_DOUBLE_EQ(rec.percentileNs(99.0), 99.0);
    EXPECT_DOUBLE_EQ(rec.percentileNs(1.0), 1.0);
}

TEST(LatencyRecorder, SingleSampleAllPercentiles)
{
    LatencyRecorder rec;
    rec.record(nanoseconds(42));
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(rec.percentileNs(p), 42.0);
}

TEST(LatencyRecorder, PercentileMatchesSortedReference)
{
    // Property: nearest-rank percentile equals the sorted array lookup
    // for random data.
    rpcvalet::sim::Rng rng(5);
    LatencyRecorder rec;
    std::vector<double> ref;
    for (int i = 0; i < 9973; ++i) {
        const double v = rng.uniformRange(0.0, 1e6);
        rec.record(nanoseconds(v));
        ref.push_back(rpcvalet::sim::toNs(nanoseconds(v)));
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
        const auto rank = static_cast<size_t>(
            std::ceil(p / 100.0 * static_cast<double>(ref.size())));
        EXPECT_DOUBLE_EQ(rec.percentileNs(p), ref[rank - 1])
            << "percentile " << p;
    }
}

TEST(LatencyRecorder, RecordAfterQueryKeepsCorrectness)
{
    // The lazy sort cache must invalidate on new samples.
    LatencyRecorder rec;
    rec.record(nanoseconds(10));
    EXPECT_DOUBLE_EQ(rec.p99Ns(), 10.0);
    rec.record(nanoseconds(1000));
    EXPECT_DOUBLE_EQ(rec.p99Ns(), 1000.0);
}

TEST(LatencyRecorder, ResetClearsEverything)
{
    LatencyRecorder rec(1);
    rec.record(nanoseconds(5));
    rec.record(nanoseconds(6));
    rec.reset();
    EXPECT_EQ(rec.count(), 0u);
    EXPECT_EQ(rec.observed(), 0u);
    rec.record(nanoseconds(7)); // warmup again after reset
    EXPECT_EQ(rec.count(), 0u);
    rec.record(nanoseconds(8));
    EXPECT_EQ(rec.count(), 1u);
}

TEST(LatencyRecorder, MaxTracksLargestSample)
{
    LatencyRecorder rec;
    rec.record(nanoseconds(300));
    rec.record(nanoseconds(100));
    rec.record(nanoseconds(200));
    EXPECT_DOUBLE_EQ(rec.maxNs(), 300.0);
}

} // namespace
