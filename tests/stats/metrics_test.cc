/**
 * @file
 * Unit tests for stats::MetricsExporter, the Prometheus
 * text-exposition layer behind the scenario runner's metrics.prom
 * artifact: exact rendering of counters/gauges/summaries, label-value
 * escaping, deterministic ordering, and the fatal validation paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "stats/metrics.hh"

namespace {

using namespace rpcvalet;
using stats::MetricsExporter;

TEST(Metrics, CounterAndGaugeRenderExactText)
{
    MetricsExporter mx;
    mx.counter("rpc_total", "Completed RPCs.", 42.0,
               {{"policy", "greedy"}});
    mx.gauge("offered_rps", "Offered load.", 1.5e6);
    EXPECT_EQ(mx.render(),
              "# HELP rpc_total Completed RPCs.\n"
              "# TYPE rpc_total counter\n"
              "rpc_total{policy=\"greedy\"} 42\n"
              "# HELP offered_rps Offered load.\n"
              "# TYPE offered_rps gauge\n"
              "offered_rps 1500000\n");
}

TEST(Metrics, SamplesOfOneFamilyGroupUnderOneHeader)
{
    MetricsExporter mx;
    mx.gauge("g", "help one", 1.0, {{"node", "0"}});
    mx.gauge("g", "ignored later help", 2.0, {{"node", "1"}});
    EXPECT_EQ(mx.render(), "# HELP g help one\n"
                           "# TYPE g gauge\n"
                           "g{node=\"0\"} 1\n"
                           "g{node=\"1\"} 2\n");
}

TEST(Metrics, SummaryEmitsQuantileSeriesPlusSumAndCount)
{
    MetricsExporter mx;
    mx.summary("lat_ns", "Latency.", {{0.5, 100.0}, {0.99, 250.0}},
               12345.0, 100, {{"w", "herd"}});
    EXPECT_EQ(mx.render(),
              "# HELP lat_ns Latency.\n"
              "# TYPE lat_ns summary\n"
              "lat_ns{w=\"herd\",quantile=\"0.5\"} 100\n"
              "lat_ns{w=\"herd\",quantile=\"0.99\"} 250\n"
              "lat_ns_sum{w=\"herd\"} 12345\n"
              "lat_ns_count{w=\"herd\"} 100\n");
}

TEST(Metrics, LabelValuesAreEscaped)
{
    MetricsExporter mx;
    mx.gauge("g", "h", 1.0, {{"spec", "a\"b\\c\nd"}});
    EXPECT_EQ(mx.render(), "# HELP g h\n"
                           "# TYPE g gauge\n"
                           "g{spec=\"a\\\"b\\\\c\\nd\"} 1\n");
}

TEST(Metrics, NonFiniteValuesSpelledThePrometheusWay)
{
    MetricsExporter mx;
    mx.gauge("g", "h", std::numeric_limits<double>::infinity());
    mx.gauge("g", "h", -std::numeric_limits<double>::infinity());
    mx.gauge("g", "h", std::numeric_limits<double>::quiet_NaN());
    const std::string out = mx.render();
    EXPECT_NE(out.find("g +Inf\n"), std::string::npos);
    EXPECT_NE(out.find("g -Inf\n"), std::string::npos);
    EXPECT_NE(out.find("g NaN\n"), std::string::npos);
}

TEST(Metrics, ValuesRoundTripAtFullPrecision)
{
    MetricsExporter mx;
    mx.gauge("g", "h", 1089.0199999999999);
    const std::string out = mx.render();
    const double parsed = std::strtod(
        out.c_str() + out.rfind(' '), nullptr);
    EXPECT_EQ(parsed, 1089.0199999999999);
}

TEST(Metrics, WriteFileMatchesRender)
{
    MetricsExporter mx;
    mx.counter("c", "h", 7.0);
    const std::string path =
        ::testing::TempDir() + "/metrics_test.prom";
    mx.writeFile(path);
    std::ifstream f(path);
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_EQ(buf.str(), mx.render());
    std::remove(path.c_str());
}

TEST(MetricsDeath, TypeConflictIsFatal)
{
    EXPECT_EXIT(
        {
            MetricsExporter mx;
            mx.counter("m", "h", 1.0);
            mx.gauge("m", "h", 1.0);
        },
        ::testing::ExitedWithCode(1),
        "'m' registered as both counter and gauge");
}

TEST(MetricsDeath, NegativeCounterIsFatal)
{
    EXPECT_EXIT(
        {
            MetricsExporter mx;
            mx.counter("m", "h", -1.0);
        },
        ::testing::ExitedWithCode(1),
        "counter 'm' must be non-negative");
}

TEST(MetricsDeath, InvalidNamesAreFatal)
{
    EXPECT_EXIT(
        {
            MetricsExporter mx;
            mx.gauge("9starts_with_digit", "h", 1.0);
        },
        ::testing::ExitedWithCode(1), "invalid metric name");
    EXPECT_EXIT(
        {
            MetricsExporter mx;
            mx.gauge("g", "h", 1.0, {{"bad-label", "v"}});
        },
        ::testing::ExitedWithCode(1), "invalid label name");
}

TEST(MetricsDeath, QuantileOutsideUnitIntervalIsFatal)
{
    EXPECT_EXIT(
        {
            MetricsExporter mx;
            mx.summary("s", "h", {{1.5, 1.0}}, 0.0, 0);
        },
        ::testing::ExitedWithCode(1), "quantile 1.5 outside");
}

} // namespace
