/**
 * @file
 * Unit tests for the fixed-bin histogram.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "stats/histogram.hh"

namespace {

using rpcvalet::stats::Histogram;

TEST(Histogram, BinsValuesCorrectly)
{
    Histogram h(0.0, 100.0, 10);
    h.add(5.0);   // bin 0
    h.add(15.0);  // bin 1
    h.add(95.0);  // bin 9
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins)
{
    Histogram h(0.0, 100.0, 10);
    h.add(-5.0);
    h.add(150.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, BinBoundaryGoesToUpperBin)
{
    Histogram h(0.0, 100.0, 10);
    h.add(10.0); // exactly at bin 0/1 boundary -> bin 1
    EXPECT_EQ(h.binCount(0), 0u);
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(Histogram, BinCenters)
{
    Histogram h(0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 5.0);
    EXPECT_DOUBLE_EQ(h.binCenter(9), 95.0);
}

TEST(Histogram, DensityIntegratesToOne)
{
    Histogram h(0.0, 1000.0, 50);
    rpcvalet::sim::Rng rng(1);
    for (int i = 0; i < 100000; ++i)
        h.add(rng.uniformRange(0.0, 1000.0));
    double integral = 0.0;
    for (size_t i = 0; i < h.bins(); ++i)
        integral += h.density(i) * (1000.0 / 50.0);
    EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Histogram, MeanTracksInputs)
{
    Histogram h(0.0, 10.0, 5);
    h.add(2.0);
    h.add(4.0);
    h.add(6.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, FractionSumsToOne)
{
    Histogram h(0.0, 100.0, 4);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<double>(i % 100));
    double total = 0.0;
    for (size_t i = 0; i < h.bins(); ++i)
        total += h.fraction(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, AsciiPlotNonEmptyWithData)
{
    Histogram h(0.0, 100.0, 20);
    for (int i = 0; i < 100; ++i)
        h.add(50.0);
    const std::string plot = h.asciiPlot(10, 40);
    EXPECT_FALSE(plot.empty());
    EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(Histogram, AsciiPlotEmptyWithoutData)
{
    Histogram h(0.0, 100.0, 20);
    EXPECT_TRUE(h.asciiPlot().empty());
}

} // namespace
