/**
 * @file
 * Unit tests for the cluster traffic generator, using a miniature
 * in-test echo server as the node under test.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "app/synthetic_app.hh"
#include "net/fabric.hh"
#include "net/traffic_gen.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;
using net::Fabric;
using net::TrafficGenerator;
using Simulator = sim::EventDomain;
using sim::nanoseconds;

proto::MessagingDomain
tinyDomain(std::uint32_t nodes = 4, std::uint32_t slots = 2)
{
    proto::MessagingDomain d;
    d.numNodes = nodes;
    d.slotsPerNode = slots;
    d.maxMsgBytes = 1024;
    return d;
}

/**
 * Minimal node-0 stand-in: reassembles request sends, asks the app
 * for a reply, sends it back on the mirror slot, then replenishes.
 */
class EchoServer
{
  public:
    EchoServer(Simulator &sim, Fabric &fabric, app::RpcApplication &app,
               sim::Tick service)
        : sim_(sim), fabric_(fabric), app_(app), service_(service),
          rng_(1, 0xEC0)
    {
        fabric_.connect(0, [this](proto::Packet pkt) {
            onPacket(std::move(pkt));
        });
    }

    std::uint64_t served = 0;

  private:
    void
    onPacket(proto::Packet pkt)
    {
        // Reply-slot credits come back as replenishes; this bare-bones
        // server does not track its send slots, so just absorb them.
        if (pkt.hdr.op == proto::OpType::Replenish)
            return;
        ASSERT_EQ(pkt.hdr.op, proto::OpType::Send);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(pkt.hdr.src) << 32) |
            pkt.hdr.slot;
        auto &got = assembly_[key];
        got.push_back(pkt);
        if (got.size() < pkt.hdr.totalBlocks)
            return;
        const auto request = proto::reassemble(got);
        assembly_.erase(key);
        const auto src = pkt.hdr.src;
        const auto slot = pkt.hdr.slot;
        sim_.schedule(service_, [this, src, slot, request] {
            auto result = app_.handle(request, rng_);
            for (auto &p : proto::packetize(proto::OpType::Send, 0, src,
                                            slot, result.reply)) {
                fabric_.send(std::move(p));
            }
            proto::Packet cred;
            cred.hdr.op = proto::OpType::Replenish;
            cred.hdr.src = 0;
            cred.hdr.dst = src;
            cred.hdr.slot = slot;
            fabric_.send(std::move(cred));
            ++served;
        });
    }

    Simulator &sim_;
    Fabric &fabric_;
    app::RpcApplication &app_;
    sim::Tick service_;
    sim::Rng rng_;
    std::map<std::uint64_t, std::vector<proto::Packet>> assembly_;
};

struct Harness
{
    Simulator sim;
    Fabric fabric{sim, nanoseconds(50)};
    app::SyntheticApp app{sim::SyntheticKind::Fixed};
    proto::MessagingDomain domain;
    std::unique_ptr<EchoServer> server;
    std::unique_ptr<TrafficGenerator> tg;

    explicit Harness(double rate_rps, sim::Tick service,
                     std::uint32_t slots = 8)
        : domain(tinyDomain(4, slots))
    {
        server =
            std::make_unique<EchoServer>(sim, fabric, app, service);
        TrafficGenerator::Params p;
        p.arrivalRps = rate_rps;
        p.targetNode = 0;
        p.clientTurnaround = nanoseconds(50);
        p.seed = 3;
        tg = std::make_unique<TrafficGenerator>(sim, p, domain, app,
                                                fabric);
        fabric.connectDefault([this](proto::Packet pkt) {
            tg->receivePacket(std::move(pkt));
        });
    }
};

TEST(TrafficGen, RequestsFlowAndRepliesVerify)
{
    Harness h(1e6, nanoseconds(200));
    h.tg->start();
    h.sim.runUntil(sim::microseconds(2000.0));
    h.tg->halt();
    h.sim.run();
    EXPECT_GT(h.tg->requestsSent(), 1500u);
    EXPECT_EQ(h.tg->repliesReceived(), h.tg->requestsSent());
    EXPECT_EQ(h.tg->verificationFailures(), 0u);
    EXPECT_EQ(h.tg->inFlight(), 0u);
}

TEST(TrafficGen, PerSourceSlotsNeverExceeded)
{
    // With 1 slot per source and a long service time, each source has
    // at most one request in flight; excess arrivals defer.
    Harness h(5e6, nanoseconds(5000), /*slots=*/1);
    h.tg->start();
    h.sim.runUntil(sim::microseconds(500.0));
    h.tg->halt();
    h.sim.run();
    // 3 sources x 1 slot: in-flight never exceeded 3, and the heavy
    // offered load must have produced deferrals.
    EXPECT_GT(h.tg->flowControlDeferrals(), 0u);
    EXPECT_EQ(h.tg->repliesReceived(), h.tg->requestsSent());
    EXPECT_EQ(h.tg->verificationFailures(), 0u);
}

TEST(TrafficGen, DeferredRequestsEventuallyRun)
{
    Harness h(8e6, nanoseconds(1000), /*slots=*/1);
    h.tg->start();
    h.sim.runUntil(sim::microseconds(100.0));
    h.tg->halt();
    h.sim.run(); // drain: all deferred work completes
    EXPECT_EQ(h.tg->repliesReceived(), h.tg->requestsSent());
    EXPECT_EQ(h.tg->inFlight(), 0u);
    EXPECT_GT(h.tg->flowControlDeferrals(), 0u);
}

TEST(TrafficGen, SourcesAreSpreadAcrossCluster)
{
    // No echo server here: node 0 is a counting sink that swallows
    // requests (duplicate fabric registration is fatal, so the sink
    // must be the only node-0 receiver). Generous slot count: flow
    // control never binds even though nothing replies.
    Simulator simulator;
    Fabric fabric(simulator, nanoseconds(50));
    app::SyntheticApp app{sim::SyntheticKind::Fixed};
    const proto::MessagingDomain domain = tinyDomain(4, 4096);
    std::map<proto::NodeId, int> per_src;
    fabric.connect(0, [&](proto::Packet pkt) {
        if (pkt.hdr.blockIndex == 0)
            ++per_src[pkt.hdr.src];
    });
    TrafficGenerator::Params p;
    p.arrivalRps = 2e6;
    p.targetNode = 0;
    p.clientTurnaround = nanoseconds(50);
    p.seed = 3;
    TrafficGenerator tg(simulator, p, domain, app, fabric);
    tg.start();
    simulator.runUntil(sim::microseconds(3000.0));
    tg.halt();
    // 3 remote sources (nodes 1..3) should each contribute ~1/3.
    ASSERT_EQ(per_src.size(), 3u);
    for (const auto &[src, count] : per_src) {
        EXPECT_NE(src, 0u);
        EXPECT_GT(count, 1500);
    }
}

TEST(TrafficGen, HaltStopsNewRequests)
{
    Harness h(1e6, nanoseconds(100));
    h.tg->start();
    h.sim.runUntil(sim::microseconds(100.0));
    h.tg->halt();
    const auto sent = h.tg->requestsSent();
    h.sim.run();
    EXPECT_EQ(h.tg->requestsSent(), sent);
}

} // namespace
