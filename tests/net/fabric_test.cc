/**
 * @file
 * Unit tests for the inter-node fabric.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;
using net::Fabric;
using Simulator = sim::EventDomain;
using sim::Tick;
using sim::nanoseconds;

proto::Packet
packetTo(proto::NodeId dst)
{
    proto::Packet pkt;
    pkt.hdr.op = proto::OpType::Send;
    pkt.hdr.dst = dst;
    return pkt;
}

TEST(Fabric, DeliversAfterConfiguredLatency)
{
    Simulator sim;
    Fabric fabric(sim, nanoseconds(100));
    Tick delivered_at = 0;
    fabric.connect(0, [&](proto::Packet) { delivered_at = sim.now(); });
    fabric.send(packetTo(0));
    sim.run();
    EXPECT_EQ(delivered_at, nanoseconds(100));
    EXPECT_EQ(fabric.delivered(), 1u);
}

TEST(Fabric, RoutesBySinkRegistration)
{
    Simulator sim;
    Fabric fabric(sim, nanoseconds(10));
    int to_a = 0;
    int to_default = 0;
    fabric.connect(0, [&](proto::Packet) { ++to_a; });
    fabric.connectDefault([&](proto::Packet) { ++to_default; });
    fabric.send(packetTo(0));
    fabric.send(packetTo(7));
    fabric.send(packetTo(42));
    sim.run();
    EXPECT_EQ(to_a, 1);
    EXPECT_EQ(to_default, 2);
}

TEST(Fabric, PreservesPerPairOrdering)
{
    Simulator sim;
    Fabric fabric(sim, nanoseconds(10));
    std::vector<std::uint32_t> seen;
    fabric.connect(0, [&](proto::Packet pkt) {
        seen.push_back(pkt.hdr.blockIndex);
    });
    for (std::uint32_t i = 0; i < 10; ++i) {
        proto::Packet pkt = packetTo(0);
        pkt.hdr.blockIndex = i;
        fabric.send(std::move(pkt));
    }
    sim.run();
    ASSERT_EQ(seen.size(), 10u);
    for (std::uint32_t i = 0; i < 10; ++i)
        EXPECT_EQ(seen[i], i);
}

TEST(FabricDeath, DuplicateNodeRegistrationIsFatal)
{
    // connect() used to silently overwrite an existing sink, which
    // dropped the first receiver's traffic; duplicates now die loudly
    // like the registries' duplicate keys.
    Simulator sim;
    Fabric fabric(sim, nanoseconds(10));
    fabric.connect(4, [](proto::Packet) {});
    EXPECT_EXIT(fabric.connect(4, [](proto::Packet) {}),
                ::testing::ExitedWithCode(1),
                "node 4 is already connected");
}

TEST(FabricDeath, DuplicateDefaultRegistrationIsFatal)
{
    Simulator sim;
    Fabric fabric(sim, nanoseconds(10));
    fabric.connectDefault([](proto::Packet) {});
    EXPECT_EXIT(fabric.connectDefault([](proto::Packet) {}),
                ::testing::ExitedWithCode(1),
                "default sink is already connected");
}

TEST(FabricDeath, UnconnectedDestinationIsFatal)
{
    // A misaddressed packet used to trip a bare assert; it now dies
    // via sim::fatal with a message naming the source node, the
    // destination node, and the opcode — enough to identify the
    // mis-wired component in a multi-node topology.
    Simulator sim;
    Fabric fabric(sim, nanoseconds(10));
    proto::Packet pkt = packetTo(3);
    pkt.hdr.src = 9;
    fabric.send(std::move(pkt));
    EXPECT_EXIT(sim.run(), ::testing::ExitedWithCode(1),
                "send packet from node 9 addressed to unconnected "
                "node 3");
}

} // namespace
