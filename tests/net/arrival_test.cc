/**
 * @file
 * Tests for the arrival-process subsystem: registry lookup and error
 * reporting, external registration and lifecycle hooks, the poisson
 * process's bit-identity with the legacy sim::PoissonProcess, each
 * built-in's statistical contract (MMPP long-run rate, lognormal mean,
 * ramp monotonicity), and exact trace replay.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "net/arrival.hh"
#include "sim/domain.hh"

namespace {

using namespace rpcvalet;
using net::ArrivalDriver;
using net::ArrivalProcess;
using net::ArrivalRegistry;
using net::ArrivalSpec;
using Simulator = sim::EventDomain;

net::ArrivalProcessPtr
make(const std::string &spec, double rate)
{
    return ArrivalRegistry::instance().make(ArrivalSpec::parse(spec),
                                            rate);
}

/** Drain @p n gaps straight from a process (no simulator). */
std::vector<double>
drawGaps(ArrivalProcess &proc, std::size_t n, std::uint64_t seed = 1)
{
    sim::Rng rng(seed, 0x90150);
    std::vector<double> gaps;
    gaps.reserve(n);
    sim::Tick now = 0;
    proc.onStart(now);
    for (std::size_t i = 0; i < n; ++i) {
        const double gap = proc.nextInterarrivalNs(rng, now);
        gaps.push_back(gap);
        now += sim::nanoseconds(gap);
    }
    return gaps;
}

double
meanOf(const std::vector<double> &v)
{
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

TEST(ArrivalRegistry, BuiltinsAreRegistered)
{
    const auto names = ArrivalRegistry::instance().names();
    for (const char *expected : {"deterministic", "lognormal", "mmpp2",
                                 "poisson", "ramp", "trace"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                    names.end())
            << expected << " missing from registry";
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ArrivalRegistryDeath, UnknownNameIsFatalAndListsRegisteredNames)
{
    EXPECT_EXIT(make("nonesuch", 1e6), ::testing::ExitedWithCode(1),
                "unknown arrival process 'nonesuch'.*mmpp2.*poisson");
}

TEST(ArrivalRegistryDeath, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(ArrivalRegistry::instance().add(
                    "poisson",
                    [](const ArrivalSpec &, double rate) {
                        return make("deterministic", rate);
                    }),
                ::testing::ExitedWithCode(1),
                "'poisson' is already registered");
}

TEST(ArrivalRegistryDeath, NonPositiveRateIsFatal)
{
    EXPECT_EXIT(make("poisson", 0.0), ::testing::ExitedWithCode(1),
                "positive target rate");
}

TEST(ArrivalSpecParsing, RoundTripsAndRejectsMalformed)
{
    const ArrivalSpec spec =
        ArrivalSpec::parse("mmpp2:ratio=8,burst=0.2");
    EXPECT_EQ(spec.name, "mmpp2");
    EXPECT_DOUBLE_EQ(spec.doubleParam("burst", 0.0), 0.2);
    EXPECT_EQ(spec.toString(), "mmpp2:burst=0.2,ratio=8");
    EXPECT_EQ(ArrivalSpec::parse(spec.toString()), spec);
    // Default-constructed spec is the paper's Poisson generator.
    EXPECT_EQ(ArrivalSpec{}.toString(), "poisson");

    EXPECT_EXIT(ArrivalSpec::parse(""), ::testing::ExitedWithCode(1),
                "arrival spec.*empty name");
    EXPECT_EXIT(ArrivalSpec::parse("poisson:"),
                ::testing::ExitedWithCode(1), "key=value");
    EXPECT_EXIT(make("poisson:cv=2", 1e6), ::testing::ExitedWithCode(1),
                "unknown parameter 'cv'");
}

TEST(ArrivalSpecDeath, BuiltinParameterRangesAreChecked)
{
    EXPECT_EXIT(make("lognormal:cv=0", 1e6),
                ::testing::ExitedWithCode(1), "cv > 0");
    EXPECT_EXIT(make("mmpp2:burst=1.5", 1e6),
                ::testing::ExitedWithCode(1), "burst in \\(0, 1\\)");
    EXPECT_EXIT(make("mmpp2:ratio=0.5", 1e6),
                ::testing::ExitedWithCode(1), "ratio >= 1");
    EXPECT_EXIT(make("ramp:from=0", 1e6), ::testing::ExitedWithCode(1),
                "from > 0");
    EXPECT_EXIT(make("trace", 1e6), ::testing::ExitedWithCode(1),
                "trace needs file=PATH");
    EXPECT_EXIT(make("trace:file=/nonexistent/gaps.txt", 1e6),
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST(ArrivalRegistry, ExternalRegistrationAndLifecycleHooks)
{
    // Mirrors examples/custom_arrival_playground.cc: a process defined
    // in this test TU becomes reachable by name, and the driver fires
    // its lifecycle hooks.
    struct Counters
    {
        int starts = 0;
        int halts = 0;
    };
    static Counters counters;

    class FixedGap : public ArrivalProcess
    {
      public:
        double
        nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
        {
            (void)rng;
            (void)now;
            return 100.0;
        }
        void onStart(sim::Tick) override { ++counters.starts; }
        void onHalt(sim::Tick) override { ++counters.halts; }
        std::string name() const override { return "test-fixed-gap"; }
    };

    static const net::ArrivalRegistrar registrar(
        "test-fixed-gap", [](const ArrivalSpec &spec, double) {
            spec.expectKeys({});
            return std::make_unique<FixedGap>();
        });

    EXPECT_TRUE(ArrivalRegistry::instance().contains("test-fixed-gap"));

    Simulator sim;
    std::uint64_t fired = 0;
    ArrivalDriver driver(sim, make("test-fixed-gap", 1e6), 1,
                         [&fired] { ++fired; });
    EXPECT_EQ(driver.process().name(), "test-fixed-gap");
    driver.start();
    sim.runUntil(sim::nanoseconds(1000.0));
    driver.halt();
    sim.run();
    EXPECT_EQ(fired, 10u); // arrivals at 100, 200, ..., 1000 ns
    EXPECT_EQ(driver.arrivals(), fired);
    EXPECT_EQ(counters.starts, 1);
    EXPECT_EQ(counters.halts, 1);
}

TEST(PoissonArrival, BitIdenticalToLegacyPoissonProcess)
{
    // The subsystem's acceptance bar: at the same seed, the "poisson"
    // process must reproduce sim::PoissonProcess event-for-event, so
    // every pre-existing result is unchanged.
    const double rate = 5e6;
    const std::uint64_t seed = 7;
    const sim::Tick horizon = sim::microseconds(500.0);

    std::vector<sim::Tick> legacy;
    {
        Simulator sim;
        sim::PoissonProcess proc(sim, rate, seed,
                                 [&] { legacy.push_back(sim.now()); });
        proc.start();
        sim.runUntil(horizon);
        proc.halt();
        sim.run();
    }

    std::vector<sim::Tick> driven;
    {
        Simulator sim;
        ArrivalDriver driver(sim, make("poisson", rate), seed,
                             [&] { driven.push_back(sim.now()); });
        driver.start();
        sim.runUntil(horizon);
        driver.halt();
        sim.run();
    }

    ASSERT_GT(legacy.size(), 2000u);
    EXPECT_EQ(legacy, driven);
}

TEST(DeterministicArrival, ConstantGaps)
{
    auto proc = make("deterministic", 1e7); // 100 ns period
    const auto gaps = drawGaps(*proc, 50);
    for (const double gap : gaps)
        EXPECT_DOUBLE_EQ(gap, 100.0);
}

TEST(LogNormalArrival, MeanGapMatchesConfiguredRate)
{
    auto proc = make("lognormal:cv=2", 1e6); // mean gap 1000 ns
    const auto gaps = drawGaps(*proc, 200000);
    EXPECT_NEAR(meanOf(gaps), 1000.0, 50.0);
    // cv=2: the sample standard deviation must be roughly twice the
    // mean (loose bound; heavy right tail converges slowly).
    double var = 0.0;
    const double mean = meanOf(gaps);
    for (const double gap : gaps)
        var += (gap - mean) * (gap - mean);
    var /= static_cast<double>(gaps.size());
    EXPECT_NEAR(std::sqrt(var) / mean, 2.0, 0.4);
}

TEST(Mmpp2Arrival, LongRunRateMatchesConfiguredRate)
{
    // Many dwell cycles: 200k arrivals at 2 Mrps is ~100 ms, i.e.
    // ~1000 cycles of the (20 us burst, 180 us base) process.
    auto proc = make("mmpp2:burst=0.1,ratio=10,dwell=20us", 2e6);
    const auto gaps = drawGaps(*proc, 200000);
    const double measured_rate = 1e9 / meanOf(gaps); // per second
    EXPECT_NEAR(measured_rate / 2e6, 1.0, 0.08);
}

TEST(Mmpp2Arrival, BurstsAreBurstier)
{
    // Same average rate: the MMPP gap sequence must have a higher
    // squared coefficient of variation than Poisson's CV^2 = 1.
    auto proc = make("mmpp2:burst=0.1,ratio=10,dwell=20us", 2e6);
    const auto gaps = drawGaps(*proc, 200000);
    const double mean = meanOf(gaps);
    double var = 0.0;
    for (const double gap : gaps)
        var += (gap - mean) * (gap - mean);
    var /= static_cast<double>(gaps.size());
    EXPECT_GT(var / (mean * mean), 1.5);
}

TEST(RampArrival, RateRampsMonotonically)
{
    // from=0.25 to=4 over 1 ms: early gaps must average much longer
    // than late gaps, bracketing the configured endpoint rates.
    auto proc = make("ramp:from=0.25,to=4,over=1ms", 1e7);
    sim::Rng rng(3, 0x90150);
    sim::Tick now = 0;
    proc->onStart(now);
    double early_sum = 0.0, late_sum = 0.0;
    int early_n = 0, late_n = 0;
    while (now < sim::microseconds(1000.0)) {
        const double gap = proc->nextInterarrivalNs(rng, now);
        if (now < sim::microseconds(100.0)) {
            early_sum += gap;
            ++early_n;
        } else if (now >= sim::microseconds(900.0)) {
            late_sum += gap;
            ++late_n;
        }
        now += sim::nanoseconds(gap);
    }
    ASSERT_GT(early_n, 100);
    ASSERT_GT(late_n, 100);
    const double early_mean = early_sum / early_n;
    const double late_mean = late_sum / late_n;
    // Endpoint means: 400 ns at 0.25x, 25 ns at 4x (of the 100 ns
    // base gap); the first/last deciles sit near them.
    EXPECT_GT(early_mean, 4.0 * late_mean);
    // Past the ramp the rate holds at `to`.
    const auto held = proc->nextInterarrivalNs(rng, sim::microseconds(5000.0));
    EXPECT_LT(held, 1000.0);
}

TEST(RampArrival, FlatRampIsBitIdenticalToPoisson)
{
    // from=to=1 degenerates to a fixed-rate Poisson process drawing
    // the same exponentials.
    auto ramp = make("ramp:from=1,to=1", 3e6);
    auto poisson = make("poisson", 3e6);
    EXPECT_EQ(drawGaps(*ramp, 5000, 11), drawGaps(*poisson, 5000, 11));
}

class TraceArrivalTest : public ::testing::Test
{
  protected:
    std::string
    writeTrace(const std::string &content)
    {
        const std::string path =
            ::testing::TempDir() + "arrival_trace_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name() +
            ".txt";
        std::ofstream out(path);
        out << content;
        return path;
    }
};

TEST_F(TraceArrivalTest, RawReplayIsExactAndCyclic)
{
    const std::string path =
        writeTrace("# recorded gaps in ns\n100\n250.5\n50\n");
    auto proc = make("trace:file=" + path + ",raw=1", 1e6);
    sim::Rng rng(1);
    proc->onStart(0);
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 100.0);
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 250.5);
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 50.0);
    // Wraps around to the top.
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 100.0);
    // onStart rewinds, so every run replays the same sequence.
    proc->onStart(0);
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 100.0);
}

TEST_F(TraceArrivalTest, DriverReplaysExactArrivalTimes)
{
    const std::string path = writeTrace("100\n250.5\n50\n");
    Simulator sim;
    std::vector<sim::Tick> stamps;
    ArrivalDriver driver(sim, make("trace:file=" + path + ",raw=1", 1e6),
                         1, [&] { stamps.push_back(sim.now()); });
    driver.start();
    sim.runUntil(sim::nanoseconds(500.0));
    driver.halt();
    sim.run();
    const std::vector<sim::Tick> expected = {
        sim::nanoseconds(100.0),
        sim::nanoseconds(100.0) + sim::nanoseconds(250.5),
        sim::nanoseconds(100.0) + sim::nanoseconds(250.5) +
            sim::nanoseconds(50.0),
    };
    EXPECT_EQ(stamps, expected);
}

TEST_F(TraceArrivalTest, NormalizesMeanRateToConfiguredRate)
{
    // Mean recorded gap is 200 ns; at 10 Mrps (100 ns mean) the shape
    // is kept but every gap is halved.
    const std::string path = writeTrace("100\n300\n");
    auto proc = make("trace:file=" + path, 1e7);
    sim::Rng rng(1);
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 50.0);
    EXPECT_DOUBLE_EQ(proc->nextInterarrivalNs(rng, 0), 150.0);
}

TEST_F(TraceArrivalTest, MalformedTracesAreFatal)
{
    const std::string empty = writeTrace("# only comments\n\n");
    EXPECT_EXIT(make("trace:file=" + empty, 1e6),
                ::testing::ExitedWithCode(1),
                "no interarrival samples");
    const std::string garbage = writeTrace("100\nbogus\n");
    EXPECT_EXIT(make("trace:file=" + garbage, 1e6),
                ::testing::ExitedWithCode(1), "bad interarrival line");
    const std::string negative = writeTrace("100\n-5\n");
    EXPECT_EXIT(make("trace:file=" + negative, 1e6),
                ::testing::ExitedWithCode(1), "bad interarrival line");
    const std::string zeros = writeTrace("0\n0\n");
    EXPECT_EXIT(make("trace:file=" + zeros, 1e6),
                ::testing::ExitedWithCode(1),
                "mean interarrival must be positive");
}

} // namespace
