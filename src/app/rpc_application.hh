/**
 * @file
 * Application interface for the RPC tier under test.
 *
 * An RpcApplication plays both sides of the §5 microbenchmark:
 *  - client side (run by the traffic generator): makeRequest() builds
 *    the wire bytes of the next RPC, verifyReply() checks the answer;
 *  - server side (run by a modeled core): handle() executes the
 *    request against real in-memory state and reports the modeled
 *    processing time X that occupies the core (step ii of §5's loop).
 *
 * Processing time is drawn from the application's calibrated
 * distribution (Fig. 6) rather than derived from host cycles, so
 * results are machine-independent and match the paper's methodology of
 * replaying measured distributions.
 */

#ifndef RPCVALET_APP_RPC_APPLICATION_HH
#define RPCVALET_APP_RPC_APPLICATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace rpcvalet::app {

/**
 * One request class of a workload — the unit of per-class tail
 * accounting. A workload declares its classes once (requestClasses());
 * every request carries its class id on the wire (the byte after the
 * opcode) and every HandleResult echoes it, so the serving node can
 * keep one latency recorder per class. Masstree, for example, declares
 * a latency-critical "get" class and a non-critical "scan" class —
 * previously scan latency was simply discarded.
 */
struct RequestClass
{
    /** Class name for reports ("get", "scan", "herd", ...). */
    std::string name;
    /**
     * Whether this class counts toward the headline tail metric.
     * Masstree's long scans are served but not latency-critical (§6.1).
     */
    bool latencyCritical = true;
    /**
     * Declared per-class p99 SLO bound, ns (0 = none declared). The
     * built-ins use the paper's 10x mean class processing time —
     * e.g. Masstree gets declare §6.1's 12.5 us. Per-class SLO
     * attainment in RunStats is computed against this bound.
     */
    double sloNs = 0.0;
};

/** Result of serving one RPC. */
struct HandleResult
{
    /** Core-occupying processing time in ns (the X of §5 step ii). */
    double processingNs = 0.0;
    /** Reply bytes to send back (step iii's payload). */
    std::vector<std::uint8_t> reply;
    /**
     * Whether this RPC counts toward tail-latency SLO accounting.
     * Masstree's long scans are served but not latency-critical (§6.1).
     */
    bool latencyCritical = true;
    /**
     * Which of the workload's requestClasses() this RPC belonged to;
     * must index into that vector. Single-class workloads leave it 0.
     */
    std::uint8_t classId = 0;
    /**
     * Nested RPCs this handler fans out to other cluster nodes (the
     * mRPC/Dagger microservice setting): encoded request byte strings,
     * issued after the handler's own processing time elapses. The
     * parent's reply is deferred until every nested RPC completes, so
     * its measured latency composes end to end across tiers; the
     * parent's core is released while the chain is outstanding (the
     * reply continuation is NI-driven). Empty for ordinary RPCs — the
     * default path is bit-identical with this member unused.
     */
    std::vector<std::vector<std::uint8_t>> nested;
};

/** Interface every workload implements. */
class RpcApplication
{
  public:
    virtual ~RpcApplication() = default;

    /** Client side: produce the next request's wire bytes. */
    virtual std::vector<std::uint8_t> makeRequest(sim::Rng &client_rng) = 0;

    /** Server side: execute a request, produce timing + reply. */
    virtual HandleResult handle(const std::vector<std::uint8_t> &request,
                                sim::Rng &server_rng) = 0;

    /** Client side: check a reply against its request. */
    virtual bool
    verifyReply(const std::vector<std::uint8_t> &request,
                const std::vector<std::uint8_t> &reply) const = 0;

    /** Mean processing time across all request types, ns. */
    virtual double meanProcessingNs() const = 0;

    /** Mean processing time of latency-critical requests only, ns. */
    virtual double
    latencyCriticalMeanNs() const
    {
        return meanProcessingNs();
    }

    /**
     * Expected server-side RPCs per client arrival, >= 1. Chained
     * workloads fan each arrival out into nested RPCs (a 2-tier chain
     * with fanout 2 serves 3 RPCs per arrival), which
     * core::estimateCapacityRps divides into the node's RPC capacity
     * when placing load grids. Single-hop workloads keep the default.
     */
    virtual double requestsPerArrival() const { return 1.0; }

    /**
     * The workload's request classes, indexed by the class id carried
     * on the wire and echoed through HandleResult.classId. Must be
     * non-empty and stable for the workload's lifetime. The default is
     * a single latency-critical class named after the workload.
     */
    virtual std::vector<RequestClass>
    requestClasses() const
    {
        return {RequestClass{name(), true, 0.0}};
    }

    /** Workload name for reports. */
    virtual std::string name() const = 0;
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_RPC_APPLICATION_HH
