#include "app/workload.hh"

#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::app {

// Defined in workloads.cc. Calling it from instance() forces that
// archive member — whose only entry points are its static registrars —
// into every binary that uses the registry.
void linkBuiltinWorkloads();

WorkloadSpec::WorkloadSpec()
{
    what = "workload";
    name = "herd";
}

WorkloadSpec::WorkloadSpec(const char *text) : WorkloadSpec(parse(text))
{}

WorkloadSpec::WorkloadSpec(const std::string &text)
    : WorkloadSpec(parse(text))
{}

WorkloadSpec
WorkloadSpec::parse(const std::string &text)
{
    WorkloadSpec spec;
    static_cast<sim::Spec &>(spec) = sim::Spec::parse(text, "workload");
    return spec;
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    linkBuiltinWorkloads();
    return registry;
}

void
WorkloadRegistry::add(const std::string &name, Factory factory)
{
    if (name.empty())
        sim::fatal("cannot register a workload with an empty name");
    if (factory == nullptr)
        sim::fatal("workload '" + name + "' has a null factory");
    if (!factories_.emplace(name, std::move(factory)).second) {
        sim::fatal("workload '" + name +
                   "' is already registered (duplicate registration)");
    }
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return factories_.count(name) > 0;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        out.push_back(name); // std::map iterates in sorted order
    }
    return out;
}

std::string
WorkloadRegistry::namesJoined() const
{
    std::string out;
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

RpcApplicationPtr
WorkloadRegistry::make(const WorkloadSpec &spec) const
{
    const auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
        sim::fatal("unknown workload '" + spec.name +
                   "' (registered workloads: " + namesJoined() + ")");
    }
    auto app = it->second(spec);
    if (app == nullptr) {
        sim::panic("factory for workload '" + spec.name +
                   "' returned null");
    }
    return app;
}

WorkloadRegistrar::WorkloadRegistrar(const std::string &name,
                                     WorkloadRegistry::Factory factory)
{
    WorkloadRegistry::instance().add(name, std::move(factory));
}

} // namespace rpcvalet::app
