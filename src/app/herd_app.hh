/**
 * @file
 * HERD-like key-value tier (§5): a real hash-table-backed KV store
 * serving a 95/5% read/write mix over a uniform key popularity, with
 * processing times following the Fig. 6b profile (mean ~330 ns).
 */

#ifndef RPCVALET_APP_HERD_APP_HH
#define RPCVALET_APP_HERD_APP_HH

#include <memory>

#include "app/hash_table.hh"
#include "app/rpc_application.hh"
#include "sim/distributions.hh"

namespace rpcvalet::app {

/** HERD-style KV store over the custom HashTable. */
class HerdApp : public RpcApplication
{
  public:
    struct Params
    {
        /** Preloaded key count (paper: 4 GB dataset; scaled down). */
        std::uint64_t numKeys = 65536;
        /** Value size in bytes (HERD-style small objects). */
        std::uint32_t valueBytes = 32;
        /** Fraction of GET requests (§5: 95/5% read/write). */
        double readFraction = 0.95;
    };

    explicit HerdApp(const Params &params);
    HerdApp() : HerdApp(Params{}) {}

    std::vector<std::uint8_t> makeRequest(sim::Rng &client_rng) override;
    HandleResult handle(const std::vector<std::uint8_t> &request,
                        sim::Rng &server_rng) override;
    bool verifyReply(const std::vector<std::uint8_t> &request,
                     const std::vector<std::uint8_t> &reply) const override;
    double meanProcessingNs() const override;
    std::vector<RequestClass> requestClasses() const override;
    std::string name() const override;

    /** Deterministic value bytes for @p key (load + verification). */
    std::vector<std::uint8_t> valueForKey(std::uint64_t key) const;

    /** Access to the backing store (tests). */
    const HashTable &table() const { return table_; }

  private:
    Params params_;
    HashTable table_;
    sim::DistributionPtr processing_;
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_HERD_APP_HH
