/**
 * @file
 * RPC wire format shared by clients (traffic generator) and servers.
 *
 * Requests and replies are real byte strings that travel through the
 * simulated protocol (packetized into 64 B blocks, written into
 * receive buffers, parsed by the serving core), so application results
 * are verifiable end to end.
 *
 * Request:  [op:u8][class:u8][key:u64le][count:u32le][vlen:u32le][value...]
 * Reply:    [status:u8][vlen:u32le][value...]
 *
 * The class byte tags which request class of the generating workload
 * this RPC belongs to (see app::RequestClass): the client stamps it in
 * makeRequest, composite workloads ("mix") remap it into their global
 * class table, and the serving node uses the id echoed through
 * HandleResult for per-class tail accounting. Replies carry no class —
 * the server reports it, so replies stay byte-identical across
 * workload compositions.
 */

#ifndef RPCVALET_APP_WIRE_FORMAT_HH
#define RPCVALET_APP_WIRE_FORMAT_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace rpcvalet::app {

/** RPC operation codes. */
enum class RpcOp : std::uint8_t
{
    Get = 0,
    Put = 1,
    Del = 2,
    Scan = 3,
    Echo = 4,
};

/** Reply status codes. */
enum class RpcStatus : std::uint8_t
{
    Ok = 0,
    NotFound = 1,
    Error = 2,
};

/** Decoded request. */
struct RpcRequest
{
    RpcOp op = RpcOp::Get;
    /** Request-class id within the generating workload (see
     *  app::RequestClass); single-class workloads leave it 0. */
    std::uint8_t classId = 0;
    std::uint64_t key = 0;
    /** Scan length for Scan requests. */
    std::uint32_t count = 0;
    std::vector<std::uint8_t> value;
};

/** Decoded reply. */
struct RpcReply
{
    RpcStatus status = RpcStatus::Ok;
    std::vector<std::uint8_t> value;
};

/** Fixed header sizes. */
constexpr std::size_t requestHeaderBytes = 1 + 1 + 8 + 4 + 4;
constexpr std::size_t replyHeaderBytes = 1 + 4;

/** Byte offset of the request-class id within an encoded request. */
constexpr std::size_t requestClassOffset = 1;

/** Byte offset of the request key within an encoded request. */
constexpr std::size_t requestKeyOffset = 2;

/**
 * Read the request key straight off the wire bytes without a full
 * decode (cluster routers hash it on every request). Returns 0 for
 * requests too short to carry a key.
 */
std::uint64_t requestKeyOf(const std::vector<std::uint8_t> &request);

/** Serialize a request. */
std::vector<std::uint8_t> encodeRequest(const RpcRequest &req);

/** Parse a request; nullopt on malformed input. */
std::optional<RpcRequest>
decodeRequest(const std::vector<std::uint8_t> &bytes);

/** Serialize a reply. */
std::vector<std::uint8_t> encodeReply(const RpcReply &reply);

/** Parse a reply; nullopt on malformed input. */
std::optional<RpcReply>
decodeReply(const std::vector<std::uint8_t> &bytes);

} // namespace rpcvalet::app

#endif // RPCVALET_APP_WIRE_FORMAT_HH
