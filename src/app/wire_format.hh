/**
 * @file
 * RPC wire format shared by clients (traffic generator) and servers.
 *
 * Requests and replies are real byte strings that travel through the
 * simulated protocol (packetized into 64 B blocks, written into
 * receive buffers, parsed by the serving core), so application results
 * are verifiable end to end.
 *
 * Request:  [op:u8][key:u64le][count:u32le][vlen:u32le][value...]
 * Reply:    [status:u8][vlen:u32le][value...]
 */

#ifndef RPCVALET_APP_WIRE_FORMAT_HH
#define RPCVALET_APP_WIRE_FORMAT_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace rpcvalet::app {

/** RPC operation codes. */
enum class RpcOp : std::uint8_t
{
    Get = 0,
    Put = 1,
    Del = 2,
    Scan = 3,
    Echo = 4,
};

/** Reply status codes. */
enum class RpcStatus : std::uint8_t
{
    Ok = 0,
    NotFound = 1,
    Error = 2,
};

/** Decoded request. */
struct RpcRequest
{
    RpcOp op = RpcOp::Get;
    std::uint64_t key = 0;
    /** Scan length for Scan requests. */
    std::uint32_t count = 0;
    std::vector<std::uint8_t> value;
};

/** Decoded reply. */
struct RpcReply
{
    RpcStatus status = RpcStatus::Ok;
    std::vector<std::uint8_t> value;
};

/** Fixed header sizes. */
constexpr std::size_t requestHeaderBytes = 1 + 8 + 4 + 4;
constexpr std::size_t replyHeaderBytes = 1 + 4;

/** Serialize a request. */
std::vector<std::uint8_t> encodeRequest(const RpcRequest &req);

/** Parse a request; nullopt on malformed input. */
std::optional<RpcRequest>
decodeRequest(const std::vector<std::uint8_t> &bytes);

/** Serialize a reply. */
std::vector<std::uint8_t> encodeReply(const RpcReply &reply);

/** Parse a reply; nullopt on malformed input. */
std::optional<RpcReply>
decodeReply(const std::vector<std::uint8_t> &bytes);

} // namespace rpcvalet::app

#endif // RPCVALET_APP_WIRE_FORMAT_HH
