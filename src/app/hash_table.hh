/**
 * @file
 * Separate-chaining hash table: the in-memory store behind the
 * HERD-like key-value tier (§5 evaluates HERD [27], a KV store built
 * on one-sided RDMA; the data structure itself is a bucketed hash
 * table). Implemented from scratch so the substrate is real, testable
 * code rather than a std::unordered_map alias.
 */

#ifndef RPCVALET_APP_HASH_TABLE_HH
#define RPCVALET_APP_HASH_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace rpcvalet::app {

/** Fixed-key (u64) hash table with byte-vector values. */
class HashTable
{
  public:
    /** @param initial_buckets Starting bucket count (rounded to pow2). */
    explicit HashTable(std::size_t initial_buckets = 1024);

    /** Insert or overwrite; returns true if the key was new. */
    bool put(std::uint64_t key, std::vector<std::uint8_t> value);

    /** Lookup; nullopt if absent. */
    std::optional<std::vector<std::uint8_t>> get(std::uint64_t key) const;

    /** Remove; returns true if the key existed. */
    bool erase(std::uint64_t key);

    /** Whether the key is present. */
    bool contains(std::uint64_t key) const;

    /** Number of stored keys. */
    std::size_t size() const { return size_; }

    /** Current bucket count. */
    std::size_t buckets() const { return buckets_.size(); }

    /** Entries per bucket on average. */
    double loadFactor() const;

    /** Length of the longest chain (diagnostics / tests). */
    std::size_t maxChainLength() const;

  private:
    struct Node
    {
        std::uint64_t key;
        std::vector<std::uint8_t> value;
        Node *next;
    };

    std::size_t bucketFor(std::uint64_t key, std::size_t nbuckets) const;
    void maybeGrow();
    static std::uint64_t mix(std::uint64_t key);

    std::vector<Node *> buckets_;
    std::size_t size_ = 0;

  public:
    HashTable(const HashTable &) = delete;
    HashTable &operator=(const HashTable &) = delete;
    ~HashTable();
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_HASH_TABLE_HH
