/**
 * @file
 * Calibrated RPC processing-time profiles (Fig. 6).
 *
 * The paper collected these distributions from real HERD and Masstree
 * runs on a Xeon server; that hardware is unavailable here, so each
 * profile is a synthetic model matched to the published shape and
 * moments (see DESIGN.md §2 for the substitution argument):
 *
 *  - HERD (Fig. 6b): unimodal, right-skewed, support ~[0, 1 us],
 *    mean 330 ns  ->  log-normal(mean 330, sigma 0.45) clamped to
 *    [80, 1000] ns.
 *  - Masstree gets (Fig. 6c): mean 1.25 us, spread ~0.5-4 us  ->
 *    log-normal(mean 1250, sigma 0.55) clamped to [200, 8000] ns.
 *  - Masstree scans (§5): 60-120 us  ->  uniform(60000, 120000) ns.
 */

#ifndef RPCVALET_APP_SERVICE_PROFILES_HH
#define RPCVALET_APP_SERVICE_PROFILES_HH

#include "sim/distributions.hh"

namespace rpcvalet::app {

/** HERD RPC processing-time model (Fig. 6b; mean ~330 ns). */
sim::DistributionPtr makeHerdProfile();

/** Masstree get processing-time model (Fig. 6c; mean ~1.25 us). */
sim::DistributionPtr makeMasstreeGetProfile();

/** Masstree ordered-scan runtime model (§5: 60-120 us). */
sim::DistributionPtr makeMasstreeScanProfile();

} // namespace rpcvalet::app

#endif // RPCVALET_APP_SERVICE_PROFILES_HH
