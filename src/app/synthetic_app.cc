#include "app/synthetic_app.hh"

#include "app/wire_format.hh"
#include "sim/logging.hh"

namespace rpcvalet::app {

SyntheticApp::SyntheticApp(sim::SyntheticKind kind)
    : processing_(sim::makeSynthetic(kind)),
      label_("synthetic-" + sim::syntheticKindName(kind))
{
}

SyntheticApp::SyntheticApp(sim::DistributionPtr processing,
                           std::string label)
    : processing_(std::move(processing)), label_(std::move(label))
{
    RV_ASSERT(processing_ != nullptr, "processing distribution missing");
}

void
SyntheticApp::setRequestPaddingBytes(std::uint32_t bytes)
{
    requestPadding_ = bytes;
}

std::vector<std::uint8_t>
SyntheticApp::makeRequest(sim::Rng &client_rng)
{
    (void)client_rng;
    RpcRequest req;
    req.op = RpcOp::Echo;
    req.key = nextMarker_++;
    // Default padding keeps a request within one cache block; larger
    // paddings exercise multi-packet sends and rendezvous pulls.
    req.value.assign(requestPadding_,
                     static_cast<std::uint8_t>(req.key & 0xff));
    return encodeRequest(req);
}

HandleResult
SyntheticApp::handle(const std::vector<std::uint8_t> &request,
                     sim::Rng &server_rng)
{
    const auto req = decodeRequest(request);
    HandleResult result;
    result.processingNs = processing_->sample(server_rng);

    RpcReply reply;
    if (!req) {
        reply.status = RpcStatus::Error;
    } else {
        reply.status = RpcStatus::Ok;
        // §5 step iii: a 512 B reply. Echo the request marker in the
        // leading bytes so the client can verify the round trip.
        reply.value.assign(replyBytes - replyHeaderBytes, 0);
        for (int i = 0; i < 8; ++i) {
            reply.value[static_cast<size_t>(i)] =
                static_cast<std::uint8_t>((req->key >> (8 * i)) & 0xff);
        }
    }
    result.reply = encodeReply(reply);
    return result;
}

bool
SyntheticApp::verifyReply(const std::vector<std::uint8_t> &request,
                          const std::vector<std::uint8_t> &reply) const
{
    const auto req = decodeRequest(request);
    const auto rep = decodeReply(reply);
    if (!req || !rep || rep->status != RpcStatus::Ok)
        return false;
    if (reply.size() != replyBytes)
        return false;
    std::uint64_t marker = 0;
    for (int i = 0; i < 8; ++i) {
        marker |= static_cast<std::uint64_t>(
                      rep->value[static_cast<size_t>(i)])
                  << (8 * i);
    }
    return marker == req->key;
}

double
SyntheticApp::meanProcessingNs() const
{
    return processing_->mean();
}

std::vector<RequestClass>
SyntheticApp::requestClasses() const
{
    return {RequestClass{label_, true, 10.0 * processing_->mean()}};
}

std::string
SyntheticApp::name() const
{
    return label_;
}

} // namespace rpcvalet::app
