#include "app/service_profiles.hh"

namespace rpcvalet::app {

sim::DistributionPtr
makeHerdProfile()
{
    auto body = std::make_unique<sim::LogNormalDist>(
        sim::LogNormalDist::fromMeanSigma(330.0, 0.45));
    return std::make_unique<sim::ClampedDist>(80.0, 1000.0,
                                              std::move(body));
}

sim::DistributionPtr
makeMasstreeGetProfile()
{
    auto body = std::make_unique<sim::LogNormalDist>(
        sim::LogNormalDist::fromMeanSigma(1250.0, 0.55));
    return std::make_unique<sim::ClampedDist>(200.0, 8000.0,
                                              std::move(body));
}

sim::DistributionPtr
makeMasstreeScanProfile()
{
    return std::make_unique<sim::UniformDist>(60000.0, 120000.0);
}

} // namespace rpcvalet::app
