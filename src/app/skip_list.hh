/**
 * @file
 * Ordered skip list: the in-memory store behind the Masstree-like
 * tier. The paper motivates NI occupancy feedback with exactly this
 * structure (§3.2 discusses Redis's skip-list-backed sorted sets) and
 * evaluates Masstree's ordered scans (§5); a skip list gives us real
 * O(log n) point ops plus ordered range scans.
 */

#ifndef RPCVALET_APP_SKIP_LIST_HH
#define RPCVALET_APP_SKIP_LIST_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/rng.hh"

namespace rpcvalet::app {

/** Ordered u64 -> byte-vector map with range scans. */
class SkipList
{
  public:
    /** @param seed Seed for the level-coin RNG (deterministic shape). */
    explicit SkipList(std::uint64_t seed = 0x5EED);

    SkipList(const SkipList &) = delete;
    SkipList &operator=(const SkipList &) = delete;
    ~SkipList();

    /** Insert or overwrite; returns true if the key was new. */
    bool insert(std::uint64_t key, std::vector<std::uint8_t> value);

    /** Point lookup. */
    std::optional<std::vector<std::uint8_t>> find(std::uint64_t key) const;

    /** Remove; returns true if the key existed. */
    bool erase(std::uint64_t key);

    /**
     * Ordered scan: up to @p count consecutive entries with
     * key >= @p start, ascending (Masstree's ordered scan, §5).
     */
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
    scan(std::uint64_t start, std::size_t count) const;

    /** Number of stored keys. */
    std::size_t size() const { return size_; }

    /** Current tower height (diagnostics). */
    int level() const { return level_; }

    /** Smallest key, if any. */
    std::optional<std::uint64_t> minKey() const;

  private:
    static constexpr int maxLevel = 20;

    struct Node
    {
        std::uint64_t key;
        std::vector<std::uint8_t> value;
        std::vector<Node *> forward;
    };

    int randomLevel();

    Node *head_;
    int level_ = 1;
    std::size_t size_ = 0;
    mutable sim::Rng rng_;
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_SKIP_LIST_HH
