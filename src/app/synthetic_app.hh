/**
 * @file
 * The §5 microbenchmark workload: echo RPCs whose processing time
 * follows one of the four synthetic distributions, replied to with a
 * 512 B payload send.
 */

#ifndef RPCVALET_APP_SYNTHETIC_APP_HH
#define RPCVALET_APP_SYNTHETIC_APP_HH

#include <memory>

#include "app/rpc_application.hh"
#include "sim/distributions.hh"

namespace rpcvalet::app {

/** Echo workload with configurable processing-time distribution. */
class SyntheticApp : public RpcApplication
{
  public:
    /** Total reply message size (§5: 512 B payload send). */
    static constexpr std::uint32_t replyBytes = 512;

    /** Build with one of the §5 distributions. */
    explicit SyntheticApp(sim::SyntheticKind kind);

    /** Build with an arbitrary processing-time distribution. */
    explicit SyntheticApp(sim::DistributionPtr processing,
                          std::string label);

    /**
     * Override the request's padding size (default keeps requests to
     * one cache block). Sizes beyond the messaging domain's
     * maxMsgBytes exercise the rendezvous path.
     */
    void setRequestPaddingBytes(std::uint32_t bytes);

    std::vector<std::uint8_t> makeRequest(sim::Rng &client_rng) override;
    HandleResult handle(const std::vector<std::uint8_t> &request,
                        sim::Rng &server_rng) override;
    bool verifyReply(const std::vector<std::uint8_t> &request,
                     const std::vector<std::uint8_t> &reply) const override;
    double meanProcessingNs() const override;
    std::vector<RequestClass> requestClasses() const override;
    std::string name() const override;

  private:
    sim::DistributionPtr processing_;
    std::string label_;
    std::uint64_t nextMarker_ = 1;
    std::uint32_t requestPadding_ = 24;
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_SYNTHETIC_APP_HH
