/**
 * @file
 * Spec-driven workload selection.
 *
 * The application layer was the last subsystem still wired by hand:
 * policies ("jbsq:d=2") and arrivals ("mmpp2:burst=0.1") are resolved
 * through string-keyed registries, while workloads were concrete
 * classes passed by reference. This subsystem completes the picture,
 * mirroring the policy and arrival architecture:
 *
 *  - WorkloadSpec      "name:key=value,..." (sim::Spec with workload
 *                      diagnostics), e.g. "masstree:scan_ratio=0.02"
 *  - WorkloadRegistry  process-wide name -> factory table; workloads
 *                      self-register via WorkloadRegistrar, including
 *                      from outside src/ (see
 *                      examples/custom_workload_playground.cc).
 *                      Lookups are runtime-only (from main onward), as
 *                      with the other registries: a make() call during
 *                      another translation unit's static
 *                      initialization may run before the built-ins
 *                      have registered
 *
 * Built-ins (src/app/workloads.cc):
 *   "herd" (default; §5's HERD-like KV tier), "masstree:scan_ratio="
 *   (ordered store with interfering scans), "masstree-get" /
 *   "masstree-scan" (the pure classes, mix building blocks),
 *   "synthetic:dist=fixed|uniform|exponential|gev[,padding=]" (§5's
 *   echo microbenchmark), "chain:tiers=,fanout=,root_ns=,leaf_ns="
 *   (microservice chain whose handlers fan out nested RPCs per tier),
 *   and the composite "mix:CLASS=WEIGHT,..."
 *   which blends any registered workloads with per-request class tags
 *   (e.g. "mix:masstree-get=0.998,masstree-scan=0.002").
 */

#ifndef RPCVALET_APP_WORKLOAD_HH
#define RPCVALET_APP_WORKLOAD_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/rpc_application.hh"
#include "sim/spec.hh"

namespace rpcvalet::app {

/** A workload selection: registry name plus parameters. */
struct WorkloadSpec : public sim::Spec
{
    /** Default workload: the §5 HERD-like KV tier. */
    WorkloadSpec();

    /** Implicit: parse a spec string (fatal on malformed input). */
    WorkloadSpec(const char *text);
    WorkloadSpec(const std::string &text);

    /** Parse "name" or "name:k=v,k=v" (see sim::Spec::parse). */
    static WorkloadSpec parse(const std::string &text);
};

using RpcApplicationPtr = std::unique_ptr<RpcApplication>;

/** Process-wide name -> factory table for workloads. */
class WorkloadRegistry
{
  public:
    /** Builds a workload instance from its (validated) spec. */
    using Factory =
        std::function<RpcApplicationPtr(const WorkloadSpec &)>;

    /** The process-wide registry (created on first use). */
    static WorkloadRegistry &instance();

    /** Register @p factory under @p name; duplicate names are fatal. */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** Sorted names joined with ", " (for error messages and help). */
    std::string namesJoined() const;

    /**
     * Instantiate the workload @p spec names. An unregistered name is
     * fatal, with the message listing every registered name; so is a
     * factory-declared invalid parameter (each factory expectKeys()s
     * its spec).
     */
    RpcApplicationPtr make(const WorkloadSpec &spec) const;

  private:
    WorkloadRegistry() = default;

    std::map<std::string, Factory> factories_;
};

/** Registers a factory at static-initialization time. */
struct WorkloadRegistrar
{
    WorkloadRegistrar(const std::string &name,
                      WorkloadRegistry::Factory factory);
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_WORKLOAD_HH
