#include "app/herd_app.hh"

#include "app/service_profiles.hh"
#include "app/wire_format.hh"
#include "sim/logging.hh"

namespace rpcvalet::app {

HerdApp::HerdApp(const Params &params)
    : params_(params), table_(params.numKeys * 2),
      processing_(makeHerdProfile())
{
    RV_ASSERT(params_.numKeys > 0, "HERD needs at least one key");
    RV_ASSERT(params_.readFraction >= 0.0 && params_.readFraction <= 1.0,
              "read fraction must be a probability");
    for (std::uint64_t k = 0; k < params_.numKeys; ++k)
        table_.put(k, valueForKey(k));
}

std::vector<std::uint8_t>
HerdApp::valueForKey(std::uint64_t key) const
{
    // Deterministic pattern so both client and server can recompute
    // it: byte i of key k's value is (k * 131 + i) & 0xff.
    std::vector<std::uint8_t> value(params_.valueBytes);
    for (std::uint32_t i = 0; i < params_.valueBytes; ++i) {
        value[i] =
            static_cast<std::uint8_t>((key * 131 + i) & 0xff);
    }
    return value;
}

std::vector<std::uint8_t>
HerdApp::makeRequest(sim::Rng &client_rng)
{
    RpcRequest req;
    req.key = client_rng.uniformInt(0, params_.numKeys - 1);
    if (client_rng.uniform() < params_.readFraction) {
        req.op = RpcOp::Get;
    } else {
        req.op = RpcOp::Put;
        // PUTs rewrite the canonical value, so GET verification stays
        // valid regardless of interleaving.
        req.value = valueForKey(req.key);
    }
    return encodeRequest(req);
}

HandleResult
HerdApp::handle(const std::vector<std::uint8_t> &request,
                sim::Rng &server_rng)
{
    HandleResult result;
    result.processingNs = processing_->sample(server_rng);

    const auto req = decodeRequest(request);
    RpcReply reply;
    if (!req) {
        reply.status = RpcStatus::Error;
    } else {
        switch (req->op) {
          case RpcOp::Get: {
            auto value = table_.get(req->key);
            if (value) {
                reply.status = RpcStatus::Ok;
                reply.value = std::move(*value);
            } else {
                reply.status = RpcStatus::NotFound;
            }
            break;
          }
          case RpcOp::Put:
            table_.put(req->key, req->value);
            reply.status = RpcStatus::Ok;
            break;
          case RpcOp::Del:
            reply.status = table_.erase(req->key) ? RpcStatus::Ok
                                                  : RpcStatus::NotFound;
            break;
          default:
            reply.status = RpcStatus::Error;
            break;
        }
    }
    result.reply = encodeReply(reply);
    return result;
}

bool
HerdApp::verifyReply(const std::vector<std::uint8_t> &request,
                     const std::vector<std::uint8_t> &reply) const
{
    const auto req = decodeRequest(request);
    const auto rep = decodeReply(reply);
    if (!req || !rep)
        return false;
    switch (req->op) {
      case RpcOp::Get:
        // All GET keys are preloaded and PUTs write canonical values,
        // so a GET must return exactly valueForKey(key).
        return rep->status == RpcStatus::Ok &&
               rep->value == valueForKey(req->key);
      case RpcOp::Put:
        return rep->status == RpcStatus::Ok;
      default:
        return rep->status != RpcStatus::Error;
    }
}

double
HerdApp::meanProcessingNs() const
{
    return processing_->mean();
}

std::vector<RequestClass>
HerdApp::requestClasses() const
{
    // One class: gets and puts share the Fig. 6b processing profile.
    // SLO follows the paper's 10x mean processing time.
    return {RequestClass{name(), true, 10.0 * processing_->mean()}};
}

std::string
HerdApp::name() const
{
    return "herd";
}

} // namespace rpcvalet::app
