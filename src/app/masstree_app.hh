/**
 * @file
 * Masstree-like ordered store (§5): a real skip-list-backed tier
 * serving 99% single-key gets interleaved with 1% long ordered scans
 * returning 100 consecutive keys. Gets follow the Fig. 6c profile
 * (mean ~1.25 us); scans run 60-120 us and are served but not
 * latency-critical — they are the interference RPCValet's occupancy
 * feedback routes around (§6.1).
 */

#ifndef RPCVALET_APP_MASSTREE_APP_HH
#define RPCVALET_APP_MASSTREE_APP_HH

#include <memory>

#include "app/rpc_application.hh"
#include "app/skip_list.hh"
#include "sim/distributions.hh"

namespace rpcvalet::app {

/** Masstree-style ordered KV store over the custom SkipList. */
class MasstreeApp : public RpcApplication
{
  public:
    struct Params
    {
        /** Preloaded key count. */
        std::uint64_t numKeys = 100000;
        /** Key stride (keys are k * stride; sparse key space). */
        std::uint64_t keyStride = 16;
        /** Value size in bytes. */
        std::uint32_t valueBytes = 8;
        /** Fraction of get requests (§5: 99% gets, 1% scans). */
        double getFraction = 0.99;
        /** Keys returned per ordered scan (§5: 100). */
        std::uint32_t scanCount = 100;
        /** Cap on reply payload bytes (messaging maxMsgBytes bound). */
        std::uint32_t maxReplyValueBytes = 1600;
    };

    explicit MasstreeApp(const Params &params);
    MasstreeApp() : MasstreeApp(Params{}) {}

    std::vector<std::uint8_t> makeRequest(sim::Rng &client_rng) override;
    HandleResult handle(const std::vector<std::uint8_t> &request,
                        sim::Rng &server_rng) override;
    bool verifyReply(const std::vector<std::uint8_t> &request,
                     const std::vector<std::uint8_t> &reply) const override;
    double meanProcessingNs() const override;
    double latencyCriticalMeanNs() const override;
    std::vector<RequestClass> requestClasses() const override;
    std::string name() const override;

    /** Deterministic value bytes for @p key. */
    std::vector<std::uint8_t> valueForKey(std::uint64_t key) const;

    /** Access to the backing store (tests). */
    const SkipList &store() const { return store_; }

  private:
    /** Local class id of gets (always 0 when gets are generated). */
    std::uint8_t getClassId() const { return 0; }
    /** Local class id of scans: 1 in the mixed configuration, 0 when
     *  the workload is scan-only (getFraction <= 0). */
    std::uint8_t scanClassId() const;

    Params params_;
    SkipList store_;
    sim::DistributionPtr getProcessing_;
    sim::DistributionPtr scanProcessing_;
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_MASSTREE_APP_HH
