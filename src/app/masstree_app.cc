#include "app/masstree_app.hh"

#include "app/service_profiles.hh"
#include "app/wire_format.hh"
#include "sim/logging.hh"

namespace rpcvalet::app {

MasstreeApp::MasstreeApp(const Params &params)
    : params_(params), getProcessing_(makeMasstreeGetProfile()),
      scanProcessing_(makeMasstreeScanProfile())
{
    RV_ASSERT(params_.numKeys > 0, "Masstree needs at least one key");
    RV_ASSERT(params_.keyStride > 0, "key stride must be positive");
    RV_ASSERT(params_.scanCount > 0, "scan count must be positive");
    for (std::uint64_t k = 0; k < params_.numKeys; ++k) {
        const std::uint64_t key = k * params_.keyStride;
        store_.insert(key, valueForKey(key));
    }
}

std::vector<std::uint8_t>
MasstreeApp::valueForKey(std::uint64_t key) const
{
    std::vector<std::uint8_t> value(params_.valueBytes);
    for (std::uint32_t i = 0; i < params_.valueBytes; ++i)
        value[i] = static_cast<std::uint8_t>((key * 197 + i) & 0xff);
    return value;
}

std::vector<std::uint8_t>
MasstreeApp::makeRequest(sim::Rng &client_rng)
{
    RpcRequest req;
    const std::uint64_t k =
        client_rng.uniformInt(0, params_.numKeys - 1);
    req.key = k * params_.keyStride;
    if (client_rng.uniform() < params_.getFraction) {
        req.op = RpcOp::Get;
        req.classId = getClassId();
    } else {
        req.op = RpcOp::Scan;
        req.count = params_.scanCount;
        req.classId = scanClassId();
    }
    return encodeRequest(req);
}

HandleResult
MasstreeApp::handle(const std::vector<std::uint8_t> &request,
                    sim::Rng &server_rng)
{
    HandleResult result;
    const auto req = decodeRequest(request);
    RpcReply reply;
    if (!req) {
        result.processingNs = getProcessing_->sample(server_rng);
        reply.status = RpcStatus::Error;
    } else if (req->op == RpcOp::Scan) {
        // Real ordered scan over the skip list; the reply packs
        // (key, value) pairs until the size cap.
        result.processingNs = scanProcessing_->sample(server_rng);
        result.latencyCritical = false;
        result.classId = scanClassId();
        const auto entries = store_.scan(req->key, req->count);
        reply.status = RpcStatus::Ok;
        for (const auto &[key, value] : entries) {
            const std::size_t entry_bytes = 8 + value.size();
            if (reply.value.size() + entry_bytes >
                params_.maxReplyValueBytes) {
                break;
            }
            for (int i = 0; i < 8; ++i) {
                reply.value.push_back(static_cast<std::uint8_t>(
                    (key >> (8 * i)) & 0xff));
            }
            reply.value.insert(reply.value.end(), value.begin(),
                               value.end());
        }
    } else if (req->op == RpcOp::Get) {
        result.processingNs = getProcessing_->sample(server_rng);
        auto value = store_.find(req->key);
        if (value) {
            reply.status = RpcStatus::Ok;
            reply.value = std::move(*value);
        } else {
            reply.status = RpcStatus::NotFound;
        }
    } else if (req->op == RpcOp::Put) {
        result.processingNs = getProcessing_->sample(server_rng);
        store_.insert(req->key, req->value);
        reply.status = RpcStatus::Ok;
    } else {
        result.processingNs = getProcessing_->sample(server_rng);
        reply.status = RpcStatus::Error;
    }
    result.reply = encodeReply(reply);
    return result;
}

bool
MasstreeApp::verifyReply(const std::vector<std::uint8_t> &request,
                         const std::vector<std::uint8_t> &reply) const
{
    const auto req = decodeRequest(request);
    const auto rep = decodeReply(reply);
    if (!req || !rep)
        return false;
    if (req->op == RpcOp::Get) {
        return rep->status == RpcStatus::Ok &&
               rep->value == valueForKey(req->key);
    }
    if (req->op == RpcOp::Scan) {
        // Scan replies hold consecutive (key, value) pairs starting at
        // the requested key; spot-check the first entry.
        if (rep->status != RpcStatus::Ok)
            return false;
        if (rep->value.size() < 8 + params_.valueBytes)
            return false;
        std::uint64_t first_key = 0;
        for (int i = 0; i < 8; ++i) {
            first_key |= static_cast<std::uint64_t>(
                             rep->value[static_cast<size_t>(i)])
                         << (8 * i);
        }
        return first_key == req->key;
    }
    return rep->status != RpcStatus::Error;
}

double
MasstreeApp::meanProcessingNs() const
{
    return params_.getFraction * getProcessing_->mean() +
           (1.0 - params_.getFraction) * scanProcessing_->mean();
}

double
MasstreeApp::latencyCriticalMeanNs() const
{
    return getProcessing_->mean();
}

std::uint8_t
MasstreeApp::scanClassId() const
{
    // Scan-only configurations collapse to one class, so the scan
    // class takes slot 0 there.
    return params_.getFraction > 0.0 ? 1 : 0;
}

std::vector<RequestClass>
MasstreeApp::requestClasses() const
{
    // Gets declare the paper's 12.5 us SLO (10x the ~1.25 us mean get
    // processing, §6.1); scans are served but not latency-critical.
    std::vector<RequestClass> classes;
    if (params_.getFraction > 0.0) {
        classes.push_back(
            RequestClass{"get", true, 10.0 * getProcessing_->mean()});
    }
    if (params_.getFraction < 1.0)
        classes.push_back(RequestClass{"scan", false, 0.0});
    return classes;
}

std::string
MasstreeApp::name() const
{
    return "masstree";
}

} // namespace rpcvalet::app
