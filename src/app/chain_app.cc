#include "app/chain_app.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "app/wire_format.hh"
#include "sim/logging.hh"

namespace rpcvalet::app {

namespace {

/** splitmix64 finalizer: derives child keys from the parent's. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** An Echo request for @p tier carrying @p key as its marker. */
std::vector<std::uint8_t>
chainRequest(std::uint32_t tier, std::uint64_t key)
{
    RpcRequest req;
    req.op = RpcOp::Echo;
    req.classId = static_cast<std::uint8_t>(tier);
    req.key = key;
    return encodeRequest(req);
}

/** Total RPCs a chain of @p tiers with @p fanout serves per arrival. */
double
treeSize(std::uint32_t tiers, std::uint32_t fanout)
{
    double total = 0.0;
    double level = 1.0;
    for (std::uint32_t t = 0; t < tiers; ++t) {
        total += level;
        level *= fanout;
    }
    return total;
}

} // namespace

void
ChainApp::Params::validate() const
{
    if (tiers < 1 || tiers > 8) {
        sim::fatal(sim::strfmt(
            "chain workload: tiers must be in [1, 8] (got %u)", tiers));
    }
    if (fanout < 1 || fanout > 16) {
        sim::fatal(sim::strfmt(
            "chain workload: fanout must be in [1, 16] (got %u)",
            fanout));
    }
    if (treeSize(tiers, fanout) > 1024.0) {
        sim::fatal(sim::strfmt(
            "chain workload: tiers=%u, fanout=%u serves %.0f RPCs per "
            "arrival (limit 1024)",
            tiers, fanout, treeSize(tiers, fanout)));
    }
    if (!(rootNs > 0.0) || !std::isfinite(rootNs) || !(leafNs > 0.0) ||
        !std::isfinite(leafNs)) {
        sim::fatal("chain workload: root_ns and leaf_ns must be "
                   "positive");
    }
}

ChainApp::ChainApp(const Params &params, std::string label)
    : params_(params), label_(std::move(label))
{
    params_.validate();
}

std::vector<std::uint8_t>
ChainApp::makeRequest(sim::Rng &client_rng)
{
    // Clients only originate roots; deeper tiers exist as nested RPCs.
    return chainRequest(0, client_rng.next());
}

HandleResult
ChainApp::handle(const std::vector<std::uint8_t> &request,
                 sim::Rng &server_rng)
{
    (void)server_rng;
    const auto req = decodeRequest(request);
    HandleResult result;

    RpcReply reply;
    if (!req) {
        reply.status = RpcStatus::Error;
        result.processingNs = params_.leafNs;
        result.reply = encodeReply(reply);
        return result;
    }

    const std::uint32_t tier =
        std::min<std::uint32_t>(req->classId, params_.tiers - 1);
    result.classId = static_cast<std::uint8_t>(tier);
    result.latencyCritical = tier == 0;
    result.processingNs = tier == 0 ? params_.rootNs : params_.leafNs;

    // Non-leaf tiers fan out. Child keys derive deterministically from
    // the parent's (no Rng draw), so a chain run is reproducible from
    // the client streams alone.
    if (tier + 1 < params_.tiers) {
        result.nested.reserve(params_.fanout);
        for (std::uint32_t c = 0; c < params_.fanout; ++c)
            result.nested.push_back(
                chainRequest(tier + 1, mix64(req->key + c)));
    }

    // Echo the marker so the issuing side can verify the round trip.
    reply.status = RpcStatus::Ok;
    reply.value.assign(8, 0);
    for (int i = 0; i < 8; ++i) {
        reply.value[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((req->key >> (8 * i)) & 0xff);
    }
    result.reply = encodeReply(reply);
    return result;
}

bool
ChainApp::verifyReply(const std::vector<std::uint8_t> &request,
                      const std::vector<std::uint8_t> &reply) const
{
    const auto req = decodeRequest(request);
    const auto rep = decodeReply(reply);
    if (!req || !rep || rep->status != RpcStatus::Ok ||
        rep->value.size() != 8)
        return false;
    std::uint64_t marker = 0;
    for (int i = 0; i < 8; ++i) {
        marker |= static_cast<std::uint64_t>(
                      rep->value[static_cast<std::size_t>(i)])
                  << (8 * i);
    }
    return marker == req->key;
}

double
ChainApp::meanProcessingNs() const
{
    // Per-RPC mean over the whole tree: one root plus (R - 1) deeper
    // RPCs per arrival.
    const double total = treeSize(params_.tiers, params_.fanout);
    return (params_.rootNs + (total - 1.0) * params_.leafNs) / total;
}

double
ChainApp::latencyCriticalMeanNs() const
{
    return params_.rootNs;
}

double
ChainApp::requestsPerArrival() const
{
    return treeSize(params_.tiers, params_.fanout);
}

std::vector<RequestClass>
ChainApp::requestClasses() const
{
    // One class per tier; only the client-visible root counts toward
    // the headline tail metric. No built-in SLO: a root's end-to-end
    // latency composes across tiers, so bounds belong to the scenario
    // ([slo] section), not the workload.
    std::vector<RequestClass> classes;
    classes.reserve(params_.tiers);
    for (std::uint32_t t = 0; t < params_.tiers; ++t) {
        classes.push_back(RequestClass{sim::strfmt("tier%u", t), t == 0,
                                       0.0});
    }
    return classes;
}

std::string
ChainApp::name() const
{
    return label_;
}

} // namespace rpcvalet::app
