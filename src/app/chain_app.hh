/**
 * @file
 * Microservice-chain workload: every client arrival is the root of a
 * fan-out tree of nested RPCs (the mRPC/Dagger microservice setting).
 *
 * A tier-t handler (t < tiers-1) declares `fanout` nested RPCs to
 * tier t+1 through HandleResult.nested; the serving node defers the
 * parent's reply until every child completes, so the root's measured
 * latency composes end to end across tiers. The request-class id on
 * the wire is the tier number, which rides the existing per-class
 * accounting: RunStats.perClass reports each tier's tails separately,
 * with only tier 0 (the client-visible RPC) latency-critical.
 */

#ifndef RPCVALET_APP_CHAIN_APP_HH
#define RPCVALET_APP_CHAIN_APP_HH

#include <string>

#include "app/rpc_application.hh"

namespace rpcvalet::app {

/** Chained-handler workload ("chain:tiers=,fanout=,..."). */
class ChainApp : public RpcApplication
{
  public:
    struct Params
    {
        /** Chain depth, >= 1 (1 = single-hop, no nesting). */
        std::uint32_t tiers = 2;
        /** Nested RPCs each non-leaf handler issues, >= 1. */
        std::uint32_t fanout = 2;
        /** Tier-0 (root) handler processing time, ns. */
        double rootNs = 600.0;
        /** Processing time of every deeper tier, ns. */
        double leafNs = 300.0;

        /** fatal() on out-of-range settings. */
        void validate() const;
    };

    ChainApp(const Params &params, std::string label);

    std::vector<std::uint8_t> makeRequest(sim::Rng &client_rng) override;
    HandleResult handle(const std::vector<std::uint8_t> &request,
                        sim::Rng &server_rng) override;
    bool verifyReply(const std::vector<std::uint8_t> &request,
                     const std::vector<std::uint8_t> &reply) const override;
    double meanProcessingNs() const override;
    double latencyCriticalMeanNs() const override;
    double requestsPerArrival() const override;
    std::vector<RequestClass> requestClasses() const override;
    std::string name() const override;

  private:
    Params params_;
    std::string label_;
};

} // namespace rpcvalet::app

#endif // RPCVALET_APP_CHAIN_APP_HH
