#include "app/hash_table.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::app {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

HashTable::HashTable(std::size_t initial_buckets)
    : buckets_(roundUpPow2(std::max<std::size_t>(initial_buckets, 8)),
               nullptr)
{
}

HashTable::~HashTable()
{
    for (Node *head : buckets_) {
        while (head != nullptr) {
            Node *next = head->next;
            delete head;
            head = next;
        }
    }
}

std::uint64_t
HashTable::mix(std::uint64_t key)
{
    // splitmix64 finalizer: full-avalanche integer hash.
    key += 0x9e3779b97f4a7c15ULL;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
    return key ^ (key >> 31);
}

std::size_t
HashTable::bucketFor(std::uint64_t key, std::size_t nbuckets) const
{
    return static_cast<std::size_t>(mix(key)) & (nbuckets - 1);
}

bool
HashTable::put(std::uint64_t key, std::vector<std::uint8_t> value)
{
    maybeGrow();
    Node *&head = buckets_[bucketFor(key, buckets_.size())];
    for (Node *n = head; n != nullptr; n = n->next) {
        if (n->key == key) {
            n->value = std::move(value);
            return false;
        }
    }
    head = new Node{key, std::move(value), head};
    ++size_;
    return true;
}

std::optional<std::vector<std::uint8_t>>
HashTable::get(std::uint64_t key) const
{
    const Node *head = buckets_[bucketFor(key, buckets_.size())];
    for (const Node *n = head; n != nullptr; n = n->next) {
        if (n->key == key)
            return n->value;
    }
    return std::nullopt;
}

bool
HashTable::contains(std::uint64_t key) const
{
    const Node *head = buckets_[bucketFor(key, buckets_.size())];
    for (const Node *n = head; n != nullptr; n = n->next) {
        if (n->key == key)
            return true;
    }
    return false;
}

bool
HashTable::erase(std::uint64_t key)
{
    Node **link = &buckets_[bucketFor(key, buckets_.size())];
    while (*link != nullptr) {
        if ((*link)->key == key) {
            Node *victim = *link;
            *link = victim->next;
            delete victim;
            --size_;
            return true;
        }
        link = &(*link)->next;
    }
    return false;
}

double
HashTable::loadFactor() const
{
    return static_cast<double>(size_) /
           static_cast<double>(buckets_.size());
}

std::size_t
HashTable::maxChainLength() const
{
    std::size_t longest = 0;
    for (const Node *head : buckets_) {
        std::size_t len = 0;
        for (const Node *n = head; n != nullptr; n = n->next)
            ++len;
        longest = std::max(longest, len);
    }
    return longest;
}

void
HashTable::maybeGrow()
{
    if (loadFactor() < 0.75)
        return;
    const std::size_t new_count = buckets_.size() * 2;
    std::vector<Node *> fresh(new_count, nullptr);
    for (Node *head : buckets_) {
        while (head != nullptr) {
            Node *next = head->next;
            Node *&slot = fresh[bucketFor(head->key, new_count)];
            head->next = slot;
            slot = head;
            head = next;
        }
    }
    buckets_ = std::move(fresh);
}

} // namespace rpcvalet::app
