/**
 * @file
 * Built-in workloads of the app::WorkloadRegistry, plus the composite
 * "mix" workload that blends any registered workloads with per-request
 * class tags.
 *
 * Registered specs:
 *
 *   herd[:keys=,value_bytes=,read_ratio=]       §5 HERD-like KV tier
 *   masstree[:scan_ratio=,keys=,value_bytes=,scan_count=]
 *                                               ordered store, gets +
 *                                               interfering scans
 *   masstree-get[:keys=,value_bytes=]           the pure get class
 *   masstree-scan[:keys=,value_bytes=,scan_count=]
 *                                               the pure scan class
 *   synthetic[:dist=fixed|uniform|exponential|gev,padding=]
 *                                               §5 echo microbenchmark
 *   chain[:tiers=,fanout=,root_ns=,leaf_ns=]    microservice chain:
 *                                               each arrival fans out
 *                                               nested RPCs per tier
 *   mix:CLASS=WEIGHT,...                        composite of any
 *                                               registered workloads
 *
 * "mix" treats every parameter key as a registered workload name and
 * its value as a sampling weight (normalized internally), giving each
 * component's request classes distinct global ids — e.g.
 * "mix:masstree-get=0.998,masstree-scan=0.002" reproduces Fig. 7b's
 * get+scan blend with separately accounted get and scan tails. With a
 * single component ("mix:herd=1") no component-selection random draw
 * is made, so the run is bit-identical to the component alone.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "app/chain_app.hh"
#include "app/herd_app.hh"
#include "app/masstree_app.hh"
#include "app/synthetic_app.hh"
#include "app/wire_format.hh"
#include "app/workload.hh"
#include "sim/logging.hh"

namespace rpcvalet::app {

namespace {

/**
 * Composite workload: samples each request from one of its component
 * workloads by weight and remaps the component-local class ids into
 * one global class table (component order = sorted spec keys).
 */
class MixWorkload : public RpcApplication
{
  public:
    struct Component
    {
        /** Registry name (also the reported class-name prefix). */
        std::string name;
        /** Normalized sampling weight. */
        double weight = 0.0;
        RpcApplicationPtr app;
        /** Global id of this component's local class 0. */
        std::uint8_t classBase = 0;
        std::size_t classCount = 0;
    };

    MixWorkload(std::vector<Component> components, std::string label)
        : components_(std::move(components)), label_(std::move(label))
    {
        RV_ASSERT(!components_.empty(), "mix needs components");
        double cumulative = 0.0;
        for (const Component &comp : components_) {
            cumulative += comp.weight;
            cumulative_.push_back(cumulative);
            const auto classes = comp.app->requestClasses();
            RV_ASSERT(classes.size() == comp.classCount,
                      "component class table changed size");
            for (const RequestClass &cl : classes) {
                RequestClass tagged = cl;
                // Single-class components report under their workload
                // name; multi-class ones get "workload.class" tags.
                tagged.name = classes.size() == 1
                                  ? comp.name
                                  : comp.name + "." + cl.name;
                classes_.push_back(std::move(tagged));
                componentOfClass_.push_back(&comp - components_.data());
            }
        }
        // Guard against accumulated rounding drift in the last bucket.
        cumulative_.back() = 1.0;
    }

    std::vector<std::uint8_t>
    makeRequest(sim::Rng &client_rng) override
    {
        // With one component there is nothing to choose: consume no
        // randomness, so "mix:x=1" replays "x" bit-for-bit.
        std::size_t pick = 0;
        if (components_.size() > 1) {
            const double u = client_rng.uniform();
            while (pick + 1 < components_.size() &&
                   u >= cumulative_[pick])
                ++pick;
        }
        Component &comp = components_[pick];
        std::vector<std::uint8_t> request =
            comp.app->makeRequest(client_rng);
        RV_ASSERT(request.size() >= requestHeaderBytes,
                  "component produced a truncated request");
        request[requestClassOffset] = static_cast<std::uint8_t>(
            comp.classBase + request[requestClassOffset]);
        return request;
    }

    HandleResult
    handle(const std::vector<std::uint8_t> &request,
           sim::Rng &server_rng) override
    {
        const Component &comp = componentFor(request);
        HandleResult result =
            comp.classBase == 0
                ? comp.app->handle(request, server_rng)
                : comp.app->handle(localizedRequest(comp, request),
                                   server_rng);
        const std::size_t local =
            std::min<std::size_t>(result.classId, comp.classCount - 1);
        result.classId =
            static_cast<std::uint8_t>(comp.classBase + local);
        return result;
    }

    bool
    verifyReply(const std::vector<std::uint8_t> &request,
                const std::vector<std::uint8_t> &reply) const override
    {
        const Component &comp = componentFor(request);
        if (comp.classBase == 0)
            return comp.app->verifyReply(request, reply);
        return comp.app->verifyReply(localizedRequest(comp, request),
                                     reply);
    }

    double
    meanProcessingNs() const override
    {
        double mean = 0.0;
        for (const Component &comp : components_)
            mean += comp.weight * comp.app->meanProcessingNs();
        return mean;
    }

    double
    latencyCriticalMeanNs() const override
    {
        // Weighted over components that declare any latency-critical
        // class (a planning estimate: components do not expose their
        // internal critical share).
        double mean = 0.0;
        double weight = 0.0;
        for (const Component &comp : components_) {
            bool critical = false;
            for (std::size_t c = 0; c < comp.classCount; ++c)
                critical = critical ||
                           classes_[comp.classBase + c].latencyCritical;
            if (!critical)
                continue;
            mean += comp.weight * comp.app->latencyCriticalMeanNs();
            weight += comp.weight;
        }
        return weight > 0.0 ? mean / weight : meanProcessingNs();
    }

    std::vector<RequestClass>
    requestClasses() const override
    {
        return classes_;
    }

    std::string
    name() const override
    {
        return label_;
    }

  private:
    /**
     * The request as the component generated it: class byte restored
     * to the component-local id. Components own the class byte within
     * their requests (a classId-reading handle() — see the bimodal
     * playground — must not observe the mix's global remapping).
     */
    std::vector<std::uint8_t>
    localizedRequest(const Component &comp,
                     const std::vector<std::uint8_t> &request) const
    {
        std::vector<std::uint8_t> local = request;
        if (local.size() > requestClassOffset) {
            local[requestClassOffset] = static_cast<std::uint8_t>(
                local[requestClassOffset] - comp.classBase);
        }
        return local;
    }

    const Component &
    componentFor(const std::vector<std::uint8_t> &request) const
    {
        std::size_t cls = request.size() > requestClassOffset
                              ? request[requestClassOffset]
                              : 0;
        cls = std::min(cls, componentOfClass_.size() - 1);
        return components_[componentOfClass_[cls]];
    }

    std::vector<Component> components_;
    std::vector<double> cumulative_;
    std::vector<RequestClass> classes_;
    /** Global class id -> index into components_. */
    std::vector<std::size_t> componentOfClass_;
    std::string label_;
};

HerdApp::Params
herdParams(const WorkloadSpec &spec)
{
    HerdApp::Params p;
    p.numKeys = spec.uintParam("keys", p.numKeys);
    p.valueBytes = static_cast<std::uint32_t>(
        spec.uintParam("value_bytes", p.valueBytes));
    p.readFraction = spec.doubleParam("read_ratio", p.readFraction);
    if (!(p.readFraction >= 0.0 && p.readFraction <= 1.0)) {
        sim::fatal("workload '" + spec.toString() +
                   "': read_ratio must be in [0, 1]");
    }
    return p;
}

MasstreeApp::Params
masstreeParams(const WorkloadSpec &spec, double scan_ratio)
{
    if (!(scan_ratio >= 0.0 && scan_ratio <= 1.0)) {
        sim::fatal("workload '" + spec.toString() +
                   "': scan_ratio must be in [0, 1]");
    }
    MasstreeApp::Params p;
    p.getFraction = 1.0 - scan_ratio;
    p.numKeys = spec.uintParam("keys", p.numKeys);
    p.valueBytes = static_cast<std::uint32_t>(
        spec.uintParam("value_bytes", p.valueBytes));
    p.scanCount = static_cast<std::uint32_t>(
        spec.uintParam("scan_count", p.scanCount));
    return p;
}

const WorkloadRegistrar herdReg("herd", [](const WorkloadSpec &spec) {
    spec.expectKeys({"keys", "value_bytes", "read_ratio"});
    return std::make_unique<HerdApp>(herdParams(spec));
});

const WorkloadRegistrar masstreeReg(
    "masstree", [](const WorkloadSpec &spec) {
        spec.expectKeys(
            {"scan_ratio", "keys", "value_bytes", "scan_count"});
        return std::make_unique<MasstreeApp>(
            masstreeParams(spec, spec.doubleParam("scan_ratio", 0.01)));
    });

const WorkloadRegistrar masstreeGetReg(
    "masstree-get", [](const WorkloadSpec &spec) {
        spec.expectKeys({"keys", "value_bytes"});
        return std::make_unique<MasstreeApp>(
            masstreeParams(spec, 0.0));
    });

const WorkloadRegistrar masstreeScanReg(
    "masstree-scan", [](const WorkloadSpec &spec) {
        spec.expectKeys({"keys", "value_bytes", "scan_count"});
        return std::make_unique<MasstreeApp>(
            masstreeParams(spec, 1.0));
    });

const WorkloadRegistrar syntheticReg(
    "synthetic", [](const WorkloadSpec &spec) {
        spec.expectKeys({"dist", "padding"});
        std::string dist = "gev";
        if (const auto it = spec.params.find("dist");
            it != spec.params.end())
            dist = it->second;
        std::unique_ptr<SyntheticApp> app;
        for (const sim::SyntheticKind kind : sim::allSyntheticKinds()) {
            if (dist == sim::syntheticKindName(kind))
                app = std::make_unique<SyntheticApp>(kind);
        }
        if (app == nullptr) {
            std::string kinds;
            for (const sim::SyntheticKind kind :
                 sim::allSyntheticKinds()) {
                if (!kinds.empty())
                    kinds += ", ";
                kinds += sim::syntheticKindName(kind);
            }
            sim::fatal("workload '" + spec.toString() +
                       "': unknown dist '" + dist + "' (one of: " +
                       kinds + ")");
        }
        if (spec.has("padding")) {
            app->setRequestPaddingBytes(static_cast<std::uint32_t>(
                spec.uintParam("padding", 0)));
        }
        return app;
    });

const WorkloadRegistrar chainReg(
    "chain", [](const WorkloadSpec &spec) {
        spec.expectKeys({"tiers", "fanout", "root_ns", "leaf_ns"});
        ChainApp::Params p;
        p.tiers =
            static_cast<std::uint32_t>(spec.uintParam("tiers", p.tiers));
        p.fanout = static_cast<std::uint32_t>(
            spec.uintParam("fanout", p.fanout));
        p.rootNs = spec.doubleParam("root_ns", p.rootNs);
        p.leafNs = spec.doubleParam("leaf_ns", p.leafNs);
        return std::make_unique<ChainApp>(p, spec.toString());
    });

const WorkloadRegistrar mixReg("mix", [](const WorkloadSpec &spec) {
    if (spec.params.empty()) {
        sim::fatal("workload '" + spec.toString() +
                   "': mix needs at least one CLASS=WEIGHT pair "
                   "(e.g. mix:masstree-get=0.998,masstree-scan=0.002)");
    }
    std::vector<MixWorkload::Component> components;
    double total_weight = 0.0;
    std::size_t total_classes = 0;
    for (const auto &[name, value] : spec.params) {
        (void)value;
        if (name == "mix") {
            sim::fatal("workload '" + spec.toString() +
                       "': mix cannot nest another mix");
        }
        if (!WorkloadRegistry::instance().contains(name)) {
            sim::fatal("workload '" + spec.toString() + "': '" + name +
                       "' is not a registered workload (registered: " +
                       WorkloadRegistry::instance().namesJoined() + ")");
        }
        const double weight = spec.doubleParam(name, 0.0);
        if (!(weight > 0.0) || !std::isfinite(weight)) {
            sim::fatal("workload '" + spec.toString() + "': weight of '" +
                       name + "' must be a positive number");
        }
        MixWorkload::Component comp;
        comp.name = name;
        comp.weight = weight;
        WorkloadSpec sub;
        sub.name = name;
        comp.app = WorkloadRegistry::instance().make(sub);
        comp.classCount = comp.app->requestClasses().size();
        if (comp.classCount == 0) {
            sim::fatal("workload '" + spec.toString() + "': component '" +
                       name + "' declares no request classes");
        }
        if (total_classes + comp.classCount >
            std::numeric_limits<std::uint8_t>::max() + 1u) {
            sim::fatal("workload '" + spec.toString() +
                       "': more than 256 request classes");
        }
        comp.classBase = static_cast<std::uint8_t>(total_classes);
        total_classes += comp.classCount;
        total_weight += weight;
        components.push_back(std::move(comp));
    }
    for (auto &comp : components)
        comp.weight /= total_weight;
    return std::make_unique<MixWorkload>(std::move(components),
                                         spec.toString());
});

} // namespace

/** Anchor: see workload.cc's linkBuiltinWorkloads declaration. */
void
linkBuiltinWorkloads()
{
}

} // namespace rpcvalet::app
