#include "app/wire_format.hh"

namespace rpcvalet::app {

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(const std::vector<std::uint8_t> &in, std::size_t at)
{
    return static_cast<std::uint32_t>(in[at]) |
           (static_cast<std::uint32_t>(in[at + 1]) << 8) |
           (static_cast<std::uint32_t>(in[at + 2]) << 16) |
           (static_cast<std::uint32_t>(in[at + 3]) << 24);
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[at + static_cast<size_t>(i)])
             << (8 * i);
    return v;
}

} // namespace

std::uint64_t
requestKeyOf(const std::vector<std::uint8_t> &request)
{
    if (request.size() < requestKeyOffset + 8)
        return 0;
    return getU64(request, requestKeyOffset);
}

std::vector<std::uint8_t>
encodeRequest(const RpcRequest &req)
{
    std::vector<std::uint8_t> out;
    out.reserve(requestHeaderBytes + req.value.size());
    out.push_back(static_cast<std::uint8_t>(req.op));
    out.push_back(req.classId);
    putU64(out, req.key);
    putU32(out, req.count);
    putU32(out, static_cast<std::uint32_t>(req.value.size()));
    out.insert(out.end(), req.value.begin(), req.value.end());
    return out;
}

std::optional<RpcRequest>
decodeRequest(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < requestHeaderBytes)
        return std::nullopt;
    RpcRequest req;
    if (bytes[0] > static_cast<std::uint8_t>(RpcOp::Echo))
        return std::nullopt;
    req.op = static_cast<RpcOp>(bytes[0]);
    req.classId = bytes[requestClassOffset];
    req.key = getU64(bytes, 2);
    req.count = getU32(bytes, 10);
    const std::uint32_t vlen = getU32(bytes, 14);
    if (bytes.size() < requestHeaderBytes + vlen)
        return std::nullopt;
    req.value.assign(bytes.begin() + requestHeaderBytes,
                     bytes.begin() +
                         static_cast<long>(requestHeaderBytes + vlen));
    return req;
}

std::vector<std::uint8_t>
encodeReply(const RpcReply &reply)
{
    std::vector<std::uint8_t> out;
    out.reserve(replyHeaderBytes + reply.value.size());
    out.push_back(static_cast<std::uint8_t>(reply.status));
    putU32(out, static_cast<std::uint32_t>(reply.value.size()));
    out.insert(out.end(), reply.value.begin(), reply.value.end());
    return out;
}

std::optional<RpcReply>
decodeReply(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < replyHeaderBytes)
        return std::nullopt;
    RpcReply reply;
    if (bytes[0] > static_cast<std::uint8_t>(RpcStatus::Error))
        return std::nullopt;
    reply.status = static_cast<RpcStatus>(bytes[0]);
    const std::uint32_t vlen = getU32(bytes, 1);
    if (bytes.size() < replyHeaderBytes + vlen)
        return std::nullopt;
    reply.value.assign(bytes.begin() + replyHeaderBytes,
                       bytes.begin() +
                           static_cast<long>(replyHeaderBytes + vlen));
    return reply;
}

} // namespace rpcvalet::app
