#include "app/skip_list.hh"

#include "sim/logging.hh"

namespace rpcvalet::app {

SkipList::SkipList(std::uint64_t seed)
    : head_(new Node{0, {}, std::vector<Node *>(maxLevel, nullptr)}),
      rng_(seed, /*stream=*/0x5C1B)
{
}

SkipList::~SkipList()
{
    Node *n = head_;
    while (n != nullptr) {
        Node *next = n->forward[0];
        delete n;
        n = next;
    }
}

int
SkipList::randomLevel()
{
    int lvl = 1;
    while (lvl < maxLevel && (rng_.next() & 1))
        ++lvl;
    return lvl;
}

bool
SkipList::insert(std::uint64_t key, std::vector<std::uint8_t> value)
{
    std::vector<Node *> update(maxLevel, head_);
    Node *x = head_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->forward[static_cast<size_t>(i)] != nullptr &&
               x->forward[static_cast<size_t>(i)]->key < key) {
            x = x->forward[static_cast<size_t>(i)];
        }
        update[static_cast<size_t>(i)] = x;
    }
    x = x->forward[0];
    if (x != nullptr && x->key == key) {
        x->value = std::move(value);
        return false;
    }

    const int lvl = randomLevel();
    if (lvl > level_)
        level_ = lvl;
    Node *fresh = new Node{key, std::move(value),
                           std::vector<Node *>(static_cast<size_t>(lvl),
                                               nullptr)};
    for (int i = 0; i < lvl; ++i) {
        auto ui = static_cast<size_t>(i);
        fresh->forward[ui] = update[ui]->forward[ui];
        update[ui]->forward[ui] = fresh;
    }
    ++size_;
    return true;
}

std::optional<std::vector<std::uint8_t>>
SkipList::find(std::uint64_t key) const
{
    const Node *x = head_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->forward[static_cast<size_t>(i)] != nullptr &&
               x->forward[static_cast<size_t>(i)]->key < key) {
            x = x->forward[static_cast<size_t>(i)];
        }
    }
    const Node *candidate = x->forward[0];
    if (candidate != nullptr && candidate->key == key)
        return candidate->value;
    return std::nullopt;
}

bool
SkipList::erase(std::uint64_t key)
{
    std::vector<Node *> update(maxLevel, head_);
    Node *x = head_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->forward[static_cast<size_t>(i)] != nullptr &&
               x->forward[static_cast<size_t>(i)]->key < key) {
            x = x->forward[static_cast<size_t>(i)];
        }
        update[static_cast<size_t>(i)] = x;
    }
    Node *victim = x->forward[0];
    if (victim == nullptr || victim->key != key)
        return false;
    for (int i = 0; i < level_; ++i) {
        auto ui = static_cast<size_t>(i);
        if (update[ui]->forward[ui] == victim)
            update[ui]->forward[ui] = victim->forward[ui];
    }
    delete victim;
    while (level_ > 1 &&
           head_->forward[static_cast<size_t>(level_ - 1)] == nullptr) {
        --level_;
    }
    --size_;
    return true;
}

std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
SkipList::scan(std::uint64_t start, std::size_t count) const
{
    std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> out;
    out.reserve(count);
    const Node *x = head_;
    for (int i = level_ - 1; i >= 0; --i) {
        while (x->forward[static_cast<size_t>(i)] != nullptr &&
               x->forward[static_cast<size_t>(i)]->key < start) {
            x = x->forward[static_cast<size_t>(i)];
        }
    }
    const Node *n = x->forward[0];
    while (n != nullptr && out.size() < count) {
        out.emplace_back(n->key, n->value);
        n = n->forward[0];
    }
    return out;
}

std::optional<std::uint64_t>
SkipList::minKey() const
{
    if (head_->forward[0] == nullptr)
        return std::nullopt;
    return head_->forward[0]->key;
}

} // namespace rpcvalet::app
