#include "ni/policy_spec.hh"

namespace rpcvalet::ni {

PolicySpec::PolicySpec()
{
    what = "policy";
    name = "greedy";
}

PolicySpec::PolicySpec(const char *text) : PolicySpec(parse(text)) {}

PolicySpec::PolicySpec(const std::string &text) : PolicySpec(parse(text))
{}

PolicySpec
PolicySpec::parse(const std::string &text)
{
    PolicySpec spec;
    static_cast<sim::Spec &>(spec) = sim::Spec::parse(text, "policy");
    return spec;
}

} // namespace rpcvalet::ni
