/**
 * @file
 * Parameterized dispatch-policy specifications.
 *
 * A PolicySpec names a registered policy plus its parameters, parsed
 * from a compact string form:
 *
 *   "greedy"                           no parameters
 *   "pow2:d=3"                         one integer parameter
 *   "stale-jsq:staleness=50ns"         durations accept ns/us/ms
 *   "delay-aware:alpha=0.5,init=500ns" multiple ','-separated pairs
 *
 * Specs round-trip through toString() (keys print in sorted order) and
 * are what SystemParams carries instead of a closed policy enum, so
 * benches and configs select policies by string without recompiling
 * any layer. The legacy PolicyKind enum survives one more PR as a thin
 * shim that converts to the equivalent spec.
 */

#ifndef RPCVALET_NI_POLICY_SPEC_HH
#define RPCVALET_NI_POLICY_SPEC_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

#include "sim/types.hh"

namespace rpcvalet::ni {

/**
 * DEPRECATED closed enum of the original three policies. Kept for one
 * PR as a conversion shim onto PolicySpec; use spec strings instead.
 */
enum class PolicyKind
{
    GreedyLeastLoaded,
    RoundRobin,
    PowerOfTwoChoices,
};

/** Registry name the deprecated enum value maps to. */
std::string policyKindName(PolicyKind kind);

/** A policy selection: registry name plus key=value parameters. */
struct PolicySpec
{
    /** Registry key (e.g. "greedy", "jbsq"). */
    std::string name = "greedy";
    /** Parameters; sorted keys make toString() deterministic. */
    std::map<std::string, std::string> params;

    PolicySpec() = default;

    /** Implicit: parse a spec string (fatal on malformed input). */
    PolicySpec(const char *text);
    PolicySpec(const std::string &text);

    /** Implicit: DEPRECATED shim from the legacy enum. */
    PolicySpec(PolicyKind kind);

    /**
     * Parse "name" or "name:k=v,k=v". fatal() on an empty name, an
     * empty key, a missing '=', a duplicate key, or an empty
     * parameter segment (trailing ':' or ',').
     */
    static PolicySpec parse(const std::string &text);

    /** Canonical string form; parse(toString()) round-trips. */
    std::string toString() const;

    bool has(const std::string &key) const;

    /** Unsigned-integer parameter, @p fallback when absent. */
    std::uint64_t uintParam(const std::string &key,
                            std::uint64_t fallback) const;

    /** Floating-point parameter, @p fallback when absent. */
    double doubleParam(const std::string &key, double fallback) const;

    /**
     * Duration parameter, @p fallback when absent. Accepts a bare
     * number (nanoseconds) or an explicit "ns"/"us"/"ms" suffix.
     */
    sim::Tick tickParam(const std::string &key, sim::Tick fallback) const;

    /**
     * fatal() when a parameter key is not in @p allowed — policies call
     * this so "pow2:dd=3" dies loudly instead of silently defaulting.
     */
    void expectKeys(std::initializer_list<const char *> allowed) const;

    bool operator==(const PolicySpec &other) const;
    bool operator!=(const PolicySpec &other) const;
};

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_POLICY_SPEC_HH
