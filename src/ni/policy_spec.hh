/**
 * @file
 * Parameterized dispatch-policy specifications.
 *
 * A PolicySpec names a registered policy plus its parameters, parsed
 * from the compact sim::Spec string form:
 *
 *   "greedy"                           no parameters
 *   "pow2:d=3"                         one integer parameter
 *   "stale-jsq:staleness=50ns"         durations accept ns/us/ms
 *   "delay-aware:alpha=0.5,init=500ns" multiple ','-separated pairs
 *
 * Specs round-trip through toString() (keys print in sorted order) and
 * are what SystemParams carries instead of a closed policy enum, so
 * benches and configs select policies by string without recompiling
 * any layer. The parsing/typed-accessor machinery is the generic
 * sim::Spec (shared with net::ArrivalSpec); this type only pins the
 * diagnostic label and the "greedy" default. The legacy PolicyKind
 * enum shim announced in the previous redesign has been removed.
 */

#ifndef RPCVALET_NI_POLICY_SPEC_HH
#define RPCVALET_NI_POLICY_SPEC_HH

#include <string>

#include "sim/spec.hh"

namespace rpcvalet::ni {

/** A policy selection: registry name plus key=value parameters. */
struct PolicySpec : public sim::Spec
{
    /** Default policy: the paper's greedy least-loaded dispatcher. */
    PolicySpec();

    /** Implicit: parse a spec string (fatal on malformed input). */
    PolicySpec(const char *text);
    PolicySpec(const std::string &text);

    /** Parse "name" or "name:k=v,k=v" (see sim::Spec::parse). */
    static PolicySpec parse(const std::string &text);
};

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_POLICY_SPEC_HH
