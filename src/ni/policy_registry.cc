#include "ni/policy_registry.hh"

#include <utility>

// For the complete DispatchPolicy type (make() destroys one on the
// factory-returned-null panic path).
#include "ni/dispatch_policy.hh"
#include "sim/logging.hh"

namespace rpcvalet::ni {

// Defined in policies.cc. Calling it from instance() forces that
// archive member — whose only entry points are its static registrars —
// into every binary that uses the registry.
void linkBuiltinPolicies();

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    linkBuiltinPolicies();
    return registry;
}

void
PolicyRegistry::add(const std::string &name, Factory factory)
{
    if (name.empty())
        sim::fatal("cannot register a dispatch policy with an empty name");
    if (factory == nullptr)
        sim::fatal("dispatch policy '" + name + "' has a null factory");
    if (!factories_.emplace(name, std::move(factory)).second) {
        sim::fatal("dispatch policy '" + name +
                   "' is already registered (duplicate registration)");
    }
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    return factories_.count(name) > 0;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        out.push_back(name); // std::map iterates in sorted order
    }
    return out;
}

std::string
PolicyRegistry::namesJoined() const
{
    std::string out;
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

std::unique_ptr<DispatchPolicy>
PolicyRegistry::make(const PolicySpec &spec) const
{
    const auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
        sim::fatal("unknown dispatch policy '" + spec.name +
                   "' (registered policies: " + namesJoined() + ")");
    }
    auto policy = it->second(spec);
    if (policy == nullptr) {
        sim::panic("factory for dispatch policy '" + spec.name +
                   "' returned null");
    }
    return policy;
}

PolicyRegistrar::PolicyRegistrar(const std::string &name,
                                 PolicyRegistry::Factory factory)
{
    PolicyRegistry::instance().add(name, std::move(factory));
}

} // namespace rpcvalet::ni
