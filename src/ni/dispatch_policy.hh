/**
 * @file
 * NI dispatch: modes and core-selection policies (§4.3).
 *
 * The dispatch *mode* fixes the queuing topology (how many dispatchers
 * and which cores each can reach): 1x16, 4x4, 16x1, or the software
 * pull baseline. The dispatch *policy* is the per-decision heuristic a
 * dispatcher uses to pick among its available cores. The paper's
 * proof-of-concept is a simple greedy policy; round-robin and
 * power-of-two-choices are included for the ablation study the paper's
 * §4.3 invites ("implementations can range from simple hardwired logic
 * to microcoded state machines").
 */

#ifndef RPCVALET_NI_DISPATCH_POLICY_HH
#define RPCVALET_NI_DISPATCH_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "proto/packet.hh"
#include "sim/rng.hh"

namespace rpcvalet::ni {

/** Queuing topology implemented by the NI (Fig. 1 / §5). */
enum class DispatchMode
{
    /** RPCValet: one NI dispatcher balancing all cores (1x16). */
    SingleQueue,
    /** Each NI backend balances its own row of cores (4x4). */
    PerBackendGroup,
    /** RSS-style static hash to a core at arrival time (16x1). */
    StaticHash,
    /** Software single queue pulled under an MCS lock (§6.2). */
    SoftwarePull,
};

/** Human-readable mode name ("1x16", "4x4", "16x1", "sw-1x16"). */
std::string dispatchModeName(DispatchMode mode);

/** Core-selection heuristic used by hardware dispatchers. */
enum class PolicyKind
{
    /** Pick the available core with the fewest outstanding RPCs. */
    GreedyLeastLoaded,
    /** Rotate over available cores. */
    RoundRobin,
    /** Sample two candidates, keep the less loaded (d-choices). */
    PowerOfTwoChoices,
};

/** Human-readable policy name. */
std::string policyKindName(PolicyKind kind);

/**
 * Strategy interface: choose one of @p candidates whose outstanding
 * count is below @p threshold, or nullopt when none qualifies.
 */
class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    /**
     * @param outstanding Per-core outstanding-RPC counts (indexed by
     *                    global core id).
     * @param threshold   Max outstanding per core (§4.3: default 2).
     * @param candidates  Cores this dispatcher may target.
     * @param rng         Source of randomness for stochastic policies.
     */
    virtual std::optional<proto::CoreId>
    select(const std::vector<std::uint32_t> &outstanding,
           std::uint32_t threshold,
           const std::vector<proto::CoreId> &candidates,
           sim::Rng &rng) = 0;

    virtual std::string name() const = 0;
};

/** Factory for the built-in policies. */
std::unique_ptr<DispatchPolicy> makePolicy(PolicyKind kind);

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_DISPATCH_POLICY_HH
