/**
 * @file
 * NI dispatch: queuing topologies and the event-driven core-selection
 * policy API (§4.3).
 *
 * The dispatch *mode* fixes the queuing topology (how many dispatchers
 * and which cores each can reach): 1x16, 4x4, 16x1, or the software
 * pull baseline. The dispatch *policy* is the per-decision heuristic a
 * dispatcher uses to pick among its available cores.
 *
 * §4.3 frames the policy point broadly — "implementations can range
 * from simple hardwired logic to microcoded state machines" — so the
 * policy interface is event-driven and stateful: the dispatcher calls
 * onArrival / onDispatch / onComplete as RPCs flow through it, and
 * select() sees a DispatchContext snapshot (outstanding counts,
 * candidate set, threshold, now-time, RNG). Policies may keep private
 * state across events: bounded per-core queues with deferred
 * assignment (JBSQ), stale-sampled load estimates, dispatch-age
 * tracking, and so on.
 *
 * Policies are instantiated by name through the PolicyRegistry from a
 * parameterized PolicySpec (e.g. "greedy", "pow2:d=3", "jbsq:d=2",
 * "stale-jsq:staleness=50ns"); see policy_registry.hh for how to
 * register a policy from any translation unit.
 */

#ifndef RPCVALET_NI_DISPATCH_POLICY_HH
#define RPCVALET_NI_DISPATCH_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ni/policy_registry.hh"
#include "ni/policy_spec.hh"
#include "proto/packet.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace rpcvalet::ni {

/** Queuing topology implemented by the NI (Fig. 1 / §5). */
enum class DispatchMode
{
    /** RPCValet: one NI dispatcher balancing all cores (1x16). */
    SingleQueue,
    /** Each NI backend balances its own row of cores (4x4). */
    PerBackendGroup,
    /** RSS-style static hash to a core at arrival time (16x1). */
    StaticHash,
    /** Software single queue pulled under an MCS lock (§6.2). */
    SoftwarePull,
};

/** Human-readable mode name ("1x16", "4x4", "16x1", "sw-1x16"). */
std::string dispatchModeName(DispatchMode mode);

/** All modes, in the figures' order (1x16, 4x4, 16x1, sw-1x16). */
std::vector<DispatchMode> allDispatchModes();

/**
 * Parse a mode name as printed by dispatchModeName ("1x16", "4x4",
 * "16x1", "sw-1x16"); fatal() on anything else, listing the valid
 * names. The string half of the declarative config quadruple
 * (--mode, --policy, --arrival, --workload).
 */
DispatchMode dispatchModeFromName(const std::string &name);

/**
 * Read-only view of one dispatcher's state, passed to every policy
 * event. References stay valid only for the duration of the call.
 */
struct DispatchContext
{
    /** Per-core outstanding-RPC counts (indexed by global core id). */
    const std::vector<std::uint32_t> &outstanding;
    /** Cores this dispatcher may target. */
    const std::vector<proto::CoreId> &candidates;
    /** Max outstanding per core (§4.3: default 2). */
    std::uint32_t threshold;
    /** Current simulated time. */
    sim::Tick now;
    /** Source of randomness for stochastic policies. */
    sim::Rng &rng;
};

/**
 * Event-driven core-selection strategy. The dispatcher notifies the
 * policy of every RPC arrival, dispatch commitment, and completion, so
 * implementations can maintain private state; select() proposes the
 * next target core.
 *
 * Contract: select() must only return a candidate core whose live
 * outstanding count (ctx.outstanding) is below ctx.threshold — the
 * credit scheme's invariant. It may return nullopt to defer dispatch
 * even when credits are available (e.g. JBSQ's tighter per-core
 * bound); the head entry then waits in the shared CQ and select() is
 * re-asked after the next arrival or completion event.
 */
class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;

    /** An RPC entered this dispatcher's shared CQ. */
    virtual void
    onArrival(const DispatchContext &ctx)
    {
        (void)ctx;
    }

    /**
     * The dispatcher committed the head RPC to @p core (counts in
     * @p ctx already reflect the commitment).
     */
    virtual void
    onDispatch(proto::CoreId core, const DispatchContext &ctx)
    {
        (void)core;
        (void)ctx;
    }

    /**
     * @p core finished an RPC — its replenish reached the dispatcher
     * (counts in @p ctx already reflect the freed credit).
     */
    virtual void
    onComplete(proto::CoreId core, const DispatchContext &ctx)
    {
        (void)core;
        (void)ctx;
    }

    /**
     * Choose a target for the head of the shared CQ, or nullopt to
     * leave it queued.
     */
    virtual std::optional<proto::CoreId>
    select(const DispatchContext &ctx) = 0;

    /** Canonical spec string of this instance (e.g. "pow2:d=3"). */
    virtual std::string name() const = 0;
};

/**
 * Instantiate the policy named by @p spec via the PolicyRegistry.
 * PolicySpec converts implicitly from a spec string, so
 * makePolicy("jbsq:d=2") works; an unknown name is fatal with the
 * registered names listed.
 */
std::unique_ptr<DispatchPolicy> makePolicy(const PolicySpec &spec);

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_DISPATCH_POLICY_HH
