#include "ni/dispatcher.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::ni {

Dispatcher::Dispatcher(sim::EventDomain &sim, const Params &params,
                       std::unique_ptr<DispatchPolicy> policy,
                       std::uint32_t num_cores,
                       std::vector<proto::CoreId> candidates,
                       Deliver deliver)
    : sim_(sim), params_(params), policy_(std::move(policy)),
      candidates_(std::move(candidates)), deliver_(std::move(deliver)),
      outstanding_(num_cores, 0), rng_(params.seed, /*stream=*/0xD15A)
{
    RV_ASSERT(policy_ != nullptr, "dispatcher needs a policy");
    RV_ASSERT(!candidates_.empty(), "dispatcher needs candidate cores");
    RV_ASSERT(params_.outstandingThreshold >= 1,
              "outstanding threshold must be at least 1");
    for (const proto::CoreId c : candidates_)
        RV_ASSERT(c < num_cores, "candidate core out of range");
    RV_ASSERT(deliver_ != nullptr, "dispatcher needs a delivery hook");
}

DispatchContext
Dispatcher::context()
{
    return DispatchContext{outstanding_, candidates_,
                           params_.outstandingThreshold, sim_.now(), rng_};
}

void
Dispatcher::enqueue(proto::CompletionQueueEntry entry)
{
    sharedCq_.push(std::move(entry));
    policy_->onArrival(context());
    tryDispatch();
}

void
Dispatcher::onReplenish(proto::CoreId core)
{
    RV_ASSERT(core < outstanding_.size(), "replenish core out of range");
    RV_ASSERT(outstanding_[core] > 0, "replenish without outstanding RPC");
    --outstanding_[core];
    policy_->onComplete(core, context());
    tryDispatch();
}

std::uint32_t
Dispatcher::outstanding(proto::CoreId core) const
{
    RV_ASSERT(core < outstanding_.size(), "core out of range");
    return outstanding_[core];
}

void
Dispatcher::tryDispatch()
{
    // Drain the shared CQ to available cores in FIFO order (§4.3).
    // Each decision serializes on the dispatch pipeline.
    while (!sharedCq_.empty()) {
        const auto target = policy_->select(context());
        if (!target)
            return; // candidates saturated or assignment deferred
        RV_ASSERT(*target < outstanding_.size(),
                  "policy selected a core outside the chip");
        RV_ASSERT(std::find(candidates_.begin(), candidates_.end(),
                            *target) != candidates_.end(),
                  "policy selected a core outside its candidate set");
        RV_ASSERT(outstanding_[*target] < params_.outstandingThreshold,
                  "policy overcommitted a core past the credit threshold");
        ++outstanding_[*target];
        ++dispatched_;
        policy_->onDispatch(*target, context());
        proto::CompletionQueueEntry entry = sharedCq_.pop();

        const sim::Tick start = std::max(sim_.now(), pipeFreeAt_);
        pipeFreeAt_ = start + params_.decisionOccupancy;
        DeliveryEvent *ev = deliveryPool_.acquire();
        ev->disp = this;
        ev->core = *target;
        ev->entry = std::move(entry);
        sim_.scheduleAt(*ev, pipeFreeAt_);
    }
}

void
Dispatcher::DeliveryEvent::process()
{
    Dispatcher *d = disp;
    const proto::CoreId c = core;
    proto::CompletionQueueEntry e = std::move(entry);
    // Recycle first: the delivery hook can trigger another dispatch.
    d->deliveryPool_.release(this);
    d->deliver_(c, std::move(e));
}

} // namespace rpcvalet::ni
