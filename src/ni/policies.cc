/**
 * @file
 * Built-in dispatch policies, self-registered with the PolicyRegistry.
 *
 * The first three reproduce the paper's ablation set (greedy, rr,
 * pow2). The remaining three exercise the event-driven API's stateful
 * reach, inspired by related NI-dispatch systems:
 *
 *  - jbsq:d=N       JBSQ(n)-style bounded per-core queues with
 *                   deferred assignment (nanoPU): at most d RPCs are
 *                   committed per core; excess arrivals wait in the
 *                   shared CQ until a completion frees a slot.
 *  - stale-jsq      join-shortest-queue over a periodically sampled
 *                   (hence stale) load snapshot, modeling dispatchers
 *                   whose load telemetry lags the cores.
 *  - delay-aware    least-*work* selection: per-core remaining-work
 *                   estimates learned online from dispatch->completion
 *                   delays, discounting in-flight RPCs by their age.
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "ni/dispatch_policy.hh"
#include "sim/logging.hh"

namespace rpcvalet::ni {

namespace {

/**
 * The paper's proof-of-concept greedy dispatch: prefer the core with
 * the fewest outstanding requests (an idle core over a single-booked
 * one), breaking ties with a rotating cursor so load spreads evenly.
 */
class GreedyLeastLoaded : public DispatchPolicy
{
  public:
    std::optional<proto::CoreId>
    select(const DispatchContext &ctx) override
    {
        std::optional<proto::CoreId> best;
        std::uint32_t best_load = ctx.threshold;
        const std::size_t n = ctx.candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = ctx.candidates[(cursor_ + i) % n];
            const std::uint32_t load = ctx.outstanding[core];
            if (load < best_load) {
                best = core;
                best_load = load;
                if (load == 0)
                    break; // cannot do better than idle
            }
        }
        if (best)
            cursor_ = (cursor_ + 1) % n;
        return best;
    }

    std::string name() const override { return "greedy"; }

  private:
    std::size_t cursor_ = 0;
};

/** Plain rotation over candidates, skipping saturated cores. */
class RoundRobin : public DispatchPolicy
{
  public:
    std::optional<proto::CoreId>
    select(const DispatchContext &ctx) override
    {
        const std::size_t n = ctx.candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = ctx.candidates[(cursor_ + i) % n];
            if (ctx.outstanding[core] < ctx.threshold) {
                cursor_ = (cursor_ + i + 1) % n;
                return core;
            }
        }
        return std::nullopt;
    }

    std::string name() const override { return "rr"; }

  private:
    std::size_t cursor_ = 0;
};

/**
 * Power-of-d-choices: sample d random candidates and keep the least
 * loaded; fall back to a linear scan when all samples are saturated
 * (the hardware equivalent would retry, but the fallback keeps the
 * simulation work-conserving for a fair comparison).
 */
class PowerOfDChoices : public DispatchPolicy
{
  public:
    explicit PowerOfDChoices(std::uint32_t d) : d_(d)
    {
        if (d_ < 1)
            sim::fatal("pow2 needs d >= 1");
    }

    std::optional<proto::CoreId>
    select(const DispatchContext &ctx) override
    {
        const std::size_t n = ctx.candidates.size();
        proto::CoreId pick = ctx.candidates[ctx.rng.uniformInt(0, n - 1)];
        for (std::uint32_t s = 1; s < d_; ++s) {
            const proto::CoreId other =
                ctx.candidates[ctx.rng.uniformInt(0, n - 1)];
            if (ctx.outstanding[other] < ctx.outstanding[pick])
                pick = other;
        }
        if (ctx.outstanding[pick] < ctx.threshold)
            return pick;
        for (const proto::CoreId core : ctx.candidates) {
            if (ctx.outstanding[core] < ctx.threshold)
                return core;
        }
        return std::nullopt;
    }

    std::string
    name() const override
    {
        return "pow2:d=" + std::to_string(d_);
    }

  private:
    std::uint32_t d_;
};

/**
 * JBSQ(d): join-bounded-shortest-queue with deferred assignment. The
 * policy tracks its own per-core commitment counts through the
 * dispatch/complete events and never commits more than d RPCs to a
 * core; when every candidate is at its bound the head RPC stays in
 * the shared CQ (deferred) until a completion frees a slot.
 */
class Jbsq : public DispatchPolicy
{
  public:
    explicit Jbsq(std::uint32_t d) : d_(d)
    {
        if (d_ < 1)
            sim::fatal("jbsq needs d >= 1");
    }

    void
    onArrival(const DispatchContext &ctx) override
    {
        (void)ctx;
        ++pending_;
    }

    void
    onDispatch(proto::CoreId core, const DispatchContext &ctx) override
    {
        ensureSize(ctx);
        ++committed_[core];
        RV_ASSERT(pending_ > 0, "JBSQ dispatch without a pending arrival");
        --pending_;
    }

    void
    onComplete(proto::CoreId core, const DispatchContext &ctx) override
    {
        ensureSize(ctx);
        RV_ASSERT(committed_[core] > 0,
                  "JBSQ completion without a committed RPC");
        --committed_[core];
    }

    std::optional<proto::CoreId>
    select(const DispatchContext &ctx) override
    {
        ensureSize(ctx);
        const std::uint32_t bound = std::min(d_, ctx.threshold);
        std::optional<proto::CoreId> best;
        std::uint32_t best_load = bound;
        const std::size_t n = ctx.candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = ctx.candidates[(cursor_ + i) % n];
            const std::uint32_t load = committed_[core];
            if (load < best_load) {
                best = core;
                best_load = load;
                if (load == 0)
                    break;
            }
        }
        if (best)
            cursor_ = (cursor_ + 1) % n;
        return best;
    }

    std::string
    name() const override
    {
        return "jbsq:d=" + std::to_string(d_);
    }

  private:
    void
    ensureSize(const DispatchContext &ctx)
    {
        if (committed_.size() < ctx.outstanding.size())
            committed_.resize(ctx.outstanding.size(), 0);
    }

    std::uint32_t d_;
    std::vector<std::uint32_t> committed_;
    std::uint64_t pending_ = 0;
    std::size_t cursor_ = 0;
};

/**
 * Join-shortest-queue over stale load information: the policy refreshes
 * its private snapshot of the outstanding counts at most once per
 * staleness window and ranks cores by the snapshot, modeling load
 * telemetry that lags the cores. Admission still checks the live
 * credit counters (the NI owns those), so the threshold invariant
 * holds regardless of staleness. With staleness=0 the snapshot always
 * equals the live counts and the policy degenerates to greedy.
 */
class StaleJsq : public DispatchPolicy
{
  public:
    explicit StaleJsq(sim::Tick staleness) : staleness_(staleness) {}

    std::optional<proto::CoreId>
    select(const DispatchContext &ctx) override
    {
        if (!hasSnapshot_ || ctx.now - snapshotAt_ >= staleness_) {
            snapshot_ = ctx.outstanding;
            snapshotAt_ = ctx.now;
            hasSnapshot_ = true;
        }
        std::optional<proto::CoreId> best;
        std::uint32_t best_estimate =
            std::numeric_limits<std::uint32_t>::max();
        const std::size_t n = ctx.candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = ctx.candidates[(cursor_ + i) % n];
            if (ctx.outstanding[core] >= ctx.threshold)
                continue; // live credit check, never stale
            const std::uint32_t estimate = snapshot_[core];
            if (estimate < best_estimate) {
                best = core;
                best_estimate = estimate;
                if (estimate == 0)
                    break;
            }
        }
        if (best)
            cursor_ = (cursor_ + 1) % n;
        return best;
    }

    std::string
    name() const override
    {
        return sim::strfmt("stale-jsq:staleness=%gns",
                           sim::toNs(staleness_));
    }

  private:
    sim::Tick staleness_;
    std::vector<std::uint32_t> snapshot_;
    sim::Tick snapshotAt_ = 0;
    bool hasSnapshot_ = false;
    std::size_t cursor_ = 0;
};

/**
 * Delay-aware least-work: estimates each core's remaining work instead
 * of counting RPCs. The policy learns the mean dispatch-to-completion
 * delay online (EWMA over the completion events) and scores a core as
 * the sum, over its in-flight RPCs, of the learned delay discounted by
 * how long each has already been in flight — so a core whose RPC is
 * about to finish beats one that just started, even at equal counts.
 */
class DelayAwareLeastWork : public DispatchPolicy
{
  public:
    explicit DelayAwareLeastWork(double alpha, sim::Tick initial_estimate)
        : alpha_(alpha), init_(initial_estimate),
          ewmaDelayNs_(sim::toNs(initial_estimate))
    {
        // Negated form so NaN (all comparisons false) is also fatal.
        if (!(alpha_ > 0.0 && alpha_ <= 1.0))
            sim::fatal("delay-aware needs alpha in (0, 1]");
    }

    void
    onDispatch(proto::CoreId core, const DispatchContext &ctx) override
    {
        ensureSize(ctx);
        inFlight_[core].push_back(ctx.now);
    }

    void
    onComplete(proto::CoreId core, const DispatchContext &ctx) override
    {
        ensureSize(ctx);
        RV_ASSERT(!inFlight_[core].empty(),
                  "delay-aware completion without an in-flight RPC");
        // Completions are credited oldest-first; with threshold 2 the
        // pipelined second RPC starts only after the first finishes,
        // so FIFO matches the core's actual service order.
        const sim::Tick dispatched = inFlight_[core].front();
        inFlight_[core].pop_front();
        const double delay_ns = sim::toNs(ctx.now - dispatched);
        ewmaDelayNs_ = (1.0 - alpha_) * ewmaDelayNs_ + alpha_ * delay_ns;
    }

    std::optional<proto::CoreId>
    select(const DispatchContext &ctx) override
    {
        ensureSize(ctx);
        std::optional<proto::CoreId> best;
        double best_work = std::numeric_limits<double>::infinity();
        const std::size_t n = ctx.candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = ctx.candidates[(cursor_ + i) % n];
            if (ctx.outstanding[core] >= ctx.threshold)
                continue;
            const double work = remainingWorkNs(core, ctx.now);
            if (work < best_work) {
                best = core;
                best_work = work;
                if (work == 0.0)
                    break; // idle core
            }
        }
        if (best)
            cursor_ = (cursor_ + 1) % n;
        return best;
    }

    std::string
    name() const override
    {
        return sim::strfmt("delay-aware:alpha=%g,init=%gns", alpha_,
                           sim::toNs(init_));
    }

  private:
    void
    ensureSize(const DispatchContext &ctx)
    {
        if (inFlight_.size() < ctx.outstanding.size())
            inFlight_.resize(ctx.outstanding.size());
    }

    double
    remainingWorkNs(proto::CoreId core, sim::Tick now) const
    {
        double total = 0.0;
        for (const sim::Tick dispatched : inFlight_[core]) {
            const double age_ns = sim::toNs(now - dispatched);
            total += std::max(ewmaDelayNs_ - age_ns, 0.0);
        }
        return total;
    }

    double alpha_;
    sim::Tick init_;
    double ewmaDelayNs_;
    std::vector<std::deque<sim::Tick>> inFlight_;
    std::size_t cursor_ = 0;
};

/** uintParam narrowed to uint32; out-of-range is fatal, not a wrap. */
std::uint32_t
uint32Param(const PolicySpec &spec, const char *key, std::uint32_t fallback)
{
    const std::uint64_t value = spec.uintParam(key, fallback);
    if (value > std::numeric_limits<std::uint32_t>::max()) {
        sim::fatal("policy '" + spec.toString() + "': parameter '" +
                   key + "' is out of range");
    }
    return static_cast<std::uint32_t>(value);
}

const PolicyRegistrar greedyReg("greedy", [](const PolicySpec &spec) {
    spec.expectKeys({});
    return std::make_unique<GreedyLeastLoaded>();
});

const PolicyRegistrar rrReg("rr", [](const PolicySpec &spec) {
    spec.expectKeys({});
    return std::make_unique<RoundRobin>();
});

const PolicyRegistrar pow2Reg("pow2", [](const PolicySpec &spec) {
    spec.expectKeys({"d"});
    return std::make_unique<PowerOfDChoices>(uint32Param(spec, "d", 2));
});

const PolicyRegistrar jbsqReg("jbsq", [](const PolicySpec &spec) {
    spec.expectKeys({"d"});
    return std::make_unique<Jbsq>(uint32Param(spec, "d", 2));
});

const PolicyRegistrar staleJsqReg("stale-jsq", [](const PolicySpec &spec) {
    spec.expectKeys({"staleness"});
    return std::make_unique<StaleJsq>(
        spec.tickParam("staleness", sim::nanoseconds(100.0)));
});

const PolicyRegistrar delayAwareReg(
    "delay-aware", [](const PolicySpec &spec) {
        spec.expectKeys({"alpha", "init"});
        return std::make_unique<DelayAwareLeastWork>(
            spec.doubleParam("alpha", 0.1),
            spec.tickParam("init", sim::nanoseconds(550.0)));
    });

} // namespace

// Anchor odr-used by PolicyRegistry::instance() so this translation
// unit — and with it the registrars above — is linked into every
// binary that touches the registry.
void
linkBuiltinPolicies()
{
}

} // namespace rpcvalet::ni
