#include "ni/backend.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::ni {

NiBackend::NiBackend(sim::EventDomain &sim, const Params &params,
                     const mem::MemoryModel &memory, mem::RecvBuffer &recv,
                     CompletionHandler on_complete,
                     ReplenishHandler on_replenish, Injector inject)
    : sim_(sim), params_(params), memory_(memory), recv_(recv),
      onComplete_(std::move(on_complete)),
      onReplenish_(std::move(on_replenish)), inject_(std::move(inject))
{
    RV_ASSERT(onComplete_ != nullptr, "backend needs a completion hook");
    RV_ASSERT(onReplenish_ != nullptr, "backend needs a replenish hook");
    RV_ASSERT(inject_ != nullptr, "backend needs a fabric injector");
}

void
NiBackend::stallIngress(sim::Tick until)
{
    stallUntil_ = std::max(stallUntil_, until);
}

void
NiBackend::receivePacket(proto::Packet pkt)
{
    // Serialize packets through the ingress pipeline; an injected
    // stall (stallIngress) holds the pipeline's next free slot back.
    const sim::Tick arrival = sim_.now();
    const sim::Tick start =
        std::max({arrival, ingressFreeAt_, stallUntil_});
    ingressFreeAt_ = start + params_.packetOccupancy;
    ingressBusy_ += params_.packetOccupancy;
    ++packetsReceived_;
    IngressEvent *ev = ingressPool_.acquire();
    ev->backend = this;
    ev->pkt = std::move(pkt);
    ev->arrival = arrival;
    sim_.scheduleAt(*ev, ingressFreeAt_);
}

void
NiBackend::IngressEvent::process()
{
    NiBackend *b = backend;
    proto::Packet p = std::move(pkt);
    const sim::Tick t = arrival;
    // Recycle first: processing can receive/forward more packets.
    b->ingressPool_.release(this);
    b->processIngress(std::move(p), t);
}

void
NiBackend::InjectEvent::process()
{
    NiBackend *b = backend;
    proto::Packet p = std::move(pkt);
    if (countOnFire)
        ++b->packetsSent_;
    b->injectPool_.release(this);
    b->inject_(std::move(p));
}

void
NiBackend::CompletionEvent::process()
{
    NiBackend *b = backend;
    const proto::CompletionQueueEntry entry = cqe;
    b->completionPool_.release(this);
    b->onComplete_(b->params_.id, entry);
}

void
NiBackend::processIngress(proto::Packet pkt, sim::Tick arrival)
{
    switch (pkt.hdr.op) {
      case proto::OpType::Send: {
        // §4.4: write the payload block, fetch-and-increment the
        // arrival counter, compare against the header's total size.
        const bool complete = recv_.packetArrived(pkt, arrival);
        if (!complete)
            break;
        const std::uint32_t index =
            recv_.domain().slotIndex(pkt.hdr.src, pkt.hdr.slot);
        if (pkt.hdr.rendezvous) {
            // §4.2 rendezvous: the descriptor names the payload's
            // location and size; the NI pulls it with a one-sided
            // read rather than notifying a core yet.
            const std::uint32_t full = pkt.hdr.rendezvousBytes;
            recv_.beginRendezvous(index, full);
            proto::Packet read;
            read.hdr.op = proto::OpType::RemoteRead;
            read.hdr.src = pkt.hdr.dst; // us
            read.hdr.dst = pkt.hdr.src; // payload owner
            read.hdr.slot = pkt.hdr.slot;
            read.hdr.totalBlocks = 1;
            read.hdr.msgBytes = full;
            ++rendezvousPulls_;
            InjectEvent *ev = injectPool_.acquire();
            ev->backend = this;
            ev->pkt = std::move(read);
            ev->countOnFire = true;
            sim_.schedule(*ev, memory_.counterUpdateLatency());
            break;
        }
        signalCompletion(index, pkt.hdr.src, pkt.hdr.connClient);
        break;
      }
      case proto::OpType::ReadResponse: {
        // Rendezvous pull data coming back; completes like a send
        // once every block has landed.
        const bool complete = recv_.pullBlockArrived(pkt);
        if (complete) {
            const std::uint32_t index =
                recv_.domain().slotIndex(pkt.hdr.src, pkt.hdr.slot);
            signalCompletion(index, pkt.hdr.src, pkt.hdr.connClient);
        }
        break;
      }
      case proto::OpType::Replenish:
        // §4.2 step C: reset the valid field of the named send slot.
        onReplenish_(pkt.hdr.src, pkt.hdr.slot);
        break;
      case proto::OpType::RemoteRead:
      case proto::OpType::RemoteWrite:
        // Plain one-sided ops require no CPU notification (§3.3); the
        // RPC experiments never issue them to the modeled node.
        break;
    }
}

void
NiBackend::signalCompletion(std::uint32_t index, proto::NodeId src,
                            std::uint32_t conn_client)
{
    const mem::RecvSlot &slot = recv_.slot(index);
    proto::CompletionQueueEntry cqe;
    cqe.slotIndex = index;
    cqe.srcNode = src;
    cqe.msgBytes = slot.msgBytes;
    cqe.firstPacketTick = slot.firstPacketTick;
    cqe.completionTick = sim_.now();
    // The stateless protocol repeats the header on every block, so the
    // completing packet's connection id is the message's.
    cqe.connClient = conn_client;
    ++completions_;
    // The completion is known one counter update after the last
    // packet clears the pipeline.
    CompletionEvent *ev = completionPool_.acquire();
    ev->backend = this;
    ev->cqe = cqe;
    sim_.schedule(*ev, memory_.counterUpdateLatency());
}

void
NiBackend::transmitMessage(proto::OpType op, proto::NodeId self,
                           proto::NodeId dst, std::uint32_t slot,
                           const std::vector<std::uint8_t> &payload)
{
    auto packets = proto::packetize(op, self, dst, slot, payload);
    // First packet waits for the payload fetch from the memory
    // hierarchy; subsequent blocks stream at pipeline rate.
    sim::Tick ready = sim_.now() + params_.txSetupLatency;
    for (auto &pkt : packets) {
        const sim::Tick start = std::max(ready, egressFreeAt_);
        egressFreeAt_ = start + params_.packetOccupancy;
        ++packetsSent_;
        InjectEvent *ev = injectPool_.acquire();
        ev->backend = this;
        ev->pkt = std::move(pkt);
        ev->countOnFire = false;
        sim_.scheduleAt(*ev, egressFreeAt_);
    }
}

} // namespace rpcvalet::ni
