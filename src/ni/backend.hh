/**
 * @file
 * NI backend: the data-plane half of the Manycore NI (Fig. 4, §4.1).
 *
 * Backends sit on the chip edge and run soNUMA's three pipelines. This
 * model implements the two that matter for messaging:
 *
 *  - Remote Request Processing (ingress): per incoming packet, write
 *    the payload block into the receive buffer, fetch-and-increment
 *    the slot's arrival counter, and — when the counter matches the
 *    header's totalBlocks — emit a message-completion notification
 *    (§4.4's new pipeline stages).
 *  - Request Generation (egress): unroll a send/replenish WQE into
 *    cache-block packets and stream them into the fabric.
 *
 *  Each direction is a serial pipeline with per-packet occupancy;
 *  queueing behind it under load produces the implementation
 *  contention the paper cites for its model-vs-simulation gap (§6.3).
 */

#ifndef RPCVALET_NI_BACKEND_HH
#define RPCVALET_NI_BACKEND_HH

#include <cstdint>
#include <functional>

#include "mem/buffers.hh"
#include "mem/memory_model.hh"
#include "proto/packet.hh"
#include "proto/qp.hh"
#include "sim/domain.hh"

namespace rpcvalet::ni {

/** One NI backend (ingress + egress pipelines). */
class NiBackend
{
  public:
    /** Completion hook: a full message is ready for dispatch. */
    using CompletionHandler =
        std::function<void(std::uint32_t backend_id,
                           proto::CompletionQueueEntry)>;
    /** Hook for incoming replenish packets (free a local send slot). */
    using ReplenishHandler =
        std::function<void(proto::NodeId dst, std::uint32_t slot)>;
    /** Packet injection into the inter-node fabric. */
    using Injector = std::function<void(proto::Packet)>;

    struct Params
    {
        std::uint32_t id = 0;
        /** Pipeline occupancy per packet, both directions. */
        sim::Tick packetOccupancy = sim::nanoseconds(3.0);
        /** Payload fetch latency before the first egress packet. */
        sim::Tick txSetupLatency = sim::nanoseconds(4.5);
    };

    NiBackend(sim::EventDomain &sim, const Params &params,
              const mem::MemoryModel &memory, mem::RecvBuffer &recv,
              CompletionHandler on_complete, ReplenishHandler on_replenish,
              Injector inject);

    /** Fabric ingress: a packet addressed to this node. */
    void receivePacket(proto::Packet pkt);

    /**
     * Fault injection (ni-stall): the ingress pipeline stops draining
     * until @p until. Arriving packets queue behind the stall and
     * drain in order when it lifts — a microcode hiccup, not a crash:
     * nothing is dropped. Overlapping stalls keep the latest end.
     */
    void stallIngress(sim::Tick until);

    /**
     * Egress: transmit a message (send or replenish) to @p dst,
     * landing in per-pair slot @p slot at the destination.
     */
    void transmitMessage(proto::OpType op, proto::NodeId self,
                         proto::NodeId dst, std::uint32_t slot,
                         const std::vector<std::uint8_t> &payload);

    std::uint64_t packetsReceived() const { return packetsReceived_; }
    std::uint64_t packetsSent() const { return packetsSent_; }
    std::uint64_t completionsSignaled() const { return completions_; }

    /** Rendezvous pulls issued (§4.2 large-message path). */
    std::uint64_t rendezvousPulls() const { return rendezvousPulls_; }

    /** Aggregate busy time of the ingress pipeline (utilization). */
    sim::Tick ingressBusyTicks() const { return ingressBusy_; }

  private:
    /** Packet waiting out the ingress pipeline occupancy (pooled). */
    struct IngressEvent : sim::Event
    {
        NiBackend *backend = nullptr;
        proto::Packet pkt;
        sim::Tick arrival = 0;

        void process() override;
        const char *description() const override
        {
            return "ni-ingress";
        }
    };

    /** Packet leaving for the fabric: egress streams and rendezvous
     *  pulls (the latter count packetsSent at fire time). */
    struct InjectEvent : sim::Event
    {
        NiBackend *backend = nullptr;
        proto::Packet pkt;
        bool countOnFire = false;

        void process() override;
        const char *description() const override
        {
            return "ni-inject";
        }
    };

    /** Message-completion notification riding the counter update. */
    struct CompletionEvent : sim::Event
    {
        NiBackend *backend = nullptr;
        proto::CompletionQueueEntry cqe;

        void process() override;
        const char *description() const override
        {
            return "ni-completion";
        }
    };

    void processIngress(proto::Packet pkt, sim::Tick arrival);
    void signalCompletion(std::uint32_t index, proto::NodeId src,
                          std::uint32_t conn_client);

    sim::EventDomain &sim_;
    Params params_;
    const mem::MemoryModel &memory_;
    mem::RecvBuffer &recv_;
    CompletionHandler onComplete_;
    ReplenishHandler onReplenish_;
    Injector inject_;

    sim::Tick ingressFreeAt_ = 0;
    sim::Tick egressFreeAt_ = 0;
    /** Ingress pipeline stalled until this tick (fault injection). */
    sim::Tick stallUntil_ = 0;
    sim::Tick ingressBusy_ = 0;
    std::uint64_t packetsReceived_ = 0;
    std::uint64_t packetsSent_ = 0;
    std::uint64_t completions_ = 0;
    std::uint64_t rendezvousPulls_ = 0;
    sim::EventPool<IngressEvent> ingressPool_;
    sim::EventPool<InjectEvent> injectPool_;
    sim::EventPool<CompletionEvent> completionPool_;
};

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_BACKEND_HH
