#include "ni/dispatch_policy.hh"

#include "sim/logging.hh"

namespace rpcvalet::ni {

std::string
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::SingleQueue: return "1x16";
      case DispatchMode::PerBackendGroup: return "4x4";
      case DispatchMode::StaticHash: return "16x1";
      case DispatchMode::SoftwarePull: return "sw-1x16";
    }
    sim::panic("unknown DispatchMode");
}

std::unique_ptr<DispatchPolicy>
makePolicy(const PolicySpec &spec)
{
    return PolicyRegistry::instance().make(spec);
}

} // namespace rpcvalet::ni
