#include "ni/dispatch_policy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rpcvalet::ni {

std::string
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::SingleQueue: return "1x16";
      case DispatchMode::PerBackendGroup: return "4x4";
      case DispatchMode::StaticHash: return "16x1";
      case DispatchMode::SoftwarePull: return "sw-1x16";
    }
    sim::panic("unknown DispatchMode");
}

std::string
policyKindName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::GreedyLeastLoaded: return "greedy";
      case PolicyKind::RoundRobin: return "round-robin";
      case PolicyKind::PowerOfTwoChoices: return "po2c";
    }
    sim::panic("unknown PolicyKind");
}

namespace {

/**
 * The paper's proof-of-concept greedy dispatch: prefer the core with
 * the fewest outstanding requests (an idle core over a single-booked
 * one), breaking ties with a rotating cursor so load spreads evenly.
 */
class GreedyLeastLoaded : public DispatchPolicy
{
  public:
    std::optional<proto::CoreId>
    select(const std::vector<std::uint32_t> &outstanding,
           std::uint32_t threshold,
           const std::vector<proto::CoreId> &candidates,
           sim::Rng &rng) override
    {
        (void)rng;
        std::optional<proto::CoreId> best;
        std::uint32_t best_load = threshold;
        const std::size_t n = candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = candidates[(cursor_ + i) % n];
            const std::uint32_t load = outstanding[core];
            if (load < best_load) {
                best = core;
                best_load = load;
                if (load == 0)
                    break; // cannot do better than idle
            }
        }
        if (best)
            cursor_ = (cursor_ + 1) % n;
        return best;
    }

    std::string name() const override { return "greedy"; }

  private:
    std::size_t cursor_ = 0;
};

/** Plain rotation over candidates, skipping saturated cores. */
class RoundRobin : public DispatchPolicy
{
  public:
    std::optional<proto::CoreId>
    select(const std::vector<std::uint32_t> &outstanding,
           std::uint32_t threshold,
           const std::vector<proto::CoreId> &candidates,
           sim::Rng &rng) override
    {
        (void)rng;
        const std::size_t n = candidates.size();
        for (std::size_t i = 0; i < n; ++i) {
            const proto::CoreId core = candidates[(cursor_ + i) % n];
            if (outstanding[core] < threshold) {
                cursor_ = (cursor_ + i + 1) % n;
                return core;
            }
        }
        return std::nullopt;
    }

    std::string name() const override { return "round-robin"; }

  private:
    std::size_t cursor_ = 0;
};

/**
 * Power-of-two-choices: sample two random candidates and keep the less
 * loaded one; fall back to a linear scan when both are saturated (the
 * hardware equivalent would retry, but the fallback keeps the
 * simulation work-conserving for a fair comparison).
 */
class PowerOfTwoChoices : public DispatchPolicy
{
  public:
    std::optional<proto::CoreId>
    select(const std::vector<std::uint32_t> &outstanding,
           std::uint32_t threshold,
           const std::vector<proto::CoreId> &candidates,
           sim::Rng &rng) override
    {
        const std::size_t n = candidates.size();
        const proto::CoreId a = candidates[rng.uniformInt(0, n - 1)];
        const proto::CoreId b = candidates[rng.uniformInt(0, n - 1)];
        const proto::CoreId pick =
            outstanding[a] <= outstanding[b] ? a : b;
        if (outstanding[pick] < threshold)
            return pick;
        for (const proto::CoreId core : candidates) {
            if (outstanding[core] < threshold)
                return core;
        }
        return std::nullopt;
    }

    std::string name() const override { return "po2c"; }
};

} // namespace

std::unique_ptr<DispatchPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::GreedyLeastLoaded:
        return std::make_unique<GreedyLeastLoaded>();
      case PolicyKind::RoundRobin:
        return std::make_unique<RoundRobin>();
      case PolicyKind::PowerOfTwoChoices:
        return std::make_unique<PowerOfTwoChoices>();
    }
    sim::panic("unknown PolicyKind");
}

} // namespace rpcvalet::ni
