#include "ni/dispatch_policy.hh"

#include "sim/logging.hh"

namespace rpcvalet::ni {

std::string
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::SingleQueue: return "1x16";
      case DispatchMode::PerBackendGroup: return "4x4";
      case DispatchMode::StaticHash: return "16x1";
      case DispatchMode::SoftwarePull: return "sw-1x16";
    }
    sim::panic("unknown DispatchMode");
}

std::vector<DispatchMode>
allDispatchModes()
{
    return {DispatchMode::SingleQueue, DispatchMode::PerBackendGroup,
            DispatchMode::StaticHash, DispatchMode::SoftwarePull};
}

DispatchMode
dispatchModeFromName(const std::string &name)
{
    std::string valid;
    for (const DispatchMode mode : allDispatchModes()) {
        if (dispatchModeName(mode) == name)
            return mode;
        if (!valid.empty())
            valid += ", ";
        valid += dispatchModeName(mode);
    }
    sim::fatal("unknown dispatch mode '" + name + "' (one of: " + valid +
               ")");
}

std::unique_ptr<DispatchPolicy>
makePolicy(const PolicySpec &spec)
{
    return PolicyRegistry::instance().make(spec);
}

} // namespace rpcvalet::ni
