/**
 * @file
 * The NI dispatcher: RPCValet's core mechanism (§4.3).
 *
 * One NI backend is designated the dispatcher. NI backends forward
 * message-completion notifications to it; it enqueues them in the
 * shared CQ and pushes each to an available core's private CQ,
 * tracking per-core outstanding counts (threshold 2 by default — one
 * in service, one prefetched to hide the dispatch round-trip bubble).
 * A core's replenish signals completion and frees a credit.
 *
 * The dispatcher is a serial hardware unit: decisions occupy its
 * pipeline for a configurable time, which models the centralization
 * cost the paper argues is negligible (§4.3's ~31/8 ns budget).
 */

#ifndef RPCVALET_NI_DISPATCHER_HH
#define RPCVALET_NI_DISPATCHER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ni/dispatch_policy.hh"
#include "proto/qp.hh"
#include "sim/domain.hh"

namespace rpcvalet::ni {

/** NI dispatcher for one group of cores. */
class Dispatcher
{
  public:
    /** Delivery hook: push a CQE toward a core's NI frontend. */
    using Deliver =
        std::function<void(proto::CoreId, proto::CompletionQueueEntry)>;

    struct Params
    {
        /** Max outstanding RPCs per core (§4.3: 2). */
        std::uint32_t outstandingThreshold = 2;
        /** Pipeline occupancy per dispatch decision. */
        sim::Tick decisionOccupancy = sim::nanoseconds(4.0);
        /** RNG seed for stochastic policies. */
        std::uint64_t seed = 1;
    };

    /**
     * @param sim        Owning simulator.
     * @param params     Tuning knobs.
     * @param policy     Core-selection heuristic (owned).
     * @param num_cores  Total cores on the chip (outstanding[] size).
     * @param candidates Cores this dispatcher may target.
     * @param deliver    CQE delivery hook (applies mesh/frontend
     *                   latency on the caller side).
     */
    Dispatcher(sim::EventDomain &sim, const Params &params,
               std::unique_ptr<DispatchPolicy> policy,
               std::uint32_t num_cores,
               std::vector<proto::CoreId> candidates, Deliver deliver);

    /**
     * A fully received message arrived from some NI backend. Fires the
     * policy's onArrival event, then drains what it can.
     */
    void enqueue(proto::CompletionQueueEntry entry);

    /**
     * A core finished an RPC (its replenish reached this dispatcher).
     * Fires the policy's onComplete event, then drains what it can.
     */
    void onReplenish(proto::CoreId core);

    /** Entries currently queued in the shared CQ. */
    std::size_t sharedCqDepth() const { return sharedCq_.size(); }

    /** Peak shared CQ occupancy. */
    std::size_t sharedCqPeak() const { return sharedCq_.highWatermark(); }

    /** Restart peak tracking (recording-window opener). */
    void resetSharedCqPeak() { sharedCq_.resetHighWatermark(); }

    /** Total dispatch decisions made. */
    std::uint64_t dispatched() const { return dispatched_; }

    /** Outstanding count for @p core (test/introspection hook). */
    std::uint32_t outstanding(proto::CoreId core) const;

  private:
    /** A decided CQE riding out the pipeline occupancy: pooled and
     *  reused, since several can be in flight behind the pipe. */
    struct DeliveryEvent : sim::Event
    {
        Dispatcher *disp = nullptr;
        proto::CoreId core = 0;
        proto::CompletionQueueEntry entry;

        void process() override;
        const char *description() const override
        {
            return "dispatch-delivery";
        }
    };

    void tryDispatch();
    DispatchContext context();

    sim::EventDomain &sim_;
    Params params_;
    std::unique_ptr<DispatchPolicy> policy_;
    std::vector<proto::CoreId> candidates_;
    Deliver deliver_;
    proto::Fifo<proto::CompletionQueueEntry> sharedCq_;
    std::vector<std::uint32_t> outstanding_;
    sim::Rng rng_;
    sim::Tick pipeFreeAt_ = 0;
    std::uint64_t dispatched_ = 0;
    sim::EventPool<DeliveryEvent> deliveryPool_;
};

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_DISPATCHER_HH
