/**
 * @file
 * String-keyed registry of dispatch-policy factories.
 *
 * Policies self-register at static-initialization time through a
 * PolicyRegistrar, so new policies — including ones defined entirely
 * outside src/ni (see examples/custom_policy_playground.cc) — become
 * selectable by spec string without touching the dispatcher, params,
 * or bench layers:
 *
 *   namespace {
 *   const ni::PolicyRegistrar reg("my-policy",
 *       [](const ni::PolicySpec &spec) {
 *           spec.expectKeys({"gain"});
 *           return std::make_unique<MyPolicy>(
 *               spec.doubleParam("gain", 1.0));
 *       });
 *   } // namespace
 *
 * Lookups are runtime-only (from main onward): a make() call during
 * another translation unit's static initialization may run before the
 * built-ins have registered.
 */

#ifndef RPCVALET_NI_POLICY_REGISTRY_HH
#define RPCVALET_NI_POLICY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ni/policy_spec.hh"

namespace rpcvalet::ni {

class DispatchPolicy;

/** Process-wide name -> factory table for dispatch policies. */
class PolicyRegistry
{
  public:
    /** Builds a policy instance from its (validated) spec. */
    using Factory =
        std::function<std::unique_ptr<DispatchPolicy>(const PolicySpec &)>;

    /** The process-wide registry (created on first use). */
    static PolicyRegistry &instance();

    /** Register @p factory under @p name; duplicate names are fatal. */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** Sorted names joined with ", " (for error messages and help). */
    std::string namesJoined() const;

    /**
     * Instantiate the policy @p spec names. An unregistered name is
     * fatal, with the message listing every registered name.
     */
    std::unique_ptr<DispatchPolicy> make(const PolicySpec &spec) const;

  private:
    PolicyRegistry() = default;

    std::map<std::string, Factory> factories_;
};

/** Registers a factory at static-initialization time. */
struct PolicyRegistrar
{
    PolicyRegistrar(const std::string &name,
                    PolicyRegistry::Factory factory);
};

} // namespace rpcvalet::ni

#endif // RPCVALET_NI_POLICY_REGISTRY_HH
