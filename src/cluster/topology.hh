/**
 * @file
 * Cluster topology primitives: keyspace sharding and node health.
 *
 * The experiment core grows from "one node + default sink" into a
 * topology-driven cluster (ROADMAP: the "millions of users" unlock):
 * N server nodes, each running its own NI dispatch, fronted by a
 * cluster-level router. This header holds the two router-independent
 * building blocks:
 *
 *  - ShardMap       partitions the workload keyspace into shards and
 *                   assigns each shard an owning server node, so
 *                   shard-affinity routing ("shard") and partition
 *                   tests share one source of truth
 *  - HealthTracker  marks a node down after K *consecutive* failures
 *                   (timeouts), with optional time-based recovery —
 *                   the failover model of the rpc-load-balancer
 *                   exemplar (SNIPPETS.md Snippet 1). Recovery is
 *                   probed, not assumed: the first post-recovery
 *                   request is a canary, and the node rejoins the
 *                   rotation only when it succeeds.
 */

#ifndef RPCVALET_CLUSTER_TOPOLOGY_HH
#define RPCVALET_CLUSTER_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace rpcvalet::cluster {

/** Full-avalanche key hash (splitmix64 finalizer) shared by the shard
 *  map and the consistent-hashing router, so "same key, same owner"
 *  holds across both. */
std::uint64_t mixKey(std::uint64_t key);

/** Static partition of the workload keyspace over server nodes. */
class ShardMap
{
  public:
    /**
     * @param num_shards   Shards the keyspace splits into (>= 1).
     * @param num_servers  Server nodes owning those shards (>= 1).
     */
    ShardMap(std::uint32_t num_shards, std::uint32_t num_servers);

    std::uint32_t numShards() const { return numShards_; }
    std::uint32_t numServers() const { return numServers_; }

    /** Shard a request key belongs to (hashed, so shards stay balanced
     *  even for sequential keys). */
    std::uint32_t shardOf(std::uint64_t key) const;

    /** Server index owning @p shard (round-robin assignment). */
    std::uint32_t ownerOf(std::uint32_t shard) const;

    /** Convenience: ownerOf(shardOf(key)). */
    std::uint32_t serverForKey(std::uint64_t key) const;

  private:
    std::uint32_t numShards_;
    std::uint32_t numServers_;
};

/**
 * Per-node health with consecutive-failure mark-down.
 *
 * A node goes down after @p fail_threshold consecutive reported
 * failures (any success resets the streak). When a recovery interval
 * is configured, a down node becomes *probeable* after that much
 * simulated time: isUp() returns true just long enough for the router
 * to send one canary request (noteRouted() marks it in flight), and
 * the node rejoins the rotation only when that canary succeeds. A
 * failed canary puts the node back down and restarts the recovery
 * clock — a still-dead node can never re-absorb a full load share on
 * a timer alone.
 */
class HealthTracker
{
  public:
    /**
     * @param num_nodes       Tracked server nodes.
     * @param fail_threshold  Consecutive failures that mark a node
     *                        down (>= 1).
     * @param recovery_after  Down time after which a node is optimistically
     *                        considered up again (0 = stays down).
     */
    HealthTracker(std::uint32_t num_nodes, std::uint32_t fail_threshold,
                  sim::Tick recovery_after);

    /** A request to @p node completed: reset its failure streak. A
     *  probing node's canary success marks it healthy again. */
    void reportSuccess(std::uint32_t node);

    /**
     * A request was actually routed to @p node. For a probing node
     * this is the canary going out: isUp() returns false until the
     * probe resolves (success or failure), so exactly one request at
     * a time tests a recovering node. No-op for healthy nodes.
     */
    void noteRouted(std::uint32_t node);

    /**
     * A request to @p node failed (timeout). Returns true when this
     * report transitioned the node from up to down.
     */
    bool reportFailure(std::uint32_t node, sim::Tick now);

    /** Administratively take @p node down (e.g. fault injection). */
    void markDown(std::uint32_t node, sim::Tick now);

    /** Whether @p node is up at @p now (applies optional recovery). */
    bool isUp(std::uint32_t node, sim::Tick now) const;

    /** Nodes currently down at @p now. */
    std::uint32_t nodesDown(sim::Tick now) const;

    /** Total up -> down transitions observed. */
    std::uint64_t downTransitions() const { return downTransitions_; }

  private:
    struct State
    {
        std::uint32_t consecutiveFailures = 0;
        bool down = false;
        /** Recovery elapsed; the node may receive one canary. */
        bool probing = false;
        /** The canary request is out, awaiting its verdict. */
        bool canaryInFlight = false;
        sim::Tick downSince = 0;
    };

    /** Recovery is applied lazily on isUp(); mutable keeps the check
     *  const for read-only callers (routers). */
    mutable std::vector<State> nodes_;
    std::uint32_t failThreshold_;
    sim::Tick recoveryAfter_;
    std::uint64_t downTransitions_ = 0;
};

} // namespace rpcvalet::cluster

#endif // RPCVALET_CLUSTER_TOPOLOGY_HH
