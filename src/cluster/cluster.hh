/**
 * @file
 * Cluster-level experiment configuration.
 *
 * ClusterConfig is the topology axis of an experiment: how many server
 * nodes sit behind the router, how the keyspace shards over them, which
 * router balances across them, and the failure/failover knobs (timeout
 * detection, health threshold, optional recovery, and fault injection
 * for failover experiments). The default configuration — one server,
 * "direct" router — reproduces the pre-cluster single-node experiment
 * bit-identically (see tests/cluster/cluster_experiment_test.cc).
 */

#ifndef RPCVALET_CLUSTER_CLUSTER_HH
#define RPCVALET_CLUSTER_CLUSTER_HH

#include <cstdint>

#include "cluster/router.hh"
#include "sim/types.hh"

namespace rpcvalet::cluster {

/** Topology + routing + failover knobs of one experiment. */
struct ClusterConfig
{
    /** Server nodes behind the router (>= 1). 1 keeps the legacy
     *  single-node fast path. */
    std::uint32_t numServerNodes = 1;

    /** Cluster router spec ("direct", "random", "rr", "shard",
     *  "bounded-load:c=,vnodes=", or an externally registered name). */
    RouterSpec router{};

    /** Keyspace shards. 0 = one shard per server node. */
    std::uint32_t shards = 0;

    /** Consecutive request timeouts that mark a server down (>= 1). */
    std::uint32_t failThreshold = 3;

    /**
     * Client-side request timeout in ticks. 0 disables timeout
     * detection (and with it health-based failover) — required for the
     * bit-identical single-node path, which must not schedule extra
     * sweep events.
     */
    sim::Tick requestTimeout = 0;

    /** Down time after which a failed node re-enters rotation
     *  (0 = stays down once marked). */
    sim::Tick recoveryAfter = 0;

    /**
     * Timeout-sweep period in ticks. 0 (the default) derives it from
     * the request timeout: max(1, requestTimeout / 4). Sub-µs timeout
     * experiments can pin it explicitly so detection latency is not
     * quantized by the sweep; setting it without a request timeout is
     * rejected (there is no sweep to tune).
     */
    sim::Tick sweepInterval = 0;

    /** Fault injection: server index to force-fail (-1 = none). */
    std::int32_t failNode = -1;

    /** Simulated time at which @c failNode stops responding. */
    sim::Tick failAt = 0;

    /** Fatal (with the offending value) on inconsistent settings. */
    void validate() const;
};

} // namespace rpcvalet::cluster

#endif // RPCVALET_CLUSTER_CLUSTER_HH
