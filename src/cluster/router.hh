/**
 * @file
 * Cluster-level request routing: the fourth spec axis.
 *
 * RPCValet balances µs-scale RPCs *within* one node's NI; a cluster
 * needs a second balancing level in front, deciding which server node
 * each request goes to. This subsystem makes that router a first-class
 * string-selectable component, completing the quintuple
 * --mode / --policy / --arrival / --workload / --router and mirroring
 * the policy/arrival/workload architecture:
 *
 *  - RouterSpec      "name:key=value,..." (sim::Spec with router
 *                    diagnostics), e.g. "bounded-load:c=1.25"
 *  - ClusterView     what a router may observe: per-server health and
 *                    outstanding request counts (implemented by the
 *                    traffic generator)
 *  - RouteContext    one decision's inputs — request key, request
 *                    class (so scans can route differently from gets),
 *                    client node, the view, the shard map, and a
 *                    router-private Rng stream
 *  - Router          picks a server index in [0, numServers)
 *  - RouterRegistry  process-wide name -> factory table; routers
 *                    self-register via RouterRegistrar, including from
 *                    outside src/ (see
 *                    examples/custom_router_playground.cc). Lookups
 *                    are runtime-only (from main onward), as with the
 *                    other registries: a make() call during another
 *                    translation unit's static initialization may run
 *                    before the built-ins have registered
 *
 * Built-ins (src/cluster/routers.cc): "direct" (always server 0; the
 * bit-identical single-node path), "random", "rr", "shard"
 * (shard-affinity from the request key), and "bounded-load:c=,vnodes="
 * (consistent hashing with bounded loads). All built-ins skip nodes
 * the HealthTracker marks down and fail over to an up peer.
 */

#ifndef RPCVALET_CLUSTER_ROUTER_HH
#define RPCVALET_CLUSTER_ROUTER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/topology.hh"
#include "sim/rng.hh"
#include "sim/spec.hh"

namespace rpcvalet::cluster {

/** A router selection: registry name plus parameters. */
struct RouterSpec : public sim::Spec
{
    /** Default router: "direct" (everything to server 0). */
    RouterSpec();

    /** Implicit: parse a spec string (fatal on malformed input). */
    RouterSpec(const char *text);
    RouterSpec(const std::string &text);

    /** Parse "name" or "name:k=v,k=v" (see sim::Spec::parse). */
    static RouterSpec parse(const std::string &text);
};

/**
 * Read-only cluster state a router may consult. Server indices are
 * cluster-local (0..numServers-1), not fabric node ids.
 */
class ClusterView
{
  public:
    virtual ~ClusterView() = default;

    /** Server nodes behind the router. */
    virtual std::uint32_t numServers() const = 0;

    /** Whether @p server is currently considered healthy. */
    virtual bool isUp(std::uint32_t server) const = 0;

    /** Requests currently in flight toward @p server. */
    virtual std::uint64_t outstanding(std::uint32_t server) const = 0;

    /** Servers currently up. */
    std::uint32_t upCount() const;

    /** In-flight requests across all servers. */
    std::uint64_t totalOutstanding() const;
};

/** Inputs of one routing decision. */
struct RouteContext
{
    /** Request key (read off the wire bytes; 0 if the request has no
     *  key field). */
    std::uint64_t key = 0;
    /** Request-class id (wire class byte), for class-aware routing. */
    std::uint8_t classId = 0;
    /** Client (source) node id within the messaging domain. */
    std::uint32_t client = 0;
    /** Live cluster state. */
    const ClusterView &view;
    /** Keyspace partition (shard-affinity routing). */
    const ShardMap &shards;
    /** Router-private random stream (decorrelated from arrival/client
     *  streams, so routing randomness never perturbs them). */
    sim::Rng &rng;
};

/** Interface every cluster router implements. */
class Router
{
  public:
    virtual ~Router() = default;

    /** Pick the serving node's index in [0, ctx.view.numServers()). */
    virtual std::uint32_t route(const RouteContext &ctx) = 0;

    /** Canonical spec string of this instance (for reports). */
    virtual std::string name() const = 0;
};

using RouterPtr = std::unique_ptr<Router>;

/** Process-wide name -> factory table for cluster routers. */
class RouterRegistry
{
  public:
    /** Builds a router instance from its (validated) spec. */
    using Factory = std::function<RouterPtr(const RouterSpec &)>;

    /** The process-wide registry (created on first use). */
    static RouterRegistry &instance();

    /** Register @p factory under @p name; duplicate names are fatal. */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** Sorted names joined with ", " (for error messages and help). */
    std::string namesJoined() const;

    /**
     * Instantiate the router @p spec names. An unregistered name is
     * fatal, with the message listing every registered name.
     */
    RouterPtr make(const RouterSpec &spec) const;

  private:
    RouterRegistry() = default;

    std::map<std::string, Factory> factories_;
};

/** Registers a factory at static-initialization time. */
struct RouterRegistrar
{
    RouterRegistrar(const std::string &name,
                    RouterRegistry::Factory factory);
};

} // namespace rpcvalet::cluster

#endif // RPCVALET_CLUSTER_ROUTER_HH
