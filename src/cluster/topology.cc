#include "cluster/topology.hh"

#include "sim/logging.hh"

namespace rpcvalet::cluster {

std::uint64_t
mixKey(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

ShardMap::ShardMap(std::uint32_t num_shards, std::uint32_t num_servers)
    : numShards_(num_shards), numServers_(num_servers)
{
    if (num_shards == 0)
        sim::fatal("shard map: need at least one shard (got 0)");
    if (num_servers == 0)
        sim::fatal("shard map: need at least one server (got 0)");
}

std::uint32_t
ShardMap::shardOf(std::uint64_t key) const
{
    return static_cast<std::uint32_t>(mixKey(key) % numShards_);
}

std::uint32_t
ShardMap::ownerOf(std::uint32_t shard) const
{
    RV_ASSERT(shard < numShards_, "shard index out of range");
    return shard % numServers_;
}

std::uint32_t
ShardMap::serverForKey(std::uint64_t key) const
{
    return ownerOf(shardOf(key));
}

HealthTracker::HealthTracker(std::uint32_t num_nodes,
                             std::uint32_t fail_threshold,
                             sim::Tick recovery_after)
    : nodes_(num_nodes), failThreshold_(fail_threshold),
      recoveryAfter_(recovery_after)
{
    if (num_nodes == 0)
        sim::fatal("health tracker: need at least one node (got 0)");
    if (fail_threshold == 0)
        sim::fatal("health tracker: fail threshold must be >= 1 (got 0)");
}

void
HealthTracker::reportSuccess(std::uint32_t node)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    nodes_[node].consecutiveFailures = 0;
}

bool
HealthTracker::reportFailure(std::uint32_t node, sim::Tick now)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    // Refresh recovery state first so a post-recovery failure streak
    // starts from a clean slate.
    (void)isUp(node, now);
    State &s = nodes_[node];
    ++s.consecutiveFailures;
    if (!s.down && s.consecutiveFailures >= failThreshold_) {
        s.down = true;
        s.downSince = now;
        ++downTransitions_;
        return true;
    }
    return false;
}

void
HealthTracker::markDown(std::uint32_t node, sim::Tick now)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    State &s = nodes_[node];
    if (!s.down) {
        s.down = true;
        s.downSince = now;
        s.consecutiveFailures = failThreshold_;
        ++downTransitions_;
    }
}

bool
HealthTracker::isUp(std::uint32_t node, sim::Tick now) const
{
    RV_ASSERT(node < nodes_.size(), "health query for unknown node");
    State &s = nodes_[node];
    if (s.down && recoveryAfter_ > 0 &&
        now >= s.downSince + recoveryAfter_) {
        // Optimistic recovery: put the node back in rotation; if it is
        // still broken, the next failure streak takes it down again.
        s.down = false;
        s.consecutiveFailures = 0;
    }
    return !s.down;
}

std::uint32_t
HealthTracker::nodesDown(sim::Tick now) const
{
    std::uint32_t down = 0;
    for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
        if (!isUp(n, now))
            ++down;
    }
    return down;
}

} // namespace rpcvalet::cluster
