#include "cluster/topology.hh"

#include "sim/logging.hh"

namespace rpcvalet::cluster {

std::uint64_t
mixKey(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

ShardMap::ShardMap(std::uint32_t num_shards, std::uint32_t num_servers)
    : numShards_(num_shards), numServers_(num_servers)
{
    if (num_shards == 0)
        sim::fatal("shard map: need at least one shard (got 0)");
    if (num_servers == 0)
        sim::fatal("shard map: need at least one server (got 0)");
}

std::uint32_t
ShardMap::shardOf(std::uint64_t key) const
{
    return static_cast<std::uint32_t>(mixKey(key) % numShards_);
}

std::uint32_t
ShardMap::ownerOf(std::uint32_t shard) const
{
    RV_ASSERT(shard < numShards_, "shard index out of range");
    return shard % numServers_;
}

std::uint32_t
ShardMap::serverForKey(std::uint64_t key) const
{
    return ownerOf(shardOf(key));
}

HealthTracker::HealthTracker(std::uint32_t num_nodes,
                             std::uint32_t fail_threshold,
                             sim::Tick recovery_after)
    : nodes_(num_nodes), failThreshold_(fail_threshold),
      recoveryAfter_(recovery_after)
{
    if (num_nodes == 0)
        sim::fatal("health tracker: need at least one node (got 0)");
    if (fail_threshold == 0)
        sim::fatal("health tracker: fail threshold must be >= 1 (got 0)");
}

void
HealthTracker::reportSuccess(std::uint32_t node)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    State &s = nodes_[node];
    s.consecutiveFailures = 0;
    if (s.down && s.probing) {
        // The canary came back: the node is genuinely serving again.
        s.down = false;
        s.probing = false;
        s.canaryInFlight = false;
    }
}

bool
HealthTracker::reportFailure(std::uint32_t node, sim::Tick now)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    // Refresh recovery state first so a post-recovery failure streak
    // starts from a clean slate.
    (void)isUp(node, now);
    State &s = nodes_[node];
    if (s.down && s.probing) {
        // The canary (or a straggler from before the mark-down) timed
        // out: the node is still dead. Back to fully down, recovery
        // clock restarted.
        s.probing = false;
        s.canaryInFlight = false;
        s.downSince = now;
        s.consecutiveFailures = failThreshold_;
        return false;
    }
    ++s.consecutiveFailures;
    if (!s.down && s.consecutiveFailures >= failThreshold_) {
        s.down = true;
        s.downSince = now;
        ++downTransitions_;
        return true;
    }
    return false;
}

void
HealthTracker::noteRouted(std::uint32_t node)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    State &s = nodes_[node];
    if (s.down && s.probing && !s.canaryInFlight)
        s.canaryInFlight = true;
}

void
HealthTracker::markDown(std::uint32_t node, sim::Tick now)
{
    RV_ASSERT(node < nodes_.size(), "health report for unknown node");
    State &s = nodes_[node];
    if (!s.down) {
        s.down = true;
        s.downSince = now;
        s.consecutiveFailures = failThreshold_;
        ++downTransitions_;
    } else {
        // Re-marking a probing node cancels the probe.
        s.probing = false;
        s.canaryInFlight = false;
        s.downSince = now;
    }
}

bool
HealthTracker::isUp(std::uint32_t node, sim::Tick now) const
{
    RV_ASSERT(node < nodes_.size(), "health query for unknown node");
    State &s = nodes_[node];
    if (s.down && !s.probing && recoveryAfter_ > 0 &&
        now >= s.downSince + recoveryAfter_) {
        // Recovery elapsed: do NOT flip healthy on the timer alone —
        // open a probe window instead. The next routed request is the
        // canary (noteRouted), and only its success clears `down`.
        s.probing = true;
        s.canaryInFlight = false;
    }
    // A probing node is routable exactly until its canary departs.
    return !s.down || (s.probing && !s.canaryInFlight);
}

std::uint32_t
HealthTracker::nodesDown(sim::Tick now) const
{
    std::uint32_t down = 0;
    for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
        if (!isUp(n, now))
            ++down;
    }
    return down;
}

} // namespace rpcvalet::cluster
