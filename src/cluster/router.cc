#include "cluster/router.hh"

#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::cluster {

// Defined in routers.cc. Calling it from instance() forces that
// archive member — whose only entry points are its static registrars —
// into every binary that uses the registry.
void linkBuiltinRouters();

RouterSpec::RouterSpec()
{
    what = "router";
    name = "direct";
}

RouterSpec::RouterSpec(const char *text) : RouterSpec(parse(text)) {}

RouterSpec::RouterSpec(const std::string &text) : RouterSpec(parse(text))
{}

RouterSpec
RouterSpec::parse(const std::string &text)
{
    RouterSpec spec;
    static_cast<sim::Spec &>(spec) = sim::Spec::parse(text, "router");
    return spec;
}

std::uint32_t
ClusterView::upCount() const
{
    std::uint32_t up = 0;
    for (std::uint32_t s = 0; s < numServers(); ++s) {
        if (isUp(s))
            ++up;
    }
    return up;
}

std::uint64_t
ClusterView::totalOutstanding() const
{
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < numServers(); ++s)
        total += outstanding(s);
    return total;
}

RouterRegistry &
RouterRegistry::instance()
{
    static RouterRegistry registry;
    linkBuiltinRouters();
    return registry;
}

void
RouterRegistry::add(const std::string &name, Factory factory)
{
    if (name.empty())
        sim::fatal("cannot register a cluster router with an empty name");
    if (factory == nullptr)
        sim::fatal("cluster router '" + name + "' has a null factory");
    if (!factories_.emplace(name, std::move(factory)).second) {
        sim::fatal("cluster router '" + name +
                   "' is already registered (duplicate registration)");
    }
}

bool
RouterRegistry::contains(const std::string &name) const
{
    return factories_.count(name) > 0;
}

std::vector<std::string>
RouterRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        out.push_back(name); // std::map iterates in sorted order
    }
    return out;
}

std::string
RouterRegistry::namesJoined() const
{
    std::string out;
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

RouterPtr
RouterRegistry::make(const RouterSpec &spec) const
{
    const auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
        sim::fatal("unknown cluster router '" + spec.name +
                   "' (registered routers: " + namesJoined() + ")");
    }
    auto router = it->second(spec);
    if (router == nullptr) {
        sim::panic("factory for cluster router '" + spec.name +
                   "' returned null");
    }
    return router;
}

RouterRegistrar::RouterRegistrar(const std::string &name,
                                 RouterRegistry::Factory factory)
{
    RouterRegistry::instance().add(name, std::move(factory));
}

} // namespace rpcvalet::cluster
