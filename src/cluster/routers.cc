/**
 * @file
 * Built-in cluster routers.
 *
 * Every built-in is health-aware: servers the HealthTracker marks down
 * are skipped and traffic fails over to an up peer (the automatic-
 * failover behavior of the rpc-load-balancer exemplar). When *no*
 * server is up the routers still return a deterministic index — the
 * traffic generator's timeout path then recycles those requests until
 * a node recovers.
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/router.hh"
#include "sim/logging.hh"

namespace rpcvalet::cluster {

namespace {

/** First up server at or after @p start (wrapping); @p start itself
 *  when none is up. */
std::uint32_t
nextUp(const ClusterView &view, std::uint32_t start)
{
    const std::uint32_t n = view.numServers();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t s = (start + i) % n;
        if (view.isUp(s))
            return s;
    }
    return start;
}

/** Always server 0 — the single-node configuration. Makes no Rng
 *  draws, so the numServers=1 path stays bit-identical to the
 *  pre-cluster experiment core. */
class DirectRouter : public Router
{
  public:
    std::uint32_t
    route(const RouteContext &ctx) override
    {
        (void)ctx;
        return 0;
    }

    std::string name() const override { return "direct"; }
};

/** Uniformly random over up servers. */
class RandomRouter : public Router
{
  public:
    std::uint32_t
    route(const RouteContext &ctx) override
    {
        const std::uint32_t n = ctx.view.numServers();
        const std::uint32_t up = ctx.view.upCount();
        if (up == 0 || up == n) {
            return static_cast<std::uint32_t>(
                ctx.rng.uniformInt(0, n - 1));
        }
        std::uint64_t k = ctx.rng.uniformInt(0, up - 1);
        for (std::uint32_t s = 0; s < n; ++s) {
            if (ctx.view.isUp(s) && k-- == 0)
                return s;
        }
        return 0; // unreachable: up > 0
    }

    std::string name() const override { return "random"; }
};

/** Round-robin over up servers (stateful cursor). */
class RoundRobinRouter : public Router
{
  public:
    std::uint32_t
    route(const RouteContext &ctx) override
    {
        const std::uint32_t n = ctx.view.numServers();
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t s =
                static_cast<std::uint32_t>(cursor_++ % n);
            if (ctx.view.isUp(s))
                return s;
        }
        return static_cast<std::uint32_t>(cursor_++ % n);
    }

    std::string name() const override { return "rr"; }

  private:
    std::uint64_t cursor_ = 0;
};

/** Shard affinity: the key's shard owner serves it; when the owner is
 *  down, fail over to the next up server (keyspace correctness is
 *  preserved by the workloads' canonical-value verification). */
class ShardRouter : public Router
{
  public:
    std::uint32_t
    route(const RouteContext &ctx) override
    {
        return nextUp(ctx.view, ctx.shards.serverForKey(ctx.key));
    }

    std::string name() const override { return "shard"; }
};

/**
 * Consistent hashing with bounded loads (Mirrokni et al.): walk the
 * hash ring from the key's position and take the first up server whose
 * outstanding count stays within c times the current average load.
 * Keeps shard affinity's locality under light load while capping the
 * per-server overload that plain consistent hashing allows.
 */
class BoundedLoadRouter : public Router
{
  public:
    BoundedLoadRouter(double c, std::uint32_t vnodes)
        : c_(c), vnodes_(vnodes)
    {}

    std::uint32_t
    route(const RouteContext &ctx) override
    {
        const std::uint32_t n = ctx.view.numServers();
        buildRing(n);

        const std::uint64_t h = mixKey(ctx.key);
        std::size_t start = std::lower_bound(
                                ring_.begin(), ring_.end(),
                                RingEntry{h, 0}) -
                            ring_.begin();
        if (start == ring_.size())
            start = 0;

        const std::uint32_t up = ctx.view.upCount();
        if (up == 0)
            return ring_[start].server; // all down: deterministic shed
        // Bounded-load capacity: no server may exceed c * the average
        // load counting the request being placed.
        const double avg =
            static_cast<double>(ctx.view.totalOutstanding() + 1) /
            static_cast<double>(up);
        const std::uint64_t capacity = static_cast<std::uint64_t>(
            std::max(1.0, std::ceil(c_ * avg)));

        std::fill(visited_.begin(), visited_.end(), false);
        std::uint32_t distinct = 0;
        std::uint32_t least_loaded = ring_[start].server;
        std::uint64_t least_load = ~std::uint64_t{0};
        for (std::size_t i = 0; i < ring_.size() && distinct < n; ++i) {
            const std::uint32_t s =
                ring_[(start + i) % ring_.size()].server;
            if (visited_[s])
                continue;
            visited_[s] = true;
            ++distinct;
            if (!ctx.view.isUp(s))
                continue;
            const std::uint64_t load = ctx.view.outstanding(s);
            if (load + 1 <= capacity)
                return s;
            if (load < least_load) {
                least_load = load;
                least_loaded = s;
            }
        }
        return least_loaded;
    }

    std::string
    name() const override
    {
        return sim::strfmt("bounded-load:c=%g,vnodes=%u", c_, vnodes_);
    }

  private:
    struct RingEntry
    {
        std::uint64_t hash;
        std::uint32_t server;

        bool
        operator<(const RingEntry &o) const
        {
            return hash < o.hash;
        }
    };

    void
    buildRing(std::uint32_t num_servers)
    {
        if (num_servers == ringServers_)
            return;
        ringServers_ = num_servers;
        ring_.clear();
        ring_.reserve(static_cast<std::size_t>(num_servers) * vnodes_);
        for (std::uint32_t s = 0; s < num_servers; ++s) {
            for (std::uint32_t v = 0; v < vnodes_; ++v) {
                const std::uint64_t h = mixKey(
                    (static_cast<std::uint64_t>(s) << 32) | (v + 1));
                ring_.push_back(RingEntry{h, s});
            }
        }
        std::sort(ring_.begin(), ring_.end());
        visited_.assign(num_servers, false);
    }

    double c_;
    std::uint32_t vnodes_;
    std::uint32_t ringServers_ = 0;
    std::vector<RingEntry> ring_;
    std::vector<bool> visited_; // per-route scratch, reused
};

const RouterRegistrar directReg("direct", [](const RouterSpec &spec) {
    spec.expectKeys({});
    return std::make_unique<DirectRouter>();
});

const RouterRegistrar randomReg("random", [](const RouterSpec &spec) {
    spec.expectKeys({});
    return std::make_unique<RandomRouter>();
});

const RouterRegistrar rrReg("rr", [](const RouterSpec &spec) {
    spec.expectKeys({});
    return std::make_unique<RoundRobinRouter>();
});

const RouterRegistrar shardReg("shard", [](const RouterSpec &spec) {
    spec.expectKeys({});
    return std::make_unique<ShardRouter>();
});

const RouterRegistrar boundedLoadReg(
    "bounded-load", [](const RouterSpec &spec) {
        spec.expectKeys({"c", "vnodes"});
        const double c = spec.doubleParam("c", 1.25);
        if (!(c > 1.0)) {
            sim::fatal(sim::strfmt(
                "router 'bounded-load': c must be > 1 (got %g); c=1 "
                "leaves no headroom over the average load",
                c));
        }
        const std::uint64_t vnodes = spec.uintParam("vnodes", 64);
        if (vnodes == 0 || vnodes > 4096) {
            sim::fatal(sim::strfmt(
                "router 'bounded-load': vnodes must be in [1, 4096] "
                "(got %llu)",
                static_cast<unsigned long long>(vnodes)));
        }
        return std::make_unique<BoundedLoadRouter>(
            c, static_cast<std::uint32_t>(vnodes));
    });

} // namespace

// Anchor odr-used by RouterRegistry::instance() so this translation
// unit — and with it the registrars above — is linked into every
// binary that touches the registry.
void
linkBuiltinRouters()
{
}

} // namespace rpcvalet::cluster
