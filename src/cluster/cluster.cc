#include "cluster/cluster.hh"

#include "sim/logging.hh"

namespace rpcvalet::cluster {

void
ClusterConfig::validate() const
{
    if (numServerNodes == 0) {
        sim::fatal("cluster config: numServerNodes must be >= 1 "
                   "(got 0)");
    }
    if (failThreshold == 0) {
        sim::fatal("cluster config: failThreshold must be >= 1 "
                   "(got 0)");
    }
    if (failNode >= 0 &&
        static_cast<std::uint32_t>(failNode) >= numServerNodes) {
        sim::fatal(sim::strfmt(
            "cluster config: failNode %d is out of range for %u server "
            "nodes",
            failNode, numServerNodes));
    }
    if (sweepInterval > 0 && requestTimeout == 0) {
        sim::fatal(sim::strfmt(
            "cluster config: sweepInterval %llu requires "
            "requestTimeout > 0 — without timeouts there is no sweep "
            "to tune",
            static_cast<unsigned long long>(sweepInterval)));
    }
    if (failNode >= 0 && requestTimeout == 0) {
        sim::fatal(sim::strfmt(
            "cluster config: failNode %d requires requestTimeout > 0 — "
            "without timeouts a dead node is never detected and its "
            "requests hang forever",
            failNode));
    }
}

} // namespace rpcvalet::cluster
