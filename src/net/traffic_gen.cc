#include "net/traffic_gen.hh"

#include <algorithm>
#include <utility>

#include "app/wire_format.hh"
#include "sim/logging.hh"

namespace rpcvalet::net {

namespace {

std::uint64_t
slotKey(proto::NodeId node, std::uint32_t slot)
{
    return (static_cast<std::uint64_t>(node) << 32) | slot;
}

} // namespace

TrafficGenerator::TrafficGenerator(sim::Simulator &sim,
                                   const Params &params,
                                   const proto::MessagingDomain &domain,
                                   app::RpcApplication &app, Fabric &fabric)
    : sim_(sim), params_(params), domain_(domain), app_(app),
      fabric_(fabric),
      arrivals_(sim,
                ArrivalRegistry::instance().make(params.arrival,
                                                 params.arrivalRps),
                params.seed, [this] { onArrival(); }),
      pickRng_(params.seed, /*stream=*/0x7156),
      clientRng_(params.seed, /*stream=*/0xC11E),
      freeSlots_(domain.numNodes), pending_(domain.numNodes)
{
    RV_ASSERT(domain_.numNodes >= 2, "need at least one remote node");
    madeByClass_.resize(std::max<std::size_t>(
        app.requestClasses().size(), 1));
    for (proto::NodeId n = 0; n < domain_.numNodes; ++n) {
        if (n == params_.targetNode)
            continue;
        freeSlots_[n].reserve(domain_.slotsPerNode);
        // Highest slot last so slot 0 is handed out first.
        for (std::uint32_t s = domain_.slotsPerNode; s > 0; --s)
            freeSlots_[n].push_back(s - 1);
    }
}

void
TrafficGenerator::start()
{
    arrivals_.start();
}

void
TrafficGenerator::halt()
{
    arrivals_.halt();
}

void
TrafficGenerator::onArrival()
{
    // Pick a uniformly random remote source node (§5: "from randomly
    // selected nodes of the cluster").
    proto::NodeId src = static_cast<proto::NodeId>(
        pickRng_.uniformInt(0, domain_.numNodes - 2));
    if (src >= params_.targetNode)
        ++src;

    // Requests larger than maxMsgBytes are legal: they take the
    // rendezvous path (§4.2) in launchRequest.
    std::vector<std::uint8_t> request = app_.makeRequest(clientRng_);

    // Per-class generation counter, read off the wire's class byte
    // (clamped like the server side clamps stray ids).
    const std::size_t cls =
        request.size() > app::requestClassOffset
            ? std::min<std::size_t>(request[app::requestClassOffset],
                                    madeByClass_.size() - 1)
            : 0;
    ++madeByClass_[cls];

    if (freeSlots_[src].empty()) {
        // End-to-end flow control: all S slots toward the target are
        // in flight; the request waits for a replenish (§4.2).
        ++deferrals_;
        pending_[src].push_back(std::move(request));
        return;
    }
    const std::uint32_t slot = freeSlots_[src].back();
    freeSlots_[src].pop_back();
    launchRequest(src, slot, std::move(request));
}

void
TrafficGenerator::launchRequest(proto::NodeId src, std::uint32_t slot,
                                std::vector<std::uint8_t> request)
{
    ++requestsSent_;
    ++inFlight_;
    if (request.size() > domain_.maxMsgBytes) {
        // Rendezvous (§4.2): announce the payload with a one-block
        // descriptor; the destination NI pulls it with a one-sided
        // read from this node's registered memory (the outstanding-
        // request store plays that role here).
        ++rendezvous_;
        proto::Packet descriptor;
        descriptor.hdr.op = proto::OpType::Send;
        descriptor.hdr.src = src;
        descriptor.hdr.dst = params_.targetNode;
        descriptor.hdr.slot = slot;
        descriptor.hdr.totalBlocks = 1;
        descriptor.hdr.msgBytes = 0;
        descriptor.hdr.rendezvous = true;
        descriptor.hdr.rendezvousBytes =
            static_cast<std::uint32_t>(request.size());
        outstandingRequests_[slotKey(src, slot)] = std::move(request);
        fabric_.send(std::move(descriptor));
        return;
    }
    auto packets = proto::packetize(proto::OpType::Send, src,
                                    params_.targetNode, slot, request);
    outstandingRequests_[slotKey(src, slot)] = std::move(request);
    for (auto &pkt : packets)
        fabric_.send(std::move(pkt));
}

void
TrafficGenerator::receivePacket(proto::Packet pkt)
{
    switch (pkt.hdr.op) {
      case proto::OpType::Send: {
        // A reply from the node under test. Replies mirror the request
        // slot (HERD-style per-slot response matching), so (dst, slot)
        // identifies the original request.
        const std::uint64_t key = slotKey(pkt.hdr.dst, pkt.hdr.slot);
        ReplyAssembly &assembly = replies_[key];
        if (assembly.total == 0) {
            assembly.total = pkt.hdr.totalBlocks;
            assembly.bytes.assign(pkt.hdr.msgBytes, 0);
        }
        const std::size_t lo =
            static_cast<std::size_t>(pkt.hdr.blockIndex) *
            proto::cacheBlockBytes;
        for (std::size_t i = 0; i < pkt.payload.size(); ++i) {
            if (lo + i < assembly.bytes.size())
                assembly.bytes[lo + i] = pkt.payload[i];
        }
        if (++assembly.arrived == assembly.total) {
            std::vector<std::uint8_t> reply = std::move(assembly.bytes);
            replies_.erase(key);
            onReplyComplete(pkt.hdr.dst, pkt.hdr.slot, std::move(reply));
        }
        break;
      }
      case proto::OpType::Replenish:
        onReplenish(pkt);
        break;
      case proto::OpType::RemoteRead: {
        // Rendezvous pull: serve the announced payload from this
        // node's memory after a DRAM access.
        const std::uint64_t key = slotKey(pkt.hdr.dst, pkt.hdr.slot);
        auto it = outstandingRequests_.find(key);
        RV_ASSERT(it != outstandingRequests_.end(),
                  "one-sided read for unknown payload");
        const proto::NodeId owner = pkt.hdr.dst;
        const std::uint32_t slot = pkt.hdr.slot;
        const std::vector<std::uint8_t> payload = it->second;
        sim_.schedule(sim::nanoseconds(60.0),
                      [this, owner, slot, payload] {
                          auto blocks = proto::packetize(
                              proto::OpType::ReadResponse, owner,
                              params_.targetNode, slot, payload);
                          for (auto &b : blocks)
                              fabric_.send(std::move(b));
                      });
        break;
      }
      default:
        sim::panic("traffic generator received unexpected op");
    }
}

void
TrafficGenerator::onReplyComplete(proto::NodeId dst, std::uint32_t slot,
                                  std::vector<std::uint8_t> reply)
{
    const std::uint64_t key = slotKey(dst, slot);
    auto it = outstandingRequests_.find(key);
    RV_ASSERT(it != outstandingRequests_.end(),
              "reply for unknown request");
    if (!app_.verifyReply(it->second, reply))
        ++verifyFailures_;
    outstandingRequests_.erase(it);
    ++repliesReceived_;
    RV_ASSERT(inFlight_ > 0, "in-flight underflow");
    --inFlight_;

    // Return the reply's send-slot credit to the node under test after
    // the client-side turnaround.
    sim_.schedule(params_.clientTurnaround, [this, dst, slot] {
        proto::Packet pkt;
        pkt.hdr.op = proto::OpType::Replenish;
        pkt.hdr.src = dst;
        pkt.hdr.dst = params_.targetNode;
        pkt.hdr.slot = slot;
        pkt.hdr.totalBlocks = 1;
        pkt.hdr.msgBytes = 0;
        fabric_.send(std::move(pkt));
    });
}

void
TrafficGenerator::onReplenish(const proto::Packet &pkt)
{
    // The node under test finished processing a request: the source's
    // send slot is free again (§4.2 step C).
    const proto::NodeId src = pkt.hdr.dst;
    const std::uint32_t slot = pkt.hdr.slot;
    RV_ASSERT(src < domain_.numNodes, "replenish for unknown node");
    if (!pending_[src].empty()) {
        std::vector<std::uint8_t> request =
            std::move(pending_[src].front());
        pending_[src].pop_front();
        launchRequest(src, slot, std::move(request));
    } else {
        freeSlots_[src].push_back(slot);
    }
}

} // namespace rpcvalet::net
