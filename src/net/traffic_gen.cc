#include "net/traffic_gen.hh"

#include <algorithm>
#include <utility>

#include "app/wire_format.hh"
#include "sim/logging.hh"

namespace rpcvalet::net {

TrafficGenerator::TrafficGenerator(sim::EventDomain &sim,
                                   const Params &params,
                                   const proto::MessagingDomain &domain,
                                   app::RpcApplication &app, Fabric &fabric,
                                   cluster::Router *router,
                                   cluster::HealthTracker *health,
                                   const cluster::ShardMap *shards)
    : sim_(sim), params_(params), domain_(domain), app_(app),
      fabric_(fabric), router_(router), health_(health), shards_(shards),
      arrivals_(sim,
                ArrivalRegistry::instance().make(params.arrival,
                                                 params.arrivalRps),
                params.seed, [this] { onArrival(); }),
      pickRng_(params.seed, /*stream=*/0x7156),
      clientRng_(params.seed, /*stream=*/0xC11E),
      routerRng_(params.seed, /*stream=*/0x7073),
      retryRng_(params.seed, /*stream=*/0x4E77),
      freeSlots_(static_cast<std::size_t>(domain.numNodes) *
                 params.numServers),
      pending_(static_cast<std::size_t>(domain.numNodes) *
               params.numServers),
      perServerInFlight_(params.numServers),
      connRng_(params.seed, /*stream=*/0xC04E),
      sweepEvent_(*this, "timeout-sweep")
{
    RV_ASSERT(params_.numServers >= 1, "need at least one server node");
    RV_ASSERT(params_.targetNode + params_.numServers <= domain_.numNodes,
              "server node range exceeds the messaging domain");
    RV_ASSERT(domain_.numNodes > params_.numServers,
              "need at least one remote client node");
    RV_ASSERT(router_ == nullptr || shards_ != nullptr,
              "a cluster router needs a shard map");
    params_.retry.validate(params_.requestTimeout);
    arrivals_.setBatchWindow(params_.arrivalBatchWindow);
    madeByClass_.resize(std::max<std::size_t>(
        app.requestClasses().size(), 1));
    for (proto::NodeId n = 0; n < domain_.numNodes; ++n) {
        if (n >= params_.targetNode &&
            n < params_.targetNode + params_.numServers)
            continue;
        for (std::uint32_t srv = 0; srv < params_.numServers; ++srv) {
            auto &slots = freeSlots_[pairIndex(n, srv)];
            slots.reserve(domain_.slotsPerNode);
            // Highest slot last so slot 0 is handed out first.
            for (std::uint32_t s = domain_.slotsPerNode; s > 0; --s)
                slots.push_back(s - 1);
        }
    }
    if (params_.connections.active()) {
        params_.connections.validate();
        connSched_ = conn::ConnRegistry::instance().make(
            params_.connections.schedulerSpec());
        connSched_->bind(params_.connections.numClients, sim_,
                         [this](std::uint32_t client,
                                std::uint32_t limit) {
                             return connFlush(client, limit);
                         });
        connQueue_.resize(params_.connections.numClients);
        const std::uint32_t groups = connSched_->numGroups();
        connPerGroupAdmitted_.assign(groups, 0);
        connPerGroupDeferred_.assign(groups, 0);
        connPerGroupLatency_.resize(groups);
    }
}

void
TrafficGenerator::start()
{
    if (connSched_ != nullptr)
        connSched_->start();
    arrivals_.start();
    if (params_.requestTimeout > 0)
        sim_.schedule(sweepEvent_, params_.requestTimeout);
}

void
TrafficGenerator::halt()
{
    halted_ = true;
    if (connSched_ != nullptr)
        connSched_->halt();
    arrivals_.halt();
}

bool
TrafficGenerator::isUp(std::uint32_t server) const
{
    return health_ == nullptr || health_->isUp(server, sim_.now());
}

void
TrafficGenerator::onArrival()
{
    if (connSched_ != nullptr) {
        // Client-population model: the arrival belongs to a uniformly
        // random logical client, whose scheduler decides whether it
        // may issue now or waits for its group's slice.
        const std::uint32_t client = static_cast<std::uint32_t>(
            connRng_.uniformInt(0, params_.connections.numClients - 1));
        std::vector<std::uint8_t> request = app_.makeRequest(clientRng_);
        countRequestClass(request);
        connSubmit(client, std::move(request), /*chain=*/0,
                   /*attempt=*/1);
        return;
    }

    const proto::NodeId src = pickClientNode();

    // Requests larger than maxMsgBytes are legal: they take the
    // rendezvous path (§4.2) in launchRequest.
    std::vector<std::uint8_t> request = app_.makeRequest(clientRng_);
    countRequestClass(request);

    dispatchRequest(src, std::move(request), /*chain=*/0);
}

proto::NodeId
TrafficGenerator::connNodeFor(std::uint32_t client) const
{
    // Logical clients multiplex deterministically onto the emulated
    // client nodes (and their per-(node, server) slot pools), skipping
    // the server block — no Rng draw, so admission replays are stable.
    const std::uint32_t numClientNodes =
        domain_.numNodes - params_.numServers;
    proto::NodeId n =
        static_cast<proto::NodeId>(client % numClientNodes);
    if (n >= params_.targetNode)
        n += params_.numServers;
    return n;
}

void
TrafficGenerator::connSubmit(std::uint32_t client,
                             std::vector<std::uint8_t> request,
                             std::uint64_t chain, std::uint32_t attempt)
{
    const std::uint32_t group = connSched_->groupOf(client);
    if (connSched_->mayIssue(client)) {
        ++connAdmittedImmediate_;
        if (group < connPerGroupAdmitted_.size())
            ++connPerGroupAdmitted_[group];
        dispatchRequest(connNodeFor(client), std::move(request), chain,
                        attempt,
                        ConnTag{client, sim_.now(), /*deferred=*/false});
        return;
    }
    ++connDeferredTotal_;
    if (group < connPerGroupDeferred_.size())
        ++connPerGroupDeferred_[group];
    connQueue_[client].push_back(
        ConnDeferred{std::move(request), chain, attempt, sim_.now()});
}

std::uint32_t
TrafficGenerator::connFlush(std::uint32_t client, std::uint32_t limit)
{
    auto &queue = connQueue_[client];
    std::uint32_t released = 0;
    while (!queue.empty() && (limit == 0 || released < limit)) {
        ConnDeferred next = std::move(queue.front());
        queue.pop_front();
        connDeferredWait_ += sim_.now() - next.genAt;
        ++connFlushed_;
        ++released;
        // The tag keeps the generation time: the client-observed
        // latency of a deferred request includes its admission wait.
        dispatchRequest(connNodeFor(client), std::move(next.bytes),
                        next.chain, next.attempt,
                        ConnTag{client, next.genAt, /*deferred=*/true});
    }
    return released;
}

void
TrafficGenerator::connOnCompleted(const ConnTag &tag,
                                  std::uint32_t req_bytes)
{
    if (connSched_ == nullptr || tag.client == proto::noConnClient)
        return;
    const sim::Tick latency = sim_.now() - tag.genAt;
    (tag.deferred ? connInactiveLatency_ : connActiveLatency_)
        .record(latency);
    const std::uint32_t group = connSched_->groupOf(tag.client);
    if (group < connPerGroupLatency_.size())
        connPerGroupLatency_[group].record(latency);
    connSched_->onCompleted(tag.client, req_bytes);
}

void
TrafficGenerator::connOnRetired(const ConnTag &tag)
{
    if (connSched_ == nullptr || tag.client == proto::noConnClient)
        return;
    connSched_->onRetired(tag.client);
}

proto::NodeId
TrafficGenerator::pickClientNode()
{
    // Pick a uniformly random remote source node (§5: "from randomly
    // selected nodes of the cluster"), skipping the server block.
    const std::uint32_t numClients =
        domain_.numNodes - params_.numServers;
    proto::NodeId src = static_cast<proto::NodeId>(
        pickRng_.uniformInt(0, numClients - 1));
    if (src >= params_.targetNode)
        src += params_.numServers;
    return src;
}

void
TrafficGenerator::countRequestClass(
    const std::vector<std::uint8_t> &request)
{
    // Per-class generation counter, read off the wire's class byte
    // (clamped like the server side clamps stray ids).
    const std::size_t cls =
        request.size() > app::requestClassOffset
            ? std::min<std::size_t>(request[app::requestClassOffset],
                                    madeByClass_.size() - 1)
            : 0;
    ++madeByClass_[cls];
}

void
TrafficGenerator::issueNested(
    std::vector<std::vector<std::uint8_t>> requests,
    std::function<void()> done)
{
    RV_ASSERT(!requests.empty(), "empty nested-RPC group");
    RV_ASSERT(done != nullptr, "nested-RPC group needs a completion");
    const std::uint64_t chain = nextChainId_++;
    chains_.emplace(chain,
                    ChainGroup{
                        static_cast<std::uint32_t>(requests.size()),
                        std::move(done)});
    nestedSent_ += requests.size();
    for (auto &request : requests) {
        // Each nested RPC enters the fabric like a client arrival,
        // from a random emulated node: under uniform fabric latency
        // this is latency-equivalent to issuing from the serving node
        // and reuses the per-(source, server) flow-control slots.
        const proto::NodeId src = pickClientNode();
        countRequestClass(request);
        dispatchRequest(src, std::move(request), chain);
    }
}

std::uint32_t
TrafficGenerator::routeRequest(proto::NodeId src,
                               const std::vector<std::uint8_t> &request)
{
    // Single-target fast path: no router consulted, no Rng draw —
    // keeps the numServers == 1 experiment bit-identical.
    if (router_ == nullptr || params_.numServers == 1)
        return 0;
    cluster::RouteContext ctx{
        app::requestKeyOf(request),
        request.size() > app::requestClassOffset
            ? request[app::requestClassOffset]
            : std::uint8_t{0},
        src, *this, *shards_, routerRng_};
    const std::uint32_t server = router_->route(ctx);
    RV_ASSERT(server < params_.numServers,
              "router picked an out-of-range server");
    return server;
}

void
TrafficGenerator::dispatchRequest(proto::NodeId src,
                                  std::vector<std::uint8_t> request,
                                  std::uint64_t chain,
                                  std::uint32_t attempt, ConnTag conn)
{
    const std::uint32_t server = routeRequest(src, request);
    const std::size_t pair = pairIndex(src, server);
    if (freeSlots_[pair].empty()) {
        // End-to-end flow control: all S slots toward that server are
        // in flight; the request waits for a replenish (§4.2).
        ++deferrals_;
        pending_[pair].push_back(
            PendingRequest{std::move(request), chain, attempt, conn});
        return;
    }
    const std::uint32_t slot = freeSlots_[pair].back();
    freeSlots_[pair].pop_back();
    launchRequest(src, server, slot, std::move(request), chain, attempt,
                  /*is_hedge=*/false, conn);
}

void
TrafficGenerator::launchRequest(proto::NodeId src, std::uint32_t server,
                                std::uint32_t slot,
                                std::vector<std::uint8_t> request,
                                std::uint64_t chain,
                                std::uint32_t attempt, bool is_hedge,
                                ConnTag conn)
{
    ++requestsSent_;
    ++inFlight_;
    ++perServerInFlight_[server];
    // Canary accounting: a recovering server's first routed request is
    // its probe (no-op for healthy servers).
    if (health_ != nullptr)
        health_->noteRouted(server);
    const proto::NodeId dst = params_.targetNode + server;
    const std::uint64_t key = reqKey(server, src, slot);
    RV_ASSERT(outstandingRequests_.find(key) ==
                  outstandingRequests_.end(),
              "slot reused while its request is still outstanding");
    // A slot freed while its previous use sat in expectedDuplicates_
    // means that duplicate's reply was lost; it can never arrive, so
    // the stale marker must not misclassify this use's late replies.
    expectedDuplicates_.erase(key);
    if (connSched_ != nullptr && conn.client != proto::noConnClient)
        connSched_->onLaunched(conn.client);
    if (request.size() > domain_.maxMsgBytes) {
        // Rendezvous (§4.2): announce the payload with a one-block
        // descriptor; the destination NI pulls it with a one-sided
        // read from this node's registered memory (the outstanding-
        // request store plays that role here).
        ++rendezvous_;
        proto::Packet descriptor;
        descriptor.hdr.op = proto::OpType::Send;
        descriptor.hdr.src = src;
        descriptor.hdr.dst = dst;
        descriptor.hdr.slot = slot;
        descriptor.hdr.totalBlocks = 1;
        descriptor.hdr.msgBytes = 0;
        descriptor.hdr.rendezvous = true;
        descriptor.hdr.rendezvousBytes =
            static_cast<std::uint32_t>(request.size());
        descriptor.hdr.connClient = conn.client;
        outstandingRequests_[key] =
            Outstanding{std::move(request), server,   sim_.now(), chain,
                        attempt,            is_hedge, is_hedge,   kNoKey,
                        conn};
        fabric_.send(std::move(descriptor));
        return;
    }
    auto packets =
        proto::packetize(proto::OpType::Send, src, dst, slot, request);
    outstandingRequests_[key] =
        Outstanding{std::move(request), server,   sim_.now(), chain,
                    attempt,            is_hedge, is_hedge,   kNoKey,
                    conn};
    for (auto &pkt : packets) {
        pkt.hdr.connClient = conn.client;
        fabric_.send(std::move(pkt));
    }
}

void
TrafficGenerator::receivePacket(proto::Packet pkt)
{
    switch (pkt.hdr.op) {
      case proto::OpType::Send: {
        // A reply from a server node. Replies mirror the request slot
        // (HERD-style per-slot response matching), so the reply's
        // (src server, dst client, slot) identifies the original
        // request.
        RV_ASSERT(pkt.hdr.src >= params_.targetNode &&
                      pkt.hdr.src <
                          params_.targetNode + params_.numServers,
                  "reply from a non-server node");
        const std::uint32_t server = pkt.hdr.src - params_.targetNode;
        const std::uint64_t key =
            reqKey(server, pkt.hdr.dst, pkt.hdr.slot);
        ReplyAssembly &assembly = replies_[key];
        if (assembly.total == 0) {
            assembly.total = pkt.hdr.totalBlocks;
            assembly.bytes.assign(pkt.hdr.msgBytes, 0);
        }
        const std::size_t lo =
            static_cast<std::size_t>(pkt.hdr.blockIndex) *
            proto::cacheBlockBytes;
        for (std::size_t i = 0; i < pkt.payload.size(); ++i) {
            if (lo + i < assembly.bytes.size())
                assembly.bytes[lo + i] = pkt.payload[i];
        }
        if (++assembly.arrived == assembly.total) {
            std::vector<std::uint8_t> reply = std::move(assembly.bytes);
            replies_.erase(key);
            onReplyComplete(server, pkt.hdr.dst, pkt.hdr.slot,
                            std::move(reply));
        }
        break;
      }
      case proto::OpType::Replenish:
        onReplenish(pkt);
        break;
      case proto::OpType::RemoteRead: {
        // Rendezvous pull: serve the announced payload from this
        // node's memory after a DRAM access.
        RV_ASSERT(pkt.hdr.src >= params_.targetNode &&
                      pkt.hdr.src <
                          params_.targetNode + params_.numServers,
                  "one-sided read from a non-server node");
        const std::uint32_t server = pkt.hdr.src - params_.targetNode;
        const std::uint64_t key =
            reqKey(server, pkt.hdr.dst, pkt.hdr.slot);
        auto it = outstandingRequests_.find(key);
        if (it == outstandingRequests_.end()) {
            RV_ASSERT(params_.requestTimeout > 0,
                      "one-sided read for unknown payload");
            // The request timed out and was rerouted; the late pull
            // reads nothing.
            ++staleReplies_;
            break;
        }
        const proto::NodeId owner = pkt.hdr.dst;
        const proto::NodeId reader = pkt.hdr.src;
        const std::uint32_t slot = pkt.hdr.slot;
        const std::vector<std::uint8_t> payload = it->second.bytes;
        const std::uint32_t connClient = it->second.conn.client;
        sim_.schedule(sim::nanoseconds(60.0),
                      [this, owner, reader, slot, payload, connClient] {
                          auto blocks = proto::packetize(
                              proto::OpType::ReadResponse, owner,
                              reader, slot, payload);
                          for (auto &b : blocks) {
                              b.hdr.connClient = connClient;
                              fabric_.send(std::move(b));
                          }
                      });
        break;
      }
      default:
        sim::panic("traffic generator received unexpected op");
    }
}

void
TrafficGenerator::onReplyComplete(std::uint32_t server,
                                  proto::NodeId dst, std::uint32_t slot,
                                  std::vector<std::uint8_t> reply)
{
    const std::uint64_t key = reqKey(server, dst, slot);
    auto it = outstandingRequests_.find(key);
    if (it == outstandingRequests_.end()) {
        if (expectedDuplicates_.erase(key) > 0) {
            // The losing half of a hedge race: its winner already
            // delivered this request's answer. Expected, accounted
            // apart from genuinely stale (timed-out) replies.
            ++duplicateReplies_;
        } else {
            RV_ASSERT(params_.requestTimeout > 0,
                      "reply for unknown request");
            // The request already timed out and was rerouted
            // elsewhere: drop the late reply's payload, but still
            // return the reply's send-slot credit below — the reply
            // did occupy the server's mirrored send slot, and
            // withholding the replenish would leak it, wedging every
            // later reply on that slot into an infinite busy-retry
            // (seen with chained workloads, whose composed root
            // latency can legitimately cross the request timeout on a
            // healthy node).
            ++staleReplies_;
        }
    } else {
        if (!app_.verifyReply(it->second.bytes, reply))
            ++verifyFailures_;
        const std::uint64_t chain = it->second.chain;
        const std::uint64_t sibling = it->second.sibling;
        const bool wonAsHedge = it->second.isHedge;
        const ConnTag connTag = it->second.conn;
        const std::uint32_t connReqBytes =
            static_cast<std::uint32_t>(it->second.bytes.size());
        outstandingRequests_.erase(it);
        ++repliesReceived_;
        RV_ASSERT(inFlight_ > 0, "in-flight underflow");
        --inFlight_;
        RV_ASSERT(perServerInFlight_[server] > 0,
                  "per-server in-flight underflow");
        --perServerInFlight_[server];
        if (health_ != nullptr)
            health_->reportSuccess(server);
        if (sibling != kNoKey) {
            // First reply wins: retire the losing half now so its
            // late reply cannot double-complete the request. Its slot
            // credit still returns through the duplicate-reply path
            // above (the loser's reply carries the replenish).
            auto sit = outstandingRequests_.find(sibling);
            RV_ASSERT(sit != outstandingRequests_.end(),
                      "hedge sibling vanished before resolution");
            const std::uint32_t loserServer = sit->second.server;
            const ConnTag loserTag = sit->second.conn;
            outstandingRequests_.erase(sit);
            connOnRetired(loserTag);
            replies_.erase(sibling);
            RV_ASSERT(inFlight_ > 0, "in-flight underflow");
            --inFlight_;
            RV_ASSERT(perServerInFlight_[loserServer] > 0,
                      "per-server in-flight underflow");
            --perServerInFlight_[loserServer];
            expectedDuplicates_.insert(sibling);
            if (wonAsHedge)
                ++hedgesWon_;
            // A credit parked on the loser (its reply was dropped)
            // comes back now that the loser is retired.
            releaseHeldCredit(sibling);
        }
        // Likewise a credit parked on this request itself.
        releaseHeldCredit(key);
        // Connection accounting + the drain-before-switch signal; a
        // drained group's switch can admit deferred requests, which
        // re-enter this generator like the chain completion below —
        // everything above is already settled.
        connOnCompleted(connTag, connReqBytes);
        connOnRetired(connTag);
        // Last among the accounting: the chain-group completion may
        // re-enter this generator (a resumed parent's own reply
        // path), so everything above must already be settled. The
        // replenish below is scheduled either way, so ordering with
        // it is immaterial.
        if (chain != 0)
            onChainMemberDone(chain);
    }
    // Return the reply's send-slot credit to the serving node after
    // the client-side turnaround (stale replies included, see above).
    const proto::NodeId replyDst = params_.targetNode + server;
    sim_.schedule(params_.clientTurnaround,
                  [this, dst, replyDst, slot] {
                      proto::Packet pkt;
                      pkt.hdr.op = proto::OpType::Replenish;
                      pkt.hdr.src = dst;
                      pkt.hdr.dst = replyDst;
                      pkt.hdr.slot = slot;
                      pkt.hdr.totalBlocks = 1;
                      pkt.hdr.msgBytes = 0;
                      fabric_.send(std::move(pkt));
                  });
}

void
TrafficGenerator::onChainMemberDone(std::uint64_t chain)
{
    auto it = chains_.find(chain);
    RV_ASSERT(it != chains_.end(), "reply for unknown chain group");
    RV_ASSERT(it->second.remaining > 0, "chain-group underflow");
    if (--it->second.remaining > 0)
        return;
    std::function<void()> done = std::move(it->second.done);
    chains_.erase(it);
    ++chainsCompleted_;
    done();
}

void
TrafficGenerator::onReplenish(const proto::Packet &pkt)
{
    // A server finished processing a request: the source's send slot
    // toward that server is free again (§4.2 step C).
    RV_ASSERT(pkt.hdr.src >= params_.targetNode &&
                  pkt.hdr.src < params_.targetNode + params_.numServers,
              "replenish from a non-server node");
    const std::uint32_t server = pkt.hdr.src - params_.targetNode;
    const proto::NodeId src = pkt.hdr.dst;
    const std::uint32_t slot = pkt.hdr.slot;
    RV_ASSERT(src < domain_.numNodes, "replenish for unknown node");
    const std::uint64_t key = reqKey(server, src, slot);
    if (outstandingRequests_.find(key) != outstandingRequests_.end()) {
        // The request is still outstanding on this very slot: its
        // reply was lost (per-flow FIFO delivers the reply before the
        // replenish otherwise). Reusing the slot now would alias a new
        // request under the same reply key — park the credit until
        // the outstanding request resolves.
        heldCredits_.insert(key);
        return;
    }
    recycleSlot(src, server, slot);
}

void
TrafficGenerator::recycleSlot(proto::NodeId client, std::uint32_t server,
                              std::uint32_t slot)
{
    const std::size_t pair = pairIndex(client, server);
    if (!pending_[pair].empty()) {
        PendingRequest next = std::move(pending_[pair].front());
        pending_[pair].pop_front();
        launchRequest(client, server, slot, std::move(next.bytes),
                      next.chain, next.attempt, /*is_hedge=*/false,
                      next.conn);
    } else {
        freeSlots_[pair].push_back(slot);
    }
}

void
TrafficGenerator::releaseHeldCredit(std::uint64_t key)
{
    if (heldCredits_.erase(key) == 0)
        return;
    const auto slot = static_cast<std::uint32_t>(
        key % domain_.slotsPerNode);
    const auto client = static_cast<proto::NodeId>(
        (key / domain_.slotsPerNode) % domain_.numNodes);
    const auto server = static_cast<std::uint32_t>(
        key / (static_cast<std::uint64_t>(domain_.slotsPerNode) *
               domain_.numNodes));
    recycleSlot(client, server, slot);
}

void
TrafficGenerator::sweepTimeouts()
{
    if (halted_)
        return;

    const fault::RetryPolicy &retry = params_.retry;

    // Hedge scan first: requests old enough to warrant a duplicate
    // send but not yet expired. Collect, sort, then act — hedging
    // inserts outstanding entries, which must not be visited here.
    if (retry.hedgeAfter > 0) {
        std::vector<std::uint64_t> toHedge;
        for (const auto &[key, rec] : outstandingRequests_) {
            const sim::Tick age = sim_.now() - rec.sentAt;
            if (age >= retry.hedgeAfter &&
                age < params_.requestTimeout && !rec.hedged)
                toHedge.push_back(key);
        }
        std::sort(toHedge.begin(), toHedge.end());
        for (const std::uint64_t key : toHedge)
            hedgeRequest(key);
    }

    // Collect first, then act: rerouting schedules new outstanding
    // entries, which must not be visited by this sweep.
    std::vector<std::uint64_t> expired;
    for (const auto &[key, rec] : outstandingRequests_) {
        if (sim_.now() - rec.sentAt >= params_.requestTimeout)
            expired.push_back(key);
    }
    // Deterministic order: the hash map iterates in an
    // implementation-defined order, the sweep must not.
    std::sort(expired.begin(), expired.end());

    for (const std::uint64_t key : expired) {
        auto it = outstandingRequests_.find(key);
        RV_ASSERT(it != outstandingRequests_.end(),
                  "expired request vanished mid-sweep");
        const std::uint32_t server = it->second.server;
        const proto::NodeId client = static_cast<proto::NodeId>(
            (key / domain_.slotsPerNode) % domain_.numNodes);
        std::vector<std::uint8_t> request = std::move(it->second.bytes);
        const std::uint64_t chain = it->second.chain;
        const std::uint32_t attempt = it->second.attempt;
        const std::uint64_t sibling = it->second.sibling;
        const ConnTag connTag = it->second.conn;
        outstandingRequests_.erase(it);
        connOnRetired(connTag);
        // A partially assembled reply for the dead request must not
        // pollute the slot's next use.
        replies_.erase(key);
        ++timeouts_;
        RV_ASSERT(inFlight_ > 0, "in-flight underflow");
        --inFlight_;
        RV_ASSERT(perServerInFlight_[server] > 0,
                  "per-server in-flight underflow");
        --perServerInFlight_[server];
        // The slot is deliberately NOT reclaimed unless its replenish
        // already came back (a parked credit proves the server's recv
        // slot is free): a slow-but-alive server still returns it via
        // replenish; a dead server's slots stay consumed until it
        // recovers.
        releaseHeldCredit(key);
        if (health_ != nullptr &&
            health_->reportFailure(server, sim_.now())) {
            // Transition to down: everything queued toward this
            // server would wait forever — reroute it now.
            drainPending(server);
        }
        if (sibling != kNoKey) {
            // Half of a hedge pair expired; the surviving half still
            // covers the request, so no re-dispatch — just unlink the
            // survivor (it resolves alone from here).
            auto sit = outstandingRequests_.find(sibling);
            if (sit != outstandingRequests_.end())
                sit->second.sibling = kNoKey;
            continue;
        }
        if (retry.maxAttempts > 0 && attempt >= retry.maxAttempts) {
            // Attempt budget exhausted: give up for real. A chained
            // member still counts toward its group so the parent's
            // deferred reply is not wedged forever.
            ++retryDrops_;
            if (chain != 0)
                onChainMemberDone(chain);
            continue;
        }
        // Reroutes keep their chain group: a chain member survives
        // timeouts without double-counting toward the group.
        ++retries_;
        ++reroutes_;
        sim::Tick backoff = 0;
        if (retry.baseBackoff > 0) {
            double delay = static_cast<double>(retry.baseBackoff);
            for (std::uint32_t a = 1; a < attempt; ++a)
                delay *= retry.multiplier;
            if (retry.jitter > 0.0) {
                delay *= 1.0 + retry.jitter *
                                   (2.0 * retryRng_.uniform() - 1.0);
            }
            backoff = static_cast<sim::Tick>(delay);
        }
        if (connTag.client != proto::noConnClient) {
            // A retried conn request re-enters the admission gate with
            // a fresh generation time: its client's group may have
            // rotated away since the original send.
            const std::uint32_t connClient = connTag.client;
            if (backoff == 0) {
                connSubmit(connClient, std::move(request), chain,
                           attempt + 1);
            } else {
                sim_.schedule(
                    backoff, [this, connClient, chain, attempt,
                              request = std::move(request)]() mutable {
                        if (halted_)
                            return;
                        connSubmit(connClient, std::move(request),
                                   chain, attempt + 1);
                    });
            }
        } else if (backoff == 0) {
            // Legacy path: immediate re-dispatch, no extra event.
            dispatchRequest(client, std::move(request), chain,
                            attempt + 1);
        } else {
            sim_.schedule(
                backoff, [this, client, chain, attempt,
                          request = std::move(request)]() mutable {
                    if (halted_)
                        return;
                    dispatchRequest(client, std::move(request), chain,
                                    attempt + 1);
                });
        }
    }

    sim_.schedule(sweepEvent_,
                  params_.sweepInterval > 0
                      ? params_.sweepInterval
                      : std::max<sim::Tick>(
                            1, params_.requestTimeout / 4));
}

void
TrafficGenerator::hedgeRequest(std::uint64_t primary_key)
{
    auto it = outstandingRequests_.find(primary_key);
    RV_ASSERT(it != outstandingRequests_.end(),
              "hedge candidate vanished mid-sweep");
    const proto::NodeId client = static_cast<proto::NodeId>(
        (primary_key / domain_.slotsPerNode) % domain_.numNodes);
    std::vector<std::uint8_t> copy = it->second.bytes;
    const std::uint64_t chain = it->second.chain;
    const std::uint32_t attempt = it->second.attempt;
    // The duplicate covers the same logical client's request, so it
    // inherits the primary's connection identity (its admission was
    // already granted; hedging does not re-enter the gate).
    const ConnTag connTag = it->second.conn;
    // Route the duplicate independently — under load-aware routing it
    // lands on a less-loaded (often different) server than the slow
    // primary.
    const std::uint32_t server = routeRequest(client, copy);
    const std::size_t pair = pairIndex(client, server);
    if (freeSlots_[pair].empty()) {
        // No free slot toward the hedge's target: skip rather than
        // queue (a queued hedge would only add load where it hurts);
        // the next sweep retries while the primary lives.
        return;
    }
    const std::uint32_t slot = freeSlots_[pair].back();
    freeSlots_[pair].pop_back();
    const std::uint64_t hedgeKey = reqKey(server, client, slot);
    // The hedge shares the primary's chain group; exactly one of the
    // pair completes it (the loser retires as a duplicate).
    launchRequest(client, server, slot, std::move(copy), chain, attempt,
                  /*is_hedge=*/true, connTag);
    ++hedgesSent_;
    // launchRequest may rehash the map: re-find both halves to link.
    auto pit = outstandingRequests_.find(primary_key);
    auto hit = outstandingRequests_.find(hedgeKey);
    RV_ASSERT(pit != outstandingRequests_.end() &&
                  hit != outstandingRequests_.end(),
              "hedge pair lookup failed after launch");
    pit->second.hedged = true;
    pit->second.sibling = hedgeKey;
    hit->second.sibling = primary_key;
}

void
TrafficGenerator::drainPending(std::uint32_t server)
{
    std::vector<std::pair<proto::NodeId, PendingRequest>> queued;
    for (proto::NodeId n = 0; n < domain_.numNodes; ++n) {
        auto &q = pending_[pairIndex(n, server)];
        while (!q.empty()) {
            queued.emplace_back(n, std::move(q.front()));
            q.pop_front();
        }
    }
    for (auto &[client, request] : queued) {
        ++reroutes_;
        dispatchRequest(client, std::move(request.bytes), request.chain,
                        request.attempt, request.conn);
    }
}

} // namespace rpcvalet::net
