/**
 * @file
 * Built-in arrival processes, self-registered with the ArrivalRegistry.
 *
 * "poisson" reproduces the paper's open-loop generator (§5) and is the
 * default; the rest open the workload axis the evaluation never
 * explores — burstiness, heavy-tailed gaps, time-varying load, and
 * recorded traces:
 *
 *  - deterministic  back-to-back fixed gaps (CV = 0): the easiest
 *                   possible arrival sequence for any dispatcher.
 *  - lognormal:cv=  log-normal gaps with a chosen coefficient of
 *                   variation; cv > 1 means burstier than Poisson.
 *  - mmpp2:...      2-state Markov-modulated Poisson process: a base
 *                   state and a burst state whose rate is `ratio`
 *                   times higher; exponential dwells, with `burst`
 *                   the long-run fraction of time spent bursting and
 *                   `dwell` the mean burst sojourn. The long-run
 *                   average rate always matches the configured rate.
 *  - ramp:...       inhomogeneous Poisson whose rate multiplier moves
 *                   linearly from `from` to `to` over `over` (then
 *                   holds): open-loop load that drifts mid-run.
 *  - trace:file=    replays recorded interarrival gaps (ns, one per
 *                   line; '#' comments) cyclically. By default the
 *                   gaps are rescaled so the trace's mean rate matches
 *                   the configured rate (the trace supplies the shape,
 *                   the experiment the load); raw=1 replays verbatim.
 */

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "net/arrival.hh"
#include "sim/logging.hh"

namespace rpcvalet::net {

namespace {

/** §5's fixed-rate Poisson generator: exponential i.i.d. gaps. */
class PoissonArrival : public ArrivalProcess
{
  public:
    explicit PoissonArrival(double rate_per_sec)
        : meanGapNs_(1e9 / rate_per_sec)
    {}

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        (void)now;
        return rng.exponential(meanGapNs_);
    }

    std::string name() const override { return "poisson"; }

  private:
    double meanGapNs_;
};

const ArrivalRegistrar poissonReg(
    "poisson", [](const ArrivalSpec &spec, double rate) {
        spec.expectKeys({});
        return std::make_unique<PoissonArrival>(rate);
    });

/** Perfectly paced arrivals: constant gap of 1/rate. */
class DeterministicArrival : public ArrivalProcess
{
  public:
    explicit DeterministicArrival(double rate_per_sec)
        : gapNs_(1e9 / rate_per_sec)
    {}

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        (void)rng;
        (void)now;
        return gapNs_;
    }

    std::string name() const override { return "deterministic"; }

  private:
    double gapNs_;
};

const ArrivalRegistrar deterministicReg(
    "deterministic", [](const ArrivalSpec &spec, double rate) {
        spec.expectKeys({});
        return std::make_unique<DeterministicArrival>(rate);
    });

/**
 * Log-normal gaps with arithmetic mean 1/rate and coefficient of
 * variation cv: sigma^2 = ln(1 + cv^2), mu = ln(mean) - sigma^2 / 2.
 */
class LogNormalArrival : public ArrivalProcess
{
  public:
    LogNormalArrival(double rate_per_sec, double cv) : cv_(cv)
    {
        const double mean_gap_ns = 1e9 / rate_per_sec;
        const double sigma2 = std::log(1.0 + cv * cv);
        sigma_ = std::sqrt(sigma2);
        mu_ = std::log(mean_gap_ns) - 0.5 * sigma2;
    }

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        (void)now;
        return std::exp(rng.normal(mu_, sigma_));
    }

    std::string
    name() const override
    {
        return sim::strfmt("lognormal:cv=%g", cv_);
    }

  private:
    double cv_;
    double mu_ = 0.0;
    double sigma_ = 0.0;
};

const ArrivalRegistrar lognormalReg(
    "lognormal", [](const ArrivalSpec &spec, double rate) {
        spec.expectKeys({"cv"});
        const double cv = spec.doubleParam("cv", 2.0);
        if (!std::isfinite(cv) || cv <= 0.0) {
            sim::fatal("arrival '" + spec.toString() +
                       "': lognormal needs cv > 0");
        }
        return std::make_unique<LogNormalArrival>(rate, cv);
    });

/**
 * 2-state Markov-modulated Poisson process. State dwells are
 * exponential; within a state arrivals are Poisson at that state's
 * rate, so the memoryless residual lets a gap that straddles a state
 * boundary be resampled exactly from the boundary onward.
 */
class Mmpp2Arrival : public ArrivalProcess
{
  public:
    Mmpp2Arrival(double rate_per_sec, double burst_frac, double ratio,
                 double burst_dwell_ns)
        : burstFrac_(burst_frac), ratio_(ratio),
          burstDwellNs_(burst_dwell_ns),
          baseDwellNs_(burst_dwell_ns * (1.0 - burst_frac) / burst_frac)
    {
        // Split the target average rate so that
        //   burst * rate_burst + (1 - burst) * rate_base == rate.
        const double base_rate =
            rate_per_sec / (1.0 - burst_frac + burst_frac * ratio);
        baseGapNs_ = 1e9 / base_rate;
        burstGapNs_ = baseGapNs_ / ratio;
    }

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        double t = sim::toNs(now);
        if (!started_) {
            started_ = true;
            stateEndNs_ = t + rng.exponential(dwellNs());
        }
        // Tick rounding can land the arrival a fraction of a ps past
        // the recorded boundary; fold any elapsed dwells first.
        while (stateEndNs_ <= t) {
            inBurst_ = !inBurst_;
            stateEndNs_ += rng.exponential(dwellNs());
        }
        double gap = 0.0;
        for (;;) {
            const double cand = rng.exponential(gapNs());
            if (t + cand <= stateEndNs_)
                return gap + cand;
            gap += stateEndNs_ - t;
            t = stateEndNs_;
            inBurst_ = !inBurst_;
            stateEndNs_ = t + rng.exponential(dwellNs());
        }
    }

    std::string
    name() const override
    {
        return sim::strfmt("mmpp2:burst=%g,dwell=%gus,ratio=%g",
                           burstFrac_, burstDwellNs_ / 1e3, ratio_);
    }

  private:
    double dwellNs() const { return inBurst_ ? burstDwellNs_ : baseDwellNs_; }
    double gapNs() const { return inBurst_ ? burstGapNs_ : baseGapNs_; }

    double burstFrac_;
    double ratio_;
    double burstDwellNs_;
    double baseDwellNs_;
    double baseGapNs_ = 0.0;
    double burstGapNs_ = 0.0;
    bool inBurst_ = false;
    bool started_ = false;
    double stateEndNs_ = 0.0;
};

const ArrivalRegistrar mmpp2Reg(
    "mmpp2", [](const ArrivalSpec &spec, double rate) {
        spec.expectKeys({"burst", "dwell", "ratio"});
        const double burst = spec.doubleParam("burst", 0.1);
        const double ratio = spec.doubleParam("ratio", 10.0);
        const double dwell_ns =
            sim::toNs(spec.tickParam("dwell", sim::microseconds(10.0)));
        if (!std::isfinite(burst) || burst <= 0.0 || burst >= 1.0) {
            sim::fatal("arrival '" + spec.toString() +
                       "': mmpp2 needs burst in (0, 1)");
        }
        if (!std::isfinite(ratio) || ratio < 1.0) {
            sim::fatal("arrival '" + spec.toString() +
                       "': mmpp2 needs ratio >= 1");
        }
        if (dwell_ns <= 0.0) {
            sim::fatal("arrival '" + spec.toString() +
                       "': mmpp2 needs dwell > 0");
        }
        return std::make_unique<Mmpp2Arrival>(rate, burst, ratio,
                                              dwell_ns);
    });

/**
 * Linearly ramping load: the instantaneous rate is the configured rate
 * times a multiplier moving from `from` to `to` over `over`, holding
 * at `to` afterwards. Gaps are sampled from the instantaneous rate (a
 * first-order inhomogeneous-Poisson approximation, accurate while the
 * rate changes slowly relative to one gap).
 */
class RampArrival : public ArrivalProcess
{
  public:
    RampArrival(double rate_per_sec, double from, double to,
                double over_ns)
        : ratePerNs_(rate_per_sec / 1e9), from_(from), to_(to),
          overNs_(over_ns)
    {}

    void onStart(sim::Tick now) override { startNs_ = sim::toNs(now); }

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        const double t = sim::toNs(now) - startNs_;
        const double frac = std::min(1.0, t / overNs_);
        const double mult = from_ + (to_ - from_) * frac;
        return rng.exponential(1.0 / (ratePerNs_ * mult));
    }

    std::string
    name() const override
    {
        return sim::strfmt("ramp:from=%g,over=%gus,to=%g", from_,
                           overNs_ / 1e3, to_);
    }

  private:
    double ratePerNs_;
    double from_;
    double to_;
    double overNs_;
    double startNs_ = 0.0;
};

const ArrivalRegistrar rampReg(
    "ramp", [](const ArrivalSpec &spec, double rate) {
        spec.expectKeys({"from", "to", "over"});
        const double from = spec.doubleParam("from", 0.5);
        const double to = spec.doubleParam("to", 1.5);
        const double over_ns =
            sim::toNs(spec.tickParam("over", sim::microseconds(1000.0)));
        if (!std::isfinite(from) || from <= 0.0 || !std::isfinite(to) ||
            to <= 0.0) {
            sim::fatal("arrival '" + spec.toString() +
                       "': ramp needs from > 0 and to > 0");
        }
        if (over_ns <= 0.0) {
            sim::fatal("arrival '" + spec.toString() +
                       "': ramp needs over > 0");
        }
        return std::make_unique<RampArrival>(rate, from, to, over_ns);
    });

/** Cyclic replay of recorded interarrival gaps. */
class TraceArrival : public ArrivalProcess
{
  public:
    TraceArrival(std::vector<double> gaps_ns, double scale,
                 std::string file)
        : gapsNs_(std::move(gaps_ns)), scale_(scale),
          file_(std::move(file))
    {}

    void onStart(sim::Tick now) override
    {
        (void)now;
        cursor_ = 0; // every run replays from the top
    }

    double
    nextInterarrivalNs(sim::Rng &rng, sim::Tick now) override
    {
        (void)rng;
        (void)now;
        const double gap = gapsNs_[cursor_] * scale_;
        cursor_ = (cursor_ + 1) % gapsNs_.size();
        return gap;
    }

    std::string
    name() const override
    {
        return "trace:file=" + file_;
    }

  private:
    std::vector<double> gapsNs_;
    double scale_;
    std::string file_;
    std::size_t cursor_ = 0;
};

const ArrivalRegistrar traceReg(
    "trace", [](const ArrivalSpec &spec, double rate) {
        spec.expectKeys({"file", "raw"});
        if (!spec.has("file")) {
            sim::fatal("arrival '" + spec.toString() +
                       "': trace needs file=PATH");
        }
        const std::string path = spec.params.at("file");
        std::ifstream in(path);
        if (!in) {
            sim::fatal("arrival '" + spec.toString() +
                       "': cannot open trace file '" + path + "'");
        }
        std::vector<double> gaps;
        double sum = 0.0;
        std::string line;
        while (std::getline(in, line)) {
            const std::size_t start =
                line.find_first_not_of(" \t\r");
            if (start == std::string::npos || line[start] == '#')
                continue;
            char *end = nullptr;
            const double gap = std::strtod(line.c_str() + start, &end);
            while (end != nullptr && (*end == ' ' || *end == '\t' ||
                                      *end == '\r'))
                ++end;
            if (end == line.c_str() + start || *end != '\0' ||
                !std::isfinite(gap) || gap < 0.0) {
                sim::fatal("arrival '" + spec.toString() +
                           "': trace file '" + path +
                           "' has a bad interarrival line: '" + line +
                           "'");
            }
            gaps.push_back(gap);
            sum += gap;
        }
        if (gaps.empty()) {
            sim::fatal("arrival '" + spec.toString() +
                       "': trace file '" + path +
                       "' has no interarrival samples");
        }
        if (!(sum > 0.0)) {
            sim::fatal("arrival '" + spec.toString() +
                       "': trace mean interarrival must be positive");
        }
        // Default: the trace supplies the burstiness shape and the
        // experiment the load — rescale the mean gap to 1/rate.
        // raw=1 replays the recorded timestamps verbatim.
        const bool raw = spec.uintParam("raw", 0) != 0;
        const double mean_gap = sum / static_cast<double>(gaps.size());
        const double scale = raw ? 1.0 : (1e9 / rate) / mean_gap;
        return std::make_unique<TraceArrival>(std::move(gaps), scale,
                                              path);
    });

} // namespace

// Forces this archive member (and thus the registrars above) into any
// binary that touches the ArrivalRegistry; see arrival.cc.
void linkBuiltinArrivals() {}

} // namespace rpcvalet::net
