#include "net/fabric.hh"

#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::net {

Fabric::Fabric(sim::Simulator &sim, sim::Tick latency)
    : sim_(sim), latency_(latency)
{
}

void
Fabric::connect(proto::NodeId node, Sink sink)
{
    RV_ASSERT(sink != nullptr, "null fabric sink");
    sinks_[node] = std::move(sink);
}

void
Fabric::connectDefault(Sink sink)
{
    RV_ASSERT(sink != nullptr, "null fabric sink");
    defaultSink_ = std::move(sink);
}

void
Fabric::send(proto::Packet pkt)
{
    const proto::NodeId dst = pkt.hdr.dst;
    sim_.schedule(latency_, [this, dst, pkt = std::move(pkt)]() mutable {
        ++delivered_;
        auto it = sinks_.find(dst);
        if (it != sinks_.end()) {
            it->second(std::move(pkt));
            return;
        }
        RV_ASSERT(defaultSink_ != nullptr,
                  "packet addressed to unconnected node");
        defaultSink_(std::move(pkt));
    });
}

} // namespace rpcvalet::net
