#include "net/fabric.hh"

#include <algorithm>
#include <utility>

#include "proto/packet.hh"
#include "sim/logging.hh"

namespace rpcvalet::net {

Fabric::Fabric(sim::EventDomain &sim, sim::Tick latency)
    : latency_(latency)
{
    auto state = std::make_unique<DomainState>();
    state->sim = &sim;
    domains_.push_back(std::move(state));
}

Fabric::Fabric(std::vector<sim::EventDomain *> domains, sim::Tick latency,
               sim::Tick lookahead)
    : latency_(latency), lookahead_(lookahead), parallel_(true),
      windowEnd_(lookahead)
{
    RV_ASSERT(!domains.empty(), "parallel fabric needs domains");
    if (lookahead == 0 || lookahead > latency) {
        sim::fatal(sim::strfmt(
            "fabric: lookahead %llu violates conservative "
            "synchronization — it must be in (0, link latency = %llu]: "
            "a packet sent inside a window [T, T+lookahead) is due at "
            "send time + latency, which must not precede the window "
            "end",
            static_cast<unsigned long long>(lookahead),
            static_cast<unsigned long long>(latency)));
    }
    for (std::size_t i = 0; i < domains.size(); ++i) {
        RV_ASSERT(domains[i] != nullptr, "null event domain");
        RV_ASSERT(domains[i]->id() == i,
                  "fabric domain table must be indexed by domain id");
        auto state = std::make_unique<DomainState>();
        state->sim = domains[i];
        domains_.push_back(std::move(state));
    }
    mailboxes_.resize(domains_.size() * domains_.size());
}

void
Fabric::connect(proto::NodeId node, Sink sink)
{
    RV_ASSERT(sink != nullptr, "null fabric sink");
    if (!sinks_.emplace(node, std::move(sink)).second) {
        sim::fatal(sim::strfmt(
            "fabric: node %u is already connected (duplicate "
            "registration would silently drop the first sink's "
            "traffic)",
            node));
    }
}

void
Fabric::connectDefault(Sink sink)
{
    RV_ASSERT(sink != nullptr, "null fabric sink");
    if (defaultSink_ != nullptr) {
        sim::fatal("fabric: a default sink is already connected "
                   "(duplicate registration)");
    }
    defaultSink_ = std::move(sink);
}

void
Fabric::assignNode(proto::NodeId node, sim::DomainId domain)
{
    RV_ASSERT(parallel_, "assignNode on a single-domain fabric");
    RV_ASSERT(domain < domains_.size(), "domain id out of range");
    if (!nodeDomain_.emplace(node, domain).second) {
        sim::fatal(sim::strfmt(
            "fabric: node %u is already assigned to a domain", node));
    }
}

sim::DomainId
Fabric::domainOf(proto::NodeId node) const
{
    const auto it = nodeDomain_.find(node);
    return it != nodeDomain_.end() ? it->second : sim::DomainId(0);
}

void
Fabric::setPerturber(PacketPerturber *perturber)
{
    perturber_ = perturber;
}

void
Fabric::send(proto::Packet pkt)
{
    const sim::DomainId src = parallel_ ? domainOf(pkt.hdr.src)
                                        : sim::DomainId(0);
    sim::Tick extra = 0;
    if (perturber_ != nullptr) {
        // Runs on the posting domain's thread; additive-only latency
        // keeps the lookahead invariant below intact.
        const PacketPerturber::Verdict verdict = perturber_->perturb(
            pkt, src, domains_[src]->sim->now());
        if (verdict.drop)
            return;
        extra = verdict.extraLatency;
    }

    if (!parallel_) {
        // Single-domain fast path: identical to the legacy fabric.
        DomainState &s = *domains_.front();
        DeliverEvent *ev = s.pool.acquire();
        ev->fabric = this;
        ev->dom = 0;
        ev->pkt = std::move(pkt);
        s.sim->schedule(*ev, latency_ + extra);
        return;
    }

    const sim::DomainId dst = domainOf(pkt.hdr.dst);
    DomainState &s = *domains_[src];
    if (src == dst) {
        // Domain-local traffic never crosses a window boundary.
        DeliverEvent *ev = s.pool.acquire();
        ev->fabric = this;
        ev->dom = dst;
        ev->pkt = std::move(pkt);
        s.sim->schedule(*ev, latency_ + extra);
        return;
    }

    const sim::Tick when = s.sim->now() + latency_ + extra;
    RV_ASSERT(when >= windowEnd_,
              "cross-domain packet due inside the executing window "
              "(lookahead invariant violated)");
    auto &edge = mailboxes_[src * domains_.size() + dst];
    Mail mail;
    mail.pkt = std::move(pkt);
    mail.when = when;
    mail.src = src;
    mail.dst = dst;
    mail.seq = edge.size();
    edge.push_back(std::move(mail));
}

void
Fabric::exchangeWindow(sim::Tick nextWindowEnd)
{
    RV_ASSERT(parallel_, "exchangeWindow on a single-domain fabric");
    RV_ASSERT(nextWindowEnd > windowEnd_, "window must advance");

    drainScratch_.clear();
    for (auto &edge : mailboxes_) {
        for (Mail &m : edge)
            drainScratch_.push_back(std::move(m));
        edge.clear();
    }
    windowEnd_ = nextWindowEnd;
    if (drainScratch_.empty())
        return;

    // Deterministic delivery order per destination wheel: by time,
    // then posting domain, then posting order — independent of worker
    // count and scheduling.
    std::sort(drainScratch_.begin(), drainScratch_.end(),
              [](const Mail &a, const Mail &b) {
                  if (a.dst != b.dst)
                      return a.dst < b.dst;
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.seq < b.seq;
              });

    // Coalesce same-(domain, tick) arrivals into one batched ingress
    // event each.
    std::size_t i = 0;
    while (i < drainScratch_.size()) {
        std::size_t j = i + 1;
        while (j < drainScratch_.size() &&
               drainScratch_[j].dst == drainScratch_[i].dst &&
               drainScratch_[j].when == drainScratch_[i].when)
            ++j;
        DomainState &d = *domains_[drainScratch_[i].dst];
        BatchDeliverEvent *ev = d.batchPool.acquire();
        ev->fabric = this;
        ev->dom = drainScratch_[i].dst;
        ev->pkts.reserve(j - i);
        for (std::size_t k = i; k < j; ++k)
            ev->pkts.push_back(std::move(drainScratch_[k].pkt));
        d.sim->scheduleAt(*ev, drainScratch_[i].when);
        i = j;
    }
}

void
Fabric::DeliverEvent::process()
{
    Fabric *f = fabric;
    const sim::DomainId d = dom;
    proto::Packet p = std::move(pkt);
    // Recycle before the sink runs: a sink that sends again may reuse
    // this very slot.
    f->domains_[d]->pool.release(this);
    f->deliver(d, std::move(p));
}

void
Fabric::BatchDeliverEvent::process()
{
    // Unlike the single-packet event, batch events are only acquired
    // at the barrier (never from a sink), so delivering before the
    // release is safe — and keeps the packet vector's capacity.
    for (proto::Packet &p : pkts)
        fabric->deliver(dom, std::move(p));
    pkts.clear();
    fabric->domains_[dom]->batchPool.release(this);
}

void
Fabric::deliver(sim::DomainId dom, proto::Packet pkt)
{
    ++domains_[dom]->delivered;
    auto it = sinks_.find(pkt.hdr.dst);
    if (it != sinks_.end()) {
        it->second(std::move(pkt));
        return;
    }
    if (defaultSink_ == nullptr) {
        sim::fatal(sim::strfmt(
            "fabric: %s packet from node %u addressed to unconnected "
            "node %u (no sink registered for it and no default sink)",
            proto::opName(pkt.hdr.op).c_str(), pkt.hdr.src,
            pkt.hdr.dst));
    }
    defaultSink_(std::move(pkt));
}

std::uint64_t
Fabric::delivered() const
{
    std::uint64_t total = 0;
    for (const auto &d : domains_)
        total += d->delivered;
    return total;
}

} // namespace rpcvalet::net
