#include "net/fabric.hh"

#include <utility>

#include "proto/packet.hh"
#include "sim/logging.hh"

namespace rpcvalet::net {

Fabric::Fabric(sim::Simulator &sim, sim::Tick latency)
    : sim_(sim), latency_(latency)
{
}

void
Fabric::connect(proto::NodeId node, Sink sink)
{
    RV_ASSERT(sink != nullptr, "null fabric sink");
    if (!sinks_.emplace(node, std::move(sink)).second) {
        sim::fatal(sim::strfmt(
            "fabric: node %u is already connected (duplicate "
            "registration would silently drop the first sink's "
            "traffic)",
            node));
    }
}

void
Fabric::connectDefault(Sink sink)
{
    RV_ASSERT(sink != nullptr, "null fabric sink");
    if (defaultSink_ != nullptr) {
        sim::fatal("fabric: a default sink is already connected "
                   "(duplicate registration)");
    }
    defaultSink_ = std::move(sink);
}

void
Fabric::send(proto::Packet pkt)
{
    DeliverEvent *ev = pool_.acquire();
    ev->fabric = this;
    ev->pkt = std::move(pkt);
    sim_.schedule(*ev, latency_);
}

void
Fabric::DeliverEvent::process()
{
    Fabric *f = fabric;
    proto::Packet p = std::move(pkt);
    // Recycle before the sink runs: a sink that sends again may reuse
    // this very slot.
    f->pool_.release(this);
    f->deliver(std::move(p));
}

void
Fabric::deliver(proto::Packet pkt)
{
    ++delivered_;
    auto it = sinks_.find(pkt.hdr.dst);
    if (it != sinks_.end()) {
        it->second(std::move(pkt));
        return;
    }
    if (defaultSink_ == nullptr) {
        sim::fatal(sim::strfmt(
            "fabric: %s packet from node %u addressed to unconnected "
            "node %u (no sink registered for it and no default sink)",
            proto::opName(pkt.hdr.op).c_str(), pkt.hdr.src,
            pkt.hdr.dst));
    }
    defaultSink_(std::move(pkt));
}

} // namespace rpcvalet::net
