/**
 * @file
 * Inter-node network fabric.
 *
 * A fixed-latency, per-packet delivery fabric connecting the modeled
 * nodes. soNUMA-class fabrics are low-latency rack-scale
 * interconnects; congestion happens at the endpoints' NI pipelines,
 * which the NI model covers, so the fabric itself is contention-free
 * by design (DESIGN.md §6).
 *
 * The fabric exists in two shapes:
 *
 *  - Single-domain (default): every node lives on one EventDomain and
 *    a send schedules a pooled delivery event latency ticks out — the
 *    exact legacy path, bit-identical to previous releases.
 *
 *  - Multi-domain (conservative parallel DES): nodes are assigned to
 *    domains (assignNode) and the link latency doubles as the
 *    synchronization lookahead. A same-domain send takes the legacy
 *    path on the local wheel. A cross-domain send is posted to the
 *    (src domain, dst domain) edge mailbox stamped with its delivery
 *    time; because delivery time = send time + latency and latency >=
 *    lookahead, a packet sent inside the window [T, T + lookahead) can
 *    never be due before the window ends — send() asserts this
 *    invariant. At the barrier, exchangeWindow() drains every edge in
 *    a deterministic order and schedules the mail into the destination
 *    wheels, coalescing packets that arrive at the same (domain, tick)
 *    into one batched ingress event.
 *
 * Mailbox ownership protocol (multi-domain runs):
 *  - During a window, edge (s, d) is written only by the thread that
 *    owns domain s; no other thread reads or writes it.
 *  - exchangeWindow() runs only at the barrier, on the coordinator,
 *    while every domain thread is quiescent; the barrier's
 *    release/acquire pair (core::WindowPool) publishes the mailboxes.
 *  - connect()/connectDefault()/assignNode() happen at construction
 *    time, before any worker exists; the sink and domain tables are
 *    read-only afterwards.
 */

#ifndef RPCVALET_NET_FABRIC_HH
#define RPCVALET_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "proto/packet.hh"
#include "sim/domain.hh"

namespace rpcvalet::net {

/**
 * Hook applied to every packet at injection time — the fabric/NI
 * boundary where packet-level faults (loss, delay, corruption) live.
 * perturb() runs on the posting domain's thread inside send(), so an
 * implementation serving a parallel run must keep per-domain state
 * (see fault::PacketFaults) and may not touch other domains' lanes.
 */
class PacketPerturber
{
  public:
    /** What happens to one packet. */
    struct Verdict
    {
        /** Drop the packet (it never arrives; no event scheduled). */
        bool drop = false;
        /** Extra one-way latency on top of the fabric's. Only ever
         *  additive, so the conservative lookahead invariant (delivery
         *  >= send + latency >= window end) is preserved for free. */
        sim::Tick extraLatency = 0;
    };

    virtual ~PacketPerturber() = default;

    /**
     * Inspect (and possibly mutate, e.g. corrupt) @p pkt, posted on
     * @p domain at local time @p now.
     */
    virtual Verdict perturb(proto::Packet &pkt, sim::DomainId domain,
                            sim::Tick now) = 0;
};

/** Point-to-point packet delivery with constant propagation delay. */
class Fabric
{
  public:
    using Sink = std::function<void(proto::Packet)>;

    /**
     * Single-domain fabric: every node lives on @p sim.
     *
     * @param sim       Owning event domain.
     * @param latency   One-way propagation delay per packet.
     */
    Fabric(sim::EventDomain &sim, sim::Tick latency);

    /**
     * Multi-domain fabric for conservative parallel DES.
     *
     * @param domains   One entry per domain; entry i must be the
     *                  domain with id i (id 0 is the default home of
     *                  unassigned nodes — by convention the client
     *                  side).
     * @param latency   One-way propagation delay per packet.
     * @param lookahead Window length the run will use. A lookahead
     *                  exceeding the link latency breaks conservative
     *                  synchronization (a packet could be due inside
     *                  the window it was sent in) and is fatal.
     */
    Fabric(std::vector<sim::EventDomain *> domains, sim::Tick latency,
           sim::Tick lookahead);

    /**
     * Attach the receiver for packets addressed to @p node.
     * Registering the same node twice is fatal (matching the
     * registries' duplicate-key behavior): the old behavior of
     * silently overwriting the first sink dropped its traffic.
     */
    void connect(proto::NodeId node, Sink sink);

    /**
     * Attach the receiver for all nodes without an explicit sink.
     * Fatal if a default sink is already attached.
     */
    void connectDefault(Sink sink);

    /**
     * Place @p node on @p domain (multi-domain fabrics only; nodes
     * never assigned live on domain 0). Construction-time only — see
     * the ownership protocol above.
     */
    void assignNode(proto::NodeId node, sim::DomainId domain);

    /**
     * Attach a packet perturber (fault injection). Construction-time
     * only, like connect(); at most one, null detaches. The perturber
     * sees every packet from every node, before latency is applied.
     */
    void setPerturber(PacketPerturber *perturber);

    /** Inject a packet; it arrives at its destination after latency. */
    void send(proto::Packet pkt);

    /**
     * Barrier step (multi-domain; coordinator only, all domain
     * threads quiescent): deliver the closing window's cross-domain
     * mail into the destination wheels in deterministic (time, source
     * domain, posting order) order, then arm the next window, which
     * ends at @p nextWindowEnd.
     */
    void exchangeWindow(sim::Tick nextWindowEnd);

    /** Packets delivered so far (all domains). */
    std::uint64_t delivered() const;

    /** One-way propagation delay per packet. */
    sim::Tick latency() const { return latency_; }

    /** Synchronization lookahead (0 for single-domain fabrics). */
    sim::Tick lookahead() const { return lookahead_; }

    /** True for the multi-domain (mailbox) shape. */
    bool parallel() const { return parallel_; }

  private:
    /** In-flight packet: pooled, reused across deliveries. */
    struct DeliverEvent : sim::Event
    {
        Fabric *fabric = nullptr;
        sim::DomainId dom = 0;
        proto::Packet pkt;

        void process() override;
        const char *description() const override
        {
            return "fabric-deliver";
        }
    };

    /**
     * Coalesced cross-domain ingress: every packet due at one
     * (domain, tick) rides a single event, in deterministic order.
     */
    struct BatchDeliverEvent : sim::Event
    {
        Fabric *fabric = nullptr;
        sim::DomainId dom = 0;
        std::vector<proto::Packet> pkts;

        void process() override;
        const char *description() const override
        {
            return "fabric-deliver-batch";
        }
    };

    /** A cross-domain packet parked in an edge mailbox. */
    struct Mail
    {
        proto::Packet pkt;
        sim::Tick when = 0;       ///< absolute delivery time
        sim::DomainId src = 0;    ///< posting domain (sort tiebreak)
        sim::DomainId dst = 0;    ///< destination domain
        std::uint64_t seq = 0;    ///< per-edge posting order
    };

    /** Per-domain state, touched only by the domain's owner thread
     *  (except at the barrier, where the coordinator owns all). */
    struct DomainState
    {
        sim::EventDomain *sim = nullptr;
        std::uint64_t delivered = 0;
        sim::EventPool<DeliverEvent> pool;
        sim::EventPool<BatchDeliverEvent> batchPool;
    };

    void deliver(sim::DomainId dom, proto::Packet pkt);
    sim::DomainId domainOf(proto::NodeId node) const;

    std::vector<std::unique_ptr<DomainState>> domains_;
    sim::Tick latency_;
    sim::Tick lookahead_ = 0;
    bool parallel_ = false;
    /** End of the window currently executing (multi-domain). */
    sim::Tick windowEnd_ = 0;
    /** Edge mailboxes, row-major [src * numDomains + dst]. */
    std::vector<std::vector<Mail>> mailboxes_;
    std::unordered_map<proto::NodeId, sim::DomainId> nodeDomain_;
    std::unordered_map<proto::NodeId, Sink> sinks_;
    Sink defaultSink_;
    /** Optional fault-injection hook (not owned). */
    PacketPerturber *perturber_ = nullptr;
    /** Barrier drain scratch (coordinator only; reused, no alloc). */
    std::vector<Mail> drainScratch_;
};

} // namespace rpcvalet::net

#endif // RPCVALET_NET_FABRIC_HH
