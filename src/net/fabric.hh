/**
 * @file
 * Inter-node network fabric.
 *
 * A fixed-latency, per-packet delivery fabric connecting the modeled
 * node with the (emulated) rest of the cluster. soNUMA-class fabrics
 * are low-latency rack-scale interconnects; congestion happens at the
 * endpoints' NI pipelines, which the NI model covers, so the fabric
 * itself is contention-free by design (DESIGN.md §6).
 */

#ifndef RPCVALET_NET_FABRIC_HH
#define RPCVALET_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "proto/packet.hh"
#include "sim/simulator.hh"

namespace rpcvalet::net {

/** Point-to-point packet delivery with constant propagation delay. */
class Fabric
{
  public:
    using Sink = std::function<void(proto::Packet)>;

    /**
     * @param sim       Owning simulator.
     * @param latency   One-way propagation delay per packet.
     */
    Fabric(sim::Simulator &sim, sim::Tick latency);

    /**
     * Attach the receiver for packets addressed to @p node.
     * Registering the same node twice is fatal (matching the
     * registries' duplicate-key behavior): the old behavior of
     * silently overwriting the first sink dropped its traffic.
     */
    void connect(proto::NodeId node, Sink sink);

    /**
     * Attach the receiver for all nodes without an explicit sink.
     * Fatal if a default sink is already attached.
     */
    void connectDefault(Sink sink);

    /** Inject a packet; it arrives at its destination after latency. */
    void send(proto::Packet pkt);

    /** Packets delivered so far. */
    std::uint64_t delivered() const { return delivered_; }

  private:
    /** In-flight packet: pooled, reused across deliveries. */
    struct DeliverEvent : sim::Event
    {
        Fabric *fabric = nullptr;
        proto::Packet pkt;

        void process() override;
        const char *description() const override
        {
            return "fabric-deliver";
        }
    };

    void deliver(proto::Packet pkt);

    sim::Simulator &sim_;
    sim::Tick latency_;
    std::unordered_map<proto::NodeId, Sink> sinks_;
    Sink defaultSink_;
    std::uint64_t delivered_ = 0;
    sim::EventPool<DeliverEvent> pool_;
};

} // namespace rpcvalet::net

#endif // RPCVALET_NET_FABRIC_HH
