/**
 * @file
 * Pluggable open-loop arrival processes.
 *
 * The paper's evaluation drives the node with fixed-rate Poisson
 * arrivals (§5), but the single-queue dispatch claim is stressed
 * hardest by bursty and time-varying µs-scale traffic. This subsystem
 * makes the interarrival process a first-class, string-selectable
 * component, mirroring the dispatch-policy architecture:
 *
 *  - ArrivalSpec      "name:key=value,..." (sim::Spec with arrival
 *                     diagnostics), e.g. "mmpp2:burst=0.1,ratio=10"
 *  - ArrivalProcess   samples the next interarrival gap; lifecycle
 *                     hooks observe start/halt
 *  - ArrivalRegistry  process-wide name -> factory table; processes
 *                     self-register via ArrivalRegistrar, including
 *                     from outside src/ (see
 *                     examples/custom_arrival_playground.cc).
 *                     Lookups are runtime-only (from main onward), as
 *                     with the ni::PolicyRegistry: a make() call
 *                     during another translation unit's static
 *                     initialization may run before the built-ins
 *                     have registered
 *  - ArrivalDriver    generalizes sim::PoissonProcess: schedules one
 *                     handler call per arrival drawn from any process
 *
 * Built-ins (src/net/arrivals.cc): "poisson" (default; bit-identical
 * to the legacy sim::PoissonProcess at a fixed seed), "deterministic",
 * "lognormal:cv=", "mmpp2:burst=,ratio=,dwell=", "ramp:from=,to=,
 * over=", and "trace:file=,raw=".
 */

#ifndef RPCVALET_NET_ARRIVAL_HH
#define RPCVALET_NET_ARRIVAL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/domain.hh"
#include "sim/rng.hh"
#include "sim/spec.hh"
#include "sim/types.hh"

namespace rpcvalet::net {

/** An arrival-process selection: registry name plus parameters. */
struct ArrivalSpec : public sim::Spec
{
    /** Default process: the paper's fixed-rate Poisson generator. */
    ArrivalSpec();

    /** Implicit: parse a spec string (fatal on malformed input). */
    ArrivalSpec(const char *text);
    ArrivalSpec(const std::string &text);

    /** Parse "name" or "name:k=v,k=v" (see sim::Spec::parse). */
    static ArrivalSpec parse(const std::string &text);
};

/**
 * Interface for an open-loop interarrival-time process. Instances are
 * stateful (MMPP phase, ramp anchor, trace cursor) and owned by one
 * ArrivalDriver; they draw all randomness from the driver's Rng so
 * arrival sequences stay bit-reproducible and isolated from other
 * components' streams.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /**
     * Sample the gap (ns) from the arrival at absolute time @p now to
     * the next one. Called once per arrival, plus once at start() for
     * the first arrival.
     */
    virtual double nextInterarrivalNs(sim::Rng &rng, sim::Tick now) = 0;

    /** Lifecycle hook: the driver is about to generate arrivals. */
    virtual void onStart(sim::Tick now) { (void)now; }

    /** Lifecycle hook: the driver stopped generating arrivals. */
    virtual void onHalt(sim::Tick now) { (void)now; }

    /** Canonical spec string of this instance (for reports). */
    virtual std::string name() const = 0;
};

using ArrivalProcessPtr = std::unique_ptr<ArrivalProcess>;

/** Process-wide name -> factory table for arrival processes. */
class ArrivalRegistry
{
  public:
    /**
     * Builds a process from its (validated) spec, shaped to a target
     * long-run average rate in arrivals per second. Processes may
     * reinterpret the target: "ramp" scales it by a time-varying
     * multiplier (holding at `to` past the ramp) and "trace:raw=1"
     * ignores it entirely (see arrivals.cc).
     */
    using Factory = std::function<ArrivalProcessPtr(
        const ArrivalSpec &, double rate_per_sec)>;

    /** The process-wide registry (created on first use). */
    static ArrivalRegistry &instance();

    /** Register @p factory under @p name; duplicate names are fatal. */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** Sorted names joined with ", " (for error messages and help). */
    std::string namesJoined() const;

    /**
     * Instantiate the process @p spec names at @p rate_per_sec. An
     * unregistered name is fatal, with the message listing every
     * registered name; so is a non-positive rate.
     */
    ArrivalProcessPtr make(const ArrivalSpec &spec,
                           double rate_per_sec) const;

  private:
    ArrivalRegistry() = default;

    std::map<std::string, Factory> factories_;
};

/** Registers a factory at static-initialization time. */
struct ArrivalRegistrar
{
    ArrivalRegistrar(const std::string &name,
                     ArrivalRegistry::Factory factory);
};

/**
 * Drives a handler with arrivals drawn from an ArrivalProcess — the
 * generalization of sim::PoissonProcess to any registered process.
 * With the "poisson" process it reproduces PoissonProcess's event
 * stream bit-for-bit at the same seed (same Rng stream, same
 * scheduling order). The driver owns one reusable member event, so
 * steady-state arrival generation never allocates.
 */
class ArrivalDriver
{
  public:
    using Handler = std::function<void()>;

    /**
     * @param sim      Owning event domain (must outlive the driver).
     * @param process  The interarrival process (takes ownership).
     * @param rng_seed Seed for the private interarrival Rng.
     * @param handler  Invoked once per arrival.
     */
    ArrivalDriver(sim::EventDomain &sim, ArrivalProcessPtr process,
                  std::uint64_t rng_seed, Handler handler);

    /**
     * Pre-draw arrivals in blocks covering @p window ticks instead of
     * one interarrival sample per wakeup. Each block is a tight loop
     * over the process and Rng (no event-wheel round trips between
     * draws); each arrival still fires its own event at its exact
     * tick, with the process observing the predicted arrival time —
     * so the generated arrival sequence is bit-identical to the
     * unbatched mode. 0 (the default) keeps the legacy
     * draw-per-arrival behavior. Call before start().
     */
    void setBatchWindow(sim::Tick window) { batchWindow_ = window; }

    /** Fire the start hook and schedule the first arrival. */
    void start();

    /** Cease generating arrivals (already-queued events still fire). */
    void halt();

    /** Arrivals generated so far. */
    std::uint64_t arrivals() const { return arrivals_; }

    /** The driven process (e.g. for its name()). */
    const ArrivalProcess &process() const { return *process_; }

  private:
    void fire();
    void scheduleNext();
    void refillBatch();

    sim::EventDomain &sim_;
    ArrivalProcessPtr process_;
    sim::Rng rng_;
    Handler handler_;
    bool halted_ = false;
    std::uint64_t arrivals_ = 0;
    sim::Tick batchWindow_ = 0;
    /** Pre-drawn absolute arrival times (batch mode). */
    std::vector<sim::Tick> batch_;
    std::size_t batchNext_ = 0;
    /** Absolute time of the last drawn arrival (batch mode). */
    sim::Tick lastDrawn_ = 0;
    sim::MemberEvent<ArrivalDriver, &ArrivalDriver::fire> event_;
};

} // namespace rpcvalet::net

#endif // RPCVALET_NET_ARRIVAL_HH
