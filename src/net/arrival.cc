#include "net/arrival.hh"

#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::net {

// Defined in arrivals.cc. Calling it from instance() forces that
// archive member — whose only entry points are its static registrars —
// into every binary that uses the registry.
void linkBuiltinArrivals();

ArrivalSpec::ArrivalSpec()
{
    what = "arrival";
    name = "poisson";
}

ArrivalSpec::ArrivalSpec(const char *text) : ArrivalSpec(parse(text)) {}

ArrivalSpec::ArrivalSpec(const std::string &text)
    : ArrivalSpec(parse(text))
{}

ArrivalSpec
ArrivalSpec::parse(const std::string &text)
{
    ArrivalSpec spec;
    static_cast<sim::Spec &>(spec) = sim::Spec::parse(text, "arrival");
    return spec;
}

ArrivalRegistry &
ArrivalRegistry::instance()
{
    static ArrivalRegistry registry;
    linkBuiltinArrivals();
    return registry;
}

void
ArrivalRegistry::add(const std::string &name, Factory factory)
{
    if (name.empty())
        sim::fatal("cannot register an arrival process with an empty name");
    if (factory == nullptr)
        sim::fatal("arrival process '" + name + "' has a null factory");
    if (!factories_.emplace(name, std::move(factory)).second) {
        sim::fatal("arrival process '" + name +
                   "' is already registered (duplicate registration)");
    }
}

bool
ArrivalRegistry::contains(const std::string &name) const
{
    return factories_.count(name) > 0;
}

std::vector<std::string>
ArrivalRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        out.push_back(name); // std::map iterates in sorted order
    }
    return out;
}

std::string
ArrivalRegistry::namesJoined() const
{
    std::string out;
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

ArrivalProcessPtr
ArrivalRegistry::make(const ArrivalSpec &spec, double rate_per_sec) const
{
    const auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
        sim::fatal("unknown arrival process '" + spec.name +
                   "' (registered arrival processes: " + namesJoined() +
                   ")");
    }
    if (!(rate_per_sec > 0.0)) {
        sim::fatal("arrival process '" + spec.toString() +
                   "' needs a positive target rate");
    }
    auto process = it->second(spec, rate_per_sec);
    if (process == nullptr) {
        sim::panic("factory for arrival process '" + spec.name +
                   "' returned null");
    }
    return process;
}

ArrivalRegistrar::ArrivalRegistrar(const std::string &name,
                                   ArrivalRegistry::Factory factory)
{
    ArrivalRegistry::instance().add(name, std::move(factory));
}

// The Rng stream id matches sim::PoissonProcess so the "poisson"
// process reproduces the legacy arrival sequence bit-for-bit.
ArrivalDriver::ArrivalDriver(sim::EventDomain &sim,
                             ArrivalProcessPtr process,
                             std::uint64_t rng_seed, Handler handler)
    : sim_(sim), process_(std::move(process)),
      rng_(rng_seed, /*stream=*/0x90150), handler_(std::move(handler)),
      event_(*this, "arrival")
{
    RV_ASSERT(process_ != nullptr, "arrival driver needs a process");
    RV_ASSERT(handler_ != nullptr, "arrival handler missing");
}

void
ArrivalDriver::start()
{
    process_->onStart(sim_.now());
    lastDrawn_ = sim_.now();
    scheduleNext();
}

void
ArrivalDriver::halt()
{
    halted_ = true;
    process_->onHalt(sim_.now());
}

void
ArrivalDriver::fire()
{
    if (halted_)
        return;
    ++arrivals_;
    handler_();
    scheduleNext();
}

void
ArrivalDriver::scheduleNext()
{
    if (batchWindow_ == 0) {
        const sim::Tick gap = sim::nanoseconds(
            process_->nextInterarrivalNs(rng_, sim_.now()));
        sim_.schedule(event_, gap);
        return;
    }
    if (batchNext_ >= batch_.size())
        refillBatch();
    sim_.scheduleAt(event_, batch_[batchNext_++]);
}

void
ArrivalDriver::refillBatch()
{
    // Draw a lookahead window's worth of arrivals in one pass. The
    // process sees the predicted absolute arrival time — exactly what
    // sim_.now() would read when the draw happens one arrival at a
    // time, so the sequence is identical to the unbatched mode.
    batch_.clear();
    batchNext_ = 0;
    const sim::Tick horizon = sim_.now() + batchWindow_;
    sim::Tick t = lastDrawn_;
    do {
        t += sim::nanoseconds(process_->nextInterarrivalNs(rng_, t));
        batch_.push_back(t);
    } while (t < horizon);
    lastDrawn_ = t;
}

} // namespace rpcvalet::net
