/**
 * @file
 * Cluster traffic generator (§5 "System organization").
 *
 * The modeled chip is one node of a 200-node cluster; the other 199
 * nodes are emulated by this generator. It creates synthetic send
 * requests at an aggregate rate shaped by a pluggable arrival process
 * (default: the paper's Poisson; see net/arrival.hh) from uniformly
 * random source nodes, obeys per-source send-slot flow control (a
 * source with all S slots in flight defers until a replenish returns),
 * consumes the modeled node's replies, verifies them against the
 * application, and returns reply replenishes after a client-side
 * turnaround delay.
 */

#ifndef RPCVALET_NET_TRAFFIC_GEN_HH
#define RPCVALET_NET_TRAFFIC_GEN_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "app/rpc_application.hh"
#include "net/arrival.hh"
#include "net/fabric.hh"
#include "proto/messaging.hh"
#include "sim/simulator.hh"

namespace rpcvalet::net {

/** Emulates the remote 199 nodes of the messaging domain. */
class TrafficGenerator
{
  public:
    struct Params
    {
        /** Aggregate request arrival rate, requests per second. */
        double arrivalRps = 1e6;
        /** Interarrival process shaping that rate (net/arrival.hh). */
        ArrivalSpec arrival{};
        /** The node under test (requests' destination). */
        proto::NodeId targetNode = 0;
        /** Client-side turnaround before replenishing a reply slot. */
        sim::Tick clientTurnaround = sim::nanoseconds(100.0);
        /** Experiment seed. */
        std::uint64_t seed = 1;
    };

    TrafficGenerator(sim::Simulator &sim, const Params &params,
                     const proto::MessagingDomain &domain,
                     app::RpcApplication &app, Fabric &fabric);

    /** Begin generating load. */
    void start();

    /** Stop generating new requests (in-flight ones complete). */
    void halt();

    /** Fabric sink for packets addressed to any emulated node. */
    void receivePacket(proto::Packet pkt);

    /** Requests injected into the fabric. */
    std::uint64_t requestsSent() const { return requestsSent_; }

    /**
     * Requests generated per request class (indexed like the
     * application's requestClasses(); includes requests still deferred
     * by flow control). The class id is read off the wire bytes, so
     * this observes exactly what the server will account.
     */
    const std::vector<std::uint64_t> &
    requestsMadeByClass() const
    {
        return madeByClass_;
    }

    /** Replies fully received. */
    std::uint64_t repliesReceived() const { return repliesReceived_; }

    /** Replies that failed application-level verification. */
    std::uint64_t verificationFailures() const { return verifyFailures_; }

    /** Arrivals deferred because the source had no free slot. */
    std::uint64_t flowControlDeferrals() const { return deferrals_; }

    /** Requests that took the rendezvous (large-message) path. */
    std::uint64_t rendezvousRequests() const { return rendezvous_; }

    /** Requests currently in flight (slot held). */
    std::uint64_t inFlight() const { return inFlight_; }

  private:
    void onArrival();
    void launchRequest(proto::NodeId src, std::uint32_t slot,
                       std::vector<std::uint8_t> request);
    void onReplyComplete(proto::NodeId dst, std::uint32_t slot,
                         std::vector<std::uint8_t> reply);
    void onReplenish(const proto::Packet &pkt);

    sim::Simulator &sim_;
    Params params_;
    proto::MessagingDomain domain_;
    app::RpcApplication &app_;
    Fabric &fabric_;
    ArrivalDriver arrivals_;
    sim::Rng pickRng_;
    sim::Rng clientRng_;

    /** Free request-slot numbers per source node. */
    std::vector<std::vector<std::uint32_t>> freeSlots_;
    /** Requests waiting for a slot, per source node. */
    std::vector<std::deque<std::vector<std::uint8_t>>> pending_;
    /** Outstanding request bytes per flat (src, slot) index. */
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        outstandingRequests_;

    /** Reply reassembly: packets received per (dst, slot) key. */
    struct ReplyAssembly
    {
        std::uint32_t arrived = 0;
        std::uint32_t total = 0;
        std::vector<std::uint8_t> bytes;
    };
    std::unordered_map<std::uint64_t, ReplyAssembly> replies_;

    std::uint64_t requestsSent_ = 0;
    std::vector<std::uint64_t> madeByClass_;
    std::uint64_t repliesReceived_ = 0;
    std::uint64_t verifyFailures_ = 0;
    std::uint64_t deferrals_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t rendezvous_ = 0;
};

} // namespace rpcvalet::net

#endif // RPCVALET_NET_TRAFFIC_GEN_HH
