/**
 * @file
 * Cluster traffic generator (§5 "System organization").
 *
 * The modeled servers are nodes of a 200-node cluster; the remaining
 * nodes are emulated by this generator. It creates synthetic send
 * requests at an aggregate rate shaped by a pluggable arrival process
 * (default: the paper's Poisson; see net/arrival.hh) from uniformly
 * random source nodes, obeys per-(source, server) send-slot flow
 * control (a source with all S slots toward a server in flight defers
 * until a replenish returns), consumes the servers' replies, verifies
 * them against the application, and returns reply replenishes after a
 * client-side turnaround delay.
 *
 * With more than one server node the generator is also the cluster's
 * client-side balancer: each request is addressed by a cluster Router
 * (src/cluster/router.hh) that observes per-server health and
 * outstanding load through the ClusterView interface this class
 * implements. An optional request timeout sweeps outstanding requests,
 * feeds consecutive timeouts into the HealthTracker, and reroutes
 * timed-out (and queued) requests to surviving servers — the failover
 * path. With numServers == 1 and no router the generator behaves
 * bit-identically to the original single-node version: no extra Rng
 * draws, no extra events.
 *
 * The generator also plays the fabric side of nested RPC chains
 * (issueNested): a server whose handler fans out to other tiers hands
 * its nested requests here, where they ride the normal client
 * machinery as a chain group whose completion resumes the parent's
 * deferred reply. Workloads that never nest take none of these paths.
 */

#ifndef RPCVALET_NET_TRAFFIC_GEN_HH
#define RPCVALET_NET_TRAFFIC_GEN_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "app/rpc_application.hh"
#include "cluster/router.hh"
#include "cluster/topology.hh"
#include "conn/conn.hh"
#include "fault/fault.hh"
#include "net/arrival.hh"
#include "net/fabric.hh"
#include "proto/messaging.hh"
#include "sim/domain.hh"
#include "stats/latency_recorder.hh"

namespace rpcvalet::net {

/**
 * Connection identity a request carries through its in-flight
 * life: the logical client it belongs to, when the client
 * generated it (client-observed latency origin), and whether
 * admission deferred it. Default-constructed (client ==
 * proto::noConnClient) on every legacy-path request.
 */
struct ConnTag
{
    std::uint32_t client = proto::noConnClient;
    sim::Tick genAt = 0;
    bool deferred = false;
};

/** Emulates the remote client nodes of the messaging domain. */
class TrafficGenerator : private cluster::ClusterView
{
  public:
    struct Params
    {
        /** Aggregate request arrival rate, requests per second. */
        double arrivalRps = 1e6;
        /** Interarrival process shaping that rate (net/arrival.hh). */
        ArrivalSpec arrival{};
        /** First server node (requests' destination base). Servers
         *  occupy node ids [targetNode, targetNode + numServers). */
        proto::NodeId targetNode = 0;
        /** Server nodes behind the router (>= 1). */
        std::uint32_t numServers = 1;
        /** Client-side turnaround before replenishing a reply slot. */
        sim::Tick clientTurnaround = sim::nanoseconds(100.0);
        /** Request timeout for failure detection; 0 disables the
         *  timeout sweep entirely (single-node bit-identical path). */
        sim::Tick requestTimeout = 0;
        /** Timeout-sweep period; 0 derives max(1, requestTimeout/4)
         *  so detection latency tracks the timeout scale. */
        sim::Tick sweepInterval = 0;
        /** Client recovery policy for timed-out requests (backoff,
         *  attempt budget, hedging). The defaults reproduce the legacy
         *  unlimited-immediate-redispatch behavior bit-identically. */
        fault::RetryPolicy retry{};
        /** Pre-draw arrivals in blocks covering this many ticks (0 =
         *  one draw per arrival; see ArrivalDriver::setBatchWindow).
         *  Parallel-domain runs set this to the lookahead so a whole
         *  window's arrivals are generated per refill. */
        sim::Tick arrivalBatchWindow = 0;
        /** Client-population model (src/conn/): logical clients and
         *  their connection scheduler. numClients == 0 (the default)
         *  keeps the legacy anonymous-arrival path bit-identically. */
        conn::ConnConfig connections{};
        /** Experiment seed. */
        std::uint64_t seed = 1;
    };

    /**
     * @param router  Cluster router addressing each request, or null
     *                for the single-target fast path. With a router,
     *                @p shards must be non-null.
     * @param health  Per-server health tracker fed by timeouts, or
     *                null (every server always considered up).
     * @param shards  Keyspace partition for shard-affinity routing.
     */
    TrafficGenerator(sim::EventDomain &sim, const Params &params,
                     const proto::MessagingDomain &domain,
                     app::RpcApplication &app, Fabric &fabric,
                     cluster::Router *router = nullptr,
                     cluster::HealthTracker *health = nullptr,
                     const cluster::ShardMap *shards = nullptr);

    /** Begin generating load. */
    void start();

    /** Stop generating new requests (in-flight ones complete). */
    void halt();

    /** Fabric sink for packets addressed to any emulated node. */
    void receivePacket(proto::Packet pkt);

    /**
     * Issue a server's nested RPCs (HandleResult.nested) as a chain
     * group: each request is routed and launched like a client arrival
     * (from a random emulated source node — latency-equivalent to
     * issuing from the serving node, since fabric latency is uniform),
     * and @p done fires once when every request in the group has
     * completed. Rerouted requests keep their group, so a chain
     * survives timeouts and node failover. The experiment layer wires
     * this as every RpcNode's nested issuer.
     */
    void issueNested(std::vector<std::vector<std::uint8_t>> requests,
                     std::function<void()> done);

    /** Nested RPCs issued on behalf of servers. */
    std::uint64_t nestedSent() const { return nestedSent_; }

    /** Chain groups whose every nested RPC completed. */
    std::uint64_t chainsCompleted() const { return chainsCompleted_; }

    /** Requests injected into the fabric. */
    std::uint64_t requestsSent() const { return requestsSent_; }

    /**
     * Requests generated per request class (indexed like the
     * application's requestClasses(); includes requests still deferred
     * by flow control). The class id is read off the wire bytes, so
     * this observes exactly what the server will account.
     */
    const std::vector<std::uint64_t> &
    requestsMadeByClass() const
    {
        return madeByClass_;
    }

    /** Replies fully received. */
    std::uint64_t repliesReceived() const { return repliesReceived_; }

    /** Replies that failed application-level verification. */
    std::uint64_t verificationFailures() const { return verifyFailures_; }

    /** Arrivals deferred because the source had no free slot. */
    std::uint64_t flowControlDeferrals() const { return deferrals_; }

    /** Requests that took the rendezvous (large-message) path. */
    std::uint64_t rendezvousRequests() const { return rendezvous_; }

    /** Requests currently in flight (slot held). */
    std::uint64_t inFlight() const { return inFlight_; }

    /** Requests that exceeded the timeout and were given up on. */
    std::uint64_t requestTimeouts() const { return timeouts_; }

    /** Requests re-dispatched after a timeout or a node mark-down. */
    std::uint64_t failoverReroutes() const { return reroutes_; }

    /** Replies/reads that arrived after their request timed out. */
    std::uint64_t staleReplies() const { return staleReplies_; }

    /** Timed-out requests re-dispatched under the retry policy (or
     *  the legacy unlimited-retry default). */
    std::uint64_t retries() const { return retries_; }

    /** Requests abandoned after exhausting the attempt budget. */
    std::uint64_t retryDrops() const { return retryDrops_; }

    /** Hedged duplicate sends issued. */
    std::uint64_t hedgesSent() const { return hedgesSent_; }

    /** Races a hedge won (its reply beat the primary's). */
    std::uint64_t hedgesWon() const { return hedgesWon_; }

    /** Replies from the losing side of a hedge race (accounted
     *  separately from staleReplies: they are expected). */
    std::uint64_t duplicateReplies() const { return duplicateReplies_; }

    // ----- connection management (src/conn/; inert when the config
    //       has no client population) -----

    /** The run's connection scheduler (null without a population). */
    const conn::ConnScheduler *
    connScheduler() const
    {
        return connSched_.get();
    }

    /** Requests the scheduler admitted without deferral. */
    std::uint64_t connAdmittedImmediate() const
    {
        return connAdmittedImmediate_;
    }

    /** Requests deferred because their client could not issue. */
    std::uint64_t connDeferred() const { return connDeferredTotal_; }

    /** Deferred requests since released by the scheduler. */
    std::uint64_t connFlushed() const { return connFlushed_; }

    /** Aggregate ticks released requests spent waiting for admission. */
    sim::Tick connDeferredWaitTicks() const { return connDeferredWait_; }

    /** Client-observed latency of immediately admitted requests. */
    const stats::LatencyRecorder &connActiveLatency() const
    {
        return connActiveLatency_;
    }

    /** Client-observed latency of requests that waited for their
     *  group's slice (includes the wait). */
    const stats::LatencyRecorder &connInactiveLatency() const
    {
        return connInactiveLatency_;
    }

    /** Per-group-position admitted counts (index = group). */
    const std::vector<std::uint64_t> &connPerGroupAdmitted() const
    {
        return connPerGroupAdmitted_;
    }

    /** Per-group-position deferred counts (index = group). */
    const std::vector<std::uint64_t> &connPerGroupDeferred() const
    {
        return connPerGroupDeferred_;
    }

    /** Per-group-position client-observed latency recorders. */
    const std::vector<stats::LatencyRecorder> &
    connPerGroupLatency() const
    {
        return connPerGroupLatency_;
    }

  private:
    // cluster::ClusterView — what routers may observe.
    std::uint32_t numServers() const override { return params_.numServers; }
    bool isUp(std::uint32_t server) const override;
    std::uint64_t outstanding(std::uint32_t server) const override
    {
        return perServerInFlight_[server];
    }

    /** Flat (client, server) pair index for the slot tables. */
    std::size_t
    pairIndex(proto::NodeId client, std::uint32_t server) const
    {
        return static_cast<std::size_t>(client) * params_.numServers +
               server;
    }

    /** Flat (server, client, slot) key for outstanding requests. */
    std::uint64_t
    reqKey(std::uint32_t server, proto::NodeId client,
           std::uint32_t slot) const
    {
        return (static_cast<std::uint64_t>(server) * domain_.numNodes +
                client) *
                   domain_.slotsPerNode +
               slot;
    }

    void onArrival();
    /** Uniformly random remote source node (skips the server block). */
    proto::NodeId pickClientNode();
    /** Deterministic emulated source node of a logical client. */
    proto::NodeId connNodeFor(std::uint32_t client) const;
    /** Admission gate: dispatch now if the scheduler allows, else
     *  queue on the client until the scheduler releases it. */
    void connSubmit(std::uint32_t client,
                    std::vector<std::uint8_t> request,
                    std::uint64_t chain, std::uint32_t attempt);
    /** The scheduler's AdmitFn: release up to @p limit queued
     *  requests of @p client (0 = all); returns the count released. */
    std::uint32_t connFlush(std::uint32_t client, std::uint32_t limit);
    /** Completion-side accounting + scheduler callbacks for a
     *  finishing conn-tagged request (no-op on legacy tags). */
    void connOnCompleted(const ConnTag &tag, std::uint32_t req_bytes);
    /** The exactly-once drain signal for any conn-tagged request
     *  leaving the outstanding set (no-op on legacy tags). */
    void connOnRetired(const ConnTag &tag);
    /** Bump the per-class generation counter off the wire bytes. */
    void countRequestClass(const std::vector<std::uint8_t> &request);
    /** Route @p request and launch it (or queue it on the chosen
     *  server's slot pool). @p chain ties it to a chain group
     *  (0 = ordinary client request); @p attempt is 1-based. */
    void dispatchRequest(proto::NodeId src,
                         std::vector<std::uint8_t> request,
                         std::uint64_t chain, std::uint32_t attempt = 1,
                         ConnTag conn = ConnTag());
    std::uint32_t routeRequest(proto::NodeId src,
                               const std::vector<std::uint8_t> &request);
    void launchRequest(proto::NodeId src, std::uint32_t server,
                       std::uint32_t slot,
                       std::vector<std::uint8_t> request,
                       std::uint64_t chain, std::uint32_t attempt = 1,
                       bool is_hedge = false, ConnTag conn = ConnTag());
    /** Send a hedged duplicate of the outstanding request at
     *  @p primary_key (no-op if no slot is free at the hedge's
     *  routed target — the next sweep retries). */
    void hedgeRequest(std::uint64_t primary_key);
    void onReplyComplete(std::uint32_t server, proto::NodeId dst,
                         std::uint32_t slot,
                         std::vector<std::uint8_t> reply);
    /** A chain member finished; fire the group's done at zero. */
    void onChainMemberDone(std::uint64_t chain);
    void onReplenish(const proto::Packet &pkt);
    /** Hand a freed request slot to the pair's queue (or the free
     *  list): the common tail of onReplenish and held-credit release. */
    void recycleSlot(proto::NodeId client, std::uint32_t server,
                     std::uint32_t slot);
    /** Free the slot whose credit was parked while its request was
     *  still outstanding at @p key (no-op if none was). */
    void releaseHeldCredit(std::uint64_t key);
    /** Periodic timeout scan (scheduled only when requestTimeout > 0). */
    void sweepTimeouts();
    /** Reroute everything queued toward @p server (just marked down). */
    void drainPending(std::uint32_t server);

    sim::EventDomain &sim_;
    Params params_;
    proto::MessagingDomain domain_;
    app::RpcApplication &app_;
    Fabric &fabric_;
    cluster::Router *router_;
    cluster::HealthTracker *health_;
    const cluster::ShardMap *shards_;
    ArrivalDriver arrivals_;
    sim::Rng pickRng_;
    sim::Rng clientRng_;
    /** Router-private stream: routing draws never perturb the client
     *  or arrival streams. */
    sim::Rng routerRng_;
    /** Backoff-jitter stream; drawn only when retry.jitter > 0, so
     *  jitterless runs stay bit-identical. */
    sim::Rng retryRng_;

    /** Free request-slot numbers per (client, server) pair. */
    std::vector<std::vector<std::uint32_t>> freeSlots_;
    /** A request waiting for a slot; chain 0 = ordinary request. */
    struct PendingRequest
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t chain = 0;
        std::uint32_t attempt = 1;
        ConnTag conn{};
    };
    /** Requests waiting for a slot, per (client, server) pair. */
    std::vector<std::deque<PendingRequest>> pending_;

    /** An in-flight request: bytes for verification/rendezvous, plus
     *  the server and send time for timeout-based failover. The chain
     *  id (0 = none) survives reroutes, so a chain group's completion
     *  count stays exact across failover. */
    /** Sibling sentinel: this request is not half of a hedge pair. */
    static constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

    struct Outstanding
    {
        std::vector<std::uint8_t> bytes;
        std::uint32_t server = 0;
        sim::Tick sentAt = 0;
        std::uint64_t chain = 0;
        /** 1-based send attempt (retry-policy budget). */
        std::uint32_t attempt = 1;
        /** This request already has (or had) a hedge — never hedge
         *  the same request twice. */
        bool hedged = false;
        /** This entry IS the hedged duplicate. */
        bool isHedge = false;
        /** Key of the other half of the hedge pair (kNoKey = none);
         *  cleared on the survivor when either side retires. */
        std::uint64_t sibling = kNoKey;
        /** Connection identity (legacy default on anonymous paths). */
        ConnTag conn{};
    };
    /** Outstanding requests keyed by reqKey(server, client, slot). */
    std::unordered_map<std::uint64_t, Outstanding> outstandingRequests_;

    /** Slot credits whose replenish arrived while the request was
     *  still outstanding on that very slot — possible only when the
     *  reply was lost (the fabric's per-flow FIFO otherwise delivers
     *  the reply first). Reusing the slot then would alias two
     *  requests under one reply key, so the credit is parked here and
     *  released when the outstanding request resolves (reply, timeout,
     *  or hedge retirement). */
    std::unordered_set<std::uint64_t> heldCredits_;

    /** Reply reassembly, keyed like outstandingRequests_. */
    struct ReplyAssembly
    {
        std::uint32_t arrived = 0;
        std::uint32_t total = 0;
        std::vector<std::uint8_t> bytes;
    };
    std::unordered_map<std::uint64_t, ReplyAssembly> replies_;

    /** In-flight requests per server (the router's load signal). */
    std::vector<std::uint64_t> perServerInFlight_;

    /** An open chain group: members still in flight + completion. */
    struct ChainGroup
    {
        std::uint32_t remaining = 0;
        std::function<void()> done;
    };
    /** Open chain groups keyed by chain id (allocated from 1 up). */
    std::unordered_map<std::uint64_t, ChainGroup> chains_;
    std::uint64_t nextChainId_ = 1;

    std::uint64_t requestsSent_ = 0;
    std::vector<std::uint64_t> madeByClass_;
    std::uint64_t repliesReceived_ = 0;
    std::uint64_t verifyFailures_ = 0;
    std::uint64_t deferrals_ = 0;
    std::uint64_t inFlight_ = 0;
    std::uint64_t rendezvous_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t reroutes_ = 0;
    std::uint64_t staleReplies_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t retryDrops_ = 0;
    std::uint64_t hedgesSent_ = 0;
    std::uint64_t hedgesWon_ = 0;
    std::uint64_t duplicateReplies_ = 0;
    /** Keys of retired hedge losers whose replies are still due: when
     *  one arrives it is a duplicate (expected), not a stale (lost). */
    std::unordered_set<std::uint64_t> expectedDuplicates_;
    std::uint64_t nestedSent_ = 0;
    std::uint64_t chainsCompleted_ = 0;
    bool halted_ = false;

    // ----- connection management (all empty/zero when inactive) -----

    /** The run's connection scheduler (null = no client population). */
    conn::ConnSchedulerPtr connSched_;
    /** Client-identity stream; drawn only when the population model
     *  is active, so legacy runs stay bit-identical. */
    sim::Rng connRng_;
    /** A request waiting for its client's admission. */
    struct ConnDeferred
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t chain = 0;
        std::uint32_t attempt = 1;
        sim::Tick genAt = 0;
    };
    /** Deferred requests, per logical client. */
    std::vector<std::deque<ConnDeferred>> connQueue_;
    std::uint64_t connAdmittedImmediate_ = 0;
    std::uint64_t connDeferredTotal_ = 0;
    std::uint64_t connFlushed_ = 0;
    sim::Tick connDeferredWait_ = 0;
    stats::LatencyRecorder connActiveLatency_;
    stats::LatencyRecorder connInactiveLatency_;
    std::vector<std::uint64_t> connPerGroupAdmitted_;
    std::vector<std::uint64_t> connPerGroupDeferred_;
    std::vector<stats::LatencyRecorder> connPerGroupLatency_;

    sim::MemberEvent<TrafficGenerator, &TrafficGenerator::sweepTimeouts>
        sweepEvent_;
};

} // namespace rpcvalet::net

#endif // RPCVALET_NET_TRAFFIC_GEN_HH
