/**
 * @file
 * Intrusive simulation events (gem5-style).
 *
 * An Event is a reusable, allocation-free unit of scheduled work: the
 * queue linkage (doubly-linked hook) and timestamp live inside the
 * object, so scheduling touches no allocator and descheduling is O(1).
 * Components embed Events as members and implement process(); a fired
 * event may reschedule itself, which is how recurring activities
 * (arrival generators, pollers) run forever without per-occurrence
 * allocations.
 *
 * Three building blocks:
 *  - Event        abstract base: process() + schedule state
 *  - MemberEvent  Event that calls a member function on its owner
 *  - EventPool    slab-backed free list of payload-carrying events for
 *                 components with several in flight at once (packet
 *                 deliveries, CQE hops)
 *
 * One-shot callers with small captures can instead use the
 * Simulator::schedule(Tick, Callback) shim, which draws pooled events
 * internally (see sim/simulator.hh for how to choose).
 *
 * Threading model: an Event and the EventPool it came from belong to
 * the simulator wheel they schedule on, and inherit that wheel's
 * single-owner rule (sim/simulator.hh) — pools are not locked, and a
 * payload event must be released back to the pool that issued it, on
 * the owning thread. Cross-domain traffic never moves Event objects
 * between wheels; the fabric copies the payload into the destination
 * domain's own pool at the window barrier (net/fabric.hh).
 */

#ifndef RPCVALET_SIM_EVENT_HH
#define RPCVALET_SIM_EVENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace rpcvalet::sim {

class Simulator;

/**
 * Intrusive doubly-linked hook. Queue lists are circular with sentinel
 * nodes, so linking and unlinking never touch a head/tail pointer.
 */
struct EventLink
{
    EventLink *next = nullptr;
    EventLink *prev = nullptr;
};

/**
 * A schedulable unit of work. Derive, implement process(), embed as a
 * member of the owning component, and pass to Simulator::schedule().
 *
 * Lifetime: an Event must not outlive its Simulator while scheduled;
 * the destructor deschedules automatically (so components that die
 * before the simulator — the normal stack order — are always safe).
 * An Event belongs to at most one Simulator at a time.
 */
class Event : public EventLink
{
  public:
    Event() = default;
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    virtual ~Event();

    /** True while the event sits in a simulator's queue. */
    bool scheduled() const { return (simWhere_ & kWhereMask) != 0; }

    /** Scheduled firing time (valid while scheduled()). */
    Tick when() const { return when_; }

    /** The event's work; runs with Simulator::now() == when(). */
    virtual void process() = 0;

    /** Short label for panic messages and debugging. */
    virtual const char *description() const { return "event"; }

  protected:
    /**
     * The simulator that last scheduled this event (set by schedule,
     * kept across firing) — lets subclasses reach their queue from
     * process() without storing a second back-pointer.
     */
    Simulator *owningSim() const
    {
        return reinterpret_cast<Simulator *>(simWhere_ & ~kWhereMask);
    }

  private:
    friend class Simulator;

    /**
     * Which queue region holds the event (see simulator.hh), packed
     * into the owning simulator pointer's alignment bits: events are
     * the unit of hot-path memory traffic, so every word counts.
     */
    enum class Where : std::uintptr_t
    {
        None = 0,
        Open = 1,
        Bucket = 2,
        Overflow = 3,
    };

    static constexpr std::uintptr_t kWhereMask = 3;

    Where where() const
    {
        return static_cast<Where>(simWhere_ & kWhereMask);
    }

    void
    setState(Simulator *sim, Where where)
    {
        simWhere_ = reinterpret_cast<std::uintptr_t>(sim) |
                    static_cast<std::uintptr_t>(where);
    }

    void
    setWhere(Where where)
    {
        simWhere_ = (simWhere_ & ~kWhereMask) |
                    static_cast<std::uintptr_t>(where);
    }

    /** Owning simulator (aligned pointer) | Where (low two bits). */
    std::uintptr_t simWhere_ = 0;
    Tick when_ = 0;
};

/**
 * Event that invokes a member function on its owner — the idiomatic
 * form for a component's recurring or singleton events:
 *
 *   class ArrivalDriver {
 *       void fire();
 *       MemberEvent<ArrivalDriver, &ArrivalDriver::fire> event_{*this};
 *   };
 */
template <typename T, void (T::*Fn)()>
class MemberEvent : public Event
{
  public:
    explicit MemberEvent(T &obj, const char *what = "member-event")
        : obj_(obj), what_(what)
    {}

    void process() override { (obj_.*Fn)(); }
    const char *description() const override { return what_; }

  private:
    T &obj_;
    const char *what_;
};

/**
 * Slab-backed free list of reusable events for components that keep
 * several payload-carrying events in flight (e.g. one per packet in a
 * pipeline). E derives Event and is default-constructible; acquire()
 * recycles a released instance or carves one from the current slab
 * chunk (chunked arrays: one allocation per kChunk events, addresses
 * stable for the pool's lifetime), release() returns one for reuse.
 * Only idle (unscheduled) events may be released; the free list
 * borrows the event's own link hook, so pooling adds no per-event
 * storage.
 */
template <typename E>
class EventPool
{
  public:
    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    E *
    acquire()
    {
        if (free_ != nullptr) {
            E *e = free_;
            free_ = e->EventLink::next == nullptr
                        ? nullptr
                        : static_cast<E *>(e->EventLink::next);
            e->EventLink::next = nullptr;
            return e;
        }
        if (used_ == kChunk) {
            chunks_.push_back(std::make_unique<E[]>(kChunk));
            used_ = 0;
        }
        ++size_;
        return &chunks_.back()[used_++];
    }

    void
    release(E *e)
    {
        // A scheduled event is still linked into the wheel through
        // the very hook the free list borrows; pooling it would hand
        // a queued event back out and corrupt the queue silently.
        RV_ASSERT(!e->scheduled(), "released event is still scheduled");
        e->EventLink::next = free_;
        free_ = e;
    }

    /** Total events ever created (pool growth diagnostics). */
    std::size_t size() const { return size_; }

  private:
    static constexpr std::size_t kChunk = 256;

    std::vector<std::unique_ptr<E[]>> chunks_;
    std::size_t used_ = kChunk;
    std::size_t size_ = 0;
    E *free_ = nullptr;
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_EVENT_HH
