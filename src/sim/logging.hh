/**
 * @file
 * Error-reporting helpers, in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something is suspicious but the simulation can continue.
 */

#ifndef RPCVALET_SIM_LOGGING_HH
#define RPCVALET_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rpcvalet::sim {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report a user/configuration error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report a recoverable oddity to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

} // namespace rpcvalet::sim

/**
 * Always-on invariant check (independent of NDEBUG): the simulator's
 * correctness argument leans on these, so they stay enabled in release
 * builds. Condition failures are simulator bugs, hence panic().
 */
#define RV_ASSERT(cond, msg)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rpcvalet::sim::panic(                                        \
                ::rpcvalet::sim::strfmt("%s:%d: assertion '%s' failed: %s",\
                                        __FILE__, __LINE__, #cond, msg));  \
        }                                                                  \
    } while (0)

#endif // RPCVALET_SIM_LOGGING_HH
