/**
 * @file
 * Error-reporting helpers, in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user supplied an impossible configuration; exits(1).
 * warn()   — something is suspicious but the simulation can continue.
 */

#ifndef RPCVALET_SIM_LOGGING_HH
#define RPCVALET_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rpcvalet::sim {

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report a user/configuration error and exit(1). When ErrorContext
 * frames are active on this thread, their descriptions prefix the
 * message (outermost first), so an error raised deep inside a registry
 * factory still names the config-file location that caused it.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * RAII frame naming where the current work came from, prefixed onto
 * any fatal() raised while the frame is live. The scenario parser
 * pushes "file.scn:12 (policy = jbsq:dd=2)" before handing the value
 * to a registry, so the registry's diagnostic — which only knows the
 * bad spec — gains the file:line and offending token config-file users
 * need. Frames nest (outermost printed first) and are thread-local, so
 * threaded sweeps cannot interleave contexts.
 */
class ErrorContext
{
  public:
    explicit ErrorContext(std::string description);
    ~ErrorContext();

    ErrorContext(const ErrorContext &) = delete;
    ErrorContext &operator=(const ErrorContext &) = delete;

    /** Active frames joined with ": " (empty when none are live). */
    static std::string current();
};

/** Report a recoverable oddity to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

} // namespace rpcvalet::sim

/**
 * Always-on invariant check (independent of NDEBUG): the simulator's
 * correctness argument leans on these, so they stay enabled in release
 * builds. Condition failures are simulator bugs, hence panic().
 */
#define RV_ASSERT(cond, msg)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rpcvalet::sim::panic(                                        \
                ::rpcvalet::sim::strfmt("%s:%d: assertion '%s' failed: %s",\
                                        __FILE__, __LINE__, #cond, msg));  \
        }                                                                  \
    } while (0)

#endif // RPCVALET_SIM_LOGGING_HH
