#include "sim/build_info.hh"

#include <ctime>

// Compile definitions for this translation unit only (see
// src/CMakeLists.txt). The fallbacks keep non-CMake builds compiling.
#ifndef RPCVALET_BUILD_TYPE
#define RPCVALET_BUILD_TYPE "unknown"
#endif
#ifndef RPCVALET_GIT_SHA
#define RPCVALET_GIT_SHA "unknown"
#endif

namespace rpcvalet::sim {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info{RPCVALET_BUILD_TYPE, RPCVALET_GIT_SHA};
    return info;
}

std::string
iso8601UtcNow()
{
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

} // namespace rpcvalet::sim
