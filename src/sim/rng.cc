#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace rpcvalet::sim {

namespace {

/** splitmix64 step, used only for seeding. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
{
    // Mix the stream id in so (seed, 0) and (seed, 1) diverge fully.
    std::uint64_t x = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567ULL);
    for (auto &word : s_)
        word = splitmix64(x);
    // All-zero state is invalid for xoshiro; splitmix64 makes this
    // astronomically unlikely, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x2545f4914f6cdd1dULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 top bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformPositive()
{
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return u;
}

double
Rng::uniformRange(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    RV_ASSERT(lo <= hi, "uniformInt bounds inverted");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0)
        return next(); // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit && limit != 0);
    return lo + v % span;
}

double
Rng::exponential(double mean)
{
    RV_ASSERT(mean > 0.0, "exponential mean must be positive");
    return -mean * std::log(uniformPositive());
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spareNormal_;
    }
    const double u1 = uniformPositive();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double sigma)
{
    return mean + sigma * normal();
}

double
Rng::gamma(double shape_k, double scale_theta)
{
    RV_ASSERT(shape_k > 0.0 && scale_theta > 0.0,
              "gamma parameters must be positive");
    // Marsaglia & Tsang (2000). For k < 1 use the boost trick:
    // Gamma(k) = Gamma(k + 1) * U^(1/k).
    if (shape_k < 1.0) {
        const double u = uniformPositive();
        return gamma(shape_k + 1.0, scale_theta) *
               std::pow(u, 1.0 / shape_k);
    }
    const double d = shape_k - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
        double x;
        double v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniformPositive();
        if (u < 1.0 - 0.0331 * x * x * x * x)
            return d * v * scale_theta;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
            return d * v * scale_theta;
    }
}

} // namespace rpcvalet::sim
