#include "sim/distributions.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace rpcvalet::sim {

// ---------------------------------------------------------------- Fixed

FixedDist::FixedDist(double value_ns) : value_(value_ns)
{
    RV_ASSERT(value_ns >= 0.0, "fixed value must be non-negative");
}

double
FixedDist::sample(Rng &rng) const
{
    (void)rng;
    return value_;
}

std::string
FixedDist::name() const
{
    return strfmt("fixed(%.1f)", value_);
}

DistributionPtr
FixedDist::clone() const
{
    return std::make_unique<FixedDist>(*this);
}

// -------------------------------------------------------------- Uniform

UniformDist::UniformDist(double lo_ns, double hi_ns) : lo_(lo_ns), hi_(hi_ns)
{
    RV_ASSERT(lo_ns >= 0.0 && hi_ns >= lo_ns, "bad uniform bounds");
}

double
UniformDist::sample(Rng &rng) const
{
    return rng.uniformRange(lo_, hi_);
}

std::string
UniformDist::name() const
{
    return strfmt("uniform(%.1f,%.1f)", lo_, hi_);
}

DistributionPtr
UniformDist::clone() const
{
    return std::make_unique<UniformDist>(*this);
}

// ---------------------------------------------------------- Exponential

ExponentialDist::ExponentialDist(double mean_ns) : mean_(mean_ns)
{
    RV_ASSERT(mean_ns > 0.0, "exponential mean must be positive");
}

double
ExponentialDist::sample(Rng &rng) const
{
    return rng.exponential(mean_);
}

std::string
ExponentialDist::name() const
{
    return strfmt("exponential(%.1f)", mean_);
}

DistributionPtr
ExponentialDist::clone() const
{
    return std::make_unique<ExponentialDist>(*this);
}

// ------------------------------------------------------------------ GEV

GevDist::GevDist(double location, double scale, double shape)
    : location_(location), scale_(scale), shape_(shape)
{
    RV_ASSERT(scale > 0.0, "GEV scale must be positive");
    RV_ASSERT(shape < 1.0, "GEV shape must be < 1 for a finite mean");
}

double
GevDist::sample(Rng &rng) const
{
    const double u = rng.uniformPositive();
    if (std::abs(shape_) < 1e-12) {
        // Gumbel limit.
        return location_ - scale_ * std::log(-std::log(u));
    }
    const double t = std::pow(-std::log(u), -shape_);
    double x = location_ + scale_ * (t - 1.0) / shape_;
    // Negative-shape GEVs have bounded support; still guard the whole
    // family against pathological negative service times.
    return std::max(x, 0.0);
}

double
GevDist::mean() const
{
    if (std::abs(shape_) < 1e-12) {
        constexpr double euler_gamma = 0.5772156649015329;
        return location_ + scale_ * euler_gamma;
    }
    const double g1 = std::tgamma(1.0 - shape_);
    return location_ + scale_ * (g1 - 1.0) / shape_;
}

std::string
GevDist::name() const
{
    return strfmt("gev(%.1f,%.1f,%.2f)", location_, scale_, shape_);
}

DistributionPtr
GevDist::clone() const
{
    return std::make_unique<GevDist>(*this);
}

// ------------------------------------------------------------ LogNormal

LogNormalDist::LogNormalDist(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    RV_ASSERT(sigma >= 0.0, "log-normal sigma must be non-negative");
}

LogNormalDist
LogNormalDist::fromMeanSigma(double mean_ns, double sigma)
{
    RV_ASSERT(mean_ns > 0.0, "log-normal mean must be positive");
    // mean = exp(mu + sigma^2 / 2)  =>  mu = ln(mean) - sigma^2 / 2.
    const double mu = std::log(mean_ns) - 0.5 * sigma * sigma;
    return LogNormalDist(mu, sigma);
}

double
LogNormalDist::sample(Rng &rng) const
{
    return std::exp(rng.normal(mu_, sigma_));
}

double
LogNormalDist::mean() const
{
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string
LogNormalDist::name() const
{
    return strfmt("lognormal(mu=%.3f,sigma=%.3f)", mu_, sigma_);
}

DistributionPtr
LogNormalDist::clone() const
{
    return std::make_unique<LogNormalDist>(*this);
}

// ---------------------------------------------------------------- Gamma

GammaDist::GammaDist(double shape_k, double scale_theta)
    : shapeK_(shape_k), scaleTheta_(scale_theta)
{
    RV_ASSERT(shape_k > 0.0 && scale_theta > 0.0, "bad gamma parameters");
}

double
GammaDist::sample(Rng &rng) const
{
    return rng.gamma(shapeK_, scaleTheta_);
}

std::string
GammaDist::name() const
{
    return strfmt("gamma(k=%.2f,theta=%.2f)", shapeK_, scaleTheta_);
}

DistributionPtr
GammaDist::clone() const
{
    return std::make_unique<GammaDist>(*this);
}

// -------------------------------------------------------------- Shifted

ShiftedDist::ShiftedDist(double offset_ns, DistributionPtr inner)
    : offset_(offset_ns), inner_(std::move(inner))
{
    RV_ASSERT(inner_ != nullptr, "shifted inner distribution missing");
}

double
ShiftedDist::sample(Rng &rng) const
{
    return offset_ + inner_->sample(rng);
}

std::string
ShiftedDist::name() const
{
    return strfmt("%.1f+%s", offset_, inner_->name().c_str());
}

DistributionPtr
ShiftedDist::clone() const
{
    return std::make_unique<ShiftedDist>(offset_, inner_->clone());
}

// -------------------------------------------------------------- Clamped

ClampedDist::ClampedDist(double lo_ns, double hi_ns, DistributionPtr inner)
    : lo_(lo_ns), hi_(hi_ns), inner_(std::move(inner))
{
    RV_ASSERT(inner_ != nullptr, "clamped inner distribution missing");
    RV_ASSERT(lo_ns <= hi_ns, "clamp bounds inverted");
    // Deterministic numeric estimate of the clamped mean.
    Rng rng(0xC1A3u);
    constexpr int estimate_samples = 200000;
    double sum = 0.0;
    for (int i = 0; i < estimate_samples; ++i)
        sum += std::clamp(inner_->sample(rng), lo_, hi_);
    estimatedMean_ = sum / estimate_samples;
}

double
ClampedDist::sample(Rng &rng) const
{
    return std::clamp(inner_->sample(rng), lo_, hi_);
}

std::string
ClampedDist::name() const
{
    return strfmt("clamp[%.1f,%.1f](%s)", lo_, hi_, inner_->name().c_str());
}

DistributionPtr
ClampedDist::clone() const
{
    return std::make_unique<ClampedDist>(lo_, hi_, inner_->clone());
}

// -------------------------------------------------------------- Mixture

MixtureDist::MixtureDist(std::vector<Component> components)
    : components_(std::move(components))
{
    RV_ASSERT(!components_.empty(), "mixture needs at least one component");
    double total = 0.0;
    for (const auto &c : components_) {
        RV_ASSERT(c.weight > 0.0, "mixture weights must be positive");
        RV_ASSERT(c.dist != nullptr, "mixture component missing");
        total += c.weight;
    }
    double acc = 0.0;
    for (const auto &c : components_) {
        acc += c.weight / total;
        cumulative_.push_back(acc);
    }
    cumulative_.back() = 1.0;
}

double
MixtureDist::sample(Rng &rng) const
{
    const double u = rng.uniform();
    for (size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i])
            return components_[i].dist->sample(rng);
    }
    return components_.back().dist->sample(rng);
}

double
MixtureDist::mean() const
{
    double total_weight = 0.0;
    for (const auto &c : components_)
        total_weight += c.weight;
    double m = 0.0;
    for (const auto &c : components_)
        m += c.weight / total_weight * c.dist->mean();
    return m;
}

std::string
MixtureDist::name() const
{
    std::string out = "mixture(";
    for (size_t i = 0; i < components_.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += strfmt("%.3f*%s", components_[i].weight,
                      components_[i].dist->name().c_str());
    }
    return out + ")";
}

DistributionPtr
MixtureDist::clone() const
{
    std::vector<Component> copy;
    copy.reserve(components_.size());
    for (const auto &c : components_)
        copy.push_back({c.weight, c.dist->clone()});
    return std::make_unique<MixtureDist>(std::move(copy));
}

// ------------------------------------------------------------ Empirical

EmpiricalDist::EmpiricalDist(std::vector<double> values_ns)
    : values_(std::move(values_ns))
{
    RV_ASSERT(!values_.empty(), "empirical distribution needs samples");
    double sum = 0.0;
    for (double v : values_) {
        RV_ASSERT(v >= 0.0, "empirical samples must be non-negative");
        sum += v;
    }
    mean_ = sum / static_cast<double>(values_.size());
}

double
EmpiricalDist::sample(Rng &rng) const
{
    return values_[rng.uniformInt(0, values_.size() - 1)];
}

std::string
EmpiricalDist::name() const
{
    return strfmt("empirical(n=%zu)", values_.size());
}

DistributionPtr
EmpiricalDist::clone() const
{
    return std::make_unique<EmpiricalDist>(*this);
}

// ------------------------------------------------------ §5 synthetics

std::string
syntheticKindName(SyntheticKind kind)
{
    switch (kind) {
      case SyntheticKind::Fixed: return "fixed";
      case SyntheticKind::Uniform: return "uniform";
      case SyntheticKind::Exponential: return "exponential";
      case SyntheticKind::Gev: return "gev";
    }
    panic("unknown SyntheticKind");
}

DistributionPtr
makeSynthetic(SyntheticKind kind)
{
    // §5: 300 ns base latency + extra 300 ns on average from the family.
    constexpr double base_ns = 300.0;
    constexpr double extra_mean_ns = 300.0;
    switch (kind) {
      case SyntheticKind::Fixed:
        return std::make_unique<ShiftedDist>(
            base_ns, std::make_unique<FixedDist>(extra_mean_ns));
      case SyntheticKind::Uniform:
        return std::make_unique<ShiftedDist>(
            base_ns,
            std::make_unique<UniformDist>(0.0, 2.0 * extra_mean_ns));
      case SyntheticKind::Exponential:
        return std::make_unique<ShiftedDist>(
            base_ns, std::make_unique<ExponentialDist>(extra_mean_ns));
      case SyntheticKind::Gev: {
        // GEV(363, 100, 0.65) in 2 GHz cycles; ns = cycles / 2. The
        // whole synthetic profile (base + extra) is the GEV shifted by
        // the base; its mean is ~600 cycles = 300 ns.
        auto gev_cycles = std::make_unique<GevDist>(363.0 / 2.0,
                                                    100.0 / 2.0, 0.65);
        return std::make_unique<ShiftedDist>(base_ns, std::move(gev_cycles));
      }
    }
    panic("unknown SyntheticKind");
}

std::vector<SyntheticKind>
allSyntheticKinds()
{
    return {SyntheticKind::Fixed, SyntheticKind::Uniform,
            SyntheticKind::Exponential, SyntheticKind::Gev};
}

} // namespace rpcvalet::sim
