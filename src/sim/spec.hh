/**
 * @file
 * Generic "name:key=value,key=value" component specifications.
 *
 * A Spec names a registered component plus its parameters, parsed from
 * a compact string form:
 *
 *   "poisson"                          no parameters
 *   "pow2:d=3"                         one integer parameter
 *   "stale-jsq:staleness=50ns"         durations accept ns/us/ms
 *   "mmpp2:burst=0.1,ratio=10"         multiple ','-separated pairs
 *
 * Specs round-trip through toString() (keys print in sorted order) and
 * carry a `what` label ("policy", "arrival", ...) so every diagnostic
 * names the subsystem the bad spec belongs to. The dispatch-policy
 * layer (ni::PolicySpec) and the arrival-process layer
 * (net::ArrivalSpec) both derive from this one parser, so the two
 * registries accept the same spec grammar everywhere — configs, bench
 * flags, and tests.
 */

#ifndef RPCVALET_SIM_SPEC_HH
#define RPCVALET_SIM_SPEC_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>

#include "sim/types.hh"

namespace rpcvalet::sim {

/** A component selection: registry name plus key=value parameters. */
struct Spec
{
    /**
     * Subsystem label used in error messages ("policy", "arrival");
     * not part of the spec's identity (ignored by comparisons).
     */
    std::string what = "spec";
    /** Registry key (e.g. "greedy", "mmpp2"). */
    std::string name;
    /** Parameters; sorted keys make toString() deterministic. */
    std::map<std::string, std::string> params;

    /**
     * Parse "name" or "name:k=v,k=v" with @p what as the diagnostic
     * label. fatal() on an empty name, an empty key, a missing '=', a
     * duplicate key, or an empty parameter segment (trailing ':' or
     * ',').
     */
    static Spec parse(const std::string &text, const std::string &what);

    /** Canonical string form; parse(toString()) round-trips. */
    std::string toString() const;

    bool has(const std::string &key) const;

    /** Unsigned-integer parameter, @p fallback when absent. */
    std::uint64_t uintParam(const std::string &key,
                            std::uint64_t fallback) const;

    /** Floating-point parameter, @p fallback when absent. */
    double doubleParam(const std::string &key, double fallback) const;

    /**
     * Duration parameter, @p fallback when absent. Accepts a bare
     * number (nanoseconds) or an explicit "ns"/"us"/"ms" suffix.
     */
    Tick tickParam(const std::string &key, Tick fallback) const;

    /**
     * fatal() when a parameter key is not in @p allowed — component
     * factories call this so "pow2:dd=3" dies loudly instead of
     * silently defaulting.
     */
    void expectKeys(std::initializer_list<const char *> allowed) const;

    /** Identity is (name, params); the `what` label is ignored. */
    bool operator==(const Spec &other) const;
    bool operator!=(const Spec &other) const;
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_SPEC_HH
