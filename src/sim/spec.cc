#include "sim/spec.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace rpcvalet::sim {

Spec
Spec::parse(const std::string &text, const std::string &what)
{
    Spec spec;
    spec.what = what;
    const std::size_t colon = text.find(':');
    spec.name = text.substr(0, colon);
    if (spec.name.empty())
        fatal(what + " spec '" + text + "' has an empty name");
    if (colon == std::string::npos)
        return spec;

    const std::string param_text = text.substr(colon + 1);
    // getline never yields the empty segment after a trailing ':' or
    // ','; reject those here so "greedy:" and "pow2:d=3," die loudly
    // like every other malformed spec.
    if (param_text.empty() || param_text.back() == ',') {
        fatal(what + " spec '" + text +
              "': parameter '' is not of the form key=value");
    }
    std::stringstream rest(param_text);
    std::string pair;
    while (std::getline(rest, pair, ',')) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
            fatal(what + " spec '" + text + "': parameter '" + pair +
                  "' is not of the form key=value");
        }
        const std::string key = pair.substr(0, eq);
        if (spec.params.count(key) > 0) {
            fatal(what + " spec '" + text + "': duplicate key '" + key +
                  "'");
        }
        spec.params.emplace(key, pair.substr(eq + 1));
    }
    return spec;
}

std::string
Spec::toString() const
{
    std::string out = name;
    char sep = ':';
    for (const auto &[key, value] : params) {
        out += sep;
        out += key;
        out += '=';
        out += value;
        sep = ',';
    }
    return out;
}

bool
Spec::has(const std::string &key) const
{
    return params.count(key) > 0;
}

namespace {

/** Parse a full string as a number; fatal() on trailing junk. */
double
parseNumber(const Spec &spec, const std::string &key,
            const std::string &value, const char **suffix_out = nullptr)
{
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || errno != 0) {
        fatal(spec.what + " '" + spec.toString() + "': parameter '" +
              key + "=" + value + "' is not a number");
    }
    if (suffix_out != nullptr)
        *suffix_out = end;
    else if (*end != '\0')
        fatal(spec.what + " '" + spec.toString() + "': parameter '" +
              key + "=" + value + "' has trailing characters");
    return parsed;
}

} // namespace

std::uint64_t
Spec::uintParam(const std::string &key, std::uint64_t fallback) const
{
    const auto it = params.find(key);
    if (it == params.end())
        return fallback;
    const double parsed = parseNumber(*this, key, it->second);
    // Range-check before the cast: converting a non-finite or
    // unrepresentable double to uint64_t is undefined behavior.
    if (!std::isfinite(parsed) || parsed < 0.0 || parsed >= 0x1p64 ||
        parsed != std::floor(parsed)) {
        fatal(what + " '" + toString() + "': parameter '" + key + "=" +
              it->second + "' is not a non-negative integer");
    }
    return static_cast<std::uint64_t>(parsed);
}

double
Spec::doubleParam(const std::string &key, double fallback) const
{
    const auto it = params.find(key);
    if (it == params.end())
        return fallback;
    return parseNumber(*this, key, it->second);
}

Tick
Spec::tickParam(const std::string &key, Tick fallback) const
{
    const auto it = params.find(key);
    if (it == params.end())
        return fallback;
    const char *suffix = nullptr;
    const double parsed = parseNumber(*this, key, it->second, &suffix);
    const std::string unit(suffix);
    double ns = 0.0;
    if (unit.empty() || unit == "ns")
        ns = parsed;
    else if (unit == "us")
        ns = parsed * 1e3;
    else if (unit == "ms")
        ns = parsed * 1e6;
    else {
        fatal(what + " '" + toString() + "': duration '" + key + "=" +
              it->second + "' has unknown unit '" + unit +
              "' (use ns, us, or ms)");
    }
    // Range-check before sim::nanoseconds casts to Tick: a non-finite
    // or unrepresentable double is undefined behavior. 2^63 ps is
    // ~107 days of simulated time, far beyond any run.
    if (!std::isfinite(ns) || ns < 0.0 ||
        ns * static_cast<double>(ticksPerNs) >= 0x1p63) {
        fatal(what + " '" + toString() + "': duration '" + key + "=" +
              it->second + "' is out of range");
    }
    return nanoseconds(ns);
}

void
Spec::expectKeys(std::initializer_list<const char *> allowed) const
{
    for (const auto &[key, value] : params) {
        (void)value;
        bool known = false;
        for (const char *candidate : allowed)
            known = known || key == candidate;
        if (!known) {
            std::string list;
            for (const char *candidate : allowed) {
                if (!list.empty())
                    list += ", ";
                list += candidate;
            }
            fatal(what + " '" + toString() + "': unknown parameter '" +
                  key + "' (accepted: " +
                  (list.empty() ? "none" : list) + ")");
        }
    }
}

bool
Spec::operator==(const Spec &other) const
{
    return name == other.name && params == other.params;
}

bool
Spec::operator!=(const Spec &other) const
{
    return !(*this == other);
}

} // namespace rpcvalet::sim
