/**
 * @file
 * Build-provenance stamp for machine-readable result files.
 *
 * Every perf artifact the tree emits (bench --json reports, scenario
 * runner outputs) carries the build type, the git SHA the tree was
 * configured from, and an ISO-8601 run timestamp, so a BENCH_*.json
 * downloaded months later is traceable to the commit and configuration
 * that produced it. The build type and SHA are burned in at configure
 * time (src/CMakeLists.txt passes them as compile definitions to
 * build_info.cc only); a tree built outside git reports "unknown".
 */

#ifndef RPCVALET_SIM_BUILD_INFO_HH
#define RPCVALET_SIM_BUILD_INFO_HH

#include <string>

namespace rpcvalet::sim {

/** Configure-time build provenance. */
struct BuildInfo
{
    /** CMAKE_BUILD_TYPE of this binary ("Release", ...). */
    const char *buildType;
    /** Short git SHA of the configured tree, or "unknown". */
    const char *gitSha;
};

/** The provenance burned into this binary. */
const BuildInfo &buildInfo();

/** Current wall-clock time as ISO-8601 UTC ("2026-02-14T09:31:07Z"). */
std::string iso8601UtcNow();

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_BUILD_INFO_HH
