#include "sim/event.hh"

#include "sim/simulator.hh"

namespace rpcvalet::sim {

Event::~Event()
{
    // Auto-deschedule so a component destroyed before its simulator
    // (the normal stack order) never leaves a dangling queue entry.
    if (scheduled()) {
        Simulator *sim = owningSim();
        sim->removeFromQueue(*this);
        --sim->pending_;
    }
}

} // namespace rpcvalet::sim
