/**
 * @file
 * EventDomain: the unit of simulation in the redesigned kernel API.
 *
 * A domain is a Simulator shard with an identity: it owns one
 * two-level timer wheel and one local clock, and every component bound
 * to it (an RpcNode with its NI backends and cores, or the
 * traffic-generator/client side) schedules exclusively on that wheel.
 * Components therefore take an EventDomain& at construction — the
 * schedule/now/runUntil surface lives here, and a bare Simulator no
 * longer appears in component signatures.
 *
 * Single-domain runs (the default) behave exactly like the old global
 * wheel: one EventDomain carries everything and run() executes the
 * identical event sequence (locked by tests/core/kernel_identity).
 *
 * Multi-domain runs are conservative parallel DES: all domains execute
 * their events inside a window [T, T + lookahead) in parallel, where
 * the lookahead is the fabric link latency — a packet sent at time t
 * cannot be visible to another domain before t + latency >= T +
 * lookahead, so within a window no domain can affect another. At the
 * window barrier, cross-domain packets are exchanged through the
 * fabric's per-edge mailboxes (net/fabric.hh) and every clock advances
 * together.
 *
 * Threading model
 * ---------------
 * An EventDomain — wheel, clock, event pools, and every component
 * bound to it — is owned by exactly one thread at any instant. That
 * ownership may migrate between threads only across a synchronization
 * point (the window barrier in core::WindowPool): a worker claims a
 * domain, calls runUntil(), and publishes its mutations with a
 * release store that the next claimant acquires. No sim:: type is
 * internally synchronized; do not touch a domain from two threads
 * without such a handoff.
 */

#ifndef RPCVALET_SIM_DOMAIN_HH
#define RPCVALET_SIM_DOMAIN_HH

#include <cstdint>
#include <string>
#include <utility>

#include "sim/simulator.hh"

namespace rpcvalet::sim {

/** Dense domain index within one experiment (0 = client side). */
using DomainId = std::uint32_t;

/** A simulator shard: one wheel, one clock, one owning thread. */
class EventDomain : public Simulator
{
  public:
    /** A standalone domain (single-wheel runs, unit tests). */
    EventDomain() = default;

    /** A named shard of a multi-domain experiment. */
    EventDomain(DomainId id, std::string name)
        : id_(id), name_(std::move(name))
    {}

    DomainId id() const { return id_; }
    const std::string &name() const { return name_; }

  private:
    DomainId id_ = 0;
    std::string name_ = "main";
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_DOMAIN_HH
