/**
 * @file
 * Service-time distributions.
 *
 * All distributions sample in nanoseconds. The set covers the four
 * families the paper evaluates (fixed, uniform, exponential, GEV; §2.2
 * and §5) plus the building blocks used to model the HERD and Masstree
 * RPC processing-time profiles of Fig. 6 (log-normal, gamma, mixtures,
 * clamping) and empirical distributions for replaying histograms.
 */

#ifndef RPCVALET_SIM_DISTRIBUTIONS_HH
#define RPCVALET_SIM_DISTRIBUTIONS_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/rng.hh"

namespace rpcvalet::sim {

/** Interface for a positive-valued random distribution (unit: ns). */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample using the caller's generator. */
    virtual double sample(Rng &rng) const = 0;

    /** Analytical (or calibrated) mean of the distribution. */
    virtual double mean() const = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;

    /** Deep copy (distributions are immutable after construction). */
    virtual std::unique_ptr<Distribution> clone() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

/** Degenerate distribution: always returns the same value. */
class FixedDist : public Distribution
{
  public:
    explicit FixedDist(double value_ns);
    double sample(Rng &rng) const override;
    double mean() const override { return value_; }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double value_;
};

/** Continuous uniform on [lo, hi). */
class UniformDist : public Distribution
{
  public:
    UniformDist(double lo_ns, double hi_ns);
    double sample(Rng &rng) const override;
    double mean() const override { return 0.5 * (lo_ + hi_); }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double lo_;
    double hi_;
};

/** Exponential with the given mean. */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean_ns);
    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double mean_;
};

/**
 * Generalized extreme value distribution GEV(location, scale, shape),
 * sampled by inverse-CDF. The paper uses GEV(363, 100, 0.65) in cycles
 * at 2 GHz, which has a mean of ~600 cycles = 300 ns (§5).
 */
class GevDist : public Distribution
{
  public:
    GevDist(double location, double scale, double shape);
    double sample(Rng &rng) const override;
    double mean() const override;
    std::string name() const override;
    DistributionPtr clone() const override;

    double location() const { return location_; }
    double scale() const { return scale_; }
    double shape() const { return shape_; }

  private:
    double location_;
    double scale_;
    double shape_;
};

/** Log-normal specified directly by (mu, sigma) of the underlying normal. */
class LogNormalDist : public Distribution
{
  public:
    LogNormalDist(double mu, double sigma);

    /** Build a log-normal with the requested arithmetic mean (ns). */
    static LogNormalDist fromMeanSigma(double mean_ns, double sigma);

    double sample(Rng &rng) const override;
    double mean() const override;
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double mu_;
    double sigma_;
};

/** Gamma(k, theta): mean k*theta. */
class GammaDist : public Distribution
{
  public:
    GammaDist(double shape_k, double scale_theta);
    double sample(Rng &rng) const override;
    double mean() const override { return shapeK_ * scaleTheta_; }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double shapeK_;
    double scaleTheta_;
};

/** Adds a constant offset to an inner distribution's samples. */
class ShiftedDist : public Distribution
{
  public:
    ShiftedDist(double offset_ns, DistributionPtr inner);
    double sample(Rng &rng) const override;
    double mean() const override { return offset_ + inner_->mean(); }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double offset_;
    DistributionPtr inner_;
};

/**
 * Clamps an inner distribution's samples into [lo, hi]. The reported
 * mean is estimated numerically at construction (deterministic seed),
 * since the analytical truncated mean is not available in general.
 */
class ClampedDist : public Distribution
{
  public:
    ClampedDist(double lo_ns, double hi_ns, DistributionPtr inner);
    double sample(Rng &rng) const override;
    double mean() const override { return estimatedMean_; }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    double lo_;
    double hi_;
    DistributionPtr inner_;
    double estimatedMean_;
};

/** Probabilistic mixture of component distributions. */
class MixtureDist : public Distribution
{
  public:
    struct Component
    {
        double weight;
        DistributionPtr dist;
    };

    explicit MixtureDist(std::vector<Component> components);
    double sample(Rng &rng) const override;
    double mean() const override;
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    std::vector<Component> components_;
    std::vector<double> cumulative_;
};

/** Samples uniformly from a fixed set of observed values. */
class EmpiricalDist : public Distribution
{
  public:
    explicit EmpiricalDist(std::vector<double> values_ns);
    double sample(Rng &rng) const override;
    double mean() const override { return mean_; }
    std::string name() const override;
    DistributionPtr clone() const override;

  private:
    std::vector<double> values_;
    double mean_;
};

/**
 * The four synthetic RPC processing-time profiles of §5: a 300 ns base
 * latency plus an extra component with a 300 ns mean drawn from the
 * named family. GEV uses (363, 100, 0.65) in 2 GHz cycles, i.e. halved
 * when expressed in nanoseconds.
 */
enum class SyntheticKind { Fixed, Uniform, Exponential, Gev };

/** Name of a synthetic profile ("fixed", "uniform", ...). */
std::string syntheticKindName(SyntheticKind kind);

/** Build one of the §5 synthetic processing-time distributions. */
DistributionPtr makeSynthetic(SyntheticKind kind);

/** All four synthetic kinds, in the paper's variance order. */
std::vector<SyntheticKind> allSyntheticKinds();

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_DISTRIBUTIONS_HH
