#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace rpcvalet::sim {

namespace {

/** Per-thread stack of live ErrorContext descriptions. */
std::vector<std::string> &
contextStack()
{
    thread_local std::vector<std::string> stack;
    return stack;
}

} // namespace

ErrorContext::ErrorContext(std::string description)
{
    contextStack().push_back(std::move(description));
}

ErrorContext::~ErrorContext()
{
    contextStack().pop_back();
}

std::string
ErrorContext::current()
{
    std::string joined;
    for (const std::string &frame : contextStack()) {
        if (!joined.empty())
            joined += ": ";
        joined += frame;
    }
    return joined;
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    const std::string context = ErrorContext::current();
    if (context.empty())
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    else
        std::fprintf(stderr, "fatal: %s: %s\n", context.c_str(),
                     msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace rpcvalet::sim
