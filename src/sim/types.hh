/**
 * @file
 * Fundamental simulated-time types for the RPCValet simulator.
 *
 * All simulated time is kept as an integral number of picoseconds
 * (Tick). Picosecond resolution lets us represent sub-nanosecond
 * quantities (e.g. fractions of a 2 GHz cycle) without rounding drift
 * across billions of events.
 */

#ifndef RPCVALET_SIM_TYPES_HH
#define RPCVALET_SIM_TYPES_HH

#include <cstdint>

namespace rpcvalet::sim {

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per common time unit. */
constexpr Tick ticksPerNs = 1000;
constexpr Tick ticksPerUs = 1000 * ticksPerNs;
constexpr Tick ticksPerMs = 1000 * ticksPerUs;
constexpr Tick ticksPerSec = 1000 * ticksPerMs;

/** Convert a (possibly fractional) nanosecond count to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(ticksPerNs) + 0.5);
}

/** Convert a (possibly fractional) microsecond count to ticks. */
constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * static_cast<double>(ticksPerUs) + 0.5);
}

/** Convert ticks to nanoseconds (lossy, for reporting). */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Convert ticks to microseconds (lossy, for reporting). */
constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerUs);
}

/** Convert ticks to seconds (lossy, for rate computations). */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSec);
}

/**
 * A clock domain, used to convert CPU/NI cycle counts into ticks.
 * The paper's modeled chip runs at 2 GHz (Table 1).
 */
class Clock
{
  public:
    /** @param freq_ghz Clock frequency in GHz. Must be positive. */
    constexpr explicit Clock(double freq_ghz)
        : periodPs_(1000.0 / freq_ghz), freqGhz_(freq_ghz)
    {}

    /** Duration of @p n cycles, in ticks. */
    constexpr Tick
    cycles(double n) const
    {
        return static_cast<Tick>(n * periodPs_ + 0.5);
    }

    /** Clock period in ticks (picoseconds). */
    constexpr Tick period() const { return static_cast<Tick>(periodPs_); }

    /** Frequency in GHz. */
    constexpr double frequencyGhz() const { return freqGhz_; }

  private:
    double periodPs_;
    double freqGhz_;
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_TYPES_HH
