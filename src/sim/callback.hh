/**
 * @file
 * Small-buffer-optimized one-shot callback.
 *
 * The DES hot path schedules millions of short-lived closures; holding
 * them as std::function means one heap allocation per event. An
 * InplaceCallback stores any callable whose captures fit in three
 * pointers (24 bytes) directly inside the object — no allocation —
 * and falls back to the heap only for oversized captures. Hot-loop
 * components that would exceed the inline budget (e.g. closures
 * carrying a CompletionQueueEntry or a Packet) should use reusable
 * pooled sim::Event subclasses instead (see sim/event.hh).
 *
 * All operations route through one per-type handler function (invoke,
 * invoke-then-destroy, destroy, move): a single indirect call per
 * event firing, which matters at tens of millions of events/sec.
 */

#ifndef RPCVALET_SIM_CALLBACK_HH
#define RPCVALET_SIM_CALLBACK_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::sim {

/** Move-only void() callable with inline storage for small captures. */
class InplaceCallback
{
  public:
    /** Inline capture budget: closures up to 3 pointers stay in. */
    static constexpr std::size_t kInlineBytes = 3 * sizeof(void *);

    InplaceCallback() noexcept = default;
    InplaceCallback(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InplaceCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            handler_ = reinterpret_cast<std::uintptr_t>(
                &inlineHandler<Fn>);
            // The tag borrows bit 0 of the handler address, which
            // aligned(2) on the handlers guarantees is clear; checked
            // NDEBUG-independently because a violation means jumping
            // to handler-1 with no diagnostic.
            RV_ASSERT((handler_ & kTrivialTag) == 0,
                      "handler function address has bit 0 set");
            // Closures over references/pointers — the common case —
            // move by memcpy and destroy as a no-op; tag them so
            // reset() and moves skip the indirect call entirely.
            if constexpr (std::is_trivially_copyable_v<Fn> &&
                          std::is_trivially_destructible_v<Fn>)
                handler_ |= kTrivialTag;
        } else {
            ::new (static_cast<void *>(buf_))
                (Fn *)(new Fn(std::forward<F>(f)));
            handler_ = reinterpret_cast<std::uintptr_t>(
                &heapHandler<Fn>);
        }
    }

    /**
     * Destroy the current target (if any) and construct @p f in
     * place — the zero-move path used by the scheduler shim.
     */
    template <typename F>
    void
    emplace(F &&f)
    {
        reset();
        ::new (static_cast<void *>(this))
            InplaceCallback(std::forward<F>(f));
    }

    InplaceCallback(InplaceCallback &&other) noexcept { moveFrom(other); }

    InplaceCallback &
    operator=(InplaceCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback &) = delete;
    InplaceCallback &operator=(const InplaceCallback &) = delete;

    ~InplaceCallback() { reset(); }

    /** Invoke the stored callable (must be non-empty). */
    void operator()() { fn()(buf_, nullptr, Op::Invoke); }

    /**
     * Invoke, then destroy the callable, leaving this empty — the
     * one-shot firing path, one indirect call total.
     */
    void
    invokeOnce()
    {
        const std::uintptr_t h = handler_;
        handler_ = 0;
        toFn(h)(buf_, nullptr,
                (h & kTrivialTag) ? Op::Invoke : Op::InvokeDestroy);
    }

    explicit operator bool() const noexcept { return handler_ != 0; }

    /** Destroy the stored callable (and its captures), if any. */
    void
    reset() noexcept
    {
        if (handler_ != 0 && (handler_ & kTrivialTag) == 0)
            fn()(buf_, nullptr, Op::Destroy);
        handler_ = 0;
    }

    friend bool
    operator==(const InplaceCallback &c, std::nullptr_t) noexcept
    {
        return !c;
    }
    friend bool
    operator==(std::nullptr_t, const InplaceCallback &c) noexcept
    {
        return !c;
    }
    friend bool
    operator!=(const InplaceCallback &c, std::nullptr_t) noexcept
    {
        return static_cast<bool>(c);
    }
    friend bool
    operator!=(std::nullptr_t, const InplaceCallback &c) noexcept
    {
        return static_cast<bool>(c);
    }

  private:
    enum class Op : unsigned char
    {
        Invoke,        ///< call the target
        InvokeDestroy, ///< call, then destroy (one-shot firing)
        Destroy,       ///< destroy the target
        Move,          ///< move-construct into dst, destroy src
    };

    using Handler = void (*)(void *src, void *dst, Op op);

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
               alignof(Fn) <= alignof(void *) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    // aligned(2): the kTrivialTag scheme borrows bit 0 of these
    // functions' addresses, and unoptimized template instantiations
    // are not otherwise guaranteed even 2-byte alignment.
    template <typename Fn>
    __attribute__((aligned(2))) static void
    inlineHandler(void *src, void *dst, Op op)
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(src));
        switch (op) {
          case Op::Invoke:
            (*f)();
            return;
          case Op::InvokeDestroy:
            (*f)();
            f->~Fn();
            return;
          case Op::Destroy:
            f->~Fn();
            return;
          case Op::Move:
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
            return;
        }
    }

    template <typename Fn>
    __attribute__((aligned(2))) static void
    heapHandler(void *src, void *dst, Op op)
    {
        Fn **pp = std::launder(reinterpret_cast<Fn **>(src));
        switch (op) {
          case Op::Invoke:
            (**pp)();
            return;
          case Op::InvokeDestroy:
            (**pp)();
            delete *pp;
            return;
          case Op::Destroy:
            delete *pp;
            return;
          case Op::Move:
            // Steal the heap pointer; the source slot no longer owns
            // the callable.
            ::new (dst) (Fn *)(*pp);
            return;
        }
    }

    Handler fn() const { return toFn(handler_); }

    static Handler
    toFn(std::uintptr_t h)
    {
        return reinterpret_cast<Handler>(h & ~kTrivialTag);
    }

    void
    moveFrom(InplaceCallback &other) noexcept
    {
        handler_ = other.handler_;
        if (handler_ & kTrivialTag) {
            for (std::size_t i = 0; i < kInlineBytes; ++i)
                buf_[i] = other.buf_[i];
        } else if (handler_ != 0) {
            fn()(other.buf_, buf_, Op::Move);
        }
        other.handler_ = 0;
    }

    /** Bit 0 of handler_: trivially movable and destructible inline. */
    static constexpr std::uintptr_t kTrivialTag = 1;

    // handler_ precedes the capture buffer so the firing path's
    // loads cluster at the front of the enclosing event object.
    std::uintptr_t handler_ = 0;
    alignas(void *) unsigned char buf_[kInlineBytes];
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_CALLBACK_HH
