#include "sim/simulator.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::sim {

namespace {

constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

} // namespace

Simulator::Simulator() : buckets_(kNumBuckets)
{
    initList(open_);
    initList(overflow_);
}

Simulator::~Simulator()
{
    // Detach (do not fire) anything still queued, so the destructors
    // of surviving events — including our own pooled one-shots, whose
    // slab is destroyed after this body — see an idle event. The
    // occupancy bitmap names the buckets worth visiting, so a drained
    // simulator (the common case) skips the whole wheel.
    const auto detach_all = [](EventLink &head) {
        for (EventLink *p = head.next; p != &head;) {
            Event *e = static_cast<Event *>(p);
            p = p->next;
            e->next = nullptr;
            e->prev = nullptr;
            e->simWhere_ = 0;
        }
        initList(head);
    };
    detach_all(open_);
    detach_all(overflow_);
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
        std::uint64_t bits = occupied_[w];
        while (bits != 0) {
            const unsigned bit =
                static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            Event *&head = buckets_[w * 64 + bit];
            for (Event *e = head; e != nullptr;) {
                Event *next = static_cast<Event *>(e->next);
                e->next = nullptr;
                e->prev = nullptr;
                e->simWhere_ = 0;
                e = next;
            }
            head = nullptr;
        }
    }
    pending_ = 0;
}

void
Simulator::appendTo(EventLink &head, Event &ev)
{
    ev.prev = head.prev;
    ev.next = &head;
    head.prev->next = &ev;
    head.prev = &ev;
}

void
Simulator::openBucket(std::uint64_t target)
{
    const std::size_t idx = static_cast<std::size_t>(target & kBucketMask);
    Event *head = buckets_[idx];
    if (head == nullptr)
        return;
    buckets_[idx] = nullptr;
    occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));

    if (head->next == nullptr) {
        // Fast path: one event per ~1 ns bucket is the common shape.
        appendTo(open_, *head);
        head->setWhere(Event::Where::Open);
        return;
    }

    // The chain is newest-first (push-front); rebuild insertion order,
    // then stable-sort by time so append order breaks ties — the
    // (time, seq) FIFO contract. Insertion sort: buckets are small and
    // nearly sorted, and equal-time runs cost O(1) per event.
    sortScratch_.clear();
    for (Event *e = head; e != nullptr;
         e = static_cast<Event *>(e->next))
        sortScratch_.push_back(e);
    std::reverse(sortScratch_.begin(), sortScratch_.end());
    for (std::size_t i = 1; i < sortScratch_.size(); ++i) {
        Event *e = sortScratch_[i];
        std::size_t j = i;
        while (j > 0 && sortScratch_[j - 1]->when_ > e->when_) {
            sortScratch_[j] = sortScratch_[j - 1];
            --j;
        }
        sortScratch_[j] = e;
    }
    for (Event *e : sortScratch_) {
        appendTo(open_, *e);
        e->setWhere(Event::Where::Open);
    }
}

void
Simulator::removeFromQueue(Event &ev)
{
    if (ev.where() == Event::Where::Bucket) {
        // Unopened buckets are singly linked: walk the few events the
        // ~1 ns window holds to find the predecessor.
        const std::size_t slot =
            static_cast<std::size_t>(bucketOf(ev.when_) & kBucketMask);
        Event *&head = buckets_[slot];
        if (head == &ev) {
            head = static_cast<Event *>(ev.next);
        } else {
            Event *p = head;
            RV_ASSERT(p != nullptr, "event missing from its bucket");
            while (p->next != static_cast<EventLink *>(&ev)) {
                RV_ASSERT(p->next != nullptr,
                          "event missing from its bucket");
                p = static_cast<Event *>(p->next);
            }
            p->next = ev.next;
        }
        if (head == nullptr)
            occupied_[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
    } else {
        ev.prev->next = ev.next;
        ev.next->prev = ev.prev;
    }
    ev.next = nullptr;
    ev.prev = nullptr;
    ev.setWhere(Event::Where::None);
}

void
Simulator::deschedule(Event &ev)
{
    RV_ASSERT(ev.scheduled(), "descheduling an unscheduled event");
    RV_ASSERT(ev.owningSim() == this,
              "event is scheduled on another simulator");
    removeFromQueue(ev);
    --pending_;
}

void
Simulator::rescheduleAt(Event &ev, Tick when)
{
    if (ev.scheduled())
        deschedule(ev);
    scheduleAt(ev, when);
}

void
Simulator::OneShot::process()
{
    Simulator *sim = owningSim();
    // Invoke-and-destroy in one indirect call; captures are dropped
    // before pooling so resources are not held until the next reuse.
    cb.invokeOnce();
    sim->releaseOneShot(this);
}

void
Simulator::releaseOneShot(OneShot *ev)
{
    oneShots_.release(ev);
}

void
Simulator::schedule(Tick delay, Callback cb)
{
    scheduleOneShot(now_ + delay, std::move(cb));
}

void
Simulator::scheduleAt(Tick when, Callback cb)
{
    scheduleOneShot(when, std::move(cb));
}

void
Simulator::scheduleOneShot(Tick when, Callback &&cb)
{
    RV_ASSERT(cb != nullptr, "null event callback");
    OneShot *ev = oneShots_.acquire();
    ev->cb = std::move(cb);
    scheduleAt(*ev, when);
}

std::uint64_t
Simulator::nextOccupiedBucket() const
{
    const std::size_t start =
        static_cast<std::size_t>(cursor_ & kBucketMask);
    const std::size_t start_word = start / 64;
    const unsigned start_bit = static_cast<unsigned>(start % 64);
    // Circular scan beginning at the cursor's word; the first word's
    // low bits (behind the cursor) are rescanned last, as they are a
    // full rotation away.
    for (std::size_t i = 0; i <= kBitmapWords; ++i) {
        const std::size_t w = (start_word + i) % kBitmapWords;
        std::uint64_t bits = occupied_[w];
        if (i == 0)
            bits &= ~std::uint64_t{0} << start_bit;
        else if (i == kBitmapWords)
            bits &= ~(~std::uint64_t{0} << start_bit);
        if (bits == 0)
            continue;
        const std::size_t slot =
            w * 64 + static_cast<unsigned>(__builtin_ctzll(bits));
        const std::uint64_t dist =
            (slot + kNumBuckets - start) & kBucketMask;
        RV_ASSERT(dist != 0, "open window's bucket slot is occupied");
        return cursor_ + dist;
    }
    return kNoBucket;
}

std::uint64_t
Simulator::advanceCursor()
{
    std::uint64_t target = nextOccupiedBucket();
    if (target == kNoBucket) {
        RV_ASSERT(!listEmpty(overflow_),
                  "wheel advance with an empty queue");
        target = bucketOf(static_cast<Event *>(overflow_.next)->when_);
    }
    cursor_ = target;

    // Pull overflow events the new horizon covers back into the wheel.
    // They sit above every in-horizon bucket (or, when the wheel was
    // empty, go straight into the freshly opened window), so the
    // target bucket stays the earliest work.
    while (!listEmpty(overflow_)) {
        Event *e = static_cast<Event *>(overflow_.next);
        if (bucketOf(e->when_) >= cursor_ + kNumBuckets)
            break;
        e->prev->next = e->next;
        e->next->prev = e->prev;
        place(*e);
    }
    return target;
}

Event *
Simulator::peekEarliest()
{
    if (pending_ == 0)
        return nullptr;
    if (!listEmpty(open_))
        return static_cast<Event *>(open_.next);
    // Pure scan — peeking must not advance the cursor: when the
    // caller (runUntil) declines to execute the result, later
    // schedules may still target the time range a cursor move would
    // have skipped.
    const std::uint64_t target = nextOccupiedBucket();
    if (target != kNoBucket) {
        // The chain is newest-first, so on equal times the later
        // (earlier-scheduled) element wins: <= keeps the FIFO head.
        Event *best = nullptr;
        for (Event *e = buckets_[target & kBucketMask]; e != nullptr;
             e = static_cast<Event *>(e->next)) {
            if (best == nullptr || e->when_ <= best->when_)
                best = e;
        }
        return best;
    }
    RV_ASSERT(!listEmpty(overflow_), "timer wheel lost a pending event");
    return static_cast<Event *>(overflow_.next);
}

Event *
Simulator::popEarliest()
{
    if (pending_ == 0)
        return nullptr;
    if (listEmpty(open_)) {
        const std::uint64_t target = advanceCursor();
        const std::size_t idx =
            static_cast<std::size_t>(target & kBucketMask);
        Event *bhead = buckets_[idx];
        if (bhead != nullptr && bhead->next == nullptr &&
            listEmpty(open_)) {
            // Fast path: the earliest bucket holds exactly one event —
            // the common shape at ~1 ns granularity — so it pops
            // without touching the open list.
            buckets_[idx] = nullptr;
            occupied_[idx / 64] &= ~(std::uint64_t{1} << (idx % 64));
            bhead->prev = nullptr;
            bhead->setWhere(Event::Where::None);
            --pending_;
            return bhead;
        }
        openBucket(target);
    }
    RV_ASSERT(!listEmpty(open_), "timer wheel lost a pending event");
    Event *ev = static_cast<Event *>(open_.next);
    ev->prev->next = ev->next;
    ev->next->prev = ev->prev;
    ev->next = nullptr;
    ev->prev = nullptr;
    ev->setWhere(Event::Where::None);
    --pending_;
    return ev;
}

bool
Simulator::executeNext()
{
    Event *ev = popEarliest();
    if (ev == nullptr)
        return false;
    RV_ASSERT(ev->when_ >= now_, "event queue went backwards");
    now_ = ev->when_;
    ++executed_;
    ev->process();
    return true;
}

Tick
Simulator::run()
{
    stopRequested_ = false;
    while (!stopRequested_ && executeNext()) {
    }
    return now_;
}

Tick
Simulator::runUntil(Tick until)
{
    stopRequested_ = false;
    while (!stopRequested_) {
        Event *head = peekEarliest();
        if (head == nullptr || head->when_ > until)
            break;
        executeNext();
    }
    if (!stopRequested_ && now_ < until)
        now_ = until;
    return now_;
}

PoissonProcess::PoissonProcess(Simulator &sim, double rate_per_sec,
                               std::uint64_t rng_seed, Handler handler)
    : sim_(sim), ratePerSec_(rate_per_sec),
      meanGapNs_(1e9 / rate_per_sec), rng_(rng_seed, /*stream=*/0x90150),
      handler_(std::move(handler)), event_(*this, "poisson-arrival")
{
    RV_ASSERT(rate_per_sec > 0.0, "arrival rate must be positive");
    RV_ASSERT(handler_ != nullptr, "arrival handler missing");
}

void
PoissonProcess::start()
{
    scheduleNext();
}

void
PoissonProcess::fire()
{
    if (halted_)
        return;
    ++arrivals_;
    handler_();
    scheduleNext();
}

void
PoissonProcess::scheduleNext()
{
    const Tick gap = nanoseconds(rng_.exponential(meanGapNs_));
    sim_.schedule(event_, gap);
}

} // namespace rpcvalet::sim
