#include "sim/simulator.hh"

#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::sim {

void
Simulator::schedule(Tick delay, Callback cb)
{
    scheduleAt(now_ + delay, std::move(cb));
}

void
Simulator::scheduleAt(Tick when, Callback cb)
{
    RV_ASSERT(when >= now_, "event scheduled in the past");
    RV_ASSERT(cb != nullptr, "null event callback");
    queue_.push(Item{when, nextSeq_++, std::move(cb)});
}

bool
Simulator::executeNext()
{
    if (queue_.empty())
        return false;
    // priority_queue::top() is const; the callback has to be moved out,
    // so copy the POD fields first and pop before invoking. Invoking
    // after pop also lets the callback schedule new events freely.
    Item item = std::move(const_cast<Item &>(queue_.top()));
    queue_.pop();
    RV_ASSERT(item.when >= now_, "event queue went backwards");
    now_ = item.when;
    ++executed_;
    item.cb();
    return true;
}

Tick
Simulator::run()
{
    stopRequested_ = false;
    while (!stopRequested_ && executeNext()) {
    }
    return now_;
}

Tick
Simulator::runUntil(Tick until)
{
    stopRequested_ = false;
    while (!stopRequested_ && !queue_.empty() &&
           queue_.top().when <= until) {
        executeNext();
    }
    if (!stopRequested_ && now_ < until)
        now_ = until;
    return now_;
}

PoissonProcess::PoissonProcess(Simulator &sim, double rate_per_sec,
                               std::uint64_t rng_seed, Handler handler)
    : sim_(sim), ratePerSec_(rate_per_sec),
      meanGapNs_(1e9 / rate_per_sec), rng_(rng_seed, /*stream=*/0x90150),
      handler_(std::move(handler))
{
    RV_ASSERT(rate_per_sec > 0.0, "arrival rate must be positive");
    RV_ASSERT(handler_ != nullptr, "arrival handler missing");
}

void
PoissonProcess::start()
{
    scheduleNext();
}

void
PoissonProcess::scheduleNext()
{
    const Tick gap = nanoseconds(rng_.exponential(meanGapNs_));
    sim_.schedule(gap, [this] {
        if (halted_)
            return;
        ++arrivals_;
        handler_();
        scheduleNext();
    });
}

} // namespace rpcvalet::sim
