/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are (time, sequence) ordered: two events scheduled for the
 * same tick fire in scheduling order, which makes entire simulations
 * bit-reproducible for a given seed.
 *
 * The kernel is allocation-free on the schedule/fire hot path:
 *
 *  - Intrusive events (sim/event.hh): components embed sim::Event
 *    subclasses and schedule them directly — no allocation ever.
 *  - One-shot callbacks: schedule(Tick, Callback) wraps the callable
 *    in a pooled internal event; captures up to 3 pointers are stored
 *    inline (sim/callback.hh), larger ones fall back to the heap.
 *    Prefer a reusable Event for anything carrying bulky payloads
 *    (packets, CQEs) or firing once per RPC.
 *
 * Pending events live in a two-level bucketed timer wheel instead of a
 * binary heap:
 *
 *  - Near future: kNumBuckets buckets of kBucketTicks each (a rotating
 *    ~2 µs horizon at 1 ns granularity). schedule() appends to the
 *    destination bucket in O(1), unsorted. When the wheel reaches a
 *    bucket it is "opened": its events are stably sorted by time once
 *    (append order breaks ties, preserving the (time, seq) FIFO
 *    contract) and then popped from the head in O(1).
 *  - Far future: events beyond the horizon wait in a sorted overflow
 *    list and migrate into buckets as the horizon advances past them.
 *
 * A bitmap over buckets makes skipping empty time O(buckets/64) words,
 * and descheduling is O(1) thanks to the intrusive doubly-linked
 * hooks. Determinism is unchanged from the heap kernel and is locked
 * by tests/core/kernel_identity_test.cc.
 *
 * Threading model
 * ---------------
 * A Simulator (wheel, clock, callback pool) is single-owner state: it
 * is never internally synchronized, and exactly one thread may call
 * schedule/deschedule/run/runUntil at any instant. Parallel runs do
 * not share a wheel — they shard the experiment into sim::EventDomain
 * instances (sim/domain.hh, each is-a Simulator) and hand whole
 * domains to workers across a barrier (core::WindowPool), so every
 * mutation still happens under one owner. There is no process-global
 * "current simulator": components receive their EventDomain& at
 * construction and hold it for life.
 */

#ifndef RPCVALET_SIM_SIMULATOR_HH
#define RPCVALET_SIM_SIMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "sim/callback.hh"
#include "sim/event.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace rpcvalet::sim {

/** One-shot event payload: any callable (small captures stay inline). */
using Callback = InplaceCallback;

/** Discrete-event simulator with a monotonically advancing clock. */
class Simulator
{
    /** Raw callables (not Events, not Callbacks) take the template
     *  overloads; everything else keeps the exact-match overloads. */
    template <typename F>
    using EnableIfCallable = std::enable_if_t<
        std::is_invocable_r_v<void, std::decay_t<F> &> &&
        !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
        !std::is_base_of_v<Event, std::decay_t<F>>>;

  public:
    Simulator();
    ~Simulator();

    // Queued events hold pointers into this object; the simulator
    // identity must be stable.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    // ----- intrusive event API (allocation-free) -----

    /** Schedule @p ev to fire @p delay ticks from now. */
    void schedule(Event &ev, Tick delay) { scheduleAt(ev, now_ + delay); }

    /**
     * Schedule @p ev at absolute time @p when. Scheduling in the past
     * or scheduling an already-scheduled event is a simulator bug and
     * panics (use reschedule() to move a pending event). Inline: this
     * is the innermost step of every schedule call.
     */
    void
    scheduleAt(Event &ev, Tick when)
    {
        RV_ASSERT(!ev.scheduled(), "event is already scheduled");
        RV_ASSERT(when >= now_, "event scheduled in the past");
        ev.when_ = when;
        place(ev);
        ++pending_;
    }

    /** Remove a pending event (panics if @p ev is not scheduled). */
    void deschedule(Event &ev);

    /** Move @p ev (scheduled or not) to fire @p delay from now. */
    void reschedule(Event &ev, Tick delay)
    {
        rescheduleAt(ev, now_ + delay);
    }

    /** Move @p ev (scheduled or not) to absolute time @p when. */
    void rescheduleAt(Event &ev, Tick when);

    // ----- one-shot callback shim -----

    /** Schedule @p cb to run @p delay ticks from now. */
    void schedule(Tick delay, Callback cb);

    /**
     * Schedule @p cb at absolute time @p when. Scheduling in the past
     * is a simulator bug and panics.
     */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Hot-path overloads for raw callables: the closure is built
     * directly inside the pooled event, no intermediate Callback.
     */
    template <typename F, typename = EnableIfCallable<F>>
    void
    schedule(Tick delay, F &&f)
    {
        OneShot *ev = oneShots_.acquire();
        ev->cb.emplace(std::forward<F>(f));
        scheduleAt(*ev, now_ + delay);
    }

    template <typename F, typename = EnableIfCallable<F>>
    void
    scheduleAt(Tick when, F &&f)
    {
        OneShot *ev = oneShots_.acquire();
        ev->cb.emplace(std::forward<F>(f));
        scheduleAt(*ev, when);
    }

    // ----- running -----

    /**
     * Run until the event queue drains or stop() is called. Returns the
     * time of the last executed event.
     */
    Tick run();

    /**
     * Run all events with time <= @p until, then set now() to @p until
     * (if not stopped earlier). Returns now().
     */
    Tick runUntil(Tick until);

    /** Ask the main loop to return after the current event. */
    void stop() { stopRequested_ = true; }

    /** True once stop() was called (cleared by the next run call). */
    bool stopRequested() const { return stopRequested_; }

    /** Number of events waiting in the queue. */
    std::size_t pendingEvents() const { return pending_; }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    friend class Event;

    // Wheel geometry: 1024-tick (~1 ns) buckets, 2048 of them — a
    // rotating ~2 µs horizon that covers the common pipeline, mesh and
    // interarrival delays of this model. Both are powers of two so the
    // bucket of a tick is two shifts away.
    static constexpr unsigned kBucketBits = 10;
    static constexpr Tick kBucketTicks = Tick(1) << kBucketBits;
    static constexpr std::size_t kNumBuckets = 2048;
    static constexpr std::uint64_t kBucketMask = kNumBuckets - 1;
    static constexpr std::size_t kBitmapWords = kNumBuckets / 64;

    /** Internal pooled event backing the one-shot callback shim. */
    struct OneShot : Event
    {
        InplaceCallback cb;

        void process() override;
        const char *description() const override { return "one-shot"; }
    };

    static std::uint64_t bucketOf(Tick when)
    {
        return when >> kBucketBits;
    }

    static bool listEmpty(const EventLink &head)
    {
        return head.next == &head;
    }

    static void initList(EventLink &head)
    {
        head.next = &head;
        head.prev = &head;
    }

    /** Append @p ev at the tail of @p head (FIFO order). */
    static void appendTo(EventLink &head, Event &ev);

    /**
     * Insert @p ev keeping @p head sorted by (when, insertion order).
     * Scans from the tail: the common pattern (later schedules, later
     * times) makes this O(1) amortized.
     */
    static void
    insertSorted(EventLink &head, Event &ev)
    {
        EventLink *pos = head.prev;
        while (pos != &head &&
               static_cast<Event *>(pos)->when_ > ev.when_)
            pos = pos->prev;
        ev.next = pos->next;
        ev.prev = pos;
        pos->next->prev = &ev;
        pos->next = &ev;
    }

    /** Route a (when-stamped) event into open/bucket/overflow. */
    void
    place(Event &ev)
    {
        const std::uint64_t bucket = bucketOf(ev.when_);
        if (bucket >= cursor_ + kNumBuckets) {
            insertSorted(overflow_, ev);
            ev.setState(this, Event::Where::Overflow);
        } else if (bucket == cursor_) {
            insertSorted(open_, ev);
            ev.setState(this, Event::Where::Open);
        } else {
            // when >= now() >= cursor window start, so in-horizon
            // events are never behind the cursor. Push-front:
            // openBucket restores insertion order before anything
            // fires.
            const std::size_t slot =
                static_cast<std::size_t>(bucket & kBucketMask);
            ev.next = buckets_[slot];
            buckets_[slot] = &ev;
            occupied_[slot / 64] |= std::uint64_t{1} << (slot % 64);
            ev.setState(this, Event::Where::Bucket);
        }
    }

    /** Shared one-shot path: pool an event around @p cb. */
    void scheduleOneShot(Tick when, Callback &&cb);

    /** Unlink from whichever region holds the event. */
    void removeFromQueue(Event &ev);

    /**
     * Earliest pending event without mutating wheel state (runUntil
     * must not advance the cursor for events it will not execute —
     * later schedules may still target the skipped time range).
     */
    Event *peekEarliest();

    /** Pop the earliest pending event (advances the wheel). */
    Event *popEarliest();

    /**
     * Advance the cursor to the next bucket holding work, migrating
     * newly in-horizon overflow events. Returns the target bucket.
     */
    std::uint64_t advanceCursor();

    /** Sort bucket @p target's events into the open list. */
    void openBucket(std::uint64_t target);

    /** Absolute bucket numbers of candidate work, or ~0 if none. */
    std::uint64_t nextOccupiedBucket() const;

    /** Execute the earliest event; false when the queue is empty. */
    bool executeNext();

    void releaseOneShot(OneShot *ev);

    Tick now_ = 0;
    std::size_t pending_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;

    /** Absolute bucket number of the open (currently served) window. */
    std::uint64_t cursor_ = 0;
    /** The open bucket, sorted by (when, insertion). */
    EventLink open_;
    /** Beyond-horizon events, sorted by (when, insertion). */
    EventLink overflow_;
    /**
     * In-horizon buckets: singly-linked stacks, newest first (one
     * head pointer each, so a fresh wheel is a small memset and an
     * append is two stores). A bucket is put into (time, seq) order
     * only when opened; descheduling from an unopened bucket walks
     * the few events it holds.
     */
    std::vector<Event *> buckets_;
    /** One bit per bucket: does it hold any events? */
    std::array<std::uint64_t, kBitmapWords> occupied_{};
    /** Scratch for sorting a bucket as it opens (reused, no alloc). */
    std::vector<Event *> sortScratch_;

    // Declared last: destroyed first, after ~Simulator's body has
    // detached any still-pending events, so ~Event sees them idle.
    EventPool<OneShot> oneShots_;
};

/**
 * Open-loop Poisson arrival process: calls a handler for every arrival
 * at a given average rate until stopped. Inter-arrival times are
 * exponential, sampled from a dedicated Rng so arrival sequences do not
 * perturb other components' randomness. The single arrival event is a
 * reusable member event — steady-state generation never allocates.
 */
class PoissonProcess
{
  public:
    using Handler = std::function<void()>;

    /**
     * @param sim        Owning simulator (must outlive the process).
     * @param rate_per_sec Average arrivals per second (> 0).
     * @param rng_seed   Seed for the private inter-arrival Rng.
     * @param handler    Invoked once per arrival.
     */
    PoissonProcess(Simulator &sim, double rate_per_sec,
                   std::uint64_t rng_seed, Handler handler);

    /** Schedule the first arrival. */
    void start();

    /** Cease generating arrivals (already-queued events still fire). */
    void halt() { halted_ = true; }

    /** Arrivals generated so far. */
    std::uint64_t arrivals() const { return arrivals_; }

    /** The configured rate, arrivals per second. */
    double ratePerSec() const { return ratePerSec_; }

  private:
    void fire();
    void scheduleNext();

    Simulator &sim_;
    double ratePerSec_;
    double meanGapNs_;
    Rng rng_;
    Handler handler_;
    bool halted_ = false;
    std::uint64_t arrivals_ = 0;
    MemberEvent<PoissonProcess, &PoissonProcess::fire> event_;
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_SIMULATOR_HH
