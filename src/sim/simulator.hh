/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are (time, sequence) ordered: two events scheduled for the
 * same tick fire in scheduling order, which makes entire simulations
 * bit-reproducible for a given seed.
 */

#ifndef RPCVALET_SIM_SIMULATOR_HH
#define RPCVALET_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace rpcvalet::sim {

/** Event payload: an arbitrary callable. */
using Callback = std::function<void()>;

/** Discrete-event simulator with a monotonically advancing clock. */
class Simulator
{
  public:
    Simulator() = default;

    // The event heap holds callbacks that may capture `this`-adjacent
    // state; the simulator identity must be stable.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb to run @p delay ticks from now. */
    void schedule(Tick delay, Callback cb);

    /**
     * Schedule @p cb at absolute time @p when. Scheduling in the past
     * is a simulator bug and panics.
     */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Run until the event queue drains or stop() is called. Returns the
     * time of the last executed event.
     */
    Tick run();

    /**
     * Run all events with time <= @p until, then set now() to @p until
     * (if not stopped earlier). Returns now().
     */
    Tick runUntil(Tick until);

    /** Ask the main loop to return after the current event. */
    void stop() { stopRequested_ = true; }

    /** True once stop() was called (cleared by the next run call). */
    bool stopRequested() const { return stopRequested_; }

    /** Number of events waiting in the queue. */
    std::size_t pendingEvents() const { return queue_.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed_; }

  private:
    struct Item
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    bool executeNext();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopRequested_ = false;
    std::priority_queue<Item, std::vector<Item>, Later> queue_;
};

/**
 * Open-loop Poisson arrival process: calls a handler for every arrival
 * at a given average rate until stopped. Inter-arrival times are
 * exponential, sampled from a dedicated Rng so arrival sequences do not
 * perturb other components' randomness.
 */
class PoissonProcess
{
  public:
    using Handler = std::function<void()>;

    /**
     * @param sim        Owning simulator (must outlive the process).
     * @param rate_per_sec Average arrivals per second (> 0).
     * @param rng_seed   Seed for the private inter-arrival Rng.
     * @param handler    Invoked once per arrival.
     */
    PoissonProcess(Simulator &sim, double rate_per_sec,
                   std::uint64_t rng_seed, Handler handler);

    /** Schedule the first arrival. */
    void start();

    /** Cease generating arrivals (already-queued events still fire). */
    void halt() { halted_ = true; }

    /** Arrivals generated so far. */
    std::uint64_t arrivals() const { return arrivals_; }

    /** The configured rate, arrivals per second. */
    double ratePerSec() const { return ratePerSec_; }

  private:
    void scheduleNext();

    Simulator &sim_;
    double ratePerSec_;
    double meanGapNs_;
    Rng rng_;
    Handler handler_;
    bool halted_ = false;
    std::uint64_t arrivals_ = 0;
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_SIMULATOR_HH
