/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator uses xoshiro256** (Blackman & Vigna) seeded through
 * splitmix64. Every stochastic component owns its own Rng, derived from
 * the experiment seed plus a component-specific stream id, so results
 * are bit-reproducible regardless of event interleaving and independent
 * of the C++ standard library's distribution implementations.
 */

#ifndef RPCVALET_SIM_RNG_HH
#define RPCVALET_SIM_RNG_HH

#include <cstdint>
#include <limits>

namespace rpcvalet::sim {

/** xoshiro256** pseudo-random generator with convenience samplers. */
class Rng
{
  public:
    /**
     * Construct from a seed and an optional stream id. Distinct stream
     * ids yield statistically independent sequences for the same seed.
     */
    explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in (0, 1) — never returns exactly 0 (for logs). */
    double uniformPositive();

    /** Uniform double in [lo, hi). */
    double uniformRange(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponential variate with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller, cached spare). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double sigma);

    /** Gamma(k, theta) variate via Marsaglia-Tsang; k > 0, theta > 0. */
    double gamma(double shape_k, double scale_theta);

    /** UniformRandomBitGenerator interface (for std interop). */
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }
    result_type operator()() { return next(); }

  private:
    std::uint64_t s_[4];
    double spareNormal_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace rpcvalet::sim

#endif // RPCVALET_SIM_RNG_HH
