#include "core/experiment.hh"

#include <atomic>
#include <thread>
#include <utility>

#include "net/traffic_gen.hh"
#include "node/rpc_node.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace rpcvalet::core {

namespace {

/** Events executed across all runs in this process (bench perf feed). */
std::atomic<std::uint64_t> g_simulatedEvents{0};

} // namespace

std::uint64_t
totalSimulatedEvents()
{
    return g_simulatedEvents.load(std::memory_order_relaxed);
}

RunStats
runExperiment(const ExperimentConfig &cfg)
{
    const app::RpcApplicationPtr app =
        app::WorkloadRegistry::instance().make(cfg.workload);
    return runExperiment(cfg, *app);
}

RunStats
runExperiment(const ExperimentConfig &cfg, app::RpcApplication &app)
{
    cfg.system.validate();
    RV_ASSERT(cfg.arrivalRps > 0.0, "arrival rate must be positive");
    RV_ASSERT(cfg.measuredRpcs > 0, "need at least one measured RPC");

    sim::Simulator sim;
    net::Fabric fabric(sim, cfg.system.fabricLatency);
    node::RpcNode node(sim, cfg.system, app, fabric, cfg.warmupRpcs);

    net::TrafficGenerator::Params tp;
    tp.arrivalRps = cfg.arrivalRps;
    tp.arrival = cfg.arrival;
    tp.targetNode = cfg.system.nodeId;
    tp.clientTurnaround = cfg.clientTurnaround;
    tp.seed = cfg.system.seed;
    net::TrafficGenerator tg(sim, tp, cfg.system.domain, app, fabric);
    fabric.connectDefault(
        [&tg](proto::Packet pkt) { tg.receivePacket(std::move(pkt)); });

    sim::Tick measure_start = 0;
    sim::Tick measure_end = 0;
    const std::uint64_t target = cfg.warmupRpcs + cfg.measuredRpcs;
    node.setCompletionHook([&](bool, sim::Tick) {
        const std::uint64_t total = node.served();
        if (total == cfg.warmupRpcs)
            measure_start = sim.now();
        if (total == target) {
            measure_end = sim.now();
            tg.halt();
            sim.stop();
        }
    });

    node.start();
    tg.start();
    sim.run();

    RunStats out;
    out.workload = app.name();
    out.point.offeredRps = cfg.arrivalRps;
    const auto &rec = node.criticalLatency();
    out.point.meanNs = rec.meanNs();
    out.point.p50Ns = rec.percentileNs(50.0);
    out.point.p90Ns = rec.percentileNs(90.0);
    out.point.p99Ns = rec.percentileNs(99.0);
    out.point.samples = rec.count();
    if (measure_end > measure_start) {
        out.point.achievedRps =
            static_cast<double>(cfg.measuredRpcs) /
            sim::toSeconds(measure_end - measure_start);
    }
    out.meanServiceNs = node.meanServiceTimeNs();
    out.completions = node.served();
    out.criticalCompletions = node.servedCritical();
    out.replySlotStalls = node.replySlotStalls();
    out.flowControlDeferrals = tg.flowControlDeferrals();
    out.verifyFailures = tg.verificationFailures();
    out.simulatedUs = sim::toUs(sim.now());
    out.executedEvents = sim.executedEvents();
    g_simulatedEvents.fetch_add(sim.executedEvents(),
                                std::memory_order_relaxed);
    out.perCoreServed = node.perCoreServed();
    out.recvSlotPeak = node.recvSlotPeak();
    out.rendezvousRequests = tg.rendezvousRequests();
    out.preemptionYields = node.preemptionYields();
    const auto component = [](const stats::LatencyRecorder &r) {
        return ComponentStats{r.meanNs(), r.p99Ns()};
    };
    const auto &bd = node.breakdown();
    out.breakdown.reassembly = component(bd.reassembly);
    out.breakdown.dispatch = component(bd.dispatch);
    out.breakdown.queueWait = component(bd.queueWait);
    out.breakdown.service = component(bd.service);

    // Per-class breakdown: full tail accounting for every declared
    // request class, non-critical ones (scans) included.
    const double window_s = measure_end > measure_start
                                ? sim::toSeconds(measure_end -
                                                 measure_start)
                                : 0.0;
    for (const auto &acct : node.classAccounting()) {
        ClassStats cs;
        cs.name = acct.info.name;
        cs.latencyCritical = acct.info.latencyCritical;
        cs.sloNs = acct.info.sloNs;
        cs.completions = acct.latency.count();
        if (window_s > 0.0) {
            cs.achievedRps =
                static_cast<double>(cs.completions) / window_s;
        }
        cs.meanNs = acct.latency.meanNs();
        cs.p50Ns = acct.latency.percentileNs(50.0);
        cs.p99Ns = acct.latency.percentileNs(99.0);
        cs.p999Ns = acct.latency.percentileNs(99.9);
        if (cs.sloNs > 0.0 && cs.completions > 0) {
            std::uint64_t within = 0;
            for (const sim::Tick t : acct.latency.samples()) {
                if (sim::toNs(t) <= cs.sloNs)
                    ++within;
            }
            cs.sloAttainment = static_cast<double>(within) /
                               static_cast<double>(cs.completions);
        }
        out.perClass.push_back(std::move(cs));
    }

    if (cfg.failOnVerifyError && out.verifyFailures > 0) {
        sim::fatal(sim::strfmt(
            "workload '%s': %llu of %llu replies failed application-"
            "level verification (set ExperimentConfig.failOnVerifyError "
            "= false to tolerate corrupted replies)",
            out.workload.c_str(),
            static_cast<unsigned long long>(out.verifyFailures),
            static_cast<unsigned long long>(out.completions)));
    }
    return out;
}

SweepResult
runSweep(const SweepConfig &cfg)
{
    RV_ASSERT(!cfg.arrivalRates.empty(), "sweep needs load points");
    // Spec-driven sweeps resolve base.workload per point; validate the
    // name up front so a typo dies before any point runs (and on the
    // main thread, with the full registry listing).
    if (cfg.appFactory == nullptr)
        (void)app::WorkloadRegistry::instance().make(cfg.base.workload);

    SweepResult result;
    result.series.label = cfg.label;
    result.runs.resize(cfg.arrivalRates.size());

    // Points are independent simulations; parallelize across a small
    // worker pool. Each worker builds its own app instance, so results
    // are identical regardless of thread count.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cfg.arrivalRates.size())
                return;
            ExperimentConfig point_cfg = cfg.base;
            point_cfg.arrivalRps = cfg.arrivalRates[i];
            // Decorrelate seeds across points without changing any
            // single point's behaviour when the grid changes.
            point_cfg.system.seed =
                cfg.base.system.seed + 0x1000 * (i + 1);
            auto app = cfg.appFactory != nullptr
                           ? cfg.appFactory()
                           : app::WorkloadRegistry::instance().make(
                                 point_cfg.workload);
            result.runs[i] = runExperiment(point_cfg, *app);
        }
    };

    const unsigned nthreads = std::max(1u, cfg.threads);
    if (nthreads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < nthreads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    for (const RunStats &run : result.runs)
        result.series.points.push_back(run.point);
    return result;
}

double
estimateCapacityRps(const node::SystemParams &system,
                    const app::RpcApplication &app)
{
    const double sbar_ns =
        app.meanProcessingNs() +
        sim::toNs(system.coreCosts.totalOverhead());
    return static_cast<double>(system.numCores) / (sbar_ns * 1e-9);
}

double
estimateCapacityRps(const node::SystemParams &system,
                    const app::WorkloadSpec &workload)
{
    const app::RpcApplicationPtr app =
        app::WorkloadRegistry::instance().make(workload);
    return estimateCapacityRps(system, *app);
}

std::vector<double>
loadGrid(double lo, double hi, std::size_t n)
{
    RV_ASSERT(n >= 2 && hi > lo && lo > 0.0, "bad load grid");
    std::vector<double> grid(n);
    for (std::size_t i = 0; i < n; ++i) {
        grid[i] = lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1);
    }
    return grid;
}

} // namespace rpcvalet::core
