#include "core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "cluster/router.hh"
#include "cluster/topology.hh"
#include "core/parallel.hh"
#include "fault/fault.hh"
#include "fault/packet_faults.hh"
#include "net/traffic_gen.hh"
#include "node/rpc_node.hh"
#include "sim/domain.hh"
#include "sim/logging.hh"

namespace rpcvalet::core {

namespace {

/** Events executed across all runs in this process (bench perf feed). */
std::atomic<std::uint64_t> g_simulatedEvents{0};

ComponentStats
component(const stats::LatencyRecorder &r)
{
    return ComponentStats{r.meanNs(), r.p99Ns()};
}

/** Per-class summary from a (possibly merged) recorder. */
ClassStats
classStats(const app::RequestClass &info,
           const stats::LatencyRecorder &rec, double window_s)
{
    ClassStats cs;
    cs.name = info.name;
    cs.latencyCritical = info.latencyCritical;
    cs.sloNs = info.sloNs;
    cs.completions = rec.count();
    if (window_s > 0.0) {
        cs.achievedRps =
            static_cast<double>(cs.completions) / window_s;
    }
    cs.meanNs = rec.meanNs();
    cs.p50Ns = rec.percentileNs(50.0);
    cs.p99Ns = rec.percentileNs(99.0);
    cs.p999Ns = rec.percentileNs(99.9);
    if (cs.sloNs > 0.0 && cs.completions > 0) {
        std::uint64_t within = 0;
        for (const sim::Tick t : rec.samples()) {
            if (sim::toNs(t) <= cs.sloNs)
                ++within;
        }
        cs.sloAttainment = static_cast<double>(within) /
                           static_cast<double>(cs.completions);
    }
    return cs;
}

/**
 * Connection-management harvest shared by both run paths: scheduler
 * stats, client-side admission accounting, the servers' summed QP-cache
 * hit/miss counters, and the modeled connection-state footprint
 * comparison (every-client-live vs one-group-live).
 */
void
harvestConnStats(const ExperimentConfig &cfg,
                 const net::TrafficGenerator &tg, std::uint64_t qp_hits,
                 std::uint64_t qp_misses, std::uint32_t num_servers,
                 RunStats &out)
{
    if (!cfg.connections.active())
        return;
    const conn::ConnScheduler *sched = tg.connScheduler();
    RV_ASSERT(sched != nullptr,
              "active connection config without a scheduler");
    const conn::ConnSchedStats ss = sched->stats();
    out.conn.scheduler = sched->name();
    out.conn.clients = cfg.connections.numClients;
    out.conn.groups = ss.groups;
    out.conn.qpCapacity = conn::effectiveQpCapacity(cfg.connections);
    out.conn.groupSwitches = ss.groupSwitches;
    out.conn.warmupHits = ss.warmupHits;
    out.conn.warmupMisses = ss.warmupMisses;
    out.conn.regroups = ss.regroups;
    out.conn.admittedImmediate = tg.connAdmittedImmediate();
    out.conn.deferredTotal = tg.connDeferred();
    out.conn.meanDeferredWaitNs =
        tg.connFlushed() > 0
            ? sim::toNs(tg.connDeferredWaitTicks()) /
                  static_cast<double>(tg.connFlushed())
            : 0.0;
    out.conn.activeP99Ns = tg.connActiveLatency().p99Ns();
    out.conn.inactiveP99Ns = tg.connInactiveLatency().p99Ns();
    out.conn.qpHits = qp_hits;
    out.conn.qpMisses = qp_misses;
    // Connection-state footprint model, per server: each live
    // connection pins its slot set's receive buffers plus QP metadata
    // (WQ/CQ descriptors, ~32 B + 64 B per slot). Grouping caps the
    // live set at one group — ScaleRPC's memory argument.
    const std::uint64_t perConn =
        static_cast<std::uint64_t>(cfg.system.domain.slotsPerNode) *
        (32 + cfg.system.domain.maxMsgBytes + 64);
    out.conn.qpFootprintAllBytes = static_cast<std::uint64_t>(
                                       cfg.connections.numClients) *
                                   perConn * num_servers;
    out.conn.qpFootprintGroupBytes =
        static_cast<std::uint64_t>(
            std::min(cfg.connections.numClients, out.conn.qpCapacity)) *
        perConn * num_servers;
    out.conn.perGroupAdmitted = tg.connPerGroupAdmitted();
    out.conn.perGroupDeferred = tg.connPerGroupDeferred();
    out.conn.perGroupP99Ns.reserve(tg.connPerGroupLatency().size());
    for (const auto &rec : tg.connPerGroupLatency())
        out.conn.perGroupP99Ns.push_back(rec.p99Ns());
}

void
checkVerifyFailures(const ExperimentConfig &cfg, const RunStats &out)
{
    if (cfg.failOnVerifyError && out.verifyFailures > 0) {
        sim::fatal(sim::strfmt(
            "workload '%s': %llu of %llu replies failed application-"
            "level verification (set ExperimentConfig.failOnVerifyError "
            "= false to tolerate corrupted replies)",
            out.workload.c_str(),
            static_cast<unsigned long long>(out.verifyFailures),
            static_cast<unsigned long long>(out.completions)));
    }
}

/**
 * The cluster experiment: N server nodes — each a full RpcNode with
 * its own NI dispatch — behind the traffic generator's cluster router,
 * every node attached to the fabric by an explicit connect.
 *
 * With cfg.parallelDomains == 0 everything shares one event wheel and
 * the measurement window opens/closes on exact cluster-wide completion
 * counts — the sequential path, bit-identical to previous releases.
 *
 * With cfg.parallelDomains >= 1 each server node owns an EventDomain
 * and the client side owns another; a WindowPool executes fabric-
 * lookahead windows with barrier mailbox exchanges in between
 * (conservative parallel DES). Measurement is barrier-quantized: the
 * window opens at the first barrier where cluster completions reach
 * the warmup count and closes at the first barrier past the target —
 * deterministic for every worker count, though not identical to the
 * sequential path's per-completion windowing.
 */
RunStats
runClusterExperiment(const ExperimentConfig &cfg)
{
    cfg.cluster.validate();
    cfg.retry.validate(cfg.cluster.requestTimeout);
    cfg.connections.validate();
    RV_ASSERT(cfg.arrivalRps > 0.0, "arrival rate must be positive");
    RV_ASSERT(cfg.measuredRpcs > 0, "need at least one measured RPC");
    const std::uint32_t numServers = cfg.cluster.numServerNodes;
    const bool par = cfg.parallelDomains > 0;
    const sim::Tick lookahead = cfg.system.fabricLatency;

    // Resolve the fault list against the cluster shape before
    // anything is built, so a bad spec dies here with the full
    // registry listing, not mid-run. The resolved timeline depends
    // only on the specs and the shape — never on execution order.
    const fault::Resolution faultPlan = fault::resolveFaults(
        effectiveFaults(cfg),
        fault::ResolveContext{numServers, cfg.system.numCores, par});
    if (faultPlan.dropsPackets() && cfg.cluster.requestTimeout == 0) {
        sim::fatal(
            "packet-loss faults need a request timeout "
            "(cluster.timeout / [cluster] timeout): a dropped request "
            "or reply is only recovered by the client's timeout-driven "
            "retry, so without one the run cannot complete");
    }

    // Domain layout: [0] the client/traffic side, [1 .. numServers]
    // one per server node. Sequential runs put everything on one
    // wheel, preserving the exact legacy event schedule.
    std::vector<std::unique_ptr<sim::EventDomain>> domains;
    if (par) {
        domains.push_back(
            std::make_unique<sim::EventDomain>(0, "client"));
        for (std::uint32_t i = 0; i < numServers; ++i) {
            domains.push_back(std::make_unique<sim::EventDomain>(
                i + 1,
                sim::strfmt("node%u", cfg.system.nodeId + i)));
        }
    } else {
        domains.push_back(std::make_unique<sim::EventDomain>(0, "main"));
    }
    std::vector<sim::EventDomain *> domainPtrs;
    domainPtrs.reserve(domains.size());
    for (auto &d : domains)
        domainPtrs.push_back(d.get());
    sim::EventDomain &clientSim = *domainPtrs.front();
    const auto serverSim = [&](std::uint32_t i) -> sim::EventDomain & {
        return par ? *domainPtrs[i + 1] : clientSim;
    };

    std::unique_ptr<net::Fabric> fabricPtr;
    if (par) {
        fabricPtr = std::make_unique<net::Fabric>(
            domainPtrs, cfg.system.fabricLatency, lookahead);
    } else {
        fabricPtr = std::make_unique<net::Fabric>(
            clientSim, cfg.system.fabricLatency);
    }
    net::Fabric &fabric = *fabricPtr;

    // Packet faults perturb every send at the fabric boundary. Per-
    // domain Rng lanes keep draw order deterministic under parallel
    // execution, and extra delay is additive-only, so the lookahead
    // invariant holds with faults active.
    std::unique_ptr<fault::PacketFaults> packetFaults;
    if (!faultPlan.packet.empty()) {
        packetFaults = std::make_unique<fault::PacketFaults>(
            faultPlan.packet, par ? numServers + 1 : 1, cfg.system.seed,
            cfg.system.nodeId, numServers);
        fabric.setPerturber(packetFaults.get());
    }

    // Construction-time registry lookups: every spec (workload,
    // router, arrival inside the traffic generator) resolves here on
    // the calling thread, before any domain worker exists — no static
    // registry is consulted once the run is in flight.
    //
    // One application instance per server node (independent stores;
    // correctness across replicas comes from the workloads' canonical
    // value verification) plus a client-side instance for request
    // generation and reply checking.
    std::vector<app::RpcApplicationPtr> apps;
    apps.reserve(numServers);
    std::vector<std::unique_ptr<node::RpcNode>> nodes;
    nodes.reserve(numServers);
    for (std::uint32_t i = 0; i < numServers; ++i) {
        node::SystemParams sys = cfg.system;
        sys.nodeId = cfg.system.nodeId + i;
        // Decorrelate per-node randomness (backend hash salts, policy
        // tie-breaks) without touching node 0's stream.
        if (i > 0)
            sys.seed = cfg.system.seed + 0x51D * i;
        // With loss faults a dropped reply starves its mirrored slot's
        // replenish forever; the lease (2x the client timeout, far
        // beyond any legitimate credit-return delay) lets the server
        // evict the dead occupant instead of spinning a core for the
        // rest of the run. Fault-free runs keep the legacy wait.
        if (faultPlan.dropsPackets())
            sys.replySlotLease = 2 * cfg.cluster.requestTimeout;
        // Connection management: a client population makes the NI's
        // connection-context cache finite (sized for one group).
        if (cfg.connections.active()) {
            sys.qpCacheCapacity =
                conn::effectiveQpCapacity(cfg.connections);
            sys.qpColdFetch =
                sim::nanoseconds(cfg.connections.qpColdNs);
        }
        sys.validate();
        apps.push_back(
            app::WorkloadRegistry::instance().make(cfg.workload));
        nodes.push_back(std::make_unique<node::RpcNode>(
            serverSim(i), sys, *apps.back(), fabric,
            /*warmup_samples=*/0));
        // Recorders run only inside the measurement window; the
        // completion hook / barrier loop below opens it cluster-wide.
        nodes.back()->setRecording(cfg.warmupRpcs == 0);
        if (par)
            fabric.assignNode(sys.nodeId, i + 1);
    }
    const std::vector<std::pair<sim::Tick, sim::Tick>> degraded =
        faultPlan.degradedWindows();
    if (!degraded.empty()) {
        for (auto &n : nodes)
            n->setDegradedWindows(degraded);
    }

    const app::RpcApplicationPtr clientApp =
        app::WorkloadRegistry::instance().make(cfg.workload);

    if (par && clientApp->requestsPerArrival() > 1.0) {
        sim::fatal(sim::strfmt(
            "workload '%s' issues nested RPC chains, which cross "
            "domains synchronously and cannot run under "
            "parallelDomains — use the sequential path "
            "(parallelDomains = 0)",
            clientApp->name().c_str()));
    }

    cluster::ShardMap shards(
        cfg.cluster.shards != 0 ? cfg.cluster.shards : numServers,
        numServers);
    cluster::HealthTracker health(numServers, cfg.cluster.failThreshold,
                                  cfg.cluster.recoveryAfter);
    const cluster::RouterPtr router =
        cluster::RouterRegistry::instance().make(cfg.cluster.router);

    net::TrafficGenerator::Params tp;
    tp.arrivalRps = cfg.arrivalRps;
    tp.arrival = cfg.arrival;
    tp.targetNode = cfg.system.nodeId;
    tp.numServers = numServers;
    tp.clientTurnaround = cfg.clientTurnaround;
    tp.requestTimeout = cfg.cluster.requestTimeout;
    tp.sweepInterval = cfg.cluster.sweepInterval;
    tp.retry = cfg.retry;
    if (par)
        tp.arrivalBatchWindow = lookahead;
    tp.connections = cfg.connections;
    tp.seed = cfg.system.seed;
    net::TrafficGenerator tg(clientSim, tp, cfg.system.domain,
                             *clientApp, fabric, router.get(), &health,
                             &shards);

    // Chained handlers (HandleResult.nested) issue their fan-out
    // through the generator's chain-group machinery. Wiring alone adds
    // no events; non-nesting workloads stay bit-identical. Parallel
    // runs leave it unwired (chained workloads fataled above; a stray
    // nested request then dies on the node's own missing-issuer check
    // instead of racing into the client domain).
    if (!par) {
        for (auto &n : nodes) {
            n->setNestedIssuer(
                [&tg](std::vector<std::vector<std::uint8_t>> requests,
                      std::function<void()> done) {
                    tg.issueNested(std::move(requests),
                                   std::move(done));
                });
        }
    }

    // Explicit topology wiring: every emulated client node gets its
    // own connect; nothing rides a default sink (a packet to a node
    // outside the topology is now a hard fabric error). Client nodes
    // stay unassigned, which places them on domain 0.
    for (proto::NodeId n = 0; n < cfg.system.domain.numNodes; ++n) {
        if (n >= cfg.system.nodeId && n < cfg.system.nodeId + numServers)
            continue; // the server nodes connected themselves
        fabric.connect(n, [&tg](proto::Packet pkt) {
            tg.receivePacket(std::move(pkt));
        });
    }

    // Timed faults arm as plain events on each victim node's own
    // domain wheel, at the exact setup position the legacy failNode
    // shim used — a bare crash reproduces the pre-fault event schedule
    // tick for tick.
    fault::FaultScheduler faultScheduler(
        faultPlan,
        fault::FaultScheduler::Hooks{
            [&nodes](std::uint32_t n, bool failed) {
                nodes[n]->setFailed(failed);
            },
            [&nodes](std::uint32_t n, sim::Tick until) {
                nodes[n]->stallNi(until);
            },
            [&nodes](std::uint32_t n, std::uint32_t core,
                     double factor) {
                nodes[n]->setCoreSlowdown(core, factor);
            }});
    faultScheduler.arm(
        [&](std::uint32_t i) -> sim::EventDomain & {
            return serverSim(i);
        });

    for (auto &n : nodes)
        n->start();
    tg.start();

    sim::Tick measure_start = 0;
    sim::Tick measure_end = 0;
    const std::uint64_t target = cfg.warmupRpcs + cfg.measuredRpcs;
    std::uint64_t measured_completions = cfg.measuredRpcs;
    std::uint64_t executed = 0;

    if (!par) {
        // Sequential: exact per-completion measurement window.
        std::uint64_t completed = 0;
        const auto hook = [&](bool, sim::Tick) {
            ++completed;
            if (completed == cfg.warmupRpcs) {
                measure_start = clientSim.now();
                for (auto &n : nodes)
                    n->setRecording(true);
            }
            if (completed == target) {
                measure_end = clientSim.now();
                tg.halt();
                clientSim.stop();
            }
        };
        for (auto &n : nodes)
            n->setCompletionHook(hook);
        clientSim.run();
        executed = clientSim.executedEvents();
    } else {
        // Conservative PDES: execute lookahead windows in parallel,
        // exchange cross-domain mail at each barrier, and quantize
        // the measurement window to barriers (worker-count invariant).
        WindowPool pool(std::min<unsigned>(
            cfg.parallelDomains,
            static_cast<unsigned>(domainPtrs.size())));
        bool recording = cfg.warmupRpcs == 0;
        std::uint64_t opened_total = 0;
        std::uint64_t last_executed = 0;
        sim::Tick window_start = 0;
        for (;;) {
            const sim::Tick window_end = window_start + lookahead;
            pool.run(domainPtrs, window_end - 1);
            // Barrier: every domain thread is quiescent from here on.
            std::uint64_t total = 0;
            for (auto &n : nodes)
                total += n->served();
            if (!recording && total >= cfg.warmupRpcs) {
                recording = true;
                measure_start = window_end;
                opened_total = total;
                for (auto &n : nodes)
                    n->setRecording(true);
            }
            if (recording && total >= target) {
                measure_end = window_end;
                measured_completions = total - opened_total;
                tg.halt();
                break;
            }
            fabric.exchangeWindow(window_end + lookahead);
            std::uint64_t executed_now = 0;
            bool pending = false;
            for (sim::EventDomain *d : domainPtrs) {
                executed_now += d->executedEvents();
                pending = pending || d->pendingEvents() != 0;
            }
            if (executed_now == last_executed && !pending) {
                sim::fatal(sim::strfmt(
                    "parallel run drained (no pending events in any "
                    "of %zu domains) at t=%llu before reaching the "
                    "completion target %llu (reached %llu) — is the "
                    "offered load compatible with warmup+measured?",
                    domainPtrs.size(),
                    static_cast<unsigned long long>(window_end),
                    static_cast<unsigned long long>(target),
                    static_cast<unsigned long long>(total)));
            }
            last_executed = executed_now;
            window_start = window_end;
        }
        for (sim::EventDomain *d : domainPtrs)
            executed += d->executedEvents();
    }

    const double window_s =
        measure_end > measure_start
            ? sim::toSeconds(measure_end - measure_start)
            : 0.0;

    RunStats out;
    out.workload = apps[0]->name();
    out.router = router->name();
    out.point.offeredRps = cfg.arrivalRps;

    // Merge per-node recorders into cluster-level ones.
    stats::LatencyRecorder critical(0);
    stats::LatencyRecorder all(0);
    node::RpcNode::Breakdown merged_bd;
    const std::size_t numClasses = apps[0]->requestClasses().size();
    std::vector<stats::LatencyRecorder> classRec(
        std::max<std::size_t>(numClasses, 1));
    std::uint64_t served_weight = 0;
    double service_weighted = 0.0;
    for (std::uint32_t i = 0; i < numServers; ++i) {
        const node::RpcNode &n = *nodes[i];
        for (const sim::Tick t : n.criticalLatency().samples())
            critical.record(t);
        for (const sim::Tick t : n.allLatency().samples())
            all.record(t);
        const auto &bd = n.breakdown();
        for (const sim::Tick t : bd.reassembly.samples())
            merged_bd.reassembly.record(t);
        for (const sim::Tick t : bd.dispatch.samples())
            merged_bd.dispatch.record(t);
        for (const sim::Tick t : bd.queueWait.samples())
            merged_bd.queueWait.record(t);
        for (const sim::Tick t : bd.service.samples())
            merged_bd.service.record(t);
        const auto &accts = n.classAccounting();
        for (std::size_t c = 0; c < accts.size(); ++c) {
            for (const sim::Tick t : accts[c].latency.samples())
                classRec[c].record(t);
        }
        service_weighted +=
            n.meanServiceTimeNs() * static_cast<double>(n.served());
        served_weight += n.served();

        NodeStats ns;
        ns.nodeId = cfg.system.nodeId + i;
        ns.failed = n.failed();
        ns.served = n.served();
        ns.criticalCompletions = n.servedCritical();
        ns.samples = n.allLatency().count();
        if (window_s > 0.0) {
            ns.achievedRps =
                static_cast<double>(ns.samples) / window_s;
        }
        ns.meanNs = n.allLatency().meanNs();
        ns.p50Ns = n.allLatency().percentileNs(50.0);
        ns.p99Ns = n.allLatency().percentileNs(99.0);
        ns.perCoreServed = n.perCoreServed();

        out.completions += n.served();
        out.criticalCompletions += n.servedCritical();
        out.replySlotStalls += n.replySlotStalls();
        out.fault.replySlotEvictions += n.replySlotEvictions();
        out.rendezvousRequests = tg.rendezvousRequests();
        out.preemptionYields += n.preemptionYields();
        out.recvSlotPeak =
            std::max(out.recvSlotPeak, n.recvSlotPeak());
        out.perCoreServed.insert(out.perCoreServed.end(),
                                 ns.perCoreServed.begin(),
                                 ns.perCoreServed.end());
        out.perNode.push_back(std::move(ns));
    }

    out.point.meanNs = critical.meanNs();
    out.point.p50Ns = critical.percentileNs(50.0);
    out.point.p90Ns = critical.percentileNs(90.0);
    out.point.p99Ns = critical.percentileNs(99.0);
    out.point.samples = critical.count();
    if (window_s > 0.0) {
        out.point.achievedRps =
            static_cast<double>(measured_completions) / window_s;
    }
    out.meanServiceNs =
        served_weight > 0
            ? service_weighted / static_cast<double>(served_weight)
            : 0.0;
    out.flowControlDeferrals = tg.flowControlDeferrals();
    out.verifyFailures = tg.verificationFailures();
    out.simulatedUs = sim::toUs(clientSim.now());
    out.executedEvents = executed;
    g_simulatedEvents.fetch_add(executed, std::memory_order_relaxed);
    out.breakdown.reassembly = component(merged_bd.reassembly);
    out.breakdown.dispatch = component(merged_bd.dispatch);
    out.breakdown.queueWait = component(merged_bd.queueWait);
    out.breakdown.service = component(merged_bd.service);
    const auto &classes = nodes[0]->classAccounting();
    for (std::size_t c = 0; c < classes.size(); ++c) {
        out.perClass.push_back(
            classStats(classes[c].info, classRec[c], window_s));
    }
    out.requestTimeouts = tg.requestTimeouts();
    out.failoverReroutes = tg.failoverReroutes();
    out.staleReplies = tg.staleReplies();
    out.nodesDown = health.nodesDown(clientSim.now());
    out.nestedRpcsSent = tg.nestedSent();
    out.chainsCompleted = tg.chainsCompleted();

    out.fault.retries = tg.retries();
    out.fault.retryDrops = tg.retryDrops();
    out.fault.hedgesSent = tg.hedgesSent();
    out.fault.hedgesWon = tg.hedgesWon();
    out.fault.duplicateReplies = tg.duplicateReplies();

    std::uint64_t qpHits = 0;
    std::uint64_t qpMisses = 0;
    for (const auto &n : nodes) {
        qpHits += n->qpCacheHits();
        qpMisses += n->qpCacheMisses();
    }
    harvestConnStats(cfg, tg, qpHits, qpMisses, numServers, out);
    if (packetFaults != nullptr) {
        out.fault.packetsDropped = packetFaults->dropped();
        out.fault.packetsDelayed = packetFaults->delayed();
        out.fault.packetsCorrupted = packetFaults->corrupted();
    }
    out.fault.activations = faultPlan.timeline;
    if (!degraded.empty()) {
        stats::LatencyRecorder deg(0);
        stats::LatencyRecorder healthy(0);
        for (const auto &n : nodes) {
            for (const sim::Tick t : n->degradedCritical().samples())
                deg.record(t);
            for (const sim::Tick t : n->healthyCritical().samples())
                healthy.record(t);
        }
        out.fault.degradedP99Ns = deg.percentileNs(99.0);
        out.fault.degradedSamples = deg.count();
        out.fault.healthyP99Ns = healthy.percentileNs(99.0);
        out.fault.healthySamples = healthy.count();
    }

    // Under injected corruption, failed verifications are the expected
    // signal (the client-side checksum caught the flipped byte), not a
    // simulator bug — report them as detections instead of dying.
    if (faultPlan.corruptsReplies())
        out.fault.corruptionsDetected = out.verifyFailures;
    else
        checkVerifyFailures(cfg, out);
    return out;
}

/**
 * The single-node, single-wheel experiment — the default fast path,
 * bit-identical to previous releases (locked by
 * tests/core/kernel_identity_test.cc).
 */
RunStats
runSingleNodeExperiment(const ExperimentConfig &cfg,
                        app::RpcApplication &app)
{
    cfg.system.validate();
    cfg.cluster.validate();
    cfg.retry.validate(cfg.cluster.requestTimeout);
    cfg.connections.validate();
    // Validate the router spec even though a single-node run never
    // consults it: a typo should die here, not when the config is
    // later scaled up.
    (void)cluster::RouterRegistry::instance().make(cfg.cluster.router);
    RV_ASSERT(cfg.arrivalRps > 0.0, "arrival rate must be positive");
    RV_ASSERT(cfg.measuredRpcs > 0, "need at least one measured RPC");

    // A client population makes the NI's connection-context cache
    // finite; default configs pass cfg.system through untouched.
    node::SystemParams sys = cfg.system;
    if (cfg.connections.active()) {
        sys.qpCacheCapacity = conn::effectiveQpCapacity(cfg.connections);
        sys.qpColdFetch = sim::nanoseconds(cfg.connections.qpColdNs);
    }

    sim::EventDomain sim;
    net::Fabric fabric(sim, cfg.system.fabricLatency);
    node::RpcNode node(sim, sys, app, fabric, cfg.warmupRpcs);

    net::TrafficGenerator::Params tp;
    tp.arrivalRps = cfg.arrivalRps;
    tp.arrival = cfg.arrival;
    tp.targetNode = cfg.system.nodeId;
    tp.clientTurnaround = cfg.clientTurnaround;
    tp.connections = cfg.connections;
    tp.seed = cfg.system.seed;
    net::TrafficGenerator tg(sim, tp, cfg.system.domain, app, fabric);
    node.setNestedIssuer(
        [&tg](std::vector<std::vector<std::uint8_t>> requests,
              std::function<void()> done) {
            tg.issueNested(std::move(requests), std::move(done));
        });
    // Explicit topology wiring: one connect per emulated client node
    // (no default sink — a packet to an unknown node is a hard fabric
    // error, not silently absorbed).
    for (proto::NodeId n = 0; n < cfg.system.domain.numNodes; ++n) {
        if (n == cfg.system.nodeId)
            continue; // the server node connected itself
        fabric.connect(n, [&tg](proto::Packet pkt) {
            tg.receivePacket(std::move(pkt));
        });
    }

    sim::Tick measure_start = 0;
    sim::Tick measure_end = 0;
    const std::uint64_t target = cfg.warmupRpcs + cfg.measuredRpcs;
    node.setCompletionHook([&](bool, sim::Tick) {
        const std::uint64_t total = node.served();
        if (total == cfg.warmupRpcs)
            measure_start = sim.now();
        if (total == target) {
            measure_end = sim.now();
            tg.halt();
            sim.stop();
        }
    });

    node.start();
    tg.start();
    sim.run();

    RunStats out;
    out.workload = app.name();
    out.router = cfg.cluster.router.toString();
    out.point.offeredRps = cfg.arrivalRps;
    const auto &rec = node.criticalLatency();
    out.point.meanNs = rec.meanNs();
    out.point.p50Ns = rec.percentileNs(50.0);
    out.point.p90Ns = rec.percentileNs(90.0);
    out.point.p99Ns = rec.percentileNs(99.0);
    out.point.samples = rec.count();
    const double window_s = measure_end > measure_start
                                ? sim::toSeconds(measure_end -
                                                 measure_start)
                                : 0.0;
    if (window_s > 0.0) {
        out.point.achievedRps =
            static_cast<double>(cfg.measuredRpcs) / window_s;
    }
    out.meanServiceNs = node.meanServiceTimeNs();
    out.completions = node.served();
    out.criticalCompletions = node.servedCritical();
    out.replySlotStalls = node.replySlotStalls();
    out.flowControlDeferrals = tg.flowControlDeferrals();
    out.verifyFailures = tg.verificationFailures();
    out.simulatedUs = sim::toUs(sim.now());
    out.executedEvents = sim.executedEvents();
    g_simulatedEvents.fetch_add(sim.executedEvents(),
                                std::memory_order_relaxed);
    out.perCoreServed = node.perCoreServed();
    out.recvSlotPeak = node.recvSlotPeak();
    out.rendezvousRequests = tg.rendezvousRequests();
    out.preemptionYields = node.preemptionYields();
    const auto &bd = node.breakdown();
    out.breakdown.reassembly = component(bd.reassembly);
    out.breakdown.dispatch = component(bd.dispatch);
    out.breakdown.queueWait = component(bd.queueWait);
    out.breakdown.service = component(bd.service);

    // Per-class breakdown: full tail accounting for every declared
    // request class, non-critical ones (scans) included.
    for (const auto &acct : node.classAccounting())
        out.perClass.push_back(
            classStats(acct.info, acct.latency, window_s));

    // The single node as a one-entry cluster view.
    NodeStats ns;
    ns.nodeId = cfg.system.nodeId;
    ns.failed = node.failed();
    ns.served = node.served();
    ns.criticalCompletions = node.servedCritical();
    ns.samples = node.allLatency().count();
    if (window_s > 0.0)
        ns.achievedRps = static_cast<double>(ns.samples) / window_s;
    ns.meanNs = node.allLatency().meanNs();
    ns.p50Ns = node.allLatency().percentileNs(50.0);
    ns.p99Ns = node.allLatency().percentileNs(99.0);
    ns.perCoreServed = node.perCoreServed();
    out.perNode.push_back(std::move(ns));
    out.requestTimeouts = tg.requestTimeouts();
    out.failoverReroutes = tg.failoverReroutes();
    out.staleReplies = tg.staleReplies();
    out.nestedRpcsSent = tg.nestedSent();
    out.chainsCompleted = tg.chainsCompleted();
    harvestConnStats(cfg, tg, node.qpCacheHits(), node.qpCacheMisses(),
                     /*num_servers=*/1, out);

    checkVerifyFailures(cfg, out);
    return out;
}

} // namespace

std::uint64_t
totalSimulatedEvents()
{
    return g_simulatedEvents.load(std::memory_order_relaxed);
}

std::vector<fault::FaultSpec>
effectiveFaults(const ExperimentConfig &cfg)
{
    std::vector<fault::FaultSpec> specs = cfg.faults;
    if (cfg.cluster.failNode >= 0) {
        // Legacy shim: the old hard-coded (failNode, failAt) pair is
        // just a crash fault with no recovery.
        specs.emplace_back(
            sim::strfmt("crash:node=%d,at=%.3fns", cfg.cluster.failNode,
                        sim::toNs(cfg.cluster.failAt)));
    }
    return specs;
}

RunStats
runExperiment(const ExperimentConfig &cfg)
{
    // Any fault or active retry policy routes through the cluster
    // path — the single-node fast path has no fabric perturbation or
    // timeout sweep to hang them on.
    if (cfg.cluster.numServerNodes > 1 || cfg.parallelDomains > 0 ||
        !cfg.faults.empty() || cfg.retry.active())
        return runClusterExperiment(cfg);
    const app::RpcApplicationPtr app =
        app::WorkloadRegistry::instance().make(cfg.workload);
    return runSingleNodeExperiment(cfg, *app);
}

SweepResult
runSweep(const SweepConfig &cfg)
{
    if (cfg.threads < 1 || cfg.threads > 1024) {
        sim::fatal(sim::strfmt(
            "sweep config: threads must be in [1, 1024] (got %u)",
            cfg.threads));
    }
    if (cfg.arrivalRates.empty()) {
        sim::fatal("sweep config: arrivalRates is empty — a sweep "
                   "needs at least one load point");
    }
    for (std::size_t i = 1; i < cfg.arrivalRates.size(); ++i) {
        if (!(cfg.arrivalRates[i] > cfg.arrivalRates[i - 1])) {
            sim::fatal(sim::strfmt(
                "sweep config: arrivalRates must be strictly ascending "
                "(rate[%zu] = %g does not exceed rate[%zu] = %g)",
                i, cfg.arrivalRates[i], i - 1,
                cfg.arrivalRates[i - 1]));
        }
    }
    // Validate the workload name up front so a typo dies before any
    // point runs (and on the main thread, with the full registry
    // listing).
    (void)app::WorkloadRegistry::instance().make(cfg.base.workload);

    SweepResult result;
    result.series.label = cfg.label;
    result.runs.resize(cfg.arrivalRates.size());

    // Points are independent simulations; fan them out over the
    // shared worker pool. Each point builds its own app instances, so
    // results are identical regardless of thread count. The thread
    // budget is split with any per-point domain parallelism.
    runIndexedParallel(
        cfg.arrivalRates.size(),
        pointConcurrency(cfg.threads, cfg.base.parallelDomains),
        [&](std::size_t i) {
            ExperimentConfig point_cfg = cfg.base;
            point_cfg.arrivalRps = cfg.arrivalRates[i];
            // Decorrelate seeds across points without changing any
            // single point's behaviour when the grid changes.
            point_cfg.system.seed =
                cfg.base.system.seed + 0x1000 * (i + 1);
            result.runs[i] = runExperiment(point_cfg);
        });

    for (const RunStats &run : result.runs)
        result.series.points.push_back(run.point);
    return result;
}

double
estimateCapacityRps(const node::SystemParams &system,
                    const app::RpcApplication &app)
{
    const double sbar_ns =
        app.meanProcessingNs() +
        sim::toNs(system.coreCosts.totalOverhead());
    // Chained workloads serve requestsPerArrival() RPCs per client
    // arrival, so a node's arrival capacity shrinks by that factor
    // (1.0 for ordinary workloads).
    return static_cast<double>(system.numCores) /
           (sbar_ns * 1e-9 * app.requestsPerArrival());
}

double
estimateCapacityRps(const node::SystemParams &system,
                    const app::WorkloadSpec &workload)
{
    const app::RpcApplicationPtr app =
        app::WorkloadRegistry::instance().make(workload);
    return estimateCapacityRps(system, *app);
}

std::vector<double>
loadGrid(double lo, double hi, std::size_t n)
{
    RV_ASSERT(n >= 2 && hi > lo && lo > 0.0, "bad load grid");
    std::vector<double> grid(n);
    for (std::size_t i = 0; i < n; ++i) {
        grid[i] = lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1);
    }
    return grid;
}

} // namespace rpcvalet::core
