/**
 * @file
 * Public experiment API: one-stop entry points for running the
 * RPCValet system under a workload and for sweeping offered load into
 * tail-latency-vs-throughput curves (the data behind every evaluation
 * figure).
 *
 * A run is fully declarative: the dispatch mode, the dispatch policy,
 * the arrival process, and the workload are all selected by config
 * values (the latter three by registry-validated spec strings), so an
 * experiment is one config struct (see examples/quickstart.cc):
 *
 *   node::SystemParams sys;                    // Table 1 defaults
 *   sys.mode = ni::DispatchMode::SingleQueue;  // RPCValet
 *   sys.policy = "greedy";                     // any registered spec,
 *                                              // e.g. "jbsq:d=2"
 *   core::ExperimentConfig cfg;
 *   cfg.system = sys;
 *   cfg.arrivalRps = 10e6;
 *   cfg.arrival = "mmpp2:burst=0.1,ratio=10";  // default "poisson"
 *   cfg.workload = "masstree:scan_ratio=0.01"; // default "herd";
 *                                              // composites work too:
 *                                              // "mix:masstree-get=
 *                                              //  0.998,masstree-scan
 *                                              //  =0.002"
 *   core::RunStats stats = core::runExperiment(cfg);
 *   // stats.point        headline (latency-critical) tail metrics
 *   // stats.perClass     per-request-class throughput/p50/p99/p99.9
 *   //                    and SLO attainment (scans included)
 *
 * runExperiment(cfg) is the single experiment entry point: custom
 * applications plug in by registering a factory with the
 * app::WorkloadRegistry (see app/workload.hh) and naming its spec in
 * cfg.workload. The former runExperiment(cfg, app) / appFactory shims
 * that took caller-constructed app::RpcApplication instances are gone.
 *
 * Setting cfg.parallelDomains >= 1 executes the run as conservative
 * parallel DES: one sim::EventDomain per server node plus one for the
 * client side, synchronized in fabric-lookahead windows by a
 * core::WindowPool (see sim/domain.hh and net/fabric.hh).
 */

#ifndef RPCVALET_CORE_EXPERIMENT_HH
#define RPCVALET_CORE_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/rpc_application.hh"
#include "app/workload.hh"
#include "cluster/cluster.hh"
#include "conn/conn.hh"
#include "fault/fault.hh"
#include "net/arrival.hh"
#include "node/params.hh"
#include "stats/series.hh"

namespace rpcvalet::core {

/** Configuration of a single fixed-load run. */
struct ExperimentConfig
{
    /** System under test (Table 1 defaults). */
    node::SystemParams system{};
    /** Offered aggregate arrival rate, requests per second. */
    double arrivalRps = 1e6;
    /**
     * Interarrival process shaping that rate, looked up in the
     * net::ArrivalRegistry by spec string — e.g. "poisson" (default),
     * "mmpp2:burst=0.1,ratio=10", "lognormal:cv=4", "deterministic",
     * "ramp:from=0.5,to=1.5,over=1ms", "trace:file=gaps.txt".
     */
    net::ArrivalSpec arrival{};
    /**
     * Workload served by the node, looked up in the
     * app::WorkloadRegistry by spec string — e.g. "herd" (default),
     * "masstree:scan_ratio=0.01", "synthetic:dist=gev", or the
     * composite "mix:CLASS=WEIGHT,..." blending any registered
     * workloads with per-request class tags. Custom applications
     * register a factory (app::WorkloadRegistrar) and are selected
     * here like any built-in.
     */
    app::WorkloadSpec workload{};
    /**
     * Cluster topology: how many server nodes run behind the cluster
     * router, how the keyspace shards over them, and the failover
     * knobs (see cluster/cluster.hh). The default — one server node,
     * "direct" router — is the single-node configuration and is
     * bit-identical to the pre-cluster experiment core. With
     * numServerNodes > 1, runExperiment(cfg) instantiates one
     * application + RpcNode per server (each with its own NI dispatch)
     * and the traffic generator addresses each request through the
     * router — two-level load balancing: router picks the node, the
     * node's NI picks the core.
     */
    cluster::ClusterConfig cluster{};
    /**
     * Fault injection: fault specs resolved through the
     * fault::FaultRegistry and armed before the run starts — e.g.
     * "crash:node=3,at=100us,recover_after=300us",
     * "packet-loss:p=0.01". Empty (the default) injects nothing and
     * keeps the run bit-identical to a fault-free build. Any fault
     * routes the run through the cluster path (timed faults need
     * per-node scheduling), so single-node configs with faults pay the
     * cluster harness's (identical-result) setup.
     */
    std::vector<fault::FaultSpec> faults;
    /**
     * Client-side recovery policy for timed-out requests: exponential
     * backoff against an attempt budget, optional hedged duplicate
     * sends (see fault::RetryPolicy). The defaults reproduce the
     * legacy unlimited-immediate-redispatch behavior bit-identically.
     * An active policy requires cluster.requestTimeout > 0.
     */
    fault::RetryPolicy retry{};
    /** Completions discarded before measurement starts. */
    std::uint64_t warmupRpcs = 20000;
    /** Completions measured after warmup. */
    std::uint64_t measuredRpcs = 200000;
    /** Client-side turnaround before reply replenishes return. */
    sim::Tick clientTurnaround = sim::nanoseconds(100.0);
    /**
     * 0 (default): the whole run executes on one event wheel — the
     * exact sequential kernel, bit-identical to previous releases.
     *
     * N >= 1: conservative parallel DES. The run decomposes into one
     * EventDomain per server node plus one for the client side, all
     * executing lookahead windows (window length = fabric link
     * latency) on a pool of N worker threads; cross-domain packets
     * cross at window barriers through fabric mailboxes. Results are
     * bit-identical for every N >= 1 — but not to the N == 0 global
     * wheel, whose same-tick cross-node interleaving and
     * per-completion (rather than per-barrier) measurement windows
     * parallel execution deliberately does not reproduce (see README
     * "The event model"). Chained (nested-RPC) workloads require
     * synchronous cross-node issue and are fatal with N >= 1.
     */
    unsigned parallelDomains = 0;
    /**
     * Connection management (src/conn/): a logical-client population
     * multiplexed over the emulated client nodes, gated by a
     * registered connection scheduler ("all", "grouped:size=,slice=")
     * under a finite server-side QP cache. The default (numClients ==
     * 0) models no client population and is bit-identical to the
     * pre-connection build: no extra Rng draws, no extra events, no
     * QP-cache accounting.
     */
    conn::ConnConfig connections{};
    /**
     * fatal() when any reply fails application-level verification
     * (previously verifyFailures was silently reported in RunStats, so
     * a corrupted-reply regression could land unnoticed). On by
     * default — every test and bench inherits the check; opt out for
     * experiments that deliberately corrupt replies.
     */
    bool failOnVerifyError = true;
};

/** Mean/p99 pair for one latency component. */
struct ComponentStats
{
    double meanNs = 0.0;
    double p99Ns = 0.0;
};

/** Where an RPC's latency is spent (all RPCs, first packet ->
 *  replenish). Queueing shows up in `dispatch` (shared-CQ + credit
 *  wait, or software lock wait) and `queueWait` (private CQ). */
struct LatencyBreakdown
{
    ComponentStats reassembly;
    ComponentStats dispatch;
    ComponentStats queueWait;
    ComponentStats service;
};

/**
 * Measured statistics of one request class (see app::RequestClass):
 * the per-class breakdown behind the headline numbers. Non-critical
 * classes (e.g. Masstree scans) get full tail accounting here even
 * though they are excluded from `point`.
 */
struct ClassStats
{
    /** Class name ("get", "scan", "herd", ...). */
    std::string name;
    /** Whether the class counts toward the headline tail metric. */
    bool latencyCritical = true;
    /** Declared per-class p99 SLO bound, ns (0 = none declared). */
    double sloNs = 0.0;
    /** Post-warmup completions of this class. */
    std::uint64_t completions = 0;
    /** Per-class completion throughput over the measurement window. */
    double achievedRps = 0.0;
    /** Latency statistics over this class's post-warmup samples. */
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    double p999Ns = 0.0;
    /**
     * Fraction of this class's samples with latency <= sloNs (1.0
     * when the class declares no SLO or saw no samples).
     */
    double sloAttainment = 1.0;
};

/** Per-server-node statistics of a cluster run (imbalance and
 *  failover diagnostics; cluster totals live in RunStats itself). */
struct NodeStats
{
    /** Fabric node id of this server. */
    proto::NodeId nodeId = 0;
    /** Whether the node ended the run failed (fault injection). */
    bool failed = false;
    /** All completions on this node, warmup included. */
    std::uint64_t served = 0;
    /** Latency-critical completions on this node. */
    std::uint64_t criticalCompletions = 0;
    /** Post-warmup completion rate of this node. */
    double achievedRps = 0.0;
    /** Latency over this node's post-warmup RPCs (all classes). */
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    /** Post-warmup latency samples behind those percentiles. */
    std::uint64_t samples = 0;
    /** Per-core served counts on this node. */
    std::vector<std::uint64_t> perCoreServed;
};

/** Fault-injection and recovery accounting of one run. */
struct FaultStats
{
    /** Timed-out requests re-dispatched under the retry policy. */
    std::uint64_t retries = 0;
    /** Requests abandoned after exhausting the attempt budget. */
    std::uint64_t retryDrops = 0;
    /** Hedged duplicate sends issued. */
    std::uint64_t hedgesSent = 0;
    /** Hedge races the duplicate won. */
    std::uint64_t hedgesWon = 0;
    /** Replies from the losing half of a hedge race. */
    std::uint64_t duplicateReplies = 0;
    /** Packets dropped by packet-loss faults. */
    std::uint64_t packetsDropped = 0;
    /** Packets that paid packet-delay extra latency. */
    std::uint64_t packetsDelayed = 0;
    /** Reply payloads corrupted in flight. */
    std::uint64_t packetsCorrupted = 0;
    /** Corruptions the client's reply verification caught. */
    std::uint64_t corruptionsDetected = 0;
    /** Dead reply-slot occupants servers evicted after the reply-slot
     *  lease expired (their replies were lost to packet loss). */
    std::uint64_t replySlotEvictions = 0;
    /** The run's resolved fault activation log, in (time, declaration)
     *  order — deterministic across sequential and parallel runs. */
    std::vector<fault::Activation> activations;
    /** p99 of latency-critical RPCs completed inside / outside the
     *  union of timed fault windows (0 when no samples landed there).
     *  Only populated when timed faults declare windows. */
    double degradedP99Ns = 0.0;
    std::uint64_t degradedSamples = 0;
    double healthyP99Ns = 0.0;
    std::uint64_t healthySamples = 0;
};

/** Connection-management accounting of one run (all zero/empty when
 *  cfg.connections is inactive). */
struct ConnStats
{
    /** Canonical scheduler spec ("all", "grouped:size=40,..."). */
    std::string scheduler;
    /** Logical-client population size. */
    std::uint32_t clients = 0;
    /** Connection groups the population partitioned into. */
    std::uint32_t groups = 0;
    /** Server-NI QP-cache capacity the run resolved to. */
    std::uint32_t qpCapacity = 0;
    /** Completed group context switches. */
    std::uint64_t groupSwitches = 0;
    /** Warmup pre-admissions that released a queued request. */
    std::uint64_t warmupHits = 0;
    /** Warmup pre-admissions that found nothing queued. */
    std::uint64_t warmupMisses = 0;
    /** End-of-epoch priority regroupings. */
    std::uint64_t regroups = 0;
    /** Requests admitted without deferral. */
    std::uint64_t admittedImmediate = 0;
    /** Requests deferred until their client's group became active. */
    std::uint64_t deferredTotal = 0;
    /** Mean admission wait of released deferred requests, ns. */
    double meanDeferredWaitNs = 0.0;
    /** Client-observed p99 of immediately admitted requests, ns. */
    double activeP99Ns = 0.0;
    /** Client-observed p99 of deferred requests (wait included), ns. */
    double inactiveP99Ns = 0.0;
    /** QP-cache hits/misses summed over the server nodes; each miss
     *  paid the qpColdFetch penalty before dispatch. */
    std::uint64_t qpHits = 0;
    std::uint64_t qpMisses = 0;
    /** Modeled server-side connection-state footprint if every client
     *  held live QP/slot state at once (bytes, whole cluster). */
    std::uint64_t qpFootprintAllBytes = 0;
    /** Footprint with only one group's connections live (bytes). */
    std::uint64_t qpFootprintGroupBytes = 0;
    /** Per-group-position admitted / deferred counts and client-
     *  observed p99, indexed by group position. */
    std::vector<std::uint64_t> perGroupAdmitted;
    std::vector<std::uint64_t> perGroupDeferred;
    std::vector<double> perGroupP99Ns;
};

/** Results of one run. */
struct RunStats
{
    /** Name of the workload served (app::RpcApplication::name()). */
    std::string workload;
    /** Canonical cluster router spec of the run (e.g. "direct"). */
    std::string router;
    /** Offered/achieved throughput and latency percentiles over
     *  latency-critical RPCs. */
    stats::LoadPoint point;
    /** Measured mean core occupancy per RPC (S-bar), ns. */
    double meanServiceNs = 0.0;
    /** All completions (including non-critical, e.g. scans). */
    std::uint64_t completions = 0;
    /** Latency-critical completions. */
    std::uint64_t criticalCompletions = 0;
    /** Reply-slot stalls at the cores (§4.2 flow control). */
    std::uint64_t replySlotStalls = 0;
    /** Arrivals deferred by per-source slot flow control. */
    std::uint64_t flowControlDeferrals = 0;
    /** Application-level reply verification failures (must be 0). */
    std::uint64_t verifyFailures = 0;
    /** Total simulated time, us. */
    double simulatedUs = 0.0;
    /** Simulator events executed by this run (kernel-determinism
     *  fingerprint: any change in event flow moves this count). */
    std::uint64_t executedEvents = 0;
    /** Per-core served counts (load-balance diagnostics). */
    std::vector<std::uint64_t> perCoreServed;
    /** Peak busy receive slots. */
    std::uint32_t recvSlotPeak = 0;
    /** Requests that used the rendezvous large-message path (§4.2). */
    std::uint64_t rendezvousRequests = 0;
    /** Preemption yields taken (Shinjuku-style extension). */
    std::uint64_t preemptionYields = 0;
    /** Latency decomposition along the RPC pipeline. */
    LatencyBreakdown breakdown;
    /** Per-request-class breakdown, indexed like the workload's
     *  requestClasses() (scans and other non-critical classes
     *  included). */
    std::vector<ClassStats> perClass;
    /** Per-server-node breakdown (one entry per cluster node; a
     *  single-node run has exactly one). */
    std::vector<NodeStats> perNode;
    /** Requests that exceeded the cluster request timeout. */
    std::uint64_t requestTimeouts = 0;
    /** Requests re-dispatched after a timeout or node mark-down. */
    std::uint64_t failoverReroutes = 0;
    /** Replies that arrived after their request had timed out. */
    std::uint64_t staleReplies = 0;
    /** Server nodes the health tracker held down at run end. */
    std::uint32_t nodesDown = 0;
    /** Nested RPCs issued on behalf of chained handlers. */
    std::uint64_t nestedRpcsSent = 0;
    /** Nested-RPC chain groups whose every member completed. */
    std::uint64_t chainsCompleted = 0;
    /** Fault-injection / recovery accounting (all zero and empty in
     *  fault-free runs). */
    FaultStats fault;
    /** Connection-management accounting (all zero and empty without a
     *  client population). */
    ConnStats conn;
};

/**
 * Run one fixed-load experiment to completion, instantiating the
 * workload from cfg.workload through the app::WorkloadRegistry. With
 * cfg.cluster.numServerNodes > 1 this builds the full cluster (one
 * application + RpcNode per server, router in front) and aggregates
 * per-node statistics into cluster totals.
 */
RunStats runExperiment(const ExperimentConfig &cfg);

/**
 * The fault list a run actually injects: cfg.faults plus the legacy
 * ClusterConfig (failNode, failAt) pair synthesized as a crash spec.
 * Resolve against the cluster shape for the static activation
 * timeline (used by runExperiment and rpcvalet_run --explain-faults).
 */
std::vector<fault::FaultSpec> effectiveFaults(const ExperimentConfig &cfg);

/** Configuration of a load sweep. */
struct SweepConfig
{
    /** Template for each run (arrivalRps is overridden per point). */
    ExperimentConfig base{};
    /** Offered rates to sweep, requests per second. Must be non-empty
     *  and strictly ascending (validated fatally by runSweep). */
    std::vector<double> arrivalRates;
    /** Series label (e.g. "1x16"). */
    std::string label;
    /**
     * Total thread budget for the sweep (1 = sequential). Must be in
     * [1, 1024] (validated fatally by runSweep). Point-level and
     * domain-level parallelism share this budget: with
     * base.parallelDomains = P, up to max(1, threads / max(1, P))
     * points run concurrently, each on P domain workers (see
     * core::pointConcurrency).
     */
    unsigned threads = 1;
};

/** A sweep's curve plus the full per-point stats. */
struct SweepResult
{
    stats::Series series;
    std::vector<RunStats> runs;
};

/** Run a load sweep (deterministic regardless of thread count). */
SweepResult runSweep(const SweepConfig &cfg);

/**
 * First-order capacity estimate: numCores / S-bar, with S-bar
 * approximated as mean processing time + per-RPC loop overhead, scaled
 * down by the workload's requestsPerArrival() (chained workloads serve
 * a whole fan-out tree per client arrival). Used by benches and the
 * scenario runner to place load grids.
 */
double estimateCapacityRps(const node::SystemParams &system,
                           const app::RpcApplication &app);

/** Spec-driven convenience: estimate capacity for a workload spec. */
double estimateCapacityRps(const node::SystemParams &system,
                           const app::WorkloadSpec &workload);

/** Convenience: n evenly spaced utilization points in [lo, hi]. */
std::vector<double> loadGrid(double lo, double hi, std::size_t n);

/**
 * Process-wide count of simulator events executed by every
 * runExperiment call so far (thread-safe; sweeps run threaded). The
 * bench harness divides it by wall-clock time to report kernel
 * events/sec in each bench's summary and --json output.
 */
std::uint64_t totalSimulatedEvents();

} // namespace rpcvalet::core

#endif // RPCVALET_CORE_EXPERIMENT_HH
