#include "core/registry_listing.hh"

#include "app/workload.hh"
#include "cluster/router.hh"
#include "conn/conn.hh"
#include "fault/fault.hh"
#include "net/arrival.hh"
#include "ni/policy_registry.hh"

namespace rpcvalet::core {

std::vector<RegistryAxis>
listRegistries()
{
    // Each instance() links its built-in registrars before first use,
    // so the listing is complete no matter which components the
    // caller has touched so far.
    return {
        {"policy", ni::PolicyRegistry::instance().names()},
        {"arrival", net::ArrivalRegistry::instance().names()},
        {"workload", app::WorkloadRegistry::instance().names()},
        {"router", cluster::RouterRegistry::instance().names()},
        {"fault", fault::FaultRegistry::instance().names()},
        {"conn", conn::ConnRegistry::instance().names()},
    };
}

std::string
formatRegistryListing()
{
    std::string out;
    for (const RegistryAxis &axis : listRegistries()) {
        out += axis.axis;
        out += ":";
        for (std::size_t i = 0; i < axis.names.size(); ++i) {
            out += i == 0 ? " " : ", ";
            out += axis.names[i];
        }
        out += "\n";
    }
    return out;
}

} // namespace rpcvalet::core
