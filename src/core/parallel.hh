/**
 * @file
 * Shared parallel-execution primitives for the experiment layer.
 *
 * Two independent levels of parallelism compose here through one
 * thread-budget knob:
 *
 *  - Point level: independent simulations (sweep points, scenario
 *    matrix points) fan out over runIndexedParallel() — the single
 *    worker-pool implementation behind both core::runSweep and
 *    scenario::runScenario.
 *  - Domain level: one simulation splits into per-node EventDomains
 *    executed in conservative lookahead windows by a WindowPool.
 *
 * pointConcurrency() divides a caller's total thread budget between
 * the two levels: a sweep with threads = 8 over points that each use
 * parallelDomains = 4 runs 2 points at a time.
 */

#ifndef RPCVALET_CORE_PARALLEL_HH
#define RPCVALET_CORE_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/domain.hh"

namespace rpcvalet::core {

/**
 * Run fn(0), ..., fn(count - 1) across up to @p threads workers, each
 * worker claiming the next unclaimed index until none remain. With
 * threads <= 1 the calls run inline, in order. fn must make each index
 * independent of the others (no cross-index ordering is guaranteed).
 */
void runIndexedParallel(std::size_t count, unsigned threads,
                        const std::function<void(std::size_t)> &fn);

/**
 * How many points may run concurrently under a total thread budget of
 * @p threads when each point itself occupies max(1, parallelDomains)
 * threads. Never returns 0.
 */
unsigned pointConcurrency(unsigned threads, unsigned parallelDomains);

/**
 * A persistent pool of workers executing lookahead windows across a
 * set of EventDomains: each run() call is one window — every domain's
 * runUntil(until) executes exactly once, claimed dynamically by
 * whichever worker gets there first, and run() returns only when all
 * are done (the window barrier).
 *
 * The synchronization is a spin barrier, not a mutex/condvar pair: at
 * µs-scale lookahead a window often carries only tens of events per
 * domain, so wakeup latency would dominate. Workers spin on a
 * generation counter (with periodic yields), the coordinator
 * publishes a window with a release increment and waits for every
 * worker's release-signed completion — those acquire/release pairs
 * are also what hands domain ownership between threads (see
 * sim/domain.hh).
 *
 * Determinism: which worker executes which domain is racy by design,
 * but domains are mutually isolated inside a window (fabric lookahead
 * invariant), so results are bit-identical for any worker count >= 1.
 * With workers == 1 no threads are spawned and run() executes the
 * domains inline, in order.
 */
class WindowPool
{
  public:
    /** @param workers Total workers including the calling thread. */
    explicit WindowPool(unsigned workers);
    ~WindowPool();

    WindowPool(const WindowPool &) = delete;
    WindowPool &operator=(const WindowPool &) = delete;

    /** Execute one window: every domain runs until @p until. */
    void run(const std::vector<sim::EventDomain *> &domains,
             sim::Tick until);

    unsigned workers() const { return workers_; }

  private:
    void workerLoop();
    void workRound();

    unsigned workers_;
    std::vector<std::thread> threads_;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<std::uint32_t> nextDomain_{0};
    std::atomic<std::uint32_t> doneWorkers_{0};
    std::atomic<bool> shutdown_{false};
    /** Window inputs; written by the coordinator before the
     *  generation bump publishes them. */
    const std::vector<sim::EventDomain *> *domains_ = nullptr;
    sim::Tick until_ = 0;
};

} // namespace rpcvalet::core

#endif // RPCVALET_CORE_PARALLEL_HH
