#include "core/parallel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rpcvalet::core {

void
runIndexedParallel(std::size_t count, unsigned threads,
                   const std::function<void(std::size_t)> &fn)
{
    RV_ASSERT(fn != nullptr, "runIndexedParallel needs a function");
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            fn(i);
        }
    };

    if (threads <= 1 || count <= 1) {
        worker();
        return;
    }
    std::vector<std::thread> pool;
    const std::size_t n =
        std::min<std::size_t>(threads, count);
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
}

unsigned
pointConcurrency(unsigned threads, unsigned parallelDomains)
{
    const unsigned per_point = std::max(1u, parallelDomains);
    return std::max(1u, threads / per_point);
}

WindowPool::WindowPool(unsigned workers)
    : workers_(std::max(1u, workers))
{
    threads_.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

WindowPool::~WindowPool()
{
    shutdown_.store(true, std::memory_order_release);
    for (auto &t : threads_)
        t.join();
}

void
WindowPool::run(const std::vector<sim::EventDomain *> &domains,
                sim::Tick until)
{
    if (threads_.empty()) {
        // Sequential execution of the same window schedule: domain
        // isolation makes this bit-identical to any worker count.
        for (sim::EventDomain *d : domains)
            d->runUntil(until);
        return;
    }

    domains_ = &domains;
    until_ = until;
    nextDomain_.store(0, std::memory_order_relaxed);
    doneWorkers_.store(0, std::memory_order_relaxed);
    // The release publishes the window inputs (and any coordinator
    // writes into the domains, e.g. barrier-exchanged packets) to the
    // workers' acquire loads of the generation counter.
    generation_.fetch_add(1, std::memory_order_release);

    workRound(); // the coordinator is worker 0

    // Wait for every helper to finish the round; their release
    // increments publish the domain mutations back to us.
    const auto n = static_cast<std::uint32_t>(threads_.size());
    unsigned spins = 0;
    while (doneWorkers_.load(std::memory_order_acquire) != n) {
        if (++spins % 64 == 0)
            std::this_thread::yield();
    }
}

void
WindowPool::workRound()
{
    const std::vector<sim::EventDomain *> &doms = *domains_;
    const sim::Tick until = until_;
    for (;;) {
        const std::uint32_t i =
            nextDomain_.fetch_add(1, std::memory_order_relaxed);
        if (i >= doms.size())
            return;
        doms[i]->runUntil(until);
    }
}

void
WindowPool::workerLoop()
{
    std::uint64_t seen = 0;
    unsigned spins = 0;
    for (;;) {
        const std::uint64_t g =
            generation_.load(std::memory_order_acquire);
        if (g == seen) {
            if (shutdown_.load(std::memory_order_acquire))
                return;
            if (++spins % 64 == 0)
                std::this_thread::yield();
            continue;
        }
        seen = g;
        spins = 0;
        workRound();
        doneWorkers_.fetch_add(1, std::memory_order_release);
    }
}

} // namespace rpcvalet::core
