/**
 * @file
 * One place that knows every self-registering component axis.
 *
 * The repo has six spec registries — dispatch policies, arrival
 * processes, workloads, cluster routers, fault injectors, and
 * connection schedulers — each populated by static registrars at
 * load time. `--list-specs` (on rpcvalet_run and every bench) prints
 * this listing so a user can discover the registered names without
 * reading the source; tests assert on the same structure so a new
 * axis cannot be added without showing up here.
 */

#ifndef RPCVALET_CORE_REGISTRY_LISTING_HH
#define RPCVALET_CORE_REGISTRY_LISTING_HH

#include <string>
#include <vector>

namespace rpcvalet::core {

/** One component axis: its spec label and the registered names. */
struct RegistryAxis
{
    /** The spec `what` label ("policy", "arrival", ...). */
    std::string axis;
    /** Registered names, sorted (as the registry reports them). */
    std::vector<std::string> names;
};

/**
 * Every registry in canonical order: policy, arrival, workload,
 * router, fault, conn. Forces the built-in registrars of each axis
 * to be linked in before listing.
 */
std::vector<RegistryAxis> listRegistries();

/**
 * The `--list-specs` text: one "axis: name, name, ..." line per
 * registry, in canonical order, trailing newline included.
 */
std::string formatRegistryListing();

} // namespace rpcvalet::core

#endif // RPCVALET_CORE_REGISTRY_LISTING_HH
