/**
 * @file
 * soNUMA wire-protocol definitions, extended for native messaging.
 *
 * soNUMA's stateless request-response protocol unrolls large transfers
 * into independent packets, each carrying one cache-block (64 B)
 * payload — the link-layer MTU of a fully integrated NI (§4.2). The
 * RPCValet extension adds two operations, send and replenish, plus a
 * total-message-size field in the network-layer header so the
 * destination NI can detect when all packets of a message have arrived
 * (§4.4).
 */

#ifndef RPCVALET_PROTO_PACKET_HH
#define RPCVALET_PROTO_PACKET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rpcvalet::proto {

/** Node identifier within the messaging domain. */
using NodeId = std::uint32_t;

/** Core identifier within a node. */
using CoreId = std::uint32_t;

/** Cache block size == link MTU (Table 1: 64-byte blocks). */
constexpr std::uint32_t cacheBlockBytes = 64;

/**
 * Sentinel logical-client id: the packet belongs to no modeled
 * connection (the default; see PacketHeader::connClient).
 */
constexpr std::uint32_t noConnClient = 0xFFFFFFFFu;

/** Protocol operations. Read/Write are the baseline one-sided ops. */
enum class OpType : std::uint8_t
{
    RemoteRead,
    RemoteWrite,
    Send,         ///< RPCValet native message (§4.2)
    Replenish,    ///< end-to-end flow-control credit return (§4.2)
    ReadResponse, ///< one-sided read data (rendezvous pulls, §4.2)
};

/** Name for logs and test diagnostics. */
std::string opName(OpType op);

/**
 * Network-layer packet header.
 *
 * RPCValet's extension over baseline soNUMA is the totalBlocks /
 * msgBytes pair: every packet of a multi-packet send carries the
 * message's full size, so any NI backend can decide completion locally
 * by comparing the receive-slot counter against totalBlocks (§4.4).
 */
struct PacketHeader
{
    OpType op = OpType::Send;
    NodeId src = 0;
    NodeId dst = 0;
    /** Slot index within the (src, dst) slot set (see MessagingDomain). */
    std::uint32_t slot = 0;
    /** Which cache block of the message this packet carries. */
    std::uint32_t blockIndex = 0;
    /** Total number of blocks in the message. */
    std::uint32_t totalBlocks = 1;
    /** Exact message payload size in bytes. */
    std::uint32_t msgBytes = 0;
    /**
     * Rendezvous (§4.2): a send whose payload exceeds maxMsgBytes is
     * announced by a one-block descriptor carrying rendezvous=true and
     * the full payload size; the destination NI then pulls the payload
     * with a one-sided read instead of receiving it inline.
     */
    bool rendezvous = false;
    std::uint32_t rendezvousBytes = 0;
    /**
     * Logical client (connection) this packet belongs to, set by the
     * traffic generator when a connection-management config is active
     * (src/conn/). In real RDMA this identity IS the queue-pair number
     * the transport header already carries, so modeling it adds no
     * wire bytes; the server NI keys its connection-context cache on
     * (src, connClient). noConnClient (the default) means the run has
     * no client-population model and every QP-cache path is skipped.
     */
    std::uint32_t connClient = noConnClient;
};

/** One wire packet: header + up to one cache block of payload. */
struct Packet
{
    PacketHeader hdr;
    std::vector<std::uint8_t> payload;
};

/** Number of cache blocks needed for @p bytes (at least 1). */
std::uint32_t blocksForBytes(std::uint32_t bytes);

/**
 * Unroll a message into its per-block packets, soNUMA-style. Every
 * packet carries the full header (stateless protocol); payloads are
 * the consecutive 64 B chunks of @p payload.
 */
std::vector<Packet> packetize(OpType op, NodeId src, NodeId dst,
                              std::uint32_t slot,
                              const std::vector<std::uint8_t> &payload);

/**
 * Reassemble payload bytes from packets (test helper / functional
 * path). Packets may arrive in any order; missing blocks panic.
 */
std::vector<std::uint8_t>
reassemble(const std::vector<Packet> &packets);

} // namespace rpcvalet::proto

#endif // RPCVALET_PROTO_PACKET_HH
