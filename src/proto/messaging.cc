#include "proto/messaging.hh"

#include "sim/logging.hh"

namespace rpcvalet::proto {

std::uint32_t
MessagingDomain::slotIndex(NodeId src, std::uint32_t slot) const
{
    RV_ASSERT(src < numNodes, "source node out of domain");
    RV_ASSERT(slot < slotsPerNode, "slot out of range");
    return src * slotsPerNode + slot;
}

NodeId
MessagingDomain::slotSource(std::uint32_t index) const
{
    RV_ASSERT(index < totalSlots(), "slot index out of range");
    return index / slotsPerNode;
}

std::uint32_t
MessagingDomain::slotOffset(std::uint32_t index) const
{
    RV_ASSERT(index < totalSlots(), "slot index out of range");
    return index % slotsPerNode;
}

std::uint64_t
MessagingDomain::sendBufferBytes() const
{
    return 32ULL * numNodes * slotsPerNode;
}

std::uint64_t
MessagingDomain::recvBufferBytes() const
{
    return static_cast<std::uint64_t>(maxMsgBytes + 64) * numNodes *
           slotsPerNode;
}

std::uint64_t
MessagingDomain::footprintBytes() const
{
    return sendBufferBytes() + recvBufferBytes();
}

void
MessagingDomain::validate() const
{
    if (numNodes < 2)
        sim::fatal("messaging domain needs at least two nodes");
    if (slotsPerNode == 0)
        sim::fatal("messaging domain needs at least one slot per node");
    if (maxMsgBytes == 0 || maxMsgBytes % cacheBlockBytes != 0)
        sim::fatal("maxMsgBytes must be a positive multiple of 64");
}

} // namespace rpcvalet::proto
