#include "proto/packet.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rpcvalet::proto {

std::string
opName(OpType op)
{
    switch (op) {
      case OpType::RemoteRead: return "remote_read";
      case OpType::RemoteWrite: return "remote_write";
      case OpType::Send: return "send";
      case OpType::Replenish: return "replenish";
      case OpType::ReadResponse: return "read_response";
    }
    sim::panic("unknown OpType");
}

std::uint32_t
blocksForBytes(std::uint32_t bytes)
{
    if (bytes == 0)
        return 1;
    return (bytes + cacheBlockBytes - 1) / cacheBlockBytes;
}

std::vector<Packet>
packetize(OpType op, NodeId src, NodeId dst, std::uint32_t slot,
          const std::vector<std::uint8_t> &payload)
{
    const auto msg_bytes = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t total = blocksForBytes(msg_bytes);

    std::vector<Packet> packets;
    packets.reserve(total);
    for (std::uint32_t b = 0; b < total; ++b) {
        Packet pkt;
        pkt.hdr.op = op;
        pkt.hdr.src = src;
        pkt.hdr.dst = dst;
        pkt.hdr.slot = slot;
        pkt.hdr.blockIndex = b;
        pkt.hdr.totalBlocks = total;
        pkt.hdr.msgBytes = msg_bytes;
        const std::size_t lo = static_cast<std::size_t>(b) * cacheBlockBytes;
        const std::size_t hi =
            std::min<std::size_t>(lo + cacheBlockBytes, payload.size());
        if (lo < payload.size()) {
            pkt.payload.assign(payload.begin() + static_cast<long>(lo),
                               payload.begin() + static_cast<long>(hi));
        }
        packets.push_back(std::move(pkt));
    }
    return packets;
}

std::vector<std::uint8_t>
reassemble(const std::vector<Packet> &packets)
{
    RV_ASSERT(!packets.empty(), "cannot reassemble zero packets");
    const std::uint32_t total = packets.front().hdr.totalBlocks;
    const std::uint32_t msg_bytes = packets.front().hdr.msgBytes;
    RV_ASSERT(packets.size() == total, "packet count mismatch");

    std::vector<std::uint8_t> out(msg_bytes, 0);
    std::vector<bool> seen(total, false);
    for (const auto &pkt : packets) {
        RV_ASSERT(pkt.hdr.totalBlocks == total, "inconsistent totalBlocks");
        RV_ASSERT(pkt.hdr.msgBytes == msg_bytes, "inconsistent msgBytes");
        RV_ASSERT(pkt.hdr.blockIndex < total, "block index out of range");
        RV_ASSERT(!seen[pkt.hdr.blockIndex], "duplicate block");
        seen[pkt.hdr.blockIndex] = true;
        const std::size_t lo =
            static_cast<std::size_t>(pkt.hdr.blockIndex) * cacheBlockBytes;
        for (std::size_t i = 0; i < pkt.payload.size(); ++i) {
            if (lo + i < out.size())
                out[lo + i] = pkt.payload[i];
        }
    }
    for (bool s : seen)
        RV_ASSERT(s, "missing block during reassembly");
    return out;
}

} // namespace rpcvalet::proto
