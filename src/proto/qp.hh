/**
 * @file
 * Queue-pair entries (Virtual Interface Architecture style, §3.1).
 *
 * Each core owns a private QP: a Work Queue it writes WQEs into and a
 * Completion Queue the NI writes CQEs into. RPCValet adds the shared
 * CQ, a dispatcher-resident FIFO of fully received messages awaiting
 * assignment to a core (§4.2 step 7).
 */

#ifndef RPCVALET_PROTO_QP_HH
#define RPCVALET_PROTO_QP_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "proto/packet.hh"
#include "sim/types.hh"

namespace rpcvalet::proto {

/** Work-queue entry: a core's command to the NI. */
struct WorkQueueEntry
{
    OpType op = OpType::Send;
    /** Destination node. */
    NodeId dstNode = 0;
    /** Destination slot within the (self, dst) slot set. */
    std::uint32_t slot = 0;
    /** Payload for send operations (empty for replenish). */
    std::vector<std::uint8_t> payload;
};

/**
 * Completion-queue entry: NI's notification to a core that a send
 * arrived. Carries the flat receive-buffer slot index (§4.2 step 8) —
 * the core reads payload directly from the receive buffer (zero copy).
 */
struct CompletionQueueEntry
{
    /** Flat receive-buffer slot holding the message. */
    std::uint32_t slotIndex = 0;
    /** Message origin. */
    NodeId srcNode = 0;
    /** Payload size in bytes. */
    std::uint32_t msgBytes = 0;
    /** Tick the message's first packet reached the NI (latency t0). */
    sim::Tick firstPacketTick = 0;
    /** Tick the message became fully received (reassembly done). */
    sim::Tick completionTick = 0;
    /** Tick the CQE landed in the serving core's private CQ. */
    sim::Tick deliveredTick = 0;
    /** Logical client (connection) of the message, or noConnClient —
     *  the server NI's QP-cache key (see packet.hh). */
    std::uint32_t connClient = noConnClient;
};

/**
 * Simple FIFO wrapper with occupancy-high-watermark tracking, used for
 * WQs, private CQs, and the dispatcher's shared CQ.
 */
template <typename Entry>
class Fifo
{
  public:
    void
    push(Entry e)
    {
        queue_.push_back(std::move(e));
        if (queue_.size() > highWatermark_)
            highWatermark_ = queue_.size();
    }

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }
    std::size_t highWatermark() const { return highWatermark_; }

    /**
     * Restart high-watermark tracking from the current occupancy.
     * Recording-window openers call this so post-warmup occupancy
     * stats no longer include warmup transients.
     */
    void resetHighWatermark() { highWatermark_ = queue_.size(); }

    const Entry &front() const { return queue_.front(); }

    Entry
    pop()
    {
        Entry e = std::move(queue_.front());
        queue_.pop_front();
        return e;
    }

  private:
    std::deque<Entry> queue_;
    std::size_t highWatermark_ = 0;
};

} // namespace rpcvalet::proto

#endif // RPCVALET_PROTO_QP_HH
