/**
 * @file
 * Messaging-domain geometry (§4.2 "Buffer provisioning").
 *
 * A messaging domain spans N nodes. Each node allocates a send buffer
 * and a receive buffer of N x S slots: the (src, slot) pair of an
 * incoming send names its receive-buffer slot, so the sender fully
 * determines where the message lands (avoiding reassembly state in the
 * NI), while the destination NI independently chooses which core
 * processes it.
 */

#ifndef RPCVALET_PROTO_MESSAGING_HH
#define RPCVALET_PROTO_MESSAGING_HH

#include <cstdint>

#include "proto/packet.hh"

namespace rpcvalet::proto {

/** Static configuration of a messaging domain. */
struct MessagingDomain
{
    /** Number of nodes that can exchange messages (N). */
    std::uint32_t numNodes = 200;
    /** Message slots per (src, dst) pair (S). */
    std::uint32_t slotsPerNode = 32;
    /** Maximum message payload size in bytes. */
    std::uint32_t maxMsgBytes = 2048;

    /** Total slots in a node's receive (or send) buffer: N x S. */
    std::uint32_t totalSlots() const { return numNodes * slotsPerNode; }

    /**
     * Flat receive-buffer slot index for a message from @p src in
     * per-pair slot @p slot. Panics on out-of-range input.
     */
    std::uint32_t slotIndex(NodeId src, std::uint32_t slot) const;

    /** Inverse of slotIndex: source node of a flat index. */
    NodeId slotSource(std::uint32_t index) const;

    /** Inverse of slotIndex: per-pair slot of a flat index. */
    std::uint32_t slotOffset(std::uint32_t index) const;

    /**
     * Send-buffer footprint in bytes: 32 B of bookkeeping per slot
     * (§4.2: valid bit, payload pointer, size, padding).
     */
    std::uint64_t sendBufferBytes() const;

    /**
     * Receive-buffer footprint in bytes: each slot holds a payload of
     * maxMsgBytes plus a full cache block for the arrival counter
     * (§4.2 over-provisions the counter to 64 B to keep payloads
     * aligned).
     */
    std::uint64_t recvBufferBytes() const;

    /**
     * Total per-node messaging footprint (§4.2's formula):
     * 32*N*S + (maxMsgBytes + 64)*N*S.
     */
    std::uint64_t footprintBytes() const;

    /** Validate the configuration; fatal() on nonsense. */
    void validate() const;
};

} // namespace rpcvalet::proto

#endif // RPCVALET_PROTO_MESSAGING_HH
