/**
 * @file
 * Built-in connection schedulers.
 *
 * `all` keeps every logical client connected and never gates an issue
 * — the legacy behavior, now running under a finite server-side QP
 * cache so connection-context thrash becomes visible.
 *
 * `grouped` implements ScaleRPC's connection grouping (EuroSys 2019;
 * see SNIPPETS.md Snippet 3): clients partition into groups, a time
 * slice rotates the active group, and the mechanics preserve the
 * snippet's invariants —
 *
 *   I1  only the active group's clients issue requests during a slice
 *       (enforced at admission; requests of inactive clients queue),
 *   I2  the physical connection pool is sized for one group (see
 *       conn::effectiveQpCapacity),
 *   I3  a group drains its outstanding requests before the switch
 *       completes,
 *   I4  a warmed-up client moves WARMUP -> PROCESS only on its first
 *       response,
 *   I5  active clients move PROCESS -> IDLE only at the context
 *       switch itself.
 *
 * Warmup pre-admits the next group's first queued request while the
 * current group drains, hiding the context-switch latency (and warming
 * the server's QP cache). With regroup=priority, every full rotation
 * (epoch) re-sorts clients by measured priority Pi = Ti/Si — slice
 * throughput over average request size — and repartitions, so clients
 * with similar behavior share slices.
 *
 * Deferred backlog drains under a bounded per-client window (the
 * `window` parameter, default 4): activation releases at most
 * `window` queued requests per client, and each completion releases
 * one more. This is the closed-loop pacing of a real client — without
 * it, a group switch would dump an entire inactive period's backlog
 * on the server at once and the resulting burst queueing would bury
 * the very tail latency grouping exists to protect.
 */

#include <algorithm>
#include <numeric>

#include "conn/conn.hh"
#include "sim/logging.hh"

namespace rpcvalet::conn {
namespace {

/** ScaleRPC defaults (Snippet 3). */
constexpr std::uint64_t defaultGroupSize = 40;
constexpr double defaultSliceUs = 100.0;
/** Per-client backlog window: releases per activation/completion. */
constexpr std::uint64_t defaultWindow = 4;

/** Every client connected; nothing ever deferred. */
class AllScheduler final : public ConnScheduler
{
  public:
    explicit AllScheduler(const ConnSpec &spec) : spec_(spec)
    {
        spec_.expectKeys({});
    }

    std::string name() const override { return spec_.toString(); }

    void
    bind(std::uint32_t numClients, sim::EventDomain &sim,
         AdmitFn admit) override
    {
        (void)numClients;
        (void)sim;
        (void)admit;
    }

    bool mayIssue(std::uint32_t) const override { return true; }

  private:
    ConnSpec spec_;
};

/** ScaleRPC connection grouping with time slices. */
class GroupedScheduler final : public ConnScheduler
{
  public:
    explicit GroupedScheduler(const ConnSpec &spec) : spec_(spec)
    {
        spec_.expectKeys({"size", "slice", "window", "warmup",
                          "regroup"});
        size_ = static_cast<std::uint32_t>(
            spec_.uintParam("size", defaultGroupSize));
        if (size_ == 0)
            sim::fatal("conn scheduler 'grouped': size must be >= 1");
        slice_ = spec_.tickParam(
            "slice", sim::nanoseconds(defaultSliceUs * 1000.0));
        if (slice_ == 0)
            sim::fatal("conn scheduler 'grouped': slice must be > 0");
        window_ = static_cast<std::uint32_t>(
            spec_.uintParam("window", defaultWindow));
        if (window_ == 0)
            sim::fatal("conn scheduler 'grouped': window must be >= 1");
        const std::uint64_t warmup = spec_.uintParam("warmup", 1);
        if (warmup > 1) {
            sim::fatal(sim::strfmt(
                "conn scheduler 'grouped': warmup must be 0 or 1 "
                "(got %llu)",
                static_cast<unsigned long long>(warmup)));
        }
        warmup_ = warmup == 1;
        if (spec_.has("regroup")) {
            const std::string &mode = spec_.params.at("regroup");
            if (mode == "priority")
                regroupByPriority_ = true;
            else if (mode != "none") {
                sim::fatal(sim::strfmt(
                    "conn scheduler 'grouped': regroup must be 'none' "
                    "or 'priority' (got '%s')",
                    mode.c_str()));
            }
        }
    }

    std::string name() const override { return spec_.toString(); }

    void
    bind(std::uint32_t numClients, sim::EventDomain &sim,
         AdmitFn admit) override
    {
        RV_ASSERT(sim_ == nullptr, "grouped scheduler bound twice");
        RV_ASSERT(numClients >= 1, "grouped scheduler needs clients");
        RV_ASSERT(admit != nullptr, "grouped scheduler needs an admit hook");
        sim_ = &sim;
        admit_ = std::move(admit);
        state_.assign(numClients, State::Idle);
        outstandingByClient_.assign(numClients, 0);
        perf_.assign(numClients, ClientPerf{});
        // Initial partition: contiguous id blocks, in id order.
        order_.resize(numClients);
        std::iota(order_.begin(), order_.end(), 0u);
        partition();
    }

    void
    start() override
    {
        // The initial active group starts processing immediately; with
        // a single group there is never a switch, so no timer is armed
        // and the event schedule matches `all` exactly.
        for (const std::uint32_t c : groups_[active_])
            state_[c] = State::Process;
        if (groups_.size() > 1)
            armSliceTimer();
    }

    void halt() override { halted_ = true; }

    bool
    mayIssue(std::uint32_t client) const override
    {
        // I1: only the active group's PROCESS clients issue, and not
        // while the group is draining toward a switch.
        return groupOf_[client] == active_ && !draining_ &&
               state_[client] == State::Process;
    }

    void
    onLaunched(std::uint32_t client) override
    {
        ++outstandingByClient_[client];
        ++outstandingByGroup_[groupOf_[client]];
    }

    void
    onCompleted(std::uint32_t client, std::uint32_t bytes) override
    {
        ++perf_[client].completions;
        perf_[client].bytes += bytes;
        if (state_[client] == State::Warmup) {
            // I4: the first response promotes a warmed-up client.
            state_[client] = State::Process;
            if (groupOf_[client] == active_ && !draining_)
                admit_(client, window_);
        } else if (state_[client] == State::Process &&
                   groupOf_[client] == active_ && !draining_) {
            // Windowed backlog drain: one completion releases one
            // deferred request (no-op while the queue is empty).
            admit_(client, 1);
        }
    }

    void
    onRetired(std::uint32_t client) override
    {
        RV_ASSERT(outstandingByClient_[client] > 0,
                  "conn outstanding underflow");
        --outstandingByClient_[client];
        const std::uint32_t g = groupOf_[client];
        RV_ASSERT(outstandingByGroup_[g] > 0,
                  "conn group-outstanding underflow");
        --outstandingByGroup_[g];
        // I3: the switch blocked on this group's drain completes once
        // its last outstanding request retires.
        if (draining_ && g == active_ && outstandingByGroup_[g] == 0)
            performSwitch();
    }

    std::uint32_t
    numGroups() const override
    {
        return static_cast<std::uint32_t>(groups_.size());
    }

    std::uint32_t
    groupOf(std::uint32_t client) const override
    {
        return groupOf_[client];
    }

    ConnSchedStats
    stats() const override
    {
        ConnSchedStats s;
        s.groups = numGroups();
        s.groupSwitches = groupSwitches_;
        s.warmupHits = warmupHits_;
        s.warmupMisses = warmupMisses_;
        s.regroups = regroups_;
        return s;
    }

  private:
    enum class State : std::uint8_t
    {
        Idle,   ///< group inactive, nothing warmed up
        Warmup, ///< pre-admitted one request ahead of its slice
        Process ///< fully admitted
    };

    /** Per-epoch throughput/size counters behind Pi = Ti/Si. */
    struct ClientPerf
    {
        std::uint64_t completions = 0;
        std::uint64_t bytes = 0;
    };

    /** Rebuild groups_ / groupOf_ / outstandingByGroup_ from order_. */
    void
    partition()
    {
        const std::uint32_t n =
            static_cast<std::uint32_t>(order_.size());
        const std::uint32_t numGroups = (n + size_ - 1) / size_;
        groups_.assign(numGroups, {});
        groupOf_.assign(n, 0);
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint32_t g = i / size_;
            groups_[g].push_back(order_[i]);
            groupOf_[order_[i]] = g;
        }
        outstandingByGroup_.assign(numGroups, 0);
        for (std::uint32_t c = 0; c < n; ++c)
            outstandingByGroup_[groupOf_[c]] += outstandingByClient_[c];
    }

    void
    armSliceTimer()
    {
        sim_->schedule(slice_, [this] { onSliceExpired(); });
    }

    void
    onSliceExpired()
    {
        if (halted_)
            return;
        // Warm up the next group while the active one drains: each of
        // its idle clients pre-sends at most one queued request, so the
        // server's connection cache is hot when the slice begins.
        draining_ = true;
        if (warmup_) {
            const std::uint32_t next = nextGroup();
            for (const std::uint32_t c : groups_[next]) {
                if (state_[c] != State::Idle)
                    continue;
                if (admit_(c, 1) > 0) {
                    state_[c] = State::Warmup;
                    ++warmupHits_;
                } else {
                    ++warmupMisses_;
                }
            }
        }
        // I3: switch only after the active group's outstanding
        // requests drain (possibly immediately).
        if (outstandingByGroup_[active_] == 0)
            performSwitch();
    }

    std::uint32_t
    nextGroup() const
    {
        return (active_ + 1) % static_cast<std::uint32_t>(groups_.size());
    }

    void
    performSwitch()
    {
        // I5: the outgoing group's clients go idle at the context
        // switch itself, never earlier.
        for (const std::uint32_t c : groups_[active_])
            state_[c] = State::Idle;
        const bool wrapped = nextGroup() == 0;
        active_ = nextGroup();
        draining_ = false;
        ++groupSwitches_;
        if (wrapped && regroupByPriority_)
            regroup();
        // Activate: idle clients process immediately; warmed-up ones
        // stay WARMUP until their first response (I4) — their queues
        // flush (windowed) at the promotion.
        for (const std::uint32_t c : groups_[active_]) {
            if (state_[c] == State::Warmup)
                continue;
            state_[c] = State::Process;
            admit_(c, window_);
        }
        armSliceTimer();
    }

    /**
     * End-of-epoch priority regrouping: Pi = Ti/Si with Ti the
     * client's epoch completions and Si its average request size, so
     * Pi reduces to completions^2 / bytes. Stable order (Pi
     * descending, id ascending) keeps the repartition deterministic;
     * perf counters reset so each epoch is judged on its own traffic.
     */
    void
    regroup()
    {
        const std::uint32_t n =
            static_cast<std::uint32_t>(order_.size());
        std::vector<double> pi(n, 0.0);
        for (std::uint32_t c = 0; c < n; ++c) {
            const ClientPerf &p = perf_[c];
            if (p.completions > 0 && p.bytes > 0) {
                pi[c] = static_cast<double>(p.completions) *
                        static_cast<double>(p.completions) /
                        static_cast<double>(p.bytes);
            }
        }
        std::iota(order_.begin(), order_.end(), 0u);
        std::stable_sort(order_.begin(), order_.end(),
                         [&pi](std::uint32_t a, std::uint32_t b) {
                             return pi[a] > pi[b];
                         });
        partition();
        perf_.assign(n, ClientPerf{});
        ++regroups_;
    }

    ConnSpec spec_;
    std::uint32_t size_ = defaultGroupSize;
    std::uint32_t window_ = defaultWindow;
    sim::Tick slice_ = 0;
    bool warmup_ = true;
    bool regroupByPriority_ = false;

    sim::EventDomain *sim_ = nullptr;
    AdmitFn admit_;
    std::vector<State> state_;
    std::vector<std::uint32_t> groupOf_;
    std::vector<std::vector<std::uint32_t>> groups_;
    /** Client ids in partition order (regrouping re-sorts this). */
    std::vector<std::uint32_t> order_;
    std::vector<std::uint32_t> outstandingByClient_;
    std::vector<std::uint64_t> outstandingByGroup_;
    std::vector<ClientPerf> perf_;
    std::uint32_t active_ = 0;
    bool draining_ = false;
    bool halted_ = false;
    std::uint64_t groupSwitches_ = 0;
    std::uint64_t warmupHits_ = 0;
    std::uint64_t warmupMisses_ = 0;
    std::uint64_t regroups_ = 0;
};

const ConnRegistrar registerAll{"all", [](const ConnSpec &spec) {
    return ConnSchedulerPtr(new AllScheduler(spec));
}};

const ConnRegistrar registerGrouped{"grouped", [](const ConnSpec &spec) {
    return ConnSchedulerPtr(new GroupedScheduler(spec));
}};

} // namespace

void
linkBuiltinConnSchedulers()
{
    // The registrars above run at static initialization; this function
    // exists only to give the registry's instance() a symbol to pull
    // from this archive member.
}

} // namespace rpcvalet::conn
