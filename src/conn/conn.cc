#include "conn/conn.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::conn {

// Defined in schedulers.cc. Calling it from instance() forces that
// archive member — whose only entry points are its static registrars —
// into every binary that uses the registry.
void linkBuiltinConnSchedulers();

ConnSpec::ConnSpec() { what = "conn"; }

ConnSpec::ConnSpec(const char *text) : ConnSpec(parse(text)) {}

ConnSpec::ConnSpec(const std::string &text) : ConnSpec(parse(text)) {}

ConnSpec
ConnSpec::parse(const std::string &text)
{
    ConnSpec spec;
    static_cast<sim::Spec &>(spec) = sim::Spec::parse(text, "conn");
    return spec;
}

ConnSpec
ConnConfig::schedulerSpec() const
{
    if (!scheduler.name.empty())
        return scheduler;
    ConnSpec spec;
    spec.name = "all";
    return spec;
}

void
ConnConfig::validate() const
{
    if (!active())
        return;
    if (qpColdNs < 0.0) {
        sim::fatal(sim::strfmt(
            "connection config: qp_cold must be >= 0 ns (got %g)",
            qpColdNs));
    }
    // Resolve through the registry: an unknown scheduler name or a bad
    // parameter dies here, before any event runs.
    (void)ConnRegistry::instance().make(schedulerSpec());
}

ConnConfig
parseConnConfig(const std::string &text)
{
    ConnSpec spec = ConnSpec::parse(text);
    ConnConfig cfg;
    // Population / capacity keys ride the spec string for flag
    // ergonomics ("--connections=grouped:size=40,clients=2048") but
    // belong to the config, not the scheduler: peel them off before
    // the scheduler factory sees (and expectKeys-validates) the rest.
    cfg.numClients =
        static_cast<std::uint32_t>(spec.uintParam("clients", 0));
    cfg.qpCapacity =
        static_cast<std::uint32_t>(spec.uintParam("qp_capacity", 0));
    cfg.qpColdNs = spec.doubleParam("qp_cold", cfg.qpColdNs);
    spec.params.erase("clients");
    spec.params.erase("qp_capacity");
    spec.params.erase("qp_cold");
    cfg.scheduler = spec;
    if (cfg.numClients == 0) {
        sim::fatal(sim::strfmt(
            "connection spec '%s' needs a client population — add "
            "clients=N (N >= 1); clients=0 would disable the "
            "subsystem, which is spelled by omitting --connections "
            "entirely",
            text.c_str()));
    }
    cfg.validate();
    return cfg;
}

std::uint32_t
effectiveQpCapacity(const ConnConfig &cfg)
{
    if (cfg.qpCapacity > 0)
        return cfg.qpCapacity;
    const ConnSpec spec = cfg.schedulerSpec();
    if (spec.name == "grouped") {
        // ScaleRPC invariant I2: the physical pool is sized for
        // exactly one connection group.
        return static_cast<std::uint32_t>(spec.uintParam("size", 40));
    }
    return 64;
}

ConnRegistry &
ConnRegistry::instance()
{
    static ConnRegistry registry;
    linkBuiltinConnSchedulers();
    return registry;
}

void
ConnRegistry::add(const std::string &name, Factory factory)
{
    if (name.empty())
        sim::fatal("cannot register a conn scheduler with an empty name");
    if (factory == nullptr)
        sim::fatal("conn scheduler '" + name + "' has a null factory");
    if (!factories_.emplace(name, std::move(factory)).second) {
        sim::fatal("conn scheduler '" + name +
                   "' is already registered (duplicate registration)");
    }
}

bool
ConnRegistry::contains(const std::string &name) const
{
    return factories_.count(name) > 0;
}

std::vector<std::string>
ConnRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

std::string
ConnRegistry::namesJoined() const
{
    std::string joined;
    for (const std::string &name : names()) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

ConnSchedulerPtr
ConnRegistry::make(const ConnSpec &spec) const
{
    if (spec.name.empty())
        sim::fatal("empty conn-scheduler spec");
    auto it = factories_.find(spec.name);
    if (it == factories_.end()) {
        sim::fatal(sim::strfmt(
            "unknown conn scheduler '%s' (registered: %s)",
            spec.name.c_str(), namesJoined().c_str()));
    }
    ConnSchedulerPtr sched = it->second(spec);
    if (sched == nullptr) {
        sim::fatal("conn-scheduler factory for '" + spec.name +
                   "' returned null");
    }
    return sched;
}

ConnRegistrar::ConnRegistrar(const std::string &name,
                             ConnRegistry::Factory factory)
{
    ConnRegistry::instance().add(name, std::move(factory));
}

} // namespace rpcvalet::conn
