/**
 * @file
 * Connection management: the sixth spec axis.
 *
 * RPCValet's messaging domain hands every client a permanently live
 * set of NI/QP resources; nothing ever makes connection state scarce.
 * Real NIs cache a bounded number of connection contexts on-chip, and
 * once thousands of clients hold live connections the cache thrashes —
 * the problem ScaleRPC solves by time-multiplexing clients through the
 * server in connection groups. This subsystem mirrors the
 * policy/arrival/workload/router/fault registry architecture:
 *
 *  - ConnSpec       "name:key=value,..." (sim::Spec with conn
 *                   diagnostics), e.g. "grouped:size=40,slice=100us"
 *  - ConnScheduler  a registered connection scheduler; decides per
 *                   logical client whether it may issue a request now
 *                   and releases deferred clients when their turn comes
 *  - ConnConfig     the experiment-level knobs: logical-client
 *                   population size, scheduler spec, QP-cache capacity
 *                   and cold-fetch penalty
 *  - ConnRegistry   process-wide name -> factory table; schedulers
 *                   self-register via ConnRegistrar, including from
 *                   outside src/
 *
 * Built-ins (src/conn/schedulers.cc):
 *
 *   all                                   every client connected, no
 *                                         gating — the legacy issue
 *                                         path under a finite QP cache
 *   grouped:size=,slice=[,warmup=0|1][,regroup=none|priority]
 *                                         ScaleRPC connection grouping:
 *                                         only the active group issues
 *                                         during a time slice, the next
 *                                         group warms up before the
 *                                         switch, drain-before-switch,
 *                                         optional priority regrouping
 *                                         by measured Pi = Ti/Si
 *
 * The client population is modeled in net::TrafficGenerator: logical
 * clients multiplex onto the emulated client nodes' existing
 * per-(node, server) slot pools, and each request carries its logical
 * client id so the server NI's QP cache (node::RpcNode) can account
 * connection-context hits and misses. With ConnConfig.numClients == 0
 * (the default) none of this machinery exists: no extra Rng draws, no
 * events, bit-identical to the pre-connection build.
 */

#ifndef RPCVALET_CONN_CONN_HH
#define RPCVALET_CONN_CONN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/domain.hh"
#include "sim/spec.hh"

namespace rpcvalet::conn {

/** A connection-scheduler selection: registry name plus parameters. */
struct ConnSpec : public sim::Spec
{
    /** Default: an empty spec (scheduler chosen by ConnConfig). */
    ConnSpec();

    /** Implicit: parse a spec string (fatal on malformed input). */
    ConnSpec(const char *text);
    ConnSpec(const std::string &text);

    /** Parse "name" or "name:k=v,k=v" (see sim::Spec::parse). */
    static ConnSpec parse(const std::string &text);
};

/** Counters every scheduler reports into RunStats.conn. */
struct ConnSchedStats
{
    /** Connection groups the population is partitioned into. */
    std::uint32_t groups = 1;
    /** Completed group context switches. */
    std::uint64_t groupSwitches = 0;
    /** Warmup pre-admissions that released a queued request. */
    std::uint64_t warmupHits = 0;
    /** Warmup pre-admissions that found nothing queued. */
    std::uint64_t warmupMisses = 0;
    /** End-of-epoch priority regroupings performed. */
    std::uint64_t regroups = 0;
};

/**
 * Interface every connection scheduler implements. The traffic
 * generator owns one instance per run and drives it from the client
 * domain (domain 0 in parallel runs), so scheduling decisions are
 * automatically deterministic across --parallel-domains settings.
 */
class ConnScheduler
{
  public:
    /**
     * Release hook into the traffic generator: dispatch up to @p limit
     * requests (0 = all) queued for @p client; returns how many were
     * actually released. Schedulers call it when a client becomes
     * admissible (group activation, warmup pre-admission).
     */
    using AdmitFn =
        std::function<std::uint32_t(std::uint32_t client,
                                    std::uint32_t limit)>;

    virtual ~ConnScheduler() = default;

    /** Canonical spec string of this instance (for reports). */
    virtual std::string name() const = 0;

    /**
     * Wire the scheduler to a run: population size, the client-side
     * event domain for slice timers, and the generator's release hook.
     * Called exactly once, before start().
     */
    virtual void bind(std::uint32_t numClients, sim::EventDomain &sim,
                      AdmitFn admit) = 0;

    /** Arm timers (called from TrafficGenerator::start). */
    virtual void start() {}

    /** Stop rescheduling timers (run is ending). */
    virtual void halt() {}

    /** Whether @p client may issue a request right now. A false return
     *  defers the request into the client's queue; the scheduler must
     *  eventually admit() it. */
    virtual bool mayIssue(std::uint32_t client) const = 0;

    /** A request of @p client entered the fabric. */
    virtual void onLaunched(std::uint32_t client) { (void)client; }

    /** A request of @p client completed with @p bytes of request
     *  payload (feeds the per-client Ti/Si perf counters). */
    virtual void
    onCompleted(std::uint32_t client, std::uint32_t bytes)
    {
        (void)client;
        (void)bytes;
    }

    /** A request of @p client left the outstanding set (completion,
     *  timeout, or hedge retirement) — the drain-before-switch
     *  signal. Called exactly once per onLaunched. */
    virtual void onRetired(std::uint32_t client) { (void)client; }

    /** Groups the population is partitioned into (1 = no grouping). */
    virtual std::uint32_t numGroups() const { return 1; }

    /** Current group of @p client (regrouping may move clients). */
    virtual std::uint32_t
    groupOf(std::uint32_t client) const
    {
        (void)client;
        return 0;
    }

    virtual ConnSchedStats stats() const { return {}; }
};

using ConnSchedulerPtr = std::unique_ptr<ConnScheduler>;

/** Experiment-level connection-management configuration. */
struct ConnConfig
{
    /**
     * Logical clients multiplexed onto the emulated client nodes.
     * 0 (the default) disables the whole client-population model:
     * requests originate from uniformly random nodes exactly as
     * before, bit-identically to the pre-connection build.
     */
    std::uint32_t numClients = 0;

    /**
     * Server-NI connection-context (QP) cache capacity, in
     * connections. 0 derives it: the grouped scheduler's group size
     * (ScaleRPC sizes the physical pool for exactly one group), or 64
     * for ungrouped schedulers (an on-chip QP-cache ballpark). Only
     * consulted while numClients > 0.
     */
    std::uint32_t qpCapacity = 0;

    /**
     * Penalty a request pays at the server NI when its connection
     * context is not cached (DRAM/PCIe context fetch before dispatch),
     * nanoseconds. Only consulted while numClients > 0.
     */
    double qpColdNs = 1000.0;

    /** Scheduler spec; an empty name means "all". */
    ConnSpec scheduler{};

    /** Whether the client-population model is enabled at all. */
    bool active() const { return numClients > 0; }

    /** The scheduler spec with the empty-name default applied. */
    ConnSpec schedulerSpec() const;

    /**
     * Fatal on inconsistent settings; resolves the scheduler through
     * the registry so unknown names and bad parameters die before any
     * event runs.
     */
    void validate() const;
};

/**
 * Parse a --connections= / scenario "connections" value: a conn spec
 * whose optional clients= / qp_capacity= / qp_cold= keys are peeled
 * into the ConnConfig before the remainder is validated through the
 * registry, e.g. "grouped:size=40,slice=100us,clients=2048".
 */
ConnConfig parseConnConfig(const std::string &text);

/**
 * The QP-cache capacity a config resolves to (explicit qpCapacity, or
 * the derivation documented on ConnConfig::qpCapacity).
 */
std::uint32_t effectiveQpCapacity(const ConnConfig &cfg);

/** Process-wide name -> factory table for connection schedulers. */
class ConnRegistry
{
  public:
    /** Builds a scheduler instance from its (validated) spec. */
    using Factory = std::function<ConnSchedulerPtr(const ConnSpec &)>;

    /** The process-wide registry (created on first use). */
    static ConnRegistry &instance();

    /** Register @p factory under @p name; duplicate names are fatal. */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /** Sorted names joined with ", " (for error messages and help). */
    std::string namesJoined() const;

    /**
     * Instantiate the scheduler @p spec names. An unregistered name is
     * fatal, with the message listing every registered name.
     */
    ConnSchedulerPtr make(const ConnSpec &spec) const;

  private:
    ConnRegistry() = default;

    std::map<std::string, Factory> factories_;
};

/** Registers a factory at static-initialization time. */
struct ConnRegistrar
{
    ConnRegistrar(const std::string &name, ConnRegistry::Factory factory);
};

} // namespace rpcvalet::conn

#endif // RPCVALET_CONN_CONN_HH
