/**
 * @file
 * The modeled server: 16 cores, Manycore NI, messaging buffers and
 * dispatch plumbing, executing the §5 microbenchmark loop over a real
 * application.
 *
 * Per-RPC timeline (hardware modes):
 *   fabric -> NI backend ingress (per-packet pipeline) -> receive
 *   buffer write + counter -> message completion -> dispatch
 *   (mode-dependent) -> core private CQ -> core runs the loop:
 *   poll/parse/read + application processing X + reply send (slot-
 *   mirrored) + replenish. Latency is measured from the first packet's
 *   arrival at the NI until the core posts its replenish (§5).
 */

#ifndef RPCVALET_NODE_RPC_NODE_HH
#define RPCVALET_NODE_RPC_NODE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "app/rpc_application.hh"
#include "mem/buffers.hh"
#include "net/fabric.hh"
#include "ni/backend.hh"
#include "ni/dispatcher.hh"
#include "noc/mesh.hh"
#include "node/params.hh"
#include "proto/qp.hh"
#include "stats/latency_recorder.hh"
#include "sync/mcs_queue.hh"

namespace rpcvalet::node {

/** One simulated RPC server node. */
class RpcNode
{
  public:
    /** Called after each served RPC (latency-critical flag, latency). */
    using CompletionHook = std::function<void(bool, sim::Tick)>;

    /**
     * @param sim      Owning simulator.
     * @param params   Validated system parameters.
     * @param app      Application served by this node.
     * @param fabric   Inter-node fabric (node attaches itself).
     * @param warmup_samples Latency samples to discard as warmup.
     */
    RpcNode(sim::EventDomain &sim, const SystemParams &params,
            app::RpcApplication &app, net::Fabric &fabric,
            std::uint64_t warmup_samples);

    /** Software mode: park all cores on the shared queue. */
    void start();

    /** Fabric sink: a packet addressed to this node. */
    void receivePacket(proto::Packet pkt);

    /** Register a hook run after every completed RPC. */
    void setCompletionHook(CompletionHook hook);

    /**
     * Issues a handler's nested RPCs (app::HandleResult::nested) into
     * the cluster, then runs the given completion once every one of
     * them has been served. The experiment layer wires the traffic
     * generator's issueNested() here; leaving it unset is fatal only
     * when a workload actually nests.
     */
    using NestedIssuer = std::function<void(
        std::vector<std::vector<std::uint8_t>>, std::function<void()>)>;

    /** Register the cluster-side issuer for nested RPCs. */
    void setNestedIssuer(NestedIssuer issuer);

    /**
     * Fault injection: a failed node silently drops every incoming
     * packet (requests, replenishes, read responses), exactly like a
     * crashed machine whose NIC port went dark. In-flight RPCs that
     * already reached a core still complete.
     */
    void setFailed(bool failed) { failed_ = failed; }

    /** Whether this node is currently dropping packets. */
    bool failed() const { return failed_; }

    /**
     * Fault injection (ni-stall): every NI backend's ingress pipeline
     * stops draining until @p until; packets queue and drain in order
     * when the stall lifts.
     */
    void stallNi(sim::Tick until);

    /**
     * Fault injection (slow-core): multiply @p core's application
     * processing time by @p factor (1.0 restores full speed). Applies
     * to RPCs whose handler runs while the factor is set.
     */
    void setCoreSlowdown(proto::CoreId core, double factor);

    /**
     * Degraded-tail split: latency-critical samples recorded while
     * sim time is inside one of @p windows (sorted, merged fault
     * windows) land in degradedCritical(), the rest in
     * healthyCritical(). Empty (the default) disables the split and
     * its per-sample scan entirely.
     */
    void
    setDegradedWindows(std::vector<std::pair<sim::Tick, sim::Tick>> windows);

    /** Critical-RPC latencies completed inside a fault window. */
    const stats::LatencyRecorder &degradedCritical() const
    {
        return degradedCritical_;
    }

    /** Critical-RPC latencies completed outside every fault window. */
    const stats::LatencyRecorder &healthyCritical() const
    {
        return healthyCritical_;
    }

    /**
     * Enable/disable latency recording (cluster runs switch it on at
     * the measurement window; served counters always run). On by
     * default, so single-node behavior is unchanged. Turning recording
     * on also restarts the queue-occupancy high watermarks (private
     * CQs, dispatcher shared CQs), so peak stats describe the measured
     * window rather than warmup transients.
     */
    void setRecording(bool recording);

    /** Packets dropped while failed. */
    std::uint64_t droppedPackets() const { return droppedPackets_; }

    // ----- measurement -----

    /**
     * Per-RPC latency decomposition (all RPCs): where time goes
     * between first packet and replenish. Mirrors the paper's
     * end-to-end pipeline: reassembly at the NI backend, dispatch
     * (shared-CQ wait + credit wait + delivery), private-CQ wait at
     * the core, and core service. For a chained parent the service
     * component spans its processing, the nested-chain wait, and the
     * reply build — the wall-clock shape of its RPC — even though the
     * core itself was released at fan-out (S-bar excludes the wait).
     */
    struct Breakdown
    {
        stats::LatencyRecorder reassembly;
        stats::LatencyRecorder dispatch;
        stats::LatencyRecorder queueWait;
        stats::LatencyRecorder service;
    };

    /**
     * Per-request-class accounting: one latency recorder per class the
     * application declares (app::RequestClass), fed by the class id
     * each HandleResult echoes. Unlike the headline critical-only
     * recorder, non-critical classes (e.g. Masstree scans) are
     * recorded too, so their tails are no longer discarded.
     */
    struct ClassAccounting
    {
        app::RequestClass info;
        /** Post-warmup latency samples of this class. */
        stats::LatencyRecorder latency;
        /** All completions of this class, including warmup. */
        std::uint64_t served = 0;
    };

    /** Latency recorder over latency-critical RPCs (tail metric). */
    const stats::LatencyRecorder &criticalLatency() const;

    /** Latency recorder over all RPCs. */
    const stats::LatencyRecorder &allLatency() const;

    /** Per-class recorders, indexed like app.requestClasses(). */
    const std::vector<ClassAccounting> &
    classAccounting() const
    {
        return classes_;
    }

    /** Component-wise latency decomposition. */
    const Breakdown &breakdown() const { return breakdown_; }

    /** Completed RPCs (all kinds). */
    std::uint64_t served() const { return servedTotal_; }

    /** Completed latency-critical RPCs. */
    std::uint64_t servedCritical() const { return servedCritical_; }

    /** Mean core occupancy per RPC, ns (the measured S-bar of §6.1). */
    double meanServiceTimeNs() const;

    /** Per-core served counts (balance diagnostics). */
    std::vector<std::uint64_t> perCoreServed() const;

    /** Times a reply had to wait for its mirrored send slot. */
    std::uint64_t replySlotStalls() const { return replySlotStalls_; }

    /** Dead reply-slot occupants evicted after the slot lease expired
     *  (only possible when packet loss swallowed a reply, so its
     *  replenish can never arrive; see Params::replySlotLease). */
    std::uint64_t replySlotEvictions() const { return replySlotEvictions_; }

    /** Preemption yields taken (0 unless preemptionQuantum is set). */
    std::uint64_t preemptionYields() const { return preemptionYields_; }

    /** QP-cache hits (0 unless qpCacheCapacity is set). */
    std::uint64_t qpCacheHits() const { return qpHits_; }

    /** QP-cache misses, each paying qpColdFetch before dispatch. */
    std::uint64_t qpCacheMisses() const { return qpMisses_; }

    /** Peak busy receive slots (memory-footprint diagnostics). */
    std::uint32_t recvSlotPeak() const;

    /** Currently busy receive slots (0 after a full drain). */
    std::uint32_t recvSlotsBusy() const;

    /** Dispatcher introspection (null in 16x1 / software modes). */
    const ni::Dispatcher *dispatcher(std::uint32_t index) const;

    /** Software shared queue (null in hardware modes). */
    const sync::SoftwareSharedQueue *softwareQueue() const;

    /** NI backend introspection. */
    const ni::NiBackend &backend(std::uint32_t index) const;

  private:
    struct Core
    {
        bool busy = false;
        proto::Fifo<proto::CompletionQueueEntry> privateCq;
        std::uint64_t served = 0;
    };

    /**
     * Pooled CQE carrier for the dispatch-plumbing hops that ride a
     * modeled latency: backend → dispatcher forwarding, CQE delivery
     * into a core's private CQ, and software-queue pushes. Reused
     * across hops, so the per-RPC steady state never allocates.
     */
    struct CqeEvent : sim::Event
    {
        enum class Kind : std::uint8_t
        {
            DispatchEnqueue, ///< dispatchers_[0]->enqueue (§4.3 fwd)
            Deliver,         ///< deliverCqeToCore
            SwPush,          ///< swQueue_->push (§6.2)
        };

        RpcNode *node = nullptr;
        Kind kind = Kind::Deliver;
        proto::CoreId core = 0;
        proto::CompletionQueueEntry cqe;

        void process() override;
        const char *description() const override { return "cqe-hop"; }
    };

    /**
     * Pooled per-RPC service event: one object walks an RPC through
     * its core-side stages — preemption yield (+ the dispatcher
     * notify it sends), reply posting (with slot-stall retries),
     * replenish/finish, and the loop-overhead epilogue. Replaces the
     * per-stage allocating closures of the §5 service loop.
     */
    struct ServiceEvent : sim::Event
    {
        enum class Stage : std::uint8_t
        {
            Yield,       ///< quantum expired: bank continuation
            YieldNotify, ///< re-enqueue + credit return at dispatcher
            NestedIssue, ///< handler done: fan out nested RPCs
            Reply,       ///< attempt the slot-mirrored reply
            Finish,      ///< replenish posted; record + clean up
            Loop,        ///< §5 loop bookkeeping, then pull next
        };

        RpcNode *node = nullptr;
        Stage stage = Stage::Reply;
        proto::CoreId core = 0;
        std::uint32_t dispatcher = 0; ///< YieldNotify target
        bool critical = false;
        /** Parent RPC whose core was released while its nested chain
         *  ran (the reply resumed off-core; see issueNestedStage). */
        bool detached = false;
        proto::CompletionQueueEntry cqe;
        app::HandleResult result;
        sim::Tick busyStart = 0;
        /** When this reply first found its mirrored slot busy (0 =
         *  not stalled); drives the reply-slot lease. */
        sim::Tick replyWaitStart = 0;

        void process() override;
        const char *description() const override
        {
            return "rpc-service";
        }
    };

    // --- wiring helpers ---
    std::uint32_t ingressBackendFor(proto::NodeId src,
                                    std::uint32_t slot) const;
    std::uint32_t egressBackendFor(proto::CoreId core) const;
    proto::CoreId staticHashCore(proto::NodeId src,
                                 std::uint32_t slot) const;
    std::uint32_t dispatcherIndexForCore(proto::CoreId core) const;

    // --- event flow ---
    void onMessageComplete(std::uint32_t backend_id,
                           proto::CompletionQueueEntry cqe);
    /** True iff the message's connection context is cached (touches
     *  the LRU either way; only called when a cache is configured). */
    bool qpCacheLookup(proto::NodeId src, std::uint32_t conn_client);
    void dispatchMessage(std::uint32_t backend_id,
                         proto::CompletionQueueEntry cqe);
    void scheduleCqeHop(CqeEvent::Kind kind, proto::CoreId core,
                        proto::CompletionQueueEntry cqe, sim::Tick delay);
    void deliverCqeToCore(proto::CoreId core,
                          proto::CompletionQueueEntry cqe);
    void coreMaybeStart(proto::CoreId core, bool was_idle);
    void runRpc(proto::CoreId core, proto::CompletionQueueEntry cqe,
                bool was_idle);
    bool hasDispatcher() const;
    void runSlice(proto::CoreId core, proto::CompletionQueueEntry cqe,
                  sim::Tick pre_cost, sim::Tick busy_start);
    void serviceStage(ServiceEvent &ev);
    void yieldRpc(ServiceEvent &ev);
    void issueNestedStage(ServiceEvent &ev);
    void attemptReply(ServiceEvent &ev);
    void finishRpc(ServiceEvent &ev);
    void notifyDispatcherCredit(proto::CoreId core);
    void corePullNext(proto::CoreId core);

    sim::EventDomain &sim_;
    SystemParams params_;
    app::RpcApplication &app_;
    net::Fabric &fabric_;
    noc::Mesh mesh_;
    mem::RecvBuffer recv_;
    mem::SendBuffer send_;
    std::vector<std::unique_ptr<ni::NiBackend>> backends_;
    std::vector<std::unique_ptr<ni::Dispatcher>> dispatchers_;
    std::unique_ptr<sync::SoftwareSharedQueue> swQueue_;
    std::vector<Core> cores_;
    sim::Rng serverRng_;
    std::uint64_t hashSalt_;

    stats::LatencyRecorder criticalLatency_;
    stats::LatencyRecorder allLatency_;
    /** Degraded-window split (empty windows = split disabled). */
    std::vector<std::pair<sim::Tick, sim::Tick>> degradedWindows_;
    stats::LatencyRecorder degradedCritical_;
    stats::LatencyRecorder healthyCritical_;
    /** Per-core processing multipliers; empty until a slow-core fault
     *  first fires, so unfaulted runs skip the lookup. */
    std::vector<double> coreSlowdown_;
    std::vector<ClassAccounting> classes_;
    std::uint64_t warmupSamples_;
    Breakdown breakdown_;

    /** Preempted-RPC continuations, keyed by receive-slot index
     *  (unique while the slot is busy). */
    struct Continuation
    {
        sim::Tick remaining = 0;
        app::HandleResult result;
    };
    std::unordered_map<std::uint32_t, Continuation> continuations_;
    std::uint64_t preemptionYields_ = 0;

    /** Connection-context (QP) cache: LRU over (src node, client)
     *  keys, active only when params_.qpCacheCapacity > 0. Purely
     *  domain-local state, so parallel runs stay deterministic. */
    std::list<std::uint64_t> qpLru_;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        qpLruPos_;
    std::uint64_t qpHits_ = 0;
    std::uint64_t qpMisses_ = 0;
    /** Earliest tick the pipelined fetch engine can start the next
     *  context fetch (misses serialize at 1/qpFetchGap). */
    sim::Tick qpFetchNextIssue_ = 0;
    CompletionHook completionHook_;
    NestedIssuer nestedIssuer_;
    bool failed_ = false;
    bool recording_ = true;
    std::uint64_t droppedPackets_ = 0;
    std::uint64_t servedTotal_ = 0;
    std::uint64_t servedCritical_ = 0;
    std::uint64_t replySlotStalls_ = 0;
    std::uint64_t replySlotEvictions_ = 0;
    sim::Tick busyAccum_ = 0;
    sim::EventPool<CqeEvent> cqePool_;
    sim::EventPool<ServiceEvent> servicePool_;
};

} // namespace rpcvalet::node

#endif // RPCVALET_NODE_RPC_NODE_HH
