#include "node/rpc_node.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::node {

namespace {

/** splitmix64 finalizer (full-avalanche hash for RSS-style steering). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Approximate on-chip message sizes (bytes) for latency modeling. */
constexpr std::uint32_t cqeBytes = 16;
constexpr std::uint32_t wqeBytes = 32;
constexpr std::uint32_t completionPacketBytes = 16;

} // namespace

RpcNode::RpcNode(sim::EventDomain &sim, const SystemParams &params,
                 app::RpcApplication &app, net::Fabric &fabric,
                 std::uint64_t warmup_samples)
    : sim_(sim), params_(params), app_(app), fabric_(fabric),
      mesh_(params.meshRows, params.meshCols, params.hopCycles,
            params.linkBytes, params.clock()),
      recv_(params.domain), send_(params.domain),
      cores_(params.numCores),
      serverRng_(params.seed, /*stream=*/0xA4B),
      hashSalt_(mix64(params.seed ^ 0x5555AAAAuLL)),
      criticalLatency_(warmup_samples), allLatency_(warmup_samples),
      warmupSamples_(warmup_samples)
{
    params_.validate();

    // One recorder per declared request class. The per-class recorders
    // are gated on the node-wide warmup window (below) rather than
    // carrying their own sample counts: a class's first completions
    // may all land inside warmup.
    const auto classes = app_.requestClasses();
    RV_ASSERT(!classes.empty(),
              "application declares no request classes");
    classes_.reserve(classes.size());
    for (const app::RequestClass &cl : classes)
        classes_.push_back(ClassAccounting{cl, stats::LatencyRecorder(0), 0});

    for (std::uint32_t b = 0; b < params_.numBackends; ++b) {
        ni::NiBackend::Params bp;
        bp.id = b;
        bp.packetOccupancy = params_.backendPacketOccupancy;
        bp.txSetupLatency = params_.txSetupLatency;
        backends_.push_back(std::make_unique<ni::NiBackend>(
            sim_, bp, params_.memory, recv_,
            [this](std::uint32_t bid, proto::CompletionQueueEntry cqe) {
                onMessageComplete(bid, std::move(cqe));
            },
            [this](proto::NodeId dst, std::uint32_t slot) {
                if (replySlotEvictions_ > 0 &&
                    !send_.slotBusy(dst, slot)) {
                    // A replenish for a slot the lease already
                    // evicted (its reply was delayed past the lease
                    // rather than dropped — possible only under
                    // extreme injected delay). The credit was
                    // reclaimed up front; ignore the echo. Without
                    // evictions this stays a protocol violation,
                    // caught by release's assert.
                    return;
                }
                send_.release(dst, slot);
            },
            [this](proto::Packet pkt) { fabric_.send(std::move(pkt)); }));
    }

    auto make_deliver = [this](std::uint32_t backend_id) {
        return [this, backend_id](proto::CoreId core,
                                  proto::CompletionQueueEntry cqe) {
            const sim::Tick delay =
                mesh_.backendToCore(backend_id, core, cqeBytes) +
                params_.memory.qpTransferLatency();
            scheduleCqeHop(CqeEvent::Kind::Deliver, core, std::move(cqe),
                           delay);
        };
    };

    switch (params_.mode) {
      case ni::DispatchMode::SingleQueue: {
        std::vector<proto::CoreId> all;
        for (proto::CoreId c = 0; c < params_.numCores; ++c)
            all.push_back(c);
        ni::Dispatcher::Params dp;
        dp.outstandingThreshold = params_.outstandingPerCore;
        dp.decisionOccupancy = params_.dispatcherDecision;
        dp.seed = params_.seed;
        dispatchers_.push_back(std::make_unique<ni::Dispatcher>(
            sim_, dp, ni::makePolicy(params_.policy), params_.numCores,
            std::move(all), make_deliver(params_.dispatcherBackend)));
        break;
      }
      case ni::DispatchMode::PerBackendGroup: {
        const std::uint32_t group = params_.numCores / params_.numBackends;
        for (std::uint32_t d = 0; d < params_.numBackends; ++d) {
            std::vector<proto::CoreId> cand;
            for (std::uint32_t i = 0; i < group; ++i)
                cand.push_back(d * group + i);
            ni::Dispatcher::Params dp;
            dp.outstandingThreshold = params_.outstandingPerCore;
            dp.decisionOccupancy = params_.dispatcherDecision;
            dp.seed = params_.seed + d;
            dispatchers_.push_back(std::make_unique<ni::Dispatcher>(
                sim_, dp, ni::makePolicy(params_.policy),
                params_.numCores, std::move(cand), make_deliver(d)));
        }
        break;
      }
      case ni::DispatchMode::StaticHash:
        break; // CQEs go straight to the hashed core
      case ni::DispatchMode::SoftwarePull:
        swQueue_ = std::make_unique<sync::SoftwareSharedQueue>(
            sim_, params_.mcs);
        break;
    }

    fabric_.connect(params_.nodeId,
                    [this](proto::Packet pkt) {
                        receivePacket(std::move(pkt));
                    });
}

void
RpcNode::start()
{
    if (params_.mode != ni::DispatchMode::SoftwarePull)
        return;
    for (proto::CoreId core = 0; core < params_.numCores; ++core) {
        swQueue_->requestPull(
            [this, core](const proto::CompletionQueueEntry &entry) {
                proto::CompletionQueueEntry granted = entry;
                granted.deliveredTick = sim_.now();
                runRpc(core, std::move(granted), /*was_idle=*/false);
            });
    }
}

void
RpcNode::setCompletionHook(CompletionHook hook)
{
    completionHook_ = std::move(hook);
}

void
RpcNode::setNestedIssuer(NestedIssuer issuer)
{
    nestedIssuer_ = std::move(issuer);
}

std::uint32_t
RpcNode::ingressBackendFor(proto::NodeId src, std::uint32_t slot) const
{
    // All packets of one message route through the same backend; the
    // (src, slot) hash keeps messages spread uniformly across the
    // replicated backends (Fig. 4 parallelism).
    const std::uint64_t h =
        mix64(static_cast<std::uint64_t>(src) * 0x100000001b3ULL + slot +
              hashSalt_);
    return static_cast<std::uint32_t>(h % params_.numBackends);
}

std::uint32_t
RpcNode::egressBackendFor(proto::CoreId core) const
{
    // A core transmits through its row's edge backend (nearest).
    const noc::Coord c = mesh_.coreCoord(core);
    return static_cast<std::uint32_t>(c.row) % params_.numBackends;
}

proto::CoreId
RpcNode::staticHashCore(proto::NodeId src, std::uint32_t slot) const
{
    // RSS-style static spreading (§2.3): purely header-driven, no load
    // information — the 16x1 configuration of Fig. 1.
    const std::uint64_t h =
        mix64((static_cast<std::uint64_t>(src) << 20) ^ slot ^
              (hashSalt_ * 0x9e3779b97f4a7c15ULL));
    return static_cast<proto::CoreId>(h % params_.numCores);
}

std::uint32_t
RpcNode::dispatcherIndexForCore(proto::CoreId core) const
{
    if (params_.mode == ni::DispatchMode::SingleQueue)
        return 0;
    RV_ASSERT(params_.mode == ni::DispatchMode::PerBackendGroup,
              "no dispatcher in this mode");
    return core / (params_.numCores / params_.numBackends);
}

void
RpcNode::receivePacket(proto::Packet pkt)
{
    if (failed_) {
        ++droppedPackets_;
        return;
    }
    const std::uint32_t backend =
        ingressBackendFor(pkt.hdr.src, pkt.hdr.slot);
    backends_[backend]->receivePacket(std::move(pkt));
}

void
RpcNode::onMessageComplete(std::uint32_t backend_id,
                           proto::CompletionQueueEntry cqe)
{
    // Connection-context cache (src/conn/): when the NI can only hold
    // qpCacheCapacity connection contexts, a message from an uncached
    // (src, client) pair pays the context fetch from memory before its
    // completion can be dispatched. Default runs (capacity 0, or no
    // client-population model tagging packets) skip this entirely.
    if (params_.qpCacheCapacity > 0 &&
        cqe.connClient != proto::noConnClient &&
        !qpCacheLookup(cqe.srcNode, cqe.connClient)) {
        // The fetch engine is a shared, pipelined resource: it can
        // START a new context fetch every qpFetchGap, and each fetch
        // completes qpColdFetch after it starts. Under cache thrash
        // the engine saturates and misses queue behind each other —
        // the throughput collapse that makes connection grouping
        // worthwhile, not just a fixed latency adder.
        const sim::Tick now = sim_.now();
        const sim::Tick issue =
            std::max(now, qpFetchNextIssue_);
        qpFetchNextIssue_ = issue + params_.qpFetchGap;
        const sim::Tick done = issue + params_.qpColdFetch;
        sim_.schedule(done - now, [this, backend_id, cqe] {
            dispatchMessage(backend_id, cqe);
        });
        return;
    }
    dispatchMessage(backend_id, std::move(cqe));
}

bool
RpcNode::qpCacheLookup(proto::NodeId src, std::uint32_t conn_client)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 32) | conn_client;
    auto it = qpLruPos_.find(key);
    if (it != qpLruPos_.end()) {
        ++qpHits_;
        qpLru_.splice(qpLru_.begin(), qpLru_, it->second);
        return true;
    }
    ++qpMisses_;
    if (qpLruPos_.size() >= params_.qpCacheCapacity) {
        qpLruPos_.erase(qpLru_.back());
        qpLru_.pop_back();
    }
    qpLru_.push_front(key);
    qpLruPos_[key] = qpLru_.begin();
    return false;
}

void
RpcNode::dispatchMessage(std::uint32_t backend_id,
                         proto::CompletionQueueEntry cqe)
{
    switch (params_.mode) {
      case ni::DispatchMode::SingleQueue: {
        // §4.3: the backend wraps the completion in a special packet
        // and forwards it to the NI dispatcher over the mesh.
        const sim::Tick delay = mesh_.backendToBackend(
            backend_id, params_.dispatcherBackend, completionPacketBytes);
        scheduleCqeHop(CqeEvent::Kind::DispatchEnqueue, 0, std::move(cqe),
                       delay);
        break;
      }
      case ni::DispatchMode::PerBackendGroup:
        // The receiving backend is its own dispatcher.
        dispatchers_[backend_id]->enqueue(std::move(cqe));
        break;
      case ni::DispatchMode::StaticHash: {
        const proto::CoreId core =
            staticHashCore(cqe.srcNode,
                           params_.domain.slotOffset(cqe.slotIndex));
        const sim::Tick delay =
            mesh_.backendToCore(backend_id, core, cqeBytes) +
            params_.memory.qpTransferLatency();
        scheduleCqeHop(CqeEvent::Kind::Deliver, core, std::move(cqe),
                       delay);
        break;
      }
      case ni::DispatchMode::SoftwarePull: {
        // NIs append to the software queue in shared memory (§6.2).
        scheduleCqeHop(CqeEvent::Kind::SwPush, 0, std::move(cqe),
                       params_.memory.llcLatency);
        break;
      }
    }
}

void
RpcNode::scheduleCqeHop(CqeEvent::Kind kind, proto::CoreId core,
                        proto::CompletionQueueEntry cqe, sim::Tick delay)
{
    CqeEvent *ev = cqePool_.acquire();
    ev->node = this;
    ev->kind = kind;
    ev->core = core;
    ev->cqe = std::move(cqe);
    sim_.schedule(*ev, delay);
}

void
RpcNode::CqeEvent::process()
{
    RpcNode *n = node;
    const Kind k = kind;
    const proto::CoreId c = core;
    proto::CompletionQueueEntry e = std::move(cqe);
    // Recycle first: the hop's handler can schedule further hops.
    n->cqePool_.release(this);
    switch (k) {
      case Kind::DispatchEnqueue:
        n->dispatchers_[0]->enqueue(std::move(e));
        break;
      case Kind::Deliver:
        n->deliverCqeToCore(c, std::move(e));
        break;
      case Kind::SwPush:
        n->swQueue_->push(std::move(e));
        break;
    }
}

void
RpcNode::deliverCqeToCore(proto::CoreId core,
                          proto::CompletionQueueEntry cqe)
{
    cqe.deliveredTick = sim_.now();
    Core &c = cores_[core];
    c.privateCq.push(std::move(cqe));
    if (!c.busy)
        coreMaybeStart(core, /*was_idle=*/true);
}

void
RpcNode::coreMaybeStart(proto::CoreId core, bool was_idle)
{
    Core &c = cores_[core];
    if (c.busy || c.privateCq.empty())
        return;
    proto::CompletionQueueEntry cqe = c.privateCq.pop();
    runRpc(core, std::move(cqe), was_idle);
}

void
RpcNode::stallNi(sim::Tick until)
{
    for (auto &backend : backends_)
        backend->stallIngress(until);
}

void
RpcNode::setCoreSlowdown(proto::CoreId core, double factor)
{
    RV_ASSERT(core < cores_.size(), "slow-core target out of range");
    RV_ASSERT(factor >= 1.0, "core slowdown factor must be >= 1");
    if (coreSlowdown_.empty())
        coreSlowdown_.assign(cores_.size(), 1.0);
    coreSlowdown_[core] = factor;
}

void
RpcNode::setDegradedWindows(
    std::vector<std::pair<sim::Tick, sim::Tick>> windows)
{
    degradedWindows_ = std::move(windows);
}

void
RpcNode::setRecording(bool recording)
{
    // Opening the measurement window restarts peak-occupancy tracking,
    // so recvSlotPeak/sharedCqPeak and friends describe the measured
    // interval instead of whatever the warmup burst piled up.
    if (recording && !recording_) {
        for (Core &c : cores_)
            c.privateCq.resetHighWatermark();
        for (auto &d : dispatchers_)
            d->resetSharedCqPeak();
    }
    recording_ = recording;
}

bool
RpcNode::hasDispatcher() const
{
    return params_.mode == ni::DispatchMode::SingleQueue ||
           params_.mode == ni::DispatchMode::PerBackendGroup;
}

void
RpcNode::runRpc(proto::CoreId core, proto::CompletionQueueEntry cqe,
                bool was_idle)
{
    Core &c = cores_[core];
    RV_ASSERT(!c.busy, "core started an RPC while busy");
    c.busy = true;
    const sim::Tick busy_start = sim_.now();
    const CoreCosts &cc = params_.coreCosts;

    // A continuation of a previously preempted RPC resumes directly:
    // the handler already ran; only the remaining processing time and
    // a context restore are due.
    if (auto it = continuations_.find(cqe.slotIndex);
        it != continuations_.end()) {
        const sim::Tick pre = (was_idle ? cc.pollDetect : sim::Tick(0)) +
                              cc.cqeParse + params_.preemptionOverhead;
        runSlice(core, std::move(cqe), pre, busy_start);
        return;
    }

    // Fresh RPC: functional execution against the receive buffer's
    // actual bytes.
    const mem::RecvSlot &slot = recv_.slot(cqe.slotIndex);
    RV_ASSERT(slot.busy, "RPC references a released receive slot");
    RV_ASSERT(slot.arrivedBlocks == slot.totalBlocks,
              "RPC dispatched before message completion");
    app::HandleResult result = app_.handle(slot.payload, serverRng_);

    sim::Tick processing = sim::nanoseconds(result.processingNs);
    // slow-core fault: this core's handler time is stretched while the
    // factor is set (the vector stays empty until a fault first fires).
    if (!coreSlowdown_.empty() && coreSlowdown_[core] > 1.0) {
        processing = static_cast<sim::Tick>(
            static_cast<double>(processing) * coreSlowdown_[core]);
    }
    const sim::Tick base_pre = (was_idle ? cc.pollDetect : sim::Tick(0)) +
                               cc.cqeParse + cc.requestRead +
                               cc.appDispatch;

    if (params_.preemptionQuantum > 0 && hasDispatcher() &&
        processing > params_.preemptionQuantum) {
        // Shinjuku-style yield: bank the continuation, run one quantum.
        continuations_[cqe.slotIndex] = Continuation{
            processing - params_.preemptionQuantum, std::move(result)};
        const sim::Tick pre = base_pre + params_.preemptionQuantum +
                              params_.preemptionOverhead;
        ServiceEvent *ev = servicePool_.acquire();
        ev->node = this;
        ev->stage = ServiceEvent::Stage::Yield;
        ev->core = core;
        ev->detached = false;
        ev->cqe = std::move(cqe);
        ev->busyStart = busy_start;
        sim_.schedule(*ev, pre);
        return;
    }

    // A chained handler: the nested RPCs depart once the handler's own
    // processing is done; the reply (and its build cost) waits for the
    // chain. Non-nesting workloads never reach this branch, keeping
    // their event sequence bit-identical.
    if (!result.nested.empty()) {
        if (!nestedIssuer_) {
            sim::fatal("workload issued nested RPCs but no nested "
                       "issuer is wired (single-node harness?)");
        }
        const sim::Tick pre = base_pre + processing;
        ServiceEvent *ev = servicePool_.acquire();
        ev->node = this;
        ev->stage = ServiceEvent::Stage::NestedIssue;
        ev->core = core;
        ev->detached = false;
        ev->cqe = std::move(cqe);
        ev->result = std::move(result);
        ev->busyStart = busy_start;
        sim_.schedule(*ev, pre);
        return;
    }

    const sim::Tick pre = base_pre + processing + cc.replyBuild;
    ServiceEvent *ev = servicePool_.acquire();
    ev->node = this;
    ev->stage = ServiceEvent::Stage::Reply;
    ev->core = core;
    ev->detached = false;
    ev->cqe = std::move(cqe);
    ev->result = std::move(result);
    ev->busyStart = busy_start;
    sim_.schedule(*ev, pre);
}

void
RpcNode::ServiceEvent::process()
{
    node->serviceStage(*this);
}

void
RpcNode::serviceStage(ServiceEvent &ev)
{
    switch (ev.stage) {
      case ServiceEvent::Stage::Yield:
        yieldRpc(ev);
        break;
      case ServiceEvent::Stage::YieldNotify: {
        // §4.3: the continuation re-enters the shared CQ (FIFO tail)
        // and the core's credit returns, in that order.
        const std::uint32_t d = ev.dispatcher;
        const proto::CoreId core = ev.core;
        proto::CompletionQueueEntry cqe = std::move(ev.cqe);
        servicePool_.release(&ev);
        dispatchers_[d]->enqueue(std::move(cqe));
        dispatchers_[d]->onReplenish(core);
        break;
      }
      case ServiceEvent::Stage::NestedIssue:
        issueNestedStage(ev);
        break;
      case ServiceEvent::Stage::Reply:
        attemptReply(ev);
        break;
      case ServiceEvent::Stage::Finish:
        finishRpc(ev);
        break;
      case ServiceEvent::Stage::Loop: {
        // §5 loop bookkeeping, then look for the next request.
        const proto::CoreId core = ev.core;
        const sim::Tick busy_start = ev.busyStart;
        servicePool_.release(&ev);
        busyAccum_ += sim_.now() - busy_start;
        corePullNext(core);
        break;
      }
    }
}

void
RpcNode::runSlice(proto::CoreId core, proto::CompletionQueueEntry cqe,
                  sim::Tick pre_cost, sim::Tick busy_start)
{
    auto it = continuations_.find(cqe.slotIndex);
    RV_ASSERT(it != continuations_.end(), "missing continuation");
    Continuation &cont = it->second;

    ServiceEvent *ev = servicePool_.acquire();
    ev->node = this;
    ev->core = core;
    ev->detached = false;
    ev->busyStart = busy_start;

    if (cont.remaining > params_.preemptionQuantum) {
        cont.remaining -= params_.preemptionQuantum;
        const sim::Tick pre = pre_cost + params_.preemptionQuantum +
                              params_.preemptionOverhead;
        ev->stage = ServiceEvent::Stage::Yield;
        ev->cqe = std::move(cqe);
        sim_.schedule(*ev, pre);
        return;
    }

    // Final slice: finish the remaining work and take the normal exit
    // path — nested fan-out if the handler chained, else the reply.
    const sim::Tick remaining = cont.remaining;
    ev->cqe = std::move(cqe);
    ev->result = std::move(cont.result);
    continuations_.erase(it);
    if (!ev->result.nested.empty()) {
        if (!nestedIssuer_) {
            sim::fatal("workload issued nested RPCs but no nested "
                       "issuer is wired (single-node harness?)");
        }
        ev->stage = ServiceEvent::Stage::NestedIssue;
        sim_.schedule(*ev, pre_cost + remaining);
        return;
    }
    ev->stage = ServiceEvent::Stage::Reply;
    const sim::Tick pre =
        pre_cost + remaining + params_.coreCosts.replyBuild;
    sim_.schedule(*ev, pre);
}

void
RpcNode::yieldRpc(ServiceEvent &ev)
{
    ++preemptionYields_;
    // The continuation re-enters the dispatcher's shared CQ (FIFO
    // tail) and the core's credit returns; both notifications travel
    // the same core-to-dispatcher path as a replenish (§4.3). The
    // event itself becomes the notify carrier.
    const proto::CoreId core = ev.core;
    const std::uint32_t d = dispatcherIndexForCore(core);
    const std::uint32_t db =
        params_.mode == ni::DispatchMode::SingleQueue
            ? params_.dispatcherBackend
            : d;
    const sim::Tick notify_delay =
        params_.memory.qpTransferLatency() +
        mesh_.coreToBackend(core, db, wqeBytes);
    ev.stage = ServiceEvent::Stage::YieldNotify;
    ev.dispatcher = d;
    sim_.schedule(ev, notify_delay);

    // Slice occupancy counts toward S-bar; the RPC itself completes
    // later, so servedTotal does not move here.
    busyAccum_ += sim_.now() - ev.busyStart;
    corePullNext(core);
}

void
RpcNode::issueNestedStage(ServiceEvent &ev)
{
    // The handler ran to completion and declared nested RPCs. The
    // parent becomes a detached continuation: its core is released
    // (occupancy counts only the handler's own processing, so S-bar
    // stays honest) and its reply resumes — off-core, reply-build cost
    // only — once the chain group completes. The receive slot stays
    // busy meanwhile, exactly like a thread parked on pending I/O.
    const proto::CoreId core = ev.core;
    busyAccum_ += sim_.now() - ev.busyStart;

    // The core's dispatch credit returns now, not at the (deferred)
    // replenish: the core really is free to serve other RPCs while
    // the chain is in flight.
    notifyDispatcherCredit(core);

    std::vector<std::vector<std::uint8_t>> nested =
        std::move(ev.result.nested);
    ev.result.nested.clear();
    ServiceEvent *parent = &ev;
    corePullNext(core);
    nestedIssuer_(std::move(nested), [this, parent] {
        parent->detached = true;
        parent->stage = ServiceEvent::Stage::Reply;
        sim_.schedule(*parent, params_.coreCosts.replyBuild);
    });
}

void
RpcNode::attemptReply(ServiceEvent &ev)
{
    const proto::CoreId core = ev.core;
    const proto::NodeId requester = ev.cqe.srcNode;
    const std::uint32_t slot_off =
        params_.domain.slotOffset(ev.cqe.slotIndex);

    // Slot-mirrored reply: response to request slot s departs on send
    // slot s toward the requester.
    if (send_.slotBusy(requester, slot_off)) {
        const bool lease_expired =
            params_.replySlotLease > 0 && ev.replyWaitStart != 0 &&
            sim_.now() - ev.replyWaitStart >= params_.replySlotLease;
        if (!lease_expired) {
            // Mirrored slot still awaiting its replenish: spin and
            // retry (the core stays busy, §4.2 flow control).
            if (ev.replyWaitStart == 0)
                ev.replyWaitStart = sim_.now();
            ++replySlotStalls_;
            sim_.schedule(ev, params_.sendSlotRetry);
            return;
        }
        // The occupant's replenish is overdue by far more than a
        // round trip plus client turnaround: its reply was lost to
        // packet-loss injection, so the credit can never return and
        // the occupant's client long ago timed the request out.
        // Reclaim the slot rather than spinning this core forever.
        send_.release(requester, slot_off);
        ++replySlotEvictions_;
    }
    ev.replyWaitStart = 0;
    const bool acquired = send_.acquireSpecific(
        requester, slot_off, std::move(ev.result.reply));
    RV_ASSERT(acquired, "mirrored slot raced despite busy probe");

    const CoreCosts &cc = params_.coreCosts;
    const std::uint32_t eb = egressBackendFor(core);
    const sim::Tick wqe_delay =
        params_.memory.qpTransferLatency() +
        mesh_.coreToBackend(core, eb, wqeBytes);

    // §4.2 "Send operation": the WQE reaches the NI, which reads the
    // payload and streams the packets.
    sim_.schedule(cc.sendPost + wqe_delay,
                  [this, eb, requester, slot_off] {
                      backends_[eb]->transmitMessage(
                          proto::OpType::Send, params_.nodeId, requester,
                          slot_off, send_.payload(requester, slot_off));
                  });

    // §5 step iv: replenish is posted right after the send; latency
    // measurement ends there.
    ev.critical = ev.result.latencyCritical;
    ev.stage = ServiceEvent::Stage::Finish;
    sim_.schedule(ev, cc.sendPost + cc.replenishPost);
}

void
RpcNode::finishRpc(ServiceEvent &ev)
{
    const proto::CoreId core = ev.core;
    const proto::CompletionQueueEntry &cqe = ev.cqe;
    const bool critical = ev.critical;
    const sim::Tick busy_start = ev.busyStart;

    const sim::Tick latency = sim_.now() - cqe.firstPacketTick;
    ++servedTotal_;
    if (critical)
        ++servedCritical_;
    // Per-class accounting, including non-critical classes. Clamp a
    // stray id (e.g. a hand-built request against a workload that
    // never generates that class) into the declared table.
    const std::size_t cls = std::min<std::size_t>(ev.result.classId,
                                                  classes_.size() - 1);
    ClassAccounting &acct = classes_[cls];
    ++acct.served;
    ++cores_[core].served;

    if (recording_) {
        allLatency_.record(latency);
        if (critical) {
            criticalLatency_.record(latency);
            // Degraded-tail split: bucket by whether the RPC completed
            // inside a fault window (few windows — linear scan).
            if (!degradedWindows_.empty()) {
                const sim::Tick now = sim_.now();
                bool degraded = false;
                for (const auto &[from, until] : degradedWindows_) {
                    if (now >= from && now < until) {
                        degraded = true;
                        break;
                    }
                }
                (degraded ? degradedCritical_ : healthyCritical_)
                    .record(latency);
            }
        }
        if (allLatency_.observed() > warmupSamples_)
            acct.latency.record(latency);

        // Component decomposition (timestamps are monotone along the
        // pipeline by construction).
        breakdown_.reassembly.record(cqe.completionTick -
                                     cqe.firstPacketTick);
        breakdown_.dispatch.record(cqe.deliveredTick -
                                   cqe.completionTick);
        breakdown_.queueWait.record(busy_start - cqe.deliveredTick);
        breakdown_.service.record(sim_.now() - busy_start);
    }

    const proto::NodeId requester = cqe.srcNode;
    const std::uint32_t slot_off =
        params_.domain.slotOffset(cqe.slotIndex);
    const std::uint32_t eb = egressBackendFor(core);

    // The receive slot is reusable once the replenish is on its way:
    // the sender will not reuse the slot before seeing the credit.
    recv_.release(cqe.slotIndex);

    const sim::Tick wqe_delay =
        params_.memory.qpTransferLatency() +
        mesh_.coreToBackend(core, eb, wqeBytes);
    sim_.schedule(wqe_delay, [this, eb, requester, slot_off] {
        backends_[eb]->transmitMessage(proto::OpType::Replenish,
                                       params_.nodeId, requester,
                                       slot_off, {});
    });

    // Tell the dispatcher this core freed a credit (hardware modes).
    // A detached parent already returned its credit when its nested
    // RPCs departed (issueNestedStage) — no second notify.
    if (!ev.detached)
        notifyDispatcherCredit(core);

    if (completionHook_)
        completionHook_(critical, latency);

    if (ev.detached) {
        // The core moved on long ago (issueNestedStage accounted its
        // occupancy and pulled the next request); the parent's
        // bookkeeping above is all that was left.
        servicePool_.release(&ev);
        return;
    }

    // §5 loop bookkeeping, then look for the next request (the event
    // carries itself into the Loop epilogue).
    ev.stage = ServiceEvent::Stage::Loop;
    sim_.schedule(ev, params_.coreCosts.loopOverhead);
}

void
RpcNode::notifyDispatcherCredit(proto::CoreId core)
{
    if (params_.mode != ni::DispatchMode::SingleQueue &&
        params_.mode != ni::DispatchMode::PerBackendGroup)
        return;
    const std::uint32_t d = dispatcherIndexForCore(core);
    const std::uint32_t db =
        params_.mode == ni::DispatchMode::SingleQueue
            ? params_.dispatcherBackend
            : d;
    const sim::Tick notify_delay =
        params_.memory.qpTransferLatency() +
        mesh_.coreToBackend(core, db, wqeBytes);
    sim_.schedule(notify_delay,
                  [this, d, core] { dispatchers_[d]->onReplenish(core); });
}

void
RpcNode::corePullNext(proto::CoreId core)
{
    Core &c = cores_[core];
    c.busy = false;
    if (params_.mode == ni::DispatchMode::SoftwarePull) {
        swQueue_->requestPull(
            [this, core](const proto::CompletionQueueEntry &entry) {
                proto::CompletionQueueEntry granted = entry;
                granted.deliveredTick = sim_.now();
                runRpc(core, std::move(granted), /*was_idle=*/false);
            });
        return;
    }
    coreMaybeStart(core, /*was_idle=*/false);
}

const stats::LatencyRecorder &
RpcNode::criticalLatency() const
{
    return criticalLatency_;
}

const stats::LatencyRecorder &
RpcNode::allLatency() const
{
    return allLatency_;
}

double
RpcNode::meanServiceTimeNs() const
{
    if (servedTotal_ == 0)
        return 0.0;
    return sim::toNs(busyAccum_) / static_cast<double>(servedTotal_);
}

std::vector<std::uint64_t>
RpcNode::perCoreServed() const
{
    std::vector<std::uint64_t> out;
    out.reserve(cores_.size());
    for (const Core &c : cores_)
        out.push_back(c.served);
    return out;
}

std::uint32_t
RpcNode::recvSlotPeak() const
{
    return recv_.busyHighWatermark();
}

std::uint32_t
RpcNode::recvSlotsBusy() const
{
    return recv_.busyCount();
}

const ni::Dispatcher *
RpcNode::dispatcher(std::uint32_t index) const
{
    if (index >= dispatchers_.size())
        return nullptr;
    return dispatchers_[index].get();
}

const sync::SoftwareSharedQueue *
RpcNode::softwareQueue() const
{
    return swQueue_.get();
}

const ni::NiBackend &
RpcNode::backend(std::uint32_t index) const
{
    RV_ASSERT(index < backends_.size(), "backend index out of range");
    return *backends_[index];
}

} // namespace rpcvalet::node
