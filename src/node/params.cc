#include "node/params.hh"

#include "sim/logging.hh"

namespace rpcvalet::node {

void
SystemParams::validate() const
{
    domain.validate();
    if (numCores == 0)
        sim::fatal("node needs at least one core");
    if (numCores != static_cast<std::uint32_t>(meshRows * meshCols))
        sim::fatal("numCores must equal meshRows * meshCols");
    if (numBackends == 0 || numBackends > numCores)
        sim::fatal("backend count must be in [1, numCores]");
    if (dispatcherBackend >= numBackends)
        sim::fatal("dispatcherBackend out of range");
    if (outstandingPerCore == 0)
        sim::fatal("outstandingPerCore must be at least 1");
    if (clockGhz <= 0.0)
        sim::fatal("clock frequency must be positive");
    if (nodeId >= domain.numNodes)
        sim::fatal("nodeId outside messaging domain");
    if (mode == ni::DispatchMode::PerBackendGroup &&
        numCores % numBackends != 0) {
        sim::fatal("4x4 mode needs numCores divisible by numBackends");
    }
    if (!ni::PolicyRegistry::instance().contains(policy.name)) {
        sim::fatal("unknown dispatch policy '" + policy.name +
                   "' (registered policies: " +
                   ni::PolicyRegistry::instance().namesJoined() + ")");
    }
}

} // namespace rpcvalet::node
