/**
 * @file
 * Full-system configuration: Table 1's simulation parameters plus the
 * microbenchmark step costs of §5 and the RPCValet knobs of §4.3.
 */

#ifndef RPCVALET_NODE_PARAMS_HH
#define RPCVALET_NODE_PARAMS_HH

#include <cstdint>

#include "mem/memory_model.hh"
#include "ni/dispatch_policy.hh"
#include "proto/messaging.hh"
#include "sim/types.hh"
#include "sync/mcs_queue.hh"

namespace rpcvalet::node {

/**
 * Per-RPC core-side step costs of the §5 microbenchmark loop:
 * (i) poll for a CQE, (ii) execute the RPC's processing time X,
 * (iii) send a reply, (iv) replenish. The defaults are calibrated so
 * the HERD workload's measured mean service time lands at §6.1's
 * ~550 ns for a 330 ns mean processing time (i.e. ~220 ns of loop
 * overhead); see DESIGN.md §5 and tests/node/calibration_test.cc.
 */
struct CoreCosts
{
    /** Detecting a fresh CQE when the core was idle-polling. */
    sim::Tick pollDetect = sim::nanoseconds(15.0);
    /** Parsing the CQE and locating the receive slot. */
    sim::Tick cqeParse = sim::nanoseconds(10.0);
    /** Reading the request payload out of the receive buffer. */
    sim::Tick requestRead = sim::nanoseconds(45.0);
    /** Request unmarshalling and handler dispatch. */
    sim::Tick appDispatch = sim::nanoseconds(45.0);
    /** Building the reply message in the send buffer. */
    sim::Tick replyBuild = sim::nanoseconds(25.0);
    /** Posting the reply's send WQE. */
    sim::Tick sendPost = sim::nanoseconds(30.0);
    /** Posting the replenish WQE (end of latency measurement, §5). */
    sim::Tick replenishPost = sim::nanoseconds(30.0);
    /** Event-loop bookkeeping before the next poll. */
    sim::Tick loopOverhead = sim::nanoseconds(20.0);

    /** Total per-RPC overhead excluding processing time X. */
    sim::Tick
    totalOverhead() const
    {
        return pollDetect + cqeParse + requestRead + appDispatch +
               replyBuild + sendPost + replenishPost + loopOverhead;
    }
};

/** Everything needed to instantiate the modeled server. */
struct SystemParams
{
    /** Identity of the node under test within the messaging domain. */
    proto::NodeId nodeId = 0;
    /** Cores on the chip (Table 1: 16). */
    std::uint32_t numCores = 16;
    /** NI backends along the chip edge (one per mesh row). */
    std::uint32_t numBackends = 4;

    /** Core/NI clock (Table 1: 2 GHz). */
    double clockGhz = 2.0;
    /** Mesh geometry (Table 1: 2D mesh, 16 B links, 3 cycles/hop). */
    int meshRows = 4;
    int meshCols = 4;
    double hopCycles = 3.0;
    std::uint32_t linkBytes = 16;

    /** Messaging-domain shape (§5: 200-node cluster). */
    proto::MessagingDomain domain{};
    /** Memory-hierarchy latencies (Table 1). */
    mem::MemoryModel memory{};
    /** Microbenchmark loop costs (§5). */
    CoreCosts coreCosts{};

    /** NI backend pipeline occupancy per packet. */
    sim::Tick backendPacketOccupancy = sim::nanoseconds(3.0);
    /** Payload fetch before the first packet of an egress message. */
    sim::Tick txSetupLatency = sim::nanoseconds(4.5);
    /** Dispatcher decision pipeline occupancy (§4.3). */
    sim::Tick dispatcherDecision = sim::nanoseconds(4.0);

    /** Queuing topology (1x16 / 4x4 / 16x1 / software). */
    ni::DispatchMode mode = ni::DispatchMode::SingleQueue;
    /**
     * Core-selection policy for hardware dispatchers, looked up in the
     * ni::PolicyRegistry by spec string — e.g. "greedy" (default),
     * "rr", "pow2:d=3", "jbsq:d=2", "stale-jsq:staleness=50ns",
     * "delay-aware".
     */
    ni::PolicySpec policy{};
    /** Max outstanding RPCs per core (§4.3: 2). */
    std::uint32_t outstandingPerCore = 2;
    /** Which backend hosts the single-queue dispatcher (§4.3). */
    std::uint32_t dispatcherBackend = 0;

    /** MCS lock model for the software baseline (§6.2). */
    sync::McsParams mcs{};

    /**
     * Shinjuku-style preemption (extension; §7 suggests combining
     * RPCValet with preemptive scheduling for workloads mixing
     * hundred-ns RPCs with hundred-us ones). When non-zero, an RPC
     * whose processing exceeds the quantum yields: its continuation
     * re-enters the NI dispatcher's shared CQ and the core's credit
     * returns, letting queued short RPCs run. Only effective in
     * dispatcher modes (1x16, 4x4).
     */
    sim::Tick preemptionQuantum = 0;
    /** Context save/restore cost paid at every yield and resume. */
    sim::Tick preemptionOverhead = sim::nanoseconds(250.0);

    /** Retry interval when a reply's send slot is still in flight. */
    sim::Tick sendSlotRetry = sim::nanoseconds(20.0);

    /**
     * Give up waiting for a mirrored reply slot after this long and
     * evict its occupant (0 = wait forever, the lossless-fabric
     * default). On a lossless fabric a busy slot always drains —
     * the client's replenish is at most a round trip plus turnaround
     * away — but when fault injection can drop a reply packet, that
     * replenish never comes and the core spinning in attemptReply
     * would be lost for the rest of the run. The experiment layer
     * enables the lease (2x the client request timeout) only when a
     * packet-loss fault is active, so fault-free runs keep the exact
     * legacy path.
     */
    sim::Tick replySlotLease = 0;

    /**
     * Connection-context (QP) cache capacity of the NI, in
     * connections (0 = unlimited, the legacy default: no connection
     * state is ever scarce). When positive and a message carries a
     * logical client id (see proto::PacketHeader::connClient), the
     * node keys an LRU cache on (src node, client); a miss delays the
     * message's dispatch by qpColdFetch while the NI pulls the
     * context from memory. The connection-management layer
     * (src/conn/) sizes this for one ScaleRPC group.
     */
    std::uint32_t qpCacheCapacity = 0;
    /** Context-fetch penalty a QP-cache miss pays before dispatch. */
    sim::Tick qpColdFetch = sim::nanoseconds(1000.0);
    /**
     * Minimum gap between context-fetch starts: the NI's fetch engine
     * is pipelined but finite, so sustained misses above 1/qpFetchGap
     * queue behind each other (thrash costs throughput, not just
     * latency).
     */
    sim::Tick qpFetchGap = sim::nanoseconds(200.0);

    /** One-way inter-node fabric latency. */
    sim::Tick fabricLatency = sim::nanoseconds(100.0);

    /** Experiment seed (all component streams derive from it). */
    std::uint64_t seed = 1;

    /** Chip clock helper. */
    sim::Clock clock() const { return sim::Clock(clockGhz); }

    /** fatal() on inconsistent configuration. */
    void validate() const;
};

} // namespace rpcvalet::node

#endif // RPCVALET_NODE_PARAMS_HH
