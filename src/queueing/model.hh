/**
 * @file
 * Theoretical Q x U queuing systems (Fig. 1 / §2.2).
 *
 * A queuing system has Q FIFO queues and U serving units per queue
 * (Q*U = 16 for the paper's hypothetical server). Poisson arrivals are
 * assigned uniformly at random to a queue; each queue's units serve it
 * in FIFO order. This is the model used for Fig. 2 and for the "Model"
 * curves of Fig. 9 (via a split fixed+distributed service time, §6.3).
 */

#ifndef RPCVALET_QUEUEING_MODEL_HH
#define RPCVALET_QUEUEING_MODEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/distributions.hh"
#include "stats/series.hh"

namespace rpcvalet::queueing {

/** Configuration for one Q x U queuing-model run. */
struct ModelConfig
{
    /** Number of FIFO input queues (Q). */
    unsigned numQueues = 1;
    /** Serving units per queue (U). */
    unsigned unitsPerQueue = 16;
    /** Poisson arrival rate, requests per second. */
    double arrivalRps = 1e6;
    /** Service-time distribution (ns). */
    const sim::Distribution *service = nullptr;
    /** Experiment seed. */
    std::uint64_t seed = 1;
    /** Completions discarded as warmup. */
    std::uint64_t warmupCompletions = 20000;
    /** Completions measured after warmup. */
    std::uint64_t measuredCompletions = 200000;
};

/** Summary of one queuing-model run. */
struct ModelResult
{
    stats::LoadPoint point;
    /** Total simulated time, ns. */
    double simulatedNs = 0.0;
};

/**
 * Run one Q x U queuing simulation to completion.
 *
 * Sojourn time (queue wait + service) is recorded per job; the returned
 * LoadPoint carries offered/achieved rates and latency percentiles.
 */
ModelResult runModel(const ModelConfig &cfg);

/** Parameters for a load sweep over one Q x U configuration. */
struct SweepConfig
{
    unsigned numQueues = 1;
    unsigned unitsPerQueue = 16;
    /** Utilization points, each in (0, 1+); rho = lambda * S / (Q*U). */
    std::vector<double> loads;
    const sim::Distribution *service = nullptr;
    std::uint64_t seed = 1;
    std::uint64_t warmupCompletions = 20000;
    std::uint64_t measuredCompletions = 200000;
    /** Label for the resulting series. */
    std::string label;
};

/**
 * Sweep utilization levels: for each rho, the arrival rate is
 * rho * (Q*U) / mean_service. Returns one Series suitable for the
 * figure printers.
 */
stats::Series runLoadSweep(const SweepConfig &cfg);

} // namespace rpcvalet::queueing

#endif // RPCVALET_QUEUEING_MODEL_HH
