#include "queueing/model.hh"

#include <deque>

#include "sim/logging.hh"
#include "sim/simulator.hh"
#include "stats/latency_recorder.hh"

namespace rpcvalet::queueing {

namespace {

/** One FIFO queue with its pool of serving units. */
struct QueueState
{
    std::deque<sim::Tick> waiting; // arrival timestamps
    unsigned busyUnits = 0;
};

/** Full state of one in-flight queuing simulation. */
class ModelSim
{
  public:
    explicit ModelSim(const ModelConfig &cfg)
        : cfg_(cfg), queues_(cfg.numQueues),
          serviceRng_(cfg.seed, /*stream=*/1),
          routeRng_(cfg.seed, /*stream=*/2),
          recorder_(cfg.warmupCompletions),
          arrivals_(sim_, cfg.arrivalRps, cfg.seed, [this] { onArrival(); })
    {
        RV_ASSERT(cfg.numQueues >= 1, "need at least one queue");
        RV_ASSERT(cfg.unitsPerQueue >= 1, "need at least one unit");
        RV_ASSERT(cfg.service != nullptr, "service distribution missing");
    }

    ModelResult
    run()
    {
        arrivals_.start();
        sim_.run();

        ModelResult result;
        result.point.offeredRps = cfg_.arrivalRps;
        result.point.meanNs = recorder_.meanNs();
        result.point.p50Ns = recorder_.percentileNs(50.0);
        result.point.p90Ns = recorder_.percentileNs(90.0);
        result.point.p99Ns = recorder_.percentileNs(99.0);
        result.point.samples = recorder_.count();
        result.simulatedNs = sim::toNs(sim_.now());
        // Achieved throughput over the measured window.
        if (measureEndTick_ > measureStartTick_) {
            result.point.achievedRps =
                static_cast<double>(cfg_.measuredCompletions) /
                sim::toSeconds(measureEndTick_ - measureStartTick_);
        }
        return result;
    }

  private:
    void
    onArrival()
    {
        const auto q = static_cast<std::size_t>(
            routeRng_.uniformInt(0, cfg_.numQueues - 1));
        QueueState &qs = queues_[q];
        if (qs.busyUnits < cfg_.unitsPerQueue) {
            ++qs.busyUnits;
            beginService(q, sim_.now());
        } else {
            qs.waiting.push_back(sim_.now());
        }
    }

    void
    beginService(std::size_t q, sim::Tick arrival)
    {
        const sim::Tick service =
            sim::nanoseconds(cfg_.service->sample(serviceRng_));
        sim_.schedule(service, [this, q, arrival] {
            completeService(q, arrival);
        });
    }

    void
    completeService(std::size_t q, sim::Tick arrival)
    {
        recorder_.record(sim_.now() - arrival);
        ++completions_;
        if (completions_ == cfg_.warmupCompletions)
            measureStartTick_ = sim_.now();
        const std::uint64_t target =
            cfg_.warmupCompletions + cfg_.measuredCompletions;
        if (completions_ == target) {
            measureEndTick_ = sim_.now();
            arrivals_.halt();
            sim_.stop();
            return;
        }
        QueueState &qs = queues_[q];
        if (!qs.waiting.empty()) {
            const sim::Tick next_arrival = qs.waiting.front();
            qs.waiting.pop_front();
            beginService(q, next_arrival);
        } else {
            RV_ASSERT(qs.busyUnits > 0, "unit underflow");
            --qs.busyUnits;
        }
    }

    const ModelConfig &cfg_;
    sim::Simulator sim_;
    std::vector<QueueState> queues_;
    sim::Rng serviceRng_;
    sim::Rng routeRng_;
    stats::LatencyRecorder recorder_;
    sim::PoissonProcess arrivals_;
    std::uint64_t completions_ = 0;
    sim::Tick measureStartTick_ = 0;
    sim::Tick measureEndTick_ = 0;
};

} // namespace

ModelResult
runModel(const ModelConfig &cfg)
{
    ModelSim sim(cfg);
    return sim.run();
}

stats::Series
runLoadSweep(const SweepConfig &cfg)
{
    RV_ASSERT(cfg.service != nullptr, "service distribution missing");
    stats::Series series;
    series.label = cfg.label;
    const double capacity_rps =
        static_cast<double>(cfg.numQueues) *
        static_cast<double>(cfg.unitsPerQueue) /
        (cfg.service->mean() * 1e-9);
    for (double rho : cfg.loads) {
        RV_ASSERT(rho > 0.0, "load must be positive");
        ModelConfig mc;
        mc.numQueues = cfg.numQueues;
        mc.unitsPerQueue = cfg.unitsPerQueue;
        mc.arrivalRps = rho * capacity_rps;
        mc.service = cfg.service;
        mc.seed = cfg.seed + static_cast<std::uint64_t>(rho * 1e6);
        mc.warmupCompletions = cfg.warmupCompletions;
        mc.measuredCompletions = cfg.measuredCompletions;
        series.points.push_back(runModel(mc).point);
    }
    return series;
}

} // namespace rpcvalet::queueing
