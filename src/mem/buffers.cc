#include "mem/buffers.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace rpcvalet::mem {

// ----------------------------------------------------------- SendBuffer

SendBuffer::SendBuffer(const proto::MessagingDomain &domain)
    : domain_(domain), slots_(domain.totalSlots()),
      nextSlot_(domain.numNodes, 0), inFlight_(domain.numNodes, 0)
{
}

SendSlot &
SendBuffer::slotRef(proto::NodeId dst, std::uint32_t slot)
{
    return slots_[domain_.slotIndex(dst, slot)];
}

const SendSlot &
SendBuffer::slotRef(proto::NodeId dst, std::uint32_t slot) const
{
    return slots_[domain_.slotIndex(dst, slot)];
}

std::optional<std::uint32_t>
SendBuffer::acquire(proto::NodeId dst, std::vector<std::uint8_t> payload)
{
    RV_ASSERT(dst < domain_.numNodes, "destination outside domain");
    RV_ASSERT(payload.size() <= domain_.maxMsgBytes,
              "payload exceeds maxMsgBytes");
    const std::uint32_t s_count = domain_.slotsPerNode;
    for (std::uint32_t probe = 0; probe < s_count; ++probe) {
        const std::uint32_t slot = (nextSlot_[dst] + probe) % s_count;
        SendSlot &ss = slotRef(dst, slot);
        if (!ss.valid) {
            ss.valid = true;
            ss.payload = std::move(payload);
            nextSlot_[dst] = (slot + 1) % s_count;
            ++inFlight_[dst];
            return slot;
        }
    }
    ++acquireFailures_;
    return std::nullopt;
}

bool
SendBuffer::slotBusy(proto::NodeId dst, std::uint32_t slot) const
{
    return slotRef(dst, slot).valid;
}

bool
SendBuffer::acquireSpecific(proto::NodeId dst, std::uint32_t slot,
                            std::vector<std::uint8_t> payload)
{
    RV_ASSERT(dst < domain_.numNodes, "destination outside domain");
    RV_ASSERT(payload.size() <= domain_.maxMsgBytes,
              "payload exceeds maxMsgBytes");
    SendSlot &ss = slotRef(dst, slot);
    if (ss.valid) {
        ++acquireFailures_;
        return false;
    }
    ss.valid = true;
    ss.payload = std::move(payload);
    ++inFlight_[dst];
    return true;
}

void
SendBuffer::release(proto::NodeId dst, std::uint32_t slot)
{
    SendSlot &ss = slotRef(dst, slot);
    RV_ASSERT(ss.valid, "releasing a free send slot");
    ss.valid = false;
    ss.payload.clear();
    RV_ASSERT(inFlight_[dst] > 0, "send in-flight underflow");
    --inFlight_[dst];
}

const std::vector<std::uint8_t> &
SendBuffer::payload(proto::NodeId dst, std::uint32_t slot) const
{
    const SendSlot &ss = slotRef(dst, slot);
    RV_ASSERT(ss.valid, "reading payload of a free send slot");
    return ss.payload;
}

std::uint32_t
SendBuffer::inFlight(proto::NodeId dst) const
{
    RV_ASSERT(dst < domain_.numNodes, "destination outside domain");
    return inFlight_[dst];
}

// ----------------------------------------------------------- RecvBuffer

RecvBuffer::RecvBuffer(const proto::MessagingDomain &domain)
    : domain_(domain), slots_(domain.totalSlots())
{
    for (auto &s : slots_)
        s.payload.reserve(domain.maxMsgBytes);
}

bool
RecvBuffer::packetArrived(const proto::Packet &pkt, sim::Tick now)
{
    RV_ASSERT(pkt.hdr.op == proto::OpType::Send,
              "recv buffer only accepts send packets");
    const std::uint32_t index =
        domain_.slotIndex(pkt.hdr.src, pkt.hdr.slot);
    RecvSlot &rs = slots_[index];

    if (!rs.busy) {
        // First packet of the message claims the slot. Senders only
        // reuse a slot after receiving its replenish, so a busy slot
        // with a fresh first packet would be a protocol violation —
        // caught by the asserts below.
        rs.busy = true;
        rs.arrivedBlocks = 0;
        rs.totalBlocks = pkt.hdr.totalBlocks;
        rs.msgBytes = pkt.hdr.msgBytes;
        rs.firstPacketTick = now;
        rs.payload.assign(pkt.hdr.msgBytes, 0);
        ++busyCount_;
        busyPeak_ = std::max(busyPeak_, busyCount_);
    } else {
        RV_ASSERT(rs.totalBlocks == pkt.hdr.totalBlocks,
                  "slot reused before replenish (totalBlocks mismatch)");
        RV_ASSERT(rs.msgBytes == pkt.hdr.msgBytes,
                  "slot reused before replenish (size mismatch)");
    }

    // Copy the payload block into place (zero-copy on the real
    // machine; here the buffer is authoritative storage).
    const std::size_t lo =
        static_cast<std::size_t>(pkt.hdr.blockIndex) *
        proto::cacheBlockBytes;
    for (std::size_t i = 0; i < pkt.payload.size(); ++i) {
        if (lo + i < rs.payload.size())
            rs.payload[lo + i] = pkt.payload[i];
    }

    ++rs.arrivedBlocks;
    RV_ASSERT(rs.arrivedBlocks <= rs.totalBlocks,
              "more packets than blocks for slot");
    return rs.arrivedBlocks == rs.totalBlocks;
}

void
RecvBuffer::beginRendezvous(std::uint32_t index, std::uint32_t full_bytes)
{
    RV_ASSERT(index < slots_.size(), "recv slot out of range");
    RecvSlot &rs = slots_[index];
    RV_ASSERT(rs.busy, "rendezvous on a free slot");
    RV_ASSERT(rs.arrivedBlocks == rs.totalBlocks,
              "rendezvous before descriptor completion");
    rs.arrivedBlocks = 0;
    rs.totalBlocks = proto::blocksForBytes(full_bytes);
    rs.msgBytes = full_bytes;
    // Rendezvous payloads may exceed maxMsgBytes by design; the pulled
    // data lands in registered host memory, not the slot-sized area.
    rs.payload.assign(full_bytes, 0);
}

bool
RecvBuffer::pullBlockArrived(const proto::Packet &pkt)
{
    RV_ASSERT(pkt.hdr.op == proto::OpType::ReadResponse,
              "pull path only accepts read responses");
    const std::uint32_t index =
        domain_.slotIndex(pkt.hdr.src, pkt.hdr.slot);
    RecvSlot &rs = slots_[index];
    RV_ASSERT(rs.busy, "read response for a free slot");
    RV_ASSERT(rs.msgBytes == pkt.hdr.msgBytes,
              "read response size mismatch");

    const std::size_t lo =
        static_cast<std::size_t>(pkt.hdr.blockIndex) *
        proto::cacheBlockBytes;
    for (std::size_t i = 0; i < pkt.payload.size(); ++i) {
        if (lo + i < rs.payload.size())
            rs.payload[lo + i] = pkt.payload[i];
    }
    ++rs.arrivedBlocks;
    RV_ASSERT(rs.arrivedBlocks <= rs.totalBlocks,
              "more read responses than blocks");
    return rs.arrivedBlocks == rs.totalBlocks;
}

const RecvSlot &
RecvBuffer::slot(std::uint32_t index) const
{
    RV_ASSERT(index < slots_.size(), "recv slot out of range");
    return slots_[index];
}

void
RecvBuffer::release(std::uint32_t index)
{
    RV_ASSERT(index < slots_.size(), "recv slot out of range");
    RecvSlot &rs = slots_[index];
    RV_ASSERT(rs.busy, "releasing a free recv slot");
    rs.busy = false;
    rs.arrivedBlocks = 0;
    rs.totalBlocks = 0;
    rs.msgBytes = 0;
    rs.payload.clear();
    RV_ASSERT(busyCount_ > 0, "recv busy underflow");
    --busyCount_;
}

} // namespace rpcvalet::mem
