/**
 * @file
 * Send/receive messaging buffers (§4.2), with real byte storage.
 *
 * The simulator is functional as well as timed: request and reply
 * payload bytes travel through these buffers end to end, so
 * application-level tests can verify actual RPC results, not just
 * latencies.
 */

#ifndef RPCVALET_MEM_BUFFERS_HH
#define RPCVALET_MEM_BUFFERS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/messaging.hh"
#include "proto/packet.hh"
#include "sim/types.hh"

namespace rpcvalet::mem {

/**
 * Send-buffer slot bookkeeping (§4.2): valid bit, payload, size. The
 * paper stores a pointer to a core-private payload buffer; we inline
 * the bytes, which is equivalent for simulation purposes.
 */
struct SendSlot
{
    bool valid = false;
    std::vector<std::uint8_t> payload;
};

/**
 * A node's send buffer: N sets of S slots, one set per destination
 * node. Cores atomically grab the next free slot of the destination's
 * set (the paper maintains per-set tail pointers in memory).
 */
class SendBuffer
{
  public:
    explicit SendBuffer(const proto::MessagingDomain &domain);

    /**
     * Reserve a free slot toward @p dst and store @p payload in it.
     * Returns the slot number, or nullopt when all S slots toward
     * @p dst are in flight (flow-control back-pressure).
     */
    std::optional<std::uint32_t>
    acquire(proto::NodeId dst, std::vector<std::uint8_t> payload);

    /** Whether a specific slot toward @p dst is still in flight. */
    bool slotBusy(proto::NodeId dst, std::uint32_t slot) const;

    /**
     * Reserve a specific slot toward @p dst (HERD-style slot-mirrored
     * replies: the response to request slot s goes out on slot s).
     * Returns false when that slot is still in flight (the payload is
     * not consumed in that case — probe with slotBusy() first to
     * avoid the move-and-restore).
     */
    bool acquireSpecific(proto::NodeId dst, std::uint32_t slot,
                         std::vector<std::uint8_t> payload);

    /**
     * Release a slot on replenish receipt (§4.2 step C: the NI resets
     * the slot's valid field).
     */
    void release(proto::NodeId dst, std::uint32_t slot);

    /** Payload view of an in-flight slot (for NI packet generation). */
    const std::vector<std::uint8_t> &
    payload(proto::NodeId dst, std::uint32_t slot) const;

    /** In-flight slot count toward @p dst. */
    std::uint32_t inFlight(proto::NodeId dst) const;

    /** Times acquire() failed for lack of a slot. */
    std::uint64_t acquireFailures() const { return acquireFailures_; }

  private:
    SendSlot &slotRef(proto::NodeId dst, std::uint32_t slot);
    const SendSlot &slotRef(proto::NodeId dst, std::uint32_t slot) const;

    proto::MessagingDomain domain_;
    std::vector<SendSlot> slots_;       // N x S, dst-major
    std::vector<std::uint32_t> nextSlot_; // per-dst rotating search start
    std::vector<std::uint32_t> inFlight_;
    std::uint64_t acquireFailures_ = 0;
};

/**
 * Receive-buffer slot: payload bytes plus the arrival counter the NI
 * increments per received packet (§4.2). A slot is busy from first
 * packet until the serving core's replenish is transmitted.
 */
struct RecvSlot
{
    bool busy = false;
    std::uint32_t arrivedBlocks = 0;
    std::uint32_t totalBlocks = 0;
    std::uint32_t msgBytes = 0;
    sim::Tick firstPacketTick = 0;
    std::vector<std::uint8_t> payload;
};

/** A node's receive buffer: N x S slots, addressed by flat index. */
class RecvBuffer
{
  public:
    explicit RecvBuffer(const proto::MessagingDomain &domain);

    /**
     * Account one arrived packet: claims the slot on the first packet,
     * copies the payload block, bumps the counter. Returns true when
     * this packet completes the message (counter == totalBlocks).
     */
    bool packetArrived(const proto::Packet &pkt, sim::Tick now);

    /**
     * Rendezvous (§4.2): after a descriptor send completes, switch its
     * slot into pull mode — the payload area is resized to the full
     * transfer size and the arrival counter re-armed for the
     * one-sided read's response blocks. The slot keeps its
     * firstPacketTick (latency clock started at the descriptor).
     */
    void beginRendezvous(std::uint32_t index, std::uint32_t full_bytes);

    /**
     * Account one read-response block of a rendezvous pull. Returns
     * true when the pull is complete.
     */
    bool pullBlockArrived(const proto::Packet &pkt);

    /** Access a slot by flat index. */
    const RecvSlot &slot(std::uint32_t index) const;

    /** Release a slot after its replenish went out. */
    void release(std::uint32_t index);

    /** Number of currently busy slots. */
    std::uint32_t busyCount() const { return busyCount_; }

    /** Peak simultaneous busy slots. */
    std::uint32_t busyHighWatermark() const { return busyPeak_; }

    const proto::MessagingDomain &domain() const { return domain_; }

  private:
    proto::MessagingDomain domain_;
    std::vector<RecvSlot> slots_;
    std::uint32_t busyCount_ = 0;
    std::uint32_t busyPeak_ = 0;
};

} // namespace rpcvalet::mem

#endif // RPCVALET_MEM_BUFFERS_HH
