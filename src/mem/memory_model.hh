/**
 * @file
 * First-order memory-hierarchy latency model (Table 1).
 *
 * The NI has direct access to the node's memory hierarchy (§3.1); QP
 * entries are cacheable and transfer core<->NI via on-chip coherence,
 * while receive-buffer payload writes land in the LLC/DRAM. This model
 * supplies the latencies those interactions contribute to the RPC
 * timeline; it does not simulate tags/coherence state (DESIGN.md §6).
 */

#ifndef RPCVALET_MEM_MEMORY_MODEL_HH
#define RPCVALET_MEM_MEMORY_MODEL_HH

#include "sim/types.hh"

namespace rpcvalet::mem {

/** Latency parameters of the modeled memory hierarchy. */
struct MemoryModel
{
    /** L1 hit latency (Table 1: 3 cycles @ 2 GHz). */
    sim::Tick l1Latency = sim::nanoseconds(1.5);
    /** LLC hit latency incl. NUCA traversal (Table 1: 6 cycles + hops). */
    sim::Tick llcLatency = sim::nanoseconds(4.5);
    /** DRAM access latency (Table 1: 50 ns). */
    sim::Tick dramLatency = sim::nanoseconds(50.0);

    /**
     * Latency for the NI to update a receive-slot arrival counter via
     * fetch-and-increment (§4.4): an LLC access — counters are hot.
     */
    sim::Tick counterUpdateLatency() const { return llcLatency; }

    /**
     * Latency for a QP entry hop between core and NI frontend through
     * the coherent cache hierarchy (cacheable WQ/CQ, §4.1).
     */
    sim::Tick qpTransferLatency() const { return l1Latency; }

    /**
     * Latency for a core to read a freshly written receive-buffer
     * payload block (LLC hit; the NI wrote it on-chip moments ago).
     */
    sim::Tick payloadReadLatency() const { return llcLatency; }
};

} // namespace rpcvalet::mem

#endif // RPCVALET_MEM_MEMORY_MODEL_HH
