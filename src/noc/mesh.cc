#include "noc/mesh.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace rpcvalet::noc {

Mesh::Mesh(int rows, int cols, double hop_cycles, std::uint32_t link_bytes,
           sim::Clock clock)
    : rows_(rows), cols_(cols), hopCycles_(hop_cycles),
      linkBytes_(link_bytes), clock_(clock)
{
    RV_ASSERT(rows >= 1 && cols >= 1, "mesh must have at least one tile");
    RV_ASSERT(hop_cycles > 0.0, "hop latency must be positive");
    RV_ASSERT(link_bytes > 0, "link width must be positive");
}

Coord
Mesh::coreCoord(proto::CoreId core) const
{
    const int id = static_cast<int>(core);
    RV_ASSERT(id < rows_ * cols_, "core id outside mesh");
    return Coord{id / cols_, id % cols_};
}

Coord
Mesh::backendCoord(std::uint32_t backend) const
{
    // Backends are replicated across the chip's east edge (Fig. 4),
    // one per row; extra backends (if any) wrap around.
    return Coord{static_cast<int>(backend) % rows_, cols_};
}

int
Mesh::hops(Coord a, Coord b) const
{
    return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

sim::Tick
Mesh::transferLatency(Coord a, Coord b, std::uint32_t bytes) const
{
    const int h = hops(a, b);
    // Head latency: hop traversal. Serialization: body flits behind
    // the head flit on the final link.
    const double flits = std::ceil(static_cast<double>(bytes) /
                                   static_cast<double>(linkBytes_));
    const double cycles =
        static_cast<double>(h) * hopCycles_ + std::max(flits - 1.0, 0.0);
    return clock_.cycles(cycles);
}

sim::Tick
Mesh::backendToCore(std::uint32_t backend, proto::CoreId core,
                    std::uint32_t bytes) const
{
    return transferLatency(backendCoord(backend), coreCoord(core), bytes);
}

sim::Tick
Mesh::coreToBackend(proto::CoreId core, std::uint32_t backend,
                    std::uint32_t bytes) const
{
    return transferLatency(coreCoord(core), backendCoord(backend), bytes);
}

sim::Tick
Mesh::backendToBackend(std::uint32_t a, std::uint32_t b,
                       std::uint32_t bytes) const
{
    return transferLatency(backendCoord(a), backendCoord(b), bytes);
}

} // namespace rpcvalet::noc
