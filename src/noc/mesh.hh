/**
 * @file
 * On-chip interconnect model (Table 1: 2D mesh, 16 B links,
 * 3 cycles/hop) and the Manycore NI floorplan of Fig. 4.
 *
 * Tiles are laid out rows x cols (4x4 for the 16-core chip); each tile
 * hosts one core and its collocated NI frontend. NI backends are
 * replicated along the chip's east edge, one per row, and reach tiles
 * through the mesh. Latency is modeled as XY-routing hop delay plus
 * per-flit link serialization; link-level contention is deliberately
 * not modeled (see DESIGN.md §6) — the contention that shapes the
 * results lives in the NI pipelines and dispatcher occupancy.
 */

#ifndef RPCVALET_NOC_MESH_HH
#define RPCVALET_NOC_MESH_HH

#include <cstdint>

#include "proto/packet.hh"
#include "sim/types.hh"

namespace rpcvalet::noc {

/** Coordinate of a mesh endpoint (tile or edge backend). */
struct Coord
{
    int row = 0;
    int col = 0;

    bool operator==(const Coord &other) const
    {
        return row == other.row && col == other.col;
    }
    bool operator!=(const Coord &other) const { return !(*this == other); }
};

/** Geometry + timing of the on-chip mesh. */
class Mesh
{
  public:
    /**
     * @param rows,cols   Tile grid (4x4 default).
     * @param hop_cycles  Cycles per router hop (Table 1: 3).
     * @param link_bytes  Link width in bytes per cycle (Table 1: 16).
     * @param clock       Chip clock domain.
     */
    Mesh(int rows, int cols, double hop_cycles, std::uint32_t link_bytes,
         sim::Clock clock);

    /** Tile coordinate of core @p core (row-major). */
    Coord coreCoord(proto::CoreId core) const;

    /**
     * Coordinate of NI backend @p backend: east edge, one per row
     * (backend b sits in pseudo-column `cols` of row b mod rows).
     */
    Coord backendCoord(std::uint32_t backend) const;

    /** Manhattan hop count between two coordinates (XY routing). */
    int hops(Coord a, Coord b) const;

    /**
     * Latency of moving @p bytes from @p a to @p b: hop traversal plus
     * head-flit serialization per link width.
     */
    sim::Tick transferLatency(Coord a, Coord b, std::uint32_t bytes) const;

    /** Convenience: backend-to-core transfer (e.g. CQE delivery). */
    sim::Tick backendToCore(std::uint32_t backend, proto::CoreId core,
                            std::uint32_t bytes) const;

    /** Convenience: core-to-backend transfer (e.g. WQE forwarding). */
    sim::Tick coreToBackend(proto::CoreId core, std::uint32_t backend,
                            std::uint32_t bytes) const;

    /** Convenience: backend-to-backend (completion forwarding, §4.3). */
    sim::Tick backendToBackend(std::uint32_t a, std::uint32_t b,
                               std::uint32_t bytes) const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    const sim::Clock &clock() const { return clock_; }

  private:
    int rows_;
    int cols_;
    double hopCycles_;
    std::uint32_t linkBytes_;
    sim::Clock clock_;
};

} // namespace rpcvalet::noc

#endif // RPCVALET_NOC_MESH_HH
