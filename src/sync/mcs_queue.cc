#include "sync/mcs_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace rpcvalet::sync {

SoftwareSharedQueue::SoftwareSharedQueue(sim::EventDomain &sim,
                                         McsParams params)
    : sim_(sim), params_(params)
{
}

void
SoftwareSharedQueue::push(proto::CompletionQueueEntry entry)
{
    entries_.push_back(std::move(entry));
    tryMatch();
}

void
SoftwareSharedQueue::requestPull(PullCallback cb)
{
    RV_ASSERT(cb != nullptr, "null pull callback");
    waiters_.push_back(std::move(cb));
    tryMatch();
}

void
SoftwareSharedQueue::tryMatch()
{
    // Grant (entry, waiter) pairs through the lock in FIFO order. Each
    // grant reserves the lock for acquire/handoff + critical section;
    // back-to-back grants pipeline at handoff + cs, which is the MCS
    // serialization bottleneck the paper's §6.2 software curve shows.
    while (!entries_.empty() && !waiters_.empty()) {
        const sim::Tick now = sim_.now();
        const bool contended = lockFreeAt_ > now;
        const sim::Tick start = contended ? lockFreeAt_ : now;
        const sim::Tick entry_cost =
            contended ? params_.handoff : params_.uncontendedAcquire;
        const sim::Tick done = start + entry_cost + params_.criticalSection;

        lockBusy_ += done - start;
        lockFreeAt_ = done;
        ++pulls_;
        if (contended)
            ++contendedPulls_;

        // Entry and waiter are logically consumed at grant completion,
        // but removed from the FIFOs now to keep ordering decisions
        // simple; the callback fires at `done`.
        proto::CompletionQueueEntry entry = std::move(entries_.front());
        entries_.pop_front();
        PullCallback cb = std::move(waiters_.front());
        waiters_.pop_front();

        sim_.scheduleAt(done, [cb = std::move(cb),
                               entry = std::move(entry)] { cb(entry); });
    }
}

} // namespace rpcvalet::sync
