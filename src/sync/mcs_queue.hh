/**
 * @file
 * Software single-queue baseline (§6.2).
 *
 * The paper's software 1x16 implementation lets all 16 threads pull
 * incoming requests from one shared FIFO guarded by an MCS queue-based
 * lock [Mellor-Crummey & Scott]. The defining property is FIFO lock
 * handoff with a per-handoff cache-line transfer between cores: under
 * contention, dequeues serialize at (handoff + critical section) cost.
 *
 * This module models the lock as a timed resource inside the DES:
 * waiter order is FIFO, an idle lock grants after the uncontended
 * acquire cost, and back-to-back grants are separated by the handoff
 * plus critical-section time. The constants live in McsParams and are
 * derived from published cache-coherent lock transfer latencies (see
 * DESIGN.md §5 calibration).
 */

#ifndef RPCVALET_SYNC_MCS_QUEUE_HH
#define RPCVALET_SYNC_MCS_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "proto/qp.hh"
#include "sim/domain.hh"
#include "sim/types.hh"

namespace rpcvalet::sync {

/** Timing parameters of the modeled MCS lock. */
struct McsParams
{
    /** Acquire cost when the lock is free and uncontended. */
    sim::Tick uncontendedAcquire = sim::nanoseconds(40.0);
    /** Lock handoff to the next queued waiter (cache-line transfer). */
    sim::Tick handoff = sim::nanoseconds(50.0);
    /**
     * Critical section: dequeue the head entry and update the shared
     * queue's head pointer (two remote cache lines).
     */
    sim::Tick criticalSection = sim::nanoseconds(80.0);
};

/**
 * Shared completion queue pulled by cores through an MCS lock.
 *
 * NIs push entries (push()); idle cores register to pull
 * (requestPull()). Matching entry->core grants run through the lock
 * model and complete via the core's callback.
 */
class SoftwareSharedQueue
{
  public:
    using PullCallback =
        std::function<void(const proto::CompletionQueueEntry &)>;

    SoftwareSharedQueue(sim::EventDomain &sim, McsParams params);

    /** NI-side: enqueue an arrived message notification. */
    void push(proto::CompletionQueueEntry entry);

    /**
     * Core-side: ask for the next entry. The callback fires once the
     * core has acquired the lock and dequeued an entry — possibly
     * immediately-ish, possibly after waiting for work or the lock.
     * Cores are served in request (FIFO) order, like MCS waiters.
     */
    void requestPull(PullCallback cb);

    /** Total completed pulls. */
    std::uint64_t pulls() const { return pulls_; }

    /** Pulls that found the lock busy (paid handoff, not acquire). */
    std::uint64_t contendedPulls() const { return contendedPulls_; }

    /** Entries waiting right now. */
    std::size_t backlog() const { return entries_.size(); }

    /** Cores waiting right now. */
    std::size_t waitingCores() const { return waiters_.size(); }

    /** Aggregate ticks the lock was held. */
    sim::Tick lockBusyTicks() const { return lockBusy_; }

  private:
    void tryMatch();

    sim::EventDomain &sim_;
    McsParams params_;
    std::deque<proto::CompletionQueueEntry> entries_;
    std::deque<PullCallback> waiters_;
    sim::Tick lockFreeAt_ = 0;
    std::uint64_t pulls_ = 0;
    std::uint64_t contendedPulls_ = 0;
    sim::Tick lockBusy_ = 0;
};

} // namespace rpcvalet::sync

#endif // RPCVALET_SYNC_MCS_QUEUE_HH
