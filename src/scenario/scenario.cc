#include "scenario/scenario.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "app/workload.hh"
#include "cluster/router.hh"
#include "conn/conn.hh"
#include "fault/fault.hh"
#include "net/arrival.hh"
#include "ni/dispatch_policy.hh"
#include "sim/logging.hh"

namespace rpcvalet::scenario {

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Split a '|'-separated list, trimming each entry; empty entries are
 *  fatal (they are always a typo, e.g. "a || b" or a trailing '|'). */
std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        const std::size_t bar = value.find('|', start);
        const std::string item = trim(
            bar == std::string::npos ? value.substr(start)
                                     : value.substr(start, bar - start));
        if (item.empty())
            sim::fatal("empty list entry ('|' needs a value on each side)");
        out.push_back(item);
        if (bar == std::string::npos)
            return out;
        start = bar + 1;
    }
}

double
parseDouble(const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno != 0 ||
        !std::isfinite(parsed))
        sim::fatal("'" + value + "' is not a number");
    return parsed;
}

std::uint64_t
parseUint(const std::string &value)
{
    const double parsed = parseDouble(value);
    if (parsed < 0.0 || parsed >= 0x1p64 ||
        parsed != std::floor(parsed))
        sim::fatal("'" + value + "' is not a non-negative integer");
    return static_cast<std::uint64_t>(parsed);
}

std::int64_t
parseInt(const std::string &value)
{
    const double parsed = parseDouble(value);
    if (parsed != std::floor(parsed) || std::abs(parsed) >= 0x1p62)
        sim::fatal("'" + value + "' is not an integer");
    return static_cast<std::int64_t>(parsed);
}

bool
parseBool(const std::string &value)
{
    if (value == "true" || value == "1" || value == "yes" ||
        value == "on")
        return true;
    if (value == "false" || value == "0" || value == "no" ||
        value == "off")
        return false;
    sim::fatal("'" + value + "' is not a boolean (true/false)");
    return false; // unreachable
}

/** Duration with the spec grammar's units: bare ns, or ns/us/ms. */
sim::Tick
parseTick(const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || errno != 0)
        sim::fatal("'" + value + "' is not a duration");
    const std::string unit = trim(end);
    double ns = 0.0;
    if (unit.empty() || unit == "ns")
        ns = parsed;
    else if (unit == "us")
        ns = parsed * 1e3;
    else if (unit == "ms")
        ns = parsed * 1e6;
    else {
        sim::fatal("duration '" + value + "' has unknown unit '" +
                   unit + "' (use ns, us, or ms)");
    }
    if (!std::isfinite(ns) || ns < 0.0 ||
        ns * static_cast<double>(sim::ticksPerNs) >= 0x1p63)
        sim::fatal("duration '" + value + "' is out of range");
    return sim::nanoseconds(ns);
}

// Registry-backed validation: each helper instantiates the component
// so a bad spec dies at parse time, inside the caller's ErrorContext
// (which carries file:line and the offending key=value).

void
validateWorkload(const std::string &spec)
{
    (void)app::WorkloadRegistry::instance().make(
        app::WorkloadSpec(spec));
}

void
validatePolicy(const std::string &spec)
{
    (void)ni::makePolicy(ni::PolicySpec(spec));
}

void
validateArrival(const std::string &spec)
{
    (void)net::ArrivalRegistry::instance().make(net::ArrivalSpec(spec),
                                                /*rate_rps=*/1e6);
}

void
validateRouter(const std::string &spec)
{
    (void)cluster::RouterRegistry::instance().make(
        cluster::RouterSpec(spec));
}

void
validateConnScheduler(const std::string &spec)
{
    (void)conn::ConnRegistry::instance().make(conn::ConnSpec(spec));
}

/** File stem ("out/herd.scn" -> "herd") for the default name. */
std::string
stemOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t begin = slash == std::string::npos ? 0 : slash + 1;
    std::size_t end = path.find_last_of('.');
    if (end == std::string::npos || end <= begin)
        end = path.size();
    return path.substr(begin, end - begin);
}

/** Line-by-line scenario parser; all state lives here. */
class Parser
{
  public:
    Parser(const std::string &source, Scenario &out)
        : source_(source), out_(out)
    {
    }

    void
    feed(const std::string &raw, int line)
    {
        line_ = line;
        const std::string text = trim(raw);
        if (text.empty() || text[0] == '#' || text[0] == ';')
            return;
        if (text.front() == '[') {
            if (text.back() != ']')
                die("malformed section header '" + text + "'");
            section_ = trim(text.substr(1, text.size() - 2));
            if (section_ != "experiment" && section_ != "cluster" &&
                section_ != "connections" && section_ != "chaos" &&
                section_ != "sweep" && section_ != "slo" &&
                section_ != "output") {
                die("unknown section '[" + section_ +
                    "]' (expected experiment, cluster, connections, "
                    "chaos, sweep, slo, or output)");
            }
            return;
        }
        const std::size_t eq = text.find('=');
        if (eq == std::string::npos)
            die("expected 'key = value', got '" + text + "'");
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));
        if (key.empty())
            die("empty key before '='");
        if (value.empty())
            die("key '" + key + "' has an empty value");
        if (section_.empty())
            die("'" + key + "' appears before any [section] header");

        // Every value is applied (and registry-validated) inside a
        // context frame naming file, line, and the offending token.
        sim::ErrorContext ctx(sim::strfmt("%s:%d (%s = %s)",
                                          source_.c_str(), line_,
                                          key.c_str(), value.c_str()));
        if (section_ == "experiment")
            experimentKey(key, value);
        else if (section_ == "cluster")
            clusterKey(key, value);
        else if (section_ == "connections")
            connectionsKey(key, value);
        else if (section_ == "chaos")
            chaosKey(key, value);
        else if (section_ == "sweep")
            sweepKey(key, value);
        else if (section_ == "slo")
            out_.slos.push_back(SloBound{key, sim::toNs(parseTick(value))});
        else
            outputKey(key, value);
    }

    void
    finish() const
    {
        const bool has_load = !out_.loadFractions.empty();
        const bool has_rps = !out_.absoluteRps.empty();
        if (has_load && has_rps) {
            sim::fatal(source_ + ": [sweep] declares both 'load' and "
                       "'rps' — the axes are exclusive");
        }
        if (!has_load && !has_rps) {
            sim::fatal(source_ + ": no load axis — add 'load = ...' "
                       "(capacity fractions) or 'rps = ...' (absolute "
                       "rates) to [sweep]");
        }
        if (!out_.schedulers.empty() &&
            !out_.base.connections.active()) {
            // Sweeping schedulers with no client population would
            // compare N copies of the legacy path.
            sim::fatal(source_ + ": [sweep] 'scheduler' axis needs an "
                       "active [connections] section ('clients = N')");
        }
        if (connSectionSeen_ && !out_.base.connections.active()) {
            // The section only means something with a population: a
            // scheduler/qp tweak with no clients would silently run
            // the legacy path.
            sim::fatal(source_ + ": [connections] section without a "
                       "'clients = N' key — the subsystem stays off");
        }
        if (out_.base.connections.active()) {
            sim::ErrorContext ctx(source_ + ": [connections]");
            out_.base.connections.validate();
        }
        if (out_.base.retry.active()) {
            // Cross-section check: an active [chaos] retry policy
            // needs the [cluster] timeout its sweep triggers off.
            sim::ErrorContext ctx(source_ + ": [chaos] retry policy");
            out_.base.retry.validate(out_.base.cluster.requestTimeout);
        }
    }

  private:
    [[noreturn]] void
    die(const std::string &msg) const
    {
        sim::fatal(
            sim::strfmt("%s:%d: %s", source_.c_str(), line_,
                        msg.c_str()));
    }

    void
    experimentKey(const std::string &key, const std::string &value)
    {
        if (key == "name") {
            out_.name = value;
        } else if (key == "workload") {
            validateWorkload(value);
            out_.base.workload = app::WorkloadSpec(value);
        } else if (key == "arrival") {
            validateArrival(value);
            out_.base.arrival = net::ArrivalSpec(value);
        } else if (key == "policy") {
            validatePolicy(value);
            out_.base.system.policy = ni::PolicySpec(value);
        } else if (key == "mode") {
            out_.base.system.mode = ni::dispatchModeFromName(value);
        } else if (key == "warmup") {
            out_.base.warmupRpcs = parseUint(value);
        } else if (key == "measured") {
            const std::uint64_t n = parseUint(value);
            if (n == 0)
                sim::fatal("'measured' must be at least 1");
            out_.base.measuredRpcs = n;
        } else if (key == "seed") {
            out_.base.system.seed = parseUint(value);
        } else if (key == "turnaround") {
            out_.base.clientTurnaround = parseTick(value);
        } else if (key == "parallel_domains") {
            const std::uint64_t n = parseUint(value);
            if (n > 1024)
                die("'parallel_domains' must be at most 1024");
            out_.base.parallelDomains = static_cast<unsigned>(n);
        } else {
            die("unknown [experiment] key '" + key +
                "' (expected name, workload, arrival, policy, mode, "
                "warmup, measured, seed, turnaround, or "
                "parallel_domains)");
        }
    }

    void
    clusterKey(const std::string &key, const std::string &value)
    {
        if (key == "nodes") {
            const std::uint64_t n = parseUint(value);
            if (n < 1 || n > 64)
                sim::fatal("'nodes' must be in [1, 64]");
            out_.base.cluster.numServerNodes =
                static_cast<std::uint32_t>(n);
        } else if (key == "router") {
            validateRouter(value);
            out_.base.cluster.router = cluster::RouterSpec(value);
        } else if (key == "shards") {
            out_.base.cluster.shards =
                static_cast<std::uint32_t>(parseUint(value));
        } else if (key == "timeout") {
            out_.base.cluster.requestTimeout = parseTick(value);
        } else if (key == "fail_threshold") {
            const std::uint64_t n = parseUint(value);
            if (n < 1)
                sim::fatal("'fail_threshold' must be at least 1");
            out_.base.cluster.failThreshold =
                static_cast<std::uint32_t>(n);
        } else if (key == "recovery_after") {
            out_.base.cluster.recoveryAfter = parseTick(value);
        } else if (key == "fail_node") {
            const std::int64_t n = parseInt(value);
            if (n < -1)
                sim::fatal("'fail_node' must be -1 (none) or a server "
                           "index");
            out_.base.cluster.failNode = static_cast<std::int32_t>(n);
        } else if (key == "fail_at") {
            out_.base.cluster.failAt = parseTick(value);
        } else if (key == "sweep_interval") {
            const sim::Tick t = parseTick(value);
            if (t == 0)
                sim::fatal("'sweep_interval' must be > 0 (omit the key "
                           "to derive it from the timeout)");
            out_.base.cluster.sweepInterval = t;
        } else {
            die("unknown [cluster] key '" + key +
                "' (expected nodes, router, shards, timeout, "
                "fail_threshold, recovery_after, fail_node, fail_at, "
                "or sweep_interval)");
        }
    }

    void
    connectionsKey(const std::string &key, const std::string &value)
    {
        connSectionSeen_ = true;
        if (key == "nodes") {
            // Messaging-domain size: emulated endpoints the logical
            // clients are multiplexed onto, NOT the server count.
            const std::uint64_t n = parseUint(value);
            if (n < 2 || n > 100000)
                sim::fatal("'nodes' must be in [2, 100000]");
            out_.base.system.domain.numNodes =
                static_cast<std::uint32_t>(n);
        } else if (key == "clients") {
            const std::uint64_t n = parseUint(value);
            if (n < 1 || n > (1u << 24))
                sim::fatal("'clients' must be in [1, 2^24]");
            out_.base.connections.numClients =
                static_cast<std::uint32_t>(n);
        } else if (key == "scheduler") {
            validateConnScheduler(value);
            out_.base.connections.scheduler = conn::ConnSpec(value);
        } else if (key == "qp_capacity") {
            out_.base.connections.qpCapacity =
                static_cast<std::uint32_t>(parseUint(value));
        } else if (key == "qp_cold") {
            out_.base.connections.qpColdNs =
                sim::toNs(parseTick(value));
        } else {
            die("unknown [connections] key '" + key +
                "' (expected nodes, clients, scheduler, qp_capacity, "
                "or qp_cold)");
        }
    }

    void
    chaosKey(const std::string &key, const std::string &value)
    {
        if (key == "fault") {
            // Repeatable; each line adds one spec. Instantiating
            // through the registry validates the name and every
            // shape-independent parameter right here, inside the
            // file:line context. Shape checks (node/core ranges) run
            // when the point resolves, with the spec in the message.
            const fault::FaultSpec spec(value);
            (void)fault::FaultRegistry::instance().make(spec);
            out_.base.faults.push_back(spec);
        } else if (key == "retry_max_attempts") {
            out_.base.retry.maxAttempts =
                static_cast<std::uint32_t>(parseUint(value));
        } else if (key == "retry_backoff") {
            out_.base.retry.baseBackoff = parseTick(value);
        } else if (key == "retry_multiplier") {
            const double m = parseDouble(value);
            if (m < 1.0)
                sim::fatal("'retry_multiplier' must be >= 1");
            out_.base.retry.multiplier = m;
        } else if (key == "retry_jitter") {
            const double j = parseDouble(value);
            if (j < 0.0 || j > 1.0)
                sim::fatal("'retry_jitter' must be in [0, 1]");
            out_.base.retry.jitter = j;
        } else if (key == "hedge_after") {
            out_.base.retry.hedgeAfter = parseTick(value);
        } else {
            die("unknown [chaos] key '" + key +
                "' (expected fault, retry_max_attempts, retry_backoff, "
                "retry_multiplier, retry_jitter, or hedge_after)");
        }
    }

    void
    sweepKey(const std::string &key, const std::string &value)
    {
        if (key == "load") {
            for (const std::string &item : splitList(value)) {
                const double f = parseDouble(item);
                if (!(f > 0.0) || f > 4.0)
                    sim::fatal("load fraction '" + item +
                               "' must be in (0, 4]");
                out_.loadFractions.push_back(f);
            }
        } else if (key == "rps") {
            for (const std::string &item : splitList(value)) {
                const double r = parseDouble(item);
                if (!(r > 0.0))
                    sim::fatal("rps '" + item + "' must be positive");
                out_.absoluteRps.push_back(r);
            }
        } else if (key == "workload") {
            for (const std::string &item : splitList(value)) {
                validateWorkload(item);
                out_.workloads.push_back(item);
            }
        } else if (key == "policy") {
            for (const std::string &item : splitList(value)) {
                validatePolicy(item);
                out_.policies.push_back(item);
            }
        } else if (key == "arrival") {
            for (const std::string &item : splitList(value)) {
                validateArrival(item);
                out_.arrivals.push_back(item);
            }
        } else if (key == "router") {
            for (const std::string &item : splitList(value)) {
                validateRouter(item);
                out_.routers.push_back(item);
            }
        } else if (key == "scheduler") {
            for (const std::string &item : splitList(value)) {
                validateConnScheduler(item);
                out_.schedulers.push_back(item);
            }
        } else if (key == "nodes") {
            for (const std::string &item : splitList(value)) {
                const std::uint64_t n = parseUint(item);
                if (n < 1 || n > 64)
                    sim::fatal("node count '" + item +
                               "' must be in [1, 64]");
                out_.nodeCounts.push_back(
                    static_cast<std::uint32_t>(n));
            }
        } else if (key == "threads") {
            const std::uint64_t n = parseUint(value);
            if (n < 1 || n > 1024)
                sim::fatal("'threads' must be in [1, 1024]");
            out_.threads = static_cast<unsigned>(n);
        } else {
            die("unknown [sweep] key '" + key +
                "' (expected load, rps, workload, policy, arrival, "
                "router, scheduler, nodes, or threads)");
        }
    }

    void
    outputKey(const std::string &key, const std::string &value)
    {
        if (key == "dir")
            out_.outputDir = value;
        else if (key == "json")
            out_.writeJson = parseBool(value);
        else if (key == "prometheus")
            out_.writePrometheus = parseBool(value);
        else
            die("unknown [output] key '" + key +
                "' (expected dir, json, or prometheus)");
    }

    std::string source_;
    Scenario &out_;
    std::string section_;
    int line_ = 0;
    bool connSectionSeen_ = false;
};

Scenario
parseLines(std::istream &in, const std::string &source,
           const std::string &default_name)
{
    Scenario scn;
    scn.source = source;
    scn.name = default_name;
    Parser parser(source, scn);
    std::string line;
    int number = 0;
    while (std::getline(in, line))
        parser.feed(line, ++number);
    parser.finish();
    return scn;
}

} // namespace

Scenario
parseScenarioFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f) {
        sim::fatal(
            sim::strfmt("cannot open scenario file '%s'", path.c_str()));
    }
    return parseLines(f, path, stemOf(path));
}

Scenario
parseScenarioText(const std::string &text, const std::string &source)
{
    std::istringstream in(text);
    return parseLines(in, source, source);
}

std::vector<ScenarioPoint>
expandMatrix(const Scenario &scn)
{
    // Empty axes fall back to the base value, marked by an empty
    // string (or 0 node count) so the point's config keeps the base
    // field untouched — the single-point bit-identity guarantee.
    const std::vector<std::string> one_default{std::string()};
    const auto &ws = scn.workloads.empty() ? one_default : scn.workloads;
    const auto &ps = scn.policies.empty() ? one_default : scn.policies;
    const auto &as = scn.arrivals.empty() ? one_default : scn.arrivals;
    const auto &rs = scn.routers.empty() ? one_default : scn.routers;
    const auto &ss =
        scn.schedulers.empty() ? one_default : scn.schedulers;
    const std::vector<std::uint32_t> node_default{0};
    const auto &ns =
        scn.nodeCounts.empty() ? node_default : scn.nodeCounts;
    const bool fractional = !scn.loadFractions.empty();
    const auto &loads =
        fractional ? scn.loadFractions : scn.absoluteRps;

    std::vector<ScenarioPoint> points;
    points.reserve(ws.size() * ps.size() * as.size() * rs.size() *
                   ss.size() * ns.size() * loads.size());
    for (const std::string &w : ws) {
        // Capacity depends only on system + workload; resolve once
        // per workload axis value.
        const app::WorkloadSpec wspec =
            w.empty() ? scn.base.workload : app::WorkloadSpec(w);
        const double capacity =
            fractional
                ? core::estimateCapacityRps(scn.base.system, wspec)
                : 0.0;
        for (const std::string &p : ps) {
            for (const std::string &a : as) {
                for (const std::string &r : rs) {
                    for (const std::string &s : ss) {
                        for (const std::uint32_t n : ns) {
                            for (const double l : loads) {
                                ScenarioPoint pt;
                                pt.index = points.size();
                                pt.config = scn.base;
                                if (!w.empty())
                                    pt.config.workload =
                                        app::WorkloadSpec(w);
                                if (!p.empty())
                                    pt.config.system.policy =
                                        ni::PolicySpec(p);
                                if (!a.empty())
                                    pt.config.arrival =
                                        net::ArrivalSpec(a);
                                if (!r.empty())
                                    pt.config.cluster.router =
                                        cluster::RouterSpec(r);
                                if (!s.empty())
                                    pt.config.connections.scheduler =
                                        conn::ConnSpec(s);
                                if (n != 0)
                                    pt.config.cluster.numServerNodes =
                                        n;
                                const std::uint32_t eff_nodes =
                                    pt.config.cluster.numServerNodes;
                                pt.config.arrivalRps =
                                    fractional
                                        ? l * capacity * eff_nodes
                                        : l;
                                pt.workload =
                                    pt.config.workload.toString();
                                pt.policy =
                                    pt.config.system.policy.toString();
                                pt.arrival =
                                    pt.config.arrival.toString();
                                pt.router = pt.config.cluster.router
                                                .toString();
                                pt.scheduler =
                                    pt.config.connections.active()
                                        ? pt.config.connections
                                              .schedulerSpec()
                                              .toString()
                                        : std::string();
                                pt.nodes = eff_nodes;
                                pt.loadFraction = fractional ? l : 0.0;
                                points.push_back(std::move(pt));
                            }
                        }
                    }
                }
            }
        }
    }
    return points;
}

} // namespace rpcvalet::scenario
