/**
 * @file
 * Declarative scenario files: a whole experiment matrix in one
 * checked-in text file.
 *
 * A scenario file is a minimal INI subset (no external dependencies):
 * `[section]` headers, `key = value` lines, and comments starting
 * with '#' or ';'. It maps directly onto core::ExperimentConfig — the
 * file is configuration, not code — and adds the two things a config
 * struct cannot express: a sweep matrix and SLO declarations.
 *
 *   [experiment]
 *   name     = herd-baseline
 *   workload = herd                  # any registered workload spec
 *   arrival  = poisson
 *   policy   = greedy
 *   mode     = 1x16                  # 1x16 | 4x4 | 16x1 | sw-1x16
 *   warmup   = 20000
 *   measured = 200000
 *   seed     = 1
 *   parallel_domains = 0             # 0 = one event wheel (exact);
 *                                    # N = conservative PDES workers
 *
 *   [cluster]
 *   nodes    = 4
 *   router   = shard
 *   timeout  = 50us
 *
 *   [connections]
 *   clients  = 2048                  # logical clients (enables the
 *                                    # connection-management subsystem)
 *   scheduler = grouped:size=40,slice=100us
 *   qp_capacity = 64                 # server QP cache (0 = derive)
 *   qp_cold  = 1us                   # cold-QP fetch penalty
 *
 *   [sweep]
 *   load     = 0.2 | 0.5 | 0.8       # fraction of estimated capacity
 *   policy   = greedy | jbsq:d=2     # any axis may be a '|' list
 *   scheduler = all | grouped:size=40,slice=100us
 *                                    # conn-scheduler axis; needs an
 *                                    # active [connections] population
 *
 *   [slo]
 *   tier0    = 15us                  # p99 bound per request class
 *
 *   [output]
 *   dir      = out/herd-baseline
 *
 * Lists use '|' (NOT ',') as the separator, because component spec
 * strings carry commas ("mix:get=0.9,scan=0.1"). The matrix is the
 * cross product of every axis in canonical order: workload x policy x
 * arrival x router x scheduler x nodes x load. The per-point seed is NOT
 * decorrelated across the matrix, so a single-point scenario is
 * bit-identical to the equivalent hand-built ExperimentConfig.
 *
 * Every value is validated at parse time — registry lookups included —
 * under a sim::ErrorContext naming the file, line, and offending
 * `key = value`, so a typo dies with "scenario.scn:12 (policy =
 * jbqs:d=2): ..." rather than deep inside a later run.
 */

#ifndef RPCVALET_SCENARIO_SCENARIO_HH
#define RPCVALET_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"

namespace rpcvalet::scenario {

/** A declared p99 bound for one request class ([slo] section). */
struct SloBound
{
    /** Request-class name as the workload declares it ("tier0"). */
    std::string className;
    /** p99 latency bound, ns. */
    double boundNs = 0.0;
};

/** A parsed scenario: base config + sweep axes + SLOs + output. */
struct Scenario
{
    /** Scenario name ([experiment] name; default: file stem). */
    std::string name;
    /** Path the scenario was parsed from ("<string>" for text). */
    std::string source;

    /** Fully populated single-run template. Axis values override the
     *  corresponding fields per matrix point. */
    core::ExperimentConfig base{};

    /** Sweep axes; an empty axis means "use the base value". */
    std::vector<std::string> workloads;
    std::vector<std::string> policies;
    std::vector<std::string> arrivals;
    std::vector<std::string> routers;
    /** Connection-scheduler axis ("all" | "grouped:..."); requires an
     *  active [connections] client population. */
    std::vector<std::string> schedulers;
    std::vector<std::uint32_t> nodeCounts;

    /** Load axis: fractions of estimated capacity (exclusive with
     *  absoluteRps; exactly one of the two is non-empty). */
    std::vector<double> loadFractions;
    /** Load axis: absolute offered rates, requests per second. */
    std::vector<double> absoluteRps;

    /** Worker threads for independent matrix points. */
    unsigned threads = 1;

    /** Declared per-class p99 bounds, evaluated post-run. */
    std::vector<SloBound> slos;

    /** Output directory for JSON and metrics files. */
    std::string outputDir = "scenario-out";
    /** Emit per-point JSON + summary.json. */
    bool writeJson = true;
    /** Emit the Prometheus text-exposition metrics file. */
    bool writePrometheus = true;
};

/** One expanded matrix point: a runnable config plus its axis tags. */
struct ScenarioPoint
{
    /** Position in canonical matrix order (stable across runs). */
    std::size_t index = 0;
    core::ExperimentConfig config{};
    /** Axis values this point was expanded from (canonical specs). */
    std::string workload;
    std::string policy;
    std::string arrival;
    std::string router;
    /** Connection-scheduler spec ("" when the subsystem is off). */
    std::string scheduler;
    std::uint32_t nodes = 1;
    /** Load fraction behind config.arrivalRps (0 = absolute rps). */
    double loadFraction = 0.0;
};

/** Parse a scenario file; every diagnostic carries file:line. */
Scenario parseScenarioFile(const std::string &path);

/** Parse scenario text (tests); @p source labels diagnostics. */
Scenario parseScenarioText(const std::string &text,
                           const std::string &source);

/**
 * Expand the sweep matrix in canonical order (workload x policy x
 * arrival x router x scheduler x nodes x load, load innermost).
 * Fractional load
 * points resolve against core::estimateCapacityRps for the point's
 * workload, scaled by its node count.
 */
std::vector<ScenarioPoint> expandMatrix(const Scenario &scn);

} // namespace rpcvalet::scenario

#endif // RPCVALET_SCENARIO_SCENARIO_HH
