#include "scenario/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "core/parallel.hh"
#include "sim/build_info.hh"
#include "sim/logging.hh"
#include "stats/metrics.hh"

namespace rpcvalet::scenario {

namespace {

// Minimal local JSON helpers (mirroring bench/common.cc): the output
// layer is deliberately dependency-free, and the two writers are the
// only JSON producers in the tree.

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += sim::strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/** JSON number: non-finite values (empty percentiles) become null. */
void
jsonNumber(std::FILE *f, double v)
{
    if (std::isfinite(v))
        std::fprintf(f, "%.10g", v);
    else
        std::fputs("null", f);
}

void
jsonUint(std::FILE *f, std::uint64_t v)
{
    std::fprintf(f, "%llu", static_cast<unsigned long long>(v));
}

std::FILE *
openOrDie(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        sim::fatal(sim::strfmt("scenario output: cannot write '%s'",
                               path.c_str()));
    }
    return f;
}

/** The point's axis values as a JSON fragment (no trailing comma). */
void
writeAxes(std::FILE *f, const ScenarioPoint &pt)
{
    std::fprintf(f,
                 "\"workload\": \"%s\", \"policy\": \"%s\", "
                 "\"arrival\": \"%s\", \"router\": \"%s\", "
                 "\"scheduler\": \"%s\", \"nodes\": %u",
                 jsonEscape(pt.workload).c_str(),
                 jsonEscape(pt.policy).c_str(),
                 jsonEscape(pt.arrival).c_str(),
                 jsonEscape(pt.router).c_str(),
                 jsonEscape(pt.scheduler).c_str(), pt.nodes);
}

/** The build/git/timestamp provenance stamp every artifact carries. */
void
writeMeta(std::FILE *f, const std::string &timestamp)
{
    const sim::BuildInfo &bi = sim::buildInfo();
    std::fprintf(f,
                 "\"meta\": {\"build_type\": \"%s\", \"git_sha\": "
                 "\"%s\", \"timestamp\": \"%s\"}",
                 jsonEscape(bi.buildType).c_str(),
                 jsonEscape(bi.gitSha).c_str(),
                 jsonEscape(timestamp).c_str());
}

void
writePointJson(const std::string &path, const Scenario &scn,
               const PointResult &res, const std::string &timestamp)
{
    std::FILE *f = openOrDie(path);
    const ScenarioPoint &pt = res.point;
    const core::RunStats &st = res.stats;

    std::fprintf(f, "{\n  \"scenario\": \"%s\",\n  \"point\": %zu,\n  ",
                 jsonEscape(scn.name).c_str(), pt.index);
    writeMeta(f, timestamp);
    std::fputs(",\n  ", f);
    writeAxes(f, pt);
    std::fputs(",\n  \"load_fraction\": ", f);
    jsonNumber(f, pt.loadFraction);
    std::fputs(",\n  \"offered_rps\": ", f);
    jsonNumber(f, st.point.offeredRps);
    std::fputs(", \"achieved_rps\": ", f);
    jsonNumber(f, st.point.achievedRps);
    std::fputs(",\n  \"mean_ns\": ", f);
    jsonNumber(f, st.point.meanNs);
    std::fputs(", \"p50_ns\": ", f);
    jsonNumber(f, st.point.p50Ns);
    std::fputs(", \"p90_ns\": ", f);
    jsonNumber(f, st.point.p90Ns);
    std::fputs(", \"p99_ns\": ", f);
    jsonNumber(f, st.point.p99Ns);
    std::fputs(", \"samples\": ", f);
    jsonUint(f, st.point.samples);
    std::fputs(",\n  \"mean_service_ns\": ", f);
    jsonNumber(f, st.meanServiceNs);
    std::fputs(", \"completions\": ", f);
    jsonUint(f, st.completions);
    std::fputs(", \"critical_completions\": ", f);
    jsonUint(f, st.criticalCompletions);
    std::fputs(",\n  \"executed_events\": ", f);
    jsonUint(f, st.executedEvents);
    std::fputs(", \"simulated_us\": ", f);
    jsonNumber(f, st.simulatedUs);
    std::fputs(",\n  \"nested_rpcs_sent\": ", f);
    jsonUint(f, st.nestedRpcsSent);
    std::fputs(", \"chains_completed\": ", f);
    jsonUint(f, st.chainsCompleted);
    std::fputs(",\n  \"request_timeouts\": ", f);
    jsonUint(f, st.requestTimeouts);
    std::fputs(", \"failover_reroutes\": ", f);
    jsonUint(f, st.failoverReroutes);
    std::fputs(", \"stale_replies\": ", f);
    jsonUint(f, st.staleReplies);
    std::fprintf(f, ", \"nodes_down\": %u", st.nodesDown);

    std::fputs(",\n  \"fault\": {\"retries\": ", f);
    jsonUint(f, st.fault.retries);
    std::fputs(", \"retry_drops\": ", f);
    jsonUint(f, st.fault.retryDrops);
    std::fputs(", \"hedges_sent\": ", f);
    jsonUint(f, st.fault.hedgesSent);
    std::fputs(", \"hedges_won\": ", f);
    jsonUint(f, st.fault.hedgesWon);
    std::fputs(", \"duplicate_replies\": ", f);
    jsonUint(f, st.fault.duplicateReplies);
    std::fputs(",\n    \"packets_dropped\": ", f);
    jsonUint(f, st.fault.packetsDropped);
    std::fputs(", \"packets_delayed\": ", f);
    jsonUint(f, st.fault.packetsDelayed);
    std::fputs(", \"packets_corrupted\": ", f);
    jsonUint(f, st.fault.packetsCorrupted);
    std::fputs(", \"corruptions_detected\": ", f);
    jsonUint(f, st.fault.corruptionsDetected);
    std::fputs(", \"reply_slot_evictions\": ", f);
    jsonUint(f, st.fault.replySlotEvictions);
    std::fputs(",\n    \"degraded_p99_ns\": ", f);
    jsonNumber(f, st.fault.degradedP99Ns);
    std::fputs(", \"degraded_samples\": ", f);
    jsonUint(f, st.fault.degradedSamples);
    std::fputs(", \"healthy_p99_ns\": ", f);
    jsonNumber(f, st.fault.healthyP99Ns);
    std::fputs(", \"healthy_samples\": ", f);
    jsonUint(f, st.fault.healthySamples);
    std::fputs(",\n    \"activations\": [", f);
    for (std::size_t a = 0; a < st.fault.activations.size(); ++a) {
        const fault::Activation &act = st.fault.activations[a];
        std::fprintf(f,
                     "%s\n      {\"spec\": \"%s\", \"kind\": \"%s\", "
                     "\"node\": %d, \"core\": %d, \"at_ns\": ",
                     a == 0 ? "" : ",", jsonEscape(act.spec).c_str(),
                     jsonEscape(act.kind).c_str(), act.node, act.core);
        jsonNumber(f, sim::toNs(act.at));
        std::fputs(", \"until_ns\": ", f);
        jsonNumber(f, sim::toNs(act.until));
        std::fprintf(f, ", \"timed\": %s}",
                     act.timed ? "true" : "false");
    }
    std::fputs("]}", f);

    std::fprintf(f,
                 ",\n  \"conn\": {\"scheduler\": \"%s\", "
                 "\"clients\": %u, \"groups\": %u, "
                 "\"qp_capacity\": %u",
                 jsonEscape(st.conn.scheduler).c_str(),
                 st.conn.clients, st.conn.groups, st.conn.qpCapacity);
    std::fputs(",\n    \"group_switches\": ", f);
    jsonUint(f, st.conn.groupSwitches);
    std::fputs(", \"warmup_hits\": ", f);
    jsonUint(f, st.conn.warmupHits);
    std::fputs(", \"warmup_misses\": ", f);
    jsonUint(f, st.conn.warmupMisses);
    std::fputs(", \"regroups\": ", f);
    jsonUint(f, st.conn.regroups);
    std::fputs(",\n    \"admitted_immediate\": ", f);
    jsonUint(f, st.conn.admittedImmediate);
    std::fputs(", \"deferred_total\": ", f);
    jsonUint(f, st.conn.deferredTotal);
    std::fputs(", \"mean_deferred_wait_ns\": ", f);
    jsonNumber(f, st.conn.meanDeferredWaitNs);
    std::fputs(",\n    \"active_p99_ns\": ", f);
    jsonNumber(f, st.conn.activeP99Ns);
    std::fputs(", \"inactive_p99_ns\": ", f);
    jsonNumber(f, st.conn.inactiveP99Ns);
    std::fputs(",\n    \"qp_hits\": ", f);
    jsonUint(f, st.conn.qpHits);
    std::fputs(", \"qp_misses\": ", f);
    jsonUint(f, st.conn.qpMisses);
    std::fputs(", \"qp_footprint_all_bytes\": ", f);
    jsonUint(f, st.conn.qpFootprintAllBytes);
    std::fputs(", \"qp_footprint_group_bytes\": ", f);
    jsonUint(f, st.conn.qpFootprintGroupBytes);
    std::fputs(",\n    \"per_group\": [", f);
    for (std::size_t g = 0; g < st.conn.perGroupAdmitted.size(); ++g) {
        std::fprintf(f, "%s\n      {\"group\": %zu, \"admitted\": ",
                     g == 0 ? "" : ",", g);
        jsonUint(f, st.conn.perGroupAdmitted[g]);
        std::fputs(", \"deferred\": ", f);
        jsonUint(f, g < st.conn.perGroupDeferred.size()
                        ? st.conn.perGroupDeferred[g]
                        : 0);
        std::fputs(", \"p99_ns\": ", f);
        jsonNumber(f, g < st.conn.perGroupP99Ns.size()
                          ? st.conn.perGroupP99Ns[g]
                          : 0.0);
        std::fputs("}", f);
    }
    std::fputs("]}", f);

    std::fputs(",\n  \"per_class\": [", f);
    for (std::size_t c = 0; c < st.perClass.size(); ++c) {
        const core::ClassStats &cs = st.perClass[c];
        std::fprintf(f,
                     "%s\n    {\"class\": \"%s\", \"critical\": %s, "
                     "\"completions\": ",
                     c == 0 ? "" : ",", jsonEscape(cs.name).c_str(),
                     cs.latencyCritical ? "true" : "false");
        jsonUint(f, cs.completions);
        std::fputs(", \"achieved_rps\": ", f);
        jsonNumber(f, cs.achievedRps);
        std::fputs(", \"mean_ns\": ", f);
        jsonNumber(f, cs.meanNs);
        std::fputs(", \"p50_ns\": ", f);
        jsonNumber(f, cs.p50Ns);
        std::fputs(", \"p99_ns\": ", f);
        jsonNumber(f, cs.p99Ns);
        std::fputs(", \"p999_ns\": ", f);
        jsonNumber(f, cs.p999Ns);
        std::fputs("}", f);
    }

    std::fputs("],\n  \"per_node\": [", f);
    for (std::size_t n = 0; n < st.perNode.size(); ++n) {
        const core::NodeStats &ns = st.perNode[n];
        std::fprintf(f,
                     "%s\n    {\"node\": %u, \"failed\": %s, "
                     "\"served\": ",
                     n == 0 ? "" : ",", ns.nodeId,
                     ns.failed ? "true" : "false");
        jsonUint(f, ns.served);
        std::fputs(", \"achieved_rps\": ", f);
        jsonNumber(f, ns.achievedRps);
        std::fputs(", \"mean_ns\": ", f);
        jsonNumber(f, ns.meanNs);
        std::fputs(", \"p50_ns\": ", f);
        jsonNumber(f, ns.p50Ns);
        std::fputs(", \"p99_ns\": ", f);
        jsonNumber(f, ns.p99Ns);
        std::fputs("}", f);
    }

    std::fputs("],\n  \"slo\": [", f);
    for (std::size_t s = 0; s < res.slos.size(); ++s) {
        const SloOutcome &so = res.slos[s];
        std::fprintf(f, "%s\n    {\"class\": \"%s\", \"bound_ns\": ",
                     s == 0 ? "" : ",",
                     jsonEscape(so.className).c_str());
        jsonNumber(f, so.boundNs);
        std::fputs(", \"p99_ns\": ", f);
        jsonNumber(f, so.p99Ns);
        std::fprintf(f, ", \"found\": %s, \"met\": %s}",
                     so.classFound ? "true" : "false",
                     so.met ? "true" : "false");
    }
    std::fputs("]\n}\n", f);
    std::fclose(f);
}

void
writeSummaryJson(const std::string &path, const ScenarioResult &result,
                 const std::string &timestamp)
{
    std::FILE *f = openOrDie(path);
    const Scenario &scn = result.scenario;
    std::fprintf(f,
                 "{\n  \"scenario\": \"%s\",\n  \"source\": \"%s\",\n"
                 "  ",
                 jsonEscape(scn.name).c_str(),
                 jsonEscape(scn.source).c_str());
    writeMeta(f, timestamp);
    std::fprintf(f, ",\n  \"points\": %zu,\n  \"slos_met\": %s,\n",
                 result.points.size(),
                 result.slosMet ? "true" : "false");
    std::fputs("  \"results\": [", f);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const PointResult &res = result.points[i];
        bool point_slos_met = true;
        for (const SloOutcome &so : res.slos)
            point_slos_met = point_slos_met && so.met;
        std::fprintf(f, "%s\n    {\"point\": %zu, ", i == 0 ? "" : ",",
                     res.point.index);
        writeAxes(f, res.point);
        std::fputs(", \"offered_rps\": ", f);
        jsonNumber(f, res.stats.point.offeredRps);
        std::fputs(", \"achieved_rps\": ", f);
        jsonNumber(f, res.stats.point.achievedRps);
        std::fputs(", \"p99_ns\": ", f);
        jsonNumber(f, res.stats.point.p99Ns);
        std::fputs(", \"completions\": ", f);
        jsonUint(f, res.stats.completions);
        std::fprintf(f, ", \"slos_met\": %s}",
                     point_slos_met ? "true" : "false");
    }
    std::fputs("]\n}\n", f);
    std::fclose(f);
}

/** RunStats -> metrics bridge: one label set per matrix point. */
void
appendPointMetrics(stats::MetricsExporter &mx, const Scenario &scn,
                   const PointResult &res)
{
    const ScenarioPoint &pt = res.point;
    const core::RunStats &st = res.stats;
    stats::MetricsExporter::Labels base{
        {"scenario", scn.name},
        {"point", sim::strfmt("%zu", pt.index)},
        {"workload", pt.workload},
        {"policy", pt.policy},
        {"arrival", pt.arrival},
        {"router", pt.router},
        {"nodes", sim::strfmt("%u", pt.nodes)},
    };
    // Connection-scheduler axis label only when the subsystem is on,
    // so legacy scenarios keep byte-identical metrics output.
    if (!pt.scheduler.empty())
        base.emplace_back("scheduler", pt.scheduler);

    mx.gauge("rpcvalet_offered_rps",
             "Offered aggregate arrival rate, requests per second.",
             st.point.offeredRps, base);
    mx.gauge("rpcvalet_achieved_rps",
             "Achieved completion throughput, requests per second.",
             st.point.achievedRps, base);
    mx.summary(
        "rpcvalet_latency_ns",
        "End-to-end latency of latency-critical RPCs, nanoseconds.",
        {{0.5, st.point.p50Ns}, {0.9, st.point.p90Ns},
         {0.99, st.point.p99Ns}},
        st.point.meanNs * static_cast<double>(st.point.samples),
        st.point.samples, base);
    mx.counter("rpcvalet_completions_total",
               "Completed RPCs, warmup included.",
               static_cast<double>(st.completions), base);
    mx.counter("rpcvalet_nested_rpcs_total",
               "Nested RPCs issued by chained handlers.",
               static_cast<double>(st.nestedRpcsSent), base);
    mx.counter("rpcvalet_chains_completed_total",
               "Nested-RPC chain groups fully completed.",
               static_cast<double>(st.chainsCompleted), base);
    mx.counter("rpcvalet_request_timeouts_total",
               "Requests that exceeded the cluster request timeout.",
               static_cast<double>(st.requestTimeouts), base);
    mx.counter("rpcvalet_failover_reroutes_total",
               "Requests re-dispatched after a timeout or mark-down.",
               static_cast<double>(st.failoverReroutes), base);
    mx.counter("rpcvalet_retries_total",
               "Timed-out requests re-sent under the retry policy.",
               static_cast<double>(st.fault.retries), base);
    mx.counter("rpcvalet_retry_drops_total",
               "Requests dropped after exhausting the attempt budget.",
               static_cast<double>(st.fault.retryDrops), base);
    mx.counter("rpcvalet_hedges_sent_total",
               "Hedged duplicate sends issued for slow requests.",
               static_cast<double>(st.fault.hedgesSent), base);
    mx.counter("rpcvalet_hedges_won_total",
               "Hedged requests whose duplicate replied first.",
               static_cast<double>(st.fault.hedgesWon), base);
    mx.counter("rpcvalet_packets_dropped_total",
               "Packets dropped by injected loss faults.",
               static_cast<double>(st.fault.packetsDropped), base);
    mx.counter("rpcvalet_packets_corrupted_total",
               "Packets corrupted by injected corruption faults.",
               static_cast<double>(st.fault.packetsCorrupted), base);
    mx.counter("rpcvalet_corruptions_detected_total",
               "Corrupted replies caught by client-side verification.",
               static_cast<double>(st.fault.corruptionsDetected), base);

    if (st.conn.clients > 0) {
        // base already carries the scheduler label whenever the
        // subsystem is active (pt.scheduler is non-empty then).
        const stats::MetricsExporter::Labels &conn_base = base;
        mx.gauge("rpcvalet_conn_clients",
                 "Logical clients in the connection population.",
                 static_cast<double>(st.conn.clients), conn_base);
        mx.gauge("rpcvalet_conn_groups",
                 "Connection groups the population partitioned into.",
                 static_cast<double>(st.conn.groups), conn_base);
        mx.gauge("rpcvalet_conn_qp_capacity",
                 "Server-NI QP-cache capacity the run resolved to.",
                 static_cast<double>(st.conn.qpCapacity), conn_base);
        mx.counter("rpcvalet_conn_group_switches_total",
                   "Completed connection-group context switches.",
                   static_cast<double>(st.conn.groupSwitches),
                   conn_base);
        mx.counter("rpcvalet_conn_warmup_hits_total",
                   "Warmup pre-admissions that released a queued "
                   "request.",
                   static_cast<double>(st.conn.warmupHits), conn_base);
        mx.counter("rpcvalet_conn_warmup_misses_total",
                   "Warmup pre-admissions that found nothing queued.",
                   static_cast<double>(st.conn.warmupMisses),
                   conn_base);
        mx.counter("rpcvalet_conn_regroups_total",
                   "End-of-epoch priority regroupings.",
                   static_cast<double>(st.conn.regroups), conn_base);
        mx.counter("rpcvalet_conn_admitted_immediate_total",
                   "Requests admitted without deferral.",
                   static_cast<double>(st.conn.admittedImmediate),
                   conn_base);
        mx.counter("rpcvalet_conn_deferred_total",
                   "Requests deferred until their group went active.",
                   static_cast<double>(st.conn.deferredTotal),
                   conn_base);
        mx.gauge("rpcvalet_conn_mean_deferred_wait_ns",
                 "Mean admission wait of deferred requests, ns.",
                 st.conn.meanDeferredWaitNs, conn_base);
        mx.gauge("rpcvalet_conn_active_p99_ns",
                 "Client-observed p99 of immediately admitted "
                 "requests, ns.",
                 st.conn.activeP99Ns, conn_base);
        mx.gauge("rpcvalet_conn_inactive_p99_ns",
                 "Client-observed p99 of deferred requests (admission "
                 "wait included), ns.",
                 st.conn.inactiveP99Ns, conn_base);
        mx.counter("rpcvalet_conn_qp_hits_total",
                   "Server QP-cache hits.",
                   static_cast<double>(st.conn.qpHits), conn_base);
        mx.counter("rpcvalet_conn_qp_misses_total",
                   "Server QP-cache misses (cold-fetch penalty paid).",
                   static_cast<double>(st.conn.qpMisses), conn_base);
    }

    for (const core::ClassStats &cs : st.perClass) {
        stats::MetricsExporter::Labels labels = base;
        labels.emplace_back("class", cs.name);
        mx.summary("rpcvalet_class_latency_ns",
                   "Per-request-class latency, nanoseconds.",
                   {{0.5, cs.p50Ns}, {0.99, cs.p99Ns},
                    {0.999, cs.p999Ns}},
                   cs.meanNs * static_cast<double>(cs.completions),
                   cs.completions, labels);
    }

    for (const SloOutcome &so : res.slos) {
        stats::MetricsExporter::Labels labels = base;
        labels.emplace_back("class", so.className);
        mx.gauge("rpcvalet_slo_met",
                 "1 when the class's measured p99 is within its "
                 "declared bound, else 0.",
                 so.met ? 1.0 : 0.0, labels);
    }
}

std::vector<SloOutcome>
evaluateSlos(const Scenario &scn, const core::RunStats &st)
{
    std::vector<SloOutcome> out;
    out.reserve(scn.slos.size());
    for (const SloBound &bound : scn.slos) {
        SloOutcome so;
        so.className = bound.className;
        so.boundNs = bound.boundNs;
        for (const core::ClassStats &cs : st.perClass) {
            if (cs.name != bound.className)
                continue;
            so.classFound = true;
            so.p99Ns = cs.p99Ns;
            so.met = cs.p99Ns <= bound.boundNs;
            break;
        }
        out.push_back(std::move(so));
    }
    return out;
}

} // namespace

ScenarioResult
runScenario(const Scenario &scn)
{
    const std::vector<ScenarioPoint> points = expandMatrix(scn);
    RV_ASSERT(!points.empty(), "scenario expanded to an empty matrix");

    ScenarioResult result;
    result.scenario = scn;
    result.points.resize(points.size());

    // Points are independent simulations, fanned out over the shared
    // point-execution pool (same as core::runSweep). Results land by
    // index, so output order (and content) is identical regardless of
    // thread count. scn.threads is the total budget: points that
    // themselves run parallel domains get proportionally fewer
    // concurrent siblings.
    unsigned max_domains = 0;
    for (const ScenarioPoint &pt : points)
        max_domains =
            std::max(max_domains, pt.config.parallelDomains);
    core::runIndexedParallel(
        points.size(),
        core::pointConcurrency(scn.threads, max_domains),
        [&](std::size_t i) {
            PointResult res;
            res.point = points[i];
            res.stats = core::runExperiment(points[i].config);
            res.slos = evaluateSlos(scn, res.stats);
            result.points[i] = std::move(res);
        });

    for (const PointResult &res : result.points) {
        for (const SloOutcome &so : res.slos)
            result.slosMet = result.slosMet && so.met;
    }
    return result;
}

std::vector<std::string>
writeScenarioOutputs(const ScenarioResult &result)
{
    const Scenario &scn = result.scenario;
    std::vector<std::string> written;
    if (!scn.writeJson && !scn.writePrometheus)
        return written;

    std::error_code ec;
    std::filesystem::create_directories(scn.outputDir, ec);
    if (ec) {
        sim::fatal(sim::strfmt(
            "scenario output: cannot create directory '%s': %s",
            scn.outputDir.c_str(), ec.message().c_str()));
    }

    // One timestamp for the whole run: the artifacts of a scenario
    // form one consistent set.
    const std::string timestamp = sim::iso8601UtcNow();

    if (scn.writeJson) {
        for (const PointResult &res : result.points) {
            const std::string path = sim::strfmt(
                "%s/point_%03zu.json", scn.outputDir.c_str(),
                res.point.index);
            writePointJson(path, scn, res, timestamp);
            written.push_back(path);
        }
        const std::string summary = scn.outputDir + "/summary.json";
        writeSummaryJson(summary, result, timestamp);
        written.push_back(summary);
    }

    if (scn.writePrometheus) {
        stats::MetricsExporter mx;
        for (const PointResult &res : result.points)
            appendPointMetrics(mx, scn, res);
        const std::string path = scn.outputDir + "/metrics.prom";
        mx.writeFile(path);
        written.push_back(path);
    }
    return written;
}

} // namespace rpcvalet::scenario
