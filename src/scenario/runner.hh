/**
 * @file
 * Scenario execution: run an expanded scenario matrix and publish the
 * results.
 *
 * runScenario() executes every matrix point (optionally across a
 * worker pool — points are independent simulations, so results are
 * identical regardless of thread count) and evaluates the scenario's
 * [slo] declarations against each point's measured per-class p99.
 * writeScenarioOutputs() renders the results under the scenario's
 * output directory:
 *
 *   point_NNN.json   one file per matrix point: axis values, headline
 *                    load point, per-class and per-node breakdowns
 *   summary.json     the whole run: build/git/timestamp provenance
 *                    stamp, every point's key numbers, SLO verdicts
 *   metrics.prom     Prometheus text exposition across all points
 *                    (stats::MetricsExporter), labeled by axis values
 *
 * The provenance stamp (build type, git SHA, ISO-8601 UTC timestamp)
 * comes from sim/build_info.hh, so every artifact names the exact
 * build that produced it.
 */

#ifndef RPCVALET_SCENARIO_RUNNER_HH
#define RPCVALET_SCENARIO_RUNNER_HH

#include <string>
#include <vector>

#include "scenario/scenario.hh"

namespace rpcvalet::scenario {

/** One [slo] declaration checked against one point's measurements. */
struct SloOutcome
{
    /** Declared request-class name. */
    std::string className;
    /** Declared p99 bound, ns. */
    double boundNs = 0.0;
    /** Measured p99 of that class, ns (0 when the class is absent). */
    double p99Ns = 0.0;
    /** Whether the point's workload declares the class at all. */
    bool classFound = false;
    /** measured p99 <= bound (false when the class is missing). */
    bool met = false;
};

/** One executed matrix point with its SLO verdicts. */
struct PointResult
{
    ScenarioPoint point;
    core::RunStats stats;
    std::vector<SloOutcome> slos;
};

/** A fully executed scenario. */
struct ScenarioResult
{
    Scenario scenario;
    /** Results in canonical matrix order (ScenarioPoint::index). */
    std::vector<PointResult> points;
    /** Every declared SLO met on every point. */
    bool slosMet = true;
};

/** Execute the matrix; fatal on an empty one (parser prevents it). */
ScenarioResult runScenario(const Scenario &scn);

/**
 * Write the scenario's artifacts (JSON and/or Prometheus metrics, per
 * its [output] flags) into scenario.outputDir, creating the directory
 * if needed. Returns the paths written. Fatal on I/O failure.
 */
std::vector<std::string> writeScenarioOutputs(const ScenarioResult &result);

} // namespace rpcvalet::scenario

#endif // RPCVALET_SCENARIO_RUNNER_HH
